package dgs

// Networked-deployment tests: the same deployments the in-process tests
// exercise, but spanning dgsd site servers over loopback TCP — fragment
// shipping at Deploy time, hub-routed sessions, measured wire bytes, and
// the live-update path (Apply + Watch) across process boundaries. The
// servers run in-process against 127.0.0.1 listeners; the code path is
// exactly cmd/dgsd's.

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"dgs/internal/transport/tcpnet"
)

// startSiteServers starts k dgsd-equivalent site servers on loopback
// listeners and returns their addresses. Each serves any number of
// sequential deployments until the test ends.
func startSiteServers(t *testing.T, k int) []string {
	t.Helper()
	addrs := make([]string, k)
	for i := range addrs {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &tcpnet.Server{}
		go srv.Serve(lis)
		t.Cleanup(func() { lis.Close() })
		addrs[i] = lis.Addr().String()
	}
	return addrs
}

// TestRemoteDeployBasics: a two-daemon deployment answers queries
// identically to an in-process one and meters real socket traffic.
func TestRemoteDeployBasics(t *testing.T) {
	dict := NewDict()
	g := GenSynthetic(dict, 400, 1200, 7)
	q := GenCyclicPatternOver(dict, 4, 6, 4, 8)
	part, err := PartitionTargetRatio(g, 5, ByVf, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	addrs := startSiteServers(t, 2)
	dep, err := Deploy(part, WithRemoteSites(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if !dep.Remote() {
		t.Fatal("WithRemoteSites deployment must report Remote")
	}
	oracle := Simulate(q, g)
	res, err := dep.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match.Equal(oracle) {
		t.Fatalf("remote dGPM diverges from Simulate:\noracle %v\ngot    %v", oracle, res.Match)
	}
	if res.Stats.WireBytes <= res.Stats.DataBytes {
		t.Fatalf("WireBytes %d should exceed payload DataBytes %d (framing, acks, control)",
			res.Stats.WireBytes, res.Stats.DataBytes)
	}
	// Per-query isolation of the wire meter: a second query starts fresh.
	res2, err := dep.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.WireBytes > 2*res.Stats.WireBytes {
		t.Fatalf("second query's wire meter (%d) not isolated from first (%d)",
			res2.Stats.WireBytes, res.Stats.WireBytes)
	}
}

// TestRemoteApplyWatch: the acceptance round trip — a standing query and
// live edge updates against a deployment spanning two site-server
// processes, refined incrementally and verified against the centralized
// oracle on the mutated graph.
func TestRemoteApplyWatch(t *testing.T) {
	dict := NewDict()
	g := GenSynthetic(dict, 300, 900, 17)
	q := GenCyclicPatternOver(dict, 4, 6, 4, 18)
	part, err := PartitionTargetRatio(g, 4, ByVf, 0.3, 19)
	if err != nil {
		t.Fatal(err)
	}
	addrs := startSiteServers(t, 2)
	dep, err := Deploy(part, WithRemoteSites(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	ctx := context.Background()

	w, err := dep.Watch(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if oracle := Simulate(q, g); !w.Current().Equal(oracle) {
		t.Fatal("standing query's initial relation diverges from Simulate")
	}

	// Delete a slice of existing edges (deletion-only: the incremental
	// O(|AFF|) path), then insert some of them back (the re-evaluation
	// fallback) — both across the wire.
	var ops []EdgeOp
	cur := dep.Partition().CurrentGraph()
	count := 0
	for v := 0; v < cur.NumNodes() && len(ops) < 40; v++ {
		for _, w2 := range cur.Succ(NodeID(v)) {
			if count%7 == 0 {
				ops = append(ops, DeleteOp(NodeID(v), w2))
				if len(ops) >= 40 {
					break
				}
			}
			count++
		}
	}
	if len(ops) == 0 {
		t.Fatal("workload produced no deletable edges")
	}
	st, err := dep.Apply(ctx, ops)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deletions != len(ops) || st.Reevaluated != 0 {
		t.Fatalf("deletion batch misreported: %+v", st)
	}
	if st.Delta.WireBytes == 0 || st.Maintenance.WireBytes == 0 {
		t.Fatalf("update distribution must meter wire bytes remotely: %+v", st)
	}
	afterDel := dep.Partition().CurrentGraph()
	if oracle := Simulate(q, afterDel); !w.Current().Equal(oracle) {
		t.Fatal("incrementally maintained relation diverges from oracle after deletions")
	}
	// One-shot queries see the mutated remote fragments too.
	res, err := dep.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if oracle := Simulate(q, afterDel); !res.Match.Equal(oracle) {
		t.Fatal("one-shot query diverges from oracle after deletions")
	}

	// Insert half of the deleted edges back.
	var back []EdgeOp
	for i, op := range ops {
		if i%2 == 0 {
			back = append(back, InsertOp(op.V, op.W))
		}
	}
	st, err = dep.Apply(ctx, back)
	if err != nil {
		t.Fatal(err)
	}
	if st.Insertions != len(back) || st.Reevaluated != 1 {
		t.Fatalf("insertion batch misreported: %+v", st)
	}
	afterIns := dep.Partition().CurrentGraph()
	if oracle := Simulate(q, afterIns); !w.Current().Equal(oracle) {
		t.Fatal("re-evaluated relation diverges from oracle after insertions")
	}
	if oracle := Simulate(q, afterIns); !Simulate(q, dep.Partition().CurrentGraph()).Equal(oracle) {
		t.Fatal("oracle sanity")
	}
}

// TestCoalescingStatsParity: the wire protocol must be invisible to
// results and accounting. Every algorithm answers identically to the
// oracle over a v1-pinned (per-message) and a default (coalescing)
// deployment of the same partition; and wherever an algorithm's stats
// are deterministic — established by running the coalesced path twice
// and checking it agrees with itself — the per-message path must
// report exactly the same DataMsgs/DataBytes/Rounds. (Algorithms whose
// message counts depend on arrival-order batching are exempt from the
// exact-stats clause, never from result parity.)
func TestCoalescingStatsParity(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback-TCP parity skipped in -short mode")
	}
	dict := NewDict()
	g := GenSynthetic(dict, 300, 900, 41)
	q, err := GenDAGPattern(dict, 5, 7, 3, 42) // DAG pattern: admits dGPMd on a cyclic graph
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionBlocks(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	oracle := Simulate(q, g)
	addrs := startSiteServers(t, 2)
	ctx := context.Background()

	algos := []Algorithm{AlgoDGPM, AlgoDGPMNoOpt, AlgoDGPMd, AlgoMatch, AlgoDisHHK, AlgoDMes}
	type record struct {
		msgs, bytes, rounds int64
	}
	runAll := func(opts ...DeployOption) map[Algorithm]record {
		dep, err := Deploy(part, append([]DeployOption{WithRemoteSites(addrs...)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer dep.Close()
		out := make(map[Algorithm]record, len(algos))
		for _, algo := range algos {
			res, err := dep.Query(ctx, q, WithAlgorithm(algo))
			if err != nil {
				t.Fatalf("%s: %v", algo, err)
			}
			if !res.Match.Equal(oracle) {
				t.Fatalf("%s diverges from Simulate on this wire protocol", algo)
			}
			out[algo] = record{res.Stats.DataMsgs, res.Stats.DataBytes, res.Stats.Rounds}
		}
		sent, received := dep.WireFrames()
		if sent == 0 || received == 0 {
			t.Fatalf("deployment reported no wire frames (sent=%d received=%d)", sent, received)
		}
		return out
	}

	v1 := runAll(WithWireProtocolMax(1))
	v2a := runAll()
	v2b := runAll()
	for _, algo := range algos {
		if v2a[algo] != v2b[algo] {
			t.Logf("%s: stats vary across identical coalesced runs (%+v vs %+v); exact-stats clause skipped",
				algo, v2a[algo], v2b[algo])
			continue
		}
		if v1[algo] != v2a[algo] {
			t.Errorf("%s: deterministic stats differ across wire protocols: v1=%+v v2=%+v",
				algo, v1[algo], v2a[algo])
		}
	}
}

// TestRemoteDialFailures: a daemon that is not there, and an address
// that is not a dgs daemon, both fail Deploy promptly and cleanly.
func TestRemoteDialFailures(t *testing.T) {
	dict := NewDict()
	g := GenSynthetic(dict, 50, 120, 3)
	part, err := PartitionBlocks(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Deploy(part, WithRemoteSites("127.0.0.1:1")); err == nil {
		t.Fatal("dialing a dead port must fail Deploy")
	}
	// An HTTP-ish listener that just closes: handshake must error, not hang.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	if _, err := Deploy(part, WithRemoteSites(lis.Addr().String())); err == nil {
		t.Fatal("a non-daemon endpoint must fail Deploy")
	}
}

// capturingListener records accepted connections so the test can sever
// them, simulating a daemon crash mid-deployment.
type capturingListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *capturingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *capturingListener) severAll() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
}

// TestRemoteDaemonLoss: losing a daemon fails in-flight and subsequent
// operations promptly — Query and Apply return errors, never hang.
func TestRemoteDaemonLoss(t *testing.T) {
	dict := NewDict()
	g := GenSynthetic(dict, 200, 600, 5)
	q := GenCyclicPatternOver(dict, 4, 6, 4, 6)
	part, err := PartitionBlocks(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cap := &capturingListener{Listener: lis}
	srv := &tcpnet.Server{}
	go srv.Serve(cap)
	t.Cleanup(func() { lis.Close() })

	dep, err := Deploy(part, WithRemoteSites(cap.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if _, err := dep.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}

	cap.severAll() // the daemon "crashes"

	type outcome struct {
		what string
		err  error
	}
	done := make(chan outcome, 2)
	go func() {
		_, err := dep.Query(context.Background(), q)
		done <- outcome{"query", err}
	}()
	go func() {
		_, err := dep.Apply(context.Background(), []EdgeOp{DeleteOp(0, g.Succ(0)[0])})
		done <- outcome{"apply", err}
	}()
	for i := 0; i < 2; i++ {
		select {
		case o := <-done:
			if o.err == nil {
				t.Fatalf("%s on a lost deployment succeeded", o.what)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("operation on a lost deployment hung instead of failing")
		}
	}
}

// TestRemoteTrace: a WithTrace query over a real TCP deployment comes
// back with a complete span tree — coordinator plus every fragment's
// site — whose totals reproduce the query's own Stats aggregates, and
// with the answer unchanged from an untraced run. With the wire
// protocol capped below v5 the daemons never learn the trace ID: the
// result is still oracle-correct and the trace degrades to a partial,
// coordinator-only tree.
func TestRemoteTrace(t *testing.T) {
	dict := NewDict()
	g := GenSynthetic(dict, 400, 1200, 7)
	q := GenCyclicPatternOver(dict, 4, 6, 4, 8)
	part, err := PartitionTargetRatio(g, 4, ByVf, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	oracle := Simulate(q, g)

	addrs := startSiteServers(t, 2)
	dep, err := Deploy(part, WithRemoteSites(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	res, err := dep.Query(context.Background(), q, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match.Equal(oracle) {
		t.Fatalf("traced remote query diverges from Simulate:\noracle %v\ngot    %v", oracle, res.Match)
	}
	tr := res.Trace
	if tr == nil || !tr.Complete || tr.TraceID == 0 {
		t.Fatalf("traced TCP query returned trace %+v", tr)
	}
	seen := map[int]bool{}
	for _, site := range tr.Sites {
		seen[site.Site] = true
	}
	if !seen[-1] {
		t.Fatalf("trace lacks coordinator spans: %+v", tr.Sites)
	}
	for i := 0; i < 4; i++ {
		if !seen[i] {
			t.Fatalf("trace lacks spans for site %d: %+v", i, tr.Sites)
		}
	}
	// The spans are exact, not sampled: summed over sites and rounds
	// they must reproduce the session's accounting — every payload byte
	// received once, every recorded round.
	_, _, _, bytesIn, bytesOut, rounds := tr.Totals()
	wantBytes := res.Stats.DataBytes + res.Stats.ControlBytes + res.Stats.ResultBytes
	if bytesIn != wantBytes || bytesOut != wantBytes {
		t.Fatalf("trace bytes in=%d out=%d, want %d (stats %+v)", bytesIn, bytesOut, wantBytes, res.Stats)
	}
	if rounds != res.Stats.Rounds {
		t.Fatalf("trace rounds=%d, stats rounds=%d", rounds, res.Stats.Rounds)
	}

	// An untraced query on the same deployment carries no trace.
	plain, err := dep.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatalf("untraced query returned a trace: %+v", plain.Trace)
	}

	// v4-capped deployment: identical answer, partial trace.
	dep4, err := Deploy(part, WithRemoteSites(startSiteServers(t, 2)...), WithWireProtocolMax(4))
	if err != nil {
		t.Fatal(err)
	}
	defer dep4.Close()
	res4, err := dep4.Query(context.Background(), q, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !res4.Match.Equal(oracle) {
		t.Fatalf("traced v4 query diverges from Simulate")
	}
	if res4.Trace == nil || res4.Trace.Complete {
		t.Fatalf("v4 deployment trace = %+v, want a partial trace", res4.Trace)
	}
	for _, site := range res4.Trace.Sites {
		if site.Site != -1 {
			t.Fatalf("v4 deployment produced worker spans for site %d", site.Site)
		}
	}
}
