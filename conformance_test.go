package dgs

// Cross-algorithm conformance matrix: every distributed algorithm must
// produce exactly the centralized Simulate relation on every workload ×
// partition-strategy combination its preconditions admit. The paper
// proves all seven compute the same unique maximum simulation; this
// matrix is the executable form of that claim, and the safety net under
// partition-strategy and runtime changes.

import (
	"context"
	"fmt"
	"testing"
)

type confWorkload struct {
	name string
	dict *Dict
	g    *Graph
	// queries paired with whether each is a DAG pattern (dGPMd's easy
	// precondition) and the graph's own shape.
	queries []confQuery
	gIsDAG  bool
	gIsTree bool
}

type confQuery struct {
	name string
	q    *Pattern
}

func confWorkloads(t *testing.T) []confWorkload {
	t.Helper()
	var out []confWorkload
	{
		dict := NewDict()
		g := GenSynthetic(dict, 500, 1500, 21)
		dq, err := GenDAGPattern(dict, 5, 7, 3, 22)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, confWorkload{
			name: "cyclic", dict: dict, g: g,
			queries: []confQuery{
				{"cyclicQ", GenCyclicPatternOver(dict, 4, 6, 4, 23)},
				{"dagQ", dq},
			},
		})
	}
	{
		dict := NewDict()
		g := GenCitation(dict, 500, 1100, 24)
		if !g.IsDAG() {
			t.Fatal("citation generator must produce a DAG")
		}
		dq, err := GenDAGPattern(dict, 5, 7, 3, 25)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, confWorkload{
			name: "dag", dict: dict, g: g, gIsDAG: true,
			queries: []confQuery{
				{"dagQ", dq},
				{"cyclicQ", GenCyclicPatternOver(dict, 4, 6, 4, 26)},
			},
		})
	}
	{
		dict := NewDict()
		g := GenTree(dict, 500, 27)
		if !g.IsTree() {
			t.Fatal("tree generator must produce a tree")
		}
		out = append(out, confWorkload{
			name: "tree", dict: dict, g: g, gIsDAG: true, gIsTree: true,
			queries: []confQuery{
				{"treeQ", GenTreePattern(dict, 4, 28)},
				{"cyclicQ", GenCyclicPatternOver(dict, 3, 5, 15, 29)},
			},
		})
	}
	return out
}

func confPartitions(t *testing.T, wl confWorkload) map[string]*Partition {
	t.Helper()
	g := wl.g
	out := make(map[string]*Partition)
	var err error
	if out["Random"], err = PartitionRandom(g, 6, 31); err != nil {
		t.Fatal(err)
	}
	if out["Blocks"], err = PartitionBlocks(g, 6); err != nil {
		t.Fatal(err)
	}
	if out["TargetRatio"], err = PartitionTargetRatio(g, 6, ByVf, 0.3, 31); err != nil {
		t.Fatal(err)
	}
	if wl.gIsTree {
		// dGPMt's Corollary-4 precondition: fragments must be connected
		// subtrees; only this strategy guarantees it.
		if out["ConnectedTree"], err = PartitionTree(g, 6); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

var confAlgos = []Algorithm{
	AlgoDGPM, AlgoDGPMNoOpt, AlgoDGPMd, AlgoDGPMt, AlgoMatch, AlgoDisHHK, AlgoDMes,
}

// TestConformanceMatrix — all seven algorithms × {cyclic, DAG, tree}
// workloads × {Random, Blocks, TargetRatio} partitions agree with
// centralized Simulate. Combinations outside an algorithm's
// preconditions (dGPMd needs a DAG pattern or DAG graph; dGPMt needs a
// tree graph) are skipped explicitly.
func TestConformanceMatrix(t *testing.T) {
	ctx := context.Background()
	covered := make(map[Algorithm]bool)
	for _, wl := range confWorkloads(t) {
		for pname, part := range confPartitions(t, wl) {
			dep, err := Deploy(part)
			if err != nil {
				t.Fatal(err)
			}
			for _, cq := range wl.queries {
				oracle := Simulate(cq.q, wl.g)
				for _, algo := range confAlgos {
					name := fmt.Sprintf("%s/%s/%s/%s", wl.name, pname, cq.name, algo)
					t.Run(name, func(t *testing.T) {
						var opts []QueryOption
						switch algo {
						case AlgoDGPMd:
							if !cq.q.IsDAG() && !wl.gIsDAG {
								t.Skip("dGPMd needs a DAG pattern or a DAG graph")
							}
							if wl.gIsDAG {
								opts = append(opts, WithGraphIsDAG())
							}
						case AlgoDGPMt:
							if !wl.gIsTree {
								t.Skip("dGPMt needs a tree data graph")
							}
							if pname != "ConnectedTree" {
								t.Skip("dGPMt needs connected-subtree fragments (Corollary 4)")
							}
						}
						res, err := dep.Query(ctx, cq.q, append(opts, WithAlgorithm(algo))...)
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						if !res.Match.Equal(oracle) {
							t.Fatalf("%s: diverges from Simulate\noracle %v\ngot    %v", name, oracle, res.Match)
						}
						covered[algo] = true
					})
				}
			}
			dep.Close()
		}
	}
	for _, algo := range confAlgos {
		if !covered[algo] {
			t.Fatalf("algorithm %s was never exercised by the matrix", algo)
		}
	}
}
