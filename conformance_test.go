package dgs

// Cross-algorithm conformance matrix: every distributed algorithm must
// produce exactly the centralized Simulate relation on every workload ×
// partition-strategy combination its preconditions admit. The paper
// proves all seven compute the same unique maximum simulation; this
// matrix is the executable form of that claim, and the safety net under
// partition-strategy and runtime changes.

import (
	"context"
	"fmt"
	"testing"
)

type confWorkload struct {
	name string
	dict *Dict
	g    *Graph
	// queries paired with whether each is a DAG pattern (dGPMd's easy
	// precondition) and the graph's own shape.
	queries []confQuery
	gIsDAG  bool
	gIsTree bool
}

type confQuery struct {
	name string
	q    *Pattern
}

func confWorkloads(t *testing.T) []confWorkload {
	t.Helper()
	var out []confWorkload
	{
		dict := NewDict()
		g := GenSynthetic(dict, 500, 1500, 21)
		dq, err := GenDAGPattern(dict, 5, 7, 3, 22)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, confWorkload{
			name: "cyclic", dict: dict, g: g,
			queries: []confQuery{
				{"cyclicQ", GenCyclicPatternOver(dict, 4, 6, 4, 23)},
				{"dagQ", dq},
			},
		})
	}
	{
		dict := NewDict()
		g := GenCitation(dict, 500, 1100, 24)
		if !g.IsDAG() {
			t.Fatal("citation generator must produce a DAG")
		}
		dq, err := GenDAGPattern(dict, 5, 7, 3, 25)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, confWorkload{
			name: "dag", dict: dict, g: g, gIsDAG: true,
			queries: []confQuery{
				{"dagQ", dq},
				{"cyclicQ", GenCyclicPatternOver(dict, 4, 6, 4, 26)},
			},
		})
	}
	{
		dict := NewDict()
		g := GenTree(dict, 500, 27)
		if !g.IsTree() {
			t.Fatal("tree generator must produce a tree")
		}
		out = append(out, confWorkload{
			name: "tree", dict: dict, g: g, gIsDAG: true, gIsTree: true,
			queries: []confQuery{
				{"treeQ", GenTreePattern(dict, 4, 28)},
				{"cyclicQ", GenCyclicPatternOver(dict, 3, 5, 15, 29)},
			},
		})
	}
	return out
}

func confPartitions(t *testing.T, wl confWorkload) map[string]*Partition {
	t.Helper()
	g := wl.g
	out := make(map[string]*Partition)
	var err error
	if out["Random"], err = PartitionRandom(g, 6, 31); err != nil {
		t.Fatal(err)
	}
	if out["Blocks"], err = PartitionBlocks(g, 6); err != nil {
		t.Fatal(err)
	}
	if out["TargetRatio"], err = PartitionTargetRatio(g, 6, ByVf, 0.3, 31); err != nil {
		t.Fatal(err)
	}
	// The quality-first streaming partitioners: every algorithm must
	// stay correct on low-cut fragmentations, not just the experiment
	// fixtures that raise the ratio.
	if out["LDG"], err = PartitionWith(g, "ldg", 6, WithPartitionSeed(31)); err != nil {
		t.Fatal(err)
	}
	if out["Fennel"], err = PartitionWith(g, "fennel", 6, WithPartitionSeed(31), WithRefinePasses(4)); err != nil {
		t.Fatal(err)
	}
	if wl.gIsTree {
		// dGPMt's Corollary-4 precondition: fragments must be connected
		// subtrees; only this strategy guarantees it.
		if out["ConnectedTree"], err = PartitionTree(g, 6); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

//dgsvet:exhaustive — the conformance matrix must cover every algorithm
var confAlgos = []Algorithm{
	AlgoDGPM, AlgoDGPMNoOpt, AlgoDGPMd, AlgoDGPMt, AlgoMatch, AlgoDisHHK, AlgoDMes,
}

// confModes are the transport backends the matrix runs over: the
// in-process channel network, a deployment spanning two dgsd site
// servers over loopback TCP (negotiating the current protocol, i.e.
// the coalescing path), and the same deployment pinned to wire
// protocol 1 so the per-message fallback answers the whole matrix too.
// extra returns per-deployment DeployOptions (each TCP mode starts its
// daemons once per test run and reuses them — a daemon serves one
// deployment at a time and resets in between).
func confModes(t *testing.T) []struct {
	name  string
	extra func(t *testing.T) []DeployOption
} {
	t.Helper()
	var tcpAddrs, tcpV1Addrs []string
	return []struct {
		name  string
		extra func(t *testing.T) []DeployOption
	}{
		{"inproc", func(t *testing.T) []DeployOption { return nil }},
		{"tcp", func(t *testing.T) []DeployOption {
			if testing.Short() {
				t.Skip("loopback-TCP matrix skipped in -short mode")
			}
			if tcpAddrs == nil {
				tcpAddrs = startSiteServers(t, 2)
			}
			return []DeployOption{WithRemoteSites(tcpAddrs...)}
		}},
		{"tcp-v1", func(t *testing.T) []DeployOption {
			if testing.Short() {
				t.Skip("loopback-TCP matrix skipped in -short mode")
			}
			if tcpV1Addrs == nil {
				tcpV1Addrs = startSiteServers(t, 2)
			}
			return []DeployOption{WithRemoteSites(tcpV1Addrs...), WithWireProtocolMax(1)}
		}},
	}
}

// TestConformanceMatrix — all seven algorithms × {cyclic, DAG, tree}
// workloads × {Random, Blocks, TargetRatio, LDG, Fennel} partitions ×
// {in-process, loopback-TCP} transports agree with centralized
// Simulate.
// Combinations outside an algorithm's preconditions (dGPMd needs a DAG
// pattern or DAG graph; dGPMt needs a tree graph) are skipped
// explicitly. On the TCP backend every deployment spans two dgsd
// processes' worth of site servers and must additionally report real
// measured wire bytes.
func TestConformanceMatrix(t *testing.T) {
	ctx := context.Background()
	for _, mode := range confModes(t) {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			covered := make(map[Algorithm]bool)
			for _, wl := range confWorkloads(t) {
				for pname, part := range confPartitions(t, wl) {
					dep, err := Deploy(part, mode.extra(t)...)
					if err != nil {
						t.Fatal(err)
					}
					for _, cq := range wl.queries {
						oracle := Simulate(cq.q, wl.g)
						for _, algo := range confAlgos {
							name := fmt.Sprintf("%s/%s/%s/%s", wl.name, pname, cq.name, algo)
							t.Run(name, func(t *testing.T) {
								var opts []QueryOption
								switch algo {
								case AlgoDGPMd:
									if !cq.q.IsDAG() && !wl.gIsDAG {
										t.Skip("dGPMd needs a DAG pattern or a DAG graph")
									}
									if wl.gIsDAG {
										opts = append(opts, WithGraphIsDAG())
									}
								case AlgoDGPMt:
									if !wl.gIsTree {
										t.Skip("dGPMt needs a tree data graph")
									}
									if pname != "ConnectedTree" {
										t.Skip("dGPMt needs connected-subtree fragments (Corollary 4)")
									}
								}
								res, err := dep.Query(ctx, cq.q, append(opts, WithAlgorithm(algo))...)
								if err != nil {
									t.Fatalf("%s: %v", name, err)
								}
								if !res.Match.Equal(oracle) {
									t.Fatalf("%s: diverges from Simulate\noracle %v\ngot    %v", name, oracle, res.Match)
								}
								traffic := res.Stats.DataBytes + res.Stats.ControlBytes + res.Stats.ResultBytes
								if dep.Remote() && traffic > 0 && res.Stats.WireBytes == 0 {
									t.Fatalf("%s: remote query reported no measured wire bytes", name)
								}
								if !dep.Remote() && res.Stats.WireBytes != 0 {
									t.Fatalf("%s: in-process query reported wire bytes", name)
								}
								covered[algo] = true
							})
						}
					}
					dep.Close()
				}
			}
			for _, algo := range confAlgos {
				if !covered[algo] {
					t.Fatalf("algorithm %s was never exercised by the matrix", algo)
				}
			}
		})
	}
}
