package dgs

import "testing"

func TestSimulateDualSubsetOfPlain(t *testing.T) {
	_, g, q, _ := testWorld(t, true)
	plain := Simulate(q, g)
	dual := SimulateDual(q, g)
	for u := 0; u < q.NumNodes(); u++ {
		for _, v := range dual.MatchesOf(QNode(u)) {
			if !plain.Contains(QNode(u), v) {
				t.Fatalf("dual pair (u%d,%d) not in plain simulation", u, v)
			}
		}
	}
}

func TestIncrementalFacade(t *testing.T) {
	dict := NewDict()
	b := NewGraphBuilder(dict)
	va := b.AddNode("A")
	vb := b.AddNode("B")
	b.AddEdge(va, vb)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParsePattern(dict, "node a A\nnode b B\nedge a b")
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncremental(q, g)
	if !inc.Current().Ok() {
		t.Fatal("initial match expected")
	}
	if err := inc.DeleteEdge(va, vb); err != nil {
		t.Fatal(err)
	}
	if inc.Current().Ok() {
		t.Fatal("match must vanish after deletion")
	}
	if inc.Affected() == 0 {
		t.Fatal("AFF must be positive")
	}
	if err := inc.DeleteEdge(va, vb); err == nil {
		t.Fatal("double delete must error")
	}
}

func TestIsDAGDistributedFacade(t *testing.T) {
	dict := NewDict()
	cyc := GenChain(dict, 8, true)
	part, err := PartitionChain(cyc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := IsDAGDistributed(part); ok {
		t.Fatal("closed chain is cyclic")
	}
	dag := GenCitation(dict, 500, 1200, 1)
	part2, err := PartitionRandom(dag, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ok, st := IsDAGDistributed(part2)
	if !ok {
		t.Fatal("citation graph is a DAG")
	}
	if st.Rounds != 1 {
		t.Fatalf("one-round protocol reported %d rounds", st.Rounds)
	}
}

// dGPMd without the GraphIsDAG assertion must use the distributed check
// and still answer cyclic queries on DAGs with ∅.
func TestDGPMdAutoDAGCheck(t *testing.T) {
	dict := NewDict()
	g := GenCitation(dict, 1000, 2200, 2)
	q, err := ParsePattern(dict, "node a l0\nnode b l1\nedge a b\nedge b a")
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionRandom(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(AlgoDGPMd, q, part) // no GraphIsDAG assertion
	if err != nil {
		t.Fatal(err)
	}
	if res.Match.Ok() {
		t.Fatal("cyclic Q on a DAG must be empty")
	}
	if res.Stats.DataBytes == 0 {
		t.Fatal("the distributed DAG check must have shipped summaries")
	}
}
