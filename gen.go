package dgs

// Workload generation facade — the graphs and queries of the paper's
// evaluation (§6). See internal/workload for the generator details and
// the internal/bench package comment for the scaled dataset sizes.

import (
	"dgs/internal/graph"
	"dgs/internal/workload"
)

// ExperimentLabels returns the 15-label alphabet used by the synthetic
// experiments.
func ExperimentLabels() []string { return workload.Labels(15) }

// GenSynthetic generates the paper's synthetic G(|V|, |E|) with labels
// from a 15-symbol alphabet.
func GenSynthetic(dict *Dict, nv, ne int, seed int64) *Graph {
	return &Graph{g: workload.SyntheticDict(dict, nv, ne, workload.Labels(15), seed)}
}

// GenWeb generates the Yahoo-web-graph stand-in (power-law degrees,
// skewed domain labels). Paper scale: (3M, 15M); default benchmarks use
// 1/10 scale.
func GenWeb(dict *Dict, nv, ne int, seed int64) *Graph {
	return &Graph{g: workload.WebDict(dict, nv, ne, seed)}
}

// GenCitation generates the AMiner-citation stand-in — a DAG with
// recency-biased citations. Paper scale: (1.4M, 3M).
func GenCitation(dict *Dict, nv, ne int, seed int64) *Graph {
	return &Graph{g: workload.CitationDict(dict, nv, ne, seed)}
}

// GenTree generates a random rooted labeled tree (dGPMt workloads).
func GenTree(dict *Dict, nv int, seed int64) *Graph {
	return &Graph{g: workload.TreeDict(dict, nv, workload.Labels(15), seed)}
}

// GenChain generates the Fig-2 impossibility gadget: n (Ai,Bi) pairs;
// closed=true adds the cycle-closing edge.
func GenChain(dict *Dict, n int, closed bool) *Graph {
	return &Graph{g: workload.Chain(dict, n, closed)}
}

// ChainQuery returns Q0 = A⇄B of Fig. 2.
func ChainQuery(dict *Dict) *Pattern {
	return &Pattern{p: workload.ChainQuery(dict)}
}

// GenCyclicPattern generates a connected cyclic pattern with nv nodes and
// ne edges over the 15-label alphabet (the Exp-1 query family).
func GenCyclicPattern(dict *Dict, nv, ne int, seed int64) *Pattern {
	return &Pattern{p: workload.CyclicPattern(dict, nv, ne, workload.Labels(15), seed)}
}

// GenCyclicPatternOver generates a cyclic pattern restricted to the first
// k labels of the alphabet. On the Zipf-labeled web workload these are
// the frequent labels, yielding selective-but-nonempty queries like the
// paper's hand-picked cyclic patterns ("domain = '.uk'").
func GenCyclicPatternOver(dict *Dict, nv, ne, k int, seed int64) *Pattern {
	return &Pattern{p: workload.CyclicPattern(dict, nv, ne, workload.Labels(k), seed)}
}

// GenDAGPattern generates a DAG pattern with maximum topological rank
// exactly diam (the Exp-2 query family: Qi with d = i+1).
func GenDAGPattern(dict *Dict, nv, ne, diam int, seed int64) (*Pattern, error) {
	p, err := workload.DAGPattern(dict, nv, ne, diam, workload.Labels(15), seed)
	if err != nil {
		return nil, err
	}
	return &Pattern{p: p}, nil
}

// GenTreePattern generates a rooted tree-shaped pattern.
func GenTreePattern(dict *Dict, nv int, seed int64) *Pattern {
	return &Pattern{p: workload.TreePattern(dict, nv, workload.Labels(15), seed)}
}

// GenUpdateStream draws a random update stream over g: nDel deletions of
// distinct existing edges and nIns insertions of absent pairs, shuffled
// into one sequence for Deployment.Apply.
func GenUpdateStream(g *Graph, nDel, nIns int, seed int64) []EdgeOp {
	return workload.UpdateStream(g.g, nDel, nIns, seed)
}

// BatchOps splits an update stream into consecutive batches of the given
// size.
func BatchOps(ops []EdgeOp, size int) [][]EdgeOp {
	return workload.Batches(ops, size)
}

// WrapGraph adopts an internal graph (used by cmd tools that load DGSG1
// files through the facade).
func wrapGraph(g *graph.Graph) *Graph { return &Graph{g: g} }
