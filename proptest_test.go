package dgs

// Property/metamorphic harness for mutable deployments: seeded random
// synthetic graphs × random update streams, asserting after every batch
// that
//
//   1. Maintained.Current() equals the centralized recompute oracle
//      (Simulate over the materialized current graph) — the incremental
//      == from-scratch property of [13];
//   2. a one-shot Query on the live (mutated) deployment agrees;
//   3. a FRESH deployment built from the materialized current graph
//      with the same assignment agrees — the metamorphic check that
//      in-place fragment mutation is indistinguishable from
//      re-fragmenting;
//   4. the fragmentation still satisfies every §2.2 structural
//      invariant (partition.Validate).
//
// Failures print the reproducing seed. Run under -race in CI.

import (
	"context"
	"math/rand"
	"testing"
)

// propCase is one randomized scenario drawn from a seed.
type propCase struct {
	seed    int64
	dict    *Dict
	g       *Graph
	part    *Partition
	q       *Pattern
	batches [][]EdgeOp
}

func drawCase(t *testing.T, seed int64) *propCase {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	dict := NewDict()
	nv := 40 + r.Intn(160)
	ne := nv + r.Intn(3*nv)
	nlabels := 2 + r.Intn(4)
	g := syntheticForProp(dict, nv, ne, nlabels, r.Int63())
	nf := 2 + r.Intn(5)
	part, err := PartitionRandom(g, nf, r.Int63())
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	qn := 3 + r.Intn(3)
	q := GenCyclicPatternOver(dict, qn, qn+r.Intn(3), nlabels, r.Int63())
	nDel := 1 + r.Intn(ne/3+1)
	nIns := r.Intn(ne / 4)
	if r.Intn(3) == 0 {
		nIns = 0 // deletion-only streams exercise the incremental path alone
	}
	stream := GenUpdateStream(part.CurrentGraph(), nDel, nIns, r.Int63())
	return &propCase{
		seed:    seed,
		dict:    dict,
		g:       g,
		part:    part,
		q:       q,
		batches: BatchOps(stream, 1+r.Intn(10)),
	}
}

// syntheticForProp builds a small synthetic graph over a reduced
// alphabet so queries have non-trivial candidate sets.
func syntheticForProp(dict *Dict, nv, ne, nlabels int, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	b := NewGraphBuilder(dict)
	labels := ExperimentLabels()[:nlabels]
	for i := 0; i < nv; i++ {
		b.AddNode(labels[r.Intn(nlabels)])
	}
	for i := 0; i < ne; i++ {
		b.AddEdge(NodeID(r.Intn(nv)), NodeID(r.Intn(nv)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestPropertyMaintainedVsOracle(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 6
	}
	for s := 0; s < seeds; s++ {
		seed := int64(1000 + 37*s)
		t.Run("", func(t *testing.T) {
			t.Parallel()
			runPropCase(t, drawCase(t, seed))
		})
	}
}

func runPropCase(t *testing.T, pc *propCase) {
	ctx := context.Background()
	dep, err := Deploy(pc.part)
	if err != nil {
		t.Fatalf("seed %d: %v", pc.seed, err)
	}
	defer dep.Close()
	w, err := dep.Watch(ctx, pc.q)
	if err != nil {
		t.Fatalf("seed %d: %v", pc.seed, err)
	}
	defer w.Close()
	if !w.Current().Equal(Simulate(pc.q, pc.part.CurrentGraph())) {
		t.Fatalf("seed %d: initial relation diverges from oracle", pc.seed)
	}
	assign := pc.part.Assignment()
	for bi, batch := range pc.batches {
		if _, err := dep.Apply(ctx, batch); err != nil {
			t.Fatalf("seed %d batch %d: %v", pc.seed, bi, err)
		}
		cur := pc.part.CurrentGraph()
		oracle := Simulate(pc.q, cur)

		// (1) incremental maintenance == recompute.
		if !w.Current().Equal(oracle) {
			t.Fatalf("seed %d batch %d: maintained relation diverges from oracle\nwant %v\ngot  %v",
				pc.seed, bi, oracle, w.Current())
		}
		// (2) one-shot query on the mutated deployment.
		res, err := dep.Query(ctx, pc.q)
		if err != nil {
			t.Fatalf("seed %d batch %d: %v", pc.seed, bi, err)
		}
		if !res.Match.Equal(oracle) {
			t.Fatalf("seed %d batch %d: live query diverges from oracle", pc.seed, bi)
		}
		// (4) structural invariants survive in-place mutation.
		if err := pc.part.fr.Validate(); err != nil {
			t.Fatalf("seed %d batch %d: fragmentation invariant broken: %v", pc.seed, bi, err)
		}
		// (3) metamorphic: a fresh deployment of the materialized current
		// graph under the same assignment gives the same answer. Checked
		// on the final batch only — it re-fragments the world.
		if bi == len(pc.batches)-1 {
			part2, err := PartitionFromAssign(cur, assign)
			if err != nil {
				t.Fatalf("seed %d: refragment: %v", pc.seed, err)
			}
			res2, err := Run(AlgoDGPM, pc.q, part2)
			if err != nil {
				t.Fatalf("seed %d: fresh deployment: %v", pc.seed, err)
			}
			if !res2.Match.Equal(oracle) {
				t.Fatalf("seed %d: fresh-deployment query diverges from oracle", pc.seed)
			}
		}
	}
}

// TestPropertyDeletionOnlyAffectedMonotone cross-checks the distributed
// maintenance against the centralized Incremental engine on
// deletion-only streams: both must land on the oracle, and the
// centralized |AFF| accounting must match a full scan (the countDead
// regression surface).
func TestPropertyDeletionOnlyVsCentralizedIncremental(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	ctx := context.Background()
	for s := 0; s < seeds; s++ {
		seed := int64(9000 + 101*s)
		t.Run("", func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			dict := NewDict()
			nv := 30 + r.Intn(120)
			ne := nv + r.Intn(2*nv)
			nlabels := 2 + r.Intn(3)
			g := syntheticForProp(dict, nv, ne, nlabels, r.Int63())
			part, err := PartitionRandom(g, 2+r.Intn(4), r.Int63())
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			q := GenCyclicPatternOver(dict, 3+r.Intn(3), 4+r.Intn(4), nlabels, r.Int63())
			dep, err := Deploy(part)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			defer dep.Close()
			w, err := dep.Watch(ctx, q)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			inc := NewIncremental(q, g)
			stream := GenUpdateStream(g, 1+r.Intn(ne/2+1), 0, r.Int63())
			for bi, batch := range BatchOps(stream, 1+r.Intn(6)) {
				if _, err := dep.Apply(ctx, batch); err != nil {
					t.Fatalf("seed %d batch %d: %v", seed, bi, err)
				}
				for _, op := range batch {
					if err := inc.DeleteEdge(op.V, op.W); err != nil {
						t.Fatalf("seed %d batch %d: centralized delete: %v", seed, bi, err)
					}
				}
				oracle := Simulate(q, part.CurrentGraph())
				if !w.Current().Equal(oracle) {
					t.Fatalf("seed %d batch %d: distributed maintenance diverges", seed, bi)
				}
				if !inc.Current().Equal(oracle) {
					t.Fatalf("seed %d batch %d: centralized incremental diverges", seed, bi)
				}
			}
		})
	}
}
