package dgs

// Extensions beyond the paper's §4–§5 algorithms, following its §7
// future-work directions: dual simulation (the stepping stone to strong
// simulation [24]), incremental maintenance under edge deletions (the
// centralized counterpart of incremental lEval, after [13]), and a
// partition-bounded distributed acyclicity check that discharges dGPMd's
// "DAG G" precondition without assembling the graph.

import (
	"dgs/internal/dagcheck"
	"dgs/internal/graph"
	"dgs/internal/simulation"
)

// SimulateDual computes the maximum dual simulation of Q in G: plain
// simulation plus the symmetric parent condition. R_dual ⊆ R_sim.
func SimulateDual(q *Pattern, g *Graph) *Match {
	return &Match{m: simulation.DualHHK(q.p, g.g)}
}

// Incremental maintains Q(G) under edge deletions in O(|AFF|) per
// deletion. Edge insertions require recomputation (Resimulate).
type Incremental struct {
	inc *simulation.Incremental
}

// NewIncremental computes the initial relation and returns the
// maintenance state.
func NewIncremental(q *Pattern, g *Graph) *Incremental {
	return &Incremental{inc: simulation.NewIncremental(q.p, g.g)}
}

// DeleteEdge removes (v, w) and refines the relation incrementally.
func (i *Incremental) DeleteEdge(v, w NodeID) error {
	return i.inc.DeleteEdge(graph.NodeID(v), graph.NodeID(w))
}

// Current returns the maintained relation.
func (i *Incremental) Current() *Match { return &Match{m: i.inc.Current()} }

// Affected reports the cumulative |AFF| — variables falsified by
// deletions so far.
func (i *Incremental) Affected() int { return i.inc.Affected() }

// IsDAGDistributed decides the data graph's acyclicity with the
// partition-bounded boundary-summary protocol: per-site local cycle check
// plus in-node→virtual reachability pairs, assembled at the coordinator.
// Data shipment is bounded by Σ|Fi.I|·|Fi.O|, independent of |G|.
func IsDAGDistributed(part *Partition) (bool, Stats) {
	ok, st := dagcheck.IsDAG(part.fr)
	return ok, fromCluster(st)
}
