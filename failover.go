package dgs

// Fault tolerance: surviving the loss of a site (a dgsd daemon, or a
// killed site under fault injection) without tearing the deployment
// down. The transport detects the loss (TCP: heartbeat timeout or a
// failed socket op; faultnet: a scripted kill) and suspends the cluster
// with an error wrapping cluster.ErrSiteLost — in-flight queries fail
// with the retryable ErrSiteLost, new operations fail fast. Recovery
// re-ships the lost fragments from the driver's retained state (spare
// daemon first, else a redeploy-capable survivor), resumes the cluster,
// and re-registers every standing query. With WithHeartbeat or
// WithSpareSites configured, recovery runs automatically on detection;
// Recover triggers it manually. See DESIGN.md §"Fault tolerance".

import (
	"context"
	"errors"
	"time"

	"dgs/internal/cluster"
)

// ErrSiteLost marks an operation aborted because a site was lost
// mid-flight — a daemon crashed, its connection died, or fault
// injection killed it. Unlike ErrClosed it is retryable: once the
// deployment recovers (automatically, or via Recover), the same call
// succeeds against the restored graph. Returned wrapped; test with
// errors.Is.
var ErrSiteLost = errors.New("site lost")

// WithSpareSites lists standby dgsd daemons for a WithRemoteSites
// deployment. Spares host nothing at Deploy time; when a serving daemon
// is lost, recovery dials the next spare and ships it the lost
// fragments (falling back to doubling up on a survivor when no spare is
// left). Listing spares also enables automatic recovery on loss
// detection.
func WithSpareSites(addrs ...string) DeployOption {
	return func(dc *deployConfig) { dc.spares = append(dc.spares, addrs...) }
}

// WithHeartbeat enables the driver→daemon liveness probe of a
// WithRemoteSites deployment: every interval each idle connection is
// PINGed, and one silent for misses consecutive intervals (misses <= 0
// means 3) is declared lost after a dial-back probe. Detection feeds
// automatic recovery. Without this option a loss still surfaces — on
// the next socket operation instead of within misses×interval.
func WithHeartbeat(interval time.Duration, misses int) DeployOption {
	return func(dc *deployConfig) { dc.hbInterval = interval; dc.hbMisses = misses }
}

// publicErr translates a cluster-layer failure into the deployment's
// public sentinels so callers can test with errors.Is against the dgs
// vocabulary instead of reaching into internal packages.
func publicErr(err error) error {
	switch {
	case errors.Is(err, cluster.ErrSiteLost):
		return errorf("%v: %w", err, ErrSiteLost)
	case errors.Is(err, cluster.ErrClosed):
		return errorf("%v: %w", err, ErrClosed)
	default:
		return err
	}
}

// bindFailover wires loss detection to the deployment after its cluster
// is built: autoRecover reflects whether the caller opted into
// automatic failover (spares or heartbeat configured).
func (d *Deployment) bindFailover(autoRecover bool) {
	d.autoRecover = autoRecover
	ln, ok := d.c.Transport().(cluster.LossNotifier)
	if !ok {
		return
	}
	// The callback runs on the transport's detection path and must not
	// block; recovery proceeds on its own goroutine. Without
	// autoRecover the loss only suspends the cluster — operations fail
	// fast with ErrSiteLost until Recover is called (chaos tests rely
	// on this to keep scripted schedules deterministic).
	ln.OnSiteLoss(func(err error) {
		if !d.autoRecover {
			return
		}
		go d.autoRecoverLoop()
	})
}

// autoRecoverLoop drives automatic recovery with bounded retries; if
// recovery is impossible (no spare and no redeploy-capable survivor,
// daemons unreachable), the deployment is poisoned so waiters see a
// permanent failure instead of an indefinite suspension.
func (d *Deployment) autoRecoverLoop() {
	const tries = 3
	var err error
	for i := 0; i < tries; i++ {
		if i > 0 {
			time.Sleep(time.Duration(i) * 500 * time.Millisecond)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		err = d.Recover(ctx)
		cancel()
		if err == nil || errors.Is(err, ErrClosed) {
			return
		}
	}
	// Deliberately not wrapping ErrSiteLost: a non-recoverable cause
	// kills the cluster for good rather than re-suspending it.
	d.c.Fail(0, errorf("failover: recovery failed after %d attempts: %v", tries, err))
}

// Recover re-establishes a full serving substrate after site loss: the
// lost fragments are re-shipped from the driver's retained state (a
// spare daemon if available, else doubled up on a survivor), the
// cluster resumes, and every standing query re-registers by
// re-evaluation. If an Apply batch was interrupted by the loss, every
// site's fragments are re-shipped so partial mutations cannot survive.
// No-op when nothing is lost. Safe to call concurrently with queries
// (they serialize behind the graph lock) and with automatic recovery.
func (d *Deployment) Recover(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return errorf("recover: %w", ErrClosed)
	}
	rec, ok := d.c.Transport().(cluster.Recoverer)
	if !ok {
		return errorf("recover: transport %T cannot recover lost sites", d.c.Transport())
	}
	d.recoverMu.Lock()
	defer d.recoverMu.Unlock()
	// Exclusive graph access: no query may run while fragments are in
	// transit, and the driver's fragmentation must not move under the
	// shipment.
	d.state.Lock()
	suspended, _ := d.c.Suspended()
	if !suspended && len(rec.Lost()) == 0 {
		d.state.Unlock()
		return nil
	}
	full := d.applyInterrupted
	if err := rec.Recover(ctx, d.part.fr, full); err != nil {
		d.state.Unlock()
		return errorf("recover: %w", publicErr(err))
	}
	d.applyInterrupted = false
	d.c.Resume()
	d.failovers.Add(1)
	d.state.Unlock()

	// Standing queries lost their maintenance sessions with the site;
	// re-register each by re-evaluating against the recovered graph.
	d.watchMu.Lock()
	watchers := make([]*Maintained, 0, len(d.watchers))
	for w := range d.watchers {
		watchers = append(watchers, w)
	}
	d.watchMu.Unlock()
	var firstErr error
	for _, w := range watchers {
		if err := w.Refresh(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return errorf("recover: standing query re-registration: %w", publicErr(firstErr))
	}
	return nil
}

// Failovers reports how many recoveries this deployment has completed —
// the observable trace of kills survived. Exposed by the gateway's
// /stats.
func (d *Deployment) Failovers() int64 { return d.failovers.Load() }
