// Impossibility: the empirical face of Theorem 1 (§3.1).
//
// The paper proves no distributed simulation algorithm is parallel
// scalable: with the Fig-2 gadget — Q0 = A⇄B over a chain
// A1→B1→A2→B2→…→An, one (Ai,Bi) pair per site — deciding whether the
// chain closes into a cycle requires information to cross Θ(n) sites no
// matter the algorithm. This example runs dGPM on the gadget for growing
// n and shows the causal falsification chain: messages and shipped bytes
// grow linearly with the number of fragments even though |Q| and every
// fragment stay constant-size. (On the closed cycle, everything matches
// and there is nothing to falsify.)
//
// Run: go run ./examples/impossibility
package main

import (
	"context"
	"fmt"
	"log"

	"dgs"
)

func main() {
	dict := dgs.NewDict()
	q := dgs.ChainQuery(dict)
	fmt.Println("Q0 = A⇄B; G0 = broken chain with one (Ai,Bi) pair per site")
	fmt.Printf("%6s %10s %12s %12s\n", "sites", "match", "messages", "DS (bytes)")

	ctx := context.Background()
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		g := dgs.GenChain(dict, n, false) // broken: the last B has no successor
		part, err := dgs.PartitionChain(g, n)
		if err != nil {
			log.Fatal(err)
		}
		dep, err := dgs.Deploy(part)
		if err != nil {
			log.Fatal(err)
		}
		ok, st, err := dep.QueryBoolean(ctx, q)
		dep.Close()
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			log.Fatal("broken chain must not match")
		}
		fmt.Printf("%6d %10v %12d %12d\n", n, ok, st.DataMsgs, st.DataBytes)
	}

	fmt.Println("\nclosed cycle for contrast (everything matches, nothing to falsify):")
	for _, n := range []int{4, 64} {
		g := dgs.GenChain(dict, n, true)
		part, err := dgs.PartitionChain(g, n)
		if err != nil {
			log.Fatal(err)
		}
		dep, err := dgs.Deploy(part)
		if err != nil {
			log.Fatal(err)
		}
		ok, st, err := dep.QueryBoolean(ctx, q)
		dep.Close()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			log.Fatal("closed cycle must match")
		}
		fmt.Printf("%6d %10v %12d %12d\n", n, ok, st.DataMsgs, st.DataBytes)
	}

	fmt.Println("\nmessages grow with the number of fragments — response time and")
	fmt.Println("shipment cannot be bounded by |Q| and |Fm| alone (Theorem 1) ✓")
}
