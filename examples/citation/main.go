// Citation: DAG analytics with dGPMd (§5.1).
//
// Citation networks are DAGs (papers cite older papers), the setting of
// the paper's Exp-2. dGPMd schedules falsification shipping by the
// topological rank of query nodes: at most d batched waves instead of an
// unbounded fixpoint exchange, making it parallel scalable in response
// time for a fixed number of fragments (Theorem 3).
//
// Run: go run ./examples/citation
package main

import (
	"context"
	"fmt"
	"log"

	"dgs"
)

func main() {
	dict := dgs.NewDict()
	g := dgs.GenCitation(dict, 28_000, 60_000, 11)
	fmt.Println("citation graph:", g, "DAG:", g.IsDAG())

	part, err := dgs.PartitionTargetRatio(g, 8, dgs.ByVf, 0.25, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("partition:     ", part)

	// Fragment the citation DAG once; the deployment defaults every
	// query to dGPMd with the DAG-G assertion.
	dep, err := dgs.Deploy(part, dgs.WithQueryDefaults(
		dgs.WithAlgorithm(dgs.AlgoDGPMd), dgs.WithGraphIsDAG()))
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	ctx := context.Background()

	// DAG queries of growing diameter: "papers whose citation chain
	// reaches d hops deep through specific venues".
	for _, d := range []int{2, 4, 6} {
		q, err := dgs.GenDAGPattern(dict, 9, 13, d, int64(40+d))
		if err != nil {
			log.Fatal(err)
		}
		res, err := dep.Query(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Match.Equal(dgs.Simulate(q, g)) {
			log.Fatal("dGPMd differs from centralized simulation")
		}
		fmt.Printf("d=%d: ok=%-5v pairs=%-6d PT=%8v DS=%8.2f KB waves(messages)=%d\n",
			d, res.Match.Ok(), res.Match.NumPairs(), res.Stats.Wall.Round(0),
			float64(res.Stats.DataBytes)/1024, res.Stats.DataMsgs)
	}

	// A cyclic query on a DAG needs no distributed work at all: Tarjan on
	// Q decides Q(G) = ∅ (§5.1 "DAG G").
	cyc, err := dgs.ParsePattern(dict, "node a l0\nnode b l1\nedge a b\nedge b a")
	if err != nil {
		log.Fatal(err)
	}
	res, err := dep.Query(ctx, cyc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cyclic Q on DAG G: ok=%v with %d bytes shipped (shortcut) ✓\n",
		res.Match.Ok(), res.Stats.DataBytes)
}
