// Social: the paper's motivating scenario at scale — finding potential
// customers in a distributed social/web graph (§1).
//
// We generate a web-scale-ish graph with skewed interest labels, spread
// it over 8 sites at the paper's |Vf| = 25% boundary, and ask a cyclic
// trust-recommendation query. The example contrasts dGPM against the
// naive Match baseline: same answer, but dGPM ships falsified Boolean
// variables while Match ships the entire graph.
//
// Run: go run ./examples/social
package main

import (
	"context"
	"fmt"
	"log"

	"dgs"
)

func main() {
	dict := dgs.NewDict()
	g := dgs.GenWeb(dict, 60_000, 300_000, 7)
	fmt.Println("graph:    ", g)

	// A beer-brand style query over the three most common interest
	// labels: a recommendation cycle with an influencer feeding into it.
	q, err := dgs.ParsePattern(dict, `
node influencer l1
node fan        l0
node foodie     l2
node media      l0
edge influencer fan
edge influencer foodie
edge fan        foodie
edge foodie     media
edge media      fan
`)
	if err != nil {
		log.Fatal(err)
	}

	part, err := dgs.PartitionTargetRatio(g, 8, dgs.ByVf, 0.25, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("partition:", part)

	// One deployment with the EC2-like link model serves both
	// algorithms; the network is a deployment property, not a process
	// global.
	dep, err := dgs.Deploy(part, dgs.WithNetwork(dgs.EC2Network()))
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	want := dgs.Simulate(q, g)
	fmt.Printf("\ncentralized ground truth: ok=%v pairs=%d\n", want.Ok(), want.NumPairs())

	for _, algo := range []dgs.Algorithm{dgs.AlgoDGPM, dgs.AlgoMatch} {
		res, err := dep.Query(context.Background(), q, dgs.WithAlgorithm(algo))
		if err != nil {
			log.Fatal(err)
		}
		if !res.Match.Equal(want) {
			log.Fatalf("%s: wrong answer", algo)
		}
		fmt.Printf("%-8s PT=%8v   DS=%10.2f KB   msgs=%d\n",
			algo, res.Stats.Wall.Round(0), float64(res.Stats.DataBytes)/1024, res.Stats.DataMsgs)
	}
	fmt.Println("\nboth algorithms agree; dGPM ships a fraction of the bytes ✓")
}
