// Trees: parallel scalability in data shipment with dGPMt (§5.2).
//
// When the data graph is a tree and every fragment is a connected
// subtree, dGPMt needs exactly two coordinator round trips and ships
// O(|Q||F|) bytes — independent of |G| (Corollary 4, matching the XPath
// bounds of Cong et al. [10]). This example evaluates an XML-ish
// document-structure query over trees of growing size and shows the
// shipment staying flat while the tree grows 16×.
//
// Run: go run ./examples/trees
package main

import (
	"context"
	"fmt"
	"log"

	"dgs"
)

func main() {
	dict := dgs.NewDict()
	// "Sections containing a figure with a caption" — tree-shaped query.
	q, err := dgs.ParsePattern(dict, `
node section l1
node figure  l2
node caption l3
edge section figure
edge figure  caption
`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%10s %8s %10s %12s %10s\n", "|V|", "|F|", "pairs", "DS (bytes)", "rounds")
	for _, nv := range []int{20_000, 80_000, 320_000} {
		g := dgs.GenTree(dict, nv, 3)
		part, err := dgs.PartitionTree(g, 8)
		if err != nil {
			log.Fatal(err)
		}
		dep, err := dgs.Deploy(part, dgs.WithQueryDefaults(dgs.WithAlgorithm(dgs.AlgoDGPMt)))
		if err != nil {
			log.Fatal(err)
		}
		res, err := dep.Query(context.Background(), q)
		if err != nil {
			dep.Close()
			log.Fatal(err)
		}
		if !res.Match.Equal(dgs.Simulate(q, g)) {
			dep.Close()
			log.Fatal("dGPMt differs from centralized simulation")
		}
		fmt.Printf("%10d %8d %10d %12d %10d\n",
			nv, part.NumFragments(), res.Match.NumPairs(), res.Stats.DataBytes, res.Stats.Rounds)
		dep.Close()
	}
	fmt.Println("\nshipment tracks |Q||F|, not |G| — parallel scalable in DS ✓")
}
