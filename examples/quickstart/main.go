// Quickstart: the running example of the paper (Fig. 1) end to end.
//
// A company wants potential customers for a beer brand: Youtube users who
// favor beer ads (YB) and trust-recommendation cycles among soccer fans
// (SP), food lovers (F) and worldcup fans (YF). The social graph is
// distributed over three sites — fragmented ONCE into a persistent
// Deployment — and then serves multiple pattern queries against the
// resident fragments; dGPM finds each unique maximum simulation without
// ever shipping graph data — only falsified Boolean variables.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"dgs"
)

func main() {
	dict := dgs.NewDict()

	// The pattern query Q of Fig. 1: YB trusts feed YF and F; SP, YF, F
	// form a recommendation cycle.
	q, err := dgs.ParsePattern(dict, `
node YB YB
node YF YF
node F  F
node SP SP
edge YB YF
edge YB F
edge SP YF
edge YF F
edge F  SP
`)
	if err != nil {
		log.Fatal(err)
	}

	// The data graph G of Fig. 1 (13 people) and its 3-site distribution.
	b := dgs.NewGraphBuilder(dict)
	ids := map[string]dgs.NodeID{}
	node := func(name, label string) { ids[name] = b.AddNode(label) }
	for _, n := range []struct{ name, label string }{
		{"yb1", "YB"}, {"yf1", "YF"}, {"sp1", "SP"}, {"f1", "F"}, // site S1
		{"f2", "F"}, {"f3", "F"}, {"yb2", "YB"}, {"sp2", "SP"}, {"yf2", "YF"}, {"yf3", "YF"}, // S2
		{"f4", "F"}, {"sp3", "SP"}, {"yb3", "YB"}, // S3
	} {
		node(n.name, n.label)
	}
	edge := func(a, c string) { b.AddEdge(ids[a], ids[c]) }
	for _, e := range [][2]string{
		{"yf1", "f2"}, {"sp1", "yf2"}, {"sp1", "f2"}, {"f2", "sp1"},
		{"yf2", "f2"}, {"f3", "sp2"}, {"sp2", "yf3"}, {"yf3", "f4"},
		{"f4", "sp3"}, {"sp3", "yf1"}, {"yb2", "yf3"}, {"yb2", "f3"},
		{"yb3", "yf1"}, {"yb3", "f4"}, {"yb1", "f1"}, {"f1", "f4"},
	} {
		edge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	site := map[string]int32{
		"yb1": 0, "yf1": 0, "sp1": 0, "f1": 0,
		"f2": 1, "f3": 1, "yb2": 1, "sp2": 1, "yf2": 1, "yf3": 1,
		"f4": 2, "sp3": 2, "yb3": 2,
	}
	assign := make([]int32, g.NumNodes())
	for name, id := range ids {
		assign[id] = site[name]
	}
	part, err := dgs.PartitionFromAssign(g, assign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:    ", g)
	fmt.Println("partition:", part)

	// Fragment once: the three sites come up and the fragments become
	// resident. The deployment then serves every query below.
	dep, err := dgs.Deploy(part)
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	ctx := context.Background()

	// Query 1: the full Fig. 1 pattern, evaluated with dGPM.
	res, err := dep.Query(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQ(G) =", res.Match.Ok())
	name := func(v dgs.NodeID) string {
		for n, id := range ids {
			if id == v {
				return n
			}
		}
		return fmt.Sprint(v)
	}
	for u := 0; u < q.NumNodes(); u++ {
		fmt.Printf("  %-3s matches:", q.NodeName(dgs.QNode(u)))
		for _, v := range res.Match.MatchesOf(dgs.QNode(u)) {
			fmt.Printf(" %s", name(v))
		}
		fmt.Println()
	}
	fmt.Printf("\nPT %v, DS %d bytes in %d messages\n",
		res.Stats.Wall.Round(0), res.Stats.DataBytes, res.Stats.DataMsgs)

	// Sanity: the distributed result equals centralized simulation, and
	// matches Example 2 of the paper (f1 and yb1 are not matches).
	if !res.Match.Equal(dgs.Simulate(q, g)) {
		log.Fatal("distributed result differs from centralized simulation")
	}
	if res.Match.Contains(2, ids["f1"]) {
		log.Fatal("f1 must not match F — nobody trusts f1's recommendations")
	}
	fmt.Println("verified against centralized simulation ✓")

	// Query 2: a follow-up on the SAME deployment — no re-fragmentation,
	// no substrate restart: "worldcup fans who recommend a food lover".
	q2, err := dgs.ParsePattern(dict, "node YF YF\nnode F F\nedge YF F")
	if err != nil {
		log.Fatal(err)
	}
	res2, err := dep.Query(ctx, q2)
	if err != nil {
		log.Fatal(err)
	}
	if !res2.Match.Equal(dgs.Simulate(q2, g)) {
		log.Fatal("second query differs from centralized simulation")
	}
	fmt.Printf("\nquery 2 on the same deployment: %d pairs, PT %v, DS %d bytes\n",
		res2.Match.NumPairs(), res2.Stats.Wall.Round(0), res2.Stats.DataBytes)

	// Query 3: the Boolean variant, this time with the dMes baseline —
	// per-query algorithm selection against the same resident fragments.
	okB, stB, err := dep.QueryBoolean(ctx, q, dgs.WithAlgorithm(dgs.AlgoDMes))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query 3 (dMes, Boolean): %v with DS %d bytes — dGPM shipped %d ✓\n",
		okB, stB.DataBytes, res.Stats.DataBytes)
}
