package dgs

// Planner-layer tests: the planner-on/planner-off parity matrix (plans
// are advisory — the counter fixpoint is confluent, so both arms must
// produce identical results with identical result accounting), the
// absent-label short-circuit (zero distributed work, zero wire frames),
// canonical-key sharing of standing queries (equivalent-modulo-renaming
// Watches join one maintenance session and pay each batch once), and
// the Explain inspection surface.

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestPlannerParityMatrix runs every algorithm over a default
// (planner-on) and a WithPlannerDisabled deployment of the same
// partition, across all three transports (in-process, coalescing TCP,
// v1-pinned TCP): the match relations must be identical — both equal
// the centralized oracle — and so must the result accounting
// (ResultBytes serializes the final relation, which order cannot
// change).
func TestPlannerParityMatrix(t *testing.T) {
	ctx := context.Background()
	type world struct {
		name string
		g    *Graph
		part *Partition
		qs   []confQuery
		tree bool
	}
	mkWorlds := func(t *testing.T) []world {
		t.Helper()
		var out []world
		{
			dict := NewDict()
			g := GenSynthetic(dict, 400, 1200, 91)
			part, err := PartitionRandom(g, 4, 91)
			if err != nil {
				t.Fatal(err)
			}
			dq, err := GenDAGPattern(dict, 5, 7, 3, 92)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, world{
				name: "cyclic", g: g, part: part,
				qs: []confQuery{
					{"cyclicQ", GenCyclicPatternOver(dict, 4, 6, 4, 93)},
					{"dagQ", dq},
				},
			})
		}
		{
			dict := NewDict()
			g := GenTree(dict, 400, 94)
			part, err := PartitionTree(g, 4)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, world{
				name: "tree", g: g, part: part, tree: true,
				qs:   []confQuery{{"treeQ", GenTreePattern(dict, 4, 95)}},
			})
		}
		return out
	}
	for _, mode := range confModes(t) {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			worlds := mkWorlds(t)
			type rec struct {
				m           *Match
				resultBytes int64
			}
			var arms [2]map[string]rec
			for arm := 0; arm < 2; arm++ {
				off := arm == 1
				recs := make(map[string]rec)
				covered := make(map[Algorithm]bool)
				for _, wl := range worlds {
					opts := mode.extra(t)
					if off {
						opts = append(opts, WithPlannerDisabled())
					}
					dep, err := Deploy(wl.part, opts...)
					if err != nil {
						t.Fatal(err)
					}
					if (dep.Planner() == "") != off {
						dep.Close()
						t.Fatalf("planner %q on deployment with plannerOff=%v", dep.Planner(), off)
					}
					for _, cq := range wl.qs {
						oracle := Simulate(cq.q, wl.g)
						for _, algo := range confAlgos {
							var qopts []QueryOption
							switch algo {
							case AlgoDGPMd:
								if !cq.q.IsDAG() && !wl.tree {
									continue
								}
								if wl.tree {
									qopts = append(qopts, WithGraphIsDAG())
								}
							case AlgoDGPMt:
								if !wl.tree {
									continue
								}
							}
							name := fmt.Sprintf("%s/%s/%s", wl.name, cq.name, algo)
							res, err := dep.Query(ctx, cq.q, append(qopts, WithAlgorithm(algo))...)
							if err != nil {
								dep.Close()
								t.Fatalf("%s (off=%v): %v", name, off, err)
							}
							if !res.Match.Equal(oracle) {
								dep.Close()
								t.Fatalf("%s (off=%v): diverges from Simulate", name, off)
							}
							recs[name] = rec{res.Match, res.Stats.ResultBytes}
							covered[algo] = true
						}
					}
					dep.Close()
				}
				for _, algo := range confAlgos {
					if !covered[algo] {
						t.Fatalf("algorithm %s was never exercised by the parity matrix", algo)
					}
				}
				arms[arm] = recs
			}
			if len(arms[0]) != len(arms[1]) {
				t.Fatalf("arms ran different combinations: %d vs %d", len(arms[0]), len(arms[1]))
			}
			for name, on := range arms[0] {
				off, ok := arms[1][name]
				if !ok {
					t.Fatalf("%s ran only in the planner-on arm", name)
				}
				if !on.m.Equal(off.m) {
					t.Fatalf("%s: planner-on and planner-off relations diverge", name)
				}
				if on.resultBytes != off.resultBytes {
					t.Fatalf("%s: ResultBytes differ across arms: on=%d off=%d",
						name, on.resultBytes, off.resultBytes)
				}
			}
		})
	}
}

// TestQueryAbsentLabelShortCircuit: a query whose label has no
// occurrence in the deployed graph answers ∅ without opening a session
// — zero stats in-process, and on a TCP deployment zero wire frames
// moved (the regression surface: the short-circuit must fire before any
// transport work).
func TestQueryAbsentLabelShortCircuit(t *testing.T) {
	ctx := context.Background()
	dict := NewDict()
	g := GenSynthetic(dict, 300, 900, 61)
	q, err := ParsePattern(dict, "node a zz_absent\nnode b l0\nedge a b")
	if err != nil {
		t.Fatal(err)
	}
	oracle := Simulate(q, g)
	if oracle.Ok() {
		t.Fatal("oracle sanity: absent-label pattern must not match")
	}

	t.Run("inproc", func(t *testing.T) {
		part, err := PartitionRandom(g, 4, 61)
		if err != nil {
			t.Fatal(err)
		}
		dep, err := Deploy(part)
		if err != nil {
			t.Fatal(err)
		}
		defer dep.Close()
		for _, algo := range confAlgos {
			if algo == AlgoDGPMt {
				continue // needs a tree world; the short-circuit is algorithm-independent
			}
			res, err := dep.Query(ctx, q, WithAlgorithm(algo))
			if err != nil {
				t.Fatalf("%s: %v", algo, err)
			}
			if res.Match.Ok() || res.Match.NumPairs() != 0 || !res.Match.Equal(oracle) {
				t.Fatalf("%s: absent-label query returned a non-empty relation", algo)
			}
			if res.Stats != (Stats{}) {
				t.Fatalf("%s: absent-label query did distributed work: %+v", algo, res.Stats)
			}
		}
		// The planner-off arm computes the same ∅ the long way.
		part2, err := PartitionRandom(g, 4, 61)
		if err != nil {
			t.Fatal(err)
		}
		depOff, err := Deploy(part2, WithPlannerDisabled())
		if err != nil {
			t.Fatal(err)
		}
		defer depOff.Close()
		res, err := depOff.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Match.Equal(oracle) {
			t.Fatal("planner-off absent-label query diverges from oracle")
		}
	})

	t.Run("tcp", func(t *testing.T) {
		if testing.Short() {
			t.Skip("loopback-TCP short-circuit skipped in -short mode")
		}
		part, err := PartitionRandom(g, 4, 62)
		if err != nil {
			t.Fatal(err)
		}
		addrs := startSiteServers(t, 2)
		dep, err := Deploy(part, WithRemoteSites(addrs...))
		if err != nil {
			t.Fatal(err)
		}
		defer dep.Close()
		// Warm up with a real query so the sockets have settled traffic,
		// then let trailing acks drain before snapshotting the meters.
		warm := GenCyclicPatternOver(dict, 3, 5, 4, 63)
		if _, err := dep.Query(ctx, warm); err != nil {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Millisecond)
		sent0, recv0 := dep.WireFrames()
		res, err := dep.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Match.Ok() || !res.Match.Equal(oracle) {
			t.Fatal("remote absent-label query returned a non-empty relation")
		}
		if res.Stats.WireBytes != 0 {
			t.Fatalf("absent-label query metered %d wire bytes, want 0", res.Stats.WireBytes)
		}
		sent1, recv1 := dep.WireFrames()
		if sent1 != sent0 || recv1 != recv0 {
			t.Fatalf("absent-label query moved wire frames: sent %d->%d received %d->%d",
				sent0, sent1, recv0, recv1)
		}
	})
}

// TestWatchSharedAcrossRenamedPatterns: on a planner-on deployment,
// Watches whose patterns are equal modulo node renaming share one
// union-session block (the joiner pays nothing), distinct patterns
// coexist as separate blocks of the same session, every handle reads
// its relation through its own node names, and the session is torn down
// when the last handle closes.
func TestWatchSharedAcrossRenamedPatterns(t *testing.T) {
	ctx := context.Background()
	dict := NewDict()
	g := GenSynthetic(dict, 300, 900, 71)
	part, err := PartitionRandom(g, 4, 71)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(part)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	parse := func(src string) *Pattern {
		t.Helper()
		q, err := ParsePattern(dict, src)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	q1 := parse("node a l0\nnode b l1\nedge a b\nedge b a")
	q2 := parse("node p l1\nnode q l0\nedge p q\nedge q p") // q1 renamed and reordered
	q3 := parse("node a l0\nnode b l1\nedge a b")           // structurally distinct
	if q1.CanonicalKey() != q2.CanonicalKey() {
		t.Fatal("renamed-equivalent patterns must share a canonical key")
	}
	if q1.CanonicalKey() == q3.CanonicalKey() {
		t.Fatal("distinct patterns must not share a canonical key")
	}

	w1, err := dep.Watch(ctx, q1)
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	w2, err := dep.Watch(ctx, q2)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w1.shard == nil || w1.shard != w2.shard {
		t.Fatal("equivalent watches must share the maintenance session")
	}
	if w1.block != w2.block {
		t.Fatal("equivalent watches must share one union block")
	}
	w3, err := dep.Watch(ctx, q3)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if w3.shard != w1.shard {
		t.Fatal("distinct watch must join the same shared session")
	}
	if w3.block == w1.block {
		t.Fatal("distinct watch must get its own block")
	}
	checkAll := func(stage string) {
		t.Helper()
		cur := part.CurrentGraph()
		for i, wq := range []struct {
			w *Maintained
			q *Pattern
		}{{w1, q1}, {w2, q2}, {w3, q3}} {
			if wq.w.Stale() {
				t.Fatalf("%s: watch %d is stale", stage, i+1)
			}
			if !wq.w.Current().Equal(Simulate(wq.q, cur)) {
				t.Fatalf("%s: watch %d diverges from its oracle", stage, i+1)
			}
		}
	}
	checkAll("initial")

	// Deletion-only batches are absorbed incrementally, once per batch.
	stream := GenUpdateStream(part.CurrentGraph(), 40, 0, 72)
	for bi, batch := range BatchOps(stream, 20) {
		st, err := dep.Apply(ctx, batch)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		if st.Reevaluated != 0 {
			t.Fatalf("batch %d: deletion-only batch re-evaluated %d handles", bi, st.Reevaluated)
		}
		checkAll(fmt.Sprintf("deletion batch %d", bi))
	}

	// An insertion batch re-evaluates the shared session ONCE: every
	// handle reports the re-evaluation, but the maintenance bill is one
	// window's cost, not one per handle.
	ins := GenUpdateStream(part.CurrentGraph(), 5, 25, 73)
	st, err := dep.Apply(ctx, ins)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reevaluated != 3 {
		t.Fatalf("Reevaluated = %d, want 3 (every handle reports the shared re-evaluation)", st.Reevaluated)
	}
	if st.Maintenance.DataBytes != w1.LastStats().DataBytes {
		t.Fatalf("maintenance bill %d B != one session window %d B (shared session must pay once)",
			st.Maintenance.DataBytes, w1.LastStats().DataBytes)
	}
	checkAll("insertion batch")

	// Closing one handle of a shared block leaves the others live.
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	more := GenUpdateStream(part.CurrentGraph(), 20, 0, 74)
	if _, err := dep.Apply(ctx, more); err != nil {
		t.Fatal(err)
	}
	cur := part.CurrentGraph()
	if !w2.Current().Equal(Simulate(q2, cur)) || !w3.Current().Equal(Simulate(q3, cur)) {
		t.Fatal("surviving watches diverge after a peer closed")
	}

	// The last close tears the session down; a fresh Watch starts anew.
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w3.Close(); err != nil {
		t.Fatal(err)
	}
	if w3.shard.st != nil || w3.shard.blocks != nil {
		t.Fatal("session must close when the last handle departs")
	}
	w4, err := dep.Watch(ctx, q1)
	if err != nil {
		t.Fatal(err)
	}
	defer w4.Close()
	if !w4.Current().Equal(Simulate(q1, part.CurrentGraph())) {
		t.Fatal("fresh watch after teardown diverges from oracle")
	}
}

// TestWatchAbsentLabelStatic: a standing query over an absent label
// never opens a maintenance session — its handle serves ∅ statically
// and no Apply batch re-evaluates or stales it (edge updates cannot
// mint label occurrences).
func TestWatchAbsentLabelStatic(t *testing.T) {
	ctx := context.Background()
	dict := NewDict()
	g := GenSynthetic(dict, 200, 600, 75)
	part, err := PartitionRandom(g, 4, 75)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(part)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	q, err := ParsePattern(dict, "node a zz_ghost\nnode b l0\nedge a b")
	if err != nil {
		t.Fatal(err)
	}
	w, err := dep.Watch(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.shard != nil {
		t.Fatal("absent-label watch opened a maintenance session")
	}
	if w.Current().Ok() || w.Current().NumPairs() != 0 {
		t.Fatal("absent-label watch must serve ∅")
	}
	// Deletions and insertions flow past it without any refresh work.
	stream := GenUpdateStream(part.CurrentGraph(), 10, 20, 76)
	st, err := dep.Apply(ctx, stream)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reevaluated != 0 {
		t.Fatalf("static handle re-evaluated: %+v", st)
	}
	if st.Maintenance != (Stats{}) {
		t.Fatalf("static handle billed maintenance: %+v", st.Maintenance)
	}
	if w.Stale() {
		t.Fatal("static handle went stale")
	}
	if !w.Current().Equal(Simulate(q, part.CurrentGraph())) {
		t.Fatal("static handle diverges from oracle after updates")
	}
	// Refresh on a static handle is a no-op, not an error.
	if err := w.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	// The planner-off baseline evaluates the same pattern with a real
	// session and reaches the same ∅.
	part2, err := PartitionRandom(g, 4, 75)
	if err != nil {
		t.Fatal(err)
	}
	depOff, err := Deploy(part2, WithPlannerDisabled())
	if err != nil {
		t.Fatal(err)
	}
	defer depOff.Close()
	wOff, err := depOff.Watch(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	defer wOff.Close()
	if wOff.shard == nil {
		t.Fatal("planner-off watch must hold its own session")
	}
	if wOff.Current().Ok() {
		t.Fatal("planner-off absent-label watch must still serve ∅")
	}
}

// TestSharedMaintenanceCheaperThanIndependent: 4 equivalent standing
// queries on a planner-on deployment share one session, so an
// insertion batch (full re-evaluation) bills roughly a quarter of what
// 4 independent planner-off sessions pay. The acceptance bar is ≥1.5×;
// the structural expectation is ~4×, so assert ≥2×.
func TestSharedMaintenanceCheaperThanIndependent(t *testing.T) {
	ctx := context.Background()
	dict := NewDict()
	g := GenSynthetic(dict, 400, 1200, 81)
	renamings := []string{
		"node a l0\nnode b l1\nedge a b\nedge b a",
		"node x l0\nnode y l1\nedge x y\nedge y x",
		"node m l1\nnode n l0\nedge m n\nedge n m",
		"node s l1\nnode t l0\nedge t s\nedge s t",
	}
	qs := make([]*Pattern, len(renamings))
	for i, src := range renamings {
		q, err := ParsePattern(dict, src)
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
		if q.CanonicalKey() != qs[0].CanonicalKey() {
			t.Fatalf("renaming %d does not share the canonical key", i)
		}
	}
	deployArm := func(off bool) (*Deployment, *Partition, []*Maintained) {
		t.Helper()
		part, err := PartitionRandom(g, 4, 81)
		if err != nil {
			t.Fatal(err)
		}
		var opts []DeployOption
		if off {
			opts = append(opts, WithPlannerDisabled())
		}
		dep, err := Deploy(part, opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dep.Close() })
		ws := make([]*Maintained, len(qs))
		for i, q := range qs {
			if ws[i], err = dep.Watch(ctx, q); err != nil {
				t.Fatal(err)
			}
		}
		return dep, part, ws
	}
	depShared, partShared, wsShared := deployArm(false)
	depSolo, partSolo, wsSolo := deployArm(true)
	for i := 1; i < len(wsShared); i++ {
		if wsShared[i].shard != wsShared[0].shard || wsShared[i].block != wsShared[0].block {
			t.Fatal("planner-on equivalent watches must share one block")
		}
		if wsSolo[i].shard == wsSolo[0].shard {
			t.Fatal("planner-off watches must hold independent sessions")
		}
	}

	// The same batch (valid against both arms' identical graphs), with
	// insertions so every session re-evaluates.
	ops := GenUpdateStream(partShared.CurrentGraph(), 10, 30, 82)
	stShared, err := depShared.Apply(ctx, ops)
	if err != nil {
		t.Fatal(err)
	}
	stSolo, err := depSolo.Apply(ctx, ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if !wsShared[i].Current().Equal(Simulate(q, partShared.CurrentGraph())) {
			t.Fatalf("shared watch %d diverges from oracle", i)
		}
		if !wsSolo[i].Current().Equal(Simulate(q, partSolo.CurrentGraph())) {
			t.Fatalf("independent watch %d diverges from oracle", i)
		}
	}
	shared, solo := stShared.Maintenance.DataBytes, stSolo.Maintenance.DataBytes
	if solo == 0 {
		t.Fatal("independent maintenance metered no bytes; the workload is too small to compare")
	}
	if solo < 2*shared {
		t.Fatalf("shared maintenance not cheaper: shared=%d B vs independent=%d B (want ≥2×)", shared, solo)
	}
	t.Logf("maintenance bytes for 4 equivalent watches: shared=%d independent=%d (%.1fx)",
		shared, solo, float64(solo)/float64(max64(shared, 1)))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestExplain covers the plan inspection surface: orders sorted by the
// greedy selectivity estimates, the renaming-invariant canonical key,
// the Empty verdict, and the declaration-order fallback with planning
// disabled.
func TestExplain(t *testing.T) {
	dict := NewDict()
	g := GenSynthetic(dict, 300, 900, 85)
	part, err := PartitionRandom(g, 4, 85)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(part)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	q, err := ParsePattern(dict, "node a l0\nnode b l1\nedge a b\nedge b a")
	if err != nil {
		t.Fatal(err)
	}
	pi, err := dep.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if pi.Planner == "" || pi.Planner != dep.Planner() {
		t.Fatalf("planner %q, want the deployment's %q", pi.Planner, dep.Planner())
	}
	if pi.CanonicalKey != q.CanonicalKey() {
		t.Fatal("Explain's canonical key differs from the pattern's")
	}
	if len(pi.Nodes) != q.NumNodes() || len(pi.Edges) != q.NumEdges() {
		t.Fatalf("plan covers %d nodes / %d edges, pattern has %d / %d",
			len(pi.Nodes), len(pi.Edges), q.NumNodes(), q.NumEdges())
	}
	if pi.Empty {
		t.Fatal("present labels reported Empty")
	}
	for i := 1; i < len(pi.Nodes); i++ {
		if pi.Nodes[i-1].Est > pi.Nodes[i].Est {
			t.Fatalf("seed order not ascending in estimate: %+v", pi.Nodes)
		}
	}
	for i := 1; i < len(pi.Edges); i++ {
		if pi.Edges[i-1].Est > pi.Edges[i].Est {
			t.Fatalf("edge order not ascending in selectivity: %+v", pi.Edges)
		}
	}
	for _, n := range pi.Nodes {
		if n.Est == 0 {
			t.Fatalf("node %s estimated 0 candidates on a populated label", n.Name)
		}
	}
	s := pi.String()
	for _, want := range []string{"planner:", "seed order", "edge order", "canonical key:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered plan misses %q:\n%s", want, s)
		}
	}

	// Absent label: the Empty verdict, rendered.
	qa, err := ParsePattern(dict, "node a zz_void\nnode b l0\nedge a b")
	if err != nil {
		t.Fatal(err)
	}
	pia, err := dep.Explain(qa)
	if err != nil {
		t.Fatal(err)
	}
	if !pia.Empty {
		t.Fatal("absent label not reported Empty")
	}
	if !strings.Contains(pia.String(), "verdict: empty") {
		t.Fatal("rendered plan misses the empty verdict")
	}

	// Planning disabled: declaration orders, planner named as such.
	part2, err := PartitionRandom(g, 4, 85)
	if err != nil {
		t.Fatal(err)
	}
	depOff, err := Deploy(part2, WithPlannerDisabled())
	if err != nil {
		t.Fatal(err)
	}
	defer depOff.Close()
	piOff, err := depOff.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if piOff.Planner != "" {
		t.Fatalf("disabled deployment reports planner %q", piOff.Planner)
	}
	if piOff.Nodes[0].Name != "a" || piOff.Nodes[1].Name != "b" {
		t.Fatalf("disabled deployment must report declaration order, got %+v", piOff.Nodes)
	}
	if !strings.Contains(piOff.String(), "disabled") {
		t.Fatal("rendered disabled plan must say so")
	}
	if piOff.CanonicalKey != pi.CanonicalKey {
		t.Fatal("canonical key must not depend on the planner")
	}

	// Errors: nil pattern, closed deployment.
	if _, err := dep.Explain(nil); err == nil {
		t.Fatal("Explain(nil) must fail")
	}
	depOff.Close()
	if _, err := depOff.Explain(q); err == nil {
		t.Fatal("Explain on a closed deployment must fail")
	}
}
