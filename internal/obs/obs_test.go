package obs

import (
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("obs_test_events_total", "events")
	g := r.Gauge("obs_test_depth", "depth")
	c.Inc()
	c.Add(4)
	c.Add(-2) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBucketMath(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("obs_test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.02, 0.5, 1.0, 3.0} {
		h.Observe(v)
	}
	// le="0.01" holds 0.005 and the boundary value 0.01 (inclusive
	// upper bounds); le="0.1" adds 0.02; le="1" adds 0.5 and 1.0; 3.0
	// lands in +Inf only.
	bounds, counts := h.cumulative()
	if !reflect.DeepEqual(bounds, []float64{0.01, 0.1, 1}) {
		t.Fatalf("bounds = %v", bounds)
	}
	if want := []int64{2, 3, 5}; !reflect.DeepEqual(counts, want) {
		t.Fatalf("cumulative counts = %v, want %v", counts, want)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.02+0.5+1.0+3.0; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

// TestExpositionGolden pins the exact Prometheus text output: HELP and
// TYPE lines, integral formatting of whole numbers, and the cumulative
// histogram family.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("golden_events_total", "Events processed.")
	g := r.Gauge("golden_depth", "Queue depth.")
	h := r.Histogram("golden_wait_seconds", "Wait time.", []float64{0.5, 2})
	r.GaugeFunc("golden_version", "Version.", func() float64 { return 3 })
	c.Add(12)
	g.Set(-2)
	h.Observe(0.25)
	h.Observe(1.5)
	h.Observe(9)

	want := strings.Join([]string{
		"# HELP golden_events_total Events processed.",
		"# TYPE golden_events_total counter",
		"golden_events_total 12",
		"# HELP golden_depth Queue depth.",
		"# TYPE golden_depth gauge",
		"golden_depth -2",
		"# HELP golden_wait_seconds Wait time.",
		"# TYPE golden_wait_seconds histogram",
		`golden_wait_seconds_bucket{le="0.5"} 1`,
		`golden_wait_seconds_bucket{le="2"} 2`,
		`golden_wait_seconds_bucket{le="+Inf"} 3`,
		"golden_wait_seconds_sum 10.75",
		"golden_wait_seconds_count 3",
		"# HELP golden_version Version.",
		"# TYPE golden_version gauge",
		"golden_version 3",
		"",
	}, "\n")
	if got := string(r.AppendText(nil)); got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestHandlerMergesAndRefusesNonGET(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("handler_a_total", "a").Inc()
	b.Counter("handler_b_total", "b").Add(2)
	h := Handler(a, b)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "handler_a_total 1\n") || !strings.Contains(body, "handler_b_total 2\n") {
		t.Fatalf("merged body missing samples:\n%s", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics: %d, want 405", rec.Code)
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("panics_dup_total", "x")
	mustPanic("duplicate", func() { r.Counter("panics_dup_total", "x") })
	mustPanic("camelCase", func() { r.Counter("panicsCamel", "x") })
	mustPanic("leading digit", func() { r.Counter("0bad", "x") })
	mustPanic("unsorted buckets", func() { r.Histogram("panics_hist", "x", []float64{2, 1}) })
	r2 := NewRegistry()
	r2.Counter("panics_dup_total", "x")
	mustPanic("cross-registry handler dup", func() { Handler(r, r2) })
}

func TestValidMetricName(t *testing.T) {
	for name, want := range map[string]bool{
		"dgs_queries_total": true,
		"a1_b2":             true,
		"":                  false,
		"_leading":          false,
		"UpperCase":         false,
		"has-dash":          false,
		"9lead":             false,
	} {
		if got := ValidMetricName(name); got != want {
			t.Errorf("ValidMetricName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestSpanRecorder(t *testing.T) {
	r := NewSpanRecorder(42)
	// Site 3: one Recv in round 0 recording 1 round, with one send,
	// then a Recv in round 1.
	r.RecordOut(3, 10)
	r.RecordIn(3, 100, 5*time.Millisecond, 1)
	r.RecordIn(3, 50, 2*time.Millisecond, 0)
	// Coordinator: driver-level round then a Recv.
	r.AddRounds(CoordinatorSite, 1)
	r.RecordIn(CoordinatorSite, 7, time.Millisecond, 0)

	got := r.Snapshot()
	want := []SiteTrace{
		{Site: CoordinatorSite, Spans: []RoundSpan{
			{Round: 0, Rounds: 1},
			{Round: 1, BusyNs: int64(time.Millisecond), MsgsIn: 1, BytesIn: 7},
		}},
		{Site: 3, Spans: []RoundSpan{
			{Round: 0, BusyNs: int64(5 * time.Millisecond), MsgsIn: 1, MsgsOut: 1, BytesIn: 100, BytesOut: 10, Rounds: 1},
			{Round: 1, BusyNs: int64(2 * time.Millisecond), MsgsIn: 1, BytesIn: 50},
		}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot = %+v\nwant %+v", got, want)
	}

	qt := &QueryTrace{TraceID: r.ID(), Complete: true, Sites: got}
	busy, msgsIn, msgsOut, bytesIn, bytesOut, rounds := qt.Totals()
	if busy != 8*time.Millisecond || msgsIn != 3 || msgsOut != 1 || bytesIn != 157 || bytesOut != 10 || rounds != 2 {
		t.Fatalf("totals = %v %d %d %d %d %d", busy, msgsIn, msgsOut, bytesIn, bytesOut, rounds)
	}
	if fl := qt.Flame(); !strings.Contains(fl, "coordinator") || !strings.Contains(fl, "site 3") {
		t.Fatalf("flame summary:\n%s", fl)
	}
}

func TestSpanCodecRoundTrip(t *testing.T) {
	in := []SiteTrace{
		{Site: CoordinatorSite, Spans: []RoundSpan{{Round: 0, BusyNs: 123, MsgsIn: 1, BytesIn: 9, Rounds: 2}}},
		{Site: 0, Spans: nil},
		{Site: 5, Spans: []RoundSpan{
			{Round: 1, MsgsOut: 4, BytesOut: 77},
			{Round: 3, BusyNs: 1 << 40, MsgsIn: 1 << 33, Rounds: -1},
		}},
	}
	b := AppendSpans(nil, in)
	out, err := DecodeSpans(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// Decode materializes empty span slices; normalize before compare.
	if len(out) == 3 && out[1].Spans != nil && len(out[1].Spans) == 0 {
		out[1].Spans = nil
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in %+v\nout %+v", in, out)
	}

	// Truncations and trailing garbage must error, never panic.
	for i := 0; i < len(b); i++ {
		if _, err := DecodeSpans(b[:i]); err == nil {
			t.Fatalf("truncation at %d decoded", i)
		}
	}
	if _, err := DecodeSpans(append(b, 0)); err == nil {
		t.Fatal("trailing byte decoded")
	}
	// A hostile length claim must be rejected before allocation.
	if _, err := DecodeSpans([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("hostile site count decoded")
	}
}
