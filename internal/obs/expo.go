package obs

// Prometheus text exposition (format version 0.0.4). The encoder
// writes the whole registry in registration order: a # HELP and
// # TYPE line per metric, then the sample lines — one for scalars,
// the cumulative _bucket/_sum/_count family for histograms. No
// labels, no timestamps: every sample is a process-local scalar read
// at scrape time.

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// AppendText appends the registry's exposition to dst.
func (r *Registry) AppendText(dst []byte) []byte {
	for _, m := range r.snapshot() {
		dst = appendMetric(dst, m)
	}
	return dst
}

func appendMetric(dst []byte, m *metric) []byte {
	dst = append(dst, "# HELP "...)
	dst = append(dst, m.name...)
	dst = append(dst, ' ')
	dst = append(dst, escapeHelp(m.help)...)
	dst = append(dst, '\n')
	dst = append(dst, "# TYPE "...)
	dst = append(dst, m.name...)
	dst = append(dst, ' ')
	dst = append(dst, m.kind.promType()...)
	dst = append(dst, '\n')
	switch m.kind {
	case kindCounter:
		dst = appendSample(dst, m.name, "", float64(m.counter.Value()))
	case kindGauge:
		dst = appendSample(dst, m.name, "", float64(m.gauge.Value()))
	case kindCounterFunc, kindGaugeFunc:
		dst = appendSample(dst, m.name, "", m.fn())
	case kindHistogram:
		h := m.hist
		bounds, counts := h.cumulative()
		for i, b := range bounds {
			dst = append(dst, m.name...)
			dst = append(dst, `_bucket{le="`...)
			dst = strconv.AppendFloat(dst, b, 'g', -1, 64)
			dst = append(dst, `"} `...)
			dst = strconv.AppendInt(dst, counts[i], 10)
			dst = append(dst, '\n')
		}
		dst = append(dst, m.name...)
		dst = append(dst, `_bucket{le="+Inf"} `...)
		dst = strconv.AppendInt(dst, h.Count(), 10)
		dst = append(dst, '\n')
		dst = appendSample(dst, m.name, "_sum", h.Sum())
		dst = appendSample(dst, m.name, "_count", float64(h.Count()))
	}
	return dst
}

// appendSample writes one `name[suffix] value` line. Integral values
// print without an exponent or decimal point, everything else in the
// shortest round-trip form.
func appendSample(dst []byte, name, suffix string, v float64) []byte {
	dst = append(dst, name...)
	dst = append(dst, suffix...)
	dst = append(dst, ' ')
	if v == float64(int64(v)) {
		dst = strconv.AppendInt(dst, int64(v), 10)
	} else {
		dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	}
	return append(dst, '\n')
}

// escapeHelp escapes backslash and newline per the exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the merged exposition of regs at GET. Registries are
// encoded in argument order; a metric name appearing in two registries
// is a wiring error and panics at handler construction, not at scrape
// time.
func Handler(regs ...*Registry) http.Handler {
	seen := make(map[string]bool)
	for _, r := range regs {
		for _, m := range r.snapshot() {
			if seen[m.name] {
				panic(fmt.Sprintf("obs: metric %q exposed by two registries on one handler", m.name))
			}
			seen[m.name] = true
		}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var body []byte
		for _, r := range regs {
			body = r.AppendText(body)
		}
		w.Header().Set("Content-Type", ContentType)
		w.Write(body)
	})
}
