// Package obs is the stdlib-only observability layer: a metrics
// registry (counters, gauges, fixed-bucket histograms behind a small
// atomic API) with a Prometheus text-exposition encoder, and the
// per-query trace-span model the distributed tracing path ships over
// the wire (TRACE frames) and assembles into a span tree at the
// driver.
//
// The registry is deliberately tiny compared to a metrics library: no
// labels, no vectors, no push — every metric is a process-local scalar
// or histogram registered once at startup under a snake_case name
// (uniqueness and casing are machine-checked by the dgsvet
// `metricnames` analyzer) and scraped through GET /metrics. That is
// exactly what a reproduction needs to explain its own benchmarks —
// per-round fixpoint progress, outbox depth, coalesced-frames ratio,
// heartbeat RTT — without taking a dependency the container does not
// have.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// metricKind discriminates the exposition shape of one registration.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// promType is the TYPE line each kind exposes.
func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// metric is one registered name with its backing store.
type metric struct {
	name string
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // kindCounterFunc / kindGaugeFunc
}

// Registry holds a process component's metrics in registration order.
// Registration happens at startup (Deploy, serve.New, daemon main);
// reads and writes after that are lock-free atomics.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*metric
	order  []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// register adds m or panics: a duplicate or malformed metric name is a
// programming error caught at startup (and statically by dgsvet's
// metricnames analyzer), never a runtime condition to handle.
func (r *Registry) register(m *metric) {
	if !ValidMetricName(m.name) {
		panic(fmt.Sprintf("obs: metric name %q is not snake_case", m.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", m.name))
	}
	r.byName[m.name] = m
	r.order = append(r.order, m)
}

// ValidMetricName reports whether name is snake_case: lowercase
// letters, digits and underscores, starting with a letter.
func ValidMetricName(name string) bool {
	if name == "" || name[0] < 'a' || name[0] > 'z' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

// snapshot copies the registration list for encoding without holding
// the lock across value reads.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, len(r.order))
	copy(out, r.order)
	return out
}

// Counter registers and returns a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// Histogram registers and returns a fixed-bucket histogram. buckets
// are inclusive upper bounds in strictly increasing order; a +Inf
// bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing", name))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Int64, len(buckets)),
	}
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — for counts that already live in an atomic
// somewhere else (transport frame counters, deployment failovers).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindCounterFunc, fn: fn})
}

// GaugeFunc registers a gauge read from fn at exposition time (queue
// depths, cache sizes, graph version).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGaugeFunc, fn: fn})
}

// Counter is a monotonically increasing int64, safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone; negative
// deltas are ignored rather than corrupting the exposition).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64, safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets, with an exact sum.
// All methods are lock-free.
type Histogram struct {
	bounds []float64      // inclusive upper bounds, ascending
	counts []atomic.Int64 // per-bucket (non-cumulative) counts
	inf    atomic.Int64   // observations above the last bound
	count  atomic.Int64
	sum    atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	h.sum.add(v)
}

// Count reports the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// cumulative returns the bucket upper bounds with cumulative counts,
// excluding the implicit +Inf bucket (whose cumulative count is
// Count()).
func (h *Histogram) cumulative() (bounds []float64, counts []int64) {
	counts = make([]int64, len(h.bounds))
	var c int64
	for i := range h.bounds {
		c += h.counts[i].Load()
		counts[i] = c
	}
	return h.bounds, counts
}

// atomicFloat is a float64 with atomic add, stored as IEEE-754 bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// DefTimeBuckets is the default bucket layout for latency histograms,
// in seconds: 500µs to 10s, roughly 2-2.5× apart — wide enough for an
// in-process query and a loaded loopback deployment alike.
var DefTimeBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// DefCountBuckets is the default layout for small-count histograms
// (rounds to fixpoint, retries): powers of two from 1 to 1024.
var DefCountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
