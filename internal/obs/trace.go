package obs

// The distributed query trace model. A traced query carries a nonzero
// trace ID in its OPEN (wire protocol v5); every party that processes
// the query's messages — each worker site, wherever it is hosted, and
// the driver-side coordinator — records per-round spans: how many
// messages and payload bytes it received and sent while the site was
// in round r, and how long its handler was busy. Daemons ship their
// spans back in a TRACE frame when the session closes; the driver
// merges them with its own coordinator spans into a QueryTrace.
//
// The spans are exact, not sampled: summed over all sites and rounds
// they reproduce the session's Stats aggregates (messages, payload
// bytes, rounds, per-site busy time), which is what makes the trace a
// trustworthy decomposition of a benchmark number rather than a
// separate estimate.

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// CoordinatorSite is the pseudo site ID of driver-side coordinator
// spans (mirrors cluster.Coordinator).
const CoordinatorSite = -1

// RoundSpan is one site's activity while it was in one round.
type RoundSpan struct {
	Round    int   `json:"round"`
	BusyNs   int64 `json:"busy_ns"`
	MsgsIn   int64 `json:"msgs_in"`
	MsgsOut  int64 `json:"msgs_out"`
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
	Rounds   int64 `json:"rounds"` // rounds the site recorded while in this span
}

// SiteTrace is one site's span sequence, in round order.
type SiteTrace struct {
	Site  int         `json:"site"` // CoordinatorSite for the driver
	Spans []RoundSpan `json:"spans"`
}

// QueryTrace is the assembled span tree of one traced query.
type QueryTrace struct {
	TraceID uint64 `json:"trace_id"`
	// Complete is false when some spans could not be collected — a
	// pre-v5 daemon in the deployment (it never saw the trace ID), or a
	// connection lost before its TRACE frame arrived.
	Complete bool        `json:"complete"`
	Sites    []SiteTrace `json:"sites"`
}

// Totals sums the trace's spans — the numbers that must agree with the
// session's Stats aggregates.
func (t *QueryTrace) Totals() (busy time.Duration, msgsIn, msgsOut, bytesIn, bytesOut, rounds int64) {
	var busyNs int64
	for _, s := range t.Sites {
		for _, sp := range s.Spans {
			busyNs += sp.BusyNs
			msgsIn += sp.MsgsIn
			msgsOut += sp.MsgsOut
			bytesIn += sp.BytesIn
			bytesOut += sp.BytesOut
			rounds += sp.Rounds
		}
	}
	return time.Duration(busyNs), msgsIn, msgsOut, bytesIn, bytesOut, rounds
}

// Flame renders a human-readable flame summary: one block per site,
// one line per round, bars proportional to busy time.
func (t *QueryTrace) Flame() string {
	var b strings.Builder
	busy, msgsIn, _, bytesIn, _, rounds := t.Totals()
	fmt.Fprintf(&b, "trace %#x  sites=%d  rounds=%d  busy=%v  msgs=%d  bytes=%d",
		t.TraceID, len(t.Sites), rounds, busy.Round(time.Microsecond), msgsIn, bytesIn)
	if !t.Complete {
		b.WriteString("  (incomplete)")
	}
	b.WriteByte('\n')
	var maxBusy int64 = 1
	for _, s := range t.Sites {
		for _, sp := range s.Spans {
			if sp.BusyNs > maxBusy {
				maxBusy = sp.BusyNs
			}
		}
	}
	for _, s := range t.Sites {
		var siteBusy int64
		for _, sp := range s.Spans {
			siteBusy += sp.BusyNs
		}
		if s.Site == CoordinatorSite {
			fmt.Fprintf(&b, "  coordinator  busy=%v\n", time.Duration(siteBusy).Round(time.Microsecond))
		} else {
			fmt.Fprintf(&b, "  site %d  busy=%v\n", s.Site, time.Duration(siteBusy).Round(time.Microsecond))
		}
		for _, sp := range s.Spans {
			bar := strings.Repeat("█", 1+int(sp.BusyNs*24/maxBusy))
			fmt.Fprintf(&b, "    round %-3d %-25s busy=%-10v in=%d/%dB out=%d/%dB\n",
				sp.Round, bar, time.Duration(sp.BusyNs).Round(time.Microsecond),
				sp.MsgsIn, sp.BytesIn, sp.MsgsOut, sp.BytesOut)
		}
	}
	return b.String()
}

// SpanRecorder accumulates RoundSpans for the sites one party hosts.
// It is safe for concurrent use: each site's Recv runs on its own
// goroutine, and snapshots race with nothing because every mutation
// holds the lock. Recording is O(1) per message with one short
// critical section — cheap enough to ride the hot path only when the
// query is actually traced (nil recorder = tracing off).
type SpanRecorder struct {
	id    uint64
	mu    sync.Mutex
	sites map[int]*siteAcc
}

type siteAcc struct {
	cur   int // current round index
	spans []RoundSpan
}

// NewSpanRecorder returns a recorder for trace id.
func NewSpanRecorder(id uint64) *SpanRecorder {
	return &SpanRecorder{id: id, sites: make(map[int]*siteAcc)}
}

// ID reports the trace ID.
func (r *SpanRecorder) ID() uint64 { return r.id }

// span returns the accumulator's span for its current round, creating
// site and span on first touch. Caller holds r.mu.
func (r *SpanRecorder) span(site int) *RoundSpan {
	acc := r.sites[site]
	if acc == nil {
		acc = &siteAcc{}
		r.sites[site] = acc
	}
	if n := len(acc.spans); n == 0 || acc.spans[n-1].Round != acc.cur {
		acc.spans = append(acc.spans, RoundSpan{Round: acc.cur})
	}
	return &acc.spans[len(acc.spans)-1]
}

// RecordIn attributes one delivered-and-processed message to the
// site's current round — its payload bytes, the handler's busy time,
// and the rounds the handler recorded, which then advance the site's
// round index.
func (r *SpanRecorder) RecordIn(site int, bytes int, busy time.Duration, rounds int64) {
	r.mu.Lock()
	sp := r.span(site)
	sp.MsgsIn++
	sp.BytesIn += int64(bytes)
	sp.BusyNs += int64(busy)
	sp.Rounds += rounds
	r.sites[site].cur += int(rounds)
	r.mu.Unlock()
}

// RecordOut attributes one sent message to the site's current round.
func (r *SpanRecorder) RecordOut(site int, bytes int) {
	r.mu.Lock()
	sp := r.span(site)
	sp.MsgsOut++
	sp.BytesOut += int64(bytes)
	r.mu.Unlock()
}

// AddRounds records rounds outside a Recv (driver-level round
// accounting, e.g. treesim's coordinator phases) and advances the
// site's round index.
func (r *SpanRecorder) AddRounds(site int, n int64) {
	r.mu.Lock()
	sp := r.span(site)
	sp.Rounds += n
	r.sites[site].cur += int(n)
	r.mu.Unlock()
}

// Snapshot returns the recorded spans, sites ascending, spans in round
// order.
func (r *SpanRecorder) Snapshot() []SiteTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SiteTrace, 0, len(r.sites))
	for site, acc := range r.sites {
		spans := append([]RoundSpan(nil), acc.spans...)
		out = append(out, SiteTrace{Site: site, Spans: spans})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// --- wire codec ---

// The TRACE frame body is the little-endian encoding of a span set:
//
//	u32 nSites, then per site:
//	  i64 site, u32 nSpans, then per span:
//	    u64 round, u64 busyNs, u64 msgsIn, u64 msgsOut,
//	    u64 bytesIn, u64 bytesOut, u64 rounds
//
// encoded here (not in internal/wire) so both transport ends and the
// tests share one codec without a dependency cycle.

// AppendSpans appends the codec encoding of sites to dst.
func AppendSpans(dst []byte, sites []SiteTrace) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(sites)))
	for _, s := range sites {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(s.Site)))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Spans)))
		for _, sp := range s.Spans {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(sp.Round)))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(sp.BusyNs))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(sp.MsgsIn))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(sp.MsgsOut))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(sp.BytesIn))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(sp.BytesOut))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(sp.Rounds))
		}
	}
	return dst
}

// DecodeSpans decodes a span set encoded by AppendSpans. The whole
// input must be consumed.
func DecodeSpans(b []byte) ([]SiteTrace, error) {
	u32 := func() (uint32, bool) {
		if len(b) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(b)
		b = b[4:]
		return v, true
	}
	u64 := func() (uint64, bool) {
		if len(b) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(b)
		b = b[8:]
		return v, true
	}
	errTrunc := fmt.Errorf("obs: truncated span encoding")
	nSites, ok := u32()
	if !ok {
		return nil, errTrunc
	}
	// Each site costs at least 12 bytes, each span 56: reject length
	// claims the input cannot hold before allocating.
	if int64(nSites)*12 > int64(len(b)) {
		return nil, fmt.Errorf("obs: span encoding claims %d sites in %d bytes", nSites, len(b))
	}
	sites := make([]SiteTrace, 0, nSites)
	for i := uint32(0); i < nSites; i++ {
		site, ok1 := u64()
		nSpans, ok2 := u32()
		if !ok1 || !ok2 {
			return nil, errTrunc
		}
		if int64(nSpans)*56 > int64(len(b)) {
			return nil, fmt.Errorf("obs: span encoding claims %d spans in %d bytes", nSpans, len(b))
		}
		st := SiteTrace{Site: int(int64(site)), Spans: make([]RoundSpan, 0, nSpans)}
		for j := uint32(0); j < nSpans; j++ {
			var f [7]uint64
			for k := range f {
				v, ok := u64()
				if !ok {
					return nil, errTrunc
				}
				f[k] = v
			}
			st.Spans = append(st.Spans, RoundSpan{
				Round:  int(int64(f[0])),
				BusyNs: int64(f[1]), MsgsIn: int64(f[2]), MsgsOut: int64(f[3]),
				BytesIn: int64(f[4]), BytesOut: int64(f[5]), Rounds: int64(f[6]),
			})
		}
		sites = append(sites, st)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("obs: %d trailing bytes after span encoding", len(b))
	}
	return sites, nil
}
