package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func buildDiamond(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder()
	a := b.AddNode("A")
	x := b.AddNode("B")
	y := b.AddNode("B")
	z := b.AddNode("C")
	b.AddEdge(a, x)
	b.AddEdge(a, y)
	b.AddEdge(x, z)
	b.AddEdge(y, z)
	return b.MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	g := buildDiamond(t)
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got |V|=%d |E|=%d, want 4,4", g.NumNodes(), g.NumEdges())
	}
	if g.Size() != 8 {
		t.Fatalf("Size = %d, want 8", g.Size())
	}
	if g.LabelName(0) != "A" || g.LabelName(3) != "C" {
		t.Fatalf("labels wrong: %q %q", g.LabelName(0), g.LabelName(3))
	}
	if got := g.Succ(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Succ(0) = %v", got)
	}
	if g.OutDegree(3) != 0 {
		t.Fatalf("OutDegree(3) = %d", g.OutDegree(3))
	}
	if !g.HasEdge(1, 3) || g.HasEdge(3, 1) {
		t.Fatal("HasEdge wrong")
	}
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder()
	v := b.AddNode("A")
	w := b.AddNode("A")
	for i := 0; i < 5; i++ {
		b.AddEdge(v, w)
	}
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("duplicate edges not coalesced: %d", g.NumEdges())
	}
}

func TestBuilderBadEdge(t *testing.T) {
	b := NewBuilder()
	b.AddNode("A")
	b.AddEdge(0, 7)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for dangling edge")
	}
}

func TestReverse(t *testing.T) {
	g := buildDiamond(t)
	g.EnsureReverse()
	if got := g.Pred(3); len(got) != 2 {
		t.Fatalf("Pred(3) = %v", got)
	}
	if g.InDegree(0) != 0 || g.InDegree(3) != 2 {
		t.Fatal("InDegree wrong")
	}
	// Reverse must contain exactly the same edge set.
	var fwd, rev [][2]NodeID
	g.Edges(func(v, w NodeID) bool { fwd = append(fwd, [2]NodeID{v, w}); return true })
	for v := 0; v < g.NumNodes(); v++ {
		for _, p := range g.Pred(NodeID(v)) {
			rev = append(rev, [2]NodeID{p, NodeID(v)})
		}
	}
	sortEdges := func(e [][2]NodeID) {
		sort.Slice(e, func(i, j int) bool {
			if e[i][0] != e[j][0] {
				return e[i][0] < e[j][0]
			}
			return e[i][1] < e[j][1]
		})
	}
	sortEdges(fwd)
	sortEdges(rev)
	if !reflect.DeepEqual(fwd, rev) {
		t.Fatalf("forward and reverse edge sets differ:\n%v\n%v", fwd, rev)
	}
}

func TestDictIntern(t *testing.T) {
	d := NewDict()
	a := d.Intern("x")
	b := d.Intern("x")
	if a != b {
		t.Fatal("intern not idempotent")
	}
	if d.Name(a) != "x" {
		t.Fatal("name lookup broken")
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Fatal("lookup invented a label")
	}
	if d.Len() != 2 { // reserved + "x"
		t.Fatalf("Len = %d", d.Len())
	}
	if d.Name(9999) != "" {
		t.Fatal("out-of-range Name should be empty")
	}
}

func randomGraph(r *rand.Rand, n, m, labels int) *Graph {
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(string(rune('a' + r.Intn(labels))))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(NodeID(r.Intn(n)), NodeID(r.Intn(n)))
	}
	return b.MustBuild()
}

func TestSCCOnCycleAndChain(t *testing.T) {
	// Cycle of 5 -> one SCC.
	b := NewBuilder()
	for i := 0; i < 5; i++ {
		b.AddNode("A")
	}
	for i := 0; i < 5; i++ {
		b.AddEdge(NodeID(i), NodeID((i+1)%5))
	}
	g := b.MustBuild()
	comp, n := SCC(g)
	if n != 1 {
		t.Fatalf("cycle SCC count = %d", n)
	}
	for _, c := range comp {
		if c != comp[0] {
			t.Fatal("cycle nodes in different components")
		}
	}
	if IsDAG(g) {
		t.Fatal("cycle reported as DAG")
	}

	// Chain of 5 -> 5 SCCs, a DAG.
	b = NewBuilder()
	for i := 0; i < 5; i++ {
		b.AddNode("A")
	}
	for i := 0; i < 4; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	g = b.MustBuild()
	if _, n := SCC(g); n != 5 {
		t.Fatalf("chain SCC count = %d", n)
	}
	if !IsDAG(g) {
		t.Fatal("chain not reported as DAG")
	}
}

func TestSCCSelfLoop(t *testing.T) {
	b := NewBuilder()
	b.AddNode("A")
	b.AddEdge(0, 0)
	g := b.MustBuild()
	if IsDAG(g) {
		t.Fatal("self-loop reported as DAG")
	}
}

// Property: SCC components agree with mutual reachability on small graphs.
func TestSCCMatchesReachability(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		n := 2 + r.Intn(10)
		g := randomGraph(r, n, r.Intn(3*n), 2)
		comp, _ := SCC(g)
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = make([]bool, n)
			BFSFrom(g, NodeID(i), func(v NodeID, _ int) bool {
				reach[i][v] = true
				return true
			})
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				mutual := reach[i][j] && reach[j][i]
				same := comp[i] == comp[j]
				if mutual != same {
					t.Fatalf("iter %d: nodes %d,%d mutual=%v same-comp=%v", iter, i, j, mutual, same)
				}
			}
		}
	}
}

func TestTopoOrder(t *testing.T) {
	g := buildDiamond(t)
	order, ok := TopoOrder(g)
	if !ok {
		t.Fatal("diamond is a DAG")
	}
	pos := make(map[NodeID]int)
	for i, v := range order {
		pos[v] = i
	}
	g.Edges(func(v, w NodeID) bool {
		if pos[v] >= pos[w] {
			t.Fatalf("edge (%d,%d) violates topo order", v, w)
		}
		return true
	})
	// Cyclic graph -> not ok.
	b := NewBuilder()
	b.AddNode("A")
	b.AddNode("A")
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	if _, ok := TopoOrder(b.MustBuild()); ok {
		t.Fatal("cycle got a topo order")
	}
}

func TestInduced(t *testing.T) {
	g := buildDiamond(t)
	keep := []bool{true, true, false, true}
	ind, remap := Induced(g, keep)
	if ind.NumNodes() != 3 {
		t.Fatalf("|V| = %d", ind.NumNodes())
	}
	if remap[2] != -1 {
		t.Fatal("dropped node should remap to -1")
	}
	// Edges A->x and x->z survive; A->y, y->z dropped.
	if ind.NumEdges() != 2 {
		t.Fatalf("|E| = %d", ind.NumEdges())
	}
	if ind.LabelName(NodeID(remap[3])) != "C" {
		t.Fatal("label not preserved")
	}
}

func TestIsTree(t *testing.T) {
	b := NewBuilder()
	r0 := b.AddNode("R")
	c1 := b.AddNode("A")
	c2 := b.AddNode("A")
	b.AddEdge(r0, c1)
	b.AddEdge(r0, c2)
	roots, ok := IsTree(b.MustBuild())
	if !ok || len(roots) != 1 || roots[0] != r0 {
		t.Fatalf("tree not recognized: roots=%v ok=%v", roots, ok)
	}
	// Diamond: z has in-degree 2.
	if _, ok := IsTree(buildDiamond(t)); ok {
		t.Fatal("diamond recognized as tree")
	}
	// 2-cycle is not a tree even with in-degree 1 everywhere.
	b = NewBuilder()
	b.AddNode("A")
	b.AddNode("A")
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	if _, ok := IsTree(b.MustBuild()); ok {
		t.Fatal("cycle recognized as tree")
	}
}

func TestBFSDepths(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddNode("A")
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(0, 2) // shortcut
	g := b.MustBuild()
	depth := map[NodeID]int{}
	BFSFrom(g, 0, func(v NodeID, d int) bool { depth[v] = d; return true })
	want := map[NodeID]int{0: 0, 1: 1, 2: 1, 3: 2}
	if !reflect.DeepEqual(depth, want) {
		t.Fatalf("depths = %v, want %v", depth, want)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 20; iter++ {
		g := randomGraph(r, 1+r.Intn(40), r.Intn(120), 4)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		if int64(buf.Len()) != EncodedSize(g) {
			t.Fatalf("EncodedSize=%d actual=%d", EncodedSize(g), buf.Len())
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !sameGraph(g, g2) {
			t.Fatal("binary round trip changed the graph")
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph"))); err == nil {
		t.Fatal("expected error")
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := buildDiamond(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, g2) {
		t.Fatal("text round trip changed the graph")
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []string{
		"node 5 A\n",           // non-dense id
		"edge 0\n",             // short edge
		"frob 1 2\n",           // unknown directive
		"node 0 A\nedge 0 9\n", // dangling edge target
	}
	for _, c := range cases {
		if _, err := ParseText(bytes.NewReader([]byte(c))); err == nil {
			t.Fatalf("input %q: expected error", c)
		}
	}
}

func sameGraph(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumNodes(); v++ {
		if a.LabelName(NodeID(v)) != b.LabelName(NodeID(v)) {
			return false
		}
		if !reflect.DeepEqual(a.Succ(NodeID(v)), b.Succ(NodeID(v))) {
			if len(a.Succ(NodeID(v))) != 0 || len(b.Succ(NodeID(v))) != 0 {
				return false
			}
		}
	}
	return true
}

// Property-based: round trip preserves arbitrary small graphs.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(n8)%30
		m := int(m8) % 90
		g := randomGraph(r, n, m, 3)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return sameGraph(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
