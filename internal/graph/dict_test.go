package graph

import (
	"fmt"
	"sync"
	"testing"
)

// TestDictConcurrentIntern hammers a shared Dict from many goroutines —
// the serving gateway interns novel labels while other requests parse
// concurrently, so Intern/Lookup/Name must be safe together and agree
// on one id per name.
func TestDictConcurrentIntern(t *testing.T) {
	d := NewDict()
	const workers = 8
	const names = 200
	got := make([][]Label, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		got[w] = make([]Label, names)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < names; i++ {
				name := fmt.Sprintf("label-%d", i)
				l := d.Intern(name)
				got[w][i] = l
				if back := d.Name(l); back != name {
					panic(fmt.Sprintf("Name(%d) = %q, want %q", l, back, name))
				}
				if ll, ok := d.Lookup(name); !ok || ll != l {
					panic(fmt.Sprintf("Lookup(%q) = %d,%v after Intern returned %d", name, ll, ok, l))
				}
			}
		}()
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := 0; i < names; i++ {
			if got[w][i] != got[0][i] {
				t.Fatalf("workers disagree on id for label-%d: %d vs %d", i, got[0][i], got[w][i])
			}
		}
	}
	if d.Len() != names+1 {
		t.Fatalf("Len() = %d, want %d", d.Len(), names+1)
	}
	if ns := d.Names(); len(ns) != names+1 || ns[0] != "" {
		t.Fatalf("Names() snapshot malformed: len %d first %q", len(ns), ns[0])
	}
}

func TestNewDictFromNames(t *testing.T) {
	d := NewDictFromNames([]string{"", "a", "b"})
	if l, ok := d.Lookup("b"); !ok || l != 2 {
		t.Fatalf("Lookup(b) = %d,%v", l, ok)
	}
	if d.Name(1) != "a" || d.Len() != 3 {
		t.Fatalf("table mismatch: %v", d.Names())
	}
	// Interning continues past the shipped table.
	if l := d.Intern("c"); l != 3 {
		t.Fatalf("Intern(c) = %d, want 3", l)
	}
	// An empty table still reserves the empty label.
	if e := NewDictFromNames(nil); e.Len() != 1 || e.Name(0) != "" {
		t.Fatalf("empty table not normalized: %v", e.Names())
	}
}
