package graph

// Binary and text serialization. The binary format is what Match and
// disHHK "ship over the wire" in the experiments, so its exact byte size
// matters: data-shipment numbers for the ship-the-graph baselines are the
// encoded sizes produced here (§3.1, §6).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

const binMagic = "DGSG1\n"

// EncodedSize reports the exact number of bytes WriteBinary will emit,
// without encoding. Used for data-shipment accounting.
func EncodedSize(g *Graph) int64 {
	sz := int64(len(binMagic))
	sz += 8 // numNodes
	sz += 8 // numEdges
	sz += 4 // numLabels
	for _, name := range g.dict.Names() {
		sz += int64(4 + len(name))
	}
	sz += int64(2 * g.NumNodes())       // labels
	sz += int64(8 * (g.NumNodes() + 1)) // succOff
	sz += int64(4 * g.NumEdges())       // succ
	return sz
}

// WriteBinary encodes g in the DGSG1 format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	var buf [8]byte
	put64 := func(x uint64) error {
		binary.LittleEndian.PutUint64(buf[:], x)
		_, err := bw.Write(buf[:8])
		return err
	}
	put32 := func(x uint32) error {
		binary.LittleEndian.PutUint32(buf[:4], x)
		_, err := bw.Write(buf[:4])
		return err
	}
	if err := put64(uint64(g.NumNodes())); err != nil {
		return err
	}
	if err := put64(uint64(g.NumEdges())); err != nil {
		return err
	}
	// One snapshot serves both the count and the loop, so a concurrent
	// Intern cannot skew the encoding.
	names := g.dict.Names()
	if err := put32(uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		if err := put32(uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
	}
	for _, l := range g.labels {
		binary.LittleEndian.PutUint16(buf[:2], uint16(l))
		if _, err := bw.Write(buf[:2]); err != nil {
			return err
		}
	}
	for _, off := range g.succOff {
		if err := put64(off); err != nil {
			return err
		}
	}
	for _, w := range g.succ {
		if err := put32(w); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a DGSG1 graph.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var buf [8]byte
	get64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, buf[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:8]), nil
	}
	get32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:4]), nil
	}
	nn, err := get64()
	if err != nil {
		return nil, err
	}
	ne, err := get64()
	if err != nil {
		return nil, err
	}
	nl, err := get32()
	if err != nil {
		return nil, err
	}
	if nl == 0 {
		return nil, fmt.Errorf("graph: dictionary must contain the reserved label")
	}
	if nl > 1<<16 {
		return nil, fmt.Errorf("graph: dictionary holds %d labels, max %d", nl, 1<<16)
	}
	dictNames := make([]string, 0, nl)
	for i := uint32(0); i < nl; i++ {
		ln, err := get32()
		if err != nil {
			return nil, err
		}
		name := make([]byte, ln)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		dictNames = append(dictNames, string(name))
	}
	g := &Graph{dict: NewDictFromNames(dictNames)}
	g.labels = make([]Label, nn)
	for i := range g.labels {
		if _, err := io.ReadFull(br, buf[:2]); err != nil {
			return nil, err
		}
		g.labels[i] = Label(binary.LittleEndian.Uint16(buf[:2]))
	}
	g.succOff = make([]uint64, nn+1)
	for i := range g.succOff {
		x, err := get64()
		if err != nil {
			return nil, err
		}
		g.succOff[i] = x
	}
	if g.succOff[nn] != ne {
		return nil, fmt.Errorf("graph: offset table inconsistent with edge count")
	}
	g.succ = make([]NodeID, ne)
	for i := range g.succ {
		x, err := get32()
		if err != nil {
			return nil, err
		}
		if uint64(x) >= nn {
			return nil, fmt.Errorf("graph: edge target %d out of range", x)
		}
		g.succ[i] = x
	}
	return g, nil
}

// WriteText emits a human-readable edge-list form:
//
//	node <id> <label>
//	edge <src> <dst>
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < g.NumNodes(); v++ {
		if _, err := fmt.Fprintf(bw, "node %d %s\n", v, g.LabelName(NodeID(v))); err != nil {
			return err
		}
	}
	var outerr error
	g.Edges(func(v, w2 NodeID) bool {
		_, outerr = fmt.Fprintf(bw, "edge %d %d\n", v, w2)
		return outerr == nil
	})
	if outerr != nil {
		return outerr
	}
	return bw.Flush()
}

// ParseText reads the WriteText format. Node lines must precede edges that
// use them; node IDs must be dense and ascending from 0.
func ParseText(r io.Reader) (*Graph, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: node needs an id", lineno)
			}
			var id int
			if _, err := fmt.Sscanf(fields[1], "%d", &id); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineno, err)
			}
			if id != b.NumNodes() {
				return nil, fmt.Errorf("graph: line %d: node ids must be dense ascending (got %d want %d)", lineno, id, b.NumNodes())
			}
			label := ""
			if len(fields) >= 3 {
				label = fields[2]
			}
			b.AddNode(label)
		case "edge":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: edge needs src and dst", lineno)
			}
			var s, d int
			if _, err := fmt.Sscanf(fields[1], "%d", &s); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineno, err)
			}
			if _, err := fmt.Sscanf(fields[2], "%d", &d); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineno, err)
			}
			b.AddEdge(NodeID(s), NodeID(d))
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}
