package graph

// This file collects the classic graph algorithms the paper leans on:
// Tarjan's SCC decomposition (used to test whether Q or G is a DAG, §5.1),
// topological order, BFS, and induced subgraphs (used by the disHHK
// baseline, which ships candidate-induced subgraphs).

// SCC computes strongly connected components with Tarjan's algorithm [32]
// (iterative, so million-node graphs do not overflow the goroutine stack).
// It returns comp, a map from node to component index, and the number of
// components. Component indices are in reverse topological order of the
// condensation (i.e., if comp[v] < comp[w] then w cannot reach v through
// a different component).
func SCC(g *Graph) (comp []int32, n int) {
	nn := g.NumNodes()
	const unvisited = -1
	index := make([]int32, nn)
	low := make([]int32, nn)
	onStack := make([]bool, nn)
	comp = make([]int32, nn)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []NodeID
	var next int32 = 0
	var ncomp int32 = 0

	type frame struct {
		v  NodeID
		ei int // next successor index to visit
	}
	var call []frame

	for root := 0; root < nn; root++ {
		if index[root] != unvisited {
			continue
		}
		call = append(call[:0], frame{NodeID(root), 0})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, NodeID(root))
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			succ := g.Succ(f.v)
			if f.ei < len(succ) {
				w := succ[f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-visit: pop.
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := &call[len(call)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp, int(ncomp)
}

// IsDAG reports whether g has no directed cycle. Self-loops count as cycles.
func IsDAG(g *Graph) bool {
	for v := 0; v < g.NumNodes(); v++ {
		if g.HasEdge(NodeID(v), NodeID(v)) {
			return false
		}
	}
	_, n := SCC(g)
	return n == g.NumNodes()
}

// TopoOrder returns a topological order of a DAG (edges point from earlier
// to later positions) and ok=false if g is cyclic.
func TopoOrder(g *Graph) (order []NodeID, ok bool) {
	n := g.NumNodes()
	indeg := make([]int32, n)
	for _, w := range g.succ {
		indeg[w]++
	}
	queue := make([]NodeID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, NodeID(v))
		}
	}
	order = make([]NodeID, 0, n)
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, w := range g.Succ(v) {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, false
	}
	return order, true
}

// BFSFrom runs a breadth-first traversal over out-edges from src and calls
// visit(v, depth) for each reachable node, stopping if visit returns false.
func BFSFrom(g *Graph, src NodeID, visit func(v NodeID, depth int) bool) {
	seen := make(map[NodeID]int)
	frontier := []NodeID{src}
	seen[src] = 0
	if !visit(src, 0) {
		return
	}
	depth := 0
	for len(frontier) > 0 {
		depth++
		var next []NodeID
		for _, v := range frontier {
			for _, w := range g.Succ(v) {
				if _, ok := seen[w]; ok {
					continue
				}
				seen[w] = depth
				if !visit(w, depth) {
					return
				}
				next = append(next, w)
			}
		}
		frontier = next
	}
}

// Induced returns the subgraph induced by keep (keep[v] true means v stays)
// together with the mapping old→new ID (or -1 when dropped). Edges with
// either endpoint dropped are dropped. Labels are shared with g's dict.
func Induced(g *Graph, keep []bool) (*Graph, []int32) {
	n := g.NumNodes()
	remap := make([]int32, n)
	b := NewBuilderDict(g.dict)
	for v := 0; v < n; v++ {
		if keep[v] {
			remap[v] = int32(b.AddNodeLabel(g.labels[v]))
		} else {
			remap[v] = -1
		}
	}
	for v := 0; v < n; v++ {
		if remap[v] < 0 {
			continue
		}
		for _, w := range g.Succ(NodeID(v)) {
			if remap[w] >= 0 {
				b.AddEdge(NodeID(remap[v]), NodeID(remap[w]))
			}
		}
	}
	ind := b.MustBuild()
	return ind, remap
}

// IsTree reports whether g is a rooted out-tree or out-forest: every node
// has in-degree ≤ 1 and there is no cycle. The dGPMt algorithm (§5.2)
// requires tree data graphs. Roots (in-degree 0) are returned.
func IsTree(g *Graph) (roots []NodeID, ok bool) {
	n := g.NumNodes()
	indeg := make([]int32, n)
	for _, w := range g.succ {
		indeg[w]++
		if indeg[w] > 1 {
			return nil, false
		}
	}
	if !IsDAG(g) {
		return nil, false
	}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			roots = append(roots, NodeID(v))
		}
	}
	return roots, true
}
