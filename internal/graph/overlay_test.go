package graph

import (
	"math/rand"
	"testing"
)

func overlayTestGraph() *Graph {
	b := NewBuilder()
	for i := 0; i < 5; i++ {
		b.AddNode("X")
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(2, 2) // self-loop
	return b.MustBuild()
}

func TestOverlayBasics(t *testing.T) {
	g := overlayTestGraph()
	o := NewOverlay(g)
	if o.Dirty() || o.NumEdges() != 4 || o.Materialize() != g {
		t.Fatal("fresh overlay must be transparent")
	}
	if err := o.DeleteEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if o.HasEdge(0, 1) || o.NumEdges() != 3 {
		t.Fatal("deletion not visible")
	}
	if err := o.DeleteEdge(0, 1); err == nil {
		t.Fatal("double delete must error")
	}
	if err := o.InsertEdge(1, 2); err == nil {
		t.Fatal("inserting existing edge must error")
	}
	if err := o.InsertEdge(3, 0); err != nil {
		t.Fatal(err)
	}
	if !o.HasEdge(3, 0) || o.NumEdges() != 4 {
		t.Fatal("insertion not visible")
	}
	// Delete an inserted edge, re-insert a deleted one: back to base.
	if err := o.DeleteEdge(3, 0); err != nil {
		t.Fatal(err)
	}
	if err := o.InsertEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if o.Dirty() {
		t.Fatal("cancelled edits must leave the overlay clean")
	}
	if o.Materialize() != g {
		t.Fatal("clean overlay must materialize to the base graph")
	}
	// Out-of-range endpoints.
	if err := o.InsertEdge(9, 0); err == nil {
		t.Fatal("out-of-range insert must error")
	}
	if err := o.DeleteEdge(9, 0); err == nil {
		t.Fatal("out-of-range delete must error")
	}
}

func TestOverlaySuccAndMaterialize(t *testing.T) {
	g := overlayTestGraph()
	o := NewOverlay(g)
	if err := o.DeleteEdge(2, 2); err != nil {
		t.Fatal(err)
	}
	if err := o.InsertEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	succ := o.Succ(2)
	if len(succ) != 2 || succ[0] != 0 || succ[1] != 3 {
		t.Fatalf("Succ(2) = %v, want [0 3]", succ)
	}
	// Untouched node returns the base slice (no allocation path).
	if &o.Succ(1)[0] != &g.Succ(1)[0] {
		t.Fatal("untouched row must be the base CSR slice")
	}
	m := o.Materialize()
	if m.NumEdges() != o.NumEdges() || !m.HasEdge(2, 0) || m.HasEdge(2, 2) {
		t.Fatalf("materialized graph wrong: %v", m)
	}
	if o.Materialize() != m {
		t.Fatal("materialization must be cached between mutations")
	}
	if err := o.DeleteEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if o.Materialize() == m {
		t.Fatal("mutation must invalidate the cache")
	}
}

func TestNormalizeOps(t *testing.T) {
	g := overlayTestGraph()
	o := NewOverlay(g)
	// delete+insert same edge cancels; insert+delete cancels too.
	dels, ins, err := NormalizeOps(o, []EdgeOp{
		{Del: true, V: 0, W: 1},
		{V: 0, W: 1},
		{V: 4, W: 0},
		{Del: true, V: 4, W: 0},
		{Del: true, V: 1, W: 2},
		{V: 3, W: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dels) != 1 || dels[0] != [2]NodeID{1, 2} {
		t.Fatalf("dels = %v", dels)
	}
	if len(ins) != 1 || ins[0] != [2]NodeID{3, 4} {
		t.Fatalf("ins = %v", ins)
	}
	// Sequential semantics: deleting then re-deleting fails.
	if _, _, err := NormalizeOps(o, []EdgeOp{{Del: true, V: 0, W: 1}, {Del: true, V: 0, W: 1}}); err == nil {
		t.Fatal("double delete in one batch must fail")
	}
	// Inserting over a pending insert fails.
	if _, _, err := NormalizeOps(o, []EdgeOp{{V: 4, W: 0}, {V: 4, W: 0}}); err == nil {
		t.Fatal("double insert in one batch must fail")
	}
	// Delete→insert→delete is a net delete.
	dels, ins, err = NormalizeOps(o, []EdgeOp{
		{Del: true, V: 0, W: 1}, {V: 0, W: 1}, {Del: true, V: 0, W: 1},
	})
	if err != nil || len(dels) != 1 || len(ins) != 0 {
		t.Fatalf("net delete: dels=%v ins=%v err=%v", dels, ins, err)
	}
	// NormalizeOps must not mutate the overlay.
	if o.Dirty() {
		t.Fatal("NormalizeOps mutated the overlay")
	}
}

// Property: a random op sequence applied through the overlay matches a
// plain edge-set model.
func TestOverlayMatchesSetModel(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nv := 3 + r.Intn(8)
		b := NewBuilder()
		for i := 0; i < nv; i++ {
			b.AddNode("X")
		}
		model := make(map[uint64]bool)
		for i := 0; i < r.Intn(3*nv); i++ {
			v, w := NodeID(r.Intn(nv)), NodeID(r.Intn(nv))
			if !model[packEdge(v, w)] {
				model[packEdge(v, w)] = true
				b.AddEdge(v, w)
			}
		}
		o := NewOverlay(b.MustBuild())
		for i := 0; i < 60; i++ {
			v, w := NodeID(r.Intn(nv)), NodeID(r.Intn(nv))
			if r.Intn(2) == 0 {
				err := o.DeleteEdge(v, w)
				if model[packEdge(v, w)] {
					if err != nil {
						t.Fatalf("trial %d: delete existing failed: %v", trial, err)
					}
					delete(model, packEdge(v, w))
				} else if err == nil {
					t.Fatalf("trial %d: delete of absent edge accepted", trial)
				}
			} else {
				err := o.InsertEdge(v, w)
				if !model[packEdge(v, w)] {
					if err != nil {
						t.Fatalf("trial %d: insert failed: %v", trial, err)
					}
					model[packEdge(v, w)] = true
				} else if err == nil {
					t.Fatalf("trial %d: duplicate insert accepted", trial)
				}
			}
		}
		if o.NumEdges() != len(model) {
			t.Fatalf("trial %d: overlay has %d edges, model %d", trial, o.NumEdges(), len(model))
		}
		count := 0
		o.Edges(func(v, w NodeID) bool {
			if !model[packEdge(v, w)] {
				t.Fatalf("trial %d: phantom edge (%d,%d)", trial, v, w)
			}
			count++
			return true
		})
		if count != len(model) {
			t.Fatalf("trial %d: Edges visited %d, model %d", trial, count, len(model))
		}
		m := o.Materialize()
		if m.NumEdges() != len(model) {
			t.Fatalf("trial %d: materialized %d edges, model %d", trial, m.NumEdges(), len(model))
		}
	}
}
