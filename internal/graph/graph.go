//dgsvet:deterministic

// Package graph provides node-labeled directed graphs, the data-graph
// substrate of the paper "Distributed Graph Simulation: Impossibility and
// Possibility" (VLDB 2014).
//
// A data graph is G = (V, E, L) where V is a finite node set, E ⊆ V×V a set
// of directed edges, and L a labeling function over an alphabet Σ (§2.1).
// Graphs are stored in compressed-sparse-row (CSR) form with an interned
// label dictionary so that multi-million-edge graphs fit comfortably in
// memory and adjacency scans are cache friendly.
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node of a data graph. IDs are dense: a graph with n
// nodes uses IDs 0..n-1.
type NodeID = uint32

// Label is an interned node label. Labels are indices into a Dict.
type Label = uint16

// NoLabel is the zero label returned for out-of-range lookups.
const NoLabel Label = 0

// Dict interns label strings. Index 0 is reserved for the empty label so
// that the zero Label value is never a user label.
//
// A Dict is safe for concurrent use: Lookup, Name, Len and Names are
// lock-free reads (the serving gateway parses patterns on every request
// thread), while Intern serializes writers behind a mutex and publishes
// the grown table atomically. The id assigned to a name is determined
// solely by intern order, never by map iteration, so deterministic
// loaders stay deterministic.
type Dict struct {
	mu     sync.Mutex // serializes Intern
	byName sync.Map   // string → Label
	names  atomic.Pointer[[]string]
}

// NewDict returns an empty dictionary with the reserved empty label.
func NewDict() *Dict {
	d := &Dict{}
	names := []string{""}
	d.names.Store(&names)
	d.byName.Store("", NoLabel)
	return d
}

// NewDictFromNames builds a dictionary whose table is exactly names:
// names[i] interns to Label(i). Used to reconstruct a driver-owned
// dictionary shipped over the wire; the first entry should be the
// reserved empty label. A duplicate name resolves to its last index,
// matching the historical decode behavior.
func NewDictFromNames(names []string) *Dict {
	if len(names) > 1<<16 {
		panic("graph: label dictionary overflow (>65535 labels)")
	}
	d := &Dict{}
	table := append([]string(nil), names...)
	if len(table) == 0 {
		table = []string{""}
	}
	d.names.Store(&table)
	for i, name := range table {
		d.byName.Store(name, Label(i))
	}
	return d
}

// Intern returns the Label for name, creating it if needed.
func (d *Dict) Intern(name string) Label {
	if l, ok := d.byName.Load(name); ok {
		return l.(Label)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if l, ok := d.byName.Load(name); ok {
		return l.(Label)
	}
	cur := *d.names.Load()
	if len(cur) >= 1<<16 {
		panic("graph: label dictionary overflow (>65535 labels)")
	}
	l := Label(len(cur))
	// Copy-on-write append: readers holding the old snapshot never see
	// the new index, so publishing the grown table needs no read lock.
	grown := append(cur[:len(cur):len(cur)], name)
	d.names.Store(&grown)
	d.byName.Store(name, l)
	return l
}

// Lookup returns the Label for name and whether it exists.
func (d *Dict) Lookup(name string) (Label, bool) {
	l, ok := d.byName.Load(name)
	if !ok {
		return NoLabel, false
	}
	return l.(Label), true
}

// Name returns the string for label l, or "" if unknown.
func (d *Dict) Name(l Label) string {
	names := *d.names.Load()
	if int(l) >= len(names) {
		return ""
	}
	return names[l]
}

// Len reports the number of interned labels, including the reserved one.
func (d *Dict) Len() int { return len(*d.names.Load()) }

// Names returns the interned table indexed by Label: a consistent
// snapshot that later Interns will not mutate. Callers must not modify
// it. This is what DEPLOY ships so daemons can render labels.
func (d *Dict) Names() []string { return *d.names.Load() }

// Graph is an immutable node-labeled directed graph in CSR form.
// Build one with a Builder.
type Graph struct {
	labels []Label
	// Forward CSR: out-neighbors of v are succ[succOff[v]:succOff[v+1]].
	succOff []uint64
	succ    []NodeID
	// Reverse CSR, built lazily by EnsureReverse: in-neighbors of v.
	revOnce sync.Once
	predOff []uint64
	pred    []NodeID

	dict *Dict
}

// NumNodes reports |V|.
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumEdges reports |E|.
func (g *Graph) NumEdges() int { return len(g.succ) }

// Size reports |G| = |V| + |E|, the size measure used throughout the paper.
func (g *Graph) Size() int { return g.NumNodes() + g.NumEdges() }

// Label returns the label of node v.
func (g *Graph) Label(v NodeID) Label { return g.labels[v] }

// LabelName returns the string label of node v.
func (g *Graph) LabelName(v NodeID) string { return g.dict.Name(g.labels[v]) }

// Labels returns the raw label slice, indexed by NodeID. Callers must not
// modify it.
func (g *Graph) Labels() []Label { return g.labels }

// Dict returns the label dictionary shared by this graph.
func (g *Graph) Dict() *Dict { return g.dict }

// Succ returns the out-neighbors of v. Callers must not modify it.
func (g *Graph) Succ(v NodeID) []NodeID {
	return g.succ[g.succOff[v]:g.succOff[v+1]]
}

// OutDegree reports the out-degree of v.
func (g *Graph) OutDegree(v NodeID) int {
	return int(g.succOff[v+1] - g.succOff[v])
}

// HasEdge reports whether edge (v, w) exists. Succ lists are sorted, so
// this is a binary search.
func (g *Graph) HasEdge(v, w NodeID) bool {
	s := g.Succ(v)
	i := sort.Search(len(s), func(i int) bool { return s[i] >= w })
	return i < len(s) && s[i] == w
}

// EnsureReverse materializes the reverse CSR if not yet present. Safe
// for concurrent use: a graph shared by concurrent queries builds its
// reverse adjacency exactly once, and every caller returns with the
// build complete.
func (g *Graph) EnsureReverse() {
	g.revOnce.Do(g.buildReverse)
}

func (g *Graph) buildReverse() {
	n := g.NumNodes()
	deg := make([]uint64, n+1)
	for _, w := range g.succ {
		deg[w+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	pred := make([]NodeID, len(g.succ))
	fill := make([]uint64, n)
	copy(fill, deg[:n])
	for v := 0; v < n; v++ {
		for _, w := range g.Succ(NodeID(v)) {
			pred[fill[w]] = NodeID(v)
			fill[w]++
		}
	}
	g.predOff, g.pred = deg, pred
}

// Pred returns the in-neighbors of v. EnsureReverse must have been called.
func (g *Graph) Pred(v NodeID) []NodeID {
	if g.predOff == nil {
		panic("graph: Pred called before EnsureReverse")
	}
	return g.pred[g.predOff[v]:g.predOff[v+1]]
}

// InDegree reports the in-degree of v. EnsureReverse must have been called.
func (g *Graph) InDegree(v NodeID) int {
	if g.predOff == nil {
		panic("graph: InDegree called before EnsureReverse")
	}
	return int(g.predOff[v+1] - g.predOff[v])
}

// Edges calls fn for every edge (v, w) in ascending (v, w) order and stops
// early if fn returns false.
func (g *Graph) Edges(fn func(v, w NodeID) bool) {
	for v := 0; v < g.NumNodes(); v++ {
		for _, w := range g.Succ(NodeID(v)) {
			if !fn(NodeID(v), w) {
				return
			}
		}
	}
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(|V|=%d, |E|=%d, labels=%d)", g.NumNodes(), g.NumEdges(), g.dict.Len()-1)
}

// Builder accumulates nodes and edges and produces an immutable Graph.
// Duplicate edges are coalesced; self-loops are allowed (graph simulation
// is well defined on them and the paper does not exclude them).
type Builder struct {
	dict   *Dict
	labels []Label
	edges  [][2]NodeID
}

// NewBuilder returns a Builder using a fresh label dictionary.
func NewBuilder() *Builder { return NewBuilderDict(NewDict()) }

// NewBuilderDict returns a Builder interning labels into dict, which lets
// a pattern and a data graph share one alphabet.
func NewBuilderDict(dict *Dict) *Builder { return &Builder{dict: dict} }

// AddNode appends a node with the given label string and returns its ID.
func (b *Builder) AddNode(label string) NodeID {
	return b.AddNodeLabel(b.dict.Intern(label))
}

// AddNodeLabel appends a node with an already-interned label.
func (b *Builder) AddNodeLabel(l Label) NodeID {
	id := NodeID(len(b.labels))
	b.labels = append(b.labels, l)
	return id
}

// AddNodes appends n nodes sharing one label and returns the first ID.
func (b *Builder) AddNodes(n int, label string) NodeID {
	first := NodeID(len(b.labels))
	l := b.dict.Intern(label)
	for i := 0; i < n; i++ {
		b.labels = append(b.labels, l)
	}
	return first
}

// AddEdge records the directed edge (v, w). Both endpoints must already
// exist when Build is called.
func (b *Builder) AddEdge(v, w NodeID) {
	b.edges = append(b.edges, [2]NodeID{v, w})
}

// NumNodes reports the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.labels) }

// Build validates endpoints, sorts and dedups edges, and returns the CSR
// graph. The Builder may be reused afterwards (its state is copied out).
func (b *Builder) Build() (*Graph, error) {
	n := len(b.labels)
	for _, e := range b.edges {
		if int(e[0]) >= n || int(e[1]) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) references missing node (|V|=%d)", e[0], e[1], n)
		}
	}
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	g := &Graph{dict: b.dict}
	g.labels = append([]Label(nil), b.labels...)
	g.succOff = make([]uint64, n+1)
	g.succ = make([]NodeID, 0, len(b.edges))
	var prev [2]NodeID
	havePrev := false
	for _, e := range b.edges {
		if havePrev && e == prev {
			continue // dedup
		}
		prev, havePrev = e, true
		g.succ = append(g.succ, e[1])
		g.succOff[e[0]+1]++
	}
	for i := 0; i < n; i++ {
		g.succOff[i+1] += g.succOff[i]
	}
	return g, nil
}

// MustBuild is Build that panics on error; for tests and generators whose
// inputs are correct by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
