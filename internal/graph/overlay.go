package graph

// Overlay is a mutable edge set layered over an immutable CSR Graph: the
// current graph is base ∖ deleted ∪ inserted. It is the centralized twin
// of the per-fragment mutations a live deployment applies — the oracle
// side of incremental maintenance needs "the graph as of now" without
// rebuilding a CSR per update, and Materialize produces a real Graph
// (cached until the next mutation) when a fresh fixpoint or a fresh
// fragmentation is wanted.
//
// Node set and labels are fixed; only edges change. An Overlay is not
// safe for concurrent mutation; the deployment layer serializes access.

import (
	"fmt"
	"sort"
)

// EdgeOp is one update operation of an update stream: the deletion
// (Del=true) or insertion of the directed edge (V, W).
type EdgeOp struct {
	Del  bool
	V, W NodeID
}

func (op EdgeOp) String() string {
	if op.Del {
		return fmt.Sprintf("-(%d,%d)", op.V, op.W)
	}
	return fmt.Sprintf("+(%d,%d)", op.V, op.W)
}

func packEdge(v, w NodeID) uint64 { return uint64(v)<<32 | uint64(w) }

// Overlay tracks edge deletions and insertions against a base graph.
type Overlay struct {
	base     *Graph
	deleted  map[uint64]bool
	inserted map[uint64]bool
	// insSucc mirrors inserted as per-source target sets for Succ merges.
	insSucc map[NodeID][]NodeID

	cached *Graph // materialized current graph; nil after a mutation
}

// NewOverlay wraps g with an initially-empty overlay.
func NewOverlay(g *Graph) *Overlay {
	return &Overlay{
		base:     g,
		deleted:  make(map[uint64]bool),
		inserted: make(map[uint64]bool),
		insSucc:  make(map[NodeID][]NodeID),
	}
}

// Base returns the immutable graph underneath.
func (o *Overlay) Base() *Graph { return o.base }

// NumNodes reports |V| (fixed).
func (o *Overlay) NumNodes() int { return o.base.NumNodes() }

// NumEdges reports |E| of the current graph.
func (o *Overlay) NumEdges() int {
	return o.base.NumEdges() - len(o.deleted) + len(o.inserted)
}

// Label returns the (fixed) label of v.
func (o *Overlay) Label(v NodeID) Label { return o.base.Label(v) }

// HasEdge reports whether (v, w) exists in the current graph.
func (o *Overlay) HasEdge(v, w NodeID) bool {
	k := packEdge(v, w)
	if o.deleted[k] {
		return false
	}
	return o.inserted[k] || o.base.HasEdge(v, w)
}

// Dirty reports whether the overlay diverges from the base graph.
func (o *Overlay) Dirty() bool { return len(o.deleted)+len(o.inserted) > 0 }

// DeleteEdge removes (v, w) from the current graph; the edge must exist.
func (o *Overlay) DeleteEdge(v, w NodeID) error {
	if int(v) >= o.NumNodes() || int(w) >= o.NumNodes() {
		return fmt.Errorf("graph: delete (%d,%d): node out of range (|V|=%d)", v, w, o.NumNodes())
	}
	if !o.HasEdge(v, w) {
		return fmt.Errorf("graph: delete (%d,%d): edge does not exist", v, w)
	}
	k := packEdge(v, w)
	if o.inserted[k] {
		delete(o.inserted, k)
		o.insSucc[v] = removeNode(o.insSucc[v], w)
		if len(o.insSucc[v]) == 0 {
			delete(o.insSucc, v)
		}
	} else {
		o.deleted[k] = true
	}
	o.cached = nil
	return nil
}

// InsertEdge adds (v, w) to the current graph; the edge must not exist
// and both endpoints must be existing nodes (the node set is fixed).
func (o *Overlay) InsertEdge(v, w NodeID) error {
	if int(v) >= o.NumNodes() || int(w) >= o.NumNodes() {
		return fmt.Errorf("graph: insert (%d,%d): node out of range (|V|=%d)", v, w, o.NumNodes())
	}
	if o.HasEdge(v, w) {
		return fmt.Errorf("graph: insert (%d,%d): edge already exists", v, w)
	}
	k := packEdge(v, w)
	if o.deleted[k] {
		delete(o.deleted, k)
	} else {
		o.inserted[k] = true
		o.insSucc[v] = append(o.insSucc[v], w)
	}
	o.cached = nil
	return nil
}

// Succ returns the current out-neighbors of v, sorted. It allocates when
// v has overlay changes; otherwise it returns the base CSR slice.
func (o *Overlay) Succ(v NodeID) []NodeID {
	base := o.base.Succ(v)
	ins := o.insSucc[v]
	touched := len(ins) > 0
	if !touched {
		for _, w := range base {
			if o.deleted[packEdge(v, w)] {
				touched = true
				break
			}
		}
	}
	if !touched {
		return base
	}
	out := make([]NodeID, 0, len(base)+len(ins))
	for _, w := range base {
		if !o.deleted[packEdge(v, w)] {
			out = append(out, w)
		}
	}
	out = append(out, ins...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges calls fn for every current edge (ascending (v, w) order) and
// stops early if fn returns false.
func (o *Overlay) Edges(fn func(v, w NodeID) bool) {
	for v := 0; v < o.NumNodes(); v++ {
		for _, w := range o.Succ(NodeID(v)) {
			if !fn(NodeID(v), w) {
				return
			}
		}
	}
}

// Materialize returns the current graph as an immutable CSR Graph,
// sharing the base's label dictionary. The result is cached until the
// next mutation; an undirtied overlay returns the base itself.
func (o *Overlay) Materialize() *Graph {
	if !o.Dirty() {
		return o.base
	}
	if o.cached != nil {
		return o.cached
	}
	b := NewBuilderDict(o.base.Dict())
	for v := 0; v < o.NumNodes(); v++ {
		b.AddNodeLabel(o.base.Label(NodeID(v)))
	}
	o.Edges(func(v, w NodeID) bool {
		b.AddEdge(v, w)
		return true
	})
	o.cached = b.MustBuild()
	return o.cached
}

// NormalizeOps validates ops sequentially against the overlay's current
// state and returns the batch's net effect: deletions of edges that
// exist now and insertions of edges that don't, with delete-then-insert
// (and insert-then-delete) pairs on the same edge cancelled. The overlay
// itself is not modified.
func NormalizeOps(o *Overlay, ops []EdgeOp) (dels, ins [][2]NodeID, err error) {
	pendDel := make(map[uint64]bool)
	pendIns := make(map[uint64]bool)
	n := o.NumNodes()
	for _, op := range ops {
		if int(op.V) >= n || int(op.W) >= n {
			return nil, nil, fmt.Errorf("graph: op %s: node out of range (|V|=%d)", op, n)
		}
		k := packEdge(op.V, op.W)
		exists := (o.HasEdge(op.V, op.W) || pendIns[k]) && !pendDel[k]
		if op.Del {
			if !exists {
				return nil, nil, fmt.Errorf("graph: op %s: edge does not exist", op)
			}
			if pendIns[k] {
				delete(pendIns, k)
			} else {
				pendDel[k] = true
			}
		} else {
			if exists {
				return nil, nil, fmt.Errorf("graph: op %s: edge already exists", op)
			}
			if pendDel[k] {
				delete(pendDel, k)
			} else {
				pendIns[k] = true
			}
		}
	}
	for k := range pendDel {
		dels = append(dels, [2]NodeID{NodeID(k >> 32), NodeID(k & 0xffffffff)})
	}
	for k := range pendIns {
		ins = append(ins, [2]NodeID{NodeID(k >> 32), NodeID(k & 0xffffffff)})
	}
	sortEdgeList(dels)
	sortEdgeList(ins)
	return dels, ins, nil
}

func sortEdgeList(es [][2]NodeID) {
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
}

// removeNode deletes one occurrence of w from s (order not preserved).
func removeNode(s []NodeID, w NodeID) []NodeID {
	for i, x := range s {
		if x == w {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}
