package plan

// Binary plan codec for SessionSpec.Plan. The blob carries only what a
// remote site needs to honor the plan — the node and edge orders — not
// the estimates they were derived from (those stay driver-side, for
// explain output). The planner's registered name travels separately in
// SessionSpec.Planner so daemons can validate it against the registry.

import (
	"encoding/binary"
	"fmt"
)

const codecVersion = 1

const flagEmpty = 1 << 0

// Encode renders the plan for SessionSpec.Plan:
//
//	[u8 version=1][u8 flags][u16 nNodes][nNodes × u16][u16 nEdges][nEdges × u16]
//
// little-endian, matching the config blob convention.
func (p *Plan) Encode() []byte {
	out := make([]byte, 0, 6+2*len(p.Nodes)+2*len(p.Edges))
	out = append(out, codecVersion)
	var flags byte
	if p.Empty {
		flags |= flagEmpty
	}
	out = append(out, flags)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(p.Nodes)))
	for _, u := range p.Nodes {
		out = binary.LittleEndian.AppendUint16(out, u)
	}
	out = binary.LittleEndian.AppendUint16(out, uint16(len(p.Edges)))
	for _, e := range p.Edges {
		out = binary.LittleEndian.AppendUint16(out, e)
	}
	return out
}

// Decode parses an Encode blob. The decoded plan has no Planner name
// (the caller takes it from SessionSpec.Planner) and no estimates.
func Decode(b []byte) (*Plan, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("plan: blob too short (%d bytes)", len(b))
	}
	if b[0] != codecVersion {
		return nil, fmt.Errorf("plan: unknown codec version %d", b[0])
	}
	if b[1]&^flagEmpty != 0 {
		return nil, fmt.Errorf("plan: unknown flags %#x", b[1])
	}
	p := &Plan{Empty: b[1]&flagEmpty != 0}
	rest := b[2:]
	var err error
	if p.Nodes, rest, err = readU16s(rest, "node order"); err != nil {
		return nil, err
	}
	if p.Edges, rest, err = readU16s(rest, "edge order"); err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("plan: %d trailing bytes", len(rest))
	}
	return p, nil
}

func readU16s(b []byte, what string) ([]uint16, []byte, error) {
	if len(b) < 2 {
		return nil, nil, fmt.Errorf("plan: truncated %s length", what)
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) < 2*n {
		return nil, nil, fmt.Errorf("plan: truncated %s (want %d entries)", what, n)
	}
	out := make([]uint16, n)
	for i := 0; i < n; i++ {
		out[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return out, b[2*n:], nil
}
