package plan

import (
	"math/rand"
	"reflect"
	"testing"

	"dgs/internal/graph"
	"dgs/internal/pattern"
)

// testGraph: 1 node labeled rare, 10 labeled mid, 100 labeled common;
// every common node points at the rare node.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	rare := b.AddNode("rare")
	for i := 0; i < 10; i++ {
		b.AddNode("mid")
	}
	for i := 0; i < 100; i++ {
		v := b.AddNode("common")
		b.AddEdge(v, rare)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCollect(t *testing.T) {
	g := testGraph(t)
	st := Collect(g)
	dict := g.Dict()
	if got := st.Candidates(mustLabel(t, dict, "rare")); got != 1 {
		t.Fatalf("rare candidates = %d, want 1", got)
	}
	if got := st.Candidates(mustLabel(t, dict, "mid")); got != 10 {
		t.Fatalf("mid candidates = %d, want 10", got)
	}
	if got := st.Candidates(mustLabel(t, dict, "common")); got != 100 {
		t.Fatalf("common candidates = %d, want 100", got)
	}
	if got := st.OutSum(mustLabel(t, dict, "common")); got != 100 {
		t.Fatalf("common out-degree sum = %d, want 100", got)
	}
	if got := st.Candidates(graph.Label(9999)); got != 0 {
		t.Fatalf("unknown label candidates = %d, want 0", got)
	}
}

func mustLabel(t *testing.T, d *graph.Dict, name string) graph.Label {
	t.Helper()
	l, ok := d.Lookup(name)
	if !ok {
		t.Fatalf("label %q not interned", name)
	}
	return l
}

func TestGreedyPlanOrders(t *testing.T) {
	g := testGraph(t)
	st := Collect(g)
	// Declared common-first so the planner must reorder.
	q := pattern.MustParse(g.Dict(), `
node a common
node b mid
node c rare
edge a b
edge a c
`)
	p := GreedyPlan(q, st)
	if p.Empty {
		t.Fatal("plan marked empty with all labels populated")
	}
	// Seed order: rare (node 2), then mid (1), then common (0).
	if want := []uint16{2, 1, 0}; !reflect.DeepEqual(p.Nodes, want) {
		t.Fatalf("node order = %v, want %v", p.Nodes, want)
	}
	// Edge 1 (a→c, min=1) before edge 0 (a→b, min=10).
	if want := []uint16{1, 0}; !reflect.DeepEqual(p.Edges, want) {
		t.Fatalf("edge order = %v, want %v", p.Edges, want)
	}
	if err := p.Fits(q); err != nil {
		t.Fatalf("plan does not fit its own pattern: %v", err)
	}
}

func TestGreedyPlanEmpty(t *testing.T) {
	g := testGraph(t)
	st := Collect(g)
	dict := g.Dict()
	q := pattern.New(dict)
	a := q.AddNode("common", "a")
	b := q.AddNode("ghost", "b") // label absent from the graph
	q.MustAddEdge(a, b)
	p := GreedyPlan(q, st)
	if !p.Empty {
		t.Fatal("plan not marked empty for an absent label")
	}
	if p.NodeEst[1] != 0 {
		t.Fatalf("ghost estimate = %d, want 0", p.NodeEst[1])
	}
}

func TestCodecRoundTrip(t *testing.T) {
	g := testGraph(t)
	st := Collect(g)
	q := pattern.MustParse(g.Dict(), "node a common\nnode b rare\nedge a b\nedge b a")
	p := GreedyPlan(q, st)
	got, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Nodes, p.Nodes) || !reflect.DeepEqual(got.Edges, p.Edges) || got.Empty != p.Empty {
		t.Fatalf("round trip mismatch: got %+v, want %+v", got, p)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		{2, 0, 0, 0, 0, 0},          // unknown version
		{1, 0xff, 0, 0, 0, 0},       // unknown flags
		{1, 0, 5, 0},                // truncated node order
		{1, 0, 0, 0, 0, 0, 0xba},    // trailing bytes
		{1, 0, 1, 0, 2, 0, 0, 0, 1}, // truncated edge payload
	}
	for i, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("case %d: Decode(%v) accepted garbage", i, b)
		}
	}
}

func TestFitsRejectsWrongShape(t *testing.T) {
	g := testGraph(t)
	q := pattern.MustParse(g.Dict(), "node a common\nnode b rare\nedge a b")
	cases := []*Plan{
		{Nodes: []uint16{0}, Edges: []uint16{0}},       // too few nodes
		{Nodes: []uint16{0, 0}, Edges: []uint16{0}},    // duplicate node
		{Nodes: []uint16{0, 2}, Edges: []uint16{0}},    // out of range
		{Nodes: []uint16{0, 1}, Edges: nil},            // too few edges
		{Nodes: []uint16{0, 1}, Edges: []uint16{1}},    // edge out of range
		{Nodes: []uint16{0, 1}, Edges: []uint16{0, 0}}, // too many edges
	}
	for i, p := range cases {
		if err := p.Fits(q); err == nil {
			t.Errorf("case %d: Fits accepted malformed plan %+v", i, p)
		}
	}
}

func TestPlannerRegistry(t *testing.T) {
	f, ok := PlannerByName(Greedy)
	if !ok || f == nil {
		t.Fatal("greedy planner not registered")
	}
	if _, ok := PlannerByName("nope"); ok {
		t.Fatal("unknown planner resolved")
	}
	found := false
	for _, n := range RegisteredPlanners() {
		if n == Greedy {
			found = true
		}
	}
	if !found {
		t.Fatalf("RegisteredPlanners() = %v, missing %q", RegisteredPlanners(), Greedy)
	}
}

// renamed returns q with node identities permuted by a random
// permutation: same pattern modulo renaming/declaration order.
func renamed(q *pattern.Pattern, rng *rand.Rand) *pattern.Pattern {
	n := q.NumNodes()
	perm := rng.Perm(n)
	out := pattern.New(q.Dict())
	// Node at new position p is old node inv[p].
	inv := make([]int, n)
	for old, p := range perm {
		inv[p] = old
	}
	for p := 0; p < n; p++ {
		out.AddNode(q.LabelName(pattern.QNode(inv[p])), "")
	}
	for u := 0; u < n; u++ {
		for _, w := range q.Succ(pattern.QNode(u)) {
			out.MustAddEdge(pattern.QNode(perm[u]), pattern.QNode(perm[w]))
		}
	}
	return out
}

func TestCanonicalInvariantUnderRenaming(t *testing.T) {
	dict := graph.NewDict()
	samples := []string{
		"node a A\nnode b B\nedge a b",
		"node a A\nnode b B\nnode c C\nedge a b\nedge b c\nedge c a",
		"node a A\nnode b A\nnode c B\nedge a c\nedge b c",
		"node a A\nnode b A\nnode c A\nnode d B\nedge a b\nedge b c\nedge c a\nedge a d",
		"node x L\nnode y L\nedge x y\nedge y x",
		"node a A\nnode b B\nnode c C\nnode d D\nnode e E\nedge a b\nedge a c\nedge b d\nedge c d\nedge d e",
	}
	rng := rand.New(rand.NewSource(42))
	for si, src := range samples {
		q := pattern.MustParse(dict, src)
		base := Canonicalize(q)
		if base.Key == "" {
			t.Fatalf("sample %d: empty canonical key", si)
		}
		for trial := 0; trial < 20; trial++ {
			r := renamed(q, rng)
			got := Canonicalize(r)
			if got.Key != base.Key {
				t.Fatalf("sample %d trial %d: canonical key differs:\n%q\nvs\n%q", si, trial, got.Key, base.Key)
			}
		}
	}
}

func TestCanonicalKeyIsParseFixedPoint(t *testing.T) {
	dict := graph.NewDict()
	q := pattern.MustParse(dict, "node a A\nnode b B\nnode c A\nedge a b\nedge c b\nedge a c")
	c := Canonicalize(q)
	re, err := pattern.Parse(dict, c.Key)
	if err != nil {
		t.Fatalf("canonical key is not valid Parse input: %v\n%s", err, c.Key)
	}
	again := Canonicalize(re)
	if again.Key != c.Key {
		t.Fatalf("canonicalization is not a fixed point:\n%q\nvs\n%q", again.Key, c.Key)
	}
	// The reparsed canonical pattern also String()s back to the key.
	if re.String() != c.Key {
		t.Fatalf("Parse∘String broke on the canonical key:\n%q\nvs\n%q", re.String(), c.Key)
	}
}

func TestCanonicalPermIsConsistent(t *testing.T) {
	dict := graph.NewDict()
	q := pattern.MustParse(dict, "node a A\nnode b B\nnode c A\nedge a b\nedge c b\nedge a c")
	c := Canonicalize(q)
	// Perm must be a permutation, and relabeling q by it must reproduce
	// the key's edge structure.
	if err := checkPerm(toU16(c.Perm), q.NumNodes(), "canon"); err != nil {
		t.Fatal(err)
	}
	re := pattern.MustParse(dict, c.Key)
	for u := 0; u < q.NumNodes(); u++ {
		if re.Label(pattern.QNode(c.Perm[u])) != q.Label(pattern.QNode(u)) {
			t.Fatalf("perm breaks labels at node %d", u)
		}
		for _, w := range q.Succ(pattern.QNode(u)) {
			found := false
			for _, x := range re.Succ(pattern.QNode(c.Perm[u])) {
				if int(x) == c.Perm[w] {
					found = true
				}
			}
			if !found {
				t.Fatalf("perm breaks edge (%d,%d)", u, w)
			}
		}
	}
}

func toU16(xs []int) []uint16 {
	out := make([]uint16, len(xs))
	for i, x := range xs {
		out[i] = uint16(x)
	}
	return out
}

func TestCanonicalFallbackOnSymmetryBlowup(t *testing.T) {
	// A 12-node same-label bidirectional clique: refinement cannot split
	// anything, the search would visit 12! leaves; the cap must trigger
	// the deterministic raw fallback instead.
	dict := graph.NewDict()
	q := pattern.New(dict)
	n := 12
	for i := 0; i < n; i++ {
		q.AddNode("L", "")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				q.MustAddEdge(pattern.QNode(i), pattern.QNode(j))
			}
		}
	}
	c := Canonicalize(q)
	if len(c.Key) < 4 || c.Key[:4] != "raw\n" {
		t.Fatalf("expected raw fallback key, got %q...", c.Key[:20])
	}
	for i, p := range c.Perm {
		if i != p {
			t.Fatal("fallback perm is not the identity")
		}
	}
}
