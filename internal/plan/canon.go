package plan

// Canonical pattern form: a deterministic renaming of query nodes under
// which any two patterns that differ only by node naming/declaration
// order render to the same string. The algorithm is iterative
// refinement (color refinement on label + out/in-degree, the standard
// graph-canonization workhorse) with individualization on ties: when a
// color class holds several nodes, each member is tried as the class
// representative and the lexicographically smallest resulting encoding
// wins. Patterns are tiny (|Vq| is single digits in the paper's
// workloads), so the worst-case blowup on highly symmetric patterns is
// capped and falls back to the declaration-order rendering — losing
// sharing for that pattern, never correctness.

import (
	"fmt"
	"sort"
	"strings"

	"dgs/internal/graph"
	"dgs/internal/pattern"
)

const (
	// maxCanonNodes bounds the patterns we canonicalize; larger ones get
	// the declaration-order fallback key.
	maxCanonNodes = 64
	// maxCanonLeaves bounds the individualization search on symmetric
	// patterns (the product of tied-cell sizes along a search path).
	maxCanonLeaves = 1024
)

// Canon is the canonical form of a pattern.
type Canon struct {
	// Key is the canonical rendering. For canonicalized patterns it is
	// valid Parse input (nodes named c0..cN in canonical order), so
	// Parse(Key) canonicalizes back to the same Key. Fallback keys carry
	// a "raw\n" prefix, which no canonical rendering starts with.
	Key string
	// Perm maps each query node (declaration index) to its position in
	// the canonical order. Identity for fallback keys.
	Perm []int
}

// Canonicalize computes the canonical form of q. It is invariant under
// node renaming and declaration reordering: for any permutation π,
// Canonicalize(π(q)).Key == Canonicalize(q).Key (unless both exceed the
// symmetry cap and fall back).
func Canonicalize(q *pattern.Pattern) Canon {
	n := q.NumNodes()
	ident := func() Canon {
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		return Canon{Key: "raw\n" + q.String(), Perm: perm}
	}
	if n == 0 || n > maxCanonNodes {
		return ident()
	}

	c := &canonizer{n: n, labels: make([]graph.Label, n)}
	c.succ = make([][]int, n)
	c.pred = make([][]int, n)
	for u := 0; u < n; u++ {
		c.labels[u] = q.Label(pattern.QNode(u))
		for _, w := range q.Succ(pattern.QNode(u)) {
			c.succ[u] = append(c.succ[u], int(w))
			c.pred[w] = append(c.pred[w], u)
		}
	}

	// Initial coloring: (label, outdeg, indeg).
	init := c.rank(func(u int) string {
		return fmt.Sprintf("%d|%d|%d", c.labels[u], len(c.succ[u]), len(c.pred[u]))
	})
	c.search(init)
	if c.bestPerm == nil {
		return ident() // symmetry cap hit
	}
	return Canon{Key: c.render(q), Perm: c.bestPerm}
}

type canonizer struct {
	n      int
	labels []graph.Label
	succ   [][]int
	pred   [][]int

	leaves   int
	bestEnc  string
	bestPerm []int // node -> canonical position
}

// rank assigns dense color ranks 0..k-1 from a per-node signature.
func (c *canonizer) rank(sig func(u int) string) []int {
	sigs := make([]string, c.n)
	for u := 0; u < c.n; u++ {
		sigs[u] = sig(u)
	}
	order := make([]string, c.n)
	copy(order, sigs)
	sort.Strings(order)
	rankOf := make(map[string]int, c.n)
	r := 0
	for i, s := range order {
		if i == 0 || s != order[i-1] {
			rankOf[s] = r
			r++
		}
	}
	colors := make([]int, c.n)
	for u := 0; u < c.n; u++ {
		colors[u] = rankOf[sigs[u]]
	}
	return colors
}

// refine runs color refinement to the stable partition: each round
// extends a node's color with the sorted colors of its successors and
// predecessors; rounds stop when no class splits (the color count is
// monotone and bounded by n).
func (c *canonizer) refine(colors []int) []int {
	count := func(cs []int) int {
		max := -1
		for _, x := range cs {
			if x > max {
				max = x
			}
		}
		return max + 1
	}
	for {
		before := count(colors)
		if before == c.n {
			return colors
		}
		cur := colors
		next := c.rank(func(u int) string {
			var sb strings.Builder
			fmt.Fprintf(&sb, "%d:", cur[u])
			ns := make([]int, 0, len(c.succ[u]))
			for _, w := range c.succ[u] {
				ns = append(ns, cur[w])
			}
			sort.Ints(ns)
			for _, x := range ns {
				fmt.Fprintf(&sb, "s%d", x)
			}
			ns = ns[:0]
			for _, w := range c.pred[u] {
				ns = append(ns, cur[w])
			}
			sort.Ints(ns)
			for _, x := range ns {
				fmt.Fprintf(&sb, "p%d", x)
			}
			return sb.String()
		})
		if count(next) == before {
			return next
		}
		colors = next
	}
}

// search explores the individualization tree under the first (smallest-
// color) non-singleton cell and records the minimal leaf encoding.
func (c *canonizer) search(colors []int) {
	if c.leaves > maxCanonLeaves {
		return
	}
	colors = c.refine(colors)

	// Locate the non-singleton cell with the smallest color.
	size := make([]int, c.n+1)
	for _, x := range colors {
		size[x]++
	}
	cell := -1
	for col := 0; col < c.n; col++ {
		if size[col] > 1 {
			cell = col
			break
		}
	}
	if cell < 0 {
		// Discrete: colors are positions.
		c.leaves++
		if c.leaves > maxCanonLeaves {
			c.bestPerm = nil
			c.bestEnc = ""
			return
		}
		enc := c.encode(colors)
		if c.bestEnc == "" || enc < c.bestEnc {
			c.bestEnc = enc
			c.bestPerm = append([]int(nil), colors...)
		}
		return
	}
	for v := 0; v < c.n; v++ {
		if colors[v] != cell {
			continue
		}
		// Individualize v: strictly smaller than its cellmates, all other
		// relative orders preserved.
		ind := make([]int, c.n)
		for u := 0; u < c.n; u++ {
			ind[u] = colors[u] * 2
			if colors[u] == cell && u != v {
				ind[u]++
			}
		}
		c.search(ind)
		if c.leaves > maxCanonLeaves {
			c.bestPerm = nil
			c.bestEnc = ""
			return
		}
	}
}

// encode renders a discrete coloring for comparison: labels by position,
// then the sorted edge list in positions. Every leaf of one pattern's
// search tree has the same label sequence (cells are label-homogeneous),
// so leaves differ only in their edge lists.
func (c *canonizer) encode(pos []int) string {
	var sb strings.Builder
	byPos := make([]int, c.n)
	for u, p := range pos {
		byPos[p] = u
	}
	for p := 0; p < c.n; p++ {
		fmt.Fprintf(&sb, "n%d;", c.labels[byPos[p]])
	}
	type pedge struct{ a, b int }
	var edges []pedge
	for u := 0; u < c.n; u++ {
		for _, w := range c.succ[u] {
			edges = append(edges, pedge{pos[u], pos[w]})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	for _, e := range edges {
		fmt.Fprintf(&sb, "e%d,%d;", e.a, e.b)
	}
	return sb.String()
}

// render emits the canonical key in Parse format: nodes c0..cN in
// canonical order, then edges sorted by (from, to). This matches what
// Pattern.String() produces for the reparsed key, so the key is a fixed
// point of Parse∘Canonicalize. Labels without a dictionary name render
// as "#<id>" (such keys are cache-comparable but not re-parseable).
func (c *canonizer) render(q *pattern.Pattern) string {
	var sb strings.Builder
	pos := c.bestPerm
	byPos := make([]int, c.n)
	for u, p := range pos {
		byPos[p] = u
	}
	dict := q.Dict()
	for p := 0; p < c.n; p++ {
		name := dict.Name(c.labels[byPos[p]])
		if name == "" {
			name = fmt.Sprintf("#%d", c.labels[byPos[p]])
		}
		fmt.Fprintf(&sb, "node c%d %s\n", p, name)
	}
	type pedge struct{ a, b int }
	var edges []pedge
	for u := 0; u < c.n; u++ {
		for _, w := range c.succ[u] {
			edges = append(edges, pedge{pos[u], pos[w]})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	for _, e := range edges {
		fmt.Fprintf(&sb, "edge c%d c%d\n", e.a, e.b)
	}
	return sb.String()
}
