//dgsvet:deterministic

// Package plan is the query-planning layer between pattern parsing and
// distributed evaluation. It turns cheap per-deployment statistics
// (label frequencies and degree summaries the driver already holds)
// into an evaluation Plan: a seed order that starts from the rarest
// label, a query-edge order ascending in estimated selectivity, and an
// Empty verdict that short-circuits queries whose label has zero
// occurrences in the deployed graph before any session is opened.
//
// Plans are advisory: dGPM's counter fixpoint is confluent, so any
// evaluation order reaches the same unique maximum simulation and the
// same termination certificate. A site without a plan (an old daemon, a
// planner-off deployment) evaluates in declaration order with identical
// results; a plan only reorders work so cheap falsifications happen —
// and ship — first.
//
// The package also defines the canonical form of a pattern (canon.go):
// a deterministic renaming under which equivalent-modulo-renaming
// patterns render to one string, used by the serve cache and by
// standing-query sharing.
package plan

import (
	"fmt"
	"sort"
	"sync"

	"dgs/internal/graph"
	"dgs/internal/pattern"
)

// Stats are the per-deployment selectivity statistics plans are built
// from. They are collected once at Deploy time and stay valid for the
// deployment's lifetime: Apply mutates edges only — the node set and
// node labels of a deployed graph are fixed — so label populations
// never change, and the degree sums remain an adequate work proxy.
type Stats struct {
	// Nodes is |V| of the deployed graph.
	Nodes int
	// LabelNodes[l] counts the graph nodes carrying label l.
	LabelNodes []uint32
	// LabelOut[l] sums the out-degrees of the nodes carrying label l —
	// the number of adjacency entries a per-edge counter pass over that
	// label's candidates scans.
	LabelOut []uint64
}

// Collect scans g once and returns its planning statistics: O(|V|),
// no allocation beyond the two per-label arrays.
func Collect(g *graph.Graph) *Stats {
	n := g.NumNodes()
	st := &Stats{Nodes: n}
	labels := g.Labels()
	maxL := graph.Label(0)
	for _, l := range labels {
		if l > maxL {
			maxL = l
		}
	}
	st.LabelNodes = make([]uint32, int(maxL)+1)
	st.LabelOut = make([]uint64, int(maxL)+1)
	for v := 0; v < n; v++ {
		l := labels[v]
		st.LabelNodes[l]++
		st.LabelOut[l] += uint64(g.OutDegree(graph.NodeID(v)))
	}
	return st
}

// Candidates returns the number of graph nodes carrying label l — the
// initial candidate-set size of a query node with that label (initial
// alive state is exactly label consistency).
func (st *Stats) Candidates(l graph.Label) uint32 {
	if int(l) >= len(st.LabelNodes) {
		return 0
	}
	return st.LabelNodes[l]
}

// OutSum returns the summed out-degree over nodes carrying label l.
func (st *Stats) OutSum(l graph.Label) uint64 {
	if int(l) >= len(st.LabelOut) {
		return 0
	}
	return st.LabelOut[l]
}

// Plan is an evaluation plan for one pattern. Node and edge indices
// refer to the pattern's declaration order; the edge enumeration is the
// one every Engine uses: for u ascending, the edges (u, q.Succ(u)[j])
// in succ-slice order.
type Plan struct {
	// Planner is the registered name of the planner that built the plan.
	Planner string
	// Empty reports that some query node's label has zero occurrences
	// in the deployed graph: the simulation is empty, no evaluation —
	// and no wire traffic — is needed.
	Empty bool
	// Nodes lists every query node, rarest label first: the order in
	// which seed falsification scans run.
	Nodes []uint16
	// Edges lists every query-edge index, ascending estimated
	// selectivity: the order counter initialization and falsification
	// propagation visit query edges.
	Edges []uint16
	// NodeEst is the estimated candidate count per query node in
	// declaration order (for explain output; not shipped on the wire).
	NodeEst []uint32
}

// Fits checks the plan against a pattern's shape: both index lists must
// be permutations of the pattern's node/edge index ranges. Sites
// validate received plans with it before trusting the orders.
func (p *Plan) Fits(q *pattern.Pattern) error {
	if err := checkPerm(p.Nodes, q.NumNodes(), "node"); err != nil {
		return err
	}
	return checkPerm(p.Edges, q.NumEdges(), "edge")
}

func checkPerm(xs []uint16, n int, what string) error {
	if len(xs) != n {
		return fmt.Errorf("plan: %s order has %d entries, pattern has %d", what, len(xs), n)
	}
	seen := make([]bool, n)
	for _, x := range xs {
		if int(x) >= n || seen[x] {
			return fmt.Errorf("plan: %s order is not a permutation of 0..%d", what, n-1)
		}
		seen[x] = true
	}
	return nil
}

// A Func builds a plan for q from deployment statistics. Implementations
// must be deterministic: the same pattern and stats yield the same plan.
type Func func(q *pattern.Pattern, st *Stats) *Plan

// Greedy is the registered name of the default selectivity-greedy
// planner.
const Greedy = "greedy"

var (
	plannerMu  sync.Mutex
	plannerReg = make(map[string]Func)
)

// RegisterPlanner installs a planner under name. Planner packages
// register in init, mirroring cluster.RegisterAlgorithm; daemons
// validate SessionSpec.Planner against this registry. Duplicate names
// panic.
func RegisterPlanner(name string, f Func) {
	plannerMu.Lock()
	defer plannerMu.Unlock()
	if _, dup := plannerReg[name]; dup {
		panic(fmt.Sprintf("plan: planner %q registered twice", name))
	}
	plannerReg[name] = f
}

// PlannerByName looks a registered planner up by name.
func PlannerByName(name string) (Func, bool) {
	plannerMu.Lock()
	defer plannerMu.Unlock()
	f, ok := plannerReg[name]
	return f, ok
}

// RegisteredPlanners lists the registered planner names, sorted.
func RegisteredPlanners() []string {
	plannerMu.Lock()
	defer plannerMu.Unlock()
	names := make([]string, 0, len(plannerReg))
	for n := range plannerReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterPlanner(Greedy, GreedyPlan)
}

// GreedyPlan is the stats-free-infrastructure greedy planner: node
// selectivity is the label's candidate population, edge selectivity the
// smaller endpoint population (the counter that can exhaust first),
// with the parent label's adjacency volume as the work tiebreak.
// Planning is O(|Q| log |Q|) over numbers already in hand — no
// histograms, no sampling.
func GreedyPlan(q *pattern.Pattern, st *Stats) *Plan {
	nq := q.NumNodes()
	p := &Plan{Planner: Greedy, NodeEst: make([]uint32, nq)}
	for u := 0; u < nq; u++ {
		est := st.Candidates(q.Label(pattern.QNode(u)))
		p.NodeEst[u] = est
		if est == 0 {
			p.Empty = true
		}
	}

	p.Nodes = make([]uint16, nq)
	for u := range p.Nodes {
		p.Nodes[u] = uint16(u)
	}
	sort.SliceStable(p.Nodes, func(i, j int) bool {
		a, b := p.Nodes[i], p.Nodes[j]
		if p.NodeEst[a] != p.NodeEst[b] {
			return p.NodeEst[a] < p.NodeEst[b]
		}
		return a < b
	})

	type scored struct {
		idx  uint16
		sel  uint32 // min endpoint population
		work uint64 // parent label adjacency volume
	}
	var edges []scored
	idx := 0
	for u := 0; u < nq; u++ {
		for range q.Succ(pattern.QNode(u)) {
			edges = append(edges, scored{idx: uint16(idx)})
			idx++
		}
	}
	i := 0
	for u := 0; u < nq; u++ {
		for _, uc := range q.Succ(pattern.QNode(u)) {
			sel := p.NodeEst[u]
			if p.NodeEst[uc] < sel {
				sel = p.NodeEst[uc]
			}
			edges[i].sel = sel
			edges[i].work = st.OutSum(q.Label(pattern.QNode(u)))
			i++
		}
	}
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].sel != edges[j].sel {
			return edges[i].sel < edges[j].sel
		}
		if edges[i].work != edges[j].work {
			return edges[i].work < edges[j].work
		}
		return edges[i].idx < edges[j].idx
	})
	p.Edges = make([]uint16, len(edges))
	for i, e := range edges {
		p.Edges[i] = e.idx
	}
	return p
}
