// Package dagsim implements dGPMd (§5.1): distributed graph simulation
// for DAG patterns (or DAG data graphs) with rank-scheduled batching.
//
// For a DAG pattern Q, the topological rank r(u) — 0 for leaves, else
// 1 + max over children — stratifies the Boolean variables: X(u,v)
// depends only on variables of strictly smaller rank. dGPMd therefore
// ships falsifications in at most d waves: a site emits its rank-r batch
// (one message per watching site, possibly empty) as soon as every
// expected batch of rank < r has arrived, because at that point its
// rank-r variables are final. No fixpoint iteration is needed — after d
// waves every variable is final, which is what makes dGPMd parallel
// scalable in response time for fixed |F| (Theorem 3).
//
// When the data graph G is a DAG and Q is cyclic, G cannot match Q (every
// query node on a cycle would need an infinite path), so Q(G) = ∅ with no
// distributed work at all.
package dagsim

import (
	"context"
	"fmt"
	"sort"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/dagcheck"
	"dgs/internal/dgpm"
	"dgs/internal/graph"
	"dgs/internal/obs"
	"dgs/internal/partition"
	"dgs/internal/pattern"
	"dgs/internal/simulation"
	"dgs/internal/wire"
)

// rankInfo precomputes, per label, the set of variable ranks other sites
// may need: ranks r(u) ≥ 1 of candidate query nodes u that have a parent
// (top-rank variables feed nobody and are never shipped — "no data needs
// to be shipped when r = d").
type rankInfo struct {
	ranks   []int // per query node
	maxRank int
	byLabel map[graph.Label][]int // sorted, deduplicated shipping ranks
}

func newRankInfo(q *pattern.Pattern) (*rankInfo, bool) {
	r, ok := q.Ranks()
	if !ok {
		return nil, false
	}
	ri := &rankInfo{ranks: r, byLabel: make(map[graph.Label][]int)}
	tmp := make(map[graph.Label]map[int]bool)
	for u := 0; u < q.NumNodes(); u++ {
		if r[u] > ri.maxRank {
			ri.maxRank = r[u]
		}
		if r[u] == 0 || len(q.Pred(pattern.QNode(u))) == 0 {
			continue
		}
		l := q.Label(pattern.QNode(u))
		if tmp[l] == nil {
			tmp[l] = make(map[int]bool)
		}
		tmp[l][r[u]] = true
	}
	for l, set := range tmp {
		for rr := range set {
			ri.byLabel[l] = append(ri.byLabel[l], rr)
		}
		sort.Ints(ri.byLabel[l])
	}
	return ri, true
}

// shipRanks reports the ranks at which variables of a node with label l
// must be shipped.
func (ri *rankInfo) shipRanks(l graph.Label) []int { return ri.byLabel[l] }

type dagSite struct {
	q    *pattern.Pattern
	frag *partition.Fragment
	ri   *rankInfo

	eng *dgpm.Engine

	// need/got count expected and received batches per rank.
	need []int
	got  []int
	// sendPlan[r] lists watcher sites expecting our rank-r batch.
	sendPlan [][]int
	// rankBuf[r] accumulates falsified in-node variables of rank r.
	rankBuf [][]wire.VarRef
	// nextSend is the next rank wave to emit (1-based).
	nextSend int

	pending []wire.Payload
}

func newDagSite(q *pattern.Pattern, frag *partition.Fragment, ri *rankInfo) *dagSite {
	s := &dagSite{q: q, frag: frag, ri: ri, nextSend: 1}
	d := ri.maxRank
	s.need = make([]int, d+1)
	s.got = make([]int, d+1)
	s.rankBuf = make([][]wire.VarRef, d+1)
	s.sendPlan = make([][]int, d+1)

	// Incoming expectation: one batch per (owner site, rank) for which the
	// owner has an in-node we hold as virtual with a shippable rank.
	inSeen := make(map[[2]int]bool)
	for _, v := range frag.Virtual {
		owner := frag.Owner[v]
		for _, rr := range ri.shipRanks(frag.Labels[v]) {
			k := [2]int{owner, rr}
			if !inSeen[k] {
				inSeen[k] = true
				s.need[rr]++
			}
		}
	}
	// Outgoing plan: symmetric computation on our in-nodes.
	outSeen := make(map[[2]int]bool)
	for _, v := range frag.InNodes {
		for _, w := range frag.InWatchers[v] {
			for _, rr := range ri.shipRanks(frag.Labels[v]) {
				k := [2]int{w, rr}
				if !outSeen[k] {
					outSeen[k] = true
					s.sendPlan[rr] = append(s.sendPlan[rr], w)
				}
			}
		}
	}
	for _, p := range s.sendPlan {
		sort.Ints(p)
	}
	return s
}

func (s *dagSite) Recv(ctx *cluster.Ctx, from int, p wire.Payload) {
	if s.eng == nil {
		if c, ok := p.(*wire.Control); !ok || c.Op != dgpm.OpStart {
			s.pending = append(s.pending, p)
			return
		}
	}
	switch m := p.(type) {
	case *wire.Control:
		switch m.Op {
		case dgpm.OpStart:
			s.eng = dgpm.NewEngine(s.q, s.frag)
			s.bufferDeaths(s.eng.Drain())
			s.advance(ctx)
			for _, buf := range s.pending {
				s.Recv(ctx, from, buf)
			}
			s.pending = nil
		case dgpm.OpReport:
			ctx.Send(cluster.Coordinator, &wire.Matches{
				Frag:  uint16(s.frag.ID),
				Pairs: s.eng.LocalMatches(),
			})
		}
	case *wire.RankBatch:
		rr := int(m.Rank)
		if rr >= len(s.got) {
			return
		}
		s.got[rr]++
		s.eng.ApplyFalsifications(m.Pairs)
		s.bufferDeaths(s.eng.Drain())
		s.advance(ctx)
	}
}

// bufferDeaths files freshly falsified in-node variables under their rank.
func (s *dagSite) bufferDeaths(pairs []wire.VarRef) {
	for _, r := range pairs {
		rr := s.ri.ranks[r.U]
		if rr >= 1 && rr < len(s.rankBuf) && len(s.q.Pred(pattern.QNode(r.U))) > 0 {
			s.rankBuf[rr] = append(s.rankBuf[rr], r)
		}
	}
}

// advance emits every wave whose prerequisites are complete: the rank-r
// batch goes out once all expected batches of rank < r have arrived.
func (s *dagSite) advance(ctx *cluster.Ctx) {
	for s.nextSend < len(s.need) {
		ready := true
		for rr := 1; rr < s.nextSend; rr++ {
			if s.got[rr] < s.need[rr] {
				ready = false
				break
			}
		}
		if !ready {
			return
		}
		rr := s.nextSend
		s.nextSend++
		if len(s.sendPlan[rr]) == 0 {
			continue
		}
		ctx.AddRounds(1)
		// Partition the buffered rank-rr deaths per watcher.
		perDest := make(map[int][]wire.VarRef)
		for _, r := range s.rankBuf[rr] {
			v := graph.NodeID(r.V)
			for _, w := range s.frag.InWatchers[v] {
				perDest[w] = append(perDest[w], r)
			}
		}
		for _, w := range s.sendPlan[rr] {
			ctx.Send(w, &wire.RankBatch{Rank: uint16(rr), Pairs: perDest[w]})
		}
	}
}

// Eval evaluates Q over the fragmentation resident on cluster c with
// dGPMd, as one session. Preconditions (Theorem 3): either Q is a DAG,
// or G is a DAG. gIsDAG asserts the latter; when Q is cyclic and gIsDAG
// holds, the answer is ∅ with no distributed evaluation ("when Q is
// cyclic, G does not match Q"). When Q is cyclic and gIsDAG is not
// asserted, the partition-bounded distributed acyclicity protocol
// (internal/dagcheck) decides G's case on the same cluster.
func Eval(ctx context.Context, c *cluster.Cluster, q *pattern.Pattern, fr *partition.Fragmentation, gIsDAG bool) (*simulation.Match, cluster.Stats, error) {
	m, st, _, err := EvalTraced(ctx, c, q, fr, gIsDAG, 0)
	return m, st, err
}

// EvalTraced is Eval with distributed tracing: a nonzero traceID makes
// every site record per-round spans, collected after the session
// closes. The acyclicity precheck runs untraced — it is its own
// sub-session with separate stats. traceID 0 disables tracing (nil
// trace) with wire traffic byte-identical to Eval.
func EvalTraced(ctx context.Context, c *cluster.Cluster, q *pattern.Pattern, fr *partition.Fragmentation, gIsDAG bool, traceID uint64) (*simulation.Match, cluster.Stats, *obs.QueryTrace, error) {
	_, qIsDAG := newRankInfo(q)
	if !qIsDAG {
		var checkStats cluster.Stats
		if !gIsDAG {
			ok, st, err := dagcheck.Eval(ctx, c, fr)
			if err != nil {
				return nil, cluster.Stats{}, nil, err
			}
			checkStats = st
			if !ok {
				return nil, cluster.Stats{}, nil, fmt.Errorf("dagsim: dGPMd requires a DAG pattern or a DAG data graph")
			}
		}
		// Cyclic Q on acyclic G: no match, detectable with Tarjan on Q
		// alone (§5.1 "DAG G").
		return simulation.NewMatch(q.NumNodes()), checkStats, nil, nil
	}

	coord := &collector{nq: q.NumNodes()}
	spec := cluster.SessionSpec{Algo: Algo, Query: pattern.EncodeBinary(q), TraceID: traceID}
	sess, err := c.OpenSession(cluster.SessionQuery, spec, coord)
	if err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	defer sess.Close()
	start := time.Now()
	sess.Broadcast(&wire.Control{Op: dgpm.OpStart})
	if err := sess.WaitQuiesce(ctx); err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	sess.Broadcast(&wire.Control{Op: dgpm.OpReport})
	if err := sess.WaitQuiesce(ctx); err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	stats := sess.Stats()
	stats.Wall = time.Since(start)
	match := coord.assemble()
	sess.Close()
	trace, err := sess.Trace(ctx)
	if err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	return match, stats, trace, nil
}

// Run evaluates one query on a throwaway single-query cluster.
func Run(q *pattern.Pattern, fr *partition.Fragmentation, gIsDAG bool) (*simulation.Match, cluster.Stats, error) {
	c := cluster.NewLocal(fr, cluster.Network{})
	defer c.Shutdown()
	return Eval(context.Background(), c, q, fr, gIsDAG)
}

// Algo is the registered name of the dGPMd site. The spec carries only
// the (DAG) query; each site re-derives the rank schedule from it.
const Algo = "dgpmd"

func init() {
	cluster.RegisterAlgorithm(Algo, func(spec cluster.SessionSpec, frag *partition.Fragment, assign []int32) (cluster.Handler, error) {
		q, err := pattern.DecodeBinary(spec.Query)
		if err != nil {
			return nil, err
		}
		ri, ok := newRankInfo(q)
		if !ok {
			return nil, fmt.Errorf("dagsim: spec query is cyclic")
		}
		return newDagSite(q, frag, ri), nil
	})
}

type collector struct {
	nq    int
	pairs []wire.VarRef
}

func (c *collector) Recv(ctx *cluster.Ctx, from int, p wire.Payload) {
	if m, ok := p.(*wire.Matches); ok {
		c.pairs = append(c.pairs, m.Pairs...)
	}
}

func (c *collector) assemble() *simulation.Match {
	m := simulation.NewMatch(c.nq)
	for _, r := range c.pairs {
		m.Sets[r.U] = append(m.Sets[r.U], graph.NodeID(r.V))
	}
	m.Sort()
	return m.Canonical()
}
