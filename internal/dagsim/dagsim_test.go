package dagsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dgs/internal/dgpm"
	"dgs/internal/graph"
	"dgs/internal/partition"
	"dgs/internal/pattern"
	"dgs/internal/simulation"
)

// fig5 reproduces Example 9/10: Q” (ranks FB=0, YB2=1, SP=2, YF=F=3,
// YB1=4) and a G” that does not match it, split across fragments.
func fig5(t *testing.T) (*pattern.Pattern, *graph.Graph, *partition.Fragmentation) {
	t.Helper()
	d := graph.NewDict()
	q := pattern.MustParse(d, `
node YB1 YB
node YF  YF
node F   F
node SP  SP
node YB2 YB
node FB  FB
edge YB1 YF
edge YB1 F
edge YF  SP
edge F   SP
edge SP  YB2
edge YB2 FB
`)
	b := graph.NewBuilderDict(d)
	ids := map[string]graph.NodeID{}
	add := func(n, l string) { ids[n] = b.AddNode(l) }
	// G'': yb4 -> {yf4..yf6, f5..f7} -> sp4..sp7 -> yb4? The paper's G''
	// lacks an FB node entirely, so nothing matches YB2, hence nothing
	// matches SP, YF, F, YB1 either.
	add("yb4", "YB")
	add("yf4", "YF")
	add("yf5", "YF")
	add("yf6", "YF")
	add("f5", "F")
	add("f6", "F")
	add("f7", "F")
	add("sp4", "SP")
	add("sp5", "SP")
	add("sp6", "SP")
	add("sp7", "SP")
	e := func(a, bn string) { b.AddEdge(ids[a], ids[bn]) }
	e("yb4", "yf4")
	e("yb4", "f5")
	e("yf4", "sp4")
	e("yf5", "sp5")
	e("yf6", "sp6")
	e("f5", "sp5")
	e("f6", "sp6")
	e("f7", "sp7")
	e("sp4", "yb4")
	g := b.MustBuild()
	// Fragments as in Fig. 5: F4={yb4}, F5={yf4,yf5,f5}, F6={yf6,f6,f7},
	// F7={sp4,sp5}, F8={sp6,sp7}.
	assign := make([]int32, g.NumNodes())
	frag := map[string]int32{
		"yb4": 0,
		"yf4": 1, "yf5": 1, "f5": 1,
		"yf6": 2, "f6": 2, "f7": 2,
		"sp4": 3, "sp5": 3,
		"sp6": 4, "sp7": 4,
	}
	for n, id := range ids {
		assign[id] = frag[n]
	}
	fr, err := partition.Build(g, assign, 5)
	if err != nil {
		t.Fatal(err)
	}
	return q, g, fr
}

func TestFig5NoMatchAndBatchedShipping(t *testing.T) {
	q, g, fr := fig5(t)
	want := simulation.HHK(q, g)
	if want.Ok() {
		t.Fatal("fixture error: G'' must not match Q''")
	}
	got, stats, err := Run(q, fr, true)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPairs() != 0 {
		t.Fatalf("dGPMd found matches in a non-matching graph: %v", got)
	}
	// Rank batching: messages are bounded by (#site-pairs with shippable
	// ranks) — far fewer than one per falsified variable. dGPM on the
	// same input may send more, dGPMd must not exceed the static plan.
	if stats.DataMsgs == 0 {
		t.Fatal("expected rank batches to flow")
	}
	t.Logf("dGPMd: %d messages, %d bytes", stats.DataMsgs, stats.DataBytes)
}

func TestCyclicQOnDAGGIsEmpty(t *testing.T) {
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A\nnode b B\nedge a b\nedge b a")
	b := graph.NewBuilderDict(d)
	b.AddNode("A")
	b.AddNode("B")
	b.AddEdge(0, 1)
	g := b.MustBuild()
	fr, err := partition.Build(g, []int32{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Run(q, fr, true)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPairs() != 0 {
		t.Fatal("cyclic Q on DAG G must be empty")
	}
	if stats.DataBytes != 0 || stats.DataMsgs != 0 {
		t.Fatal("the shortcut must ship nothing")
	}
	_ = g
}

func TestCyclicQCyclicGRejected(t *testing.T) {
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A\nedge a a")
	b := graph.NewBuilderDict(d)
	b.AddNode("A")
	b.AddEdge(0, 0)
	g := b.MustBuild()
	fr, err := partition.Build(g, []int32{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(q, fr, false); err == nil {
		t.Fatal("cyclic Q and cyclic G must be rejected")
	}
}

func randomDAGCase(r *rand.Rand) (*pattern.Pattern, *graph.Graph, *partition.Fragmentation) {
	d := graph.NewDict()
	labels := []string{"A", "B", "C"}
	nq := 1 + r.Intn(6)
	q := pattern.New(d)
	for i := 0; i < nq; i++ {
		q.AddNode(labels[r.Intn(len(labels))], "")
	}
	// DAG pattern: edges only from smaller to larger index.
	for i := 0; i < nq*2; i++ {
		a, b := r.Intn(nq), r.Intn(nq)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		q.MustAddEdge(pattern.QNode(a), pattern.QNode(b))
	}
	gb := graph.NewBuilderDict(d)
	nv := 2 + r.Intn(40)
	for i := 0; i < nv; i++ {
		gb.AddNode(labels[r.Intn(len(labels))])
	}
	// The data graph may be cyclic — Theorem 3 needs only Q to be a DAG.
	for i := r.Intn(4 * nv); i > 0; i-- {
		gb.AddEdge(graph.NodeID(r.Intn(nv)), graph.NodeID(r.Intn(nv)))
	}
	g := gb.MustBuild()
	nf := 1 + r.Intn(5)
	assign := make([]int32, nv)
	for i := range assign {
		assign[i] = int32(r.Intn(nf))
	}
	fr, err := partition.Build(g, assign, nf)
	if err != nil {
		panic(err)
	}
	return q, g, fr
}

// Central property: dGPMd on DAG patterns equals centralized simulation
// and dGPM.
func TestQuickDGPMdEqualsCentralized(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, g, fr := randomDAGCase(r)
		want := simulation.HHK(q, g)
		got, _, err := Run(q, fr, false)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !want.Equal(got) {
			t.Logf("seed %d: got %v want %v", seed, got, want)
			return false
		}
		got2, _ := dgpm.Run(q, fr, dgpm.DefaultConfig())
		return want.Equal(got2)
	}
	n := 60
	if testing.Short() {
		n = 15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

// Message count bound: dGPMd sends at most one batch per (site pair,
// shippable rank) — the static send plan — regardless of how many
// variables are falsified.
func TestQuickMessagePlanBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, _, fr := randomDAGCase(r)
		ri, ok := newRankInfo(q)
		if !ok {
			return true
		}
		plan := 0
		for _, f := range fr.Frags {
			seen := map[[2]int]bool{}
			for _, v := range f.InNodes {
				for _, w := range f.InWatchers[v] {
					for _, rr := range ri.shipRanks(f.Labels[v]) {
						k := [2]int{w, rr}
						if !seen[k] {
							seen[k] = true
							plan++
						}
					}
				}
			}
		}
		_, stats, err := Run(q, fr, false)
		if err != nil {
			return false
		}
		if stats.DataMsgs > int64(plan) {
			t.Logf("seed %d: %d messages > plan %d", seed, stats.DataMsgs, plan)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRankInfo(t *testing.T) {
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A\nnode b B\nnode c C\nedge a b\nedge b c")
	ri, ok := newRankInfo(q)
	if !ok {
		t.Fatal("chain is a DAG")
	}
	if ri.maxRank != 2 {
		t.Fatalf("maxRank = %d", ri.maxRank)
	}
	// c: rank 0 -> never shipped. b: rank 1, has parent -> shipped.
	// a: rank 2, no parent -> not shipped.
	la, _ := d.Lookup("A")
	lb, _ := d.Lookup("B")
	lc, _ := d.Lookup("C")
	if len(ri.shipRanks(la)) != 0 {
		t.Fatalf("A ranks = %v", ri.shipRanks(la))
	}
	if got := ri.shipRanks(lb); len(got) != 1 || got[0] != 1 {
		t.Fatalf("B ranks = %v", got)
	}
	if len(ri.shipRanks(lc)) != 0 {
		t.Fatalf("C ranks = %v", ri.shipRanks(lc))
	}
}

func TestSingleNodePattern(t *testing.T) {
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A")
	b := graph.NewBuilderDict(d)
	b.AddNode("A")
	b.AddNode("B")
	g := b.MustBuild()
	fr, err := partition.Build(g, []int32{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Run(q, fr, false)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Ok() || len(got.Sets[0]) != 1 {
		t.Fatalf("got %v", got)
	}
	if stats.DataMsgs != 0 {
		t.Fatal("single-node pattern needs no messages")
	}
	_ = g
}
