package pattern

import (
	"strings"
	"testing"

	"dgs/internal/graph"
)

// fig1Query is the pattern of Fig. 1: YB with edges to F and YF; SP, F, YF
// form a cycle (SP→YF→F→SP per Example 6's equations: X(YF,yf1)=X(F,f2)
// follows query edge (YF,F); sp.rvec[SP] from edge (SP,YF); X(F,f2)=X(SP,sp1)
// from edge (F,SP)).
const fig1Query = `
node YB YB
node YF YF
node F  F
node SP SP
edge YB YF
edge YB F
edge SP YF
edge YF F
edge F  SP
`

func TestParseAndMeasures(t *testing.T) {
	d := graph.NewDict()
	p := MustParse(d, fig1Query)
	if p.NumNodes() != 4 || p.NumEdges() != 5 {
		t.Fatalf("|Vq|=%d |Eq|=%d", p.NumNodes(), p.NumEdges())
	}
	if p.Size() != 9 {
		t.Fatalf("Size=%d", p.Size())
	}
	if p.IsDAG() {
		t.Fatal("Fig-1 query has a cycle")
	}
	if p.MaxRank() != -1 {
		t.Fatal("cyclic pattern must have no ranks")
	}
	if p.LabelName(0) != "YB" {
		t.Fatalf("label of node 0 = %q", p.LabelName(0))
	}
	if p.NodeName(2) != "F" {
		t.Fatalf("name of node 2 = %q", p.NodeName(2))
	}
}

func TestParseErrors(t *testing.T) {
	d := graph.NewDict()
	bad := []string{
		"node a",             // missing label
		"edge a b",           // unknown nodes
		"node a A\nedge a b", // unknown target
		"zap a b",            // unknown directive
		"node a A\nnode a B", // duplicate name
		"",                   // empty pattern
	}
	for _, src := range bad {
		if _, err := Parse(d, src); err == nil {
			t.Fatalf("input %q: expected error", src)
		}
	}
}

func TestRanksChain(t *testing.T) {
	d := graph.NewDict()
	p := MustParse(d, `
node a A
node b B
node c C
edge a b
edge b c
`)
	r, ok := p.Ranks()
	if !ok {
		t.Fatal("chain is a DAG")
	}
	if r[0] != 2 || r[1] != 1 || r[2] != 0 {
		t.Fatalf("ranks = %v", r)
	}
	if p.MaxRank() != 2 {
		t.Fatalf("MaxRank = %d", p.MaxRank())
	}
	if p.Diameter() != 2 {
		t.Fatalf("Diameter = %d", p.Diameter())
	}
}

func TestRanksFig5(t *testing.T) {
	// Example 9: Q'' with r(FB)=0, r(YB2)=1, r(SP)=2, r(YF)=r(F)=3, r(YB1)=4.
	d := graph.NewDict()
	p := MustParse(d, `
node YB1 YB
node YF  YF
node F   F
node SP  SP
node YB2 YB
node FB  FB
edge YB1 YF
edge YB1 F
edge YF  SP
edge F   SP
edge SP  YB2
edge YB2 FB
`)
	r, ok := p.Ranks()
	if !ok {
		t.Fatal("Q'' is a DAG")
	}
	want := []int{4, 3, 3, 2, 1, 0}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("rank[%d] = %d, want %d (all=%v)", i, r[i], want[i], r)
		}
	}
	if p.MaxRank() != 4 {
		t.Fatalf("MaxRank = %d", p.MaxRank())
	}
}

func TestDiameterDisconnectedPiece(t *testing.T) {
	d := graph.NewDict()
	p := MustParse(d, "node a A\nnode b B\nedge a b")
	if p.Diameter() != 1 {
		t.Fatalf("Diameter = %d", p.Diameter())
	}
}

func TestStringRoundTrip(t *testing.T) {
	d := graph.NewDict()
	p := MustParse(d, fig1Query)
	p2, err := Parse(graph.NewDict(), p.String())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if p2.NumNodes() != p.NumNodes() || p2.NumEdges() != p.NumEdges() {
		t.Fatal("round trip changed shape")
	}
	for u := 0; u < p.NumNodes(); u++ {
		if p.LabelName(QNode(u)) != p2.LabelName(QNode(u)) {
			t.Fatal("round trip changed labels")
		}
	}
}

func TestAsGraphSharesStructure(t *testing.T) {
	d := graph.NewDict()
	p := MustParse(d, fig1Query)
	g := p.AsGraph()
	if g.NumNodes() != p.NumNodes() || g.NumEdges() != p.NumEdges() {
		t.Fatal("AsGraph shape mismatch")
	}
	if g.LabelName(3) != "SP" {
		t.Fatal("AsGraph labels mismatch")
	}
}

func TestDuplicateEdgeIgnored(t *testing.T) {
	d := graph.NewDict()
	p := New(d)
	a := p.AddNode("A", "")
	b := p.AddNode("B", "")
	p.MustAddEdge(a, b)
	p.MustAddEdge(a, b)
	if p.NumEdges() != 1 {
		t.Fatalf("|Eq| = %d", p.NumEdges())
	}
}

func TestAddEdgeOutOfRange(t *testing.T) {
	p := New(graph.NewDict())
	p.AddNode("A", "")
	if err := p.AddEdge(0, 5); err == nil || !strings.Contains(err.Error(), "missing node") {
		t.Fatalf("err = %v", err)
	}
}
