package pattern

import (
	"testing"

	"dgs/internal/graph"
)

func TestBinaryRoundTrip(t *testing.T) {
	dict := graph.NewDict()
	p := New(dict)
	a := p.AddNode("paper", "a")
	b := p.AddNode("author", "b")
	c := p.AddNode("paper", "c")
	p.MustAddEdge(a, b)
	p.MustAddEdge(b, c)
	p.MustAddEdge(c, a)

	q, err := DecodeBinary(EncodeBinary(p))
	if err != nil {
		t.Fatal(err)
	}
	if q.NumNodes() != p.NumNodes() || q.NumEdges() != p.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", q.NumNodes(), q.NumEdges(), p.NumNodes(), p.NumEdges())
	}
	for u := 0; u < p.NumNodes(); u++ {
		if q.Label(QNode(u)) != p.Label(QNode(u)) {
			t.Fatalf("node %d label: wire %d, orig %d — raw IDs must survive", u, q.Label(QNode(u)), p.Label(QNode(u)))
		}
		if len(q.Succ(QNode(u))) != len(p.Succ(QNode(u))) {
			t.Fatalf("node %d out-degree changed", u)
		}
	}
	// Pred must be reconstructed consistently (DecodeBinary builds both
	// adjacency directions).
	for u := 0; u < p.NumNodes(); u++ {
		if len(q.Pred(QNode(u))) != len(p.Pred(QNode(u))) {
			t.Fatalf("node %d in-degree changed", u)
		}
	}
	// The decoded pattern has no label names, by design — but must not
	// panic when printed.
	_ = q.String()
	if q.IsDAG() != p.IsDAG() {
		t.Fatal("cyclicity changed across the wire")
	}
}

func TestBinaryDecodeRejectsCorrupt(t *testing.T) {
	dict := graph.NewDict()
	p := New(dict)
	a := p.AddNode("x", "")
	b := p.AddNode("y", "")
	p.MustAddEdge(a, b)
	enc := EncodeBinary(p)
	for _, tc := range [][]byte{
		nil,
		enc[:1],
		enc[:len(enc)-1],
		append(append([]byte(nil), enc...), 0),
	} {
		if _, err := DecodeBinary(tc); err == nil {
			t.Fatalf("corrupt encoding of length %d accepted", len(tc))
		}
	}
	// An edge referencing a missing node must be rejected.
	bad := append([]byte(nil), enc...)
	bad[len(bad)-2] = 0xFF
	if _, err := DecodeBinary(bad); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}
