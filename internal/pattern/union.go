package pattern

// Disjoint pattern union: the planner's vehicle for multi-query
// sharing. K standing queries stacked into one pattern evaluate in one
// maintenance session — graph simulation decomposes over the blocks,
// because no query edge crosses block boundaries, so each block's slice
// of the union relation is exactly that pattern's own relation.

import "fmt"

// Union returns the disjoint union of the given patterns plus the block
// offset table: block k's query node u appears in the union as
// offs[k]+u, and offs[len(ps)] is the union's node count. All patterns
// must share one label dictionary (they do within a deployment); node
// names are dropped — the union is an internal evaluation artifact, not
// a user-facing pattern.
func Union(ps []*Pattern) (*Pattern, []int, error) {
	if len(ps) == 0 {
		return nil, nil, fmt.Errorf("pattern: union of zero patterns")
	}
	u := New(ps[0].dict)
	offs := make([]int, len(ps)+1)
	for k, p := range ps {
		if p.dict != u.dict {
			return nil, nil, fmt.Errorf("pattern: union across distinct dictionaries")
		}
		base := QNode(len(u.labels))
		offs[k] = int(base)
		for _, l := range p.labels {
			u.labels = append(u.labels, l)
			u.names = append(u.names, "")
		}
		for _, ss := range p.succ {
			row := make([]QNode, len(ss))
			for i, w := range ss {
				row[i] = w + base
			}
			u.succ = append(u.succ, row)
		}
		for _, pp := range p.pred {
			row := make([]QNode, len(pp))
			for i, w := range pp {
				row[i] = w + base
			}
			u.pred = append(u.pred, row)
		}
	}
	offs[len(ps)] = len(u.labels)
	return u, offs, nil
}
