package pattern

// Native fuzz target for the pattern DSL parser — the gateway's trust
// boundary: every /query body goes through Parse, so arbitrary text
// must produce a pattern or an error, never a panic. Accepted inputs
// must round-trip: String() renders in the Parse format, re-parsing it
// must succeed, reproduce the structure, and be a fixed point (the
// cache keys queries by this rendering, so canonicalization must be
// stable). Seed corpus lives in testdata/fuzz/FuzzParsePattern/.

import (
	"testing"

	"dgs/internal/graph"
)

func FuzzParsePattern(f *testing.F) {
	seeds := []string{
		"node a l0\nnode b l1\nedge a b\n",
		"node a l0\nnode b l1\nedge a b\nedge b a\n",
		"  node   x   lbl \n# comment\n\nedge x x\n",
		"node u1 l0\nnode u0 l1\nedge u1 u0\n", // names shadowing the u<i> fallback
		"node a l0\nedge a missing\n",
		"node a l0\nnode a l1\n", // duplicate
		"node a\n",               // arity
		"frob a b\n",             // unknown directive
		"",
		"edge a b\n",
		"node é ü\nedge é é\n", // non-ASCII identifiers
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(graph.NewDict(), src)
		if err != nil {
			return // rejected input; only panics are bugs here
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid pattern: %v", err)
		}
		rendered := p.String()
		p2, err := Parse(graph.NewDict(), rendered)
		if err != nil {
			t.Fatalf("re-parse of String() failed: %v\ninput: %q\nrendered: %q", err, src, rendered)
		}
		if got := p2.String(); got != rendered {
			t.Fatalf("String() is not a canonical fixed point:\nfirst:  %q\nsecond: %q", rendered, got)
		}
		if p2.NumNodes() != p.NumNodes() || p2.NumEdges() != p.NumEdges() {
			t.Fatalf("round trip changed size: (%d,%d) -> (%d,%d)",
				p.NumNodes(), p.NumEdges(), p2.NumNodes(), p2.NumEdges())
		}
		for u := QNode(0); int(u) < p.NumNodes(); u++ {
			if p.LabelName(u) != p2.LabelName(u) {
				t.Fatalf("node %d label changed: %q -> %q", u, p.LabelName(u), p2.LabelName(u))
			}
			if p.NodeName(u) != p2.NodeName(u) {
				t.Fatalf("node %d name changed: %q -> %q", u, p.NodeName(u), p2.NodeName(u))
			}
			a, b := sorted(p.Succ(u)), sorted(p2.Succ(u))
			if len(a) != len(b) {
				t.Fatalf("node %d out-degree changed: %d -> %d", u, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("node %d successors diverge: %v vs %v", u, a, b)
				}
			}
		}
	})
}

func sorted(s []QNode) []QNode {
	out := append([]QNode(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestParseStringRoundTrip pins the property on hand-built patterns,
// including the unnamed-node "u<i>" rendering fallback the generators
// rely on (workload patterns carry no names).
func TestParseStringRoundTrip(t *testing.T) {
	dict := graph.NewDict()
	p := New(dict)
	a := p.AddNode("l0", "") // unnamed: renders as u0
	b := p.AddNode("l1", "")
	c := p.AddNode("l0", "hub")
	p.MustAddEdge(a, b)
	p.MustAddEdge(b, a)
	p.MustAddEdge(c, a)
	p.MustAddEdge(c, b)

	rendered := p.String()
	p2, err := Parse(graph.NewDict(), rendered)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, rendered)
	}
	if p2.String() != rendered {
		t.Fatalf("not a fixed point:\n%s\nvs\n%s", rendered, p2.String())
	}
	if p2.NumNodes() != 3 || p2.NumEdges() != 4 {
		t.Fatalf("structure lost: %d nodes %d edges", p2.NumNodes(), p2.NumEdges())
	}
	if p2.NodeName(0) != "u0" || p2.NodeName(2) != "hub" {
		t.Fatalf("names lost: %q %q", p2.NodeName(0), p2.NodeName(2))
	}
}
