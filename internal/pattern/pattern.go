// Package pattern implements pattern queries Q = (Vq, Eq, fv) from §2.1 of
// the paper, together with the structural measures the algorithms need:
// cyclicity (dGPMd's DAG test), the diameter d, and the topological rank
// r(u) of §5.1 that schedules batched message passing.
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"dgs/internal/graph"
)

// QNode identifies a query node. Patterns are small, so uint16 suffices,
// but we use uint32 for symmetry with graph.NodeID.
type QNode = uint32

// Pattern is a directed, node-labeled pattern query.
type Pattern struct {
	labels []graph.Label
	names  []string // optional human-readable node names
	succ   [][]QNode
	pred   [][]QNode
	dict   *graph.Dict
}

// New returns an empty pattern interning labels into dict (share the dict
// with the data graph so labels compare by value).
func New(dict *graph.Dict) *Pattern {
	return &Pattern{dict: dict}
}

// AddNode appends a query node with label and optional name; returns its id.
func (p *Pattern) AddNode(label, name string) QNode {
	id := QNode(len(p.labels))
	p.labels = append(p.labels, p.dict.Intern(label))
	p.names = append(p.names, name)
	p.succ = append(p.succ, nil)
	p.pred = append(p.pred, nil)
	return id
}

// AddEdge adds the query edge (u, u2). Duplicates are ignored.
func (p *Pattern) AddEdge(u, u2 QNode) error {
	if int(u) >= len(p.labels) || int(u2) >= len(p.labels) {
		return fmt.Errorf("pattern: edge (%d,%d) references missing node", u, u2)
	}
	for _, w := range p.succ[u] {
		if w == u2 {
			return nil
		}
	}
	p.succ[u] = append(p.succ[u], u2)
	p.pred[u2] = append(p.pred[u2], u)
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (p *Pattern) MustAddEdge(u, u2 QNode) {
	if err := p.AddEdge(u, u2); err != nil {
		panic(err)
	}
}

// NumNodes reports |Vq|.
func (p *Pattern) NumNodes() int { return len(p.labels) }

// NumEdges reports |Eq|.
func (p *Pattern) NumEdges() int {
	n := 0
	for _, s := range p.succ {
		n += len(s)
	}
	return n
}

// Size reports |Q| = |Vq| + |Eq|.
func (p *Pattern) Size() int { return p.NumNodes() + p.NumEdges() }

// Label returns fv(u) as an interned label.
func (p *Pattern) Label(u QNode) graph.Label { return p.labels[u] }

// LabelName returns fv(u) as a string.
func (p *Pattern) LabelName(u QNode) string { return p.dict.Name(p.labels[u]) }

// Name returns the optional node name ("" if unset).
func (p *Pattern) Name(u QNode) string { return p.names[u] }

// NodeName returns a printable identifier: the name if set, else "u<i>".
func (p *Pattern) NodeName(u QNode) string {
	if p.names[u] != "" {
		return p.names[u]
	}
	return fmt.Sprintf("u%d", u)
}

// Succ returns the children of u (query edges u→u'). Do not modify.
func (p *Pattern) Succ(u QNode) []QNode { return p.succ[u] }

// Pred returns the parents of u. Do not modify.
func (p *Pattern) Pred(u QNode) []QNode { return p.pred[u] }

// Dict returns the shared label dictionary.
func (p *Pattern) Dict() *graph.Dict { return p.dict }

// AsGraph converts the pattern into a graph.Graph sharing the same node
// IDs, for reuse of Tarjan / topological machinery.
func (p *Pattern) AsGraph() *graph.Graph {
	b := graph.NewBuilderDict(p.dict)
	for u := range p.labels {
		b.AddNodeLabel(p.labels[u])
	}
	for u, ss := range p.succ {
		for _, w := range ss {
			b.AddEdge(graph.NodeID(u), graph.NodeID(w))
		}
	}
	return b.MustBuild()
}

// IsDAG reports whether Q has no directed cycle.
func (p *Pattern) IsDAG() bool { return graph.IsDAG(p.AsGraph()) }

// Ranks computes the topological rank r(u) of §5.1:
// r(u) = 0 if u has no child, else 1 + max over children. Defined only for
// DAG patterns; ok=false for cyclic Q.
func (p *Pattern) Ranks() (r []int, ok bool) {
	g := p.AsGraph()
	order, ok := graph.TopoOrder(g)
	if !ok {
		return nil, false
	}
	r = make([]int, p.NumNodes())
	// Process in reverse topological order so children are done first.
	for i := len(order) - 1; i >= 0; i-- {
		u := QNode(order[i])
		best := -1
		for _, c := range p.succ[u] {
			if r[c] > best {
				best = r[c]
			}
		}
		r[u] = best + 1
	}
	return r, true
}

// Diameter returns d, the length of the longest shortest path between any
// two nodes in the underlying undirected pattern, the quantity the paper's
// dGPMd bound is stated in (§5.1: "d is the diameter of Q"). For DAG
// patterns the maximum rank equals the longest directed path; the paper
// uses them interchangeably (r(u) ≤ d). We follow the rank-based measure
// for scheduling and expose the undirected diameter separately.
func (p *Pattern) Diameter() int {
	n := p.NumNodes()
	if n == 0 {
		return 0
	}
	// Undirected BFS from every node; patterns are tiny.
	adj := make([][]QNode, n)
	for u := 0; u < n; u++ {
		adj[u] = append(adj[u], p.succ[u]...)
		adj[u] = append(adj[u], p.pred[u]...)
	}
	best := 0
	dist := make([]int, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		q := []int{s}
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					if dist[w] > best {
						best = dist[w]
					}
					q = append(q, int(w))
				}
			}
		}
	}
	return best
}

// MaxRank returns the largest topological rank (the number of message
// waves dGPMd needs), or -1 for cyclic patterns.
func (p *Pattern) MaxRank() int {
	r, ok := p.Ranks()
	if !ok {
		return -1
	}
	best := 0
	for _, x := range r {
		if x > best {
			best = x
		}
	}
	return best
}

// Validate checks structural sanity: every node has a label, no dangling
// edges (impossible by construction, but kept for parser outputs).
func (p *Pattern) Validate() error {
	if p.NumNodes() == 0 {
		return fmt.Errorf("pattern: empty pattern")
	}
	for u := range p.labels {
		if p.labels[u] == graph.NoLabel {
			return fmt.Errorf("pattern: node %d has no label", u)
		}
	}
	return nil
}

// String renders the pattern in the Parse format.
func (p *Pattern) String() string {
	var sb strings.Builder
	for u := 0; u < p.NumNodes(); u++ {
		fmt.Fprintf(&sb, "node %s %s\n", p.NodeName(QNode(u)), p.LabelName(QNode(u)))
	}
	for u := 0; u < p.NumNodes(); u++ {
		ss := append([]QNode(nil), p.succ[u]...)
		sort.Slice(ss, func(i, j int) bool { return ss[i] < ss[j] })
		for _, w := range ss {
			fmt.Fprintf(&sb, "edge %s %s\n", p.NodeName(QNode(u)), p.NodeName(w))
		}
	}
	return sb.String()
}

// Parse reads a small DSL:
//
//	node <name> <label>
//	edge <name> <name>
//
// Names are arbitrary identifiers; labels are interned into dict.
func Parse(dict *graph.Dict, src string) (*Pattern, error) {
	p := New(dict)
	byName := map[string]QNode{}
	for lineno, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "node":
			if len(f) != 3 {
				return nil, fmt.Errorf("pattern: line %d: want 'node <name> <label>'", lineno+1)
			}
			if _, dup := byName[f[1]]; dup {
				return nil, fmt.Errorf("pattern: line %d: duplicate node %q", lineno+1, f[1])
			}
			byName[f[1]] = p.AddNode(f[2], f[1])
		case "edge":
			if len(f) != 3 {
				return nil, fmt.Errorf("pattern: line %d: want 'edge <from> <to>'", lineno+1)
			}
			u, ok := byName[f[1]]
			if !ok {
				return nil, fmt.Errorf("pattern: line %d: unknown node %q", lineno+1, f[1])
			}
			w, ok := byName[f[2]]
			if !ok {
				return nil, fmt.Errorf("pattern: line %d: unknown node %q", lineno+1, f[2])
			}
			if err := p.AddEdge(u, w); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("pattern: line %d: unknown directive %q", lineno+1, f[0])
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustParse is Parse that panics on error; for fixtures.
func MustParse(dict *graph.Dict, src string) *Pattern {
	p, err := Parse(dict, src)
	if err != nil {
		panic(err)
	}
	return p
}
