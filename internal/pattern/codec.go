package pattern

// Wire encoding of a pattern query, used by SessionSpec.Query to post a
// query to sites that may live in another OS process. Labels travel as
// their raw interned IDs — fragments were shipped with the same driver
// dictionary, so IDs compare by value on the receiving site; label
// *names* deliberately do not travel (the receiver never prints them,
// and Dict.Name degrades to "" for unknown labels).
//
// Layout (little-endian):
//
//	u16 numNodes, then numNodes × u16 label
//	u32 numEdges, then numEdges × (u16 from, u16 to)

import (
	"encoding/binary"
	"fmt"

	"dgs/internal/graph"
)

// EncodeBinary renders p in the wire form SessionSpec.Query carries.
func EncodeBinary(p *Pattern) []byte {
	n := p.NumNodes()
	out := make([]byte, 0, 2+2*n+4+4*p.NumEdges())
	out = binary.LittleEndian.AppendUint16(out, uint16(n))
	for _, l := range p.labels {
		out = binary.LittleEndian.AppendUint16(out, l)
	}
	var edges [][2]QNode
	for u, ss := range p.succ {
		for _, w := range ss {
			edges = append(edges, [2]QNode{QNode(u), w})
		}
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(edges)))
	for _, e := range edges {
		out = binary.LittleEndian.AppendUint16(out, uint16(e[0]))
		out = binary.LittleEndian.AppendUint16(out, uint16(e[1]))
	}
	return out
}

// DecodeBinary parses the EncodeBinary form. The pattern gets a private
// empty dictionary: labels keep their wire IDs (comparable against the
// co-shipped fragments) but have no names.
func DecodeBinary(b []byte) (*Pattern, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("pattern: truncated encoding")
	}
	n := int(binary.LittleEndian.Uint16(b))
	off := 2
	if len(b) < off+2*n+4 {
		return nil, fmt.Errorf("pattern: truncated node table")
	}
	p := &Pattern{dict: graph.NewDict()}
	p.labels = make([]graph.Label, n)
	p.names = make([]string, n)
	p.succ = make([][]QNode, n)
	p.pred = make([][]QNode, n)
	for i := range p.labels {
		p.labels[i] = binary.LittleEndian.Uint16(b[off:])
		off += 2
	}
	ne := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if len(b) != off+4*ne {
		return nil, fmt.Errorf("pattern: edge table size mismatch")
	}
	for i := 0; i < ne; i++ {
		u := QNode(binary.LittleEndian.Uint16(b[off:]))
		w := QNode(binary.LittleEndian.Uint16(b[off+2:]))
		off += 4
		if int(u) >= n || int(w) >= n {
			return nil, fmt.Errorf("pattern: edge (%d,%d) references missing node", u, w)
		}
		p.succ[u] = append(p.succ[u], w)
		p.pred[w] = append(p.pred[w], u)
	}
	return p, nil
}
