package serve

// Serving-layer semantics: cache hits/misses/invalidation, coalescing,
// and — the load-bearing one — gateway conformance: the HTTP path must
// return exactly the relation Deployment.Query computes, across the
// algorithm matrix.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dgs"
)

// world is a small deployed graph fronted by a Server.
type world struct {
	dict *dgs.Dict
	g    *dgs.Graph
	part *dgs.Partition
	dep  *dgs.Deployment
	srv  *Server
}

func newWorld(t *testing.T, opts Options, dopts ...dgs.DeployOption) *world {
	t.Helper()
	dict := dgs.NewDict()
	g := dgs.GenSynthetic(dict, 400, 1200, 7)
	part, err := dgs.PartitionRandom(g, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := dgs.Deploy(part, dopts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })
	return &world{dict: dict, g: g, part: part, dep: dep, srv: New(dep, dict, opts)}
}

func (w *world) pattern() string {
	return "node a l0\nnode b l1\nedge a b\nedge b a\n"
}

func TestCacheHitMissInvalidate(t *testing.T) {
	w := newWorld(t, Options{})
	ctx := context.Background()
	req := QueryRequest{Pattern: w.pattern()}

	r1, err := w.srv.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first query reported cached")
	}
	r2, err := w.srv.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("identical second query missed the cache")
	}
	if r2.Pairs != r1.Pairs || r2.OK != r1.OK || r2.Version != r1.Version {
		t.Fatalf("cached response diverged: %+v vs %+v", r2, r1)
	}

	// A pattern written in different formatting canonicalizes to the
	// same key (renamed equivalents share it too; see
	// TestCacheSharedAcrossRenamedPatterns).
	r3, err := w.srv.Query(ctx, QueryRequest{Pattern: "  node a l0\n\n# comment\nnode b l1\nedge a b\nedge b a"})
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Cached {
		t.Fatal("reformatted identical pattern missed the cache")
	}

	// NoCache bypasses without disturbing the entry.
	r4, err := w.srv.Query(ctx, QueryRequest{Pattern: w.pattern(), NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Cached {
		t.Fatal("NoCache query reported cached")
	}

	// An update bumps the version: the entry is stale, the next query
	// recomputes and re-caches at the new version.
	e := firstEdge(t, w.part.CurrentGraph())
	ar, err := w.srv.Apply(ctx, ApplyRequest{Ops: []ApplyOp{{Del: true, V: e[0], W: e[1]}}})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Version != r1.Version+1 {
		t.Fatalf("apply moved version to %d, want %d", ar.Version, r1.Version+1)
	}
	r5, err := w.srv.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if r5.Cached {
		t.Fatal("query after update served the pre-update entry")
	}
	if r5.Version != ar.Version {
		t.Fatalf("post-update result tagged %d, want %d", r5.Version, ar.Version)
	}
	r6, err := w.srv.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !r6.Cached {
		t.Fatal("re-cached entry missed")
	}

	c := w.srv.Counters()
	if c.Hits != 3 || c.Applies != 1 {
		t.Fatalf("counters: %+v", c)
	}
	if got := c.HitRate(); got <= 0 || got >= 1 {
		t.Fatalf("hit rate %v out of (0,1)", got)
	}
}

func TestCoalescing(t *testing.T) {
	// A sluggish emulated network keeps the leader in flight long enough
	// for followers to join deterministically (we poll InFlight).
	w := newWorld(t, Options{MaxInFlight: 4},
		dgs.WithNetwork(dgs.Network{Latency: 10 * time.Millisecond}))
	ctx := context.Background()
	req := QueryRequest{Pattern: w.pattern()}

	leaderDone := make(chan error, 1)
	go func() {
		_, err := w.srv.Query(ctx, req)
		leaderDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for w.srv.Counters().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never entered flight")
		}
		time.Sleep(time.Millisecond)
	}
	const followers = 3
	followerDone := make(chan *QueryResponse, followers)
	for i := 0; i < followers; i++ {
		go func() {
			resp, err := w.srv.Query(ctx, req)
			if err != nil {
				t.Error(err)
				followerDone <- nil
				return
			}
			followerDone <- resp
		}()
	}
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	coalesced := 0
	for i := 0; i < followers; i++ {
		resp := <-followerDone
		if resp == nil {
			t.Fatal("follower failed")
		}
		if resp.Coalesced {
			coalesced++
		} else if !resp.Cached {
			t.Fatal("follower neither coalesced nor cache-hit")
		}
	}
	if coalesced == 0 {
		t.Fatal("no follower coalesced onto the leader's flight")
	}
	if c := w.srv.Counters(); c.Coalesced != int64(coalesced) {
		t.Fatalf("coalesced counter %d, want %d", c.Coalesced, coalesced)
	}
}

// TestCacheSharedAcrossRenamedPatterns: the cache keys on the
// pattern's canonical form, so a request equivalent modulo node
// renaming (and declaration reordering) hits the entry its twin
// filled — and its match sets come back keyed by ITS node names,
// remapped through the canonical permutation.
func TestCacheSharedAcrossRenamedPatterns(t *testing.T) {
	w := newWorld(t, Options{})
	ctx := context.Background()

	r1, err := w.srv.Query(ctx, QueryRequest{Pattern: "node a l0\nnode b l1\nedge a b\nedge b a", IncludeMatches: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first query reported cached")
	}
	// Same structure, renamed and reordered: p plays b's role (label
	// l1), q plays a's (label l0).
	r2, err := w.srv.Query(ctx, QueryRequest{Pattern: "node p l1\nnode q l0\nedge p q\nedge q p", IncludeMatches: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("renamed-equivalent pattern missed the cache")
	}
	if r2.OK != r1.OK || r2.Pairs != r1.Pairs {
		t.Fatalf("equivalent patterns answered differently: %+v vs %+v", r2, r1)
	}
	if !equalIDs(r2.Matches["p"], r1.Matches["b"]) || !equalIDs(r2.Matches["q"], r1.Matches["a"]) {
		t.Fatal("cached result not remapped to the request's node names")
	}
	// The remapped sets agree with evaluating the renamed pattern
	// directly.
	q2, err := dgs.ParsePattern(w.dict, "node p l1\nnode q l0\nedge p q\nedge q p")
	if err != nil {
		t.Fatal(err)
	}
	want, err := w.dep.Query(ctx, q2)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < q2.NumNodes(); u++ {
		name := q2.NodeName(dgs.QNode(u))
		if !equalIDs(r2.Matches[name], want.Match.MatchesOf(dgs.QNode(u))) {
			t.Fatalf("node %s: cached-remapped set diverges from direct evaluation", name)
		}
	}
	// A structurally distinct pattern is still its own entry.
	r3, err := w.srv.Query(ctx, QueryRequest{Pattern: "node a l0\nnode b l1\nedge a b"})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Fatal("distinct pattern falsely shared a cache entry")
	}
	if c := w.srv.Counters(); c.Hits != 1 {
		t.Fatalf("hits = %d, want 1 (only the renamed equivalent)", c.Hits)
	}
}

func equalIDs(a, b []dgs.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestExplainRequest: Explain returns the plan without evaluating,
// caching or admitting anything, over both the library and HTTP
// surfaces.
func TestExplainRequest(t *testing.T) {
	w := newWorld(t, Options{})
	ctx := context.Background()

	resp, err := w.srv.Query(ctx, QueryRequest{Pattern: w.pattern(), Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Plan == nil {
		t.Fatal("explain response carries no plan")
	}
	if resp.Plan.Planner != w.dep.Planner() || resp.Plan.Planner == "" {
		t.Fatalf("plan names planner %q, deployment uses %q", resp.Plan.Planner, w.dep.Planner())
	}
	if resp.Plan.CanonicalKey == "" || len(resp.Plan.Nodes) != 2 || len(resp.Plan.Edges) != 2 {
		t.Fatalf("plan malformed: %+v", resp.Plan)
	}
	if resp.OK || resp.Pairs != 0 || resp.Cached {
		t.Fatalf("explain response carries evaluation fields: %+v", resp)
	}
	// Nothing was evaluated or cached: the next real query is a miss.
	r2, err := w.srv.Query(ctx, QueryRequest{Pattern: w.pattern()})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cached {
		t.Fatal("explain populated the cache")
	}
	// Absent label surfaces the Empty verdict.
	re, err := w.srv.Query(ctx, QueryRequest{Pattern: "node a zz_never\nnode b l0\nedge a b", Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if !re.Plan.Empty {
		t.Fatal("absent-label explain not marked Empty")
	}
	// Over HTTP.
	ts := httptest.NewServer(w.srv.Handler())
	defer ts.Close()
	var hr QueryResponse
	postJSON(t, ts.URL+"/query", QueryRequest{Pattern: w.pattern(), Explain: true}, &hr)
	if hr.Plan == nil || hr.Plan.CanonicalKey != resp.Plan.CanonicalKey {
		t.Fatalf("HTTP explain diverges from direct: %+v", hr.Plan)
	}
	// Malformed patterns still classify as the client's fault.
	var reqErr *RequestError
	if _, err := w.srv.Query(ctx, QueryRequest{Pattern: "frob", Explain: true}); err == nil || !asRequestError(err, &reqErr) {
		t.Fatalf("malformed explain: %v, want RequestError", err)
	}
}

// TestHTTPConformance: for every algorithm, the relation served over
// HTTP equals Deployment.Query's, pair for pair.
func TestHTTPConformance(t *testing.T) {
	type tc struct {
		algo    string
		httpReq QueryRequest
		qopts   []dgs.QueryOption
		mk      func(t *testing.T) (*dgs.Dict, *dgs.Graph, *dgs.Partition, *dgs.Pattern)
	}
	cyclic := func(t *testing.T) (*dgs.Dict, *dgs.Graph, *dgs.Partition, *dgs.Pattern) {
		dict := dgs.NewDict()
		g := dgs.GenSynthetic(dict, 400, 1200, 11)
		part, err := dgs.PartitionRandom(g, 4, 11)
		if err != nil {
			t.Fatal(err)
		}
		return dict, g, part, dgs.GenCyclicPatternOver(dict, 4, 6, 4, 12)
	}
	dag := func(t *testing.T) (*dgs.Dict, *dgs.Graph, *dgs.Partition, *dgs.Pattern) {
		dict := dgs.NewDict()
		g := dgs.GenCitation(dict, 400, 900, 13)
		part, err := dgs.PartitionRandom(g, 4, 13)
		if err != nil {
			t.Fatal(err)
		}
		q, err := dgs.GenDAGPattern(dict, 5, 7, 3, 14)
		if err != nil {
			t.Fatal(err)
		}
		return dict, g, part, q
	}
	tree := func(t *testing.T) (*dgs.Dict, *dgs.Graph, *dgs.Partition, *dgs.Pattern) {
		dict := dgs.NewDict()
		g := dgs.GenTree(dict, 400, 15)
		part, err := dgs.PartitionTree(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		return dict, g, part, dgs.GenTreePattern(dict, 4, 16)
	}
	cases := []tc{
		{"dgpm", QueryRequest{Algo: "dgpm"}, []dgs.QueryOption{dgs.WithAlgorithm(dgs.AlgoDGPM)}, cyclic},
		{"dgpmnopt", QueryRequest{Algo: "dgpmnopt"}, []dgs.QueryOption{dgs.WithAlgorithm(dgs.AlgoDGPMNoOpt)}, cyclic},
		{"match", QueryRequest{Algo: "match"}, []dgs.QueryOption{dgs.WithAlgorithm(dgs.AlgoMatch)}, cyclic},
		{"dishhk", QueryRequest{Algo: "dishhk"}, []dgs.QueryOption{dgs.WithAlgorithm(dgs.AlgoDisHHK)}, cyclic},
		{"dmes", QueryRequest{Algo: "dmes"}, []dgs.QueryOption{dgs.WithAlgorithm(dgs.AlgoDMes)}, cyclic},
		{"dgpmd", QueryRequest{Algo: "dgpmd", GraphIsDAG: true},
			[]dgs.QueryOption{dgs.WithAlgorithm(dgs.AlgoDGPMd), dgs.WithGraphIsDAG()}, dag},
		{"dgpmt", QueryRequest{Algo: "dgpmt"}, []dgs.QueryOption{dgs.WithAlgorithm(dgs.AlgoDGPMt)}, tree},
	}
	for _, c := range cases {
		t.Run(c.algo, func(t *testing.T) {
			dict, _, part, q := c.mk(t)
			dep, err := dgs.Deploy(part)
			if err != nil {
				t.Fatal(err)
			}
			defer dep.Close()
			srv := New(dep, dict, Options{})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			want, err := dep.Query(context.Background(), q, c.qopts...)
			if err != nil {
				t.Fatal(err)
			}
			req := c.httpReq
			req.Pattern = q.String()
			req.IncludeMatches = true
			var resp QueryResponse
			postJSON(t, ts.URL+"/query", req, &resp)

			if resp.OK != want.Match.Ok() || resp.Pairs != want.Match.NumPairs() {
				t.Fatalf("HTTP ok=%v pairs=%d, direct ok=%v pairs=%d",
					resp.OK, resp.Pairs, want.Match.Ok(), want.Match.NumPairs())
			}
			for u := 0; u < q.NumNodes(); u++ {
				name := q.NodeName(dgs.QNode(u))
				got := resp.Matches[name]
				ref := want.Match.MatchesOf(dgs.QNode(u))
				if len(got) != len(ref) {
					t.Fatalf("node %s: HTTP %d matches, direct %d", name, len(got), len(ref))
				}
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("node %s: match sets diverge at %d: %d vs %d", name, i, got[i], ref[i])
					}
				}
			}
		})
	}
}

func TestHTTPEndpoints(t *testing.T) {
	w := newWorld(t, Options{})
	ts := httptest.NewServer(w.srv.Handler())
	defer ts.Close()

	// healthz
	var health struct {
		OK           bool   `json:"ok"`
		Build        string `json:"build"`
		Sites        int    `json:"sites"`
		GraphVersion uint64 `json:"graph_version"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if !health.OK || health.Build == "" || health.Sites != 4 {
		t.Fatalf("healthz: %+v", health)
	}

	// query → stats reflects it
	var qr QueryResponse
	postJSON(t, ts.URL+"/query", QueryRequest{Pattern: w.pattern()}, &qr)
	var stats struct {
		Queries int64   `json:"queries"`
		HitRate float64 `json:"hit_rate"`
		Sites   int     `json:"sites"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Queries != 1 || stats.Sites != 4 {
		t.Fatalf("stats: %+v", stats)
	}

	// error mapping: malformed pattern → 400 with code bad_request
	resp, err := http.Post(ts.URL+"/query", "application/json",
		bytes.NewReader([]byte(`{"pattern":"frob x"}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad pattern: status %d, want 400", resp.StatusCode)
	}
	var eb struct {
		Code string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != "bad_request" {
		t.Fatalf("bad pattern: code %q", eb.Code)
	}

	// apply with an absent edge → 400
	resp2, err := http.Post(ts.URL+"/apply", "application/json",
		bytes.NewReader([]byte(`{"ops":[{"del":true,"v":0,"w":0}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if g := w.part.CurrentGraph(); !contains(g.Succ(0), 0) && resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad apply: status %d, want 400", resp2.StatusCode)
	}

	// GET on a POST endpoint → 405
	resp3, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: status %d, want 405", resp3.StatusCode)
	}
}

func contains(s []dgs.NodeID, v dgs.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// postJSON posts body and decodes the 200 response into out.
func postJSON(t *testing.T, url string, body, out any) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		t.Fatalf("POST %s: status %d (%+v)", url, resp.StatusCode, eb)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// firstEdge returns one existing edge of g.
func firstEdge(t *testing.T, g *dgs.Graph) [2]dgs.NodeID {
	t.Helper()
	for v := 0; v < g.NumNodes(); v++ {
		if ss := g.Succ(dgs.NodeID(v)); len(ss) > 0 {
			return [2]dgs.NodeID{dgs.NodeID(v), ss[0]}
		}
	}
	t.Fatal("graph has no edges")
	return [2]dgs.NodeID{}
}

// TestCacheLRU exercises the eviction policy directly.
func TestCacheLRU(t *testing.T) {
	c := newCache(2)
	mk := func(v uint64) *dgs.Result { return &dgs.Result{Version: v} }
	c.put("a", mk(0))
	c.put("b", mk(0))
	if _, _, ok := c.get("a", 0); !ok {
		t.Fatal("a evicted too early")
	}
	c.put("c", mk(0)) // evicts b (a was just touched)
	if _, _, ok := c.get("b", 0); ok {
		t.Fatal("b survived past capacity")
	}
	if _, _, ok := c.get("a", 0); !ok {
		t.Fatal("a evicted despite recency")
	}
	// Stale version is a miss and evicts.
	if _, _, ok := c.get("a", 1); ok {
		t.Fatal("stale entry hit")
	}
	if c.len() != 1 {
		t.Fatalf("len %d after stale eviction, want 1", c.len())
	}
	// A newer result replaces; an older one does not regress the entry.
	c.put("c", mk(5))
	c.put("c", mk(3))
	if _, _, ok := c.get("c", 5); !ok {
		t.Fatal("older put regressed the entry")
	}
}

// TestConcurrentNovelLabels hammers the parse path with patterns whose
// labels have never been interned: dictionary writes (interning) must
// not race with the canonical-key rendering of other requests. Run
// under -race, this is the regression test for key construction
// escaping the parse lock.
func TestConcurrentNovelLabels(t *testing.T) {
	w := newWorld(t, Options{MaxInFlight: 4})
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				p := fmt.Sprintf("node a novel_%d_%d\nnode b l1\nedge a b\n", i, j)
				if _, err := w.srv.Query(ctx, QueryRequest{Pattern: p}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestClosedDeploymentIsInternal(t *testing.T) {
	w := newWorld(t, Options{})
	w.dep.Close()
	_, err := w.srv.Apply(context.Background(), ApplyRequest{Ops: []ApplyOp{{Del: true, V: 0, W: 1}}})
	if err == nil {
		t.Fatal("apply on closed deployment succeeded")
	}
	var reqErr *RequestError
	if asRequestError(err, &reqErr) {
		t.Fatalf("closed deployment classified as the client's fault: %v", err)
	}
}

func TestBadRequests(t *testing.T) {
	w := newWorld(t, Options{})
	ctx := context.Background()
	if _, err := w.srv.Query(ctx, QueryRequest{}); err == nil {
		t.Fatal("empty pattern accepted")
	}
	if _, err := w.srv.Query(ctx, QueryRequest{Pattern: w.pattern(), Algo: "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := w.srv.Apply(ctx, ApplyRequest{}); err == nil {
		t.Fatal("empty apply accepted")
	}
	var reqErr *RequestError
	_, err := w.srv.Query(ctx, QueryRequest{Pattern: "node"})
	if err == nil || !asRequestError(err, &reqErr) {
		t.Fatalf("truncated pattern: %v, want RequestError", err)
	}
}

func asRequestError(err error, target **RequestError) bool {
	re, ok := err.(*RequestError)
	if ok {
		*target = re
	}
	return ok
}
