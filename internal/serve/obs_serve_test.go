package serve

// Observability conformance for the gateway: the /stats JSON shape is
// pinned (a golden key set — external dashboards parse these names),
// the /metrics exposition must agree with the /stats counters it
// mirrors, and a trace:true request returns a span tree whose totals
// are the response's own stats, decomposed.

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestStatsJSONGolden pins the /stats field names. Renaming or
// dropping a key is a breaking API change; this test is the tripwire.
func TestStatsJSONGolden(t *testing.T) {
	w := newWorld(t, Options{})
	if _, err := w.srv.Query(context.Background(), QueryRequest{Pattern: w.pattern()}); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	w.srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /stats: %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"applies", "cache_entries", "cache_size", "coalesced", "deadline",
		"errors", "failovers", "fragments", "graph_version", "hit_rate",
		"hits", "in_flight", "max_in_flight", "max_queue", "misses",
		"partition_strategy", "queries", "queue_depth", "rejected",
		"remote", "sites", "uptime_ms",
	}
	got := make([]string, 0, len(body))
	for k := range body {
		got = append(got, k)
	}
	sort.Strings(got)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("/stats keys changed:\n got %v\nwant %v", got, want)
	}
}

// scrape parses a Prometheus text exposition into name -> value for
// the plain (non-histogram-series) sample lines.
func scrape(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed exposition line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		out[name] = f
	}
	return out
}

// TestMetricsAgreeWithStats runs traffic that touches every counter
// path reachable in-process, then checks GET /metrics against the
// Counters snapshot — same atomics, so exact equality is required —
// and that the merged deployment registry (dgs_failovers_total and
// friends) is on the same page.
func TestMetricsAgreeWithStats(t *testing.T) {
	w := newWorld(t, Options{})
	ctx := context.Background()
	for i := 0; i < 3; i++ { // 1 miss + 2 hits
		if _, err := w.srv.Query(ctx, QueryRequest{Pattern: w.pattern()}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.srv.Query(ctx, QueryRequest{Pattern: "not a pattern"}); err == nil {
		t.Fatal("malformed pattern accepted")
	}

	rec := httptest.NewRecorder()
	w.srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	vals := scrape(t, rec.Body.String())
	c := w.srv.Counters()
	for name, want := range map[string]int64{
		"dgs_gw_queries_total":      c.Queries,
		"dgs_gw_cache_hits_total":   c.Hits,
		"dgs_gw_cache_misses_total": c.Misses,
		"dgs_gw_errors_total":       c.Errors,
		"dgs_gw_cache_entries":      int64(c.CacheEntries),
	} {
		got, ok := vals[name]
		if !ok {
			t.Fatalf("metric %s missing from exposition", name)
		}
		if int64(got) != want {
			t.Fatalf("%s = %v, /stats says %d", name, got, want)
		}
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", c.Hits, c.Misses)
	}
	// The deployment registry is merged into the same page.
	for _, name := range []string{"dgs_failovers_total", "dgs_queries_total", "dgs_graph_version"} {
		if _, ok := vals[name]; !ok {
			t.Fatalf("deployment metric %s missing from gateway exposition", name)
		}
	}
	if got := vals["dgs_failovers_total"]; int64(got) != w.dep.Failovers() {
		t.Fatalf("dgs_failovers_total = %v, deployment says %d", got, w.dep.Failovers())
	}
}

// TestTraceRequest exercises the trace:true request path end to end
// in-process: the response carries a complete span tree, the traced
// query bypasses the cache in both directions, and cached responses
// never carry a trace.
func TestTraceRequest(t *testing.T) {
	w := newWorld(t, Options{})
	ctx := context.Background()

	r1, err := w.srv.Query(ctx, QueryRequest{Pattern: w.pattern(), Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached || r1.Coalesced {
		t.Fatalf("traced query reported cached=%v coalesced=%v", r1.Cached, r1.Coalesced)
	}
	if r1.Trace == nil {
		t.Fatal("trace:true response has no trace")
	}
	if !r1.Trace.Complete {
		t.Fatal("in-process trace incomplete")
	}
	if r1.Trace.TraceID == 0 {
		t.Fatal("trace ID is zero")
	}
	_, msgsIn, _, _, _, rounds := r1.Trace.Totals()
	if msgsIn == 0 && rounds == 0 {
		t.Fatal("trace recorded no activity at all")
	}
	if rounds != r1.Stats.Rounds {
		t.Fatalf("trace rounds %d != stats rounds %d", rounds, r1.Stats.Rounds)
	}

	// The traced evaluation must not have populated the cache...
	r2, err := w.srv.Query(ctx, QueryRequest{Pattern: w.pattern()})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cached {
		t.Fatal("untraced query hit an entry only a traced run could have written")
	}
	if r2.Trace != nil {
		t.Fatal("untraced response carries a trace")
	}
	// ...and a traced request must not read it either.
	r3, err := w.srv.Query(ctx, QueryRequest{Pattern: w.pattern(), Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Fatal("traced query served from cache")
	}
	if r3.Trace == nil || r3.Trace.TraceID == r1.Trace.TraceID {
		t.Fatalf("second traced run: trace %+v", r3.Trace)
	}
	if r3.Pairs != r1.Pairs || r3.OK != r1.OK {
		t.Fatalf("traced runs disagree: %d/%v vs %d/%v", r3.Pairs, r3.OK, r1.Pairs, r1.OK)
	}

	// The JSON rendering round-trips the span tree.
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(r1); err != nil {
		t.Fatal(err)
	}
	var back QueryResponse
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace == nil || back.Trace.TraceID != r1.Trace.TraceID {
		t.Fatalf("trace lost in JSON round-trip: %+v", back.Trace)
	}
}

// TestSlowQueryLog sets a zero-distance threshold so every query is
// slow, and checks the structured log line and counter.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	w := newWorld(t, Options{SlowQuery: time.Nanosecond, Logger: logger})
	if _, err := w.srv.Query(context.Background(), QueryRequest{Pattern: w.pattern()}); err != nil {
		t.Fatal(err)
	}
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("slow-query log %q: %v", buf.String(), err)
	}
	if line["msg"] != "slow query" {
		t.Fatalf("log msg %q", line["msg"])
	}
	for _, k := range []string{"elapsed_ms", "algo", "graph_version"} {
		if _, ok := line[k]; !ok {
			t.Fatalf("slow-query log missing %q: %v", k, line)
		}
	}
	vals := scrapeRegistry(t, w)
	if vals["dgs_gw_slow_queries_total"] != 1 {
		t.Fatalf("dgs_gw_slow_queries_total = %v, want 1", vals["dgs_gw_slow_queries_total"])
	}
	if vals["dgs_gw_query_seconds_count"] != 1 {
		t.Fatalf("dgs_gw_query_seconds_count = %v, want 1", vals["dgs_gw_query_seconds_count"])
	}
}

func scrapeRegistry(t *testing.T, w *world) map[string]float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	w.srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	return scrape(t, rec.Body.String())
}
