package serve

// The result cache and its in-flight coalescing. Entries are keyed by
// the canonical query key (pattern.String() ordering + evaluation
// config) and tagged with the graph version their result was computed
// at; a lookup only hits when that tag equals the deployment's current
// version, so every Apply that changes the graph implicitly invalidates
// the whole cache without any eviction sweep. Concurrent identical
// misses coalesce: one leader runs the distributed session, followers
// wait for its result, so N simultaneous identical queries cost one
// session and one admission slot.

import (
	"container/list"
	"sync"
	"time"

	"dgs"
)

// entry is one cached result.
type entry struct {
	key     string
	res     *dgs.Result // immutable once stored
	version uint64      // graph version the result was computed at
	created time.Time   // when the result was stored (hit-age metric)
	elem    *list.Element
}

// cache is a mutex-guarded LRU of version-tagged results.
type cache struct {
	mu  sync.Mutex
	max int
	lru list.List // front = most recent; values are *entry
	m   map[string]*entry
}

func newCache(max int) *cache {
	return &cache{max: max, m: make(map[string]*entry)}
}

// get returns the cached result for key if it was computed at graph
// version now, along with the entry's age (time since it was stored).
// An older tag is a miss and evicts the entry — versions are monotone,
// so it can never hit again. A NEWER tag (the caller read the version
// just before a racing Apply and a fresher query re-filled the entry)
// is a plain miss: the entry stays, it is what the next caller wants.
func (c *cache) get(key string, now uint64) (*dgs.Result, time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return nil, 0, false
	}
	if e.version < now {
		c.lru.Remove(e.elem)
		delete(c.m, key)
		return nil, 0, false
	}
	if e.version > now {
		return nil, 0, false
	}
	c.lru.MoveToFront(e.elem)
	return e.res, time.Since(e.created), true
}

// put stores res, tagged with the version it carries, evicting the
// least-recently-used entry beyond capacity. An existing entry for the
// key is replaced only by a result at least as new.
func (c *cache) put(key string, res *dgs.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		if res.Version >= e.version {
			e.res, e.version, e.created = res, res.Version, time.Now()
			c.lru.MoveToFront(e.elem)
		}
		return
	}
	e := &entry{key: key, res: res, version: res.Version, created: time.Now()}
	e.elem = c.lru.PushFront(e)
	c.m[key] = e
	for len(c.m) > c.max {
		back := c.lru.Back()
		old := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.m, old.key)
	}
}

// len reports the number of cached entries.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// flight is one in-progress evaluation other callers can join.
type flight struct {
	done chan struct{} // closed when res/err are set
	res  *dgs.Result
	err  error
}

// flightGroup coalesces concurrent evaluations of the same key. Flights
// are keyed by (query key, graph version): arrivals after an Apply start
// a fresh flight instead of joining one that is computing against the
// previous graph.
type flightGroup struct {
	mu sync.Mutex
	m  map[flightKey]*flight
}

type flightKey struct {
	key     string
	version uint64
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[flightKey]*flight)}
}

// join returns the in-progress flight for k, or registers a new one the
// caller must lead (run the query, then settle it).
func (g *flightGroup) join(k flightKey) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[k]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.m[k] = f
	return f, true
}

// settle publishes the leader's outcome and wakes every follower.
func (g *flightGroup) settle(k flightKey, f *flight, res *dgs.Result, err error) {
	g.mu.Lock()
	delete(g.m, k)
	g.mu.Unlock()
	f.res, f.err = res, err
	close(f.done)
}
