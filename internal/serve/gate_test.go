package serve

// Admission-control semantics: concurrency is bounded, the waiting
// queue is bounded, and beyond both the gateway sheds immediately —
// overload produces fast explicit rejections, not unbounded latency.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dgs"
)

func TestGateUnit(t *testing.T) {
	g := newGate(2, 1)
	ctx := context.Background()
	if err := g.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if g.inFlight() != 2 {
		t.Fatalf("inFlight %d, want 2", g.inFlight())
	}

	// Third acquire queues; poll until it is visibly waiting.
	queued := make(chan error, 1)
	go func() { queued <- g.acquire(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for g.queueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Fourth is beyond the queue bound: shed immediately.
	start := time.Now()
	if err := g.acquire(ctx); !errors.Is(err, ErrOverload) {
		t.Fatalf("over-queue acquire: %v, want ErrOverload", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("overload rejection took %v — not immediate", d)
	}

	// With the queue still occupied, another arrival sheds too.
	if err := g.acquire(ctx); !errors.Is(err, ErrOverload) {
		t.Fatalf("second over-queue acquire: %v, want ErrOverload", err)
	}

	// Releasing a slot admits the queued waiter.
	g.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	g.release()
	g.release()
	if g.inFlight() != 0 || g.queueDepth() != 0 {
		t.Fatalf("gate not drained: inFlight=%d queue=%d", g.inFlight(), g.queueDepth())
	}
}

func TestGateQueuedDeadline(t *testing.T) {
	g := newGate(1, 4)
	ctx := context.Background()
	if err := g.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	dctx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if err := g.acquire(dctx); err != context.DeadlineExceeded {
		t.Fatalf("queued waiter past deadline: %v, want DeadlineExceeded", err)
	}
	g.release()
}

// TestOverloadSheds drives the whole server past its capacity: with one
// execution slot and a one-deep queue, a burst of slow queries must
// produce explicit ErrOverload rejections — quickly — while admitted
// queries still complete correctly.
func TestOverloadSheds(t *testing.T) {
	w := newWorld(t, Options{MaxInFlight: 1, MaxQueue: 1},
		dgs.WithNetwork(dgs.Network{Latency: 5 * time.Millisecond}))
	ctx := context.Background()

	const burst = 8
	var (
		wg         sync.WaitGroup
		rejected   int64
		served     int64
		slowestRej int64 // ns
	)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct patterns with NoCache: no coalescing, every query
			// wants its own slot.
			req := QueryRequest{
				Pattern: "node a l0\nnode b l1\nedge a b\n",
				NoCache: true,
			}
			start := time.Now()
			_, err := w.srv.Query(ctx, req)
			switch {
			case err == nil:
				atomic.AddInt64(&served, 1)
			case errors.Is(err, ErrOverload):
				atomic.AddInt64(&rejected, 1)
				if d := int64(time.Since(start)); d > atomic.LoadInt64(&slowestRej) {
					atomic.StoreInt64(&slowestRej, d)
				}
			default:
				t.Errorf("query %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	if rejected == 0 {
		t.Fatal("burst past capacity produced no overload rejections")
	}
	if served < 1 {
		t.Fatal("no query served at all under overload")
	}
	if served+rejected != burst {
		t.Fatalf("served %d + rejected %d != %d", served, rejected, burst)
	}
	// Sheds must be immediate — far under one service time (which the
	// emulated latency stretches to tens of ms).
	if d := time.Duration(slowestRej); d > 2*time.Second {
		t.Fatalf("slowest rejection took %v — shedding is not bounding latency", d)
	}
	c := w.srv.Counters()
	if c.Rejected != rejected {
		t.Fatalf("Rejected counter %d, want %d", c.Rejected, rejected)
	}
}
