package serve

// Gateway behavior across site loss: a query that dies because a
// daemon was lost is a retryable 503 ("site_lost", Retry-After set) —
// never a 500 and never a 400 — and /stats exposes the deployment's
// failover count.

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"dgs"
	"dgs/internal/transport/tcpnet"
)

// severableListener records accepted connections so the test can cut
// them, simulating a daemon crash under the gateway.
type severableListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *severableListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *severableListener) severAll() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
}

func postRec(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b)))
	return rec
}

func TestGatewaySiteLostIs503(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sev := &severableListener{Listener: lis}
	srv := &tcpnet.Server{}
	go srv.Serve(sev)
	t.Cleanup(func() { lis.Close() })

	w := newWorld(t, Options{}, dgs.WithRemoteSites(lis.Addr().String()))
	h := w.srv.Handler()

	// Healthy baseline.
	if rec := postRec(t, h, "/query", QueryRequest{Pattern: w.pattern()}); rec.Code != http.StatusOK {
		t.Fatalf("healthy query: %d %s", rec.Code, rec.Body)
	}

	sev.severAll() // the daemon crashes

	// A fresh pattern (no cache hit) must surface the loss as a
	// retryable 503 with the stable site_lost code — not 500, not 400.
	rec := postRec(t, h, "/query", QueryRequest{Pattern: "node a l0\nnode b l1\nnode c l0\nedge a b\nedge b c\nedge c a\n"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("query after daemon loss: status %d, want 503; body %s", rec.Code, rec.Body)
	}
	var eb struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != "site_lost" {
		t.Fatalf("error code = %q, want site_lost; body %s", eb.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("site_lost response must carry Retry-After")
	}

	// Apply is classified server-side too (the old bug wrapped it as a
	// closed deployment; a misclassification here would be a 400).
	arec := postRec(t, h, "/apply", ApplyRequest{Ops: []ApplyOp{{Del: true, V: 0, W: w.g.Succ(0)[0]}}})
	if arec.Code != http.StatusServiceUnavailable {
		t.Fatalf("apply after daemon loss: status %d, want 503; body %s", arec.Code, arec.Body)
	}

	// /stats reports the failover counter (zero here: no spare, no
	// recovery — the field itself is part of the contract).
	srec := httptest.NewRecorder()
	h.ServeHTTP(srec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if srec.Code != http.StatusOK {
		t.Fatalf("/stats: %d", srec.Code)
	}
	var sb map[string]any
	if err := json.Unmarshal(srec.Body.Bytes(), &sb); err != nil {
		t.Fatal(err)
	}
	if _, ok := sb["failovers"]; !ok {
		t.Fatalf("/stats missing failovers field: %s", srec.Body)
	}
}
