package serve

// The HTTP/JSON face of the serving subsystem — the four endpoints of
// docs/HTTP.md. Handlers translate between the wire shapes and the
// Server core and map error kinds onto status codes: malformed requests
// are 400, overload sheds and site-lost failovers are 503 (with
// Retry-After — both clear on their own), per-query deadline expiries
// are 504, evaluation failures 500.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"dgs"
	"dgs/internal/buildinfo"
	"dgs/internal/obs"
)

// maxBodyBytes bounds request bodies; patterns and update batches are
// small, so anything bigger is a client error.
const maxBodyBytes = 8 << 20

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
	// Code is a stable machine-readable kind: bad_request, overload,
	// site_lost, deadline, canceled, internal.
	Code string `json:"code"`
}

// Handler returns the gateway's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/apply", s.handleApply)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	// One exposition page for the whole gateway process: the serving
	// counters (dgs_gw_*) merged with the fronted deployment's driver
	// and transport metrics (dgs_*, dgs_net_*).
	mux.Handle("/metrics", obs.Handler(s.reg, s.dep.Metrics()))
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps an error onto its status code and JSON envelope.
func writeError(w http.ResponseWriter, err error) {
	var reqErr *RequestError
	switch {
	case errors.As(err, &reqErr):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Code: "bad_request"})
	case errors.Is(err, ErrOverload):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error(), Code: "overload"})
	case errors.Is(err, dgs.ErrSiteLost):
		// A site died mid-query; the deployment recovers (failover) and
		// the same request then succeeds — retryable, not a 500.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error(), Code: "site_lost"})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: err.Error(), Code: "deadline"})
	case errors.Is(err, context.Canceled):
		// The client went away; the status is moot but keep the envelope
		// consistent for proxies that still read it.
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Code: "canceled"})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error(), Code: "internal"})
	}
}

// decodeBody reads one JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("body: %v", err)
	}
	return nil
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "use " + method, Code: "bad_request"})
		return false
	}
	return true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req QueryRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.Query(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req ApplyRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.Apply(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// statsBody is the /stats payload: the serving counters plus the
// deployment they front.
type statsBody struct {
	Counters
	HitRate     float64 `json:"hit_rate"`
	Sites       int     `json:"sites"`
	Remote      bool    `json:"remote"`
	Strategy    string  `json:"partition_strategy"`
	Fragments   int     `json:"fragments"`
	MaxInFlight int     `json:"max_in_flight"`
	MaxQueue    int     `json:"max_queue"`
	CacheSize   int     `json:"cache_size"`
	Failovers   int64   `json:"failovers"`
	UptimeMS    int64   `json:"uptime_ms"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	c := s.Counters()
	part := s.dep.Partition()
	writeJSON(w, http.StatusOK, statsBody{
		Counters:    c,
		HitRate:     c.HitRate(),
		Sites:       s.dep.NumSites(),
		Remote:      s.dep.Remote(),
		Strategy:    part.Strategy(),
		Fragments:   part.NumFragments(),
		MaxInFlight: s.opts.MaxInFlight,
		MaxQueue:    s.opts.MaxQueue,
		CacheSize:   s.opts.CacheSize,
		Failovers:   s.dep.Failovers(),
		UptimeMS:    time.Since(s.start).Milliseconds(),
	})
}

// healthBody is the /healthz payload.
type healthBody struct {
	OK           bool   `json:"ok"`
	Build        string `json:"build"`
	Sites        int    `json:"sites"`
	Remote       bool   `json:"remote"`
	GraphVersion uint64 `json:"graph_version"`
	UptimeMS     int64  `json:"uptime_ms"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, healthBody{
		OK:           true,
		Build:        buildinfo.Version(),
		Sites:        s.dep.NumSites(),
		Remote:       s.dep.Remote(),
		GraphVersion: s.dep.Version(),
		UptimeMS:     time.Since(s.start).Milliseconds(),
	})
}
