// Package serve is the query-serving subsystem: it fronts a
// dgs.Deployment — in-process or remote over TCP — with a result cache,
// admission control, and an HTTP/JSON API, turning the fragment-once/
// serve-many engine into something that can face query traffic.
//
// Three mechanisms, layered in this order on every request:
//
//  1. Result cache. Queries are keyed by their canonical form — the
//     pattern's Parse-format rendering (stable node order) plus the
//     evaluation config — and results are tagged with the graph version
//     they were computed at (dgs.Result.Version). A hit requires the tag
//     to equal the deployment's current version, so any Apply that
//     changes the graph invalidates every stale entry at once.
//  2. Coalescing. Concurrent identical misses share one distributed
//     session: one leader evaluates, followers wait for its result.
//  3. Admission control. At most MaxInFlight evaluations run at once; up
//     to MaxQueue more wait (charged against their deadline); beyond
//     that, queries are shed immediately with ErrOverload.
//
// Server.Handler exposes the subsystem over HTTP (POST /query,
// POST /apply, GET /stats, GET /healthz — docs/HTTP.md is the spec), and
// cmd/dgsgw packages it as a daemon that can itself dial remote dgsd
// site servers, so the full stack runs as separate processes.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"dgs"
	"dgs/internal/obs"
)

// Options tunes a Server. The zero value selects the defaults.
type Options struct {
	// MaxInFlight bounds concurrently executing evaluations (default 4).
	MaxInFlight int
	// MaxQueue bounds queries waiting for an execution slot; a query
	// arriving beyond it is rejected with ErrOverload (default 64).
	MaxQueue int
	// DefaultTimeout is the per-query deadline applied when a request
	// does not carry its own (default 30s). Queue wait counts against it.
	DefaultTimeout time.Duration
	// CacheSize is the maximum number of cached results; 0 selects the
	// default 1024, negative disables caching.
	CacheSize int
	// Algorithm is the default evaluation algorithm for requests that do
	// not name one (default dgs.AlgoDGPM).
	Algorithm dgs.Algorithm
	// SlowQuery logs any /query whose total latency (queue wait
	// included) reaches the threshold, through Logger at Warn. 0
	// disables the slow-query log.
	SlowQuery time.Duration
	// Logger receives the server's structured logs (slow queries); nil
	// selects slog.Default().
	Logger *slog.Logger
}

func (o Options) norm() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
	return o
}

// algoByName maps the CLI/HTTP algorithm names (as in dgsrun -algo) to
// the library's selectors.
var algoByName = map[string]dgs.Algorithm{
	"dgpm":     dgs.AlgoDGPM,
	"dgpmnopt": dgs.AlgoDGPMNoOpt,
	"dgpmd":    dgs.AlgoDGPMd,
	"dgpmt":    dgs.AlgoDGPMt,
	"match":    dgs.AlgoMatch,
	"dishhk":   dgs.AlgoDisHHK,
	"dmes":     dgs.AlgoDMes,
}

// AlgorithmByName resolves a lowercase algorithm name ("dgpm", "dmes",
// ...) to its selector.
func AlgorithmByName(name string) (dgs.Algorithm, bool) {
	a, ok := algoByName[strings.ToLower(name)]
	return a, ok
}

// AlgorithmNames lists the accepted algorithm names, sorted.
func AlgorithmNames() []string {
	out := make([]string, 0, len(algoByName))
	for n := range algoByName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RequestError marks a malformed request (unparseable pattern, unknown
// algorithm): the caller's fault, HTTP 400.
type RequestError struct{ msg string }

func (e *RequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &RequestError{msg: fmt.Sprintf(format, args...)}
}

// Server fronts one deployment with caching, coalescing and admission
// control. Safe for concurrent use.
type Server struct {
	dep    *dgs.Deployment
	dict   *dgs.Dict
	opts   Options
	cache  *cache // nil when caching is disabled
	gate   *gate
	fl     *flightGroup
	start  time.Time
	logger *slog.Logger

	// The counters stay plain int64s driven by atomic.AddInt64 (the
	// registry reads them through CounterFuncs) so Counters() keeps its
	// exact JSON shape and pre-existing by-value Server fixtures stay
	// `go vet` copylocks-clean.
	nQueries, nHits, nMisses, nCoalesced int64
	nRejected, nDeadline, nErrors        int64
	nApplies, nSlow                      int64

	reg          *obs.Registry
	querySeconds *obs.Histogram // total /query latency, cache hits included
	hitAge       *obs.Histogram // age of served cache entries
}

// New builds a Server over dep. dict must be the dictionary the deployed
// graph's labels are interned in, so incoming pattern text resolves to
// the same label values.
func New(dep *dgs.Deployment, dict *dgs.Dict, opts Options) *Server {
	opts = opts.norm()
	s := &Server{
		dep:   dep,
		dict:  dict,
		opts:  opts,
		gate:  newGate(opts.MaxInFlight, opts.MaxQueue),
		fl:    newFlightGroup(),
		start: time.Now(),
	}
	if opts.CacheSize > 0 {
		s.cache = newCache(opts.CacheSize)
	}
	s.logger = opts.Logger
	if s.logger == nil {
		s.logger = slog.Default()
	}
	s.reg = obs.NewRegistry()
	s.registerMetrics()
	return s
}

// registerMetrics publishes the serving counters on the gateway
// registry. The /stats JSON snapshot (Counters) and the /metrics
// exposition read the same backing atomics, so the two views always
// agree.
func (s *Server) registerMetrics() {
	load := func(p *int64) func() float64 {
		return func() float64 { return float64(atomic.LoadInt64(p)) }
	}
	s.reg.CounterFunc("dgs_gw_queries_total", "Gateway /query requests.", load(&s.nQueries))
	s.reg.CounterFunc("dgs_gw_cache_hits_total", "Queries served from the result cache.", load(&s.nHits))
	s.reg.CounterFunc("dgs_gw_cache_misses_total", "Cacheable queries that missed.", load(&s.nMisses))
	s.reg.CounterFunc("dgs_gw_coalesced_total", "Queries served by joining a concurrent identical flight.", load(&s.nCoalesced))
	s.reg.CounterFunc("dgs_gw_rejected_total", "Queries shed by admission control (overload).", load(&s.nRejected))
	s.reg.CounterFunc("dgs_gw_deadline_total", "Queries that exceeded their per-query deadline.", load(&s.nDeadline))
	s.reg.CounterFunc("dgs_gw_errors_total", "Malformed requests and evaluation failures.", load(&s.nErrors))
	s.reg.CounterFunc("dgs_gw_applies_total", "Successfully applied edge-update batches.", load(&s.nApplies))
	s.reg.CounterFunc("dgs_gw_slow_queries_total", "Queries at or over the slow-query threshold.", load(&s.nSlow))
	s.reg.GaugeFunc("dgs_gw_in_flight", "Concurrently executing evaluations.", func() float64 {
		return float64(s.gate.inFlight())
	})
	s.reg.GaugeFunc("dgs_gw_queue_depth", "Queries waiting for an execution slot.", func() float64 {
		return float64(s.gate.queueDepth())
	})
	s.reg.GaugeFunc("dgs_gw_cache_entries", "Live result-cache entries.", func() float64 {
		if s.cache == nil {
			return 0
		}
		return float64(s.cache.len())
	})
	s.querySeconds = s.reg.Histogram("dgs_gw_query_seconds", "Total /query latency (cache hits included).", obs.DefTimeBuckets)
	s.hitAge = s.reg.Histogram("dgs_gw_cache_hit_age_seconds", "Age of cache entries at the moment they were served.", []float64{0.1, 0.5, 1, 5, 15, 60, 300, 1800, 7200})
}

// Metrics returns the gateway's metrics registry, for exposition
// alongside the deployment's (Deployment.Metrics) at GET /metrics.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Deployment returns the fronted deployment.
func (s *Server) Deployment() *dgs.Deployment { return s.dep }

// QueryRequest is one query, as posted to /query.
type QueryRequest struct {
	// Pattern is the query in the pattern DSL (node <name> <label> /
	// edge <from> <to>).
	Pattern string `json:"pattern"`
	// Algo names the evaluation algorithm (dgsrun -algo names); empty
	// selects the server's default.
	Algo string `json:"algo,omitempty"`
	// Theta overrides the push benefit threshold θ (dGPM only); an
	// explicit 0 is honored.
	Theta *float64 `json:"theta,omitempty"`
	// NoPush disables the push optimization (dGPM only).
	NoPush bool `json:"no_push,omitempty"`
	// GraphIsDAG asserts the data graph is acyclic (dGPMd).
	GraphIsDAG bool `json:"graph_is_dag,omitempty"`
	// IncludeMatches returns the full match relation, not just its size.
	IncludeMatches bool `json:"matches,omitempty"`
	// NoCache bypasses the result cache and coalescing for this query
	// (it still passes admission control).
	NoCache bool `json:"no_cache,omitempty"`
	// Trace evaluates with distributed tracing and returns the span
	// tree in the response. A traced query bypasses the cache and
	// coalescing like NoCache (a shared or cached result carries no
	// trace of THIS request's evaluation), but still passes admission.
	Trace bool `json:"trace,omitempty"`
	// Explain returns the evaluation plan — node/edge orders with
	// selectivity estimates and the canonical cache key — without
	// executing the query. Nothing is evaluated, cached or admitted.
	Explain bool `json:"explain,omitempty"`
	// TimeoutMS overrides the server's default per-query deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// QueryStats is the distributed cost of the evaluation that produced a
// response (for cached responses: the evaluation that filled the entry).
type QueryStats struct {
	PTms         float64 `json:"pt_ms"`
	DataBytes    int64   `json:"data_bytes"`
	DataMsgs     int64   `json:"data_msgs"`
	ControlBytes int64   `json:"control_bytes"`
	ResultBytes  int64   `json:"result_bytes"`
	Rounds       int64   `json:"rounds"`
	WireBytes    int64   `json:"wire_bytes,omitempty"`
}

func toQueryStats(st dgs.Stats) QueryStats {
	return QueryStats{
		PTms:         float64(st.Wall.Microseconds()) / 1000,
		DataBytes:    st.DataBytes,
		DataMsgs:     st.DataMsgs,
		ControlBytes: st.ControlBytes,
		ResultBytes:  st.ResultBytes,
		Rounds:       st.Rounds,
		WireBytes:    st.WireBytes,
	}
}

// QueryResponse is the answer to one query.
type QueryResponse struct {
	// OK reports whether G matches Q (the Boolean answer).
	OK bool `json:"ok"`
	// Pairs is |Q(G)| as a set of (query node, data node) pairs.
	Pairs int `json:"pairs"`
	// Matches maps query node names to their sorted match sets; only
	// with IncludeMatches.
	Matches map[string][]dgs.NodeID `json:"matches,omitempty"`
	// Version is the graph version the result was computed at.
	Version uint64 `json:"version"`
	// Algo is the algorithm that evaluated the query.
	Algo string `json:"algo"`
	// Cached marks a result served from the cache without evaluation.
	Cached bool `json:"cached"`
	// Coalesced marks a result shared from a concurrent identical query.
	Coalesced bool `json:"coalesced,omitempty"`
	// Stats is the distributed evaluation cost.
	Stats QueryStats `json:"stats"`
	// Trace is the evaluation's span tree; only for Trace requests.
	Trace *dgs.QueryTrace `json:"trace,omitempty"`
	// Plan is the evaluation plan; only for Explain requests, which
	// carry no evaluation fields (OK/Pairs/Stats stay zero).
	Plan *PlanBody `json:"plan,omitempty"`
}

// PlanBody is the JSON rendering of a query's evaluation plan.
type PlanBody struct {
	// Planner is the deployment's planner name ("" when disabled).
	Planner string `json:"planner"`
	// CanonicalKey is the renaming-invariant cache key.
	CanonicalKey string `json:"canonical_key"`
	// Empty reports the absent-label short-circuit verdict.
	Empty bool `json:"empty"`
	// Nodes is the seed order, rarest label first; Edges the query-edge
	// order, ascending selectivity.
	Nodes []PlanNodeBody `json:"nodes"`
	Edges []PlanEdgeBody `json:"edges"`
}

// PlanNodeBody is one query node in plan order.
type PlanNodeBody struct {
	Name  string `json:"name"`
	Label string `json:"label"`
	Est   uint32 `json:"est"`
}

// PlanEdgeBody is one query edge in plan order.
type PlanEdgeBody struct {
	From string `json:"from"`
	To   string `json:"to"`
	Est  uint32 `json:"est"`
}

func toPlanBody(pi *dgs.PlanInfo) *PlanBody {
	b := &PlanBody{
		Planner:      pi.Planner,
		CanonicalKey: pi.CanonicalKey,
		Empty:        pi.Empty,
		Nodes:        make([]PlanNodeBody, len(pi.Nodes)),
		Edges:        make([]PlanEdgeBody, len(pi.Edges)),
	}
	for i, n := range pi.Nodes {
		b.Nodes[i] = PlanNodeBody{Name: n.Name, Label: n.Label, Est: n.Est}
	}
	for i, e := range pi.Edges {
		b.Edges[i] = PlanEdgeBody{From: e.From, To: e.To, Est: e.Est}
	}
	return b
}

// compiled is a parsed and canonicalized query.
type compiled struct {
	// reqQ is the pattern as posted (its node names render the
	// response); q is its canonical form — the pattern actually
	// evaluated, so results cache and coalesce across every
	// renamed-equivalent request — and perm maps reqQ's node u to q's
	// node perm[u].
	reqQ        *dgs.Pattern
	q           *dgs.Pattern
	perm        []int
	opts        []dgs.QueryOption
	algo        dgs.Algorithm
	key         string // canonical pattern key + config
	wantMatches bool
	wantTrace   bool
}

// compile parses and canonicalizes a request. The cache key is the
// pattern's canonical key — invariant under node renaming and
// declaration reordering, so equivalent patterns share one entry no
// matter how they were written — plus every config knob that can change
// the answer or its cost.
func (s *Server) compile(req QueryRequest) (*compiled, error) {
	if strings.TrimSpace(req.Pattern) == "" {
		return nil, badRequest("empty pattern")
	}
	// The label dictionary is safe for concurrent interning (lock-free
	// reads, serialized writers), so request threads parse in parallel —
	// pattern compilation is no longer a gateway-wide critical section.
	reqQ, err := dgs.ParsePattern(s.dict, req.Pattern)
	if err != nil {
		return nil, badRequest("pattern: %v", err)
	}
	q, canon, perm := reqQ.Canonical()
	algo := s.opts.Algorithm
	if req.Algo != "" {
		a, ok := AlgorithmByName(req.Algo)
		if !ok {
			return nil, badRequest("unknown algorithm %q (have %s)", req.Algo, strings.Join(AlgorithmNames(), "|"))
		}
		algo = a
	}
	opts := []dgs.QueryOption{dgs.WithAlgorithm(algo)}
	cfg := fmt.Sprintf("algo=%s", algo)
	if req.Theta != nil {
		opts = append(opts, dgs.WithPushTheta(*req.Theta))
		cfg += fmt.Sprintf(";theta=%g", *req.Theta)
	}
	if req.NoPush {
		opts = append(opts, dgs.WithPushDisabled())
		cfg += ";nopush"
	}
	if req.GraphIsDAG {
		opts = append(opts, dgs.WithGraphIsDAG())
		cfg += ";dag"
	}
	if req.Trace {
		// Not part of the cache key: traced queries never touch the
		// cache, so the trace knob cannot split otherwise-equal entries.
		opts = append(opts, dgs.WithTrace())
	}
	return &compiled{
		reqQ:        reqQ,
		q:           q,
		perm:        perm,
		opts:        opts,
		algo:        algo,
		key:         canon + "\x00" + cfg,
		wantMatches: req.IncludeMatches,
		wantTrace:   req.Trace,
	}, nil
}

// Query answers one request: cache, coalesce, admit, evaluate. Error
// kinds: *RequestError (malformed), ErrOverload (shed), ctx errors
// (deadline/cancel), anything else is an evaluation failure.
func (s *Server) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	atomic.AddInt64(&s.nQueries, 1)
	c, err := s.compile(req)
	if err != nil {
		atomic.AddInt64(&s.nErrors, 1)
		return nil, err
	}
	if req.Explain {
		// Plan-only: nothing is evaluated, admitted or cached.
		pi, err := s.dep.Explain(c.reqQ)
		if err != nil {
			return nil, s.countErr(err)
		}
		return &QueryResponse{
			Algo:    c.algo.String(),
			Version: s.dep.Version(),
			Plan:    toPlanBody(pi),
		}, nil
	}
	timeout := s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	start := time.Now()
	defer func() { s.observeQuery(req, c, time.Since(start)) }()

	useCache := s.cache != nil && !req.NoCache && !req.Trace
	if useCache {
		if res, age, ok := s.cache.get(c.key, s.dep.Version()); ok {
			atomic.AddInt64(&s.nHits, 1)
			s.hitAge.Observe(age.Seconds())
			return s.respond(c, res, true, false), nil
		}
		atomic.AddInt64(&s.nMisses, 1)
	}
	if req.Trace {
		// Traced path: lead unconditionally (no coalescing — followers
		// would share a trace that is not theirs) and keep the result
		// out of the cache, where its span tree would leak into
		// untraced responses.
		res, err := s.lead(ctx, c)
		if err != nil {
			return nil, s.countErr(err)
		}
		return s.respond(c, res, false, false), nil
	}
	if !useCache {
		// Raw path: no coalescing either (NoCache is the measurement
		// escape hatch; sharing another query's result would defeat it).
		res, err := s.lead(ctx, c)
		if err != nil {
			return nil, s.countErr(err)
		}
		return s.respond(c, res, false, false), nil
	}
	for attempt := 0; ; attempt++ {
		fk := flightKey{key: c.key, version: s.dep.Version()}
		f, leader := s.fl.join(fk)
		if !leader {
			atomic.AddInt64(&s.nCoalesced, 1)
			select {
			case <-f.done:
				if f.err == nil {
					return s.respond(c, f.res, false, true), nil
				}
				// The leader died of its own cancellation; if our deadline
				// still stands, run the query ourselves.
				if isCtxErr(f.err) && ctx.Err() == nil && attempt < 4 {
					continue
				}
				return nil, s.countErr(f.err)
			case <-ctx.Done():
				return nil, s.countErr(ctx.Err())
			}
		}
		res, err := s.lead(ctx, c)
		s.fl.settle(fk, f, res, err)
		if err != nil {
			return nil, s.countErr(err)
		}
		s.cache.put(c.key, res)
		return s.respond(c, res, false, false), nil
	}
}

// observeQuery feeds the latency histogram and the slow-query log for
// one executed (non-Explain) query.
func (s *Server) observeQuery(req QueryRequest, c *compiled, elapsed time.Duration) {
	s.querySeconds.Observe(elapsed.Seconds())
	if s.opts.SlowQuery <= 0 || elapsed < s.opts.SlowQuery {
		return
	}
	atomic.AddInt64(&s.nSlow, 1)
	s.logger.Warn("slow query",
		"elapsed_ms", elapsed.Milliseconds(),
		"threshold_ms", s.opts.SlowQuery.Milliseconds(),
		"algo", c.algo.String(),
		"pattern_nodes", c.q.NumNodes(),
		"traced", req.Trace,
		"graph_version", s.dep.Version())
}

// lead runs one admitted evaluation.
func (s *Server) lead(ctx context.Context, c *compiled) (*dgs.Result, error) {
	if err := s.gate.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.gate.release()
	return s.dep.Query(ctx, c.q, c.opts...)
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// countErr buckets an error into the overload/deadline/error counters.
func (s *Server) countErr(err error) error {
	switch {
	case errors.Is(err, ErrOverload):
		atomic.AddInt64(&s.nRejected, 1)
	case errors.Is(err, context.DeadlineExceeded):
		atomic.AddInt64(&s.nDeadline, 1)
	default:
		atomic.AddInt64(&s.nErrors, 1)
	}
	return err
}

// respond renders a result. Results are immutable and may be shared by
// many responses; only read from them.
func (s *Server) respond(c *compiled, res *dgs.Result, cached, coalesced bool) *QueryResponse {
	resp := &QueryResponse{
		OK:        res.Match.Ok(),
		Pairs:     res.Match.NumPairs(),
		Version:   res.Version,
		Algo:      c.algo.String(),
		Cached:    cached,
		Coalesced: coalesced,
		Stats:     toQueryStats(res.Stats),
	}
	if c.wantMatches {
		resp.Matches = matchesOf(c, res.Match)
	}
	if c.wantTrace {
		resp.Trace = res.Trace
	}
	return resp
}

// matchesOf renders the full relation keyed by the REQUEST's node names:
// the result is indexed by the canonical pattern's nodes (possibly
// computed for a differently-named equivalent request), so each request
// node reads its match set through the canonical mapping.
func matchesOf(c *compiled, m *dgs.Match) map[string][]dgs.NodeID {
	out := make(map[string][]dgs.NodeID, c.reqQ.NumNodes())
	for u := 0; u < c.reqQ.NumNodes(); u++ {
		out[c.reqQ.NodeName(dgs.QNode(u))] = append([]dgs.NodeID(nil), m.MatchesOf(dgs.QNode(c.perm[u]))...)
	}
	return out
}

// ApplyOp is one edge update of an /apply batch.
type ApplyOp struct {
	// Del marks a deletion; otherwise the op inserts.
	Del bool `json:"del,omitempty"`
	// V and W are the edge's source and target node IDs.
	V dgs.NodeID `json:"v"`
	W dgs.NodeID `json:"w"`
}

// ApplyRequest is an edge-update batch, as posted to /apply.
type ApplyRequest struct {
	Ops       []ApplyOp `json:"ops"`
	TimeoutMS int64     `json:"timeout_ms,omitempty"`
}

// ApplyResponse reports an applied batch.
type ApplyResponse struct {
	// Deletions and Insertions count the batch's net distributed ops.
	Deletions  int `json:"deletions"`
	Insertions int `json:"insertions"`
	// Version is the graph version after the batch.
	Version uint64 `json:"version"`
	// Reevaluated counts standing queries that fell back to full
	// re-evaluation.
	Reevaluated int `json:"reevaluated"`
}

// Apply validates and applies one edge-update batch. The graph-version
// bump implicitly invalidates every cached result computed before it.
func (s *Server) Apply(ctx context.Context, req ApplyRequest) (*ApplyResponse, error) {
	if len(req.Ops) == 0 {
		return nil, badRequest("empty ops batch")
	}
	timeout := s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	ops := make([]dgs.EdgeOp, len(req.Ops))
	for i, op := range req.Ops {
		if op.Del {
			ops[i] = dgs.DeleteOp(op.V, op.W)
		} else {
			ops[i] = dgs.InsertOp(op.V, op.W)
		}
	}
	st, err := s.dep.Apply(ctx, ops)
	if err != nil {
		// Validation failures (absent edge, unknown node) fail before
		// anything is distributed and are the caller's fault; a closing
		// deployment, a lost site, or a mid-distribution failure is
		// server-side.
		if st.Deletions == 0 && st.Insertions == 0 && !isCtxErr(err) &&
			!errors.Is(err, dgs.ErrClosed) && !errors.Is(err, dgs.ErrSiteLost) {
			atomic.AddInt64(&s.nErrors, 1)
			return nil, badRequest("%v", err)
		}
		return nil, s.countErr(err)
	}
	atomic.AddInt64(&s.nApplies, 1)
	return &ApplyResponse{
		Deletions:   st.Deletions,
		Insertions:  st.Insertions,
		Version:     s.dep.Version(),
		Reevaluated: st.Reevaluated,
	}, nil
}

// Counters is a consistent-enough snapshot of the serving metrics,
// exported alongside the per-query dgs.Stats.
type Counters struct {
	// Queries counts /query requests; Hits/Misses partition the cached
	// ones, Coalesced counts queries served by joining another's flight.
	Queries   int64 `json:"queries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	// Rejected counts overload sheds; Deadline counts per-query deadline
	// expiries; Errors counts malformed requests and evaluation failures.
	Rejected int64 `json:"rejected"`
	Deadline int64 `json:"deadline"`
	Errors   int64 `json:"errors"`
	// Applies counts successfully applied update batches.
	Applies int64 `json:"applies"`
	// InFlight and QueueDepth are live admission gauges.
	InFlight   int `json:"in_flight"`
	QueueDepth int `json:"queue_depth"`
	// CacheEntries is the live cache size; GraphVersion the deployment's
	// current graph version.
	CacheEntries int    `json:"cache_entries"`
	GraphVersion uint64 `json:"graph_version"`
}

// HitRate reports hits / (hits + misses), 0 when no cached lookup ran.
func (c Counters) HitRate() float64 {
	if c.Hits+c.Misses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

// Counters snapshots the serving metrics.
func (s *Server) Counters() Counters {
	c := Counters{
		Queries:      atomic.LoadInt64(&s.nQueries),
		Hits:         atomic.LoadInt64(&s.nHits),
		Misses:       atomic.LoadInt64(&s.nMisses),
		Coalesced:    atomic.LoadInt64(&s.nCoalesced),
		Rejected:     atomic.LoadInt64(&s.nRejected),
		Deadline:     atomic.LoadInt64(&s.nDeadline),
		Errors:       atomic.LoadInt64(&s.nErrors),
		Applies:      atomic.LoadInt64(&s.nApplies),
		InFlight:     s.gate.inFlight(),
		QueueDepth:   s.gate.queueDepth(),
		GraphVersion: s.dep.Version(),
	}
	if s.cache != nil {
		c.CacheEntries = s.cache.len()
	}
	return c
}
