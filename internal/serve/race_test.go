package serve

// Cache invalidation under a live update stream — the property the
// whole cache design rests on: a query racing Apply must never return a
// result tagged with a newer version than the graph state it actually
// observed. The harness reuses the PR-2 proptest idea: the applier
// snapshots the materialized graph after every batch, and every served
// response (cached, coalesced, or fresh) is checked pair-for-pair
// against the centralized Simulate oracle on the snapshot its version
// tag names. A result computed against graph state v but tagged v+1
// (or vice versa) diverges from the oracle and fails the test.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dgs"
)

func TestCacheNeverServesWrongVersion(t *testing.T) {
	ctx := context.Background()
	dict := dgs.NewDict()
	g := dgs.GenSynthetic(dict, 200, 700, 99)
	part, err := dgs.PartitionRandom(g, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := dgs.Deploy(part)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	srv := New(dep, dict, Options{MaxInFlight: 4})

	// Two query patterns over the shared dictionary; parsed text goes
	// through the full serving path.
	patterns := []string{
		dgs.GenCyclicPatternOver(dict, 3, 5, 4, 100).String(),
		dgs.GenCyclicPatternOver(dict, 4, 6, 4, 101).String(),
	}

	// snapshots[v] is the graph as of version v. Version 0 is the
	// deployed graph; the applier records each later version right after
	// its Apply returns (it is the only writer, so the graph is stable
	// between its batches).
	var snapMu sync.Mutex
	snapshots := map[uint64]*dgs.Graph{0: part.CurrentGraph()}

	stream := dgs.GenUpdateStream(part.CurrentGraph(), 60, 20, 102)
	batches := dgs.BatchOps(stream, 4)

	type sample struct {
		pattern string
		version uint64
		pairs   int
		matches map[string][]dgs.NodeID
	}
	var (
		samplesMu sync.Mutex
		samples   []sample
	)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rq := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := patterns[rq.Intn(len(patterns))]
				resp, err := srv.Query(ctx, QueryRequest{Pattern: p, IncludeMatches: true})
				if err != nil {
					t.Error(err)
					return
				}
				samplesMu.Lock()
				samples = append(samples, sample{pattern: p, version: resp.Version, pairs: resp.Pairs, matches: resp.Matches})
				samplesMu.Unlock()
			}
		}(int64(200 + i))
	}

	// The applier: one batch at a time, snapshotting after each.
	for _, batch := range batches {
		if _, err := srv.Apply(ctx, toApplyOps(batch)); err != nil {
			// Racing inserts/deletes can invalidate against the mutated
			// graph; regenerate the op against the current state instead.
			continue
		}
		v := dep.Version()
		snapMu.Lock()
		snapshots[v] = part.CurrentGraph()
		snapMu.Unlock()
	}
	close(stop)
	wg.Wait()

	if len(samples) == 0 {
		t.Fatal("no query completed during the update stream")
	}
	// Verify every sample against the oracle at its tagged version.
	oracle := map[string]*dgs.Match{} // pattern \x00 version → Simulate
	for _, s := range samples {
		snapMu.Lock()
		snap, ok := snapshots[s.version]
		snapMu.Unlock()
		if !ok {
			t.Fatalf("response tagged version %d, but no batch ever produced it", s.version)
		}
		key := fmt.Sprintf("%s\x00%d", s.pattern, s.version)
		want, ok := oracle[key]
		if !ok {
			q, err := dgs.ParsePattern(dict, s.pattern)
			if err != nil {
				t.Fatal(err)
			}
			want = dgs.Simulate(q, snap)
			oracle[key] = want
		}
		if s.pairs != want.NumPairs() {
			t.Fatalf("version %d: served %d pairs, oracle has %d — result computed against a different graph state than its tag",
				s.version, s.pairs, want.NumPairs())
		}
		q, _ := dgs.ParsePattern(dict, s.pattern)
		for u := 0; u < q.NumNodes(); u++ {
			name := q.NodeName(dgs.QNode(u))
			ref := want.MatchesOf(dgs.QNode(u))
			got := s.matches[name]
			if len(got) != len(ref) {
				t.Fatalf("version %d node %s: served %d matches, oracle %d", s.version, name, len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("version %d node %s: match %d diverges", s.version, name, i)
				}
			}
		}
	}
	t.Logf("verified %d served responses across %d graph versions (hit rate %.2f)",
		len(samples), len(snapshots), srv.Counters().HitRate())
}

func toApplyOps(batch []dgs.EdgeOp) ApplyRequest {
	ops := make([]ApplyOp, len(batch))
	for i, op := range batch {
		ops[i] = ApplyOp{Del: op.Del, V: op.V, W: op.W}
	}
	return ApplyRequest{Ops: ops}
}
