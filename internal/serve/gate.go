package serve

// Admission control: a bounded-concurrency semaphore with a bounded
// waiting queue. A query either gets a slot, waits its turn (charged
// against its deadline), or is shed immediately with ErrOverload — the
// gateway never builds an unbounded backlog, so latency under overload
// stays bounded by MaxInFlight·(service time) + the queue depth instead
// of growing with the arrival rate.

import (
	"context"
	"errors"
	"sync"
)

// ErrOverload rejects a query because every execution slot is busy and
// the waiting queue is full. Callers should surface it as an explicit
// "try again later" (HTTP 503), not retry in a tight loop.
var ErrOverload = errors.New("serve: overloaded: all slots busy and queue full")

// gate is the admission semaphore.
type gate struct {
	slots chan struct{} // buffered; holding a token = executing

	mu      sync.Mutex
	waiting int
	maxWait int
}

func newGate(maxInFlight, maxQueue int) *gate {
	return &gate{slots: make(chan struct{}, maxInFlight), maxWait: maxQueue}
}

// acquire claims an execution slot, queueing if none is free. It fails
// with ErrOverload when the queue is full and with ctx.Err() when the
// caller's deadline expires while waiting.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	g.mu.Lock()
	if g.waiting >= g.maxWait {
		g.mu.Unlock()
		return ErrOverload
	}
	g.waiting++
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.waiting--
		g.mu.Unlock()
	}()
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot claimed by acquire.
func (g *gate) release() { <-g.slots }

// inFlight reports the number of executing queries.
func (g *gate) inFlight() int { return len(g.slots) }

// queueDepth reports the number of queries waiting for a slot.
func (g *gate) queueDepth() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiting
}
