package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, 0x07, []byte("hello"))
	buf = AppendFrame(buf, 0x01, nil)
	buf = AppendFrame(buf, 0xFF, bytes.Repeat([]byte{0xAB}, 1000))

	r := bytes.NewReader(buf)
	typ, body, err := ReadFrame(r)
	if err != nil || typ != 0x07 || string(body) != "hello" {
		t.Fatalf("frame 1: %v %#x %q", err, typ, body)
	}
	typ, body, err = ReadFrame(r)
	if err != nil || typ != 0x01 || len(body) != 0 {
		t.Fatalf("frame 2: %v %#x %d", err, typ, len(body))
	}
	typ, body, err = ReadFrame(r)
	if err != nil || typ != 0xFF || len(body) != 1000 {
		t.Fatalf("frame 3: %v %#x %d", err, typ, len(body))
	}
	if _, _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("clean boundary must be io.EOF, got %v", err)
	}
}

func TestFrameOverheadIsExact(t *testing.T) {
	f := AppendFrame(nil, 0x07, []byte("xyz"))
	if len(f) != FrameOverhead+3 {
		t.Fatalf("frame length %d, want %d", len(f), FrameOverhead+3)
	}
}

func TestFrameRejectsHostileLength(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversized length accepted")
	}
	binary.LittleEndian.PutUint32(hdr[:], 0)
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestFrameTruncation(t *testing.T) {
	full := AppendFrame(nil, 0x07, []byte("some body bytes"))
	for cut := 1; cut < len(full); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if cut >= 4 && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation at %d: %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

// FuzzFrameRoundTrip: any (type, body) must survive framing, and the
// reader must never panic or over-read on arbitrary stream prefixes.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(1), []byte{})
	f.Add(byte(7), []byte("payload"))
	// Seed the coalescing path: a MSGB-style frame whose body is a
	// qid prefix followed by an encoded batch payload.
	batch := Encode(&Batch{Msgs: []BatchMsg{
		{From: -1, To: 1, Data: Encode(&Control{Op: 2, Arg: 3})},
		{From: 1, To: 0, Data: Encode(&Falsify{Pairs: []VarRef{{4, 5}}})},
	}})
	f.Add(byte(0x0B), append(AppendUint64(nil, 42), batch...))
	f.Add(byte(0x0B), batch)
	f.Fuzz(func(t *testing.T, typ byte, body []byte) {
		frame := AppendFrame(nil, typ, body)
		gotTyp, gotBody, err := ReadFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if gotTyp != typ || !bytes.Equal(gotBody, body) {
			t.Fatal("frame round trip changed content")
		}
		// Arbitrary prefix of the body as a stream: must error or parse,
		// never panic.
		ReadFrame(bytes.NewReader(body))
	})
}
