package wire

import "fmt"

// BatchMsg is one session message inside a Batch: the routed endpoints
// (int32 on the wire so the coordinator's -1 survives) and the encoded
// payload message, byte-identical to what a standalone MSG frame would
// carry. Data returned by the decoder aliases the decode buffer — see
// the ownership convention in bytes.go.
type BatchMsg struct {
	From, To int32
	Data     []byte
}

// Batch packs several consecutive messages of one session into a single
// frame body. It is a transport-level container: the tcpnet backend
// coalesces a connection's queued same-session messages into one MSGB
// frame, and the receiver unpacks them in order, so per-connection FIFO
// — and with it the termination certificate — is preserved exactly.
// The sub-messages are what the protocol accounting sees; the container
// itself never enters the DS metric (Kind.IsData is false).
type Batch struct {
	Msgs []BatchMsg
}

func (*Batch) Kind() Kind { return KindBatch }

func (m *Batch) AppendTo(dst []byte) []byte {
	dst = appendU32(dst, uint32(len(m.Msgs)))
	for i := range m.Msgs {
		dst = appendU32(dst, uint32(m.Msgs[i].From))
		dst = appendU32(dst, uint32(m.Msgs[i].To))
		dst = appendU32(dst, uint32(len(m.Msgs[i].Data)))
		dst = append(dst, m.Msgs[i].Data...)
	}
	return dst
}

// decodeBatch is zero-copy: each sub-message's Data is an aliased slice
// of b (ByteReader.Take), not a fresh allocation. This is safe because
// frame bodies are single-use buffers (one allocation per ReadFrame);
// a consumer that retains Data past the frame's processing must copy.
func decodeBatch(b []byte) (Payload, error) {
	r := &ByteReader{b: b}
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("wire: empty batch")
	}
	// Each sub-message costs at least 12 header bytes plus a non-empty
	// payload.
	if uint64(n)*13 > uint64(r.Remaining()) {
		return nil, fmt.Errorf("wire: batch count %d exceeds buffer", n)
	}
	m := &Batch{Msgs: make([]BatchMsg, n)}
	for i := range m.Msgs {
		from, err := r.U32()
		if err != nil {
			return nil, err
		}
		to, err := r.U32()
		if err != nil {
			return nil, err
		}
		ln, err := r.U32()
		if err != nil {
			return nil, err
		}
		if ln == 0 {
			return nil, fmt.Errorf("wire: batch sub-message %d has empty payload", i)
		}
		data, err := r.Take(int(ln))
		if err != nil {
			return nil, err
		}
		m.Msgs[i] = BatchMsg{From: int32(from), To: int32(to), Data: data}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return m, nil
}
