package wire

// Shared little-endian primitives for the codecs layered on top of the
// payload encodings — fragment shipping (internal/partition) and
// transport frame bodies (internal/transport/tcpnet). One
// bounds-checked implementation, so a hardening fix lands everywhere at
// once instead of in per-package copies.

import (
	"encoding/binary"
	"fmt"
)

// AppendUint16 appends x little-endian.
func AppendUint16(dst []byte, x uint16) []byte { return binary.LittleEndian.AppendUint16(dst, x) }

// AppendUint32 appends x little-endian.
func AppendUint32(dst []byte, x uint32) []byte { return binary.LittleEndian.AppendUint32(dst, x) }

// AppendUint64 appends x little-endian.
func AppendUint64(dst []byte, x uint64) []byte { return binary.LittleEndian.AppendUint64(dst, x) }

// ByteReader is a bounds-checked sequential reader over an encoded
// buffer. Every accessor returns an error instead of panicking on
// truncation, so decoders stay total on hostile input.
//
// Ownership convention: Take and Rest alias the input buffer — they are
// the zero-copy path for data that is consumed while the buffer is
// live (a frame body is one fresh allocation per ReadFrame and is never
// reused). Any decoded value that outlives the frame's processing —
// session specs retained by a host, names stored in a table — must NOT
// hold an aliased slice; use TakeCopy (or copy explicitly) at the
// decode site and say why in a comment.
type ByteReader struct {
	b   []byte
	off int
}

// NewByteReader reads from the front of b.
func NewByteReader(b []byte) *ByteReader { return &ByteReader{b: b} }

// U16 reads a little-endian uint16.
func (r *ByteReader) U16() (uint16, error) {
	if r.off+2 > len(r.b) {
		return 0, fmt.Errorf("wire: truncated u16")
	}
	x := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return x, nil
}

// U32 reads a little-endian uint32.
func (r *ByteReader) U32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("wire: truncated u32")
	}
	x := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return x, nil
}

// U64 reads a little-endian uint64.
func (r *ByteReader) U64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, fmt.Errorf("wire: truncated u64")
	}
	x := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return x, nil
}

// Byte reads one byte.
func (r *ByteReader) Byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("wire: truncated byte")
	}
	x := r.b[r.off]
	r.off++
	return x, nil
}

// Take reads the next n bytes without copying (the slice aliases the
// input buffer).
func (r *ByteReader) Take(n int) ([]byte, error) {
	if n < 0 || n > len(r.b)-r.off {
		return nil, fmt.Errorf("wire: truncated: want %d bytes, have %d", n, len(r.b)-r.off)
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

// TakeCopy reads the next n bytes into a fresh allocation. Use it when
// the decoded value escapes the lifetime of the input buffer (see the
// ownership convention above).
func (r *ByteReader) TakeCopy(n int) ([]byte, error) {
	b, err := r.Take(n)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), b...), nil
}

// Remaining reports how many unread bytes are left.
func (r *ByteReader) Remaining() int { return len(r.b) - r.off }

// Rest returns every unread byte (aliasing the input buffer) and
// advances to the end.
func (r *ByteReader) Rest() []byte {
	b := r.b[r.off:]
	r.off = len(r.b)
	return b
}

// Done errors if unread bytes remain — decoders use it to keep
// encodings canonical.
func (r *ByteReader) Done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}
