package wire

import (
	"bytes"
	"testing"
)

// TestBatchDecodeIsZeroCopy pins the ownership contract: decoded
// sub-message Data aliases the input buffer rather than copying it.
// Mutating the input after decode must show through the decoded view —
// if this test starts failing, the decoder grew a copy and the
// coalesced hot path silently lost its zero-copy property.
func TestBatchDecodeIsZeroCopy(t *testing.T) {
	inner := Encode(&Control{Op: 5, Arg: 6})
	data := Encode(&Batch{Msgs: []BatchMsg{{From: 0, To: 1, Data: inner}}})
	p, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	b := p.(*Batch)
	if !bytes.Equal(b.Msgs[0].Data, inner) {
		t.Fatalf("decoded data %x, want %x", b.Msgs[0].Data, inner)
	}
	// Flip a byte of the encoded buffer under the decoded view.
	data[len(data)-1] ^= 0xFF
	if bytes.Equal(b.Msgs[0].Data, inner) {
		t.Fatal("decoded Data does not alias the input buffer (copy detected)")
	}
}

func TestBatchDecodeRejectsDegenerate(t *testing.T) {
	if _, err := Decode(Encode(&Batch{})); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := Decode(Encode(&Batch{Msgs: []BatchMsg{{From: 1, To: 2}}})); err == nil {
		t.Fatal("batch with empty sub-message payload accepted")
	}
}

// FuzzBatchRoundTrip: structured fuzz over the coalescing container —
// arbitrary sub-message lists survive the codec unchanged and
// canonically.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add(int32(-1), int32(3), []byte{1, 2, 3}, []byte{4})
	f.Add(int32(0), int32(0), []byte{9}, []byte{})
	f.Fuzz(func(t *testing.T, from, to int32, d1, d2 []byte) {
		m := &Batch{}
		if len(d1) > 0 {
			m.Msgs = append(m.Msgs, BatchMsg{From: from, To: to, Data: d1})
		}
		if len(d2) > 0 {
			m.Msgs = append(m.Msgs, BatchMsg{From: to, To: from, Data: d2})
		}
		if len(m.Msgs) == 0 {
			return
		}
		data := Encode(m)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		b := got.(*Batch)
		if len(b.Msgs) != len(m.Msgs) {
			t.Fatalf("count changed: %d -> %d", len(m.Msgs), len(b.Msgs))
		}
		for i := range b.Msgs {
			if b.Msgs[i].From != m.Msgs[i].From || b.Msgs[i].To != m.Msgs[i].To ||
				!bytes.Equal(b.Msgs[i].Data, m.Msgs[i].Data) {
				t.Fatalf("sub-message %d changed", i)
			}
		}
		if !bytes.Equal(Encode(b), data) {
			t.Fatal("re-encoding is not canonical")
		}
	})
}
