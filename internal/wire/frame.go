package wire

// Stream framing for the TCP transport. A frame is the unit the
// networked runtime writes to a socket:
//
//	u32 length (little-endian) | u8 frame type | body (length-1 bytes)
//
// The length covers the type byte plus the body, so an empty frame has
// length 1. Frame *types* belong to the transport protocol
// (internal/transport/tcpnet, docs/WIRE.md §transport frames); this file
// only fixes the byte-level framing so that the encoder, the decoder and
// the fuzzer agree on one definition. Payload messages (Kind-tagged,
// Encode/Decode above) travel as the body of MSG frames unchanged — the
// framing adds exactly FrameOverhead bytes around each.

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrame bounds a frame's length field: 256 MiB, far above any
// fragment shipment we produce, low enough to fail fast on a corrupt or
// hostile length prefix instead of attempting a giant allocation.
const MaxFrame = 1 << 28

// FrameOverhead is the fixed per-frame byte cost (length prefix + type).
const FrameOverhead = 5

// AppendFrame appends one frame carrying typ and body to dst.
func AppendFrame(dst []byte, typ byte, body []byte) []byte {
	if len(body)+1 > MaxFrame {
		panic(fmt.Sprintf("wire: frame body %d exceeds MaxFrame", len(body)))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)+1))
	dst = append(dst, typ)
	return append(dst, body...)
}

// ReadFrame reads exactly one frame from r. The returned body aliases a
// fresh allocation. io.EOF is returned untouched on a clean boundary;
// a partial frame yields io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (typ byte, body []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 {
		return 0, nil, fmt.Errorf("wire: zero-length frame")
	}
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame length %d exceeds MaxFrame", n)
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	typ = hdr[4]
	body = make([]byte, n-1)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return typ, body, nil
}
