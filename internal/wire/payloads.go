package wire

import (
	"encoding/binary"
	"fmt"
)

// Falsify is dGPM's workhorse message: the variables X(u,v) newly
// evaluated to false at the sender. Receivers treat every listed variable
// as permanently false (truth values are monotone, §4.1 "once updated from
// true to false, it never changes back").
type Falsify struct {
	Pairs []VarRef
}

func (*Falsify) Kind() Kind { return KindFalsify }

func (m *Falsify) AppendTo(dst []byte) []byte { return appendRefs(dst, m.Pairs) }

func decodeFalsify(b []byte) (Payload, error) {
	r := &reader{b: b}
	pairs, err := r.refs()
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &Falsify{Pairs: pairs}, nil
}

// RankBatch is dGPMd's scheduled message: all falsified variables whose
// query node has topological rank Rank, shipped as one batch (§5.1).
// An empty batch is meaningful — it releases the receiver's wait for this
// rank.
type RankBatch struct {
	Rank  uint16
	Pairs []VarRef
}

func (*RankBatch) Kind() Kind { return KindRankBatch }

func (m *RankBatch) AppendTo(dst []byte) []byte {
	dst = appendU16(dst, m.Rank)
	return appendRefs(dst, m.Pairs)
}

func decodeRankBatch(b []byte) (Payload, error) {
	r := &reader{b: b}
	rank, err := r.u16()
	if err != nil {
		return nil, err
	}
	pairs, err := r.refs()
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &RankBatch{Rank: rank, Pairs: pairs}, nil
}

// Equation is one Boolean equation X(Target) = ∧ groups (∨ of refs), the
// form derived in §4.1: "X(u,v) is defined by a Boolean equation in terms
// of the variables associated with the children of v". A target with zero
// groups is the constant true (leaf query node).
type Equation struct {
	Target VarRef
	Groups [][]VarRef
}

// EncodedSize reports the wire footprint of one equation; the benefit
// function's m (total size of the equations to be sent, §4.2) sums these.
func (e *Equation) EncodedSize() int {
	n := varRefSize + 2
	for _, g := range e.Groups {
		n += 4 + varRefSize*len(g)
	}
	return n
}

func appendEquations(dst []byte, eqs []Equation) []byte {
	dst = appendU32(dst, uint32(len(eqs)))
	for _, e := range eqs {
		dst = appendRef(dst, e.Target)
		dst = appendU16(dst, uint16(len(e.Groups)))
		for _, g := range e.Groups {
			dst = appendRefs(dst, g)
		}
	}
	return dst
}

func readEquations(r *reader) ([]Equation, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n)*(varRefSize+2) > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("wire: equation count %d exceeds buffer", n)
	}
	eqs := make([]Equation, n)
	for i := range eqs {
		if eqs[i].Target, err = r.ref(); err != nil {
			return nil, err
		}
		ng, err := r.u16()
		if err != nil {
			return nil, err
		}
		eqs[i].Groups = make([][]VarRef, ng)
		for j := range eqs[i].Groups {
			if eqs[i].Groups[j], err = r.refs(); err != nil {
				return nil, err
			}
		}
	}
	return eqs, nil
}

// Push outsources computation to a parent site (§4.2): the closed
// subsystem of still-unevaluated equations reachable from the in-nodes the
// parent watches. The parent inlines equations whose leaves it owns and
// learns which third-party sites feed the rest.
type Push struct {
	Origin uint16 // pushing site's ID
	Eqs    []Equation
}

func (*Push) Kind() Kind { return KindPush }

func (m *Push) AppendTo(dst []byte) []byte {
	dst = appendU16(dst, m.Origin)
	return appendEquations(dst, m.Eqs)
}

func decodePush(b []byte) (Payload, error) {
	r := &reader{b: b}
	origin, err := r.u16()
	if err != nil {
		return nil, err
	}
	eqs, err := readEquations(r)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &Push{Origin: origin, Eqs: eqs}, nil
}

// Reroute implements the dependency-graph rewiring of a push: the sender
// asks the receiver to deliver future falsifications of variables on the
// listed in-nodes to site Dest as well (edge (Sj,Si) replaced by (Sj,Sk),
// §4.2).
type Reroute struct {
	Dest  uint16
	Nodes []uint32
}

func (*Reroute) Kind() Kind { return KindReroute }

func (m *Reroute) AppendTo(dst []byte) []byte {
	dst = appendU16(dst, m.Dest)
	dst = appendU32(dst, uint32(len(m.Nodes)))
	for _, v := range m.Nodes {
		dst = appendU32(dst, v)
	}
	return dst
}

func decodeReroute(b []byte) (Payload, error) {
	r := &reader{b: b}
	dest, err := r.u16()
	if err != nil {
		return nil, err
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n)*4 > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("wire: node count %d exceeds buffer", n)
	}
	nodes := make([]uint32, n)
	for i := range nodes {
		if nodes[i], err = r.u32(); err != nil {
			return nil, err
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &Reroute{Dest: dest, Nodes: nodes}, nil
}

// Subgraph ships graph structure: global node IDs with labels plus edges.
// disHHK ships candidate-induced subgraphs; Match ships entire fragments.
// This is exactly the shipment the paper's partition-bounded algorithms
// avoid.
type Subgraph struct {
	Nodes  []uint32 // global IDs
	Labels []uint16 // parallel to Nodes
	Edges  [][2]uint32
}

func (*Subgraph) Kind() Kind { return KindSubgraph }

func (m *Subgraph) AppendTo(dst []byte) []byte {
	dst = appendU32(dst, uint32(len(m.Nodes)))
	for i, v := range m.Nodes {
		dst = appendU32(dst, v)
		dst = appendU16(dst, m.Labels[i])
	}
	dst = appendU32(dst, uint32(len(m.Edges)))
	for _, e := range m.Edges {
		dst = appendU32(dst, e[0])
		dst = appendU32(dst, e[1])
	}
	return dst
}

func decodeSubgraph(b []byte) (Payload, error) {
	r := &reader{b: b}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n)*6 > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("wire: subgraph node count %d exceeds buffer", n)
	}
	m := &Subgraph{Nodes: make([]uint32, n), Labels: make([]uint16, n)}
	for i := range m.Nodes {
		if m.Nodes[i], err = r.u32(); err != nil {
			return nil, err
		}
		if m.Labels[i], err = r.u16(); err != nil {
			return nil, err
		}
	}
	ne, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(ne)*8 > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("wire: subgraph edge count %d exceeds buffer", ne)
	}
	m.Edges = make([][2]uint32, ne)
	for i := range m.Edges {
		if m.Edges[i][0], err = r.u32(); err != nil {
			return nil, err
		}
		if m.Edges[i][1], err = r.u32(); err != nil {
			return nil, err
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// Vectors is dMes's vertex-centric message: per boundary vertex, the bit
// vector of query nodes it still matches (one bit per query node). This
// full-vector-per-superstep traffic is why dMes ships ~2 orders of
// magnitude more data than dGPM in Exp-1.
type Vectors struct {
	NumQ    uint16 // |Vq|, fixes the per-vertex bit width
	Nodes   []uint32
	Bitsets [][]byte // each ceil(NumQ/8) bytes
}

func (*Vectors) Kind() Kind { return KindVectors }

func (m *Vectors) AppendTo(dst []byte) []byte {
	dst = appendU16(dst, m.NumQ)
	dst = appendU32(dst, uint32(len(m.Nodes)))
	for i, v := range m.Nodes {
		dst = appendU32(dst, v)
		dst = append(dst, m.Bitsets[i]...)
	}
	return dst
}

func decodeVectors(b []byte) (Payload, error) {
	r := &reader{b: b}
	nq, err := r.u16()
	if err != nil {
		return nil, err
	}
	width := (int(nq) + 7) / 8
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n)*uint64(4+width) > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("wire: vector count %d exceeds buffer", n)
	}
	m := &Vectors{NumQ: nq, Nodes: make([]uint32, n), Bitsets: make([][]byte, n)}
	for i := range m.Nodes {
		if m.Nodes[i], err = r.u32(); err != nil {
			return nil, err
		}
		if r.off+width > len(r.b) {
			return nil, fmt.Errorf("wire: truncated bitset")
		}
		m.Bitsets[i] = append([]byte(nil), r.b[r.off:r.off+width]...)
		r.off += width
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// EqSystem is dGPMt's round-1 upload: the fragment's Boolean equations
// for its root/in-node variables in terms of virtual-node variables
// (§5.2). FalseVars lists variables the site already evaluated to false.
type EqSystem struct {
	Frag      uint16
	Eqs       []Equation
	FalseVars []VarRef
}

func (*EqSystem) Kind() Kind { return KindEqSystem }

func (m *EqSystem) AppendTo(dst []byte) []byte {
	dst = appendU16(dst, m.Frag)
	dst = appendEquations(dst, m.Eqs)
	return appendRefs(dst, m.FalseVars)
}

func decodeEqSystem(b []byte) (Payload, error) {
	r := &reader{b: b}
	frag, err := r.u16()
	if err != nil {
		return nil, err
	}
	eqs, err := readEquations(r)
	if err != nil {
		return nil, err
	}
	fv, err := r.refs()
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &EqSystem{Frag: frag, Eqs: eqs, FalseVars: fv}, nil
}

// Values is dGPMt's round-2 download: the solved values of the virtual
// variables a site depends on. Listed variables are false; every other
// requested variable is true.
type Values struct {
	False []VarRef
}

func (*Values) Kind() Kind { return KindValues }

func (m *Values) AppendTo(dst []byte) []byte { return appendRefs(dst, m.False) }

func decodeValues(b []byte) (Payload, error) {
	r := &reader{b: b}
	f, err := r.refs()
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &Values{False: f}, nil
}

// Matches carries a site's local match relation Q(Fi) to the coordinator
// for final assembly (phase 3 of dGPM). Counted as result bytes, not DS.
type Matches struct {
	Frag  uint16
	Pairs []VarRef
}

func (*Matches) Kind() Kind { return KindMatches }

func (m *Matches) AppendTo(dst []byte) []byte {
	dst = appendU16(dst, m.Frag)
	return appendRefs(dst, m.Pairs)
}

func decodeMatches(b []byte) (Payload, error) {
	r := &reader{b: b}
	frag, err := r.u16()
	if err != nil {
		return nil, err
	}
	pairs, err := r.refs()
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &Matches{Frag: frag, Pairs: pairs}, nil
}

// Control carries coordinator/protocol control traffic. Op is
// algorithm-specific; Arg and Flag are small scalars (superstep number,
// changed flag, vote).
type Control struct {
	Op   uint8
	Arg  uint32
	Flag bool
}

func (*Control) Kind() Kind { return KindControl }

func (m *Control) AppendTo(dst []byte) []byte {
	dst = append(dst, m.Op)
	dst = appendU32(dst, m.Arg)
	if m.Flag {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func decodeControl(b []byte) (Payload, error) {
	if len(b) != 6 {
		return nil, fmt.Errorf("wire: control must be 6 bytes, got %d", len(b))
	}
	if b[5] > 1 {
		// Keep the encoding canonical: exactly one byte string per
		// payload value (the DS accounting depends on it).
		return nil, fmt.Errorf("wire: control flag byte %d", b[5])
	}
	return &Control{Op: b[0], Arg: binary.LittleEndian.Uint32(b[1:5]), Flag: b[5] != 0}, nil
}

// Delta is the live-update message. Routed from the coordinator to the
// site owning the edges' source nodes, Dels/Ins list edges to remove
// from/add to the resident fragment; InsLabels runs parallel to Ins
// with the target node's label (the receiver may not know a crossing
// target yet; the target's OWNER it derives from its assignment
// directory). Between sites, Watch and Unwatch notify a node's owner
// that the sender started/stopped holding the listed in-nodes as
// virtual — the live maintenance of the §2.2 dependency annotations.
// Standing-query maintenance sessions receive the same Dels to refine
// their engines in O(|AFF|).
type Delta struct {
	Dels      [][2]uint32
	Ins       [][2]uint32
	InsLabels []uint16 // parallel to Ins
	Watch     []uint32
	Unwatch   []uint32
}

func (*Delta) Kind() Kind { return KindDelta }

func appendEdges(dst []byte, es [][2]uint32) []byte {
	dst = appendU32(dst, uint32(len(es)))
	for _, e := range es {
		dst = appendU32(dst, e[0])
		dst = appendU32(dst, e[1])
	}
	return dst
}

func appendNodes(dst []byte, ns []uint32) []byte {
	dst = appendU32(dst, uint32(len(ns)))
	for _, v := range ns {
		dst = appendU32(dst, v)
	}
	return dst
}

func (m *Delta) AppendTo(dst []byte) []byte {
	dst = appendEdges(dst, m.Dels)
	dst = appendEdges(dst, m.Ins)
	for i := range m.Ins {
		dst = appendU16(dst, m.InsLabels[i])
	}
	dst = appendNodes(dst, m.Watch)
	return appendNodes(dst, m.Unwatch)
}

func (r *reader) edges() ([][2]uint32, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n)*8 > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("wire: edge count %d exceeds buffer", n)
	}
	out := make([][2]uint32, n)
	for i := range out {
		if out[i][0], err = r.u32(); err != nil {
			return nil, err
		}
		if out[i][1], err = r.u32(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *reader) nodes() ([]uint32, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n)*4 > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("wire: node count %d exceeds buffer", n)
	}
	out := make([]uint32, n)
	for i := range out {
		if out[i], err = r.u32(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func decodeDelta(b []byte) (Payload, error) {
	r := &reader{b: b}
	m := &Delta{}
	var err error
	if m.Dels, err = r.edges(); err != nil {
		return nil, err
	}
	if m.Ins, err = r.edges(); err != nil {
		return nil, err
	}
	if len(m.Ins) > 0 {
		m.InsLabels = make([]uint16, len(m.Ins))
		for i := range m.Ins {
			if m.InsLabels[i], err = r.u16(); err != nil {
				return nil, err
			}
		}
	}
	if m.Watch, err = r.nodes(); err != nil {
		return nil, err
	}
	if m.Unwatch, err = r.nodes(); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}
