// Package wire defines the on-the-wire encoding of every message the
// distributed algorithms exchange. Data-shipment (DS) numbers reported by
// the benchmarks are the exact encoded byte counts produced here — the
// runtime really serializes each message at the sender and decodes it at
// the receiver, like the EC2 deployment in §6 of the paper.
//
// Variables are the paper's X(u,v): u a query node, v a (global) data
// node. A falsification message carries the pairs whose truth value
// changed to false — dGPM "only ships the truth values among the sites"
// (§1), which is why its DS is orders of magnitude below subgraph-shipping
// baselines.
package wire

import (
	"encoding/binary"
	"fmt"
)

// Kind tags a payload type.
type Kind uint8

const (
	// KindFalsify carries variables newly evaluated to false (dGPM lMsg).
	KindFalsify Kind = iota + 1
	// KindRankBatch carries falsified variables of one topological rank,
	// shipped in a single batch (dGPMd lMsgd, §5.1).
	KindRankBatch
	// KindPush carries Boolean equations outsourced to a parent site
	// (the push operation of §4.2).
	KindPush
	// KindReroute tells a site to also deliver falsifications of certain
	// in-nodes to an extra destination (dependency-graph rewiring after a
	// push).
	KindReroute
	// KindSubgraph carries a serialized subgraph (disHHK candidate
	// subgraphs; Match ships whole fragments).
	KindSubgraph
	// KindVectors carries per-vertex candidate bit vectors (dMes).
	KindVectors
	// KindEqSystem carries a fragment's Boolean equation system to the
	// coordinator (dGPMt round 1).
	KindEqSystem
	// KindValues carries instantiated variable values back to sites
	// (dGPMt round 2): the listed variables are false, all others true.
	KindValues
	// KindMatches carries a site's local match relation to the
	// coordinator (result assembly; counted as result bytes, not DS).
	KindMatches
	// KindControl carries coordinator/protocol control traffic (query
	// posting, changed flags, superstep votes); counted separately.
	KindControl
	// KindDelta carries a live-update batch: edge deletions/insertions
	// routed to the owning site, and the watch/unwatch notifications that
	// maintain the boundary structure. Standing-query maintenance
	// sessions also receive deltas to refine their engines incrementally.
	KindDelta
	// KindBatch is a transport-level container: several consecutive
	// same-session messages coalesced into one frame (tcpnet MSGB). Its
	// sub-messages are the accounted traffic; the container itself is
	// excluded from DS.
	KindBatch
)

func (k Kind) String() string {
	switch k {
	case KindFalsify:
		return "falsify"
	case KindRankBatch:
		return "rankbatch"
	case KindPush:
		return "push"
	case KindReroute:
		return "reroute"
	case KindSubgraph:
		return "subgraph"
	case KindVectors:
		return "vectors"
	case KindEqSystem:
		return "eqsystem"
	case KindValues:
		return "values"
	case KindMatches:
		return "matches"
	case KindControl:
		return "control"
	case KindDelta:
		return "delta"
	case KindBatch:
		return "batch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsData reports whether a payload kind counts toward the paper's
// data-shipment metric. Result assembly and control flags are accounted
// separately (§4 "Analyses" measures protocol traffic; the final match
// collection is the query answer itself).
func (k Kind) IsData() bool {
	switch k {
	case KindMatches, KindControl, KindBatch:
		// A batch is an envelope; its sub-messages are accounted
		// individually by the receiver.
		return false
	default:
		return true
	}
}

// VarRef identifies a Boolean variable X(u,v) on the wire: 2 bytes for
// the query node, 4 for the data node.
type VarRef struct {
	U uint16 // query node
	V uint32 // global data node ID
}

const varRefSize = 6

// Payload is a message body that knows how to encode itself.
type Payload interface {
	Kind() Kind
	// AppendTo appends the body encoding (excluding the kind byte).
	AppendTo(dst []byte) []byte
}

// Encode prepends the kind byte to the payload body.
func Encode(p Payload) []byte {
	out := make([]byte, 1, 64)
	out[0] = byte(p.Kind())
	return p.AppendTo(out)
}

// Decode parses a message produced by Encode.
func Decode(data []byte) (Payload, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("wire: empty message")
	}
	body := data[1:]
	switch Kind(data[0]) {
	case KindFalsify:
		return decodeFalsify(body)
	case KindRankBatch:
		return decodeRankBatch(body)
	case KindPush:
		return decodePush(body)
	case KindReroute:
		return decodeReroute(body)
	case KindSubgraph:
		return decodeSubgraph(body)
	case KindVectors:
		return decodeVectors(body)
	case KindEqSystem:
		return decodeEqSystem(body)
	case KindValues:
		return decodeValues(body)
	case KindMatches:
		return decodeMatches(body)
	case KindControl:
		return decodeControl(body)
	case KindDelta:
		return decodeDelta(body)
	case KindBatch:
		return decodeBatch(body)
	default:
		return nil, fmt.Errorf("wire: unknown kind %d", data[0])
	}
}

// --- primitive helpers ---

func appendU16(dst []byte, x uint16) []byte {
	return append(dst, byte(x), byte(x>>8))
}

func appendU32(dst []byte, x uint32) []byte {
	return append(dst, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
}

func appendRef(dst []byte, r VarRef) []byte {
	dst = appendU16(dst, r.U)
	return appendU32(dst, r.V)
}

func appendRefs(dst []byte, rs []VarRef) []byte {
	dst = appendU32(dst, uint32(len(rs)))
	for _, r := range rs {
		dst = appendRef(dst, r)
	}
	return dst
}

type reader struct {
	b   []byte
	off int
}

func (r *reader) u16() (uint16, error) {
	if r.off+2 > len(r.b) {
		return 0, fmt.Errorf("wire: truncated u16")
	}
	x := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return x, nil
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("wire: truncated u32")
	}
	x := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return x, nil
}

func (r *reader) ref() (VarRef, error) {
	u, err := r.u16()
	if err != nil {
		return VarRef{}, err
	}
	v, err := r.u32()
	if err != nil {
		return VarRef{}, err
	}
	return VarRef{u, v}, nil
}

func (r *reader) refs() ([]VarRef, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n)*varRefSize > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("wire: ref count %d exceeds buffer", n)
	}
	out := make([]VarRef, n)
	for i := range out {
		if out[i], err = r.ref(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *reader) done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}
