package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, p Payload) Payload {
	t.Helper()
	data := Encode(p)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode %s: %v", p.Kind(), err)
	}
	if got.Kind() != p.Kind() {
		t.Fatalf("kind changed: %s -> %s", p.Kind(), got.Kind())
	}
	return got
}

func TestFalsifyRoundTrip(t *testing.T) {
	m := &Falsify{Pairs: []VarRef{{1, 2}, {3, 400000}, {65535, 4294967295}}}
	got := roundTrip(t, m).(*Falsify)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("got %+v", got)
	}
	// Empty is legal.
	e := roundTrip(t, &Falsify{}).(*Falsify)
	if len(e.Pairs) != 0 {
		t.Fatal("empty falsify grew pairs")
	}
}

func TestRankBatchRoundTrip(t *testing.T) {
	m := &RankBatch{Rank: 3, Pairs: []VarRef{{0, 9}}}
	got := roundTrip(t, m).(*RankBatch)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("got %+v", got)
	}
}

func TestPushRoundTrip(t *testing.T) {
	m := &Push{
		Origin: 2,
		Eqs: []Equation{
			{Target: VarRef{1, 10}, Groups: [][]VarRef{{{2, 11}, {2, 12}}, {{3, 13}}}},
			{Target: VarRef{0, 14}, Groups: nil}, // constant true
		},
	}
	got := roundTrip(t, m).(*Push)
	if got.Origin != 2 || len(got.Eqs) != 2 {
		t.Fatalf("got %+v", got)
	}
	if len(got.Eqs[0].Groups) != 2 || len(got.Eqs[0].Groups[0]) != 2 {
		t.Fatalf("groups mangled: %+v", got.Eqs[0])
	}
	if len(got.Eqs[1].Groups) != 0 {
		t.Fatal("constant-true equation grew groups")
	}
}

func TestEquationEncodedSize(t *testing.T) {
	e := Equation{Target: VarRef{1, 1}, Groups: [][]VarRef{{{1, 2}}, {{1, 3}, {1, 4}}}}
	// target 6 + ngroups 2 + (4 + 6) + (4 + 12) = 34.
	if e.EncodedSize() != 34 {
		t.Fatalf("EncodedSize = %d", e.EncodedSize())
	}
	// Must agree with actual encoding length.
	enc := appendEquations(nil, []Equation{e})
	if len(enc)-4 != e.EncodedSize() { // minus the count header
		t.Fatalf("encoding length %d vs size %d", len(enc)-4, e.EncodedSize())
	}
}

func TestRerouteRoundTrip(t *testing.T) {
	m := &Reroute{Dest: 7, Nodes: []uint32{1, 2, 3}}
	got := roundTrip(t, m).(*Reroute)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("got %+v", got)
	}
}

func TestSubgraphRoundTrip(t *testing.T) {
	m := &Subgraph{
		Nodes:  []uint32{5, 9, 11},
		Labels: []uint16{1, 2, 1},
		Edges:  [][2]uint32{{5, 9}, {9, 11}},
	}
	got := roundTrip(t, m).(*Subgraph)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("got %+v", got)
	}
}

func TestVectorsRoundTrip(t *testing.T) {
	m := &Vectors{
		NumQ:    10, // 2-byte bitsets
		Nodes:   []uint32{3, 4},
		Bitsets: [][]byte{{0xff, 0x03}, {0x01, 0x00}},
	}
	got := roundTrip(t, m).(*Vectors)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("got %+v", got)
	}
}

func TestEqSystemRoundTrip(t *testing.T) {
	m := &EqSystem{
		Frag:      4,
		Eqs:       []Equation{{Target: VarRef{0, 1}, Groups: [][]VarRef{{{1, 2}}}}},
		FalseVars: []VarRef{{2, 3}},
	}
	got := roundTrip(t, m).(*EqSystem)
	if got.Frag != 4 || len(got.Eqs) != 1 || len(got.FalseVars) != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestValuesMatchesControl(t *testing.T) {
	v := roundTrip(t, &Values{False: []VarRef{{1, 2}}}).(*Values)
	if len(v.False) != 1 || v.False[0] != (VarRef{1, 2}) {
		t.Fatalf("got %+v", v)
	}
	mm := roundTrip(t, &Matches{Frag: 3, Pairs: []VarRef{{0, 0}}}).(*Matches)
	if mm.Frag != 3 || len(mm.Pairs) != 1 {
		t.Fatalf("got %+v", mm)
	}
	c := roundTrip(t, &Control{Op: 9, Arg: 77, Flag: true}).(*Control)
	if c.Op != 9 || c.Arg != 77 || !c.Flag {
		t.Fatalf("got %+v", c)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},                                     // kind 0 invalid
		{99},                                    // unknown kind
		{byte(KindFalsify)},                     // truncated count
		{byte(KindFalsify), 255, 255, 255, 255}, // absurd count
		{byte(KindControl), 1},                  // short control
		append(Encode(&Falsify{Pairs: []VarRef{{1, 2}}}), 0xEE), // trailing
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}

func TestKindClassification(t *testing.T) {
	data := []Kind{KindFalsify, KindRankBatch, KindPush, KindReroute, KindSubgraph, KindVectors, KindEqSystem, KindValues}
	for _, k := range data {
		if !k.IsData() {
			t.Fatalf("%s should count as data shipment", k)
		}
	}
	for _, k := range []Kind{KindMatches, KindControl} {
		if k.IsData() {
			t.Fatalf("%s should not count as data shipment", k)
		}
	}
	if Kind(42).String() != "kind(42)" {
		t.Fatal("unknown kind String")
	}
}

// Property: random falsify and subgraph payloads round trip bit-exactly.
func TestQuickRoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fal := &Falsify{}
		for i := r.Intn(20); i > 0; i-- {
			fal.Pairs = append(fal.Pairs, VarRef{uint16(r.Intn(1 << 16)), r.Uint32()})
		}
		d1 := Encode(fal)
		p1, err := Decode(d1)
		if err != nil {
			return false
		}
		got1 := p1.(*Falsify)
		if len(got1.Pairs) != len(fal.Pairs) {
			return false
		}
		for i := range fal.Pairs {
			if got1.Pairs[i] != fal.Pairs[i] {
				return false
			}
		}
		// Re-encoding must be byte-identical (canonical form).
		if !bytes.Equal(Encode(p1), d1) {
			return false
		}
		sg := &Subgraph{}
		for i := r.Intn(12); i > 0; i-- {
			sg.Nodes = append(sg.Nodes, r.Uint32())
			sg.Labels = append(sg.Labels, uint16(r.Intn(1<<16)))
		}
		for i := r.Intn(12); i > 0; i-- {
			sg.Edges = append(sg.Edges, [2]uint32{r.Uint32(), r.Uint32()})
		}
		d2 := Encode(sg)
		p2, err := Decode(d2)
		if err != nil {
			return false
		}
		got := p2.(*Subgraph)
		if len(got.Nodes) != len(sg.Nodes) || len(got.Edges) != len(sg.Edges) {
			return false
		}
		return bytes.Equal(Encode(p2), d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsifySizeIsSmall(t *testing.T) {
	// The whole point of dGPM: a falsification costs 6 bytes, not a
	// subgraph. 100 falsifications ≈ 605 bytes.
	m := &Falsify{Pairs: make([]VarRef, 100)}
	if n := len(Encode(m)); n != 1+4+600 {
		t.Fatalf("encoded size = %d", n)
	}
}
