package wire

// Native Go fuzz targets for the wire codec. The decoder is the trust
// boundary of the simulated cluster — every byte a site receives goes
// through Decode — so corrupt or truncated input must produce an error,
// never a panic, and successful decodes must be canonical (re-encoding
// reproduces the input bit-for-bit; the byte accounting the paper's DS
// metric rests on would otherwise be ambiguous). Seed corpus lives in
// testdata/fuzz/<Target>/.

import (
	"bytes"
	"reflect"
	"testing"
)

// exemplars returns one representative payload per Kind; the round-trip
// test and the fuzz seeds share it. Extending Kind without extending
// this list fails TestRoundTripEveryKind.
func exemplars() map[Kind]Payload {
	return map[Kind]Payload{
		KindFalsify:   &Falsify{Pairs: []VarRef{{1, 2}, {65535, 4294967295}}},
		KindRankBatch: &RankBatch{Rank: 2, Pairs: []VarRef{{0, 7}}},
		KindPush: &Push{Origin: 3, Eqs: []Equation{
			{Target: VarRef{1, 10}, Groups: [][]VarRef{{{2, 11}, {2, 12}}, {{3, 13}}}},
		}},
		KindReroute:  &Reroute{Dest: 7, Nodes: []uint32{1, 2, 3}},
		KindSubgraph: &Subgraph{Nodes: []uint32{5, 9}, Labels: []uint16{1, 2}, Edges: [][2]uint32{{5, 9}}},
		KindVectors:  &Vectors{NumQ: 10, Nodes: []uint32{3}, Bitsets: [][]byte{{0xff, 0x03}}},
		KindEqSystem: &EqSystem{Frag: 4, Eqs: []Equation{{Target: VarRef{0, 1}, Groups: [][]VarRef{{{1, 2}}}}}, FalseVars: []VarRef{{2, 3}}},
		KindValues:   &Values{False: []VarRef{{1, 2}}},
		KindMatches:  &Matches{Frag: 3, Pairs: []VarRef{{0, 0}}},
		KindControl:  &Control{Op: 9, Arg: 77, Flag: true},
		KindDelta: &Delta{
			Dels:      [][2]uint32{{1, 2}, {3, 4}},
			Ins:       [][2]uint32{{5, 6}},
			InsLabels: []uint16{11},
			Watch:     []uint32{6},
			Unwatch:   []uint32{2},
		},
		KindBatch: &Batch{Msgs: []BatchMsg{
			{From: -1, To: 3, Data: Encode(&Control{Op: 1, Arg: 2})},
			{From: 3, To: 0, Data: Encode(&Falsify{Pairs: []VarRef{{1, 2}}})},
		}},
	}
}

// TestRoundTripEveryKind: every payload kind decodes back to a deeply
// equal value with a byte-identical re-encoding — and every kind the
// codec knows has an exemplar here.
func TestRoundTripEveryKind(t *testing.T) {
	ex := exemplars()
	for k := KindFalsify; k <= KindBatch; k++ {
		p, ok := ex[k]
		if !ok {
			t.Fatalf("kind %s has no round-trip exemplar", k)
		}
		if p.Kind() != k {
			t.Fatalf("exemplar for %s reports kind %s", k, p.Kind())
		}
		data := Encode(p)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", k, err)
		}
		if !reflect.DeepEqual(p, got) {
			t.Fatalf("%s: round trip changed payload:\nsent %#v\ngot  %#v", k, p, got)
		}
		if !bytes.Equal(Encode(got), data) {
			t.Fatalf("%s: re-encoding is not canonical", k)
		}
	}
}

// FuzzDecode: arbitrary bytes either fail to decode with an error or
// decode to a payload whose re-encoding is exactly the input.
func FuzzDecode(f *testing.F) {
	for _, p := range exemplars() {
		data := Encode(p)
		f.Add(data)
		// Truncations and corruptions of valid messages steer the fuzzer
		// toward the interesting prefixes.
		f.Add(data[:len(data)-1])
		f.Add(append(append([]byte(nil), data...), 0xEE))
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{byte(KindFalsify), 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data) // must never panic
		if err != nil {
			return
		}
		if p.Kind() != Kind(data[0]) {
			t.Fatalf("decoded kind %s from kind byte %d", p.Kind(), data[0])
		}
		if re := Encode(p); !bytes.Equal(re, data) {
			t.Fatalf("decode accepted non-canonical input:\nin  %x\nout %x", data, re)
		}
	})
}

// FuzzDeltaRoundTrip: structured fuzz over the new update payload —
// arbitrary edge/node lists survive the codec unchanged.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{9, 10}, []byte{11}, uint16(1))
	f.Add([]byte{}, []byte{}, []byte{}, uint16(0))
	f.Fuzz(func(t *testing.T, delBytes, insBytes, nodeBytes []byte, lbl uint16) {
		m := &Delta{}
		for i := 0; i+8 <= len(delBytes) && i < 32*8; i += 8 {
			m.Dels = append(m.Dels, [2]uint32{
				uint32(delBytes[i]) | uint32(delBytes[i+1])<<8 | uint32(delBytes[i+2])<<16 | uint32(delBytes[i+3])<<24,
				uint32(delBytes[i+4]) | uint32(delBytes[i+5])<<8 | uint32(delBytes[i+6])<<16 | uint32(delBytes[i+7])<<24,
			})
		}
		for i := 0; i+2 <= len(insBytes) && i < 32*2; i += 2 {
			m.Ins = append(m.Ins, [2]uint32{uint32(insBytes[i]), uint32(insBytes[i+1])})
			m.InsLabels = append(m.InsLabels, lbl)
		}
		for i, b := range nodeBytes {
			if i%2 == 0 {
				m.Watch = append(m.Watch, uint32(b))
			} else {
				m.Unwatch = append(m.Unwatch, uint32(b))
			}
		}
		data := Encode(m)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		d := got.(*Delta)
		if len(d.Dels) != len(m.Dels) || len(d.Ins) != len(m.Ins) ||
			len(d.Watch) != len(m.Watch) || len(d.Unwatch) != len(m.Unwatch) {
			t.Fatalf("lengths changed: %+v -> %+v", m, d)
		}
		if !bytes.Equal(Encode(d), data) {
			t.Fatal("re-encoding is not canonical")
		}
	})
}
