package partition

// The fragment topology index: the dense, query-independent view of a
// fragment that every evaluation engine otherwise rebuilds from the
// Succ/Labels maps on each query. A resident deployment answers many
// queries against the same fragment, so the index is built once, cached
// on the Fragment, and shared read-only; any fragment mutation drops
// the cache. Callers that mutate adjacency during evaluation (standing
// maintenance sessions) must copy the Succ/Pred rows they touch — the
// index itself is immutable.

import (
	"dgs/internal/graph"
)

// Index is an immutable dense snapshot of a fragment's topology.
// Visible nodes are indexed 0..len(Vis)-1 with the NL local nodes
// first, then the virtual nodes, in Fragment order (Local then
// Virtual).
type Index struct {
	// Vis lists local then virtual node IDs; VisIdx inverts it.
	Vis    []graph.NodeID
	VisIdx map[graph.NodeID]int32
	// NL is the number of local nodes (the local prefix of Vis).
	NL int32
	// IsIn marks the local indices that are in-nodes.
	IsIn []bool
	// Succ[li] and Pred[vi] are the dense adjacency rows (indices into
	// Vis); Succ covers local sources only.
	Succ [][]int32
	Pred [][]int32
	// Labels[i] is the label of Vis[i].
	Labels []graph.Label
	// ByLabel buckets visible indices per label, ascending — so each
	// bucket's local candidates form its prefix, ending at the first
	// index ≥ NL.
	ByLabel map[graph.Label][]int32
	// InOf and VirtOf count, per label, the in-node and virtual-node
	// candidates (the benefit function's per-label tallies).
	InOf   map[graph.Label]int
	VirtOf map[graph.Label]int
}

// Index returns the fragment's cached topology index, building it on
// first use. The returned value is shared and must be treated as
// read-only; it is dropped whenever the fragment mutates.
func (f *Fragment) Index() *Index {
	f.idxMu.Lock()
	defer f.idxMu.Unlock()
	if f.idx == nil {
		f.idx = f.buildIndex()
	}
	return f.idx
}

// invalidateIndex drops the cached topology index; every mutating
// Fragment method calls it.
func (f *Fragment) invalidateIndex() {
	f.idxMu.Lock()
	f.idx = nil
	f.idxMu.Unlock()
}

func (f *Fragment) buildIndex() *Index {
	nl := len(f.Local)
	nvis := nl + len(f.Virtual)
	ix := &Index{
		Vis:     make([]graph.NodeID, 0, nvis),
		VisIdx:  make(map[graph.NodeID]int32, nvis),
		NL:      int32(nl),
		IsIn:    make([]bool, nl),
		Succ:    make([][]int32, nl),
		Pred:    make([][]int32, nvis),
		Labels:  make([]graph.Label, nvis),
		ByLabel: make(map[graph.Label][]int32),
		InOf:    make(map[graph.Label]int),
		VirtOf:  make(map[graph.Label]int),
	}
	ix.Vis = append(ix.Vis, f.Local...)
	ix.Vis = append(ix.Vis, f.Virtual...)
	for i, v := range ix.Vis {
		ix.VisIdx[v] = int32(i)
		ix.Labels[i] = f.Labels[v]
	}
	for _, v := range f.InNodes {
		ix.IsIn[ix.VisIdx[v]] = true
	}
	for li := 0; li < nl; li++ {
		ws := f.Succ[f.Local[li]]
		if len(ws) == 0 {
			continue
		}
		row := make([]int32, len(ws))
		for i, w := range ws {
			wi := ix.VisIdx[w]
			row[i] = wi
			ix.Pred[wi] = append(ix.Pred[wi], int32(li))
		}
		ix.Succ[li] = row
	}
	for i, l := range ix.Labels {
		ix.ByLabel[l] = append(ix.ByLabel[l], int32(i))
		if i >= nl {
			ix.VirtOf[l]++
		} else if ix.IsIn[i] {
			ix.InOf[l]++
		}
	}
	return ix
}
