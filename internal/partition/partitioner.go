package partition

// The Partitioner planning seam. Fragmentation quality decides every
// cost bound of the paper — response time, data shipment and the wire
// bytes a networked deployment actually moves are all parameterized by
// the boundary size |Vf|/|Ef| — so strategies are first-class,
// registered plugins rather than a fixed menu of functions. The
// registry mirrors the algorithm SiteFactory registry in
// internal/cluster: each strategy registers itself under a stable name
// in init, callers resolve by name (dgs.PartitionWith, dgsrun -part,
// the "partition" bench group), and PartitionBy stamps the produced
// Fragmentation with its strategy name and build time so downstream
// measurements stay attributable to the fragmentation that produced
// them.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dgs/internal/graph"
)

// Options tunes a Partitioner run. The zero value asks for the
// strategy's defaults; strategies ignore knobs that do not apply to
// them (Blocks has no randomness, ConnectedTree no target ratio).
type Options struct {
	// Seed drives every randomized choice. A fixed seed yields a
	// deterministic assignment for every registered strategy.
	Seed int64

	// Metric selects the boundary ratio targeted by "targetratio"
	// and steered by Refine: ByVf (|Vf|/|V|) or ByEf (|Ef|/|E|).
	Metric Metric

	// Target is the boundary ratio "targetratio" aims for.
	Target float64

	// Slack bounds fragment imbalance for the quality-first
	// strategies (ldg, fennel, refinement): no fragment may hold more
	// than ceil((1+Slack)·|V|/n) local nodes. 0 means the default 10%.
	Slack float64

	// RefinePasses runs up to that many incremental plurality-vote
	// refinement passes (see Refine) after the base assignment, for
	// the strategies where refinement preserves their contract
	// (random, blocks, ldg, fennel). 0 disables refinement;
	// "targetratio", "chain" and "tree" ignore it.
	RefinePasses int
}

// DefaultSlack is the balance slack used when Options.Slack is unset.
const DefaultSlack = 0.10

func (o Options) slack() float64 {
	if o.Slack <= 0 {
		return DefaultSlack
	}
	return o.Slack
}

func (o Options) rng() *rand.Rand { return rand.New(rand.NewSource(o.Seed)) }

// capFor is the hard per-fragment node capacity implied by a slack:
// ceil((1+slack)·nn/n), exactly the bound the Options documentation
// promises.
func capFor(nn, n int, slack float64) int {
	c := (int(float64(nn)*(1+slack)) + n - 1) / n
	if c < 1 {
		c = 1
	}
	return c
}

// Partitioner plans an n-way fragmentation of a graph. Implementations
// must be deterministic for a fixed Options.Seed and safe for
// concurrent use (they hold no per-run state).
type Partitioner interface {
	// Name is the registry key, stable across releases ("random",
	// "ldg", ...).
	Name() string
	// Partition fragments g into (up to) n fragments under opts.
	Partition(g *graph.Graph, n int, opts Options) (*Fragmentation, error)
}

var (
	partRegMu sync.Mutex
	partReg   = make(map[string]Partitioner)
)

// RegisterPartitioner installs a strategy under p.Name(). Strategies
// register themselves in init; duplicate names panic.
func RegisterPartitioner(p Partitioner) {
	partRegMu.Lock()
	defer partRegMu.Unlock()
	if _, dup := partReg[p.Name()]; dup {
		panic(fmt.Sprintf("partition: partitioner %q registered twice", p.Name()))
	}
	partReg[p.Name()] = p
}

// ResolvePartitioner looks a registered strategy up by name.
func ResolvePartitioner(name string) (Partitioner, bool) {
	partRegMu.Lock()
	defer partRegMu.Unlock()
	p, ok := partReg[name]
	return p, ok
}

// Partitioners lists the registered strategy names, sorted.
func Partitioners() []string {
	partRegMu.Lock()
	defer partRegMu.Unlock()
	names := make([]string, 0, len(partReg))
	for n := range partReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PartitionBy resolves name against the registry, runs the strategy,
// and stamps the result with the strategy name and the wall time of
// planning + Build — the metadata the bench recorder attaches to every
// measured point.
func PartitionBy(g *graph.Graph, name string, n int, opts Options) (*Fragmentation, error) {
	p, ok := ResolvePartitioner(name)
	if !ok {
		return nil, fmt.Errorf("partition: unknown partitioner %q (have %v)", name, Partitioners())
	}
	start := time.Now()
	fr, err := p.Partition(g, n, opts)
	if err != nil {
		return nil, err
	}
	fr.Strategy = name
	fr.BuildTime = time.Since(start)
	return fr, nil
}

// funcPartitioner adapts a planning function to the Partitioner seam.
type funcPartitioner struct {
	name string
	fn   func(g *graph.Graph, n int, opts Options) (*Fragmentation, error)
}

func (p funcPartitioner) Name() string { return p.name }
func (p funcPartitioner) Partition(g *graph.Graph, n int, opts Options) (*Fragmentation, error) {
	return p.fn(g, n, opts)
}

// refineAndBuild optionally runs the incremental refinement pass over a
// planned assignment, then builds the fragmentation. Shared by the
// strategies whose contract survives arbitrary node moves.
func refineAndBuild(g *graph.Graph, assign []int32, n int, opts Options) (*Fragmentation, error) {
	if opts.RefinePasses > 0 && n > 1 {
		Refine(g, assign, n, opts.Metric, opts.RefinePasses, opts.slack(), opts.rng())
	}
	return Build(g, assign, n)
}

func init() {
	RegisterPartitioner(funcPartitioner{"random", func(g *graph.Graph, n int, opts Options) (*Fragmentation, error) {
		if err := checkN(n); err != nil {
			return nil, err
		}
		assign, err := randomAssign(g, n, opts.rng())
		if err != nil {
			return nil, err
		}
		return refineAndBuild(g, assign, n, opts)
	}})
	RegisterPartitioner(funcPartitioner{"blocks", func(g *graph.Graph, n int, opts Options) (*Fragmentation, error) {
		if err := checkN(n); err != nil {
			return nil, err
		}
		return refineAndBuild(g, blockAssign(g.NumNodes(), n), n, opts)
	}})
	RegisterPartitioner(funcPartitioner{"targetratio", func(g *graph.Graph, n int, opts Options) (*Fragmentation, error) {
		return TargetRatio(g, n, opts.Metric, opts.Target, opts.rng())
	}})
	RegisterPartitioner(funcPartitioner{"chain", func(g *graph.Graph, n int, opts Options) (*Fragmentation, error) {
		return Chain(g, n)
	}})
	RegisterPartitioner(funcPartitioner{"tree", func(g *graph.Graph, n int, opts Options) (*Fragmentation, error) {
		return ConnectedTree(g, n)
	}})
	RegisterPartitioner(funcPartitioner{"ldg", func(g *graph.Graph, n int, opts Options) (*Fragmentation, error) {
		if err := checkN(n); err != nil {
			return nil, err
		}
		assign := streamAssign(g, n, opts.slack(), opts.rng(), ldgScore(g, n, opts.slack()))
		return refineAndBuild(g, assign, n, opts)
	}})
	RegisterPartitioner(funcPartitioner{"fennel", func(g *graph.Graph, n int, opts Options) (*Fragmentation, error) {
		if err := checkN(n); err != nil {
			return nil, err
		}
		assign := streamAssign(g, n, opts.slack(), opts.rng(), fennelScore(g, n))
		return refineAndBuild(g, assign, n, opts)
	}})
}

func checkN(n int) error {
	if n <= 0 {
		return fmt.Errorf("partition: need n ≥ 1, got %d", n)
	}
	return nil
}
