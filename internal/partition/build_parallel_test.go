package partition

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestBuildParallelMatchesSerial: the worker-pool Build must be
// byte-for-byte identical to a single-worker build — same fragments,
// same boundary stats, same watcher lists — for any assignment.
func TestBuildParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, nn := range []int{100, 3000} { // below and above the serial cutoff
		g := randomGraph(r, nn, 4*nn)
		for _, n := range []int{1, 3, 16} {
			assign, err := randomAssign(g, n, r)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := buildWorkers(g, assign, n, 1)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := buildWorkers(g, assign, n, 8)
			if err != nil {
				t.Fatal(err)
			}
			if serial.vf != parallel.vf || serial.ef != parallel.ef {
				t.Fatalf("|V|=%d n=%d: boundary stats diverge: vf %d/%d ef %d/%d",
					nn, n, serial.vf, parallel.vf, serial.ef, parallel.ef)
			}
			for i := range serial.Frags {
				a, b := serial.Frags[i], parallel.Frags[i]
				if !reflect.DeepEqual(a.Local, b.Local) || !reflect.DeepEqual(a.Virtual, b.Virtual) ||
					!reflect.DeepEqual(a.InNodes, b.InNodes) || !reflect.DeepEqual(a.InWatchers, b.InWatchers) ||
					!reflect.DeepEqual(a.Succ, b.Succ) || !reflect.DeepEqual(a.Labels, b.Labels) ||
					!reflect.DeepEqual(a.Owner, b.Owner) || !reflect.DeepEqual(a.crossCnt, b.crossCnt) ||
					a.numEdges != b.numEdges || a.numCrossing != b.numCrossing {
					t.Fatalf("|V|=%d n=%d: fragment %d diverges between serial and parallel build", nn, n, i)
				}
			}
			if err := parallel.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// BenchmarkBuild256 measures the worker-pool speedup for the 256-site
// reference fragmentation.
func BenchmarkBuild256(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	g := localityGraph(r, 100_000, 500_000, 40)
	assign, err := randomAssign(g, 256, r)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, 0} { // 0 = GOMAXPROCS via Build
		name := fmt.Sprintf("workers=%d", workers)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var fr *Fragmentation
				var err error
				if workers == 0 {
					fr, err = Build(g, assign, 256)
				} else {
					fr, err = buildWorkers(g, assign, 256, workers)
				}
				if err != nil || fr.NumFragments() != 256 {
					b.Fatal(err)
				}
			}
		})
	}
}
