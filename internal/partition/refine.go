package partition

// Incremental boundary bookkeeping for partition refinement. The
// previous refinement loop recomputed the boundary ratio by scanning
// all of E after (batches of) relocations — O(|E|) per check, which
// dominates TargetRatio on large graphs. cutState instead keeps, per
// node, the count of crossing edges entering it; a relocation of node v
// updates exactly the counters of v and its neighbors, so each move is
// O(deg(v)) and reading |Ef|, |Vf| or either ratio is O(1). The
// equivalence of the counters with a direct recount is asserted by
// TestCutStateMatchesRescan, and BenchmarkRefineIncrementalVsRescan
// measures the asymptotic win.

import (
	"math/rand"

	"dgs/internal/graph"
)

// cutState tracks the boundary of a node→fragment assignment under
// single-node relocations. crossIn[w] counts the crossing edges (u,w)
// with assign[u] != assign[w]; |Vf| is the number of nodes with
// crossIn > 0 and |Ef| their sum. The graph's reverse adjacency must be
// materialized (EnsureReverse) before newCutState.
type cutState struct {
	g       *graph.Graph
	assign  []int32
	crossIn []int32 // per node: crossing edges into it
	sizes   []int   // per fragment: |Vi|
	ef      int
	vf      int
}

// newCutState scans E once to seed the counters — the only O(|E|) step
// of a refinement run.
func newCutState(g *graph.Graph, assign []int32, n int) *cutState {
	cs := &cutState{
		g:       g,
		assign:  assign,
		crossIn: make([]int32, g.NumNodes()),
		sizes:   make([]int, n),
	}
	for _, a := range assign {
		cs.sizes[a]++
	}
	g.Edges(func(v, w graph.NodeID) bool {
		if assign[v] != assign[w] {
			cs.ef++
			cs.crossIn[w]++
			if cs.crossIn[w] == 1 {
				cs.vf++
			}
		}
		return true
	})
	return cs
}

// move relocates v to fragment `to`, updating the boundary counters of
// v and its (in+out) neighbors in O(deg(v)).
func (cs *cutState) move(v graph.NodeID, to int32) {
	from := cs.assign[v]
	if from == to {
		return
	}
	for _, w := range cs.g.Succ(v) {
		if w == v {
			continue // a self-loop never crosses
		}
		was, now := from != cs.assign[w], to != cs.assign[w]
		if was == now {
			continue
		}
		if now {
			cs.ef++
			cs.crossIn[w]++
			if cs.crossIn[w] == 1 {
				cs.vf++
			}
		} else {
			cs.ef--
			cs.crossIn[w]--
			if cs.crossIn[w] == 0 {
				cs.vf--
			}
		}
	}
	for _, u := range cs.g.Pred(v) {
		if u == v {
			continue
		}
		was, now := cs.assign[u] != from, cs.assign[u] != to
		if was == now {
			continue
		}
		if now {
			cs.ef++
			cs.crossIn[v]++
			if cs.crossIn[v] == 1 {
				cs.vf++
			}
		} else {
			cs.ef--
			cs.crossIn[v]--
			if cs.crossIn[v] == 0 {
				cs.vf--
			}
		}
	}
	cs.sizes[from]--
	cs.sizes[to]++
	cs.assign[v] = to
}

// ratio reads the tracked boundary ratio in O(1).
func (cs *cutState) ratio(metric Metric) float64 {
	if metric == ByVf {
		if cs.g.NumNodes() == 0 {
			return 0
		}
		return float64(cs.vf) / float64(cs.g.NumNodes())
	}
	if cs.g.NumEdges() == 0 {
		return 0
	}
	return float64(cs.ef) / float64(cs.g.NumEdges())
}

// Refine runs up to `passes` plurality-vote passes over assign in
// place: each node moves to the fragment holding the plurality of its
// (in+out) neighbors when that strictly improves locality and the
// target fragment stays within the slack capacity — the Ja-be-Ja-style
// mover of the experiments' setup [27], now with incremental boundary
// bookkeeping instead of an O(|E|) rescan per step. It returns the
// number of relocations performed. n must match the fragment count of
// assign; rng only fixes the visit order.
func Refine(g *graph.Graph, assign []int32, n int, metric Metric, passes int, slack float64, rng *rand.Rand) int {
	if n <= 1 || g.NumNodes() == 0 {
		return 0
	}
	g.EnsureReverse()
	cs := newCutState(g, assign, n)
	return refineToTarget(cs, metric, 0, passes, capFor(g.NumNodes(), n, slack), rng)
}

// refineToTarget is the shared mover behind Refine and the
// ratio-lowering path of TargetRatio: plurality-vote passes that stop
// early once cs.ratio(metric) drops to target (checked in O(1) per
// relocation) or a full pass makes no move.
func refineToTarget(cs *cutState, metric Metric, target float64, passes int, maxSize int, rng *rand.Rand) int {
	g, assign := cs.g, cs.assign
	nn := g.NumNodes()
	order := rng.Perm(nn)
	votes := make(map[int32]int, 8)
	moves := 0
	if cs.ratio(metric) <= target {
		return 0
	}
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for _, vi := range order {
			v := graph.NodeID(vi)
			home := assign[v]
			for k := range votes {
				delete(votes, k)
			}
			deg := 0
			for _, w := range g.Succ(v) {
				if w != v {
					votes[assign[w]]++
					deg++
				}
			}
			for _, u := range g.Pred(v) {
				if u != v {
					votes[assign[u]]++
					deg++
				}
			}
			if deg == 0 {
				continue
			}
			best, bestCnt := home, votes[home]
			for f, c := range votes {
				if c > bestCnt || (c == bestCnt && f < best) {
					best, bestCnt = f, c
				}
			}
			if best == home || bestCnt <= votes[home] || cs.sizes[best]+1 > maxSize {
				continue
			}
			cs.move(v, best)
			moved++
			moves++
			if cs.ratio(metric) <= target {
				return moves
			}
		}
		if moved == 0 {
			return moves
		}
	}
	return moves
}
