package partition

// Quality-first streaming partitioners. Both place nodes one at a time
// (in a seeded random order, so a fixed seed is deterministic) and
// score every fragment by how many already-placed neighbors it holds,
// discounted by how full it is:
//
//   - LDG (linear deterministic greedy, Stanton & Kliot KDD'12):
//     score_i = cnt_i · (1 − size_i/cap), cap = (1+slack)·|V|/n.
//   - Fennel (Tsourakakis et al. WSDM'14): score_i = cnt_i −
//     α·γ·size_i^(γ−1) with γ = 3/2 and α = √n·|E|/|V|^(3/2), the
//     interpolation between cut and balance objectives from the paper.
//
// Neighborhoods are undirected (out- plus in-edges): a crossing edge
// costs the same in either direction, and the paper's |Vf| counts
// boundary nodes regardless of orientation. A hard capacity cap keeps
// every fragment within the balance slack, so quality never buys
// imbalance the deployment would pay for in |Fm|.

import (
	"math"
	"math/rand"

	"dgs/internal/graph"
)

// ldgScore is the LDG objective: neighbors held, linearly discounted by
// fill toward the capacity cap.
func ldgScore(g *graph.Graph, n int, slack float64) func(cnt, size int) float64 {
	cap_ := float64(capFor(g.NumNodes(), n, slack))
	return func(cnt, size int) float64 {
		return float64(cnt) * (1 - float64(size)/cap_)
	}
}

// fennelScore is the Fennel objective with γ = 3/2: neighbors held
// minus the marginal balance cost α·γ·size^(γ−1).
func fennelScore(g *graph.Graph, n int) func(cnt, size int) float64 {
	nn := g.NumNodes()
	if nn == 0 {
		return func(cnt, size int) float64 { return float64(cnt) }
	}
	alpha := math.Sqrt(float64(n)) * float64(g.NumEdges()) / math.Pow(float64(nn), 1.5)
	return func(cnt, size int) float64 {
		return float64(cnt) - alpha*1.5*math.Sqrt(float64(size))
	}
}

// streamAssign runs one streaming pass over the nodes in a seeded
// random order. Each node goes to the fragment maximizing score among
// those below the capacity cap; ties break toward the smaller, then
// lower-numbered fragment, so the result is deterministic for a fixed
// rng seed.
func streamAssign(g *graph.Graph, n int, slack float64, rng *rand.Rand, score func(cnt, size int) float64) []int32 {
	nn := g.NumNodes()
	assign := make([]int32, nn)
	if n == 1 || nn == 0 {
		return assign
	}
	g.EnsureReverse()
	cap_ := capFor(nn, n, slack)
	sizes := make([]int, n)
	placed := make([]bool, nn)
	cnt := make([]int, n)
	touched := make([]int32, 0, 16)
	for _, vi := range rng.Perm(nn) {
		v := graph.NodeID(vi)
		for _, f := range touched {
			cnt[f] = 0
		}
		touched = touched[:0]
		for _, w := range g.Succ(v) {
			if w != v && placed[w] {
				if cnt[assign[w]] == 0 {
					touched = append(touched, assign[w])
				}
				cnt[assign[w]]++
			}
		}
		for _, u := range g.Pred(v) {
			if u != v && placed[u] {
				if cnt[assign[u]] == 0 {
					touched = append(touched, assign[u])
				}
				cnt[assign[u]]++
			}
		}
		best := int32(-1)
		bestScore := math.Inf(-1)
		for f := 0; f < n; f++ {
			if sizes[f] >= cap_ {
				continue
			}
			s := score(cnt[f], sizes[f])
			if s > bestScore ||
				(s == bestScore && best >= 0 && (sizes[f] < sizes[best] || (sizes[f] == sizes[best] && int32(f) < best))) {
				best, bestScore = int32(f), s
			}
		}
		if best < 0 {
			// Unreachable: total capacity exceeds |V| by construction.
			best = int32(vi % n)
		}
		assign[v] = best
		sizes[best]++
		placed[v] = true
	}
	return assign
}
