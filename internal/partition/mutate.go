package partition

// In-place fragment mutation under live edge updates. A deployment
// routes each update to the fragment owning the edge's source node; the
// owning site calls DeleteEdge/InsertEdge on its resident Fragment, and
// — when the update changes which nodes it holds as virtual — notifies
// the target node's owner, which calls AddWatcher/RemoveWatcher. This is
// the distributed maintenance of the §2.2 boundary structure (Virtual,
// InNodes, InWatchers): every invariant Validate checks is preserved
// batch by batch.
//
// Node sets and labels are fixed; only edges change. The caller (the
// deployment's update session) is responsible for serializing mutations
// against in-flight queries.

import (
	"fmt"
	"sort"

	"dgs/internal/graph"
)

// DeleteEdge removes the edge (v, w) from the fragment; v must be local
// and the edge present. It reports whether w thereby stopped being one
// of the fragment's virtual nodes, in which case the caller must send a
// RemoveWatcher notification to w's owner.
func (f *Fragment) DeleteEdge(v, w graph.NodeID) (droppedVirtual bool, err error) {
	if !f.IsLocal(v) {
		return false, fmt.Errorf("partition: fragment %d asked to delete (%d,%d) but %d is not local", f.ID, v, w, v)
	}
	row := f.Succ[v]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= w })
	if i >= len(row) || row[i] != w {
		return false, fmt.Errorf("partition: fragment %d has no edge (%d,%d)", f.ID, v, w)
	}
	f.invalidateIndex()
	// Copy-on-write: rows may still alias the Build-time CSR arrays.
	nrow := make([]graph.NodeID, 0, len(row)-1)
	nrow = append(nrow, row[:i]...)
	nrow = append(nrow, row[i+1:]...)
	if len(nrow) == 0 {
		delete(f.Succ, v)
	} else {
		f.Succ[v] = nrow
	}
	f.numEdges--
	if f.IsLocal(w) {
		return false, nil
	}
	f.numCrossing--
	f.crossCnt[w]--
	if f.crossCnt[w] > 0 {
		return false, nil
	}
	delete(f.crossCnt, w)
	delete(f.Labels, w)
	delete(f.Owner, w)
	f.Virtual = removeSorted(f.Virtual, w)
	return true, nil
}

// InsertEdge adds the edge (v, w); v must be local and the edge absent.
// For a crossing edge the caller supplies w's label and owning fragment
// (the routing metadata a real system resolves from the edge's IRI). It
// reports whether w thereby became a new virtual node, in which case the
// caller must send an AddWatcher notification to w's owner.
func (f *Fragment) InsertEdge(v, w graph.NodeID, wLabel graph.Label, wOwner int) (addedVirtual bool, err error) {
	if !f.IsLocal(v) {
		return false, fmt.Errorf("partition: fragment %d asked to insert (%d,%d) but %d is not local", f.ID, v, w, v)
	}
	row := f.Succ[v]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= w })
	if i < len(row) && row[i] == w {
		return false, fmt.Errorf("partition: fragment %d already has edge (%d,%d)", f.ID, v, w)
	}
	f.invalidateIndex()
	nrow := make([]graph.NodeID, 0, len(row)+1)
	nrow = append(nrow, row[:i]...)
	nrow = append(nrow, w)
	nrow = append(nrow, row[i:]...)
	f.Succ[v] = nrow
	f.numEdges++
	if f.IsLocal(w) {
		return false, nil
	}
	f.numCrossing++
	f.crossCnt[w]++
	if f.crossCnt[w] > 1 {
		return false, nil
	}
	f.Labels[w] = wLabel
	f.Owner[w] = wOwner
	f.Virtual = insertSorted(f.Virtual, w)
	return true, nil
}

// AddWatcher records that fragment id now holds local node v as virtual.
// It reports whether v thereby became an in-node. Watcher lists are kept
// sorted, so membership and insertion are binary searches — this sits on
// the Apply hot path alongside insertSorted/removeSorted.
func (f *Fragment) AddWatcher(v graph.NodeID, id int) (becameIn bool) {
	ws := f.InWatchers[v]
	i := sort.SearchInts(ws, id)
	if i < len(ws) && ws[i] == id {
		return false
	}
	f.invalidateIndex()
	ws = append(ws, 0)
	copy(ws[i+1:], ws[i:])
	ws[i] = id
	f.InWatchers[v] = ws
	if len(ws) == 1 {
		f.InNodes = insertSorted(f.InNodes, v)
		return true
	}
	return false
}

// RemoveWatcher records that fragment id no longer holds v as virtual.
// It reports whether v thereby stopped being an in-node.
func (f *Fragment) RemoveWatcher(v graph.NodeID, id int) (droppedIn bool) {
	ws := f.InWatchers[v]
	if i := sort.SearchInts(ws, id); i < len(ws) && ws[i] == id {
		f.invalidateIndex()
		ws = append(ws[:i], ws[i+1:]...)
	}
	if len(ws) > 0 {
		f.InWatchers[v] = ws
		return false
	}
	if _, tracked := f.InWatchers[v]; !tracked {
		return false
	}
	delete(f.InWatchers, v)
	f.InNodes = removeSorted(f.InNodes, v)
	return true
}

// Overlay returns the fragmentation's live-update overlay over G,
// creating it on first use. The deployment validates and records every
// applied batch here; fragments carry the same edits site-locally.
func (fr *Fragmentation) Overlay() *graph.Overlay {
	if fr.ov == nil {
		fr.ov = graph.NewOverlay(fr.G)
	}
	return fr.ov
}

// CurrentGraph returns the graph as of all applied updates — G itself
// when no update has been applied, else the materialized (and cached)
// overlay.
func (fr *Fragmentation) CurrentGraph() *graph.Graph {
	if fr.ov == nil {
		return fr.G
	}
	return fr.ov.Materialize()
}

// CurrentNumEdges reports |E| of the current graph without
// materializing.
func (fr *Fragmentation) CurrentNumEdges() int {
	if fr.ov == nil {
		return fr.G.NumEdges()
	}
	return fr.ov.NumEdges()
}

// RecountBoundary refreshes the |Vf| and |Ef| statistics from the
// (mutated) fragments: in-node sets are disjoint across fragments, so
// |Vf| is their summed size, and |Ef| sums the per-fragment crossing
// counts. Called by the deployment after an update batch quiesces.
func (fr *Fragmentation) RecountBoundary() {
	vf, ef := 0, 0
	for _, f := range fr.Frags {
		vf += len(f.InNodes)
		ef += f.numCrossing
	}
	fr.vf, fr.ef = vf, ef
}

func insertSorted(s []graph.NodeID, v graph.NodeID) []graph.NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []graph.NodeID, v graph.NodeID) []graph.NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i >= len(s) || s[i] != v {
		return s
	}
	return append(s[:i], s[i+1:]...)
}
