package partition

import (
	"math/rand"
	"reflect"
	"testing"

	"dgs/internal/graph"
)

func TestPartitionerRegistry(t *testing.T) {
	want := []string{"blocks", "chain", "fennel", "ldg", "random", "targetratio", "tree"}
	got := Partitioners()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("registered partitioners = %v, want %v", got, want)
	}
	for _, name := range want {
		if _, ok := ResolvePartitioner(name); !ok {
			t.Fatalf("ResolvePartitioner(%q) failed", name)
		}
	}
	//lint:allow regconsistent — probes the unknown-partitioner error path
	if _, err := PartitionBy(randomGraph(rand.New(rand.NewSource(1)), 10, 20), "nope", 2, Options{}); err == nil {
		t.Fatal("unknown partitioner accepted")
	}
}

func TestPartitionByStampsMetadata(t *testing.T) {
	g := localityGraph(rand.New(rand.NewSource(3)), 500, 2000, 20)
	fr, err := PartitionBy(g, "ldg", 8, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Strategy != "ldg" {
		t.Fatalf("Strategy = %q", fr.Strategy)
	}
	if fr.BuildTime <= 0 {
		t.Fatalf("BuildTime = %v", fr.BuildTime)
	}
	fr2, err := FromAssign(g, fr.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Strategy != "custom" {
		t.Fatalf("FromAssign Strategy = %q", fr2.Strategy)
	}
}

// dagGraph emits only forward edges (v < w), so the graph is acyclic.
func dagGraph(r *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder()
	labels := []string{"A", "B", "C"}
	for i := 0; i < n; i++ {
		b.AddNode(labels[r.Intn(len(labels))])
	}
	for i := 0; i < m; i++ {
		v := r.Intn(n - 1)
		w := v + 1 + r.Intn(n-v-1)
		b.AddEdge(graph.NodeID(v), graph.NodeID(w))
	}
	return b.MustBuild()
}

// treeGraph emits a random rooted tree: each node's parent is a random
// earlier node.
func treeGraph(r *rand.Rand, n int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode("A")
	}
	for v := 1; v < n; v++ {
		b.AddEdge(graph.NodeID(r.Intn(v)), graph.NodeID(v))
	}
	return b.MustBuild()
}

// TestPartitionerProperties is the registry-wide property test: every
// registered strategy, on seeded random/DAG/tree graphs, must produce a
// Validate-clean fragmentation, hold its balance contract, be
// deterministic for a fixed seed, and round-trip through
// FromAssign(Assignment()).
func TestPartitionerProperties(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	graphs := map[string]*graph.Graph{
		"random": randomGraph(r, 300, 1200),
		"dag":    dagGraph(r, 300, 900),
		"tree":   treeGraph(r, 300),
	}
	const n = 6
	opts := Options{Seed: 17, Metric: ByVf, Target: 0.3}
	for _, name := range Partitioners() {
		for gname, g := range graphs {
			t.Run(name+"/"+gname, func(t *testing.T) {
				if name == "tree" && gname != "tree" {
					if _, err := PartitionBy(g, name, n, opts); err == nil {
						t.Fatal("tree partitioner accepted a non-tree graph")
					}
					return
				}
				fr, err := PartitionBy(g, name, n, opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := fr.Validate(); err != nil {
					t.Fatalf("Validate: %v", err)
				}
				// Determinism: a second run with the same seed yields the
				// identical assignment.
				fr2, err := PartitionBy(g, name, n, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(fr.Assign, fr2.Assign) {
					t.Fatal("assignment not deterministic for a fixed seed")
				}
				// Balance contracts: random is ±1-balanced; the streaming
				// strategies must respect the slack capacity.
				sizes := fr.FragmentSizes()
				switch name {
				case "random":
					if sizes[0]-sizes[len(sizes)-1] > 1 {
						t.Fatalf("random unbalanced: %v", sizes)
					}
				case "ldg", "fennel":
					if cap_ := capFor(g.NumNodes(), n, opts.slack()); sizes[0] > cap_ {
						t.Fatalf("%s exceeds capacity: max %d > %d", name, sizes[0], cap_)
					}
				}
				// FromAssign(Assignment()) round-trips the boundary structure.
				rt, err := FromAssign(g, append([]int32(nil), fr.Assign...))
				if err != nil {
					t.Fatal(err)
				}
				if rt.Vf() != fr.Vf() || rt.Ef() != fr.Ef() {
					t.Fatalf("round-trip boundary mismatch: Vf %d/%d Ef %d/%d", rt.Vf(), fr.Vf(), rt.Ef(), fr.Ef())
				}
				if err := rt.Validate(); err != nil {
					t.Fatalf("round-trip Validate: %v", err)
				}
			})
		}
	}
}

// TestStreamingBeatsRandomCut is the quality claim in miniature: on a
// locality-biased graph, one LDG/Fennel streaming pass must produce a
// strictly smaller |Ef| than a balanced random assignment.
func TestStreamingBeatsRandomCut(t *testing.T) {
	g := localityGraph(rand.New(rand.NewSource(5)), 2000, 10000, 25)
	const n = 16
	base, err := PartitionBy(g, "random", n, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ldg", "fennel"} {
		fr, err := PartitionBy(g, name, n, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if fr.Ef() >= base.Ef() {
			t.Fatalf("%s cut %d not below random cut %d", name, fr.Ef(), base.Ef())
		}
		t.Logf("%s: Ef %d vs random %d (%.1f%%)", name, fr.Ef(), base.Ef(), 100*float64(fr.Ef())/float64(base.Ef()))
	}
}

// TestRefinePassesOption: refinement must not raise the cut and must
// keep the result Validate-clean for the strategies that accept it.
func TestRefinePassesOption(t *testing.T) {
	g := communityGraph(rand.New(rand.NewSource(13)), 600, 3600)
	for _, name := range []string{"random", "blocks", "ldg", "fennel"} {
		plain, err := PartitionBy(g, name, 6, Options{Seed: 5, Metric: ByEf})
		if err != nil {
			t.Fatal(err)
		}
		refined, err := PartitionBy(g, name, 6, Options{Seed: 5, Metric: ByEf, RefinePasses: 10})
		if err != nil {
			t.Fatal(err)
		}
		if refined.Ef() > plain.Ef() {
			t.Fatalf("%s: refinement raised the cut %d -> %d", name, plain.Ef(), refined.Ef())
		}
		if err := refined.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
