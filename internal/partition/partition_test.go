package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dgs/internal/graph"
)

func randomGraph(r *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder()
	labels := []string{"A", "B", "C"}
	for i := 0; i < n; i++ {
		b.AddNode(labels[r.Intn(len(labels))])
	}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)))
	}
	return b.MustBuild()
}

func TestBuildTwoFragments(t *testing.T) {
	// 0 -> 1 -> 2 -> 3, split {0,1} | {2,3}.
	b := graph.NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddNode("A")
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	fr, err := Build(g, []int32{0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
	if fr.Ef() != 1 || fr.Vf() != 1 {
		t.Fatalf("Ef=%d Vf=%d, want 1,1", fr.Ef(), fr.Vf())
	}
	f0, f1 := fr.Frags[0], fr.Frags[1]
	if len(f0.Virtual) != 1 || f0.Virtual[0] != 2 {
		t.Fatalf("F0.O = %v", f0.Virtual)
	}
	if len(f1.InNodes) != 1 || f1.InNodes[0] != 2 {
		t.Fatalf("F1.I = %v", f1.InNodes)
	}
	if got := f1.InWatchers[2]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("watchers of 2 = %v", got)
	}
	if f0.Owner[2] != 1 {
		t.Fatalf("owner of 2 = %d", f0.Owner[2])
	}
	if !f0.IsLocal(0) || f0.IsLocal(2) || !f0.IsVirtual(2) || f0.IsVirtual(0) {
		t.Fatal("IsLocal/IsVirtual wrong")
	}
	if f0.NumCrossing() != 1 {
		t.Fatalf("crossing = %d", f0.NumCrossing())
	}
	// Sizes: F0 has nodes {0,1}+virtual{2} and 2 edges = 5.
	if f0.Size() != 5 {
		t.Fatalf("F0 size = %d", f0.Size())
	}
	if fr.MaxFragmentSize() != 5 {
		t.Fatalf("Fm = %d", fr.MaxFragmentSize())
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 5, 5)
	if _, err := Build(g, []int32{0, 0}, 1); err == nil {
		t.Fatal("short assign accepted")
	}
	if _, err := Build(g, []int32{0, 0, 0, 0, 9}, 2); err == nil {
		t.Fatal("out-of-range fragment accepted")
	}
	if _, err := Random(g, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestRandomBalanced(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := randomGraph(r, 100, 300)
	fr, err := Random(g, 7, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
	sizes := fr.FragmentSizes()
	if sizes[0]-sizes[len(sizes)-1] > 1 {
		t.Fatalf("unbalanced: %v", sizes)
	}
}

func TestSingleFragmentHasNoBoundary(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randomGraph(r, 30, 90)
	fr, err := Random(g, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Vf() != 0 || fr.Ef() != 0 {
		t.Fatalf("single fragment must have empty boundary: Vf=%d Ef=%d", fr.Vf(), fr.Ef())
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// localityGraph has edges biased to nearby IDs, like the workload
// generators, so Blocks starts with a low boundary.
func localityGraph(r *rand.Rand, n, m, window int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode("A")
	}
	for i := 0; i < m; i++ {
		v := r.Intn(n)
		w := v + r.Intn(2*window+1) - window
		if w < 0 {
			w += n
		}
		if w >= n {
			w -= n
		}
		b.AddEdge(graph.NodeID(v), graph.NodeID(w))
	}
	return b.MustBuild()
}

func TestBlocksLowBoundaryOnLocalGraph(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := localityGraph(r, 1000, 4000, 20)
	fr, err := Blocks(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
	if fr.VfRatio() > 0.2 {
		t.Fatalf("block partition of a locality graph should have a small boundary, got %f", fr.VfRatio())
	}
}

func TestTargetRatioRaises(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	g := localityGraph(r, 1000, 4000, 20)
	for _, target := range []float64{0.25, 0.4, 0.5} {
		fr, err := TargetRatio(g, 8, ByVf, target, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		if err := fr.Validate(); err != nil {
			t.Fatal(err)
		}
		if fr.VfRatio() < target {
			t.Fatalf("target %f: achieved only %f", target, fr.VfRatio())
		}
		if fr.VfRatio() > target+0.15 {
			t.Fatalf("target %f: overshot to %f", target, fr.VfRatio())
		}
	}
}

func TestTargetRatioLowers(t *testing.T) {
	// Interleaved communities: even IDs ↔ even IDs, odd ↔ odd. Blocks cut
	// both communities in half, so the greedy reduction path runs.
	r := rand.New(rand.NewSource(17))
	b := graph.NewBuilder()
	n := 300
	for i := 0; i < n; i++ {
		b.AddNode("A")
	}
	for i := 0; i < 5*n; i++ {
		v := r.Intn(n)
		w := r.Intn(n)
		if (v+w)%2 == 1 {
			w = (w + 1) % n
		}
		b.AddEdge(graph.NodeID(v), graph.NodeID(w))
	}
	g := b.MustBuild()
	start, err := Blocks(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := TargetRatio(g, 2, ByEf, 0.05, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
	if fr.EfRatio() >= start.EfRatio() {
		t.Fatalf("greedy pass did not reduce Ef ratio: %f -> %f", start.EfRatio(), fr.EfRatio())
	}
}

func TestChainPartition(t *testing.T) {
	// Fig-2 style: A1 B1 A2 B2 ... with edges Ai->Bi->Ai+1 (IDs 0,1,2,...).
	b := graph.NewBuilder()
	n := 8
	for i := 0; i < n; i++ {
		b.AddNode("A")
		b.AddNode("B")
	}
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(2*i), graph.NodeID(2*i+1))
		if i < n-1 {
			b.AddEdge(graph.NodeID(2*i+1), graph.NodeID(2*i+2))
		}
	}
	g := b.MustBuild()
	fr, err := Chain(g, n) // one (Ai,Bi) pair per fragment
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
	if fr.NumFragments() != n {
		t.Fatalf("|F| = %d", fr.NumFragments())
	}
	// Each fragment except the last has exactly one crossing edge.
	if fr.Ef() != n-1 {
		t.Fatalf("Ef = %d, want %d", fr.Ef(), n-1)
	}
}

func TestConnectedTreePartition(t *testing.T) {
	// Perfect binary tree of depth 6 (127 nodes).
	b := graph.NewBuilder()
	nn := 127
	for i := 0; i < nn; i++ {
		b.AddNode("A")
	}
	for i := 0; 2*i+2 < nn; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(2*i+1))
		b.AddEdge(graph.NodeID(i), graph.NodeID(2*i+2))
	}
	g := b.MustBuild()
	fr, err := ConnectedTree(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
	if fr.NumFragments() < 2 {
		t.Fatalf("|F| = %d, want several", fr.NumFragments())
	}
	// dGPMt precondition: each fragment is connected, hence ≤1 in-node.
	for _, f := range fr.Frags {
		if len(f.InNodes) > 1 {
			t.Fatalf("fragment %d has %d in-nodes; connected subtrees have ≤1", f.ID, len(f.InNodes))
		}
	}
}

func TestConnectedTreeRejectsNonTree(t *testing.T) {
	b := graph.NewBuilder()
	b.AddNode("A")
	b.AddNode("A")
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	if _, err := ConnectedTree(b.MustBuild(), 2); err == nil {
		t.Fatal("cycle accepted as tree")
	}
}

func TestFromAssign(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(2)), 10, 20)
	fr, err := FromAssign(g, []int32{0, 1, 2, 0, 1, 2, 0, 1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if fr.NumFragments() != 3 {
		t.Fatalf("|F| = %d", fr.NumFragments())
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: any random partition validates, and Vf/Ef are consistent with
// a direct recount.
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		nv := 2 + int(n8)%40
		g := randomGraph(r, nv, r.Intn(4*nv))
		nf := 1 + r.Intn(5)
		fr, err := Random(g, nf, r)
		if err != nil {
			return false
		}
		if err := fr.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Recount crossing edges directly.
		cross := 0
		virt := map[graph.NodeID]bool{}
		g.Edges(func(v, w graph.NodeID) bool {
			if fr.Assign[v] != fr.Assign[w] {
				cross++
				virt[w] = true
			}
			return true
		})
		return cross == fr.Ef() && len(virt) == fr.Vf()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
