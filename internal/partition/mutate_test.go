package partition

// Tests for in-place fragment mutation: every update sequence must
// leave the fragmentation indistinguishable (per Validate and per
// re-Build) from fragmenting the mutated graph from scratch.

import (
	"math/rand"
	"testing"

	"dgs/internal/graph"
)

func randomMutationWorld(t *testing.T, r *rand.Rand) (*graph.Graph, *Fragmentation) {
	t.Helper()
	nv := 10 + r.Intn(40)
	b := graph.NewBuilder()
	for i := 0; i < nv; i++ {
		b.AddNode("X")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 3*nv; i++ {
		v, w := graph.NodeID(r.Intn(nv)), graph.NodeID(r.Intn(nv))
		k := uint64(v)<<32 | uint64(w)
		if !seen[k] {
			seen[k] = true
			b.AddEdge(v, w)
		}
	}
	g := b.MustBuild()
	fr, err := Random(g, 2+r.Intn(4), r)
	if err != nil {
		t.Fatal(err)
	}
	return g, fr
}

// applyOpsDirect mimics the distributed update session synchronously:
// mutate the source-owner fragment, then fix the watcher bookkeeping
// from the returned status changes.
func applyOpsDirect(t *testing.T, fr *Fragmentation, ops []graph.EdgeOp) {
	t.Helper()
	ov := fr.Overlay()
	dels, ins, err := graph.NormalizeOps(ov, ops)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range dels {
		f := fr.Frags[fr.Assign[e[0]]]
		dropped, err := f.DeleteEdge(e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		if dropped {
			fr.Frags[fr.Assign[e[1]]].RemoveWatcher(e[1], f.ID)
		}
		if err := ov.DeleteEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range ins {
		f := fr.Frags[fr.Assign[e[0]]]
		added, err := f.InsertEdge(e[0], e[1], fr.G.Label(e[1]), int(fr.Assign[e[1]]))
		if err != nil {
			t.Fatal(err)
		}
		if added {
			fr.Frags[fr.Assign[e[1]]].AddWatcher(e[1], f.ID)
		}
		if err := ov.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	fr.RecountBoundary()
}

func TestMutateFragmentsMatchesRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		g, fr := randomMutationWorld(t, r)
		if err := fr.Validate(); err != nil {
			t.Fatalf("trial %d: fresh build invalid: %v", trial, err)
		}
		// Draw a mixed op sequence: delete existing edges, insert absent.
		var ops []graph.EdgeOp
		g.Edges(func(v, w graph.NodeID) bool {
			if r.Intn(3) == 0 {
				ops = append(ops, graph.EdgeOp{Del: true, V: v, W: w})
			}
			return true
		})
		insSeen := map[uint64]bool{}
		for i := 0; i < g.NumNodes(); i++ {
			v, w := graph.NodeID(r.Intn(g.NumNodes())), graph.NodeID(r.Intn(g.NumNodes()))
			k := uint64(v)<<32 | uint64(w)
			if !g.HasEdge(v, w) && !insSeen[k] {
				insSeen[k] = true
				ops = append(ops, graph.EdgeOp{V: v, W: w})
			}
		}
		applyOpsDirect(t, fr, ops)
		if err := fr.Validate(); err != nil {
			t.Fatalf("trial %d: mutated fragmentation invalid: %v", trial, err)
		}
		// Rebuild from the materialized current graph with the same
		// assignment: every derived statistic must agree.
		fresh, err := Build(fr.CurrentGraph(), fr.Assign, fr.NumFragments())
		if err != nil {
			t.Fatalf("trial %d: rebuild: %v", trial, err)
		}
		if fr.Vf() != fresh.Vf() || fr.Ef() != fresh.Ef() {
			t.Fatalf("trial %d: boundary stats diverge: mutated (Vf=%d,Ef=%d) rebuilt (Vf=%d,Ef=%d)",
				trial, fr.Vf(), fr.Ef(), fresh.Vf(), fresh.Ef())
		}
		for i, f := range fr.Frags {
			ff := fresh.Frags[i]
			if f.NumEdges() != ff.NumEdges() || f.NumCrossing() != ff.NumCrossing() {
				t.Fatalf("trial %d frag %d: edge counts diverge (%d/%d vs %d/%d)",
					trial, i, f.NumEdges(), f.NumCrossing(), ff.NumEdges(), ff.NumCrossing())
			}
			if len(f.Virtual) != len(ff.Virtual) || len(f.InNodes) != len(ff.InNodes) {
				t.Fatalf("trial %d frag %d: boundary sets diverge", trial, i)
			}
			for j := range f.Virtual {
				if f.Virtual[j] != ff.Virtual[j] {
					t.Fatalf("trial %d frag %d: virtual sets diverge", trial, i)
				}
			}
		}
	}
}

func TestFragmentMutationErrors(t *testing.T) {
	b := graph.NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddNode("X")
	}
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	g := b.MustBuild()
	fr, err := Build(g, []int32{0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	f0 := fr.Frags[0]
	if _, err := f0.DeleteEdge(2, 3); err == nil {
		t.Fatal("deleting with a foreign source must error")
	}
	if _, err := f0.DeleteEdge(0, 3); err == nil {
		t.Fatal("deleting an absent edge must error")
	}
	if _, err := f0.InsertEdge(0, 1, 0, 0); err == nil {
		t.Fatal("inserting a present edge must error")
	}
	// Dropping the only crossing edge retires the virtual node and the
	// watcher entry.
	dropped, err := f0.DeleteEdge(0, 2)
	if err != nil || !dropped {
		t.Fatalf("dropped=%v err=%v", dropped, err)
	}
	if f0.IsVirtual(2) {
		t.Fatal("virtual node must be retired with its last crossing edge")
	}
	f1 := fr.Frags[1]
	if !f1.RemoveWatcher(2, 0) {
		t.Fatal("watcher removal must retire the in-node")
	}
	fr.RecountBoundary()
	if fr.Vf() != 0 || fr.Ef() != 0 {
		t.Fatalf("boundary stats not retired: Vf=%d Ef=%d", fr.Vf(), fr.Ef())
	}
}
