//dgsvet:deterministic

// Package partition implements graph fragmentation (§2.2 of the paper).
//
// A fragmentation F of G = (V,E,L) is (F1,...,Fn) where each fragment
// Fi = (Vi ∪ Fi.O, Ei, Li):
//
//   - (V1,...,Vn) partitions V;
//   - Fi.O ("virtual nodes") are nodes v' in other fragments with a
//     crossing edge (v,v'), v ∈ Vi;
//   - Fi.I ("in-nodes") are nodes v' ∈ Vi with an incoming crossing edge;
//   - Ei holds the edges among Vi plus crossing edges from Vi to Fi.O.
//
// Vf = ∪ Fi.O is the set of all virtual nodes, Ef the set of all crossing
// edges. The partition-bounded guarantees of the paper are stated in
// |Vf|, |Ef|, |Fm| (largest fragment) and |F| (fragment count).
package partition

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"dgs/internal/graph"
)

// Fragment is one site's share of the graph. Node IDs are global; each
// fragment stores local adjacency restricted to its local nodes, including
// crossing edges to virtual nodes. A site must only touch its Fragment —
// the runtime never hands it the whole graph.
type Fragment struct {
	ID int

	// Local lists the fragment's own nodes Vi (sorted, global IDs).
	Local []graph.NodeID
	// Virtual lists Fi.O (sorted): other fragments' nodes that local
	// crossing edges point to. The fragment knows their labels and owners.
	Virtual []graph.NodeID
	// InNodes lists Fi.I (sorted): local nodes with an incoming crossing
	// edge; these are exactly the nodes other sites hold as virtual.
	InNodes []graph.NodeID

	// Succ maps a local node (global ID) to its out-neighbors (global
	// IDs), covering local→local and local→virtual (crossing) edges.
	Succ map[graph.NodeID][]graph.NodeID

	// Labels of every node the fragment can see (local + virtual).
	Labels map[graph.NodeID]graph.Label

	// Owner[v] gives the owning fragment of each virtual node. Crossing
	// edges carry IRIs/IDs in real systems [26,28]; the owner directory
	// is the stand-in for that routing metadata.
	Owner map[graph.NodeID]int

	// InWatchers[v] lists the fragment IDs that hold in-node v as a
	// virtual node — i.e. the sites to notify when v's status changes.
	// This is the annotation A_d(Sj, Si) of the local dependency graph.
	InWatchers map[graph.NodeID][]int

	// crossCnt[w] counts this fragment's crossing edges into virtual node
	// w; it decides when w enters/leaves Virtual under live updates.
	crossCnt map[graph.NodeID]int

	numEdges    int
	numCrossing int

	// idx caches the dense topology index (see Index); dropped by every
	// mutating method.
	idxMu sync.Mutex
	idx   *Index
}

// NumNodes reports |Vi| (local nodes only).
func (f *Fragment) NumNodes() int { return len(f.Local) }

// NumEdges reports |Ei| including crossing edges.
func (f *Fragment) NumEdges() int { return f.numEdges }

// NumCrossing reports the number of crossing edges leaving this fragment.
func (f *Fragment) NumCrossing() int { return f.numCrossing }

// Size reports |Fi| = |Vi ∪ Fi.O| + |Ei|.
func (f *Fragment) Size() int { return len(f.Local) + len(f.Virtual) + f.numEdges }

// IsLocal reports whether v is one of the fragment's own nodes.
func (f *Fragment) IsLocal(v graph.NodeID) bool {
	i := sort.Search(len(f.Local), func(i int) bool { return f.Local[i] >= v })
	return i < len(f.Local) && f.Local[i] == v
}

// IsVirtual reports whether v is one of the fragment's virtual nodes.
func (f *Fragment) IsVirtual(v graph.NodeID) bool {
	i := sort.Search(len(f.Virtual), func(i int) bool { return f.Virtual[i] >= v })
	return i < len(f.Virtual) && f.Virtual[i] == v
}

// Fragmentation is a partition of a graph plus derived statistics.
// G is the graph as fragmented at Build time; a deployment that applies
// live updates records them in an overlay (see Overlay/CurrentGraph),
// while the fragments themselves are mutated in place at their sites.
type Fragmentation struct {
	G      *graph.Graph
	Assign []int32 // node -> fragment ID
	Frags  []*Fragment

	// Strategy names the registered partitioner that produced this
	// fragmentation ("custom" for explicit assignments, "" when built
	// directly through Build). BuildTime is the wall time of planning
	// plus Build, stamped by PartitionBy. Together they make every
	// downstream measurement attributable to its fragmentation.
	Strategy  string
	BuildTime time.Duration

	// ov tracks live edge updates against G; nil until the first
	// mutation. CurrentGraph materializes it for oracles and re-splits.
	ov *graph.Overlay

	vf int // |Vf| = |∪ Fi.O|
	ef int // |Ef| = number of crossing edges
}

// NumFragments reports |F|.
func (fr *Fragmentation) NumFragments() int { return len(fr.Frags) }

// Vf reports |Vf|, the number of distinct virtual nodes across fragments.
func (fr *Fragmentation) Vf() int { return fr.vf }

// Ef reports |Ef|, the total number of crossing edges.
func (fr *Fragmentation) Ef() int { return fr.ef }

// MaxFragmentSize reports |Fm|, the size of the largest fragment.
func (fr *Fragmentation) MaxFragmentSize() int {
	m := 0
	for _, f := range fr.Frags {
		if s := f.Size(); s > m {
			m = s
		}
	}
	return m
}

// VfRatio reports |Vf| / |V|, the knob Exp-1/2 vary (25%..50%).
func (fr *Fragmentation) VfRatio() float64 {
	if fr.G.NumNodes() == 0 {
		return 0
	}
	return float64(fr.vf) / float64(fr.G.NumNodes())
}

// EfRatio reports |Ef| / |E| of the current graph.
func (fr *Fragmentation) EfRatio() float64 {
	if fr.CurrentNumEdges() == 0 {
		return 0
	}
	return float64(fr.ef) / float64(fr.CurrentNumEdges())
}

func (fr *Fragmentation) String() string {
	return fmt.Sprintf("Fragmentation(|F|=%d, |Vf|=%d (%.1f%%), |Ef|=%d (%.1f%%), |Fm|=%d)",
		fr.NumFragments(), fr.vf, 100*fr.VfRatio(), fr.ef, 100*fr.EfRatio(), fr.MaxFragmentSize())
}

// Build constructs a Fragmentation from an assignment vector. assign[v]
// must be in [0, n). Fragments with no local nodes are allowed (they just
// sit idle), matching the paper's "multiple fragments on one site are one
// fragment" convention in reverse.
//
// Fragments are constructed concurrently by a worker pool (fragments
// are independent given the shared read-only graph and assignment), so
// a 256-site fragmentation of a large graph scales with cores; the
// output is byte-for-byte identical to a sequential build.
func Build(g *graph.Graph, assign []int32, n int) (*Fragmentation, error) {
	return buildWorkers(g, assign, n, runtime.GOMAXPROCS(0))
}

// watchPair records that fragment holder sees node w as virtual; the
// pair is routed to w's owner, which derives InNodes and InWatchers.
type watchPair struct {
	w      graph.NodeID
	holder int32
}

func buildWorkers(g *graph.Graph, assign []int32, n, workers int) (*Fragmentation, error) {
	if len(assign) != g.NumNodes() {
		return nil, fmt.Errorf("partition: assign length %d != |V| %d", len(assign), g.NumNodes())
	}
	fr := &Fragmentation{G: g, Assign: assign}
	fr.Frags = make([]*Fragment, n)
	for i := 0; i < n; i++ {
		fr.Frags[i] = &Fragment{
			ID:         i,
			Succ:       make(map[graph.NodeID][]graph.NodeID),
			Labels:     make(map[graph.NodeID]graph.Label),
			Owner:      make(map[graph.NodeID]int),
			InWatchers: make(map[graph.NodeID][]int),
			crossCnt:   make(map[graph.NodeID]int),
		}
	}
	// Local node lists, in ascending ID order (so already sorted).
	for v := 0; v < g.NumNodes(); v++ {
		fi := assign[v]
		if fi < 0 || int(fi) >= n {
			return nil, fmt.Errorf("partition: node %d assigned to invalid fragment %d", v, fi)
		}
		fr.Frags[fi].Local = append(fr.Frags[fi].Local, graph.NodeID(v))
	}

	if workers > n {
		workers = n
	}
	if workers < 1 || g.NumNodes() < 2048 {
		workers = 1 // pool overhead dominates on small graphs
	}

	// Phase 1 — per-fragment, in parallel: adjacency, labels, crossing
	// counters and the Virtual set; emit (virtual node, holder) pairs
	// for phase 2. Workers only write their own fragment and slot.
	emitted := make([][]watchPair, n)
	runFragments(n, workers, func(fi int) {
		f := fr.Frags[fi]
		var out []watchPair
		for _, src := range f.Local {
			f.Labels[src] = g.Label(src)
			succ := g.Succ(src)
			if len(succ) == 0 {
				continue
			}
			f.Succ[src] = succ // CSR slice is immutable; safe to share
			f.numEdges += len(succ)
			for _, w := range succ {
				fj := int(assign[w])
				if fj == fi {
					continue
				}
				// (src, w) is a crossing edge: w is virtual in Fi, in-node in Fj.
				f.numCrossing++
				f.crossCnt[w]++
				if f.crossCnt[w] == 1 {
					f.Virtual = append(f.Virtual, w)
					f.Labels[w] = g.Label(w)
					f.Owner[w] = fj
					out = append(out, watchPair{w, int32(fi)})
				}
			}
		}
		sort.Slice(f.Virtual, func(i, j int) bool { return f.Virtual[i] < f.Virtual[j] })
		emitted[fi] = out
	})

	// Phase 2 — serial scatter of the O(Σ|Fi.O|) watch pairs to the
	// owning fragments' buckets.
	buckets := make([][]watchPair, n)
	for fi := 0; fi < n; fi++ {
		for _, p := range emitted[fi] {
			owner := assign[p.w]
			buckets[owner] = append(buckets[owner], p)
		}
	}

	// Phase 3 — per-owner, in parallel: sort each bucket to derive the
	// sorted InNodes set and per-node watcher lists.
	vfPer := make([]int, n)
	runFragments(n, workers, func(fj int) {
		f := fr.Frags[fj]
		b := buckets[fj]
		sort.Slice(b, func(i, j int) bool {
			if b[i].w != b[j].w {
				return b[i].w < b[j].w
			}
			return b[i].holder < b[j].holder
		})
		for i, p := range b {
			if i == 0 || p.w != b[i-1].w {
				f.InNodes = append(f.InNodes, p.w)
			}
			f.InWatchers[p.w] = append(f.InWatchers[p.w], int(p.holder))
		}
		vfPer[fj] = len(f.InNodes)
	})

	// In-node sets are disjoint across fragments (each node has one
	// owner), so |Vf| is their summed size.
	for fj := 0; fj < n; fj++ {
		fr.vf += vfPer[fj]
		fr.ef += fr.Frags[fj].numCrossing
	}
	return fr, nil
}

// runFragments invokes fn(fi) for every fragment index, fanning the
// indices out over a pool of workers. fn must only touch state owned by
// its fragment.
func runFragments(n, workers int, fn func(fi int)) {
	if workers <= 1 {
		for fi := 0; fi < n; fi++ {
			fn(fi)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for fi := range work {
				fn(fi)
			}
		}()
	}
	for fi := 0; fi < n; fi++ {
		work <- fi
	}
	close(work)
	wg.Wait()
}

// Validate checks the structural invariants of §2.2; used in tests and
// after partition refinement.
func (fr *Fragmentation) Validate() error {
	seen := make([]bool, fr.G.NumNodes())
	for _, f := range fr.Frags {
		for _, v := range f.Local {
			if seen[v] {
				return fmt.Errorf("node %d in two fragments", v)
			}
			seen[v] = true
			if int(fr.Assign[v]) != f.ID {
				return fmt.Errorf("node %d assign mismatch", v)
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			return fmt.Errorf("node %d in no fragment", v)
		}
	}
	// ∪ Fi.O == ∪ Fi.I as sets (paper remark).
	virt := map[graph.NodeID]bool{}
	ins := map[graph.NodeID]bool{}
	for _, f := range fr.Frags {
		for _, v := range f.Virtual {
			virt[v] = true
			if fr.Assign[v] == int32(f.ID) {
				return fmt.Errorf("fragment %d holds own node %d as virtual", f.ID, v)
			}
			if f.Owner[v] != int(fr.Assign[v]) {
				return fmt.Errorf("fragment %d has wrong owner for %d", f.ID, v)
			}
		}
		for _, v := range f.InNodes {
			ins[v] = true
			if fr.Assign[v] != int32(f.ID) {
				return fmt.Errorf("fragment %d lists foreign in-node %d", f.ID, v)
			}
		}
	}
	if len(virt) != len(ins) || len(virt) != fr.vf {
		return fmt.Errorf("|∪Fi.O|=%d |∪Fi.I|=%d vf=%d must all agree", len(virt), len(ins), fr.vf)
	}
	for v := range virt {
		if !ins[v] {
			return fmt.Errorf("virtual node %d is not an in-node anywhere", v)
		}
	}
	// Watcher symmetry: Fj.InWatchers[v] lists exactly the fragments that
	// hold v as virtual, and in-nodes are exactly the watched nodes.
	for _, f := range fr.Frags {
		for _, v := range f.Virtual {
			owner := fr.Frags[f.Owner[v]]
			found := false
			for _, w := range owner.InWatchers[v] {
				if w == f.ID {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("fragment %d holds %d as virtual but is not a watcher at its owner", f.ID, v)
			}
		}
		if len(f.InWatchers) != len(f.InNodes) {
			return fmt.Errorf("fragment %d has %d watched nodes but %d in-nodes", f.ID, len(f.InWatchers), len(f.InNodes))
		}
		for v, ws := range f.InWatchers {
			if len(ws) == 0 {
				return fmt.Errorf("fragment %d has empty watcher list for %d", f.ID, v)
			}
			for _, w := range ws {
				if w < 0 || w >= len(fr.Frags) || !fr.Frags[w].IsVirtual(v) {
					return fmt.Errorf("fragment %d lists watcher %d for %d which does not hold it as virtual", f.ID, w, v)
				}
			}
		}
	}
	// Edge coverage: every edge of the current graph appears in exactly
	// its source's fragment.
	total := 0
	for _, f := range fr.Frags {
		crossing := 0
		crossPer := make(map[graph.NodeID]int)
		for v, succ := range f.Succ {
			if !f.IsLocal(v) {
				return fmt.Errorf("fragment %d stores adjacency of foreign node %d", f.ID, v)
			}
			total += len(succ)
			for _, w := range succ {
				if fr.Assign[w] != int32(f.ID) {
					crossing++
					crossPer[w]++
				}
			}
		}
		if crossing != f.numCrossing {
			return fmt.Errorf("fragment %d numCrossing %d != recount %d", f.ID, f.numCrossing, crossing)
		}
		if len(crossPer) != len(f.crossCnt) {
			return fmt.Errorf("fragment %d crossCnt tracks %d nodes, recount %d", f.ID, len(f.crossCnt), len(crossPer))
		}
		for w, n := range crossPer {
			if f.crossCnt[w] != n {
				return fmt.Errorf("fragment %d crossCnt[%d]=%d, recount %d", f.ID, w, f.crossCnt[w], n)
			}
		}
		if len(f.Virtual) != len(crossPer) {
			return fmt.Errorf("fragment %d holds %d virtual nodes, crossing edges reach %d", f.ID, len(f.Virtual), len(crossPer))
		}
	}
	if total != fr.CurrentNumEdges() {
		return fmt.Errorf("edge coverage %d != |E| %d", total, fr.CurrentNumEdges())
	}
	return nil
}
