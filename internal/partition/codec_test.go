package partition

import (
	"math/rand"
	"reflect"
	"testing"

	"dgs/internal/graph"
)

// randomFragmentation builds a labeled random graph and a random
// assignment — enough structure to exercise every codec field.
func randomFragmentation(t *testing.T, seed int64) *Fragmentation {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	n := 120
	labels := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		b.AddNode(labels[r.Intn(len(labels))])
	}
	seen := map[[2]int]bool{}
	for i := 0; i < 4*n; i++ {
		v, w := r.Intn(n), r.Intn(n)
		if v == w || seen[[2]int{v, w}] {
			continue
		}
		seen[[2]int{v, w}] = true
		b.AddEdge(graph.NodeID(v), graph.NodeID(w))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = int32(r.Intn(5))
	}
	fr, err := Build(g, assign, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
	return fr
}

func TestFragmentCodecRoundTrip(t *testing.T) {
	fr := randomFragmentation(t, 42)
	var blob []byte
	for _, f := range fr.Frags {
		blob = AppendFragment(blob, f)
	}
	rest := blob
	decoded := make([]*Fragment, 0, len(fr.Frags))
	for range fr.Frags {
		var f *Fragment
		var err error
		f, rest, err = DecodeFragment(rest)
		if err != nil {
			t.Fatal(err)
		}
		decoded = append(decoded, f)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	for i, f := range decoded {
		orig := fr.Frags[i]
		if f.ID != orig.ID {
			t.Fatalf("fragment %d: ID %d", i, f.ID)
		}
		if !reflect.DeepEqual(f.Local, orig.Local) || !reflect.DeepEqual(f.Virtual, orig.Virtual) ||
			!reflect.DeepEqual(f.InNodes, orig.InNodes) {
			t.Fatalf("fragment %d: node sets changed across the wire", i)
		}
		if !reflect.DeepEqual(f.Labels, orig.Labels) || !reflect.DeepEqual(f.Owner, orig.Owner) ||
			!reflect.DeepEqual(f.InWatchers, orig.InWatchers) {
			t.Fatalf("fragment %d: annotations changed across the wire", i)
		}
		if !reflect.DeepEqual(f.Succ, orig.Succ) {
			t.Fatalf("fragment %d: adjacency changed across the wire", i)
		}
		if f.NumEdges() != orig.NumEdges() || f.NumCrossing() != orig.NumCrossing() {
			t.Fatalf("fragment %d: derived counters %d/%d, want %d/%d",
				i, f.NumEdges(), f.NumCrossing(), orig.NumEdges(), orig.NumCrossing())
		}
		if !reflect.DeepEqual(f.crossCnt, orig.crossCnt) {
			t.Fatalf("fragment %d: crossCnt diverged — live updates would corrupt the boundary", i)
		}
	}
	// The reassembled fragmentation passes the full §2.2 validation (with
	// the driver's graph reattached for edge-coverage checks).
	re := FragmentationFromParts(fr.Assign, decoded)
	re.G = fr.G
	if err := re.Validate(); err != nil {
		t.Fatalf("decoded fragmentation invalid: %v", err)
	}
	if re.Vf() != fr.Vf() || re.Ef() != fr.Ef() {
		t.Fatalf("boundary stats %d/%d, want %d/%d", re.Vf(), re.Ef(), fr.Vf(), fr.Ef())
	}
}

// Decoded fragments must stay mutable: live updates against shipped
// copies behave exactly like against the originals.
func TestDecodedFragmentMutable(t *testing.T) {
	fr := randomFragmentation(t, 7)
	f0 := fr.Frags[0]
	if len(f0.Local) == 0 || len(f0.Succ) == 0 {
		t.Skip("fragment 0 empty under this seed")
	}
	dec, _, err := DecodeFragment(AppendFragment(nil, f0))
	if err != nil {
		t.Fatal(err)
	}
	var v, w graph.NodeID
	found := false
	for _, lv := range f0.Local {
		if succ := f0.Succ[lv]; len(succ) > 0 {
			v, w = lv, succ[0]
			found = true
			break
		}
	}
	if !found {
		t.Skip("no deletable edge")
	}
	d1, err := f0.DeleteEdge(v, w)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := dec.DeleteEdge(v, w)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("virtual-status change diverged: original %v, decoded %v", d1, d2)
	}
	if !reflect.DeepEqual(f0.Succ, dec.Succ) || !reflect.DeepEqual(f0.Virtual, dec.Virtual) {
		t.Fatal("post-mutation state diverged between original and decoded fragment")
	}
}

func TestFragmentDecodeRejectsTruncation(t *testing.T) {
	fr := randomFragmentation(t, 3)
	enc := AppendFragment(nil, fr.Frags[1])
	for cut := 1; cut < len(enc); cut += 7 {
		if _, _, err := DecodeFragment(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// ApplyBatchLocal must agree with the distributed update session: same
// mutations, same boundary structure, Validate-clean.
func TestApplyBatchLocalKeepsInvariants(t *testing.T) {
	fr := randomFragmentation(t, 99)
	r := rand.New(rand.NewSource(100))
	g := fr.G
	// Collect some existing edges to delete.
	var dels [][2]graph.NodeID
	for v := 0; v < g.NumNodes() && len(dels) < 25; v++ {
		for _, w := range g.Succ(graph.NodeID(v)) {
			if r.Intn(10) == 0 {
				dels = append(dels, [2]graph.NodeID{graph.NodeID(v), w})
				break
			}
		}
	}
	if len(dels) == 0 {
		t.Fatal("no deletions generated")
	}
	if err := ApplyBatchLocal(fr, dels, nil); err != nil {
		t.Fatal(err)
	}
	// Validate needs the overlay to agree on the edge count.
	ov := fr.Overlay()
	for _, e := range dels {
		if err := ov.DeleteEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := fr.Validate(); err != nil {
		t.Fatalf("after local deletions: %v", err)
	}
	// Re-insert half of them.
	var ins [][2]graph.NodeID
	for i, e := range dels {
		if i%2 == 0 {
			ins = append(ins, e)
		}
	}
	if err := ApplyBatchLocal(fr, nil, ins); err != nil {
		t.Fatal(err)
	}
	for _, e := range ins {
		if err := ov.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := fr.Validate(); err != nil {
		t.Fatalf("after local insertions: %v", err)
	}
}
