package partition

// Partitioning strategies used by the experiments (§6 "Graph
// fragmentation"): random balanced assignment, greedy refinement toward a
// target |Vf|/|V| or |Ef|/|E| ratio (the paper's Ja-be-Ja-style [27]
// swapping), connected-subtree partitioning for dGPMt, and the
// pathological chain fragmentation of Fig. 2 used by the impossibility
// demonstration. The quality-first streaming strategies (LDG, Fennel)
// live in streaming.go; all strategies are reachable by name through
// the Partitioner registry (partitioner.go).

import (
	"fmt"
	"math/rand"
	"sort"

	"dgs/internal/graph"
)

// Random assigns nodes to n fragments uniformly (balanced sizes ±1): the
// paper's "randomly partitioned G into a set F of fragments".
func Random(g *graph.Graph, n int, rng *rand.Rand) (*Fragmentation, error) {
	assign, err := randomAssign(g, n, rng)
	if err != nil {
		return nil, err
	}
	return Build(g, assign, n)
}

func randomAssign(g *graph.Graph, n int, rng *rand.Rand) ([]int32, error) {
	if n <= 0 {
		return nil, fmt.Errorf("partition: need n ≥ 1, got %d", n)
	}
	nn := g.NumNodes()
	perm := rng.Perm(nn)
	assign := make([]int32, nn)
	for i, v := range perm {
		assign[v] = int32(i % n)
	}
	return assign, nil
}

// Metric selects which boundary ratio TargetRatio aims for.
type Metric int

const (
	// ByVf targets |Vf|/|V| (distinct virtual nodes over nodes).
	ByVf Metric = iota
	// ByEf targets |Ef|/|E| (crossing edges over edges).
	ByEf
)

// Blocks assigns contiguous NodeID ranges to fragments. The workload
// generators emit locality-biased edges (neighbors tend to have nearby
// IDs), so block partitions start with a low boundary ratio — the anchor
// from which TargetRatio dials the ratio up to the experiment's setting.
func Blocks(g *graph.Graph, n int) (*Fragmentation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("partition: need n ≥ 1, got %d", n)
	}
	return Build(g, blockAssign(g.NumNodes(), n), n)
}

func blockAssign(nn, n int) []int32 {
	per := (nn + n - 1) / n
	if per == 0 {
		per = 1
	}
	assign := make([]int32, nn)
	for v := 0; v < nn; v++ {
		f := v / per
		if f >= n {
			f = n - 1
		}
		assign[v] = int32(f)
	}
	return assign
}

// TargetRatio produces an n-way partition whose boundary metric is close
// to target, reproducing the paper's setup: "we iteratively swapped nodes
// in different fragments ... following [27], until the ratio |Vf|/|V|
// (resp. |Ef|/|E|) reached a threshold". It starts from the low-boundary
// Blocks partition and randomly relocates nodes (raising the ratio) until
// the target is met; if the start is already above target, it runs greedy
// plurality-vote reduction passes (Ja-be-Ja style) instead. Both
// directions track the ratio with incremental per-node crossing counters
// (cutState), so a relocation step costs O(deg(v)), not O(|E|). The
// achieved ratio is within tolerance of target when reachable.
func TargetRatio(g *graph.Graph, n int, metric Metric, target float64, rng *rand.Rand) (*Fragmentation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("partition: need n ≥ 1, got %d", n)
	}
	assign := blockAssign(g.NumNodes(), n)
	if n == 1 {
		return Build(g, assign, n)
	}
	g.EnsureReverse()
	cs := newCutState(g, assign, n)
	switch cur := cs.ratio(metric); {
	case cur < target:
		raiseRatio(cs, n, metric, target, rng)
	case cur > target:
		refineToTarget(cs, metric, target, 30, capFor(g.NumNodes(), n, DefaultSlack), rng)
	}
	return Build(g, assign, n)
}

func ratioOf(g *graph.Graph, assign []int32, metric Metric) float64 {
	if metric == ByVf {
		return vfRatioOf(g, assign)
	}
	return efRatioOf(g, assign)
}

// raiseRatio relocates randomly chosen nodes to random other fragments
// until the boundary ratio reaches target. Each relocation of a node with
// neighbors can only create crossing edges, so the ratio climbs to the
// graph's maximum if needed. The ratio is read from the incremental
// counters after every move (O(1)), so the loop stops as soon as the
// target is crossed instead of overshooting by a whole batch.
func raiseRatio(cs *cutState, n int, metric Metric, target float64, rng *rand.Rand) {
	nn := cs.g.NumNodes()
	if nn == 0 {
		return
	}
	budget := 200 * (nn/50 + 1) // same total move budget as the historical batched loop
	for tries := 0; tries < budget && cs.ratio(metric) < target; tries++ {
		v := graph.NodeID(rng.Intn(nn))
		f := int32(rng.Intn(n))
		for f == cs.assign[v] && n > 1 {
			f = int32(rng.Intn(n))
		}
		cs.move(v, f)
	}
}

// efRatioOf recomputes |Ef|/|E| by a full edge scan — the O(|E|)
// reference implementation, used to seed cutState indirectly and to
// cross-check the incremental counters in tests.
func efRatioOf(g *graph.Graph, assign []int32) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	cross := 0
	g.Edges(func(v, w graph.NodeID) bool {
		if assign[v] != assign[w] {
			cross++
		}
		return true
	})
	return float64(cross) / float64(g.NumEdges())
}

// vfRatioOf recomputes |Vf|/|V| by a full edge scan (see efRatioOf).
func vfRatioOf(g *graph.Graph, assign []int32) float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	virt := make(map[graph.NodeID]bool)
	g.Edges(func(v, w graph.NodeID) bool {
		if assign[v] != assign[w] {
			virt[w] = true
		}
		return true
	})
	return float64(len(virt)) / float64(g.NumNodes())
}

// Chain fragments the Fig-2 graph family: node v goes to fragment
// v / ceil(|V|/n), preserving consecutive runs. With the chain/cycle
// generators in internal/workload this yields the paper's "extreme case
// when Vf consists of all the nodes" used in the impossibility proof.
func Chain(g *graph.Graph, n int) (*Fragmentation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("partition: need n ≥ 1, got %d", n)
	}
	return Build(g, blockAssign(g.NumNodes(), n), n)
}

// ConnectedTree partitions a rooted tree (or forest) into ~n connected
// subtrees, the precondition of dGPMt (§5.2: "each fragment of F is
// connected", so each fragment has at most one in-node — its root).
// It greedily cuts the deepest subtrees whose size reaches |V|/n.
func ConnectedTree(g *graph.Graph, n int) (*Fragmentation, error) {
	roots, ok := graph.IsTree(g)
	if !ok {
		return nil, fmt.Errorf("partition: ConnectedTree needs a tree/forest data graph")
	}
	if n <= 0 {
		return nil, fmt.Errorf("partition: need n ≥ 1, got %d", n)
	}
	nn := g.NumNodes()
	quota := nn / n
	if quota < 1 {
		quota = 1
	}
	assign := make([]int32, nn)
	for i := range assign {
		assign[i] = -1
	}
	nextFrag := int32(0)
	// Iterative post-order walk (survives deep trees); when an accumulated
	// subtree reaches the quota, seal it as a fragment. size[v] counts
	// not-yet-sealed descendants incl. v.
	size := make([]int, nn)
	walk := func(root graph.NodeID) {
		type frame struct {
			v  graph.NodeID
			ei int
		}
		stack := []frame{{root, 0}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			succ := g.Succ(f.v)
			if f.ei < len(succ) {
				w := succ[f.ei]
				f.ei++
				stack = append(stack, frame{w, 0})
				continue
			}
			v := f.v
			stack = stack[:len(stack)-1]
			size[v] = 1
			for _, w := range succ {
				size[v] += size[w]
			}
			if size[v] >= quota {
				seal(g, v, assign, nextFrag)
				nextFrag++
				size[v] = 0
			}
		}
	}
	for _, r := range roots {
		walk(r)
		if assign[r] == -1 { // leftover top piece
			seal(g, r, assign, nextFrag)
			nextFrag++
		}
	}
	if nextFrag == 0 {
		nextFrag = 1
	}
	return Build(g, assign, int(nextFrag))
}

// seal assigns v and all its unassigned descendants to fragment f.
func seal(g *graph.Graph, v graph.NodeID, assign []int32, f int32) {
	stack := []graph.NodeID{v}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if assign[x] != -1 {
			continue
		}
		assign[x] = f
		for _, w := range g.Succ(x) {
			if assign[w] == -1 {
				stack = append(stack, w)
			}
		}
	}
}

// FromAssign wraps Build for callers that computed their own assignment.
func FromAssign(g *graph.Graph, assign []int32) (*Fragmentation, error) {
	max := int32(-1)
	for _, a := range assign {
		if a > max {
			max = a
		}
	}
	fr, err := Build(g, assign, int(max)+1)
	if err != nil {
		return nil, err
	}
	fr.Strategy = "custom"
	return fr, nil
}

// FragmentSizes returns each fragment's |Vi| sorted descending; handy for
// balance assertions in tests.
func (fr *Fragmentation) FragmentSizes() []int {
	s := make([]int, len(fr.Frags))
	for i, f := range fr.Frags {
		s[i] = f.NumNodes()
	}
	sort.Sort(sort.Reverse(sort.IntSlice(s)))
	return s
}
