package partition

// Partitioning strategies used by the experiments (§6 "Graph
// fragmentation"): random balanced assignment, greedy refinement toward a
// target |Vf|/|V| or |Ef|/|E| ratio (the paper's Ja-be-Ja-style [27]
// swapping), connected-subtree partitioning for dGPMt, and the
// pathological chain fragmentation of Fig. 2 used by the impossibility
// demonstration.

import (
	"fmt"
	"math/rand"
	"sort"

	"dgs/internal/graph"
)

// Random assigns nodes to n fragments uniformly (balanced sizes ±1): the
// paper's "randomly partitioned G into a set F of fragments".
func Random(g *graph.Graph, n int, rng *rand.Rand) (*Fragmentation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("partition: need n ≥ 1, got %d", n)
	}
	nn := g.NumNodes()
	perm := rng.Perm(nn)
	assign := make([]int32, nn)
	for i, v := range perm {
		assign[v] = int32(i % n)
	}
	return Build(g, assign, n)
}

// Metric selects which boundary ratio TargetRatio aims for.
type Metric int

const (
	// ByVf targets |Vf|/|V| (distinct virtual nodes over nodes).
	ByVf Metric = iota
	// ByEf targets |Ef|/|E| (crossing edges over edges).
	ByEf
)

// Blocks assigns contiguous NodeID ranges to fragments. The workload
// generators emit locality-biased edges (neighbors tend to have nearby
// IDs), so block partitions start with a low boundary ratio — the anchor
// from which TargetRatio dials the ratio up to the experiment's setting.
func Blocks(g *graph.Graph, n int) (*Fragmentation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("partition: need n ≥ 1, got %d", n)
	}
	nn := g.NumNodes()
	per := (nn + n - 1) / n
	if per == 0 {
		per = 1
	}
	assign := make([]int32, nn)
	for v := 0; v < nn; v++ {
		f := v / per
		if f >= n {
			f = n - 1
		}
		assign[v] = int32(f)
	}
	return Build(g, assign, n)
}

// TargetRatio produces an n-way partition whose boundary metric is close
// to target, reproducing the paper's setup: "we iteratively swapped nodes
// in different fragments ... following [27], until the ratio |Vf|/|V|
// (resp. |Ef|/|E|) reached a threshold". It starts from the low-boundary
// Blocks partition and randomly relocates nodes (raising the ratio) until
// the target is met; if the start is already above target, it runs greedy
// plurality-vote reduction passes (Ja-be-Ja style) instead. The achieved
// ratio is within tolerance of target when reachable.
func TargetRatio(g *graph.Graph, n int, metric Metric, target float64, rng *rand.Rand) (*Fragmentation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("partition: need n ≥ 1, got %d", n)
	}
	base, err := Blocks(g, n)
	if err != nil {
		return nil, err
	}
	if n == 1 {
		return base, nil
	}
	assign := append([]int32(nil), base.Assign...)
	cur := ratioOf(g, assign, metric)
	switch {
	case cur < target:
		raiseRatio(g, assign, n, metric, target, rng)
	case cur > target:
		g.EnsureReverse()
		lowerRatio(g, assign, n, metric, target, rng)
	}
	return Build(g, assign, n)
}

func ratioOf(g *graph.Graph, assign []int32, metric Metric) float64 {
	if metric == ByVf {
		return vfRatioOf(g, assign)
	}
	return efRatioOf(g, assign)
}

// raiseRatio relocates randomly chosen nodes to random other fragments
// until the boundary ratio reaches target. Each relocation of a node with
// neighbors can only create crossing edges, so the ratio climbs to the
// graph's maximum if needed.
func raiseRatio(g *graph.Graph, assign []int32, n int, metric Metric, target float64, rng *rand.Rand) {
	nn := g.NumNodes()
	if nn == 0 {
		return
	}
	step := nn/50 + 1
	for tries := 0; tries < 200; tries++ {
		for i := 0; i < step; i++ {
			v := rng.Intn(nn)
			f := int32(rng.Intn(n))
			for f == assign[v] && n > 1 {
				f = int32(rng.Intn(n))
			}
			assign[v] = f
		}
		if ratioOf(g, assign, metric) >= target {
			return
		}
	}
}

// lowerRatio runs greedy plurality-vote passes: move each node to the
// fragment holding most of its (in+out) neighbors when that strictly
// improves locality and balance permits, stopping once the ratio drops to
// target or no improving move exists.
func lowerRatio(g *graph.Graph, assign []int32, n int, metric Metric, target float64, rng *rand.Rand) {
	nn := g.NumNodes()
	sizes := make([]int, n)
	for _, a := range assign {
		sizes[a]++
	}
	maxSize := (nn+n-1)/n + nn/(10*n) + 1 // ≤ ~10% over balanced
	order := rng.Perm(nn)
	votes := make(map[int32]int, 8)
	for pass := 0; pass < 30; pass++ {
		moved := 0
		for _, vi := range order {
			v := graph.NodeID(vi)
			home := assign[v]
			for k := range votes {
				delete(votes, k)
			}
			deg := 0
			for _, w := range g.Succ(v) {
				if w != v {
					votes[assign[w]]++
					deg++
				}
			}
			for _, w := range g.Pred(v) {
				if w != v {
					votes[assign[w]]++
					deg++
				}
			}
			if deg == 0 {
				continue
			}
			best, bestCnt := home, votes[home]
			for f, c := range votes {
				if c > bestCnt || (c == bestCnt && f < best) {
					best, bestCnt = f, c
				}
			}
			if best == home || bestCnt <= votes[home] || sizes[best]+1 > maxSize {
				continue
			}
			assign[v] = best
			sizes[home]--
			sizes[best]++
			moved++
			if moved%512 == 0 && ratioOf(g, assign, metric) <= target {
				return
			}
		}
		if moved == 0 || ratioOf(g, assign, metric) <= target {
			return
		}
	}
}

func efRatioOf(g *graph.Graph, assign []int32) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	cross := 0
	g.Edges(func(v, w graph.NodeID) bool {
		if assign[v] != assign[w] {
			cross++
		}
		return true
	})
	return float64(cross) / float64(g.NumEdges())
}

func vfRatioOf(g *graph.Graph, assign []int32) float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	virt := make(map[graph.NodeID]bool)
	g.Edges(func(v, w graph.NodeID) bool {
		if assign[v] != assign[w] {
			virt[w] = true
		}
		return true
	})
	return float64(len(virt)) / float64(g.NumNodes())
}

// Chain fragments the Fig-2 graph family: node v goes to fragment
// v / ceil(|V|/n), preserving consecutive runs. With the chain/cycle
// generators in internal/workload this yields the paper's "extreme case
// when Vf consists of all the nodes" used in the impossibility proof.
func Chain(g *graph.Graph, n int) (*Fragmentation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("partition: need n ≥ 1, got %d", n)
	}
	nn := g.NumNodes()
	per := (nn + n - 1) / n
	if per == 0 {
		per = 1
	}
	assign := make([]int32, nn)
	for v := 0; v < nn; v++ {
		f := v / per
		if f >= n {
			f = n - 1
		}
		assign[v] = int32(f)
	}
	return Build(g, assign, n)
}

// ConnectedTree partitions a rooted tree (or forest) into ~n connected
// subtrees, the precondition of dGPMt (§5.2: "each fragment of F is
// connected", so each fragment has at most one in-node — its root).
// It greedily cuts the deepest subtrees whose size reaches |V|/n.
func ConnectedTree(g *graph.Graph, n int) (*Fragmentation, error) {
	roots, ok := graph.IsTree(g)
	if !ok {
		return nil, fmt.Errorf("partition: ConnectedTree needs a tree/forest data graph")
	}
	if n <= 0 {
		return nil, fmt.Errorf("partition: need n ≥ 1, got %d", n)
	}
	nn := g.NumNodes()
	quota := nn / n
	if quota < 1 {
		quota = 1
	}
	assign := make([]int32, nn)
	for i := range assign {
		assign[i] = -1
	}
	nextFrag := int32(0)
	// Post-order walk; when an accumulated subtree reaches the quota, seal
	// it as a fragment. size[v] counts not-yet-sealed descendants incl. v.
	size := make([]int, nn)
	var post func(v graph.NodeID)
	var stackSafe func(v graph.NodeID)
	post = func(v graph.NodeID) {
		size[v] = 1
		for _, w := range g.Succ(v) {
			post(w)
			size[v] += size[w]
		}
		if size[v] >= quota {
			seal(g, v, assign, nextFrag)
			nextFrag++
			size[v] = 0
		}
	}
	// Iterative version to survive deep trees.
	stackSafe = func(root graph.NodeID) {
		type frame struct {
			v  graph.NodeID
			ei int
		}
		stack := []frame{{root, 0}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			succ := g.Succ(f.v)
			if f.ei < len(succ) {
				w := succ[f.ei]
				f.ei++
				stack = append(stack, frame{w, 0})
				continue
			}
			v := f.v
			stack = stack[:len(stack)-1]
			size[v] = 1
			for _, w := range succ {
				size[v] += size[w]
			}
			if size[v] >= quota {
				seal(g, v, assign, nextFrag)
				nextFrag++
				size[v] = 0
			}
		}
	}
	_ = post
	for _, r := range roots {
		stackSafe(r)
		if assign[r] == -1 { // leftover top piece
			seal(g, r, assign, nextFrag)
			nextFrag++
		}
	}
	if nextFrag == 0 {
		nextFrag = 1
	}
	return Build(g, assign, int(nextFrag))
}

// seal assigns v and all its unassigned descendants to fragment f.
func seal(g *graph.Graph, v graph.NodeID, assign []int32, f int32) {
	stack := []graph.NodeID{v}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if assign[x] != -1 {
			continue
		}
		assign[x] = f
		for _, w := range g.Succ(x) {
			if assign[w] == -1 {
				stack = append(stack, w)
			}
		}
	}
}

// FromAssign wraps Build for callers that computed their own assignment.
func FromAssign(g *graph.Graph, assign []int32) (*Fragmentation, error) {
	max := int32(-1)
	for _, a := range assign {
		if a > max {
			max = a
		}
	}
	return Build(g, assign, int(max)+1)
}

// FragmentSizes returns each fragment's |Vi| sorted descending; handy for
// balance assertions in tests.
func (fr *Fragmentation) FragmentSizes() []int {
	s := make([]int, len(fr.Frags))
	for i, f := range fr.Frags {
		s[i] = f.NumNodes()
	}
	sort.Sort(sort.Reverse(sort.IntSlice(s)))
	return s
}
