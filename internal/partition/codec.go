package partition

// Fragment shipping: the deploy-time wire encoding a networked
// deployment uses to make a fragment resident at a remote site server
// (cmd/dgsd). The encoding carries exactly the state §2.2 defines —
// local nodes with labels and adjacency, virtual nodes with labels and
// owners, in-nodes with their watcher annotations — and the decoder
// recomputes the derived counters (edge totals, crossing counts), so a
// decoded fragment is Validate-equivalent to the original and ready for
// live mutation (DeleteEdge/InsertEdge bookkeeping included).
//
// Layout (little-endian), per fragment:
//
//	u32 id
//	u32 |Local|,   then per local node:   u32 id, u16 label
//	u32 |Virtual|, then per virtual node: u32 id, u16 label, u32 owner
//	u32 |InNodes|, then per in-node:      u32 id, u32 #watchers, u32 ×watcher
//	per local node (same order as Local): u32 degree, u32 ×target
//
// Graph-level node labels never change under live updates, so labels can
// ship once at deploy time; edges are the mutable part and are mutated
// in place by maintenance sessions after shipping.

import (
	"sort"

	"dgs/internal/graph"
	"dgs/internal/wire"
)

func appendU32(dst []byte, x uint32) []byte { return wire.AppendUint32(dst, x) }
func appendU16(dst []byte, x uint16) []byte { return wire.AppendUint16(dst, x) }

// AppendFragment appends f's wire encoding to dst.
func AppendFragment(dst []byte, f *Fragment) []byte {
	dst = appendU32(dst, uint32(f.ID))
	dst = appendU32(dst, uint32(len(f.Local)))
	for _, v := range f.Local {
		dst = appendU32(dst, v)
		dst = appendU16(dst, f.Labels[v])
	}
	dst = appendU32(dst, uint32(len(f.Virtual)))
	for _, v := range f.Virtual {
		dst = appendU32(dst, v)
		dst = appendU16(dst, f.Labels[v])
		dst = appendU32(dst, uint32(f.Owner[v]))
	}
	dst = appendU32(dst, uint32(len(f.InNodes)))
	for _, v := range f.InNodes {
		ws := f.InWatchers[v]
		dst = appendU32(dst, v)
		dst = appendU32(dst, uint32(len(ws)))
		for _, w := range ws {
			dst = appendU32(dst, uint32(w))
		}
	}
	for _, v := range f.Local {
		succ := f.Succ[v]
		dst = appendU32(dst, uint32(len(succ)))
		for _, w := range succ {
			dst = appendU32(dst, w)
		}
	}
	return dst
}

// DecodeFragment parses one AppendFragment encoding from the front of b
// and returns the fragment plus the remaining bytes.
func DecodeFragment(b []byte) (*Fragment, []byte, error) {
	r := wire.NewByteReader(b)
	id, err := r.U32()
	if err != nil {
		return nil, nil, err
	}
	f := &Fragment{
		ID:         int(id),
		Succ:       make(map[graph.NodeID][]graph.NodeID),
		Labels:     make(map[graph.NodeID]graph.Label),
		Owner:      make(map[graph.NodeID]int),
		InWatchers: make(map[graph.NodeID][]int),
		crossCnt:   make(map[graph.NodeID]int),
	}
	nl, err := r.U32()
	if err != nil {
		return nil, nil, err
	}
	f.Local = make([]graph.NodeID, nl)
	for i := range f.Local {
		if f.Local[i], err = r.U32(); err != nil {
			return nil, nil, err
		}
		l, err := r.U16()
		if err != nil {
			return nil, nil, err
		}
		f.Labels[f.Local[i]] = l
	}
	nv, err := r.U32()
	if err != nil {
		return nil, nil, err
	}
	f.Virtual = make([]graph.NodeID, nv)
	for i := range f.Virtual {
		if f.Virtual[i], err = r.U32(); err != nil {
			return nil, nil, err
		}
		l, err := r.U16()
		if err != nil {
			return nil, nil, err
		}
		owner, err := r.U32()
		if err != nil {
			return nil, nil, err
		}
		v := f.Virtual[i]
		f.Labels[v] = l
		f.Owner[v] = int(owner)
	}
	ni, err := r.U32()
	if err != nil {
		return nil, nil, err
	}
	f.InNodes = make([]graph.NodeID, ni)
	for i := range f.InNodes {
		if f.InNodes[i], err = r.U32(); err != nil {
			return nil, nil, err
		}
		nw, err := r.U32()
		if err != nil {
			return nil, nil, err
		}
		ws := make([]int, nw)
		for j := range ws {
			w, err := r.U32()
			if err != nil {
				return nil, nil, err
			}
			ws[j] = int(w)
		}
		f.InWatchers[f.InNodes[i]] = ws
	}
	for _, v := range f.Local {
		deg, err := r.U32()
		if err != nil {
			return nil, nil, err
		}
		if deg == 0 {
			continue
		}
		row := make([]graph.NodeID, deg)
		for j := range row {
			if row[j], err = r.U32(); err != nil {
				return nil, nil, err
			}
		}
		f.Succ[v] = row
		f.numEdges += int(deg)
		for _, w := range row {
			if f.IsVirtual(w) {
				f.numCrossing++
				f.crossCnt[w]++
			}
		}
	}
	return f, r.Rest(), nil
}

// CloneFragment deep-copies f through a codec round-trip. The copy
// shares nothing with the original — in particular not the CSR
// adjacency slices Build lets pristine fragments alias — so it can be
// mutated independently: the re-hosting primitive for in-process
// failover, where a recovered site must start from the driver's
// committed state rather than the survivor's object.
func CloneFragment(f *Fragment) *Fragment {
	c, rest, err := DecodeFragment(AppendFragment(nil, f))
	if err != nil || len(rest) != 0 {
		panic("partition: fragment failed to round-trip its own codec")
	}
	return c
}

// FragmentationFromParts assembles a Fragmentation around fragments that
// were decoded from the wire (no driver graph available — G is nil).
// assign is the global owner directory; boundary statistics are
// recomputed from the fragments. Site servers use this to host their
// shard; note CurrentGraph and Overlay are unavailable without G.
func FragmentationFromParts(assign []int32, frags []*Fragment) *Fragmentation {
	fr := &Fragmentation{Assign: assign, Frags: frags}
	fr.RecountBoundary()
	return fr
}

// ApplyBatchLocal applies a validated update batch directly to every
// fragment of fr within one process — the driver-side replay a networked
// deployment runs so that its fragmentation metadata (boundary counts,
// re-split inputs) stays in lockstep with the daemons' resident
// fragments, which the distributed maintenance session mutates. It
// performs the same mutations as the update session — edge ops at the
// source's fragment, then net watcher fixes at each target's owner — and
// recounts boundary stats. Labels and owners for insertion targets come
// from fr.G and fr.Assign. Errors indicate a validation bug upstream.
func ApplyBatchLocal(fr *Fragmentation, dels, ins [][2]graph.NodeID) error {
	// Track pre-batch virtual status per (fragment, target) so watcher
	// notices reflect the batch's NET effect, exactly like the session.
	type fragTarget struct {
		frag int
		node graph.NodeID
	}
	wasVirtual := make(map[fragTarget]bool)
	record := func(fi int, w graph.NodeID) {
		f := fr.Frags[fi]
		if f.IsLocal(w) {
			return
		}
		k := fragTarget{fi, w}
		if _, seen := wasVirtual[k]; !seen {
			wasVirtual[k] = f.IsVirtual(w)
		}
	}
	for _, e := range dels {
		fi := int(fr.Assign[e[0]])
		record(fi, e[1])
		if _, err := fr.Frags[fi].DeleteEdge(e[0], e[1]); err != nil {
			return err
		}
	}
	for _, e := range ins {
		fi := int(fr.Assign[e[0]])
		record(fi, e[1])
		if _, err := fr.Frags[fi].InsertEdge(e[0], e[1], fr.G.Label(e[1]), int(fr.Assign[e[1]])); err != nil {
			return err
		}
	}
	keys := make([]fragTarget, 0, len(wasVirtual))
	for k := range wasVirtual {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].frag != keys[j].frag {
			return keys[i].frag < keys[j].frag
		}
		return keys[i].node < keys[j].node
	})
	for _, k := range keys {
		was := wasVirtual[k]
		now := fr.Frags[k.frag].IsVirtual(k.node)
		owner := fr.Frags[fr.Assign[k.node]]
		switch {
		case now && !was:
			owner.AddWatcher(k.node, k.frag)
		case was && !now:
			owner.RemoveWatcher(k.node, k.frag)
		}
	}
	fr.RecountBoundary()
	return nil
}
