package partition

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dgs/internal/graph"
)

// TestCutStateMatchesRescan is the equivalence proof for the incremental
// counters: after any sequence of single-node relocations, cutState's
// |Ef|/|Vf| must equal a direct O(|E|) recount of the same assignment.
func TestCutStateMatchesRescan(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		nv := 2 + int(n8)%60
		g := randomGraph(r, nv, r.Intn(5*nv))
		n := 2 + r.Intn(5)
		assign, err := randomAssign(g, n, r)
		if err != nil {
			return false
		}
		g.EnsureReverse()
		cs := newCutState(g, assign, n)
		for step := 0; step < 40; step++ {
			cs.move(graph.NodeID(r.Intn(nv)), int32(r.Intn(n)))
			if cs.ratio(ByEf) != efRatioOf(g, assign) || cs.ratio(ByVf) != vfRatioOf(g, assign) {
				t.Logf("seed %d step %d: incremental ef=%d vf=%d, rescan ef=%.4f vf=%.4f",
					seed, step, cs.ef, cs.vf, efRatioOf(g, assign), vfRatioOf(g, assign))
				return false
			}
		}
		// Sizes must track too.
		sizes := make([]int, n)
		for _, a := range assign {
			sizes[a]++
		}
		for i := range sizes {
			if sizes[i] != cs.sizes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// communityGraph has two interleaved communities (even↔even, odd↔odd),
// so a Blocks start has a high cut and refinement has real work to do.
func communityGraph(r *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode("A")
	}
	for i := 0; i < m; i++ {
		v := r.Intn(n)
		w := r.Intn(n)
		if (v+w)%2 == 1 {
			w = (w + 1) % n
		}
		b.AddEdge(graph.NodeID(v), graph.NodeID(w))
	}
	return b.MustBuild()
}

func TestRefineImprovesAndKeepsBalance(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	g := communityGraph(r, 400, 2400)
	n := 4
	assign := blockAssign(g.NumNodes(), n)
	before := efRatioOf(g, assign)
	moves := Refine(g, assign, n, ByEf, 20, DefaultSlack, rand.New(rand.NewSource(7)))
	if moves == 0 {
		t.Fatal("refine made no move on a refinable graph")
	}
	after := efRatioOf(g, assign)
	if after >= before {
		t.Fatalf("refine did not lower the cut: %.4f -> %.4f", before, after)
	}
	cap_ := capFor(g.NumNodes(), n, DefaultSlack)
	sizes := make([]int, n)
	for _, a := range assign {
		sizes[a]++
	}
	for i, s := range sizes {
		if s > cap_ {
			t.Fatalf("fragment %d has %d nodes, capacity %d", i, s, cap_)
		}
	}
	fr, err := Build(g, assign, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// refineRescanReference replicates the pre-incremental refinement loop:
// the same plurality-vote mover, but re-deriving the ratio with an
// O(|E|) scan at every relocation — the behavior TargetRatio/Refine no
// longer exhibit. Kept test-side as the benchmark baseline.
func refineRescanReference(g *graph.Graph, assign []int32, n int, metric Metric, target float64, passes, maxSize int, rng *rand.Rand) {
	nn := g.NumNodes()
	sizes := make([]int, n)
	for _, a := range assign {
		sizes[a]++
	}
	order := rng.Perm(nn)
	votes := make(map[int32]int, 8)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for _, vi := range order {
			v := graph.NodeID(vi)
			home := assign[v]
			for k := range votes {
				delete(votes, k)
			}
			deg := 0
			for _, w := range g.Succ(v) {
				if w != v {
					votes[assign[w]]++
					deg++
				}
			}
			for _, u := range g.Pred(v) {
				if u != v {
					votes[assign[u]]++
					deg++
				}
			}
			if deg == 0 {
				continue
			}
			best, bestCnt := home, votes[home]
			for f, c := range votes {
				if c > bestCnt || (c == bestCnt && f < best) {
					best, bestCnt = f, c
				}
			}
			if best == home || bestCnt <= votes[home] || sizes[best]+1 > maxSize {
				continue
			}
			assign[v] = best
			sizes[home]--
			sizes[best]++
			moved++
			if ratioOf(g, assign, metric) <= target { // the O(|E|) per-step rescan
				return
			}
		}
		if moved == 0 || ratioOf(g, assign, metric) <= target {
			return
		}
	}
}

// BenchmarkRefineIncrementalVsRescan shows the asymptotic win of the
// per-node crossing counters: the /incremental arm is the production
// Refine, the /rescan arm pays an O(|E|) ratio recomputation per
// relocation as the old raiseRatio/lowerRatio did.
func BenchmarkRefineIncrementalVsRescan(b *testing.B) {
	for _, nn := range []int{2_000, 20_000} {
		r := rand.New(rand.NewSource(5))
		g := communityGraph(r, nn, 6*nn)
		g.EnsureReverse()
		n := 16
		maxSize := capFor(nn, n, DefaultSlack)
		b.Run(fmt.Sprintf("incremental/V=%d", nn), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				assign := blockAssign(nn, n)
				cs := newCutState(g, assign, n)
				refineToTarget(cs, ByEf, 0.01, 20, maxSize, rand.New(rand.NewSource(9)))
			}
		})
		b.Run(fmt.Sprintf("rescan/V=%d", nn), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				assign := blockAssign(nn, n)
				refineRescanReference(g, assign, n, ByEf, 0.01, 20, maxSize, rand.New(rand.NewSource(9)))
			}
		})
	}
}
