package bench

// The transport experiment (beyond the paper's figures): the identical
// dGPM workload served by three wire backends — the in-process channel
// network (zero-cost links, the setting of every other figure), a
// two-daemon loopback-TCP deployment pinned to wire protocol 1 (one
// frame per message and per ack, the pre-coalescing path), and the same
// deployment on the current protocol (MSGB/ACKN coalescing). Payload DS
// is near-identical — the same protocol runs either way, modulo
// arrival-order effects on how the asynchronous fixpoint batches
// falsifications — so the comparison isolates what a real wire adds
// (measured frame/ack overhead and transport latency) and what
// coalescing wins back (frames, wire bytes, allocations, PT at high
// fragment counts). A fourth arm repeats the coalescing deployment
// with per-query distributed tracing on, recording what exact span
// collection costs on the same workload. This is the repro point for
// the "bounded communication survives a real byte stream" claim, for
// the coalescing optimization, and for tracing's overhead bound.

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"dgs"
	"dgs/internal/cluster"
	"dgs/internal/graph"
	"dgs/internal/partition"
	"dgs/internal/transport/tcpnet"
	"dgs/internal/wire"
)

// startLoopbackServers starts n tcpnet site servers on loopback and
// returns their addresses plus a shutdown func. Shared by the transport
// and partition experiments.
func startLoopbackServers(n int) (addrs []string, stop func(), err error) {
	listeners := make([]net.Listener, 0, n)
	stop = func() {
		for _, lis := range listeners {
			lis.Close()
		}
	}
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		srv := &tcpnet.Server{}
		go srv.Serve(lis)
		listeners = append(listeners, lis)
		addrs = append(addrs, lis.Addr().String())
	}
	return addrs, stop, nil
}

// The storm rows measure the wire path alone: a registered test
// algorithm whose sites do no graph work, only reply to the
// coordinator, so a broadcast/quiesce phase's wall time is frame
// encode + socket + decode + ack accounting and nothing else. The dGPM
// rows above it stay compute-dominated at these dataset sizes; the
// storm is where the coalescer's frame reduction turns into PT.
var stormOnce sync.Once

const (
	stormAlgo   = "bench-storm"
	stormBursts = 16
)

func registerStorm() {
	stormOnce.Do(func() {
		cluster.RegisterAlgorithm(stormAlgo,
			func(spec cluster.SessionSpec, frag *partition.Fragment, assign []int32) (cluster.Handler, error) {
				return cluster.HandlerFunc(func(ctx *cluster.Ctx, from int, p wire.Payload) {
					ctx.Send(cluster.Coordinator, &wire.Matches{Frag: uint16(ctx.Self())})
				}), nil
			})
	})
}

// stormRun drives `phases` rounds over `sites` sites hosted by the
// daemons at addrs, negotiating at most maxProto; each round is a burst
// of `stormBursts` back-to-back broadcasts (so the wire carries
// stormBursts×sites messages each way before the quiesce barrier — the
// regime where frame throughput, not round-trip latency, sets the
// pace). Returns mean wall per phase, total frames across the driver's
// sockets, and driver bytes allocated — all per phase.
func stormRun(addrs []string, sites, phases int, maxProto uint16) (ptMs float64, frames int64, allocKB float64, err error) {
	registerStorm()
	b := graph.NewBuilder()
	assign := make([]int32, sites)
	for i := 0; i < sites; i++ {
		b.AddNode("x")
		assign[i] = int32(i)
	}
	g, err := b.Build()
	if err != nil {
		return 0, 0, 0, err
	}
	fr, err := partition.Build(g, assign, sites)
	if err != nil {
		return 0, 0, 0, err
	}
	tr, err := tcpnet.Dial(context.Background(), addrs, fr, tcpnet.Options{MaxProtocol: maxProto})
	if err != nil {
		return 0, 0, 0, err
	}
	c := cluster.NewWithTransport(tr)
	defer c.Shutdown()
	s, err := c.OpenSession(cluster.SessionQuery, cluster.SessionSpec{Algo: stormAlgo},
		cluster.HandlerFunc(func(*cluster.Ctx, int, wire.Payload) {}))
	if err != nil {
		return 0, 0, 0, err
	}
	defer s.Close()
	// One untimed warm-up phase settles connection buffers and the
	// session's actor goroutines before measurement.
	s.Broadcast(&wire.Control{Op: 1})
	if err := s.WaitQuiesce(context.Background()); err != nil {
		return 0, 0, 0, err
	}
	framesSent0, framesRecv0 := tr.Frames()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for p := 0; p < phases; p++ {
		for b := 0; b < stormBursts; b++ {
			s.Broadcast(&wire.Control{Op: 1})
		}
		if err := s.WaitQuiesce(context.Background()); err != nil {
			return 0, 0, 0, err
		}
	}
	el := time.Since(start)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	sent, received := tr.Frames()
	np := float64(phases)
	return float64(el.Microseconds()) / 1000 / np,
		(sent - framesSent0 + received - framesRecv0) / int64(phases),
		float64(ms1.TotalAlloc-ms0.TotalAlloc) / 1024 / np,
		nil
}

// transportExp produces the "net-pt"/"net-ds" panels: PT and bytes per
// fragment count |F|, for {in-process, TCP at protocol 1, TCP at the
// current protocol}. The DS panel carries payload DS on each backend
// (equal, by design) plus each TCP arm's measured wire bytes; every TCP
// point also records the frames that crossed the driver's sockets and
// the driver-process heap allocated per query (the -benchmem column).
func transportExp(cfg Config) ([]*Figure, error) {
	ctx := context.Background()
	dict := dgs.NewDict()
	g := dgs.GenWeb(dict, cfg.scaled(webNV/2), cfg.scaled(webNE/2), cfg.Seed)
	queries := make([]*dgs.Pattern, cfg.Queries)
	for i := range queries {
		queries[i] = dgs.GenCyclicPatternOver(dict, 5, 10, 4, cfg.Seed+int64(i)*17)
	}

	// Two site servers on loopback, reused across sweep points; at the
	// 64-fragment row each daemon hosts 32 sites, so one connection
	// carries heavily bursty multiplexed traffic — the coalescer's case.
	addrs, stopServers, err := startLoopbackServers(2)
	if err != nil {
		return nil, err
	}
	defer stopServers()

	type arm struct {
		name  string
		opts  []dgs.DeployOption
		qopts []dgs.QueryOption
	}
	// Planner off on every arm: protocol v4 ships the evaluation plan in
	// OPEN while a v1 connection cannot, so with the planner on the arms
	// would no longer carry identical control traffic and the wire
	// comparison would measure plan blobs, not framing. The tcp-traced
	// arm repeats the tcp arm with per-query distributed tracing on: its
	// delta against tcp is the whole cost of exact span recording (the
	// trace ID on OPEN, per-message recording at every site, and the
	// TRACE frames chasing each CLOSE) — while tcp itself, running on a
	// v5 connection with tracing off, demonstrates the byte-identity
	// promise against the pre-trace recording of this same arm.
	arms := []arm{
		{name: "inproc", opts: []dgs.DeployOption{dgs.WithPlannerDisabled()}},
		{name: "tcp-v1", opts: []dgs.DeployOption{dgs.WithRemoteSites(addrs...), dgs.WithWireProtocolMax(1), dgs.WithPlannerDisabled()}},
		{name: "tcp", opts: []dgs.DeployOption{dgs.WithRemoteSites(addrs...), dgs.WithPlannerDisabled()}},
		{name: "tcp-traced", opts: []dgs.DeployOption{dgs.WithRemoteSites(addrs...), dgs.WithPlannerDisabled()},
			qopts: []dgs.QueryOption{dgs.WithTrace()}},
	}

	fragCounts := []int{2, 4, 8, 64}
	pt := &Figure{ID: "net-pt", Title: "in-process vs loopback TCP (v1 and coalescing), dGPM", XLabel: "|F|", YLabel: "PT (ms)"}
	ds := &Figure{ID: "net-ds", Title: "in-process vs loopback TCP (v1 and coalescing), dGPM", XLabel: "|F|", YLabel: "DS (KB)"}
	ptSeries := map[string]*Series{}
	dsSeries := map[string]*Series{}
	wireSeries := map[string]*Series{}
	for _, a := range arms {
		ptSeries[a.name] = &Series{Name: "dGPM/" + a.name}
		dsSeries[a.name] = &Series{Name: "dGPM/" + a.name}
		if a.name != "inproc" {
			wireSeries[a.name] = &Series{Name: "wire/" + a.name}
		}
	}
	stormArms := []struct {
		name     string
		maxProto uint16
	}{
		{"storm/tcp-v1", 1},
		{"storm/tcp", 0},
	}
	stormSeries := map[string]*Series{}
	for _, sa := range stormArms {
		stormSeries[sa.name] = &Series{Name: sa.name}
	}

	for _, nf := range fragCounts {
		part, err := dgs.PartitionTargetRatio(g, nf, dgs.ByVf, 0.25, cfg.Seed)
		if err != nil {
			return nil, err
		}
		x := fmt.Sprint(nf)
		meta := partMeta(part)
		for _, a := range arms {
			dep, err := dgs.Deploy(part, a.opts...)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", a.name, err)
			}
			m := measurement{part: meta}
			var wire int64
			var ms0 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			for _, q := range queries {
				res, err := dep.Query(ctx, q, a.qopts...)
				if err != nil {
					dep.Close()
					return nil, fmt.Errorf("%s: %w", a.name, err)
				}
				if len(a.qopts) > 0 && (res.Trace == nil || !res.Trace.Complete) {
					dep.Close()
					return nil, fmt.Errorf("%s: traced query returned trace %+v", a.name, res.Trace)
				}
				m.add(res.Stats)
				wire += res.Stats.WireBytes
			}
			var ms1 runtime.MemStats
			runtime.ReadMemStats(&ms1)
			sent, received := dep.WireFrames()
			dep.Close()
			nq := float64(len(queries))
			p := m.point(x)
			p.AllocKB = float64(ms1.TotalAlloc-ms0.TotalAlloc) / 1024 / nq
			p.Frames = (sent + received) / int64(len(queries))
			ptSeries[a.name].Points = append(ptSeries[a.name].Points, p)
			dsSeries[a.name].Points = append(dsSeries[a.name].Points, p)
			if ws := wireSeries[a.name]; ws != nil {
				ws.Points = append(ws.Points, Point{
					X: x, DSkb: float64(wire) / 1024 / nq,
					Frames: p.Frames, AllocKB: p.AllocKB, Part: meta,
				})
			}
		}
		for _, sa := range stormArms {
			ptPhase, frames, allocKB, err := stormRun(addrs, nf, 30, sa.maxProto)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sa.name, err)
			}
			stormSeries[sa.name].Points = append(stormSeries[sa.name].Points, Point{
				X: x, PTms: ptPhase, Msgs: int64(2 * stormBursts * nf), Frames: frames, AllocKB: allocKB,
			})
		}
	}
	for _, a := range arms {
		pt.Series = append(pt.Series, *ptSeries[a.name])
		ds.Series = append(ds.Series, *dsSeries[a.name])
	}
	for _, sa := range stormArms {
		pt.Series = append(pt.Series, *stormSeries[sa.name])
	}
	ds.Series = append(ds.Series, *wireSeries["tcp-v1"], *wireSeries["tcp"], *wireSeries["tcp-traced"])
	return []*Figure{pt, ds}, nil
}
