package bench

// The transport experiment (beyond the paper's figures): the identical
// dGPM workload served by the two wire backends — the in-process channel
// network (zero-cost links, the setting of every other figure) and a
// deployment spanning two loopback-TCP site servers (real sockets, hub
// routing, per-message acks). Payload DS is near-identical — the same
// protocol runs either way, modulo arrival-order effects on how the
// asynchronous fixpoint batches falsifications — so the comparison
// isolates what a real wire adds: measured frame/ack overhead
// (WireBytes) and transport latency (PT). This is the repro point for
// the "bounded communication survives a real byte stream" claim.

import (
	"context"
	"fmt"
	"net"

	"dgs"
	"dgs/internal/transport/tcpnet"
)

// startLoopbackServers starts n tcpnet site servers on loopback and
// returns their addresses plus a shutdown func. Shared by the transport
// and partition experiments.
func startLoopbackServers(n int) (addrs []string, stop func(), err error) {
	listeners := make([]net.Listener, 0, n)
	stop = func() {
		for _, lis := range listeners {
			lis.Close()
		}
	}
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		srv := &tcpnet.Server{}
		go srv.Serve(lis)
		listeners = append(listeners, lis)
		addrs = append(addrs, lis.Addr().String())
	}
	return addrs, stop, nil
}

// transportExp produces the "net-pt"/"net-ds" panels: PT and bytes per
// fragment count |F|, for {in-process, loopback TCP}. The DS panel
// carries three series: payload DS on each backend (equal, by design)
// and the TCP backend's measured wire bytes.
func transportExp(cfg Config) ([]*Figure, error) {
	ctx := context.Background()
	dict := dgs.NewDict()
	g := dgs.GenWeb(dict, cfg.scaled(webNV/2), cfg.scaled(webNE/2), cfg.Seed)
	queries := make([]*dgs.Pattern, cfg.Queries)
	for i := range queries {
		queries[i] = dgs.GenCyclicPatternOver(dict, 5, 10, 4, cfg.Seed+int64(i)*17)
	}

	// Two site servers on loopback, reused across sweep points.
	addrs, stopServers, err := startLoopbackServers(2)
	if err != nil {
		return nil, err
	}
	defer stopServers()

	type arm struct {
		name string
		opts []dgs.DeployOption
	}
	arms := []arm{
		{"inproc", nil},
		{"tcp", []dgs.DeployOption{dgs.WithRemoteSites(addrs...)}},
	}

	fragCounts := []int{2, 4, 8}
	pt := &Figure{ID: "net-pt", Title: "in-process vs loopback TCP, dGPM", XLabel: "|F|", YLabel: "PT (ms)"}
	ds := &Figure{ID: "net-ds", Title: "in-process vs loopback TCP, dGPM", XLabel: "|F|", YLabel: "DS (KB)"}
	ptSeries := map[string]*Series{}
	dsSeries := map[string]*Series{}
	for _, a := range arms {
		ptSeries[a.name] = &Series{Name: "dGPM/" + a.name}
		dsSeries[a.name] = &Series{Name: "dGPM/" + a.name}
	}
	wireSeries := &Series{Name: "wire/tcp"}

	for _, nf := range fragCounts {
		part, err := dgs.PartitionTargetRatio(g, nf, dgs.ByVf, 0.25, cfg.Seed)
		if err != nil {
			return nil, err
		}
		x := fmt.Sprint(nf)
		var wireKB float64
		meta := partMeta(part)
		for _, a := range arms {
			dep, err := dgs.Deploy(part, a.opts...)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", a.name, err)
			}
			m := measurement{part: meta}
			var wire int64
			for _, q := range queries {
				res, err := dep.Query(ctx, q)
				if err != nil {
					dep.Close()
					return nil, fmt.Errorf("%s: %w", a.name, err)
				}
				m.add(res.Stats)
				wire += res.Stats.WireBytes
			}
			dep.Close()
			ptSeries[a.name].Points = append(ptSeries[a.name].Points, m.point(x))
			dsSeries[a.name].Points = append(dsSeries[a.name].Points, m.point(x))
			if a.name == "tcp" {
				wireKB = float64(wire) / 1024 / float64(len(queries))
			}
		}
		wireSeries.Points = append(wireSeries.Points, Point{X: x, DSkb: wireKB, Part: meta})
	}
	for _, a := range arms {
		pt.Series = append(pt.Series, *ptSeries[a.name])
		ds.Series = append(ds.Series, *dsSeries[a.name])
	}
	ds.Series = append(ds.Series, *wireSeries)
	return []*Figure{pt, ds}, nil
}
