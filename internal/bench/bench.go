// Package bench regenerates the paper's evaluation (§6, Fig. 6(a)–6(p)).
//
// Each experiment group reproduces one figure pair (PT + DS) with the
// paper's sweep: Exp-1 (dGPM on the web graph) varies |F|, |Q| and |Vf|;
// Exp-2 (dGPMd on the citation DAG) varies d, |F| and |Vf|; Exp-3
// (synthetic) varies |F| and |G|. Sizes default to a scaled-down version
// of the paper's datasets; Config.Scale restores larger sizes.
//
// Absolute numbers differ from the paper (simulated cluster vs. EC2);
// the reproduced claims are the *shapes*: who wins, by what order of
// magnitude, and which curves are flat vs. growing.
//
// Mirroring the paper's methodology — and the Deployment API it
// motivates — each sweep point fragments its graph once into a
// deployment (with the EC2-like link model) and evaluates all of the
// point's queries and algorithms against the resident fragments.
package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"dgs"
)

// Config tunes an experiment run.
type Config struct {
	// Scale multiplies every dataset size (1.0 = default scaled sizes:
	// web 60K/300K, citation 28K/60K, synthetic 120K/480K).
	Scale float64
	// Queries is the number of random queries averaged per point (the
	// paper averages 20); default 2.
	Queries int
	// Seed makes runs reproducible.
	Seed int64
	// NoNetwork disables the EC2-like link cost model (used by fast unit
	// tests; the figures are meant to run with it on).
	NoNetwork bool
	// Partitioners restricts the "partition" group to the named
	// strategies (benchfig -part); empty means the group's default set.
	Partitioners []string
}

func (c Config) norm() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Queries <= 0 {
		c.Queries = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 16 {
		v = 16
	}
	return v
}

// PartMeta attributes a measured point to the fragmentation it ran on:
// the partitioner strategy, the boundary sizes that parameterize every
// cost bound of the paper, the fragment count and balance, and the
// build time. Recorded into every BENCH_*.json point so past numbers
// stay comparable when partitioners evolve.
type PartMeta struct {
	Strategy string  `json:"strategy"`
	Frags    int     `json:"frags"`
	Nodes    int     `json:"nodes"` // |V| of the fragmented graph
	Vf       int     `json:"vf"`
	Ef       int     `json:"ef"`
	MaxNodes int     `json:"max_nodes"` // largest fragment's |Vi| (balance)
	BuildMs  float64 `json:"build_ms"`
}

// partMeta snapshots a partition's attribution metadata.
func partMeta(part *dgs.Partition) *PartMeta {
	sizes := part.FragmentSizes()
	maxNodes := 0
	if len(sizes) > 0 {
		maxNodes = sizes[0]
	}
	nodes := 0
	for _, s := range sizes {
		nodes += s
	}
	return &PartMeta{
		Strategy: part.Strategy(),
		Frags:    part.NumFragments(),
		Nodes:    nodes,
		Vf:       part.Vf(),
		Ef:       part.Ef(),
		MaxNodes: maxNodes,
		BuildMs:  float64(part.BuildTime().Microseconds()) / 1000,
	}
}

// Point is one x-position of one series.
type Point struct {
	X      string
	PTms   float64
	DSkb   float64
	Msgs   int64
	Rounds int64
	// QPS, P99ms and HitRate are the serving group's axes: sustained
	// throughput, tail latency, and result-cache hit rate of one arm.
	QPS     float64 `json:"QPS,omitempty"`
	P99ms   float64 `json:"P99ms,omitempty"`
	HitRate float64 `json:"HitRate,omitempty"`
	// Frames and AllocKB are the transport group's columns: wire frames
	// crossing the driver's sockets and driver-process bytes allocated,
	// both per query (the -benchmem view of the wire path).
	Frames  int64   `json:"Frames,omitempty"`
	AllocKB float64 `json:"AllocKB,omitempty"`
	// DetectMs, RestoreMs and QueriesLost are the failover group's axes:
	// client-observed loss-detection latency, time until service is
	// restored (manual redeploy or automatic spare takeover), and
	// retryable query failures per kill.
	DetectMs    float64 `json:"DetectMs,omitempty"`
	RestoreMs   float64 `json:"RestoreMs,omitempty"`
	QueriesLost int64   `json:"QueriesLost,omitempty"`
	// Part attributes the point to the fragmentation it was measured
	// on; nil only for points with no deployment behind them.
	Part *PartMeta `json:"Part,omitempty"`
}

// Series is one algorithm's curve.
type Series struct {
	Name   string
	Points []Point
}

// Figure is one panel of Fig. 6.
type Figure struct {
	ID     string // e.g. "6a"
	Title  string
	XLabel string
	YLabel string // "PT (ms)" or "DS (KB)"
	Series []Series
}

// Table renders the figure as an aligned text table (the same rows the
// paper plots).
func (f *Figure) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure %s — %s [%s vs %s]\n", f.ID, f.Title, f.YLabel, f.XLabel)
	if len(f.Series) == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%14s", s.Name)
	}
	sb.WriteByte('\n')
	for i := range f.Series[0].Points {
		fmt.Fprintf(&sb, "%-12s", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			p := s.Points[i]
			switch f.YLabel {
			case "DS (KB)":
				fmt.Fprintf(&sb, "%14.2f", p.DSkb)
			case "QPS":
				fmt.Fprintf(&sb, "%14.1f", p.QPS)
			case "p99 (ms)":
				fmt.Fprintf(&sb, "%14.1f", p.P99ms)
			case "detect (ms)":
				fmt.Fprintf(&sb, "%14.2f", p.DetectMs)
			case "restore (ms)":
				fmt.Fprintf(&sb, "%14.2f", p.RestoreMs)
			default:
				fmt.Fprintf(&sb, "%14.1f", p.PTms)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// groupRunner executes one experiment group and emits its PT+DS figures.
type groupRunner func(cfg Config) ([]*Figure, error)

var groups = map[string]struct {
	figs []string
	run  groupRunner
}{
	"exp1-F":    {[]string{"6a", "6b"}, exp1VaryF},
	"exp1-Q":    {[]string{"6c", "6d"}, exp1VaryQ},
	"exp1-Vf":   {[]string{"6e", "6f"}, exp1VaryVf},
	"exp2-d":    {[]string{"6g", "6h"}, exp2VaryD},
	"exp2-F":    {[]string{"6i", "6j"}, exp2VaryF},
	"exp2-Vf":   {[]string{"6k", "6l"}, exp2VaryVf},
	"exp3-F":    {[]string{"6m", "6n"}, exp3VaryF},
	"exp3-G":    {[]string{"6o", "6p"}, exp3VaryG},
	"updates":   {[]string{"upd-pt", "upd-ds"}, updatesExp},
	"transport": {[]string{"net-pt", "net-ds"}, transportExp},
	"partition": {[]string{"part-pt", "part-ds"}, partitionExp},
	"serving":   {[]string{"srv-qps", "srv-p99"}, servingExp},
	"failover":  {[]string{"fo-detect", "fo-restore"}, failoverExp},
	"planner":   {[]string{"plan-pt", "plan-ds", "plan-wpt", "plan-wds"}, plannerExp},
}

// Figures lists every reproducible figure ID in order: the paper's 16
// panels plus the updates, transport and partition experiments' PT/DS
// pairs, the serving experiment's QPS/p99 pair, the failover
// experiment's detection/restoration pair and the planner experiment's
// evaluation/maintenance pairs.
func Figures() []string {
	return []string{"6a", "6b", "6c", "6d", "6e", "6f", "6g", "6h", "6i", "6j", "6k", "6l", "6m", "6n", "6o", "6p", "upd-pt", "upd-ds", "net-pt", "net-ds", "part-pt", "part-ds", "srv-qps", "srv-p99", "fo-detect", "fo-restore", "plan-pt", "plan-ds", "plan-wpt", "plan-wds"}
}

// Groups lists the experiment groups.
func Groups() []string {
	out := make([]string, 0, len(groups))
	for g := range groups {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// RunFigure regenerates the group containing the figure and returns all
// of the group's figures (a PT panel and its DS sibling share the runs).
func RunFigure(id string, cfg Config) ([]*Figure, error) {
	for _, g := range groups {
		for _, f := range g.figs {
			if f == id {
				return g.run(cfg.norm())
			}
		}
	}
	return nil, fmt.Errorf("bench: unknown figure %q (have %v)", id, Figures())
}

// RunGroup regenerates one experiment group by name.
func RunGroup(name string, cfg Config) ([]*Figure, error) {
	g, ok := groups[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown group %q (have %v)", name, Groups())
	}
	return g.run(cfg.norm())
}

// network is the per-deployment link model of a run: EC2-like unless the
// config opts out (PT must charge for shipped bytes; §6 runs on a real
// cluster).
func (c Config) network() dgs.Network {
	if c.NoNetwork {
		return dgs.Network{}
	}
	return dgs.EC2Network()
}

// measurement accumulates averaged stats for one (algorithm, point).
type measurement struct {
	pt, ds float64
	msgs   int64
	rounds int64
	n      int
	part   *PartMeta
}

func (m *measurement) add(st dgs.Stats) {
	m.pt += float64(st.Wall.Microseconds()) / 1000
	m.ds += float64(st.DataBytes) / 1024
	m.msgs += st.DataMsgs
	m.rounds += st.Rounds
	m.n++
}

func (m *measurement) point(x string) Point {
	if m.n == 0 {
		return Point{X: x, Part: m.part}
	}
	n := float64(m.n)
	return Point{X: x, PTms: m.pt / n, DSkb: m.ds / n, Msgs: m.msgs / int64(m.n), Rounds: m.rounds / int64(m.n), Part: m.part}
}

// runPoint deploys the partition once and evaluates the given algorithms
// on (queries × resident fragments), returning one measurement per
// algorithm — the paper's fragment-once, query-many methodology.
func runPoint(cfg Config, algos []dgs.Algorithm, queries []*dgs.Pattern, part *dgs.Partition, qopts ...dgs.QueryOption) (map[dgs.Algorithm]*measurement, error) {
	dep, err := dgs.Deploy(part, dgs.WithNetwork(cfg.network()), dgs.WithQueryDefaults(qopts...))
	if err != nil {
		return nil, err
	}
	defer dep.Close()
	out := make(map[dgs.Algorithm]*measurement, len(algos))
	meta := partMeta(part)
	for _, a := range algos {
		out[a] = &measurement{part: meta}
	}
	for _, q := range queries {
		for _, a := range algos {
			res, err := dep.Query(context.Background(), q, dgs.WithAlgorithm(a))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", a, err)
			}
			out[a].add(res.Stats)
		}
	}
	return out, nil
}

func buildFigures(ptID, dsID, title, xlabel string, ptAlgos, dsAlgos []dgs.Algorithm, xs []string, ms []map[dgs.Algorithm]*measurement) []*Figure {
	pt := &Figure{ID: ptID, Title: title, XLabel: xlabel, YLabel: "PT (ms)"}
	ds := &Figure{ID: dsID, Title: title, XLabel: xlabel, YLabel: "DS (KB)"}
	for _, a := range ptAlgos {
		s := Series{Name: a.String()}
		for i, m := range ms {
			s.Points = append(s.Points, m[a].point(xs[i]))
		}
		pt.Series = append(pt.Series, s)
	}
	for _, a := range dsAlgos {
		s := Series{Name: a.String()}
		for i, m := range ms {
			s.Points = append(s.Points, m[a].point(xs[i]))
		}
		ds.Series = append(ds.Series, s)
	}
	return []*Figure{pt, ds}
}
