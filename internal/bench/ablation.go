package bench

// Ablation of the §4.2 design choices: full dGPM (incremental lEval +
// push), dGPM without push, and dGPMNOpt (neither). The paper reports
// "dGPM is 20.3 times faster than dGPMNOpt on average" and that the
// improvement grows with |Fm| — this group regenerates that comparison.

import (
	"context"
	"fmt"

	"dgs"
)

func init() {
	groups["ablation"] = struct {
		figs []string
		run  groupRunner
	}{[]string{"ablation-PT", "ablation-DS"}, runAblation}
}

// ablationVariant pairs a display name with query options.
type ablationVariant struct {
	name string
	opts []dgs.QueryOption
}

func ablationVariants() []ablationVariant {
	return []ablationVariant{
		{"dGPM", []dgs.QueryOption{dgs.WithAlgorithm(dgs.AlgoDGPM)}},
		{"dGPM-nopush", []dgs.QueryOption{dgs.WithAlgorithm(dgs.AlgoDGPM), dgs.WithPushDisabled()}},
		{"dGPMNOpt", []dgs.QueryOption{dgs.WithAlgorithm(dgs.AlgoDGPMNoOpt)}},
	}
}

// runAblation sweeps |Fm| (via |F|) on the web workload, as in the
// paper's optimization-effectiveness experiment ("the improvement is more
// significant over larger fragments").
func runAblation(cfg Config) ([]*Figure, error) {
	dict := dgs.NewDict()
	g := dgs.GenWeb(dict, cfg.scaled(webNV), cfg.scaled(webNE), cfg.Seed)
	queries := exp1Queries(dict, cfg, 5, 10)
	variants := ablationVariants()

	pt := &Figure{ID: "ablation-PT", Title: "dGPM optimization ablation (§4.2)", XLabel: "|F|", YLabel: "PT (ms)"}
	ds := &Figure{ID: "ablation-DS", Title: "dGPM optimization ablation (§4.2)", XLabel: "|F|", YLabel: "DS (KB)"}
	series := make([]*measurementSeries, len(variants))
	for i, v := range variants {
		series[i] = &measurementSeries{name: v.name}
	}
	for _, nf := range []int{4, 8, 16} {
		part, err := dgs.PartitionTargetRatio(g, nf, dgs.ByVf, 0.25, cfg.Seed)
		if err != nil {
			return nil, err
		}
		dep, err := dgs.Deploy(part, dgs.WithNetwork(cfg.network()))
		if err != nil {
			return nil, err
		}
		x := fmt.Sprint(nf)
		for i, v := range variants {
			m := &measurement{part: partMeta(part)}
			for _, q := range queries {
				res, err := dep.Query(context.Background(), q, v.opts...)
				if err != nil {
					dep.Close()
					return nil, fmt.Errorf("%s: %w", v.name, err)
				}
				m.add(res.Stats)
			}
			series[i].points = append(series[i].points, m.point(x))
		}
		dep.Close()
	}
	for _, s := range series {
		pt.Series = append(pt.Series, Series{Name: s.name, Points: s.points})
		ds.Series = append(ds.Series, Series{Name: s.name, Points: s.points})
	}
	return []*Figure{pt, ds}, nil
}

type measurementSeries struct {
	name   string
	points []Point
}
