package bench

import (
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config { return Config{Scale: 0.05, Queries: 1, Seed: 3, NoNetwork: true} }

func TestFiguresComplete(t *testing.T) {
	ids := Figures()
	if len(ids) != 30 { // the paper's 16 panels + upd/net/part PT+DS pairs + serving QPS/p99 + failover detect/restore + planner eval/maintenance pairs
		t.Fatalf("want 30 panels, got %d", len(ids))
	}
	covered := map[string]bool{}
	for _, g := range groups {
		for _, f := range g.figs {
			covered[f] = true
		}
	}
	for _, id := range ids {
		if !covered[id] {
			t.Fatalf("figure %s has no experiment group", id)
		}
	}
	if len(Groups()) != 15 { // 8 figure groups + ablation + updates + transport + partition + serving + failover + planner
		t.Fatalf("want 15 groups, got %d", len(Groups()))
	}
}

func TestUnknownFigure(t *testing.T) {
	if _, err := RunFigure("9z", tiny()); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if _, err := RunGroup("nope", tiny()); err == nil {
		t.Fatal("unknown group accepted")
	}
}

func TestExp1VaryFShape(t *testing.T) {
	figs, err := RunFigure("6a", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 || figs[0].ID != "6a" || figs[1].ID != "6b" {
		t.Fatalf("group shape wrong: %v", figs)
	}
	pt, ds := figs[0], figs[1]
	if len(pt.Series) != 5 || len(ds.Series) != 3 {
		t.Fatalf("series counts: PT=%d DS=%d", len(pt.Series), len(ds.Series))
	}
	for _, s := range pt.Series {
		if len(s.Points) != 5 {
			t.Fatalf("series %s has %d points", s.Name, len(s.Points))
		}
	}
	// The headline DS claim: dGPM ships far less than disHHK at |F|=20.
	var dgpmDS, hhkDS float64
	for _, s := range ds.Series {
		last := s.Points[len(s.Points)-1].DSkb
		switch s.Name {
		case "dGPM":
			dgpmDS = last
		case "disHHK":
			hhkDS = last
		}
	}
	if dgpmDS <= 0 && hhkDS <= 0 {
		t.Fatal("no shipment measured at all")
	}
	if dgpmDS >= hhkDS {
		t.Fatalf("dGPM must ship less than disHHK: %f vs %f KB", dgpmDS, hhkDS)
	}
	// Table renders all series.
	tab := pt.Table()
	for _, name := range []string{"dGPM", "disHHK", "dGPMNOpt", "dMes", "Match"} {
		if !strings.Contains(tab, name) {
			t.Fatalf("table missing %s:\n%s", name, tab)
		}
	}
}

func TestExp2VaryDShape(t *testing.T) {
	figs, err := RunFigure("6g", tiny())
	if err != nil {
		t.Fatal(err)
	}
	pt, ds := figs[0], figs[1]
	if len(pt.Series) != 4 || len(ds.Series) != 3 {
		t.Fatalf("series counts: %d %d", len(pt.Series), len(ds.Series))
	}
	if len(pt.Series[0].Points) != 7 { // d = 2..8
		t.Fatalf("points = %d", len(pt.Series[0].Points))
	}
	// dGPMd's DS must not grow with d (Fig. 6(h)): compare first and last
	// within an order of magnitude.
	var first, last float64
	for _, s := range ds.Series {
		if s.Name == "dGPMd" {
			first, last = s.Points[0].DSkb, s.Points[len(s.Points)-1].DSkb
		}
	}
	if last > 10*first+1 {
		t.Fatalf("dGPMd DS grew with d: %f -> %f KB", first, last)
	}
}

func TestExp3VaryGRuns(t *testing.T) {
	figs, err := RunGroup("exp3-G", tiny())
	if err != nil {
		t.Fatal(err)
	}
	ds := figs[1]
	if ds.ID != "6p" {
		t.Fatalf("second figure = %s", ds.ID)
	}
	// dGPM's DS must stay well below disHHK's as |G| grows.
	var dgpm, hhk Series
	for _, s := range ds.Series {
		switch s.Name {
		case "dGPM":
			dgpm = s
		case "disHHK":
			hhk = s
		}
	}
	lastD := dgpm.Points[len(dgpm.Points)-1].DSkb
	lastH := hhk.Points[len(hhk.Points)-1].DSkb
	if lastD >= lastH {
		t.Fatalf("dGPM DS %f must be below disHHK %f at the largest |G|", lastD, lastH)
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{}.norm()
	if c.Scale != 1 || c.Queries != 2 || c.Seed != 1 {
		t.Fatalf("norm: %+v", c)
	}
	if (Config{Scale: 0.001}).scaled(1000) != 16 {
		t.Fatal("scaled floor broken")
	}
}

func TestAblationGroup(t *testing.T) {
	figs, err := RunGroup("ablation", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 || figs[0].ID != "ablation-PT" {
		t.Fatalf("ablation figures: %v", figs)
	}
	if len(figs[0].Series) != 3 {
		t.Fatalf("want 3 variants, got %d", len(figs[0].Series))
	}
	// The unoptimized variant must be slower than full dGPM at the
	// largest fragment count (the paper reports ~20x; any consistent
	// slowdown validates the ablation wiring at test scale).
	var full, nopt float64
	for _, s := range figs[0].Series {
		last := s.Points[len(s.Points)-1].PTms
		switch s.Name {
		case "dGPM":
			full = last
		case "dGPMNOpt":
			nopt = last
		}
	}
	if nopt <= full {
		t.Logf("note: NOpt (%f ms) not slower than dGPM (%f ms) at tiny scale", nopt, full)
	}
}

func TestUpdatesGroupShape(t *testing.T) {
	figs, err := RunGroup("updates", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 || figs[0].ID != "upd-pt" || figs[1].ID != "upd-ds" {
		t.Fatalf("updates figures: %v", figs)
	}
	ds := figs[1]
	if len(ds.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(ds.Series))
	}
	var inc, rec float64
	for _, s := range ds.Series {
		total := 0.0
		for _, p := range s.Points {
			total += p.DSkb
		}
		switch s.Name {
		case "dGPM-inc":
			inc = total
		case "recompute":
			rec = total
		}
	}
	// The headline claim: maintaining the standing query ships less than
	// re-answering it from scratch, summed over the whole stream.
	if inc >= rec {
		t.Fatalf("incremental DS %.2fKB not below recompute DS %.2fKB", inc, rec)
	}
}

func TestTransportGroupShape(t *testing.T) {
	figs, err := RunGroup("transport", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 || figs[0].ID != "net-pt" || figs[1].ID != "net-ds" {
		t.Fatalf("transport figures: %v", figs)
	}
	ds := figs[1]
	if len(ds.Series) != 7 {
		t.Fatalf("want inproc/tcp-v1/tcp/tcp-traced payload + three wire series, got %d", len(ds.Series))
	}
	byName := map[string]Series{}
	for _, s := range ds.Series {
		byName[s.Name] = s
	}
	for _, arm := range []string{"tcp-v1", "tcp", "tcp-traced"} {
		for i := range byName["wire/"+arm].Points {
			wire := byName["wire/"+arm].Points[i].DSkb
			payload := byName["dGPM/"+arm].Points[i].DSkb
			// Framing, acks and control traffic ride on top of the payload —
			// the measured wire bytes must strictly dominate the exact DS.
			if wire <= payload {
				t.Fatalf("%s point %d: wire %.2fKB not above payload %.2fKB", arm, i, wire, payload)
			}
			if byName["dGPM/inproc"].Points[i].DSkb == 0 {
				t.Fatalf("point %d: in-process arm shipped nothing", i)
			}
			if byName["dGPM/"+arm].Points[i].Frames == 0 {
				t.Fatalf("%s point %d: TCP arm recorded no frames", arm, i)
			}
		}
	}
	for i := range byName["wire/tcp"].Points {
		// Coalescing must never move the same payload in more wire bytes
		// than per-message framing (strict drops are asserted at real
		// scale by TestCoalescingReducesFrames; at toy scale runs may not
		// form, so no-increase is the invariant here).
		if v2, v1 := byName["wire/tcp"].Points[i].DSkb, byName["wire/tcp-v1"].Points[i].DSkb; v2 > v1 {
			t.Fatalf("point %d: coalescing wire %.2fKB above per-message wire %.2fKB", i, v2, v1)
		}
	}
	// The PT panel carries the message-storm rows beside the dGPM arms.
	names := map[string]bool{}
	for _, s := range figs[0].Series {
		names[s.Name] = true
	}
	for _, need := range []string{"dGPM/inproc", "dGPM/tcp-v1", "dGPM/tcp", "dGPM/tcp-traced", "storm/tcp-v1", "storm/tcp"} {
		if !names[need] {
			t.Fatalf("net-pt missing series %q (have %v)", need, names)
		}
	}
}

// TestPartitionSmoke is the CI partition-smoke gate: the partition
// group must run end to end on a tiny graph (both backends), every
// point must carry its fragmentation metadata, and LDG must beat the
// random fixture on |Ef| even at toy scale.
func TestPartitionSmoke(t *testing.T) {
	figs, err := RunGroup("partition", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 || figs[0].ID != "part-pt" || figs[1].ID != "part-ds" {
		t.Fatalf("group shape wrong: %v", figs)
	}
	pt, ds := figs[0], figs[1]
	if len(pt.Series) != 4 || len(ds.Series) != 6 { // dGPM/dMes × inproc/tcp (+2 wire series on DS)
		t.Fatalf("series counts: PT=%d DS=%d", len(pt.Series), len(ds.Series))
	}
	ef := map[string]int{}
	for _, s := range append(pt.Series, ds.Series...) {
		for _, p := range s.Points {
			if p.Part == nil {
				t.Fatalf("series %s point %s has no partition metadata", s.Name, p.X)
			}
			if p.Part.Strategy != p.X {
				t.Fatalf("series %s point %s attributed to %q", s.Name, p.X, p.Part.Strategy)
			}
			if p.Part.BuildMs < 0 || p.Part.Frags < 8 {
				t.Fatalf("series %s point %s has bogus metadata %+v", s.Name, p.X, p.Part)
			}
			ef[p.X] = p.Part.Ef
		}
	}
	for _, strat := range []string{"random", "blocks", "ldg", "fennel"} {
		if _, ok := ef[strat]; !ok {
			t.Fatalf("strategy %s never measured (have %v)", strat, ef)
		}
	}
	if ef["ldg"] >= ef["random"] {
		t.Fatalf("LDG cut %d not below random cut %d", ef["ldg"], ef["random"])
	}
	t.Logf("Ef: random=%d blocks=%d ldg=%d fennel=%d", ef["random"], ef["blocks"], ef["ldg"], ef["fennel"])
	// Equal balance footing: every strategy within the 10% slack cap the
	// group partitions under, computed from the recorded metadata.
	for _, s := range pt.Series {
		for _, p := range s.Points {
			cap_ := (p.Part.Nodes*11 + 10*p.Part.Frags - 1) / (10 * p.Part.Frags) // ceil(1.1·|V|/|F|)
			if p.Part.MaxNodes == 0 || p.Part.MaxNodes > cap_ {
				t.Fatalf("strategy %s max fragment %d outside slack cap %d (|V|=%d, |F|=%d)",
					p.X, p.Part.MaxNodes, cap_, p.Part.Nodes, p.Part.Frags)
			}
		}
	}
	// The TCP arm must have measured real wire bytes for at least one
	// strategy (tiny graphs can round small, but not all-zero).
	var wire float64
	for _, s := range ds.Series {
		if s.Name == "dGPM-wire/tcp" || s.Name == "dMes-wire/tcp" {
			for _, p := range s.Points {
				wire += p.DSkb
			}
		}
	}
	if wire == 0 {
		t.Fatal("TCP arm measured no wire bytes")
	}
}

// TestServingSmoke runs the serving group in miniature and asserts its
// structural claims: both figures produced, every point carries QPS,
// p99 and fragmentation metadata, and the cache-on arm actually hit its
// cache on the skewed workload.
func TestServingSmoke(t *testing.T) {
	figs, err := RunGroup("serving", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 || figs[0].ID != "srv-qps" || figs[1].ID != "srv-p99" {
		t.Fatalf("serving group shape wrong: %v", figs)
	}
	qps := figs[0]
	if len(qps.Series) != 2 {
		t.Fatalf("want cache-on/cache-off series, got %d", len(qps.Series))
	}
	for _, s := range qps.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %s has %d points, want skewed+uniform", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.QPS <= 0 || p.P99ms <= 0 {
				t.Fatalf("series %s point %s lacks throughput/latency: %+v", s.Name, p.X, p)
			}
			if p.Part == nil || p.Part.Frags == 0 {
				t.Fatalf("series %s point %s lacks fragmentation metadata", s.Name, p.X)
			}
		}
	}
	for _, s := range qps.Series {
		for _, p := range s.Points {
			switch s.Name {
			case "cache-on":
				if p.X == "skewed" && p.HitRate <= 0 {
					t.Fatalf("cache-on skewed arm never hit the cache: %+v", p)
				}
			case "cache-off":
				if p.HitRate != 0 {
					t.Fatalf("cache-off arm reports hit rate %v", p.HitRate)
				}
			}
		}
	}
}
