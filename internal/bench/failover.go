package bench

// The failover experiment (beyond the paper's figures): what a daemon
// crash costs a live deployment. Sites are spread over four loopback
// dgsd-equivalent servers; each measured episode severs one daemon's
// connection mid-service and records, from the client's chair, how long
// the loss takes to surface (detection), how long restoring service
// takes, and how many queries failed retryably in between. Two arms:
//
//   - survivor: no spare capacity — detection suspends the deployment
//     and a manual Recover doubles the lost fragments up on a surviving
//     daemon over the REDEPLOY frame (redeploy time is the timed
//     Recover call; lost queries are those that errored before recovery
//     began).
//   - spare: a spare daemon plus heartbeats — recovery is automatic,
//     so the recorded time is sever-to-first-successful-query and lost
//     queries are every retryable failure a persistent client saw.
//
// The headline row is |F| = 64 (16 sites per daemon): fragment count
// sets both the re-deploy payload and the blast radius of one daemon.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dgs"
	"dgs/internal/transport/tcpnet"
)

// severableServer is a loopback site server whose accepted connections
// the experiment can cut, simulating a daemon crash.
type severableServer struct {
	lis   net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (s *severableServer) Accept() (net.Conn, error) {
	c, err := s.lis.Accept()
	if err == nil {
		s.mu.Lock()
		s.conns = append(s.conns, c)
		s.mu.Unlock()
	}
	return c, err
}

func (s *severableServer) Close() error   { return s.lis.Close() }
func (s *severableServer) Addr() net.Addr { return s.lis.Addr() }

func (s *severableServer) severAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.conns {
		c.Close()
	}
	s.conns = nil
}

func startSeverableServers(n int) (addrs []string, servers []*severableServer, stop func(), err error) {
	stop = func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, nil, err
		}
		sv := &severableServer{lis: lis}
		srv := &tcpnet.Server{}
		go srv.Serve(sv)
		servers = append(servers, sv)
		addrs = append(addrs, lis.Addr().String())
	}
	return addrs, servers, stop, nil
}

// episode is one measured kill: client-observed detection latency, time
// to restored service, and retryable query failures along the way.
type episode struct {
	detect   time.Duration
	restore  time.Duration
	lost     int64
	failover int64
}

// runEpisode deploys fresh daemons, warms the query path, severs one
// daemon and drives queries until service is restored. With manual set,
// restoration is a timed Deployment.Recover onto a survivor; otherwise
// the spare+heartbeat auto-recovery runs underneath and the episode
// just keeps querying until an answer lands.
func runEpisode(part *dgs.Partition, q *dgs.Pattern, manual bool) (*episode, error) {
	ctx := context.Background()
	addrs, servers, stop, err := startSeverableServers(4)
	if err != nil {
		return nil, err
	}
	defer stop()
	opts := []dgs.DeployOption{dgs.WithRemoteSites(addrs...)}
	if !manual {
		spareAddrs, _, stopSpare, err := startSeverableServers(1)
		if err != nil {
			return nil, err
		}
		defer stopSpare()
		opts = append(opts,
			dgs.WithSpareSites(spareAddrs...),
			dgs.WithHeartbeat(50*time.Millisecond, 2))
	}
	dep, err := dgs.Deploy(part, opts...)
	if err != nil {
		return nil, err
	}
	defer dep.Close()
	if _, err := dep.Query(ctx, q); err != nil {
		return nil, fmt.Errorf("warm-up query: %w", err)
	}

	ep := &episode{}
	servers[1].severAll()
	t0 := time.Now()
	deadline := t0.Add(60 * time.Second)

	// Query until the loss surfaces; pre-detection queries may still
	// succeed if they race the crashing connection.
	for {
		_, err := dep.Query(ctx, q)
		if err == nil {
			if time.Now().After(deadline) {
				return nil, errors.New("severed daemon never detected")
			}
			continue
		}
		if !errors.Is(err, dgs.ErrSiteLost) {
			return nil, fmt.Errorf("post-sever query: %w", err)
		}
		ep.detect = time.Since(t0)
		ep.lost++
		break
	}

	if manual {
		r0 := time.Now()
		if err := dep.Recover(ctx); err != nil {
			return nil, fmt.Errorf("recover onto survivor: %w", err)
		}
		ep.restore = time.Since(r0)
		if _, err := dep.Query(ctx, q); err != nil {
			return nil, fmt.Errorf("post-recover query: %w", err)
		}
	} else {
		for {
			_, err := dep.Query(ctx, q)
			if err == nil {
				ep.restore = time.Since(t0)
				break
			}
			if !errors.Is(err, dgs.ErrSiteLost) {
				return nil, fmt.Errorf("during auto-recovery: %w", err)
			}
			ep.lost++
			if time.Now().After(deadline) {
				return nil, errors.New("auto-recovery never restored service")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	ep.failover = dep.Failovers()
	return ep, nil
}

// failoverExp produces the "fo-detect"/"fo-restore" panels: client-
// observed detection latency and service-restoration time per fragment
// count, for the survivor-redeploy and spare-auto-failover arms, with
// lost-query counts and partition metadata on every point.
func failoverExp(cfg Config) ([]*Figure, error) {
	dict := dgs.NewDict()
	g := dgs.GenWeb(dict, cfg.scaled(webNV/4), cfg.scaled(webNE/4), cfg.Seed)
	q := dgs.GenCyclicPatternOver(dict, 5, 10, 4, cfg.Seed+17)

	arms := []struct {
		name   string
		manual bool
	}{
		{"survivor", true},
		{"spare", false},
	}
	fragCounts := []int{8, 64}
	detect := &Figure{ID: "fo-detect", Title: "daemon kill: client-observed detection latency", XLabel: "|F|", YLabel: "detect (ms)"}
	restore := &Figure{ID: "fo-restore", Title: "daemon kill: service restoration (redeploy vs spare)", XLabel: "|F|", YLabel: "restore (ms)"}
	detSeries := map[string]*Series{}
	resSeries := map[string]*Series{}
	for _, a := range arms {
		detSeries[a.name] = &Series{Name: a.name}
		resSeries[a.name] = &Series{Name: a.name}
	}
	kills := cfg.Queries // episodes averaged per point
	for _, nf := range fragCounts {
		part, err := dgs.PartitionTargetRatio(g, nf, dgs.ByVf, 0.25, cfg.Seed)
		if err != nil {
			return nil, err
		}
		meta := partMeta(part)
		for _, a := range arms {
			var detMs, resMs float64
			var lost, failovers int64
			for k := 0; k < kills; k++ {
				ep, err := runEpisode(part, q, a.manual)
				if err != nil {
					return nil, fmt.Errorf("%s |F|=%d kill %d: %w", a.name, nf, k, err)
				}
				detMs += float64(ep.detect.Microseconds()) / 1000
				resMs += float64(ep.restore.Microseconds()) / 1000
				lost += ep.lost
				failovers += ep.failover
			}
			if failovers < int64(kills) {
				return nil, fmt.Errorf("%s |F|=%d: %d kills but %d recorded failovers", a.name, nf, kills, failovers)
			}
			nk := float64(kills)
			x := fmt.Sprint(nf)
			p := Point{
				X: x, Part: meta,
				DetectMs:    detMs / nk,
				RestoreMs:   resMs / nk,
				QueriesLost: lost / int64(kills),
			}
			dp, rp := p, p
			dp.PTms = p.DetectMs
			rp.PTms = p.RestoreMs
			detSeries[a.name].Points = append(detSeries[a.name].Points, dp)
			resSeries[a.name].Points = append(resSeries[a.name].Points, rp)
		}
	}
	for _, a := range arms {
		detect.Series = append(detect.Series, *detSeries[a.name])
		restore.Series = append(restore.Series, *resSeries[a.name])
	}
	return []*Figure{detect, restore}, nil
}
