package bench

// The updates experiment (beyond the paper's Fig. 6, following its §7
// incremental-maintenance direction and [13]): a deployed synthetic
// world absorbs a 1% edge-deletion stream in batches while a standing
// query is maintained incrementally. Per batch, the incremental arm's
// PT/DS (the Watch refinement: falsification propagation in O(|AFF|))
// is compared against re-running the same query from scratch on the
// mutated deployment. The claim reproduced: incremental maintenance
// ships less and responds faster than recomputation, increasingly so as
// the per-batch affected area shrinks relative to |G|.

import (
	"context"
	"fmt"

	"dgs"
)

// updatesExp produces the "upd-pt"/"upd-ds" panels: PT and DS per
// deletion batch for {incremental, recompute}.
func updatesExp(cfg Config) ([]*Figure, error) {
	ctx := context.Background()
	dict := dgs.NewDict()
	g := dgs.GenSynthetic(dict, cfg.scaled(synNV/2), cfg.scaled(synNE/2), cfg.Seed)
	part, err := dgs.PartitionTargetRatio(g, 8, dgs.ByVf, 0.25, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dep, err := dgs.Deploy(part, dgs.WithNetwork(cfg.network()))
	if err != nil {
		return nil, err
	}
	defer dep.Close()
	q := dgs.GenCyclicPatternOver(dict, 5, 10, 4, cfg.Seed+100)
	w, err := dep.Watch(ctx, q)
	if err != nil {
		return nil, err
	}
	nDel := g.NumEdges() / 100 // the 1% stream
	if nDel < 5 {
		nDel = 5
	}
	batches := dgs.BatchOps(dgs.GenUpdateStream(part.CurrentGraph(), nDel, 0, cfg.Seed+5), nDel/5+1)

	inc := Series{Name: "dGPM-inc"}
	rec := Series{Name: "recompute"}
	for bi, batch := range batches {
		if _, err := dep.Apply(ctx, batch); err != nil {
			return nil, err
		}
		x := fmt.Sprint(bi + 1)
		m := measurement{part: partMeta(part)}
		m.add(w.LastStats())
		inc.Points = append(inc.Points, m.point(x))
		res, err := dep.Query(ctx, q)
		if err != nil {
			return nil, err
		}
		mr := measurement{part: partMeta(part)}
		mr.add(res.Stats)
		rec.Points = append(rec.Points, mr.point(x))
		if !res.Match.Equal(w.Current()) {
			return nil, fmt.Errorf("updates: incremental relation diverged from recompute at batch %d", bi)
		}
	}
	pt := &Figure{ID: "upd-pt", Title: "incremental maintenance vs recompute, 1% deletion stream", XLabel: "batch", YLabel: "PT (ms)", Series: []Series{inc, rec}}
	ds := &Figure{ID: "upd-ds", Title: "incremental maintenance vs recompute, 1% deletion stream", XLabel: "batch", YLabel: "DS (KB)", Series: []Series{inc, rec}}
	return []*Figure{pt, ds}, nil
}
