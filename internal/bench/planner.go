package bench

// The planner experiment (beyond the paper's figures): does the
// selectivity-greedy evaluation order pay? The plan-pt/plan-ds pair
// sweeps the pattern's edge count on the Zipf-labeled web workload at
// 64 sites: each point evaluates the same random queries on a
// planner-on and a WithPlannerDisabled deployment of the same
// fragmentation. The counter fixpoint is confluent — both arms compute
// the identical relation (asserted here) — so the panels isolate the
// pure cost effect of ordering falsification work by selectivity.
//
// Panel pair 1 runs with the zero link model, deliberately: by
// confluence the plan cannot change what ships (plan-ds exhibits the
// identical DS), so under the EC2 model both arms would sleep through
// the same message schedule and PT would measure only the link model.
// What the plan does change is site compute — label-grouped counter
// initialization touches matching edges instead of all |Eq| per
// adjacency entry, and the seed scan exhausts the emptiest counters
// first — and that effect grows with |Eq|, which is exactly the sweep.
//
// The plan-wpt/plan-wds pair measures standing-query sharing: k
// equivalent Watches absorb one insertion batch (the full
// re-evaluation path) either on the planner's single shared session or
// as k independent planner-off sessions. The shared arm's maintenance
// bill is one window regardless of k; the independent arm pays k times.

import (
	"context"
	"fmt"
	"runtime"

	"dgs"
)

// plannerEdgeCounts are the plan-pt sweep positions: |Eq| per pattern,
// with |Vq| chosen so every pattern stays connected and cyclic.
var plannerEdgeCounts = [][2]int{{2, 2}, {4, 4}, {5, 6}, {6, 8}} // {nv, ne}

// plannerReps re-times each query this many times per arm: the arms
// differ only in site compute, so the panel needs tighter averaging
// than the network-bound groups.
const plannerReps = 3

func plannerExp(cfg Config) ([]*Figure, error) {
	ctx := context.Background()

	// Panel pair 1: planned vs unplanned one-shot evaluation, varying
	// |Eq| at 64 sites.
	dict := dgs.NewDict()
	g := dgs.GenWeb(dict, cfg.scaled(webNV/2), cfg.scaled(webNE/2), cfg.Seed)
	part, err := dgs.PartitionTargetRatio(g, 64, dgs.ByVf, 0.25, cfg.Seed)
	if err != nil {
		return nil, err
	}
	planned := Series{Name: "planned"}
	unplanned := Series{Name: "unplanned"}
	for pi, shape := range plannerEdgeCounts {
		nv, ne := shape[0], shape[1]
		// Matching patterns only: a pattern with an absent label (or an
		// empty relation) would hand the planned arm its short-circuit
		// verdict for free and measure nothing about ordering.
		queries := make([]*dgs.Pattern, cfg.Queries)
		for i := range queries {
			for attempt := int64(0); ; attempt++ {
				q := dgs.GenCyclicPattern(dict, nv, ne, cfg.Seed+int64(100*pi+i)+1000*attempt)
				if dgs.Simulate(q, g).Ok() {
					queries[i] = q
					break
				}
				if attempt == 50 {
					return nil, fmt.Errorf("planner |Eq|=%d: no matching pattern found in 50 draws", ne)
				}
			}
		}
		x := fmt.Sprint(ne)
		// Both arms stay resident and the queries interleave between
		// them, so heap state, GC debt and scheduler warmth are shared
		// instead of charged to whichever arm runs first.
		depOn, err := dgs.Deploy(part, dgs.WithNetwork(dgs.Network{}))
		if err != nil {
			return nil, err
		}
		depOff, err := dgs.Deploy(part, dgs.WithNetwork(dgs.Network{}), dgs.WithPlannerDisabled())
		if err != nil {
			depOn.Close()
			return nil, err
		}
		mOn := measurement{part: partMeta(part)}
		mOff := measurement{part: partMeta(part)}
		runArms := func(q *dgs.Pattern, measure bool) error {
			on, err := depOn.Query(ctx, q)
			if err != nil {
				return err
			}
			off, err := depOff.Query(ctx, q)
			if err != nil {
				return err
			}
			if !on.Match.Equal(off.Match) {
				return fmt.Errorf("arms diverge (confluence violated)")
			}
			if measure {
				mOn.add(on.Stats)
				mOff.add(off.Stats)
			}
			return nil
		}
		runtime.GC()
		if err := runArms(queries[0], false); err != nil { // unmeasured warm-up
			depOn.Close()
			depOff.Close()
			return nil, fmt.Errorf("planner |Eq|=%d: %w", ne, err)
		}
		for rep := 0; rep < plannerReps; rep++ {
			for qi, q := range queries {
				if err := runArms(q, true); err != nil {
					depOn.Close()
					depOff.Close()
					return nil, fmt.Errorf("planner |Eq|=%d query %d: %w", ne, qi, err)
				}
			}
		}
		depOn.Close()
		depOff.Close()
		planned.Points = append(planned.Points, mOn.point(x))
		unplanned.Points = append(unplanned.Points, mOff.point(x))
	}
	pt := &Figure{ID: "plan-pt", Title: "selectivity-greedy plan vs declaration order, web graph, 64 sites", XLabel: "|Eq|", YLabel: "PT (ms)", Series: []Series{planned, unplanned}}
	ds := &Figure{ID: "plan-ds", Title: "selectivity-greedy plan vs declaration order, web graph, 64 sites", XLabel: "|Eq|", YLabel: "DS (KB)", Series: []Series{planned, unplanned}}

	// Panel pair 2: shared vs independent maintenance for k overlapping
	// standing queries absorbing one insertion batch.
	dict2 := dgs.NewDict()
	g2 := dgs.GenSynthetic(dict2, cfg.scaled(synNV/8), cfg.scaled(synNE/8), cfg.Seed+1)
	wq := dgs.GenCyclicPatternOver(dict2, 4, 6, 4, cfg.Seed+2)
	shared := Series{Name: "shared"}
	indep := Series{Name: "independent"}
	for _, k := range []int{1, 2, 4, 8} {
		x := fmt.Sprint(k)
		for _, off := range []bool{false, true} {
			// A fresh fragmentation per arm: Apply mutates it, and both
			// arms must absorb the identical batch from the identical
			// graph (same seed, same state → same stream).
			wpart, err := dgs.PartitionTargetRatio(g2, 8, dgs.ByVf, 0.25, cfg.Seed+3)
			if err != nil {
				return nil, err
			}
			dopts := []dgs.DeployOption{dgs.WithNetwork(cfg.network())}
			if off {
				dopts = append(dopts, dgs.WithPlannerDisabled())
			}
			dep, err := dgs.Deploy(wpart, dopts...)
			if err != nil {
				return nil, err
			}
			for i := 0; i < k; i++ {
				w, err := dep.Watch(ctx, wq)
				if err != nil {
					dep.Close()
					return nil, err
				}
				defer w.Close()
			}
			ops := dgs.GenUpdateStream(wpart.CurrentGraph(), 5, 25, cfg.Seed+4)
			st, err := dep.Apply(ctx, ops)
			if err != nil {
				dep.Close()
				return nil, err
			}
			m := measurement{part: partMeta(wpart)}
			m.add(st.Maintenance)
			dep.Close()
			if off {
				indep.Points = append(indep.Points, m.point(x))
			} else {
				shared.Points = append(shared.Points, m.point(x))
			}
		}
	}
	wpt := &Figure{ID: "plan-wpt", Title: "k equivalent standing queries, one insertion batch: shared session vs independent", XLabel: "watches", YLabel: "PT (ms)", Series: []Series{shared, indep}}
	wds := &Figure{ID: "plan-wds", Title: "k equivalent standing queries, one insertion batch: shared session vs independent", XLabel: "watches", YLabel: "DS (KB)", Series: []Series{shared, indep}}
	return []*Figure{pt, ds, wpt, wds}, nil
}
