package bench

// The partition experiment (beyond the paper's figures): fragmentation
// quality as a measured quantity. Every strategy partitions the same
// 256-site reference workload at the same ±10% balance slack; the group
// records what the planner paid (build time) and what it bought —
// |Vf|/|Ef| boundary sizes, then dGPM/dMes response time, payload data
// shipment, and, on the loopback-TCP arm, the wire bytes a real socket
// actually carried. This is the repro point for the claim that layout
// choice dominates distributed query cost: the paper's bounds are
// parameterized by |Ef|, so a partitioner that halves the cut should
// halve the measured traffic.

import (
	"context"
	"fmt"

	"dgs"
)

// partitionFrags is the reference fragment count; tiny test scales
// shrink it so the smoke run stays fast.
func (c Config) partitionFrags() int {
	nf := int(256 * c.Scale)
	if nf < 8 {
		nf = 8
	}
	if nf > 256 {
		nf = 256
	}
	return nf
}

// partitionStrategies is the sweep: the experiment fixture (random) vs
// the locality baseline (blocks) vs the quality-first streaming
// planners, unless benchfig -part restricts it.
func (c Config) partitionStrategies() []string {
	if len(c.Partitioners) > 0 {
		return c.Partitioners
	}
	return []string{"random", "blocks", "ldg", "fennel"}
}

// partitionExp produces the "part-pt"/"part-ds" panels: per strategy,
// dGPM and dMes PT/DS on the in-process and loopback-TCP backends, plus
// the TCP arm's measured wire bytes. Every point carries the partition
// metadata (strategy, |Vf|, |Ef|, balance, build ms). Like the
// transport group — and unlike the Fig. 6 sweeps — deployments run
// without the emulated EC2 link model: the TCP arm pays real socket
// latency, and strategy-vs-strategy comparisons stay within one arm,
// so an emulated cost on the in-process arm would only blur the
// backend contrast.
func partitionExp(cfg Config) ([]*Figure, error) {
	ctx := context.Background()
	dict := dgs.NewDict()
	g := dgs.GenWeb(dict, cfg.scaled(webNV/4), cfg.scaled(webNE/4), cfg.Seed)
	nf := cfg.partitionFrags()
	queries := make([]*dgs.Pattern, cfg.Queries)
	for i := range queries {
		queries[i] = dgs.GenCyclicPatternOver(dict, 5, 10, 4, cfg.Seed+int64(i)*17)
	}

	// Two site servers on loopback, reused across strategies.
	addrs, stopServers, err := startLoopbackServers(2)
	if err != nil {
		return nil, err
	}
	defer stopServers()

	type arm struct {
		name string
		opts []dgs.DeployOption
	}
	arms := []arm{
		{"inproc", nil},
		{"tcp", []dgs.DeployOption{dgs.WithRemoteSites(addrs...)}},
	}
	algos := []dgs.Algorithm{dgs.AlgoDGPM, dgs.AlgoDMes}

	title := fmt.Sprintf("partitioner quality, %d sites", nf)
	pt := &Figure{ID: "part-pt", Title: title, XLabel: "strategy", YLabel: "PT (ms)"}
	ds := &Figure{ID: "part-ds", Title: title, XLabel: "strategy", YLabel: "DS (KB)"}
	ptSeries := map[string]*Series{}
	dsSeries := map[string]*Series{}
	wireSeries := map[string]*Series{}
	for _, al := range algos {
		for _, a := range arms {
			key := al.String() + "/" + a.name
			ptSeries[key] = &Series{Name: key}
			dsSeries[key] = &Series{Name: key}
		}
		wireSeries[al.String()] = &Series{Name: al.String() + "-wire/tcp"}
	}

	for _, strat := range cfg.partitionStrategies() {
		part, err := dgs.PartitionWith(g, strat, nf,
			dgs.WithPartitionSeed(cfg.Seed), dgs.WithBalanceSlack(0.10))
		if err != nil {
			return nil, fmt.Errorf("partition %s: %w", strat, err)
		}
		meta := partMeta(part)
		for _, a := range arms {
			dep, err := dgs.Deploy(part, a.opts...)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", strat, a.name, err)
			}
			for _, al := range algos {
				m := measurement{part: meta}
				var wire int64
				for _, q := range queries {
					res, err := dep.Query(ctx, q, dgs.WithAlgorithm(al))
					if err != nil {
						dep.Close()
						return nil, fmt.Errorf("%s/%s/%s: %w", strat, a.name, al, err)
					}
					m.add(res.Stats)
					wire += res.Stats.WireBytes
				}
				key := al.String() + "/" + a.name
				ptSeries[key].Points = append(ptSeries[key].Points, m.point(strat))
				dsSeries[key].Points = append(dsSeries[key].Points, m.point(strat))
				if a.name == "tcp" {
					wireSeries[al.String()].Points = append(wireSeries[al.String()].Points,
						Point{X: strat, DSkb: float64(wire) / 1024 / float64(len(queries)), Part: meta})
				}
			}
			dep.Close()
		}
	}
	for _, al := range algos {
		for _, a := range arms {
			key := al.String() + "/" + a.name
			pt.Series = append(pt.Series, *ptSeries[key])
			ds.Series = append(ds.Series, *dsSeries[key])
		}
		ds.Series = append(ds.Series, *wireSeries[al.String()])
	}
	return []*Figure{pt, ds}, nil
}
