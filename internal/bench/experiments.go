package bench

// The eight experiment groups of §6. Default sizes are scaled from the
// paper (Yahoo 3M/15M → 60K/300K; Citation 1.4M/3M → 28K/60K; synthetic
// 30M/120M → 120K/480K); Config.Scale restores larger sizes.

import (
	"fmt"

	"dgs"
)

// Exp-1 shared setting (§6 Exp-1): Yahoo-like graph, 20 cyclic patterns
// averaged — here Config.Queries seeded cyclic patterns of |Q|=(5,10).
const (
	webNV = 60_000
	webNE = 300_000
	citNV = 28_000
	citNE = 60_000
	synNV = 120_000
	synNE = 480_000
)

var exp1PTAlgos = []dgs.Algorithm{dgs.AlgoDGPM, dgs.AlgoDisHHK, dgs.AlgoDGPMNoOpt, dgs.AlgoDMes, dgs.AlgoMatch}
var exp1DSAlgos = []dgs.Algorithm{dgs.AlgoDGPM, dgs.AlgoDisHHK, dgs.AlgoDMes}

func exp1Queries(dict *dgs.Dict, cfg Config, nv, ne int) []*dgs.Pattern {
	qs := make([]*dgs.Pattern, cfg.Queries)
	for i := range qs {
		// Restrict to the 4 most frequent labels: the paper's queries are
		// hand-picked conditions on common attributes ("domain='.uk'"),
		// i.e. selective patterns with non-trivial candidate sets.
		qs[i] = dgs.GenCyclicPatternOver(dict, nv, ne, 4, cfg.Seed+int64(100+i))
	}
	return qs
}

// exp1VaryF — Fig. 6(a)/6(b): fix |G|, |Q|=(5,10), |Vf|=25%; vary |F|
// from 4 to 20.
func exp1VaryF(cfg Config) ([]*Figure, error) {
	dict := dgs.NewDict()
	g := dgs.GenWeb(dict, cfg.scaled(webNV), cfg.scaled(webNE), cfg.Seed)
	queries := exp1Queries(dict, cfg, 5, 10)
	var xs []string
	var ms []map[dgs.Algorithm]*measurement
	for _, nf := range []int{4, 8, 12, 16, 20} {
		part, err := dgs.PartitionTargetRatio(g, nf, dgs.ByVf, 0.25, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m, err := runPoint(cfg, exp1PTAlgos, queries, part)
		if err != nil {
			return nil, err
		}
		xs = append(xs, fmt.Sprint(nf))
		ms = append(ms, m)
	}
	return buildFigures("6a", "6b", "dGPM on web graph, vary |F|", "|F|", exp1PTAlgos, exp1DSAlgos, xs, ms), nil
}

// exp1VaryQ — Fig. 6(c)/6(d): fix |F|=8, |Vf|=25%; vary |Q| from (4,8)
// to (8,16).
func exp1VaryQ(cfg Config) ([]*Figure, error) {
	dict := dgs.NewDict()
	g := dgs.GenWeb(dict, cfg.scaled(webNV), cfg.scaled(webNE), cfg.Seed)
	part, err := dgs.PartitionTargetRatio(g, 8, dgs.ByVf, 0.25, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var xs []string
	var ms []map[dgs.Algorithm]*measurement
	for _, sz := range [][2]int{{4, 8}, {5, 10}, {6, 12}, {7, 14}, {8, 16}} {
		queries := exp1Queries(dict, cfg, sz[0], sz[1])
		m, err := runPoint(cfg, exp1PTAlgos, queries, part)
		if err != nil {
			return nil, err
		}
		xs = append(xs, fmt.Sprintf("(%d,%d)", sz[0], sz[1]))
		ms = append(ms, m)
	}
	return buildFigures("6c", "6d", "dGPM on web graph, vary |Q|", "|Q|", exp1PTAlgos, exp1DSAlgos, xs, ms), nil
}

// exp1VaryVf — Fig. 6(e)/6(f): fix |F|=8, |Q|=(5,10); vary |Vf| (PT
// panel) / |Ef| (DS panel) from 25% to 50%.
func exp1VaryVf(cfg Config) ([]*Figure, error) {
	dict := dgs.NewDict()
	g := dgs.GenWeb(dict, cfg.scaled(webNV), cfg.scaled(webNE), cfg.Seed)
	queries := exp1Queries(dict, cfg, 5, 10)
	var xs []string
	var ms []map[dgs.Algorithm]*measurement
	for _, ratio := range []float64{0.25, 0.30, 0.35, 0.40, 0.45, 0.50} {
		part, err := dgs.PartitionTargetRatio(g, 8, dgs.ByVf, ratio, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m, err := runPoint(cfg, exp1PTAlgos, queries, part)
		if err != nil {
			return nil, err
		}
		xs = append(xs, fmt.Sprintf("%.2f", ratio))
		ms = append(ms, m)
	}
	return buildFigures("6e", "6f", "dGPM on web graph, vary |Vf|", "|Vf|/|V|", exp1PTAlgos, exp1DSAlgos, xs, ms), nil
}

// Exp-2 (§6): Citation DAG, DAG queries |Q|=(9,13).
var exp2PTAlgos = []dgs.Algorithm{dgs.AlgoDGPMd, dgs.AlgoDisHHK, dgs.AlgoDMes, dgs.AlgoMatch}
var exp2DSAlgos = []dgs.Algorithm{dgs.AlgoDGPMd, dgs.AlgoDisHHK, dgs.AlgoDMes}

func exp2Queries(dict *dgs.Dict, cfg Config, diam int) ([]*dgs.Pattern, error) {
	qs := make([]*dgs.Pattern, cfg.Queries)
	for i := range qs {
		q, err := dgs.GenDAGPattern(dict, 9, 13, diam, cfg.Seed+int64(200+i))
		if err != nil {
			return nil, err
		}
		qs[i] = q
	}
	return qs, nil
}

// exp2VaryD — Fig. 6(g)/6(h): fix |F|=8, |Ef|=25%; vary the query
// diameter d from 2 to 8.
func exp2VaryD(cfg Config) ([]*Figure, error) {
	dict := dgs.NewDict()
	g := dgs.GenCitation(dict, cfg.scaled(citNV), cfg.scaled(citNE), cfg.Seed)
	part, err := dgs.PartitionTargetRatio(g, 8, dgs.ByEf, 0.25, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var xs []string
	var ms []map[dgs.Algorithm]*measurement
	for d := 2; d <= 8; d++ {
		queries, err := exp2Queries(dict, cfg, d)
		if err != nil {
			return nil, err
		}
		m, err := runPoint(cfg, exp2PTAlgos, queries, part, dgs.WithGraphIsDAG())
		if err != nil {
			return nil, err
		}
		xs = append(xs, fmt.Sprint(d))
		ms = append(ms, m)
	}
	return buildFigures("6g", "6h", "dGPMd on citation DAG, vary d", "d", exp2PTAlgos, exp2DSAlgos, xs, ms), nil
}

// exp2VaryF — Fig. 6(i)/6(j): fix d=4; vary |F| from 4 to 20.
func exp2VaryF(cfg Config) ([]*Figure, error) {
	dict := dgs.NewDict()
	g := dgs.GenCitation(dict, cfg.scaled(citNV), cfg.scaled(citNE), cfg.Seed)
	queries, err := exp2Queries(dict, cfg, 4)
	if err != nil {
		return nil, err
	}
	var xs []string
	var ms []map[dgs.Algorithm]*measurement
	for _, nf := range []int{4, 8, 12, 16, 20} {
		part, err := dgs.PartitionTargetRatio(g, nf, dgs.ByVf, 0.25, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m, err := runPoint(cfg, exp2PTAlgos, queries, part, dgs.WithGraphIsDAG())
		if err != nil {
			return nil, err
		}
		xs = append(xs, fmt.Sprint(nf))
		ms = append(ms, m)
	}
	return buildFigures("6i", "6j", "dGPMd on citation DAG, vary |F|", "|F|", exp2PTAlgos, exp2DSAlgos, xs, ms), nil
}

// exp2VaryVf — Fig. 6(k)/6(l): fix |F|=8, d=4; vary |Vf| 25%..50%.
func exp2VaryVf(cfg Config) ([]*Figure, error) {
	dict := dgs.NewDict()
	g := dgs.GenCitation(dict, cfg.scaled(citNV), cfg.scaled(citNE), cfg.Seed)
	queries, err := exp2Queries(dict, cfg, 4)
	if err != nil {
		return nil, err
	}
	var xs []string
	var ms []map[dgs.Algorithm]*measurement
	for _, ratio := range []float64{0.25, 0.30, 0.35, 0.40, 0.45, 0.50} {
		part, err := dgs.PartitionTargetRatio(g, 8, dgs.ByVf, ratio, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m, err := runPoint(cfg, exp2PTAlgos, queries, part, dgs.WithGraphIsDAG())
		if err != nil {
			return nil, err
		}
		xs = append(xs, fmt.Sprintf("%.2f", ratio))
		ms = append(ms, m)
	}
	return buildFigures("6k", "6l", "dGPMd on citation DAG, vary |Vf|", "|Vf|/|V|", exp2PTAlgos, exp2DSAlgos, xs, ms), nil
}

// Exp-3 (§6): larger synthetic graphs; Match is omitted ("not capable to
// cope with large |G| due to memory limit using a single site").
var exp3PTAlgos = []dgs.Algorithm{dgs.AlgoDGPM, dgs.AlgoDisHHK, dgs.AlgoDGPMNoOpt, dgs.AlgoDMes}
var exp3DSAlgos = []dgs.Algorithm{dgs.AlgoDGPM, dgs.AlgoDisHHK, dgs.AlgoDMes}

// exp3VaryF — Fig. 6(m)/6(n): fix |G|, |Q|=(5,10), |Vf|=20%; vary |F|
// from 8 to 20.
func exp3VaryF(cfg Config) ([]*Figure, error) {
	dict := dgs.NewDict()
	g := dgs.GenSynthetic(dict, cfg.scaled(synNV), cfg.scaled(synNE), cfg.Seed)
	queries := exp1Queries(dict, cfg, 5, 10)
	var xs []string
	var ms []map[dgs.Algorithm]*measurement
	for _, nf := range []int{8, 12, 16, 20} {
		part, err := dgs.PartitionTargetRatio(g, nf, dgs.ByVf, 0.20, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m, err := runPoint(cfg, exp3PTAlgos, queries, part)
		if err != nil {
			return nil, err
		}
		xs = append(xs, fmt.Sprint(nf))
		ms = append(ms, m)
	}
	return buildFigures("6m", "6n", "synthetic graphs, vary |F|", "|F|", exp3PTAlgos, exp3DSAlgos, xs, ms), nil
}

// exp3VaryG — Fig. 6(o)/6(p): fix |F|=20, |Q|=(5,10), |Vf|=20%; vary |G|
// from (20M,80M) to (80M,320M), scaled.
func exp3VaryG(cfg Config) ([]*Figure, error) {
	dict := dgs.NewDict()
	queries := exp1Queries(dict, cfg, 5, 10)
	var xs []string
	var ms []map[dgs.Algorithm]*measurement
	for _, mult := range []int{2, 4, 6, 8} { // (20M..80M)/10M scaled base
		nv := cfg.scaled(mult * 40_000)
		ne := cfg.scaled(mult * 160_000)
		g := dgs.GenSynthetic(dict, nv, ne, cfg.Seed+int64(mult))
		part, err := dgs.PartitionTargetRatio(g, 20, dgs.ByVf, 0.20, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m, err := runPoint(cfg, exp3PTAlgos, queries, part)
		if err != nil {
			return nil, err
		}
		xs = append(xs, fmt.Sprintf("(%dK,%dK)", nv/1000, ne/1000))
		ms = append(ms, m)
	}
	return buildFigures("6o", "6p", "synthetic graphs, vary |G|", "|G|", exp3PTAlgos, exp3DSAlgos, xs, ms), nil
}
