package bench

// The serving experiment (beyond the paper's figures; the gap its §7
// leaves to systems like FDB): a 256-site deployment fronted by the
// internal/serve gateway absorbs a mixed read/update stream — 95%
// queries over a small pattern catalog, 5% single-edge deletion batches
// — driven by concurrent clients. Measured per arm: sustained QPS, p99
// query latency, and the cache hit rate, with the result cache on vs
// off, on a skewed (repeating-pattern) and a uniform workload. The
// claim: for skewed traffic the version-tagged cache more than doubles
// QPS even though every update invalidates the whole cache, because
// tens of queries land between consecutive updates and the popular
// patterns repeat inside that window.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dgs"
	"dgs/internal/serve"
)

// servingSites is the acceptance scale: the deployment spans 256 sites
// at Scale 1 (cfg.scaled shrinks it for smoke tests).
const servingSites = 256

// servingOp is one element of the pre-drawn workload stream.
type servingOp struct {
	pattern string        // query op: the pattern DSL text
	del     [2]dgs.NodeID // update op when pattern == ""
}

// servingStream draws the mixed stream: every 20th op deletes a fresh
// edge (the 5% update share), the rest query the catalog with the given
// cumulative weights.
func servingStream(g *dgs.Graph, patterns []string, weights []float64, nOps int, seed int64) ([]servingOp, error) {
	r := rand.New(rand.NewSource(seed))
	// Distinct deletable edges, drawn up front so concurrent appliers
	// never race on the same edge's lifecycle.
	edges := make([][2]dgs.NodeID, 0, nOps/20+1)
	seen := map[[2]dgs.NodeID]bool{}
	for v := 0; v < g.NumNodes() && len(edges) < nOps/20+1; v++ {
		for _, w := range g.Succ(dgs.NodeID(v)) {
			e := [2]dgs.NodeID{dgs.NodeID(v), w}
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
			if len(edges) >= nOps/20+1 {
				break
			}
		}
	}
	if len(edges) < nOps/20 {
		return nil, fmt.Errorf("bench: serving stream needs %d deletable edges, graph has %d", nOps/20, len(edges))
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	ops := make([]servingOp, nOps)
	nextEdge := 0
	for i := range ops {
		if i%20 == 19 { // 5% updates
			ops[i] = servingOp{del: edges[nextEdge]}
			nextEdge++
			continue
		}
		x := r.Float64() * total
		k := sort.SearchFloat64s(cum, x)
		if k >= len(patterns) {
			k = len(patterns) - 1
		}
		ops[i] = servingOp{pattern: patterns[k]}
	}
	return ops, nil
}

// runServingArm replays the stream against a fresh deployment of g
// through a gateway Server, with clients concurrent workers.
func runServingArm(cfg Config, g *dgs.Graph, dict *dgs.Dict, nSites int, ops []servingOp, cacheOn bool, clients int) (Point, error) {
	part, err := dgs.PartitionWith(g, "blocks", nSites)
	if err != nil {
		return Point{}, err
	}
	dep, err := dgs.Deploy(part, dgs.WithNetwork(cfg.network()))
	if err != nil {
		return Point{}, err
	}
	defer dep.Close()
	cacheSize := 1024
	if !cacheOn {
		cacheSize = -1
	}
	srv := serve.New(dep, dict, serve.Options{
		MaxInFlight: clients,
		MaxQueue:    4 * clients,
		CacheSize:   cacheSize,
	})

	ctx := context.Background()
	var (
		next      int64 = -1
		wg        sync.WaitGroup
		latMu     sync.Mutex
		latencies []time.Duration
		firstErr  error
		errOnce   sync.Once
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(ops) {
					return
				}
				op := ops[i]
				if op.pattern == "" {
					_, err := srv.Apply(ctx, serve.ApplyRequest{
						Ops: []serve.ApplyOp{{Del: true, V: op.del[0], W: op.del[1]}},
					})
					if err != nil {
						errOnce.Do(func() { firstErr = fmt.Errorf("apply #%d: %w", i, err) })
						return
					}
					continue
				}
				qStart := time.Now()
				_, err := srv.Query(ctx, serve.QueryRequest{Pattern: op.pattern})
				lat := time.Since(qStart)
				if err != nil {
					errOnce.Do(func() { firstErr = fmt.Errorf("query #%d: %w", i, err) })
					return
				}
				latMu.Lock()
				latencies = append(latencies, lat)
				latMu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return Point{}, firstErr
	}
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var mean time.Duration
	for _, l := range latencies {
		mean += l
	}
	if len(latencies) > 0 {
		mean /= time.Duration(len(latencies))
	}
	p99 := time.Duration(0)
	if n := len(latencies); n > 0 {
		idx := (99 * n) / 100
		if idx >= n {
			idx = n - 1
		}
		p99 = latencies[idx]
	}
	c := srv.Counters()
	return Point{
		PTms: float64(mean.Microseconds()) / 1000,
		// Query throughput: the same population the latency stats
		// describe (the 5% applies pay their cost inside elapsed but are
		// not counted as served queries).
		QPS:     float64(len(latencies)) / elapsed.Seconds(),
		P99ms:   float64(p99.Microseconds()) / 1000,
		HitRate: c.HitRate(),
		Part:    partMeta(part),
	}, nil
}

// servingExp produces the "srv-qps"/"srv-p99" panels.
func servingExp(cfg Config) ([]*Figure, error) {
	dict := dgs.NewDict()
	g := dgs.GenSynthetic(dict, cfg.scaled(synNV/8), cfg.scaled(synNE/8), cfg.Seed)
	nSites := cfg.scaled(servingSites)
	if nSites > g.NumNodes()/8 {
		nSites = g.NumNodes() / 8 // keep fragments non-degenerate in smoke runs
	}
	// The pattern catalog: 8 selective-but-nonempty queries, rendered to
	// DSL text — the gateway's actual input format.
	patterns := make([]string, 8)
	for i := range patterns {
		patterns[i] = dgs.GenCyclicPatternOver(dict, 4+i%2, 6+i%3, 4, cfg.Seed+int64(300+i)).String()
	}
	// Skewed: zipf-like repeating traffic (the acceptance workload).
	// Uniform: every pattern equally likely (the cache's worst case
	// short of unique-per-request patterns).
	skews := []struct {
		name    string
		weights []float64
	}{
		{"skewed", []float64{40, 20, 13, 10, 8, 4, 3, 2}},
		{"uniform", []float64{1, 1, 1, 1, 1, 1, 1, 1}},
	}
	nOps := 100 * cfg.Queries
	clients := 4

	qps := &Figure{ID: "srv-qps", Title: "gateway serving, 95/5 read/update mix, cache on vs off", XLabel: "workload", YLabel: "QPS"}
	p99 := &Figure{ID: "srv-p99", Title: "gateway serving, 95/5 read/update mix, cache on vs off", XLabel: "workload", YLabel: "p99 (ms)"}
	for _, arm := range []struct {
		name    string
		cacheOn bool
	}{{"cache-on", true}, {"cache-off", false}} {
		sQPS := Series{Name: arm.name}
		sP99 := Series{Name: arm.name}
		for _, sk := range skews {
			ops, err := servingStream(g, patterns, sk.weights, nOps, cfg.Seed+77)
			if err != nil {
				return nil, err
			}
			pt, err := runServingArm(cfg, g, dict, nSites, ops, arm.cacheOn, clients)
			if err != nil {
				return nil, fmt.Errorf("serving %s/%s: %w", arm.name, sk.name, err)
			}
			pt.X = sk.name
			sQPS.Points = append(sQPS.Points, pt)
			sP99.Points = append(sP99.Points, pt)
		}
		qps.Series = append(qps.Series, sQPS)
		p99.Series = append(p99.Series, sP99)
	}
	return []*Figure{qps, p99}, nil
}
