package tcpnet

// The daemon side: a Server hosts fragments shipped by a driver and runs
// their site actors for the lifetime of one connection. cmd/dgsd wraps
// this in a binary; tests run it in-process against a loopback listener
// (the code path is identical).

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/partition"
	"dgs/internal/wire"
)

// Server hosts one deployment at a time: accept → handshake → DEPLOY →
// serve sessions until the driver says BYE or the connection drops →
// reset and accept the next driver. Which algorithms it can serve is
// decided at build time by the cluster registry (cmd/dgsd imports every
// algorithm package).
type Server struct {
	// Logf receives connection lifecycle lines; nil silences them.
	Logf func(format string, args ...any)
	// WriteTimeout bounds each outbound frame write (default 30s).
	WriteTimeout time.Duration
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts drivers on lis until the listener closes. Connections
// are served one at a time — a dgsd daemon backs exactly one deployment,
// matching one EC2 instance in the paper's setup.
func (s *Server) Serve(lis net.Listener) error {
	for {
		c, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.logf("dgsd: driver connected from %s", c.RemoteAddr())
		s.handle(c)
		s.logf("dgsd: driver %s gone, state reset", c.RemoteAddr())
	}
}

// ListenAndServe listens on addr and Serves.
func ListenAndServe(addr string, s *Server) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if s.Logf == nil {
		s.Logf = log.Printf
	}
	s.logf("dgsd: listening on %s (protocol v%d, algorithms %v)",
		lis.Addr(), ProtocolVersion, cluster.RegisteredAlgorithms())
	return s.Serve(lis)
}

// daemonSink adapts SiteHost upcalls onto the connection: handler sends
// become MSG frames to the driver (hub routing), processed messages
// become ACK frames, and protocol corruption becomes a deployment ERR.
type daemonSink struct {
	out *outbox
}

func (k *daemonSink) ForwardSend(qid uint64, from, to int, data []byte) {
	k.out.put(wire.AppendFrame(nil, frameMsg, encodeMsg(msgBody{qid: qid, from: from, to: to, data: data})))
}

func (k *daemonSink) Retire(qid uint64, site int, busy time.Duration, rounds int64) {
	k.out.put(wire.AppendFrame(nil, frameAck, encodeAck(ackBody{
		qid: qid, site: site, busyNs: int64(busy), rounds: rounds,
	})))
}

func (k *daemonSink) Fatal(err error) {
	k.out.put(wire.AppendFrame(nil, frameErr, encodeErr(errBody{qid: 0, msg: err.Error()})))
	k.out.close()
}

func (s *Server) handle(c net.Conn) {
	defer c.Close()
	br := bufio.NewReaderSize(c, 1<<16)
	writeTimeout := s.WriteTimeout
	if writeTimeout == 0 {
		writeTimeout = 30 * time.Second
	}

	refuse := func(why string) {
		frame := wire.AppendFrame(nil, frameErr, encodeErr(errBody{qid: 0, msg: why}))
		c.SetWriteDeadline(time.Now().Add(writeTimeout))
		c.Write(frame)
		s.logf("dgsd: refused driver %s: %s", c.RemoteAddr(), why)
	}

	// HELLO: magic + version, before anything else.
	c.SetReadDeadline(time.Now().Add(writeTimeout))
	typ, body, err := wire.ReadFrame(br)
	if err != nil || typ != frameHello {
		refuse("expected HELLO")
		return
	}
	if len(body) != len(helloMagic)+2 || string(body[:len(helloMagic)]) != helloMagic {
		refuse("bad HELLO magic — is this a dgs driver?")
		return
	}
	v, _ := wire.NewByteReader(body[len(helloMagic):]).U16()
	if v != ProtocolVersion {
		refuse(fmt.Sprintf("protocol version %d not supported (daemon speaks %d)", v, ProtocolVersion))
		return
	}
	// Confirm the version immediately: the driver withholds the (large)
	// DEPLOY until it has seen HELLO-OK, so a refusal never costs a
	// fragment shipment.
	c.SetWriteDeadline(time.Now().Add(writeTimeout))
	if _, err := c.Write(wire.AppendFrame(nil, frameHelloOK, appendU16(nil, ProtocolVersion))); err != nil {
		return
	}

	// DEPLOY: become the sites.
	typ, body, err = wire.ReadFrame(br)
	if err != nil || typ != frameDeploy {
		refuse("expected DEPLOY after HELLO")
		return
	}
	dep, err := decodeDeploy(body)
	if err != nil {
		refuse("bad DEPLOY: " + err.Error())
		return
	}
	frags := make(map[int]*partition.Fragment, len(dep.hosted))
	rest := dep.frags
	for _, id := range dep.hosted {
		var f *partition.Fragment
		f, rest, err = partition.DecodeFragment(rest)
		if err != nil {
			refuse(fmt.Sprintf("bad fragment for site %d: %v", id, err))
			return
		}
		if f.ID != id {
			refuse(fmt.Sprintf("fragment %d shipped in site %d's slot", f.ID, id))
			return
		}
		frags[id] = f
	}
	if len(rest) != 0 {
		refuse(fmt.Sprintf("%d trailing bytes after fragments", len(rest)))
		return
	}

	out := newOutbox()
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for {
			frame, ok := out.get()
			if !ok {
				return
			}
			c.SetWriteDeadline(time.Now().Add(writeTimeout))
			if _, err := c.Write(frame); err != nil {
				// Sever the connection: a driver waiting on our ACKs would
				// otherwise never learn its frames stopped flowing (it has
				// no reason to close first), and its sessions would hang.
				// Closing makes the driver's readLoop fail the deployment;
				// our read loop unblocks and resets. Then drain silently.
				c.Close()
				for {
					if _, ok := out.get(); !ok {
						return
					}
				}
			}
		}
	}()

	sink := &daemonSink{out: out}
	host := cluster.NewSiteHost(dep.total, dep.hosted, frags, dep.assign, cluster.Network{}, sink)

	out.put(wire.AppendFrame(nil, frameDeployed, nil))
	s.logf("dgsd: hosting %d/%d sites, %d-node assign directory", len(dep.hosted), dep.total, len(dep.assign))

	// Serve frames until BYE or disconnect. No read deadline: a deployed
	// daemon waits indefinitely for its driver's next query.
	c.SetReadDeadline(time.Time{})
	sessions := 0
	for {
		typ, body, err := wire.ReadFrame(br)
		if err != nil {
			s.logf("dgsd: driver read: %v", err)
			break
		}
		switch typ {
		case frameOpen:
			o, err := decodeOpen(body)
			if err != nil {
				out.put(wire.AppendFrame(nil, frameErr, encodeErr(errBody{qid: 0, msg: "bad OPEN: " + err.Error()})))
				continue
			}
			if err := host.Open(o.qid, o.kind, o.spec); err != nil {
				out.put(wire.AppendFrame(nil, frameErr, encodeErr(errBody{qid: o.qid, msg: err.Error()})))
				continue
			}
			sessions++
		case frameMsg:
			m, err := decodeMsg(body)
			if err != nil {
				out.put(wire.AppendFrame(nil, frameErr, encodeErr(errBody{qid: 0, msg: "bad MSG: " + err.Error()})))
				continue
			}
			// The payload aliases the frame buffer, which is not reused,
			// so handing it straight to the host is safe.
			host.Enqueue(m.qid, m.from, m.to, m.data)
		case frameClose:
			qid, err := wire.NewByteReader(body).U64()
			if err == nil {
				host.CloseSession(qid)
			}
		case frameBye:
			s.logf("dgsd: driver said BYE after %d sessions", sessions)
			goto done
		default:
			out.put(wire.AppendFrame(nil, frameErr, encodeErr(errBody{qid: 0, msg: "unexpected " + frameName(typ)})))
			goto done
		}
	}
done:
	host.Shutdown()
	out.close()
	<-writerDone
}
