package tcpnet

// The daemon side: a Server hosts fragments shipped by a driver and runs
// their site actors for the lifetime of one connection. cmd/dgsd wraps
// this in a binary; tests run it in-process against a loopback listener
// (the code path is identical).

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"sync/atomic"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/obs"
	"dgs/internal/partition"
	"dgs/internal/wire"
)

// Server hosts one deployment at a time: accept → handshake → DEPLOY →
// serve sessions until the driver says BYE or the connection drops →
// reset and accept the next driver. Which algorithms it can serve is
// decided at build time by the cluster registry (cmd/dgsd imports every
// algorithm package).
type Server struct {
	// Logf receives connection lifecycle lines; nil silences them.
	Logf func(format string, args ...any)
	// WriteTimeout bounds each outbound frame write (default 30s).
	WriteTimeout time.Duration
	// MaxVersion caps the protocol version this daemon will negotiate;
	// 0 means the newest this build speaks (ProtocolVersion). Tests pin
	// it to 1 to emulate a pre-coalescing daemon and exercise the
	// driver's per-message fallback.
	MaxVersion uint16

	// counters are the daemon's running totals, maintained always and
	// exported when RegisterMetrics was called. Plain int64s driven by
	// the sync/atomic functions (not atomic.Int64) so the pre-Serve
	// by-value Server copies tests make stay vet-clean.
	counters struct {
		connections int64
		sessions    int64
		framesIn    int64
		framesOut   int64
		traces      int64
	}
}

// RegisterMetrics exposes the daemon's counters on reg (serve them with
// obs.Handler, as `dgsd -metrics` does). Call before Serve, once per
// registry.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("dgsd_connections_total",
		"Driver connections accepted over the daemon's lifetime.",
		func() float64 { return float64(atomic.LoadInt64(&s.counters.connections)) })
	reg.CounterFunc("dgsd_sessions_total",
		"Sessions opened across all driver connections.",
		func() float64 { return float64(atomic.LoadInt64(&s.counters.sessions)) })
	reg.CounterFunc("dgsd_frames_in_total",
		"Frames read from drivers after deployment.",
		func() float64 { return float64(atomic.LoadInt64(&s.counters.framesIn)) })
	reg.CounterFunc("dgsd_frames_out_total",
		"Frames written to drivers after deployment.",
		func() float64 { return float64(atomic.LoadInt64(&s.counters.framesOut)) })
	reg.CounterFunc("dgsd_traces_total",
		"TRACE frames shipped for traced sessions.",
		func() float64 { return float64(atomic.LoadInt64(&s.counters.traces)) })
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts drivers on lis until the listener closes. Connections
// are served one at a time — a dgsd daemon backs exactly one deployment,
// matching one EC2 instance in the paper's setup.
func (s *Server) Serve(lis net.Listener) error {
	for {
		c, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		atomic.AddInt64(&s.counters.connections, 1)
		s.logf("dgsd: driver connected from %s", c.RemoteAddr())
		s.handle(c)
		s.logf("dgsd: driver %s gone, state reset", c.RemoteAddr())
	}
}

// ListenAndServe listens on addr and Serves.
func ListenAndServe(addr string, s *Server) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if s.Logf == nil {
		s.Logf = log.Printf
	}
	s.logf("dgsd: listening on %s (protocol v%d, algorithms %v)",
		lis.Addr(), ProtocolVersion, cluster.RegisteredAlgorithms())
	return s.Serve(lis)
}

// daemonSink adapts SiteHost upcalls onto the connection: handler sends
// become MSG frames to the driver (hub routing), processed messages
// become ACK frames, and protocol corruption becomes a deployment ERR.
type daemonSink struct {
	out *outbox
}

func (k *daemonSink) ForwardSend(qid uint64, from, to int, data []byte) {
	k.out.put(outEntry{kind: entryMsg, qid: qid, from: from, to: to, data: data})
}

func (k *daemonSink) Retire(qid uint64, site int, busy time.Duration, rounds int64) {
	k.out.put(outEntry{kind: entryAck, qid: qid, site: site, busyNs: int64(busy), rounds: rounds})
}

func (k *daemonSink) Fatal(err error) {
	k.out.put(outEntry{kind: entryFrame, frame: wire.AppendFrame(nil, frameErr, encodeErr(errBody{qid: 0, msg: err.Error()}))})
	k.out.close()
}

// decodeFragSet decodes and validates a DEPLOY/REDEPLOY body's hosted
// fragments; a non-empty second return is the refusal reason. The label
// check catches a skewed shipment (v2+): every label id a fragment
// carries must resolve in the driver's shipped dictionary, turning a
// would-be silent mismatch into an explicit refusal.
func decodeFragSet(dep deployBody) (map[int]*partition.Fragment, string) {
	frags := make(map[int]*partition.Fragment, len(dep.hosted))
	rest := dep.frags
	var err error
	for _, id := range dep.hosted {
		var f *partition.Fragment
		f, rest, err = partition.DecodeFragment(rest)
		if err != nil {
			return nil, fmt.Sprintf("bad fragment for site %d: %v", id, err)
		}
		if f.ID != id {
			return nil, fmt.Sprintf("fragment %d shipped in site %d's slot", f.ID, id)
		}
		frags[id] = f
	}
	if len(rest) != 0 {
		return nil, fmt.Sprintf("%d trailing bytes after fragments", len(rest))
	}
	if dep.labels != nil {
		for id, f := range frags {
			for _, l := range f.Labels {
				if int(l) >= len(dep.labels) {
					return nil, fmt.Sprintf("fragment %d carries label id %d outside the %d-entry dictionary", id, l, len(dep.labels))
				}
			}
		}
	}
	return frags, ""
}

func (s *Server) handle(c net.Conn) {
	defer c.Close()
	br := bufio.NewReaderSize(c, 1<<16)
	writeTimeout := s.WriteTimeout
	if writeTimeout == 0 {
		writeTimeout = 30 * time.Second
	}

	refuse := func(why string) {
		if _, err := writeFrame(c, writeTimeout, frameErr, encodeErr(errBody{qid: 0, msg: why})); err != nil {
			// The explanatory ERR never reached the driver; all that is
			// left is tearing the connection down (the deferred Close)
			// so the peer sees a reset instead of waiting forever.
			s.logf("dgsd: refusal of %s did not reach the driver: %v", c.RemoteAddr(), err)
		}
		s.logf("dgsd: refused driver %s: %s", c.RemoteAddr(), why)
	}

	// HELLO: magic + the driver's protocol ceiling, before anything
	// else. The connection speaks min(driver max, daemon max); only a
	// driver below the floor is refused.
	c.SetReadDeadline(time.Now().Add(writeTimeout))
	typ, body, err := wire.ReadFrame(br)
	if err != nil || typ != frameHello {
		refuse("expected HELLO")
		return
	}
	if len(body) != len(helloMagic)+2 || string(body[:len(helloMagic)]) != helloMagic {
		refuse("bad HELLO magic — is this a dgs driver?")
		return
	}
	maxVersion := s.MaxVersion
	if maxVersion == 0 || maxVersion > ProtocolVersion {
		maxVersion = ProtocolVersion
	}
	v, _ := wire.NewByteReader(body[len(helloMagic):]).U16()
	if v < MinProtocolVersion {
		refuse(fmt.Sprintf("protocol version %d not supported (daemon speaks %d-%d)", v, MinProtocolVersion, maxVersion))
		return
	}
	version := v
	if version > maxVersion {
		version = maxVersion
	}
	// Confirm the chosen version immediately: the driver withholds the
	// (large) DEPLOY until it has seen HELLO-OK, so a refusal never
	// costs a fragment shipment.
	if _, err := writeFrame(c, writeTimeout, frameHelloOK, appendU16(nil, version)); err != nil {
		s.logf("dgsd: HELLO-OK to %s failed: %v", c.RemoteAddr(), err)
		return
	}

	// DEPLOY: become the sites.
	typ, body, err = wire.ReadFrame(br)
	if err != nil || typ != frameDeploy {
		refuse("expected DEPLOY after HELLO")
		return
	}
	dep, err := decodeDeploy(body, version)
	if err != nil {
		refuse("bad DEPLOY: " + err.Error())
		return
	}
	frags, why := decodeFragSet(dep)
	if why != "" {
		refuse(why)
		return
	}

	out := newOutbox()
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriterSize(c, 1<<16)
		for {
			entries, ok := out.drain()
			if !ok {
				return
			}
			c.SetWriteDeadline(time.Now().Add(writeTimeout))
			meter := func(qid uint64, n int) { atomic.AddInt64(&s.counters.framesOut, 1) }
			if err := writeChunk(bw, entries, version, meter); err != nil {
				// Sever the connection: a driver waiting on our ACKs would
				// otherwise never learn its frames stopped flowing (it has
				// no reason to close first), and its sessions would hang.
				// Closing makes the driver's readLoop fail the deployment;
				// our read loop unblocks and resets. Then drain silently.
				c.Close()
				for {
					if _, ok := out.drain(); !ok {
						return
					}
				}
			}
		}
	}()

	sink := &daemonSink{out: out}
	host := cluster.NewSiteHost(dep.total, dep.hosted, frags, dep.assign, cluster.Network{}, sink)

	out.put(outEntry{kind: entryFrame, frame: wire.AppendFrame(nil, frameDeployed, nil)})
	s.logf("dgsd: v%d, hosting %d/%d sites, %d-node assign directory, %d-label dict",
		version, len(dep.hosted), dep.total, len(dep.assign), len(dep.labels))

	// Serve frames until BYE or disconnect. No read deadline: a deployed
	// daemon waits indefinitely for its driver's next query.
	c.SetReadDeadline(time.Time{})
	sessions := 0
	for {
		typ, body, err := wire.ReadFrame(br)
		if err != nil {
			s.logf("dgsd: driver read: %v", err)
			break
		}
		atomic.AddInt64(&s.counters.framesIn, 1)
		errOut := func(qid uint64, msg string) {
			out.put(outEntry{kind: entryFrame, frame: wire.AppendFrame(nil, frameErr, encodeErr(errBody{qid: qid, msg: msg}))})
		}
		switch typ {
		case frameOpen:
			o, err := decodeOpen(body, version)
			if err != nil {
				errOut(0, "bad OPEN: "+err.Error())
				continue
			}
			if err := host.Open(o.qid, o.kind, o.spec); err != nil {
				errOut(o.qid, err.Error())
				continue
			}
			sessions++
			atomic.AddInt64(&s.counters.sessions, 1)
		case frameMsg:
			m, err := decodeMsg(body)
			if err != nil {
				errOut(0, "bad MSG: "+err.Error())
				continue
			}
			// The payload aliases the frame buffer, which is not reused,
			// so handing it straight to the host is safe.
			host.Enqueue(m.qid, m.from, m.to, m.data)
		case frameMsgB:
			if version < 2 {
				errOut(0, "MSGB on a v1 connection")
				goto done
			}
			qid, batch, err := decodeMsgB(body)
			if err != nil {
				errOut(0, "bad MSGB: "+err.Error())
				continue
			}
			// Sub-message Data aliases the frame buffer, which is not
			// reused, so enqueueing the slices directly is safe — the
			// zero-copy unpack of a coalesced frame.
			for _, m := range batch.Msgs {
				host.Enqueue(qid, int(m.From), int(m.To), m.Data)
			}
		case frameClose:
			qid, err := wire.NewByteReader(body).U64()
			if err == nil {
				host.CloseSession(qid)
				// A traced session owes the driver its spans, chasing the
				// close on the same connection. Even an empty snapshot is
				// shipped: the driver counts one TRACE per connection.
				// Pre-v5 drivers never set a trace ID, so traced is false
				// there by construction and no unknown frame is sent.
				if spans, traced := host.TakeTrace(qid); traced && version >= 5 {
					out.put(outEntry{kind: entryFrame, frame: wire.AppendFrame(nil, frameTrace, encodeTrace(qid, spans))})
					atomic.AddInt64(&s.counters.traces, 1)
				}
			}
		case framePing:
			if version < 3 {
				errOut(0, "PING on a v"+fmt.Sprint(version)+" connection")
				goto done
			}
			seq, err := decodePingPong(body)
			if err != nil {
				errOut(0, "bad PING: "+err.Error())
				goto done
			}
			out.put(outEntry{kind: entryFrame, frame: wire.AppendFrame(nil, framePong, encodePingPong(seq))})
		case frameRedeploy:
			if version < 3 {
				errOut(0, "REDEPLOY on a v"+fmt.Sprint(version)+" connection")
				goto done
			}
			red, err := decodeDeploy(body, version)
			if err != nil {
				errOut(0, "bad REDEPLOY: "+err.Error())
				goto done
			}
			more, why := decodeFragSet(red)
			if why != "" {
				errOut(0, "bad REDEPLOY: "+why)
				goto done
			}
			// Absorb a lost peer's sites (or replace our own fragments on
			// a full re-deployment); the DEPLOYED reply tells the driver
			// they are resident. FIFO on this connection orders any later
			// session traffic for these sites after the installation.
			host.AddSites(red.hosted, more)
			out.put(outEntry{kind: entryFrame, frame: wire.AppendFrame(nil, frameDeployed, nil)})
			s.logf("dgsd: redeploy absorbed %d sites (now hosting %d/%d)", len(red.hosted), len(host.HostedIDs()), dep.total)
		case frameBye:
			s.logf("dgsd: driver said BYE after %d sessions", sessions)
			goto done
		default:
			errOut(0, "unexpected "+frameName(typ))
			goto done
		}
	}
done:
	host.Shutdown()
	out.close()
	<-writerDone
}
