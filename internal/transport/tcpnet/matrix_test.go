package tcpnet_test

// Transport conformance matrix: the cluster/session behaviors the
// in-process backend has always guaranteed, run against every backend —
// in-process and one- and two-daemon loopback TCP. The test algorithms
// are registered like real ones, so the TCP rows exercise the same
// spec-session machinery dgsd serves in production: exact payload
// accounting, quiescence across process boundaries, rounds/busy
// piggybacking, context cancellation, and mid-session Close.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/graph"
	"dgs/internal/partition"
	"dgs/internal/transport/tcpnet"
	"dgs/internal/wire"
)

const (
	algoEcho  = "test-echo"  // forwards a falsify along the ring, V counts hops
	algoNop   = "test-nop"   // ignores everything
	algoReply = "test-reply" // replies one Matches to the coordinator
	algoSleep = "test-sleep" // sleeps Config[0] milliseconds per message
	algoRound = "test-round" // records 2 rounds per message
)

var registerOnce sync.Once

func registerTestAlgos() {
	registerOnce.Do(func() {
		factory := func(h func(ctx *cluster.Ctx, from int, p wire.Payload)) cluster.SiteFactory {
			return func(spec cluster.SessionSpec, frag *partition.Fragment, assign []int32) (cluster.Handler, error) {
				return cluster.HandlerFunc(h), nil
			}
		}
		cluster.RegisterAlgorithm(algoEcho, factory(func(ctx *cluster.Ctx, from int, p wire.Payload) {
			f, ok := p.(*wire.Falsify)
			if !ok || len(f.Pairs) == 0 || f.Pairs[0].V == 0 {
				return
			}
			next := (ctx.Self() + 1) % ctx.NumSites()
			ctx.Send(next, &wire.Falsify{Pairs: []wire.VarRef{{U: f.Pairs[0].U, V: f.Pairs[0].V - 1}}})
		}))
		cluster.RegisterAlgorithm(algoNop, factory(func(*cluster.Ctx, int, wire.Payload) {}))
		cluster.RegisterAlgorithm(algoReply, factory(func(ctx *cluster.Ctx, from int, p wire.Payload) {
			ctx.Send(cluster.Coordinator, &wire.Matches{Frag: uint16(ctx.Self())})
		}))
		cluster.RegisterAlgorithm(algoSleep, func(spec cluster.SessionSpec, frag *partition.Fragment, assign []int32) (cluster.Handler, error) {
			d := time.Duration(spec.Config[0]) * time.Millisecond
			return cluster.HandlerFunc(func(*cluster.Ctx, int, wire.Payload) { time.Sleep(d) }), nil
		})
		cluster.RegisterAlgorithm(algoRound, factory(func(ctx *cluster.Ctx, from int, p wire.Payload) {
			ctx.AddRounds(2)
		}))
	})
}

// trivialFragmentation builds an n-fragment world over an edgeless
// n-node graph: enough for protocol sessions, nothing to evaluate.
func trivialFragmentation(t *testing.T, n int) *partition.Fragmentation {
	t.Helper()
	b := graph.NewBuilder()
	assign := make([]int32, n)
	for i := 0; i < n; i++ {
		b.AddNode("x")
		assign[i] = int32(i)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fr, err := partition.Build(g, assign, n)
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

type backend struct {
	name string
	mk   func(t *testing.T, n int) *cluster.Cluster
}

// dialNet spins up `daemons` loopback servers (each with srv applied)
// and dials them, returning the raw transport for tests that inspect
// frame counters.
func dialNet(t *testing.T, daemons, n int, srv tcpnet.Server, opts tcpnet.Options) *tcpnet.Net {
	t.Helper()
	addrs := make([]string, daemons)
	for i := range addrs {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		s := srv
		go s.Serve(lis)
		t.Cleanup(func() { lis.Close() })
		addrs[i] = lis.Addr().String()
	}
	tr, err := tcpnet.Dial(context.Background(), addrs, trivialFragmentation(t, n), opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func tcpBackendOpts(name string, daemons int, srv tcpnet.Server, opts tcpnet.Options) backend {
	return backend{
		name: name,
		mk: func(t *testing.T, n int) *cluster.Cluster {
			t.Helper()
			return cluster.NewWithTransport(dialNet(t, daemons, n, srv, opts))
		},
	}
}

func tcpBackend(daemons int) backend {
	return tcpBackendOpts(fmt.Sprintf("tcp-%dd", daemons), daemons, tcpnet.Server{}, tcpnet.Options{})
}

// backends covers both sides of version negotiation alongside the
// default (coalescing) paths: a driver pinned to protocol 1 and a
// daemon that tops out at protocol 1 must both fall back to per-message
// frames with behavior — including exact Stats — identical to the
// coalesced runs.
func backends() []backend {
	return []backend{
		{"inproc", func(t *testing.T, n int) *cluster.Cluster {
			return cluster.New(n, cluster.Network{})
		}},
		tcpBackend(1),
		tcpBackend(2),
		tcpBackendOpts("tcp-2d-v1driver", 2, tcpnet.Server{}, tcpnet.Options{MaxProtocol: 1}),
		tcpBackendOpts("tcp-2d-v1daemon", 2, tcpnet.Server{MaxVersion: 1}, tcpnet.Options{}),
	}
}

func forEachBackend(t *testing.T, n int, body func(t *testing.T, c *cluster.Cluster)) {
	registerTestAlgos()
	for _, be := range backends() {
		be := be
		t.Run(be.name, func(t *testing.T) {
			c := be.mk(t, n)
			defer c.Shutdown()
			body(t, c)
		})
	}
}

var bg = context.Background()

func open(t *testing.T, c *cluster.Cluster, kind cluster.SessionKind, spec cluster.SessionSpec, coord cluster.Handler) *cluster.Session {
	t.Helper()
	if coord == nil {
		coord = cluster.HandlerFunc(func(*cluster.Ctx, int, wire.Payload) {})
	}
	s, err := c.OpenSession(kind, spec, coord)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Ring traffic quiesces with exact, backend-independent payload stats.
func TestMatrixRingQuiesces(t *testing.T) {
	forEachBackend(t, 4, func(t *testing.T, c *cluster.Cluster) {
		s := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoEcho}, nil)
		defer s.Close()
		s.Inject(0, &wire.Falsify{Pairs: []wire.VarRef{{U: 1, V: 10}}})
		if err := s.WaitQuiesce(bg); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if st.DataMsgs != 11 || st.DataBytes != 11*11 {
			t.Fatalf("exact accounting must not depend on the backend: %+v", st)
		}
	})
}

// Coordinator round trip: broadcast in, one reply per site, collected at
// the driver-side coordinator.
func TestMatrixCoordinatorRoundTrip(t *testing.T) {
	forEachBackend(t, 5, func(t *testing.T, c *cluster.Cluster) {
		var mu sync.Mutex
		seen := map[int]bool{}
		coord := cluster.HandlerFunc(func(ctx *cluster.Ctx, from int, p wire.Payload) {
			if m, ok := p.(*wire.Matches); ok {
				mu.Lock()
				seen[int(m.Frag)] = true
				mu.Unlock()
			}
		})
		s := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoReply}, coord)
		defer s.Close()
		s.Broadcast(&wire.Control{Op: 1})
		if err := s.WaitQuiesce(bg); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		defer mu.Unlock()
		if len(seen) != 5 {
			t.Fatalf("coordinator saw %d sites, want 5", len(seen))
		}
	})
}

// Multi-phase protocols reuse one session across quiesce windows.
func TestMatrixMultiPhase(t *testing.T) {
	forEachBackend(t, 3, func(t *testing.T, c *cluster.Cluster) {
		var mu sync.Mutex
		got := 0
		coord := cluster.HandlerFunc(func(ctx *cluster.Ctx, from int, p wire.Payload) {
			mu.Lock()
			got++
			mu.Unlock()
		})
		s := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoReply}, coord)
		defer s.Close()
		for phase := 1; phase <= 3; phase++ {
			s.Broadcast(&wire.Control{Op: uint8(phase)})
			if err := s.WaitQuiesce(bg); err != nil {
				t.Fatal(err)
			}
			mu.Lock()
			want := 3 * phase
			if got != want {
				mu.Unlock()
				t.Fatalf("after phase %d: %d replies, want %d", phase, got, want)
			}
			mu.Unlock()
		}
	})
}

// Rounds recorded at (possibly remote) sites reach the session stats.
func TestMatrixRoundsPropagate(t *testing.T) {
	forEachBackend(t, 2, func(t *testing.T, c *cluster.Cluster) {
		s := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoRound}, nil)
		defer s.Close()
		s.Broadcast(&wire.Control{})
		if err := s.WaitQuiesce(bg); err != nil {
			t.Fatal(err)
		}
		if got := s.Stats().Rounds; got != 4 {
			t.Fatalf("Rounds = %d, want 4 (2 sites × 2)", got)
		}
	})
}

// Site busy time survives the process boundary (ACK piggyback).
func TestMatrixBusyPropagates(t *testing.T) {
	forEachBackend(t, 2, func(t *testing.T, c *cluster.Cluster) {
		s := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoSleep, Config: []byte{8}}, nil)
		defer s.Close()
		s.Inject(0, &wire.Control{})
		if err := s.WaitQuiesce(bg); err != nil {
			t.Fatal(err)
		}
		if b := s.Stats().MaxSiteBusy; b < 6*time.Millisecond {
			t.Fatalf("MaxSiteBusy = %v, want ≈8ms", b)
		}
	})
}

// Concurrent sessions keep isolated traffic and stats on every backend.
func TestMatrixConcurrentSessionsIsolated(t *testing.T) {
	forEachBackend(t, 4, func(t *testing.T, c *cluster.Cluster) {
		var wg sync.WaitGroup
		for _, hops := range []uint32{5, 17, 9, 13} {
			wg.Add(1)
			go func(h uint32) {
				defer wg.Done()
				s := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoEcho}, nil)
				defer s.Close()
				s.Inject(0, &wire.Falsify{Pairs: []wire.VarRef{{U: 1, V: h}}})
				if err := s.WaitQuiesce(bg); err != nil {
					t.Error(err)
					return
				}
				if got := s.Stats().DataMsgs; got != int64(h)+1 {
					t.Errorf("hops=%d: DataMsgs = %d, want %d", h, got, h+1)
				}
			}(hops)
		}
		wg.Wait()
	})
}

// WaitQuiesce honors context cancellation promptly while remote (or
// local) handlers are still busy.
func TestMatrixWaitQuiesceHonorsContext(t *testing.T) {
	forEachBackend(t, 2, func(t *testing.T, c *cluster.Cluster) {
		s := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoSleep, Config: []byte{250}}, nil)
		defer s.Close()
		s.Inject(0, &wire.Control{})
		ctx, cancel := context.WithTimeout(bg, 20*time.Millisecond)
		defer cancel()
		start := time.Now()
		if err := s.WaitQuiesce(ctx); err != context.DeadlineExceeded {
			t.Fatalf("err = %v, want DeadlineExceeded", err)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Fatalf("WaitQuiesce returned after %v, not promptly", el)
		}
	})
}

// Mid-session Close discards the session's remaining traffic everywhere
// and leaves the substrate healthy for the next session.
func TestMatrixMidSessionClose(t *testing.T) {
	forEachBackend(t, 2, func(t *testing.T, c *cluster.Cluster) {
		s := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoSleep, Config: []byte{20}}, nil)
		for i := 0; i < 10; i++ {
			s.Inject(i%2, &wire.Control{})
		}
		time.Sleep(5 * time.Millisecond) // let the first Recvs start
		s.Close()
		if err := s.WaitQuiesce(bg); !errors.Is(err, cluster.ErrClosed) {
			t.Fatalf("WaitQuiesce on closed session = %v, want ErrClosed", err)
		}
		// A fresh session on the same substrate still round-trips.
		s2 := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoEcho}, nil)
		defer s2.Close()
		s2.Inject(0, &wire.Falsify{Pairs: []wire.VarRef{{U: 1, V: 3}}})
		if err := s2.WaitQuiesce(bg); err != nil {
			t.Fatal(err)
		}
		if got := s2.Stats().DataMsgs; got != 4 {
			t.Fatalf("post-close session DataMsgs = %d, want 4", got)
		}
	})
}

// Session kinds multiplex on every backend.
func TestMatrixSessionKinds(t *testing.T) {
	forEachBackend(t, 2, func(t *testing.T, c *cluster.Cluster) {
		q := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoNop}, nil)
		defer q.Close()
		m := open(t, c, cluster.SessionMaintenance, cluster.SessionSpec{Algo: algoNop}, nil)
		defer m.Close()
		if got := c.ActiveSessions(cluster.SessionMaintenance); got != 1 {
			t.Fatalf("maintenance sessions = %d", got)
		}
		q.Broadcast(&wire.Control{Op: 1})
		m.Broadcast(&wire.Control{Op: 2})
		if err := q.WaitQuiesce(bg); err != nil {
			t.Fatal(err)
		}
		if err := m.WaitQuiesce(bg); err != nil {
			t.Fatal(err)
		}
	})
}

// An unknown algorithm fails the session: synchronously in-process,
// asynchronously (via an ERR frame failing WaitQuiesce) over TCP.
func TestMatrixUnknownAlgorithm(t *testing.T) {
	forEachBackend(t, 2, func(t *testing.T, c *cluster.Cluster) {
		//lint:allow regconsistent — probes the unknown-algorithm error path
		s, err := c.OpenSession(cluster.SessionQuery, cluster.SessionSpec{Algo: "no-such-algo"},
			cluster.HandlerFunc(func(*cluster.Ctx, int, wire.Payload) {}))
		if err != nil {
			if !strings.Contains(err.Error(), "unknown algorithm") {
				t.Fatalf("unexpected error: %v", err)
			}
			return // in-process: synchronous resolution failure
		}
		defer s.Close()
		// TCP: the OPEN fails at the daemon; the injected message is never
		// acked, so WaitQuiesce must report the ERR instead of hanging.
		s.Inject(0, &wire.Control{})
		ctx, cancel := context.WithTimeout(bg, 5*time.Second)
		defer cancel()
		err = s.WaitQuiesce(ctx)
		if err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
			t.Fatalf("WaitQuiesce = %v, want remote unknown-algorithm error", err)
		}
	})
}

// broadcastWorkload drives `phases` broadcast/quiesce rounds of the
// reply algorithm over tr and reports the transport's frame counters
// and the session's metered wire bytes. Each phase moves sites×2 data
// messages (the broadcast out, one reply per site back) plus one ACK
// per processed message — a bursty, hub-routed load with plenty of
// consecutive same-destination traffic for the coalescer.
func broadcastWorkload(t *testing.T, tr *tcpnet.Net, phases int) (sent, received, wireBytes int64) {
	t.Helper()
	c := cluster.NewWithTransport(tr)
	defer c.Shutdown()
	s := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoReply}, nil)
	defer s.Close()
	for p := 0; p < phases; p++ {
		s.Broadcast(&wire.Control{Op: 1})
		if err := s.WaitQuiesce(bg); err != nil {
			t.Fatal(err)
		}
	}
	wireBytes = s.Stats().WireBytes
	sent, received = tr.Frames()
	return sent, received, wireBytes
}

// The tentpole smoke check: on a 2-daemon loopback run, negotiating the
// coalescing protocol must move the same workload in strictly fewer
// frames and fewer metered wire bytes than the per-message fallback.
func TestCoalescingReducesFrames(t *testing.T) {
	registerTestAlgos()
	const sites, phases = 64, 40

	v1Sent, v1Recv, v1Bytes := broadcastWorkload(t,
		dialNet(t, 2, sites, tcpnet.Server{}, tcpnet.Options{MaxProtocol: 1}), phases)
	v2Sent, v2Recv, v2Bytes := broadcastWorkload(t,
		dialNet(t, 2, sites, tcpnet.Server{}, tcpnet.Options{}), phases)

	t.Logf("v1: sent=%d recv=%d wireBytes=%d", v1Sent, v1Recv, v1Bytes)
	t.Logf("v2: sent=%d recv=%d wireBytes=%d", v2Sent, v2Recv, v2Bytes)

	// The driver's Broadcast loop enqueues each phase's 64 messages far
	// faster than the writer can flush them, so under v2 the bulk of
	// every burst coalesces — that side must drop unambiguously. The
	// daemon side interleaves each site's reply with its ACK, so
	// consecutive same-key runs (the only thing the FIFO-preserving
	// coalescer may merge) form only when the writer falls behind; on an
	// unloaded loopback that can round to zero, so only no-increase is
	// guaranteed there.
	if v2Sent >= v1Sent {
		t.Errorf("driver→daemon frames did not drop: v1=%d v2=%d", v1Sent, v2Sent)
	}
	if v2Recv > v1Recv {
		t.Errorf("daemon→driver frames increased: v1=%d v2=%d", v1Recv, v2Recv)
	}
	if v2Sent+v2Recv >= v1Sent+v1Recv {
		t.Errorf("total frames did not drop: v1=%d v2=%d", v1Sent+v1Recv, v2Sent+v2Recv)
	}
	if v2Bytes >= v1Bytes {
		t.Errorf("metered wire bytes did not drop: v1=%d v2=%d", v1Bytes, v2Bytes)
	}
}

// Shutdown mid-traffic releases sessions with ErrClosed on every backend.
func TestMatrixShutdownReleasesSessions(t *testing.T) {
	registerTestAlgos()
	for _, be := range backends() {
		be := be
		t.Run(be.name, func(t *testing.T) {
			c := be.mk(t, 2)
			s := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoSleep, Config: []byte{30}}, nil)
			for i := 0; i < 6; i++ {
				s.Inject(i%2, &wire.Control{})
			}
			done := make(chan error, 1)
			go func() { done <- s.WaitQuiesce(bg) }()
			time.Sleep(3 * time.Millisecond)
			c.Shutdown()
			select {
			case err := <-done:
				if err != nil && !errors.Is(err, cluster.ErrClosed) {
					t.Fatalf("WaitQuiesce after Shutdown = %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("WaitQuiesce hung across Shutdown")
			}
		})
	}
}
