package tcpnet

// The driver side: Dial connects to the dgsd daemons, performs the
// version handshake, ships each daemon its block of fragments, and
// returns a cluster.Transport over which the ordinary Cluster/Session
// machinery runs unchanged.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/partition"
	"dgs/internal/wire"
)

// Options tune a Dial. The zero value is ready to use.
type Options struct {
	// DialTimeout bounds each TCP connect + handshake + fragment
	// shipment when the Dial context carries no earlier deadline.
	// Default 30s.
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write after deployment; a stalled
	// daemon fails the deployment instead of wedging it. Default 30s.
	WriteTimeout time.Duration
	// MaxProtocol caps the protocol version the driver offers in its
	// HELLO; 0 means the newest this build speaks (ProtocolVersion).
	// Pinning 1 forces the per-message frame set — benchmarks use it to
	// measure coalescing against the uncoalesced baseline, and it is
	// the interop escape hatch for daemons that predate negotiation.
	MaxProtocol uint16
}

func (o Options) withDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = 30 * time.Second
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.MaxProtocol == 0 || o.MaxProtocol > ProtocolVersion {
		o.MaxProtocol = ProtocolVersion
	}
	if o.MaxProtocol < MinProtocolVersion {
		o.MaxProtocol = MinProtocolVersion
	}
	return o
}

// Net is the TCP cluster.Transport: one connection per daemon, sites
// mapped onto daemons in contiguous blocks (HostedRange).
type Net struct {
	n     int
	opts  Options
	conns []*conn
	owner []int // site ID -> index into conns

	ev cluster.Events

	mu          sync.Mutex
	perQID      map[uint64]int64 // measured frame bytes per session
	deployBytes int64            // handshake + fragment shipping traffic
	closing     bool

	// Post-deployment frame counts over all connections, both
	// directions — the denominator coalescing improves.
	framesOut atomic.Int64
	framesIn  atomic.Int64

	wg sync.WaitGroup
}

var _ cluster.Transport = (*Net)(nil)

type conn struct {
	t       *Net
	addr    string
	c       net.Conn
	br      *bufio.Reader
	out     *outbox
	version uint16 // negotiated protocol version for this connection
}

// Dial connects to one dgsd daemon per address, verifies protocol
// versions, and makes the fragmentation resident across them: daemon j
// receives the fragments of sites HostedRange(n, k, j). It returns an
// unbound Transport — pass it to cluster.NewWithTransport (or
// dgs.Deploy does both). ctx cancels in-flight connects and handshakes.
func Dial(ctx context.Context, addrs []string, fr *partition.Fragmentation, opts Options) (*Net, error) {
	if len(addrs) == 0 {
		return nil, errors.New("tcpnet: no daemon addresses")
	}
	opts = opts.withDefaults()
	n := fr.NumFragments()
	if n < len(addrs) {
		return nil, fmt.Errorf("tcpnet: %d fragments cannot span %d daemons", n, len(addrs))
	}
	t := &Net{
		n:      n,
		opts:   opts,
		owner:  make([]int, n),
		perQID: make(map[uint64]int64),
	}
	dialer := &net.Dialer{Timeout: opts.DialTimeout}
	for j, addr := range addrs {
		lo, hi := HostedRange(n, len(addrs), j)
		for id := lo; id < hi; id++ {
			t.owner[id] = j
		}
		nc, err := dialer.DialContext(ctx, "tcp", addr)
		if err != nil {
			t.closeConns()
			return nil, fmt.Errorf("tcpnet: dial %s: %w", addr, err)
		}
		cn := &conn{t: t, addr: addr, c: nc, br: bufio.NewReaderSize(nc, 1<<16), out: newOutbox()}
		t.conns = append(t.conns, cn)
		if err := t.handshake(ctx, cn, fr, lo, hi); err != nil {
			t.closeConns()
			return nil, fmt.Errorf("tcpnet: %s: %w", addr, err)
		}
	}
	return t, nil
}

// handshake runs HELLO → HELLO-OK → DEPLOY → DEPLOYED on a fresh
// connection, synchronously and under the context's deadline.
func (t *Net) handshake(ctx context.Context, cn *conn, fr *partition.Fragmentation, lo, hi int) error {
	deadline := time.Now().Add(t.opts.DialTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := cn.c.SetDeadline(deadline); err != nil {
		return err
	}
	// HELLO advertises the driver's protocol ceiling; the daemon
	// replies with the version the connection will speak —
	// min(driver max, daemon max) — or refuses below the floor.
	hello := appendU16([]byte(helloMagic), t.opts.MaxProtocol)
	if err := t.writeDirect(cn, frameHello, hello); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	// Await HELLO-OK (ERR accepted in its slot) BEFORE shipping the
	// fragments: a version-mismatched daemon refuses and closes without
	// reading further, and a large unread DEPLOY would both waste the
	// shipment and turn the daemon's explanatory ERR into an opaque
	// connection reset.
	typ, body, err := wire.ReadFrame(cn.br)
	if err != nil {
		return fmt.Errorf("awaiting HELLO-OK: %w", err)
	}
	if typ == frameErr {
		e, _ := decodeErr(body)
		return fmt.Errorf("daemon refused: %s", e.msg)
	}
	if typ != frameHelloOK {
		return fmt.Errorf("expected HELLO-OK, got %s", frameName(typ))
	}
	v, err := wire.NewByteReader(body).U16()
	if err != nil || v < MinProtocolVersion || v > t.opts.MaxProtocol {
		return fmt.Errorf("protocol version mismatch: daemon chose %d, driver speaks %d-%d",
			v, MinProtocolVersion, t.opts.MaxProtocol)
	}
	cn.version = v
	hosted := make([]int, 0, hi-lo)
	var frags []byte
	for id := lo; id < hi; id++ {
		hosted = append(hosted, id)
		frags = partition.AppendFragment(frags, fr.Frags[id])
	}
	// v2+ ships the driver-owned label dictionary: names indexed by the
	// dense label ids the fragments carry, so daemons can validate and
	// render labels without strings ever appearing on the message path.
	var labels []string
	if cn.version >= 2 && fr.G != nil {
		labels = fr.G.Dict().Names()
	}
	if err := t.writeDirect(cn, frameDeploy, encodeDeploy(deployBody{
		total:  t.n,
		hosted: hosted,
		assign: fr.Assign,
		labels: labels,
		frags:  frags,
	}, cn.version)); err != nil {
		return fmt.Errorf("deploy: %w", err)
	}
	typ, body, err = wire.ReadFrame(cn.br)
	if err != nil {
		return fmt.Errorf("awaiting DEPLOYED: %w", err)
	}
	if typ == frameErr {
		e, _ := decodeErr(body)
		return fmt.Errorf("deploy refused: %s", e.msg)
	}
	if typ != frameDeployed {
		return fmt.Errorf("expected DEPLOYED, got %s", frameName(typ))
	}
	return cn.c.SetDeadline(time.Time{})
}

// writeDirect writes one frame synchronously (handshake only; after
// Bind all writes go through the outbox) and meters exactly the bytes
// that reached the socket as deploy bytes. The deadline was armed for
// the whole handshake by the caller, so writeFrame is invoked without
// its own timeout.
func (t *Net) writeDirect(cn *conn, typ byte, body []byte) error {
	n, err := writeFrame(cn.c, 0, typ, body)
	t.mu.Lock()
	t.deployBytes += int64(n)
	t.mu.Unlock()
	return err
}

func (t *Net) closeConns() {
	for _, cn := range t.conns {
		cn.c.Close()
	}
}

// NumSites implements cluster.Transport.
func (t *Net) NumSites() int { return t.n }

// NumDaemons reports how many dgsd processes back the deployment.
func (t *Net) NumDaemons() int { return len(t.conns) }

// DeployBytes reports the measured one-time deployment traffic:
// handshakes plus shipped fragments.
func (t *Net) DeployBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deployBytes
}

// Bind implements cluster.Transport: it installs the event sink and
// starts the per-connection reader and writer goroutines.
func (t *Net) Bind(ev cluster.Events) {
	t.ev = ev
	for _, cn := range t.conns {
		t.wg.Add(2)
		go cn.writeLoop()
		go cn.readLoop()
	}
}

// addWire meters frame bytes onto a session. Only sessions with a live
// meter (created at Open, removed at Close) accumulate: frames that
// straggle in after a Close would otherwise resurrect the deleted entry
// and leak it forever on a long-lived deployment. Unattributable bytes
// count as deployment traffic instead, so nothing goes unmeasured.
func (t *Net) addWire(qid uint64, n int) {
	t.mu.Lock()
	if _, live := t.perQID[qid]; qid != 0 && live {
		t.perQID[qid] += int64(n)
	} else {
		t.deployBytes += int64(n)
	}
	t.mu.Unlock()
}

// enqueue queues a pre-framed control frame for cn. Metering happens in
// the writer at flush time (writeChunk), so measured bytes are exactly
// what the socket saw.
func (t *Net) enqueue(cn *conn, qid uint64, typ byte, body []byte) {
	cn.out.put(outEntry{kind: entryFrame, qid: qid, frame: wire.AppendFrame(nil, typ, body)})
}

// Open implements cluster.Transport: OPEN frames go to every daemon
// ahead of any of the session's messages (FIFO per connection), so no
// delivery can race handler installation. Resolution errors surface
// asynchronously as ERR frames.
func (t *Net) Open(qid uint64, kind cluster.SessionKind, spec cluster.SessionSpec) error {
	t.mu.Lock()
	t.perQID[qid] = 0 // arm the session's wire meter
	t.mu.Unlock()
	body := encodeOpen(openBody{qid: qid, kind: kind, spec: spec})
	for _, cn := range t.conns {
		t.enqueue(cn, qid, frameOpen, body)
	}
	return nil
}

// Close implements cluster.Transport. The session's wire meter is
// released first — the CLOSE frames themselves, and any stragglers
// still in flight, are then metered as deployment traffic by addWire —
// so a long-lived deployment serving many queries neither leaks meter
// entries nor loses measured bytes.
func (t *Net) Close(qid uint64) {
	t.mu.Lock()
	delete(t.perQID, qid)
	t.mu.Unlock()
	body := appendU64(nil, qid)
	for _, cn := range t.conns {
		t.enqueue(cn, qid, frameClose, body)
	}
}

// Send implements cluster.Transport. The message is queued as a typed
// entry: the destination connection's writer merges consecutive
// same-session messages into one MSGB frame at flush time.
func (t *Net) Send(qid uint64, from, to int, data []byte) {
	cn := t.conns[t.owner[to]]
	cn.out.put(outEntry{kind: entryMsg, qid: qid, from: from, to: to, data: data})
}

// Frames reports post-deployment frames written to and read from the
// driver's sockets, over all connections. The transport bench uses the
// deltas to show coalescing shrinking the frame count for identical
// payload traffic.
func (t *Net) Frames() (sent, received int64) {
	return t.framesOut.Load(), t.framesIn.Load()
}

// WireBytes implements cluster.Transport: measured socket bytes (frame
// headers included) attributed to the session, both directions.
func (t *Net) WireBytes(qid uint64) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.perQID[qid]
}

// Shutdown implements cluster.Transport: BYE every daemon, flush the
// outboxes, close the sockets.
func (t *Net) Shutdown() {
	t.mu.Lock()
	if t.closing {
		t.mu.Unlock()
		return
	}
	t.closing = true
	t.mu.Unlock()
	for _, cn := range t.conns {
		cn.out.put(outEntry{kind: entryFrame, frame: wire.AppendFrame(nil, frameBye, nil)})
		cn.out.close()
	}
	// Writers drain (BYE last), then close the write side; readers
	// unblock on EOF/reset and exit without reporting failure.
	t.wg.Wait()
}

func (t *Net) isClosing() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closing
}

// fail reports a transport loss to the driver once and poisons the
// outboxes so sends become no-ops.
func (t *Net) fail(err error) {
	t.mu.Lock()
	closing := t.closing
	t.closing = true
	t.mu.Unlock()
	for _, cn := range t.conns {
		cn.out.close()
	}
	if !closing && t.ev != nil {
		t.ev.Fail(0, err)
	}
}

func (cn *conn) writeLoop() {
	t := cn.t
	defer t.wg.Done()
	bw := bufio.NewWriterSize(cn.c, 1<<16)
	meter := func(qid uint64, n int) {
		t.addWire(qid, n)
		t.framesOut.Add(1)
	}
	for {
		entries, ok := cn.out.drain()
		if !ok {
			cn.c.Close()
			return
		}
		cn.c.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
		if err := writeChunk(bw, entries, cn.version, meter); err != nil {
			t.fail(fmt.Errorf("tcpnet: write to %s: %w", cn.addr, err))
			cn.c.Close()
			return
		}
	}
}

// siteRangeOK checks remote-supplied endpoints against the
// deployment's shape.
func (t *Net) siteRangeOK(from, to int) bool {
	if to != cluster.Coordinator && (to < 0 || to >= t.n) {
		return false
	}
	if from != cluster.Coordinator && (from < 0 || from >= t.n) {
		return false
	}
	return true
}

func (cn *conn) readLoop() {
	t := cn.t
	defer t.wg.Done()
	for {
		typ, body, err := wire.ReadFrame(cn.br)
		if err != nil {
			if !t.isClosing() {
				t.fail(fmt.Errorf("tcpnet: read from %s: %w", cn.addr, err))
			}
			return
		}
		t.framesIn.Add(1)
		switch typ {
		case frameMsg:
			m, err := decodeMsg(body)
			if err != nil {
				t.fail(fmt.Errorf("tcpnet: %s sent bad MSG: %w", cn.addr, err))
				return
			}
			// Range-check remote input here: a corrupt or skewed daemon
			// must fail the deployment, not panic the driver's router.
			if !t.siteRangeOK(m.from, m.to) {
				t.fail(fmt.Errorf("tcpnet: %s sent MSG with out-of-range site (%d→%d of %d)", cn.addr, m.from, m.to, t.n))
				return
			}
			t.addWire(m.qid, wire.FrameOverhead+len(body))
			t.ev.SiteSent(m.qid, m.from, m.to, m.data)
		case frameMsgB:
			if cn.version < 2 {
				t.fail(fmt.Errorf("tcpnet: %s sent MSGB on a v%d connection", cn.addr, cn.version))
				return
			}
			qid, batch, err := decodeMsgB(body)
			if err != nil {
				t.fail(fmt.Errorf("tcpnet: %s sent bad MSGB: %w", cn.addr, err))
				return
			}
			t.addWire(qid, wire.FrameOverhead+len(body))
			// Sub-message Data aliases the frame body (zero-copy decode);
			// the body is a fresh per-ReadFrame allocation that is never
			// reused, so handing the slices to the router is safe.
			for _, m := range batch.Msgs {
				from, to := int(m.From), int(m.To)
				if !t.siteRangeOK(from, to) {
					t.fail(fmt.Errorf("tcpnet: %s sent MSGB with out-of-range site (%d→%d of %d)", cn.addr, from, to, t.n))
					return
				}
				t.ev.SiteSent(qid, from, to, m.Data)
			}
		case frameAck:
			a, err := decodeAck(body)
			if err != nil {
				t.fail(fmt.Errorf("tcpnet: %s sent bad ACK: %w", cn.addr, err))
				return
			}
			t.addWire(a.qid, wire.FrameOverhead+len(body))
			t.ev.Retired(a.qid, a.site, time.Duration(a.busyNs), a.rounds, 1)
		case frameAckN:
			if cn.version < 2 {
				t.fail(fmt.Errorf("tcpnet: %s sent ACKN on a v%d connection", cn.addr, cn.version))
				return
			}
			a, err := decodeAckN(body)
			if err != nil {
				t.fail(fmt.Errorf("tcpnet: %s sent bad ACKN: %w", cn.addr, err))
				return
			}
			t.addWire(a.qid, wire.FrameOverhead+len(body))
			t.ev.Retired(a.qid, a.site, time.Duration(a.busyNs), a.rounds, int(a.count))
		case frameErr:
			e, err := decodeErr(body)
			if err != nil {
				t.fail(fmt.Errorf("tcpnet: %s sent bad ERR: %w", cn.addr, err))
				return
			}
			if e.qid == 0 {
				t.fail(fmt.Errorf("tcpnet: daemon %s: %s", cn.addr, e.msg))
				return
			}
			t.ev.Fail(e.qid, fmt.Errorf("tcpnet: daemon %s: %s", cn.addr, e.msg))
		default:
			t.fail(fmt.Errorf("tcpnet: unexpected %s from %s", frameName(typ), cn.addr))
			return
		}
	}
}
