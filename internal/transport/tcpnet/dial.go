package tcpnet

// The driver side: Dial connects to the dgsd daemons, performs the
// version handshake, ships each daemon its block of fragments, and
// returns a cluster.Transport over which the ordinary Cluster/Session
// machinery runs unchanged.
//
// Failure scoping: a connection-level error (socket error, write
// timeout, heartbeat silence) kills only that daemon's connection — its
// sites are reported lost with an error wrapping cluster.ErrSiteLost,
// which suspends the cluster instead of poisoning it, and Recover can
// re-host the lost sites on a spare or surviving daemon. Protocol
// corruption (an undecodable or out-of-spec frame) remains deployment-
// fatal: a daemon that violates the frame grammar cannot be trusted
// with a retry.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/obs"
	"dgs/internal/partition"
	"dgs/internal/wire"
)

// Options tune a Dial. The zero value is ready to use.
type Options struct {
	// DialTimeout bounds each TCP connect + handshake + fragment
	// shipment when the Dial context carries no earlier deadline.
	// Default 30s.
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write after deployment; a stalled
	// daemon fails the deployment instead of wedging it. Default 30s.
	WriteTimeout time.Duration
	// MaxProtocol caps the protocol version the driver offers in its
	// HELLO; 0 means the newest this build speaks (ProtocolVersion).
	// Pinning 1 forces the per-message frame set — benchmarks use it to
	// measure coalescing against the uncoalesced baseline, and it is
	// the interop escape hatch for daemons that predate negotiation.
	MaxProtocol uint16
	// Spares lists standby daemon addresses that are not part of the
	// initial deployment. Recover dials them, in order, to re-host the
	// sites of a lost daemon; each spare is used at most once.
	Spares []string
	// HeartbeatInterval enables the driver→daemon liveness probe on
	// v3+ connections: a PING every interval, with any inbound frame
	// counting as proof of life. 0 disables heartbeats — loss is then
	// detected only through socket errors.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is the missed-beat threshold: a connection silent
	// for HeartbeatMisses consecutive intervals is declared lost (after
	// a dial-back probe for the diagnostic). Default 3.
	HeartbeatMisses int
	// Metrics, when non-nil, receives the transport's driver-side
	// metrics (frame counters, outbox depth, heartbeat RTT, site
	// losses). Register one transport per registry: names are unique.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = 30 * time.Second
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.MaxProtocol == 0 || o.MaxProtocol > ProtocolVersion {
		o.MaxProtocol = ProtocolVersion
	}
	if o.MaxProtocol < MinProtocolVersion {
		o.MaxProtocol = MinProtocolVersion
	}
	if o.HeartbeatMisses <= 0 {
		o.HeartbeatMisses = 3
	}
	return o
}

// routing is the immutable connection/ownership snapshot Send reads
// lock-free. Recover swaps in a new snapshot after re-hosting lost
// sites; dead connections simply stop being referenced by owner.
type routing struct {
	conns []*conn
	owner []int // site ID -> index into conns
}

// Net is the TCP cluster.Transport: one connection per daemon, sites
// mapped onto daemons in contiguous blocks (HostedRange), failover
// re-mapping them onto spares or survivors.
type Net struct {
	n    int
	opts Options
	rt   atomic.Pointer[routing]

	ev cluster.Events

	mu          sync.Mutex
	perQID      map[uint64]int64 // measured frame bytes per session
	deployBytes int64            // handshake + fragment shipping traffic
	closing     bool
	spares      []string // spare daemon addresses not yet consumed
	onLoss      func(err error)

	recoverMu sync.Mutex // serializes Recover runs

	// Post-deployment frame counts over all connections, both
	// directions — the denominator coalescing improves.
	framesOut atomic.Int64
	framesIn  atomic.Int64

	// Pending trace collections, armed per traced Open and resolved by
	// inbound TRACE frames (or marked partial on connection loss).
	traceMu sync.Mutex
	traces  map[uint64]*traceWait

	// Optional metric instruments (nil without Options.Metrics).
	msgsOut    *obs.Counter
	siteLosses *obs.Counter
	hbRTT      *obs.Histogram

	wg sync.WaitGroup
}

var _ cluster.Transport = (*Net)(nil)
var _ cluster.Recoverer = (*Net)(nil)
var _ cluster.LossNotifier = (*Net)(nil)
var _ cluster.Tracer = (*Net)(nil)

// traceWait accumulates the TRACE frames of one traced session: one per
// v5+ connection the OPEN went to. done closes when every expected
// frame arrived or the wait was abandoned (connection loss, shutdown) —
// whichever first; partial then records that spans are missing.
type traceWait struct {
	mu      sync.Mutex
	want    int // TRACE frames still outstanding
	partial bool
	spans   []obs.SiteTrace
	done    chan struct{}
	closed  bool
}

func (w *traceWait) finishLocked() {
	if !w.closed {
		w.closed = true
		close(w.done)
	}
}

// deliver folds one daemon's spans in; the wait resolves when the last
// expected frame arrives.
func (w *traceWait) deliver(spans []obs.SiteTrace) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.spans = append(w.spans, spans...)
	if w.want--; w.want <= 0 {
		w.finishLocked()
	}
}

// abandon resolves the wait early with whatever arrived, marking the
// trace partial.
func (w *traceWait) abandon() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.partial = true
	w.finishLocked()
}

type conn struct {
	t       *Net
	addr    string
	c       net.Conn
	br      *bufio.Reader
	out     *outbox
	version uint16 // negotiated protocol version for this connection

	dead     atomic.Bool  // set once by loseConn
	lastIn   atomic.Int64 // unix nanos of the last inbound frame
	pingSeq  atomic.Uint64
	pingAt   atomic.Int64 // unix nanos of the last PING enqueue; 0 when answered
	stopHB   chan struct{}
	stopOnce sync.Once

	depMu      sync.Mutex
	deployedCh chan error // armed while a REDEPLOY awaits its DEPLOYED
}

func (cn *conn) stop() { cn.stopOnce.Do(func() { close(cn.stopHB) }) }

// armDeployed registers a one-shot channel for the connection's next
// DEPLOYED (or deployment-level ERR) frame.
func (cn *conn) armDeployed() chan error {
	ch := make(chan error, 1)
	cn.depMu.Lock()
	cn.deployedCh = ch
	cn.depMu.Unlock()
	return ch
}

// deliverDeployed resolves an armed REDEPLOY wait; reports whether a
// waiter existed.
func (cn *conn) deliverDeployed(err error) bool {
	cn.depMu.Lock()
	ch := cn.deployedCh
	cn.deployedCh = nil
	cn.depMu.Unlock()
	if ch == nil {
		return false
	}
	ch <- err
	return true
}

// Dial connects to one dgsd daemon per address, verifies protocol
// versions, and makes the fragmentation resident across them: daemon j
// receives the fragments of sites HostedRange(n, k, j). It returns an
// unbound Transport — pass it to cluster.NewWithTransport (or
// dgs.Deploy does both). ctx cancels in-flight connects and handshakes.
func Dial(ctx context.Context, addrs []string, fr *partition.Fragmentation, opts Options) (*Net, error) {
	if len(addrs) == 0 {
		return nil, errors.New("tcpnet: no daemon addresses")
	}
	opts = opts.withDefaults()
	n := fr.NumFragments()
	if n < len(addrs) {
		return nil, fmt.Errorf("tcpnet: %d fragments cannot span %d daemons", n, len(addrs))
	}
	t := &Net{
		n:      n,
		opts:   opts,
		perQID: make(map[uint64]int64),
		spares: append([]string(nil), opts.Spares...),
		traces: make(map[uint64]*traceWait),
	}
	if reg := opts.Metrics; reg != nil {
		t.registerMetrics(reg)
	}
	owner := make([]int, n)
	var conns []*conn
	dialer := &net.Dialer{Timeout: opts.DialTimeout}
	for j, addr := range addrs {
		lo, hi := HostedRange(n, len(addrs), j)
		hosted := make([]int, 0, hi-lo)
		for id := lo; id < hi; id++ {
			owner[id] = j
			hosted = append(hosted, id)
		}
		nc, err := dialer.DialContext(ctx, "tcp", addr)
		if err != nil {
			closeConns(conns)
			return nil, fmt.Errorf("tcpnet: dial %s: %w", addr, err)
		}
		cn := t.newConn(addr, nc)
		conns = append(conns, cn)
		if err := t.handshake(ctx, cn, fr, hosted); err != nil {
			closeConns(conns)
			return nil, fmt.Errorf("tcpnet: %s: %w", addr, err)
		}
	}
	t.rt.Store(&routing{conns: conns, owner: owner})
	return t, nil
}

func (t *Net) newConn(addr string, nc net.Conn) *conn {
	return &conn{
		t:      t,
		addr:   addr,
		c:      nc,
		br:     bufio.NewReaderSize(nc, 1<<16),
		out:    newOutbox(),
		stopHB: make(chan struct{}),
	}
}

// handshake runs HELLO → HELLO-OK → DEPLOY → DEPLOYED on a fresh
// connection, synchronously and under the context's deadline, shipping
// the fragments of exactly the given site IDs.
func (t *Net) handshake(ctx context.Context, cn *conn, fr *partition.Fragmentation, hosted []int) error {
	deadline := time.Now().Add(t.opts.DialTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := cn.c.SetDeadline(deadline); err != nil {
		return err
	}
	// HELLO advertises the driver's protocol ceiling; the daemon
	// replies with the version the connection will speak —
	// min(driver max, daemon max) — or refuses below the floor.
	hello := appendU16([]byte(helloMagic), t.opts.MaxProtocol)
	if err := t.writeDirect(cn, frameHello, hello); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	// Await HELLO-OK (ERR accepted in its slot) BEFORE shipping the
	// fragments: a version-mismatched daemon refuses and closes without
	// reading further, and a large unread DEPLOY would both waste the
	// shipment and turn the daemon's explanatory ERR into an opaque
	// connection reset.
	typ, body, err := wire.ReadFrame(cn.br)
	if err != nil {
		return fmt.Errorf("awaiting HELLO-OK: %w", err)
	}
	if typ == frameErr {
		e, _ := decodeErr(body)
		return fmt.Errorf("daemon refused: %s", e.msg)
	}
	if typ != frameHelloOK {
		return fmt.Errorf("expected HELLO-OK, got %s", frameName(typ))
	}
	v, err := wire.NewByteReader(body).U16()
	if err != nil || v < MinProtocolVersion || v > t.opts.MaxProtocol {
		return fmt.Errorf("protocol version mismatch: daemon chose %d, driver speaks %d-%d",
			v, MinProtocolVersion, t.opts.MaxProtocol)
	}
	cn.version = v
	if err := t.writeDirect(cn, frameDeploy, deployBodyFor(fr, t.n, hosted, cn.version)); err != nil {
		return fmt.Errorf("deploy: %w", err)
	}
	typ, body, err = wire.ReadFrame(cn.br)
	if err != nil {
		return fmt.Errorf("awaiting DEPLOYED: %w", err)
	}
	if typ == frameErr {
		e, _ := decodeErr(body)
		return fmt.Errorf("deploy refused: %s", e.msg)
	}
	if typ != frameDeployed {
		return fmt.Errorf("expected DEPLOYED, got %s", frameName(typ))
	}
	return cn.c.SetDeadline(time.Time{})
}

// deployBodyFor encodes a DEPLOY/REDEPLOY body shipping the fragments
// of the given site IDs (sorted) out of the driver's fragmentation.
func deployBodyFor(fr *partition.Fragmentation, total int, hosted []int, version uint16) []byte {
	ids := append([]int(nil), hosted...)
	sort.Ints(ids)
	var frags []byte
	for _, id := range ids {
		frags = partition.AppendFragment(frags, fr.Frags[id])
	}
	// v2+ ships the driver-owned label dictionary: names indexed by the
	// dense label ids the fragments carry, so daemons can validate and
	// render labels without strings ever appearing on the message path.
	var labels []string
	if version >= 2 && fr.G != nil {
		labels = fr.G.Dict().Names()
	}
	return encodeDeploy(deployBody{
		total:  total,
		hosted: ids,
		assign: fr.Assign,
		labels: labels,
		frags:  frags,
	}, version)
}

// writeDirect writes one frame synchronously (handshake only; after
// Bind all writes go through the outbox) and meters exactly the bytes
// that reached the socket as deploy bytes. The deadline was armed for
// the whole handshake by the caller, so writeFrame is invoked without
// its own timeout.
func (t *Net) writeDirect(cn *conn, typ byte, body []byte) error {
	n, err := writeFrame(cn.c, 0, typ, body)
	t.mu.Lock()
	t.deployBytes += int64(n)
	t.mu.Unlock()
	return err
}

func closeConns(conns []*conn) {
	for _, cn := range conns {
		cn.c.Close()
	}
}

// NumSites implements cluster.Transport.
func (t *Net) NumSites() int { return t.n }

// NumDaemons reports how many dgsd processes back the deployment
// (dead connections included until a Recover swaps them out).
func (t *Net) NumDaemons() int { return len(t.rt.Load().conns) }

// DeployBytes reports the measured one-time deployment traffic:
// handshakes plus shipped fragments (re-deployments included).
func (t *Net) DeployBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deployBytes
}

// Bind implements cluster.Transport: it installs the event sink and
// starts the per-connection reader, writer and (v3+, when enabled)
// heartbeat goroutines.
func (t *Net) Bind(ev cluster.Events) {
	t.ev = ev
	for _, cn := range t.rt.Load().conns {
		t.startConn(cn)
	}
}

// startConn launches a connection's goroutines. The closing check and
// the wg.Add happen under one lock so a concurrent Shutdown can never
// observe Add racing its Wait. Reports whether the conn was started.
func (t *Net) startConn(cn *conn) bool {
	t.mu.Lock()
	if t.closing {
		t.mu.Unlock()
		return false
	}
	hb := t.opts.HeartbeatInterval > 0 && cn.version >= 3
	t.wg.Add(2)
	if hb {
		t.wg.Add(1)
	}
	t.mu.Unlock()
	cn.lastIn.Store(time.Now().UnixNano())
	go cn.writeLoop()
	go cn.readLoop()
	if hb {
		go cn.heartbeatLoop()
	}
	return true
}

// addWire meters frame bytes onto a session. Only sessions with a live
// meter (created at Open, removed at Close) accumulate: frames that
// straggle in after a Close would otherwise resurrect the deleted entry
// and leak it forever on a long-lived deployment. Unattributable bytes
// count as deployment traffic instead, so nothing goes unmeasured.
func (t *Net) addWire(qid uint64, n int) {
	t.mu.Lock()
	if _, live := t.perQID[qid]; qid != 0 && live {
		t.perQID[qid] += int64(n)
	} else {
		t.deployBytes += int64(n)
	}
	t.mu.Unlock()
}

// enqueue queues a pre-framed control frame for cn. Metering happens in
// the writer at flush time (writeChunk), so measured bytes are exactly
// what the socket saw.
func (t *Net) enqueue(cn *conn, qid uint64, typ byte, body []byte) {
	cn.out.put(outEntry{kind: entryFrame, qid: qid, frame: wire.AppendFrame(nil, typ, body)})
}

// Open implements cluster.Transport: OPEN frames go to every daemon
// ahead of any of the session's messages (FIFO per connection), so no
// delivery can race handler installation. Resolution errors surface
// asynchronously as ERR frames.
func (t *Net) Open(qid uint64, kind cluster.SessionKind, spec cluster.SessionSpec) error {
	t.mu.Lock()
	t.perQID[qid] = 0 // arm the session's wire meter
	t.mu.Unlock()
	// Connections can sit at different negotiated versions (e.g. a spare
	// daemon older than the rest), so the body is encoded per version:
	// pre-4 peers get the plan-less body they can strict-decode.
	o := openBody{qid: qid, kind: kind, spec: spec}
	bodies := make(map[uint16][]byte, 2)
	conns := t.rt.Load().conns
	if spec.TraceID != 0 {
		// Arm the trace wait before any OPEN can be answered: one TRACE
		// frame is owed per trace-capable connection. Pre-v5 peers never
		// learn the trace ID, so their spans are missing by construction
		// — the wait starts out partial.
		w := &traceWait{done: make(chan struct{})}
		for _, cn := range conns {
			if cn.version >= 5 && !cn.dead.Load() {
				w.want++
			} else {
				w.partial = true
			}
		}
		if w.want == 0 {
			w.abandon()
		}
		t.traceMu.Lock()
		t.traces[qid] = w
		t.traceMu.Unlock()
	}
	for _, cn := range conns {
		body, ok := bodies[cn.version]
		if !ok {
			body = encodeOpen(o, cn.version)
			bodies[cn.version] = body
		}
		t.enqueue(cn, qid, frameOpen, body)
	}
	return nil
}

// Close implements cluster.Transport. The session's wire meter is
// released first — the CLOSE frames themselves, and any stragglers
// still in flight, are then metered as deployment traffic by addWire —
// so a long-lived deployment serving many queries neither leaks meter
// entries nor loses measured bytes.
func (t *Net) Close(qid uint64) {
	t.mu.Lock()
	delete(t.perQID, qid)
	t.mu.Unlock()
	body := appendU64(nil, qid)
	for _, cn := range t.rt.Load().conns {
		t.enqueue(cn, qid, frameClose, body)
	}
}

// Send implements cluster.Transport. The message is queued as a typed
// entry: the destination connection's writer merges consecutive
// same-session messages into one MSGB frame at flush time. A dead
// connection's outbox swallows the entry — the session it belonged to
// already failed with the site loss.
func (t *Net) Send(qid uint64, from, to int, data []byte) {
	rt := t.rt.Load()
	cn := rt.conns[rt.owner[to]]
	cn.out.put(outEntry{kind: entryMsg, qid: qid, from: from, to: to, data: data})
	if t.msgsOut != nil {
		t.msgsOut.Inc()
	}
}

// Frames reports post-deployment frames written to and read from the
// driver's sockets, over all connections. The transport bench uses the
// deltas to show coalescing shrinking the frame count for identical
// payload traffic.
func (t *Net) Frames() (sent, received int64) {
	return t.framesOut.Load(), t.framesIn.Load()
}

// registerMetrics installs the transport's instruments on reg. Sampled
// values (frame counters, deploy bytes, outbox depth) are exported as
// funcs over the existing counters so the hot path gains no new writes;
// only genuinely new signals (message sends, heartbeat RTT, site
// losses) get dedicated instruments.
func (t *Net) registerMetrics(reg *obs.Registry) {
	t.msgsOut = reg.Counter("dgs_net_msgs_out_total",
		"Session messages handed to the transport for delivery to a site.")
	t.siteLosses = reg.Counter("dgs_net_site_losses_total",
		"Daemon connections declared lost (heartbeat silence or socket error).")
	t.hbRTT = reg.Histogram("dgs_net_heartbeat_rtt_seconds",
		"Round-trip time from PING enqueue to PONG receipt.", obs.DefTimeBuckets)
	reg.CounterFunc("dgs_net_frames_out_total",
		"Post-deployment frames written to daemon sockets.",
		func() float64 { return float64(t.framesOut.Load()) })
	reg.CounterFunc("dgs_net_frames_in_total",
		"Post-deployment frames read from daemon sockets.",
		func() float64 { return float64(t.framesIn.Load()) })
	reg.CounterFunc("dgs_net_deploy_bytes_total",
		"Deployment traffic bytes: handshakes, fragment shipping, and unattributable stragglers.",
		func() float64 { return float64(t.DeployBytes()) })
	reg.GaugeFunc("dgs_net_outbox_depth",
		"Outbound entries queued across all live connections, awaiting the writers.",
		func() float64 {
			var depth int
			for _, cn := range t.rt.Load().conns {
				if !cn.dead.Load() {
					depth += cn.out.len()
				}
			}
			return float64(depth)
		})
}

// traceWaitFor looks a pending trace wait up.
func (t *Net) traceWaitFor(qid uint64) (*traceWait, bool) {
	t.traceMu.Lock()
	defer t.traceMu.Unlock()
	w, ok := t.traces[qid]
	return w, ok
}

// abandonTraces marks every pending trace wait partial and resolves it —
// the connection-loss and shutdown path. A finer per-connection account
// of which daemon still owed spans is not kept: a loss mid-session
// fails the traced query anyway, so a partial trace is the honest
// answer for all of them.
func (t *Net) abandonTraces() {
	t.traceMu.Lock()
	waits := make([]*traceWait, 0, len(t.traces))
	for _, w := range t.traces {
		waits = append(waits, w)
	}
	t.traceMu.Unlock()
	for _, w := range waits {
		w.abandon()
	}
}

// Trace implements cluster.Tracer: it blocks until every v5+ daemon
// shipped its TRACE frame for the closed session qid (their frames
// chase the CLOSE on the same connections, so the wait is one network
// round-trip) and returns the collected spans. complete is false when
// any daemon spoke a pre-trace protocol or died before reporting. A
// qid that was never traced returns (nil, false, nil) immediately.
func (t *Net) Trace(ctx context.Context, qid uint64) ([]obs.SiteTrace, bool, error) {
	t.traceMu.Lock()
	w, ok := t.traces[qid]
	t.traceMu.Unlock()
	if !ok {
		return nil, false, nil
	}
	// The wait stays registered until it resolves: the TRACE frames chase
	// the CLOSE over the network, so they almost always arrive after this
	// call starts blocking, and the read loop must still find the wait.
	var ctxErr error
	select {
	case <-w.done:
	case <-ctx.Done():
		w.abandon()
		ctxErr = ctx.Err()
	}
	t.traceMu.Lock()
	delete(t.traces, qid)
	t.traceMu.Unlock()
	if ctxErr != nil {
		return nil, false, ctxErr
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.spans, !w.partial, nil
}

// WireBytes implements cluster.Transport: measured socket bytes (frame
// headers included) attributed to the session, both directions.
func (t *Net) WireBytes(qid uint64) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.perQID[qid]
}

// Shutdown implements cluster.Transport: BYE every daemon, flush the
// outboxes, close the sockets.
func (t *Net) Shutdown() {
	t.mu.Lock()
	if t.closing {
		t.mu.Unlock()
		return
	}
	t.closing = true
	t.mu.Unlock()
	t.abandonTraces()
	for _, cn := range t.rt.Load().conns {
		cn.stop()
		cn.out.put(outEntry{kind: entryFrame, frame: wire.AppendFrame(nil, frameBye, nil)})
		cn.out.close()
	}
	// Writers drain (BYE last), then close the write side; readers
	// unblock on EOF/reset and exit without reporting failure.
	t.wg.Wait()
}

func (t *Net) isClosing() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closing
}

// fail reports a deployment-fatal transport failure (protocol
// corruption) to the driver once and poisons the outboxes so sends
// become no-ops. Connection-scoped errors go through loseConn instead.
func (t *Net) fail(err error) {
	t.mu.Lock()
	closing := t.closing
	t.closing = true
	t.mu.Unlock()
	for _, cn := range t.rt.Load().conns {
		cn.stop()
		cn.out.close()
	}
	t.abandonTraces()
	if !closing && t.ev != nil {
		t.ev.Fail(0, err)
	}
}

// sitesOf lists the site IDs currently routed to cn.
func (t *Net) sitesOf(cn *conn) []int {
	rt := t.rt.Load()
	var ids []int
	for id, ci := range rt.owner {
		if rt.conns[ci] == cn {
			ids = append(ids, id)
		}
	}
	return ids
}

// loseConn scopes a failure to the daemon it came from: the connection
// is severed and its sites are reported lost with an error wrapping
// cluster.ErrSiteLost — suspending the cluster rather than poisoning it
// — and the registered loss callback is invoked so the deployment layer
// can run recovery. Idempotent per connection.
func (t *Net) loseConn(cn *conn, cause error) {
	if cn.dead.Swap(true) {
		return
	}
	cn.stop()
	cn.out.close()
	cn.c.Close()
	lostErr := fmt.Errorf("tcpnet: daemon %s (sites %v): %v: %w", cn.addr, t.sitesOf(cn), cause, cluster.ErrSiteLost)
	cn.deliverDeployed(lostErr)
	// The lost daemon may still owe TRACE frames; resolve the waits as
	// partial rather than leaving trace collectors blocked.
	t.abandonTraces()
	if t.isClosing() {
		return
	}
	if t.siteLosses != nil {
		t.siteLosses.Inc()
	}
	if t.ev != nil {
		t.ev.Fail(0, lostErr)
	}
	t.mu.Lock()
	fn := t.onLoss
	t.mu.Unlock()
	if fn != nil {
		// Decoupled from the transport goroutine: the callback runs
		// recovery, which talks back to the transport.
		go fn(lostErr)
	}
}

// OnSiteLoss implements cluster.LossNotifier.
func (t *Net) OnSiteLoss(fn func(err error)) {
	t.mu.Lock()
	t.onLoss = fn
	t.mu.Unlock()
}

// Lost implements cluster.Recoverer: the site IDs currently routed to a
// dead connection, ascending.
func (t *Net) Lost() []int {
	rt := t.rt.Load()
	var lost []int
	for id, ci := range rt.owner {
		if rt.conns[ci].dead.Load() {
			lost = append(lost, id)
		}
	}
	return lost
}

// takeSpare pops the next unused spare address; ok=false when none are
// left.
func (t *Net) takeSpare() (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spares) == 0 {
		return "", false
	}
	addr := t.spares[0]
	t.spares = t.spares[1:]
	return addr, true
}

// Recover implements cluster.Recoverer: re-host every lost site from
// the driver's fragmentation. Preference order: dial a spare daemon (a
// full HELLO/DEPLOY handshake shipping only the lost sites' fragments),
// else REDEPLOY onto the live v3+ connection hosting the fewest sites.
// With full set, every surviving connection additionally gets its own
// sites' fragments re-shipped with replace semantics — the mode for a
// loss that interrupted an update batch, where survivors may hold a
// partially-applied state ahead of the driver's committed one. On
// success the routing snapshot is swapped and the transport carries
// traffic for all n sites again; the caller then resumes the cluster.
func (t *Net) Recover(ctx context.Context, fr *partition.Fragmentation, full bool) error {
	t.recoverMu.Lock()
	defer t.recoverMu.Unlock()
	if t.isClosing() {
		return errors.New("tcpnet: transport is shut down")
	}
	rt := t.rt.Load()
	var lost []int
	var live []*conn
	liveSites := make(map[*conn][]int)
	for id, ci := range rt.owner {
		cn := rt.conns[ci]
		if cn.dead.Load() {
			lost = append(lost, id)
		} else {
			if len(liveSites[cn]) == 0 {
				live = append(live, cn)
			}
			liveSites[cn] = append(liveSites[cn], id)
		}
	}
	if len(lost) == 0 && !full {
		return nil
	}

	// Place the lost sites: a fresh spare connection if one dials, else
	// the least-loaded redeploy-capable survivor.
	var spareConn *conn
	var target *conn
	if len(lost) > 0 {
		for spareConn == nil {
			addr, ok := t.takeSpare()
			if !ok {
				break
			}
			dialer := &net.Dialer{Timeout: t.opts.DialTimeout}
			nc, err := dialer.DialContext(ctx, "tcp", addr)
			if err != nil {
				continue // consumed; try the next spare
			}
			cn := t.newConn(addr, nc)
			if err := t.handshake(ctx, cn, fr, lost); err != nil {
				nc.Close()
				continue
			}
			spareConn = cn
		}
		if spareConn == nil {
			for _, cn := range live {
				if cn.version < 3 {
					continue
				}
				if target == nil || len(liveSites[cn]) < len(liveSites[target]) {
					target = cn
				}
			}
			if target == nil {
				return fmt.Errorf("tcpnet: sites %v lost with no spare daemon and no redeploy-capable survivor: %w", lost, cluster.ErrSiteLost)
			}
		}
	}

	// Ship the REDEPLOY frames: the redeploy target gets the lost sites
	// (plus, under full, its own), every other survivor its own under
	// full. Per-connection FIFO order means frames enqueued after the
	// REDEPLOY are processed only once the fragments are resident.
	type redeployWait struct {
		cn *conn
		ch chan error
	}
	var waits []redeployWait
	for _, cn := range live {
		ship := append([]int(nil), lost...)
		if cn != target {
			ship = nil
		}
		if full {
			ship = append(ship, liveSites[cn]...)
		}
		if len(ship) == 0 {
			continue
		}
		if cn.version < 3 {
			return fmt.Errorf("tcpnet: full re-deployment needs protocol 3, daemon %s speaks %d", cn.addr, cn.version)
		}
		ch := cn.armDeployed()
		t.enqueue(cn, 0, frameRedeploy, deployBodyFor(fr, t.n, ship, cn.version))
		if cn.dead.Load() {
			cn.deliverDeployed(fmt.Errorf("tcpnet: daemon %s died during recovery: %w", cn.addr, cluster.ErrSiteLost))
		}
		waits = append(waits, redeployWait{cn, ch})
	}
	for _, w := range waits {
		select {
		case err := <-w.ch:
			if err != nil {
				return fmt.Errorf("tcpnet: redeploy on %s: %w", w.cn.addr, err)
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	// Swap the routing snapshot. Dead connections stay in conns (their
	// outboxes swallow stragglers) but nothing routes to them anymore.
	conns := rt.conns
	targetIdx := -1
	if spareConn != nil {
		conns = append(append([]*conn(nil), rt.conns...), spareConn)
		targetIdx = len(conns) - 1
	} else if target != nil {
		for i, cn := range rt.conns {
			if cn == target {
				targetIdx = i
				break
			}
		}
	}
	owner := append([]int(nil), rt.owner...)
	for _, id := range lost {
		owner[id] = targetIdx
	}
	t.rt.Store(&routing{conns: conns, owner: owner})
	if spareConn != nil && !t.startConn(spareConn) {
		return errors.New("tcpnet: transport shut down during recovery")
	}
	return nil
}

func (cn *conn) writeLoop() {
	t := cn.t
	defer t.wg.Done()
	bw := bufio.NewWriterSize(cn.c, 1<<16)
	meter := func(qid uint64, n int) {
		t.addWire(qid, n)
		t.framesOut.Add(1)
	}
	for {
		entries, ok := cn.out.drain()
		if !ok {
			cn.c.Close()
			return
		}
		cn.c.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
		if err := writeChunk(bw, entries, cn.version, meter); err != nil {
			t.loseConn(cn, fmt.Errorf("write: %w", err))
			return
		}
	}
}

// heartbeatLoop is the per-connection failure detector (v3+): a PING
// every HeartbeatInterval, with the age of the last inbound frame as
// the liveness signal (any frame proves life; PONGs merely guarantee
// one exists on an otherwise idle connection). When the silence exceeds
// HeartbeatMisses intervals it performs a dial-back probe for the
// diagnostic and declares the daemon lost. Silence wins regardless of
// the probe's outcome: a dgsd serves one driver connection at a time,
// so a wedged daemon's listener still accepts (the probe parks in the
// backlog) — a successful dial proves the process exists, not that it
// serves.
func (cn *conn) heartbeatLoop() {
	t := cn.t
	defer t.wg.Done()
	interval := t.opts.HeartbeatInterval
	window := time.Duration(t.opts.HeartbeatMisses) * interval
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-cn.stopHB:
			return
		case <-ticker.C:
		}
		if cn.dead.Load() {
			return
		}
		silence := time.Since(time.Unix(0, cn.lastIn.Load()))
		if silence < window {
			// Stamp only when the previous PING was answered, so a slow
			// daemon's eventual PONG is measured against the PING that
			// provoked it, not a later one.
			cn.pingAt.CompareAndSwap(0, time.Now().UnixNano())
			t.enqueue(cn, 0, framePing, encodePingPong(cn.pingSeq.Add(1)))
			continue
		}
		// Missed-beat threshold crossed: dial-back probe, then one
		// re-check — a PONG may have raced past the threshold read.
		probe := "probe dial failed"
		if pc, err := net.DialTimeout("tcp", cn.addr, interval); err == nil {
			pc.Close()
			probe = "probe dial connected but the serving connection stayed silent"
		}
		if time.Since(time.Unix(0, cn.lastIn.Load())) < window {
			continue
		}
		t.loseConn(cn, fmt.Errorf("heartbeat: no inbound frame for %v (threshold %d×%v); %s",
			silence.Round(time.Millisecond), t.opts.HeartbeatMisses, interval, probe))
		return
	}
}

// siteRangeOK checks remote-supplied endpoints against the
// deployment's shape.
func (t *Net) siteRangeOK(from, to int) bool {
	if to != cluster.Coordinator && (to < 0 || to >= t.n) {
		return false
	}
	if from != cluster.Coordinator && (from < 0 || from >= t.n) {
		return false
	}
	return true
}

func (cn *conn) readLoop() {
	t := cn.t
	defer t.wg.Done()
	for {
		typ, body, err := wire.ReadFrame(cn.br)
		if err != nil {
			if !t.isClosing() && !cn.dead.Load() {
				t.loseConn(cn, fmt.Errorf("read: %w", err))
			}
			return
		}
		cn.lastIn.Store(time.Now().UnixNano())
		t.framesIn.Add(1)
		switch typ {
		case frameMsg:
			m, err := decodeMsg(body)
			if err != nil {
				t.fail(fmt.Errorf("tcpnet: %s sent bad MSG: %w", cn.addr, err))
				return
			}
			// Range-check remote input here: a corrupt or skewed daemon
			// must fail the deployment, not panic the driver's router.
			if !t.siteRangeOK(m.from, m.to) {
				t.fail(fmt.Errorf("tcpnet: %s sent MSG with out-of-range site (%d→%d of %d)", cn.addr, m.from, m.to, t.n))
				return
			}
			t.addWire(m.qid, wire.FrameOverhead+len(body))
			t.ev.SiteSent(m.qid, m.from, m.to, m.data)
		case frameMsgB:
			if cn.version < 2 {
				t.fail(fmt.Errorf("tcpnet: %s sent MSGB on a v%d connection", cn.addr, cn.version))
				return
			}
			qid, batch, err := decodeMsgB(body)
			if err != nil {
				t.fail(fmt.Errorf("tcpnet: %s sent bad MSGB: %w", cn.addr, err))
				return
			}
			t.addWire(qid, wire.FrameOverhead+len(body))
			// Sub-message Data aliases the frame body (zero-copy decode);
			// the body is a fresh per-ReadFrame allocation that is never
			// reused, so handing the slices to the router is safe.
			for _, m := range batch.Msgs {
				from, to := int(m.From), int(m.To)
				if !t.siteRangeOK(from, to) {
					t.fail(fmt.Errorf("tcpnet: %s sent MSGB with out-of-range site (%d→%d of %d)", cn.addr, from, to, t.n))
					return
				}
				t.ev.SiteSent(qid, from, to, m.Data)
			}
		case frameAck:
			a, err := decodeAck(body)
			if err != nil {
				t.fail(fmt.Errorf("tcpnet: %s sent bad ACK: %w", cn.addr, err))
				return
			}
			t.addWire(a.qid, wire.FrameOverhead+len(body))
			t.ev.Retired(a.qid, a.site, time.Duration(a.busyNs), a.rounds, 1)
		case frameAckN:
			if cn.version < 2 {
				t.fail(fmt.Errorf("tcpnet: %s sent ACKN on a v%d connection", cn.addr, cn.version))
				return
			}
			a, err := decodeAckN(body)
			if err != nil {
				t.fail(fmt.Errorf("tcpnet: %s sent bad ACKN: %w", cn.addr, err))
				return
			}
			t.addWire(a.qid, wire.FrameOverhead+len(body))
			t.ev.Retired(a.qid, a.site, time.Duration(a.busyNs), a.rounds, int(a.count))
		case framePong:
			if cn.version < 3 {
				t.fail(fmt.Errorf("tcpnet: %s sent PONG on a v%d connection", cn.addr, cn.version))
				return
			}
			if _, err := decodePingPong(body); err != nil {
				t.fail(fmt.Errorf("tcpnet: %s sent bad PONG: %w", cn.addr, err))
				return
			}
			// lastIn was already refreshed above. Close the RTT window the
			// matching PING opened, if one is outstanding.
			if at := cn.pingAt.Swap(0); at != 0 && t.hbRTT != nil {
				t.hbRTT.Observe(time.Since(time.Unix(0, at)).Seconds())
			}
		case frameTrace:
			if cn.version < 5 {
				t.fail(fmt.Errorf("tcpnet: %s sent TRACE on a v%d connection", cn.addr, cn.version))
				return
			}
			qid, spans, err := decodeTrace(body)
			if err != nil {
				t.fail(fmt.Errorf("tcpnet: %s sent bad TRACE: %w", cn.addr, err))
				return
			}
			// TRACE chases the CLOSE, so the session's meter is already
			// gone; addWire books the bytes as deployment traffic, keeping
			// a session's WireBytes identical traced or not.
			t.addWire(qid, wire.FrameOverhead+len(body))
			if w, ok := t.traceWaitFor(qid); ok {
				w.deliver(spans)
			}
		case frameDeployed:
			// A REDEPLOY completed. Outside a recovery this frame is
			// out-of-spec.
			if !cn.deliverDeployed(nil) {
				t.fail(fmt.Errorf("tcpnet: unexpected DEPLOYED from %s", cn.addr))
				return
			}
		case frameErr:
			e, err := decodeErr(body)
			if err != nil {
				t.fail(fmt.Errorf("tcpnet: %s sent bad ERR: %w", cn.addr, err))
				return
			}
			if e.qid == 0 {
				derr := fmt.Errorf("tcpnet: daemon %s: %s", cn.addr, e.msg)
				cn.deliverDeployed(derr)
				t.fail(derr)
				return
			}
			t.ev.Fail(e.qid, fmt.Errorf("tcpnet: daemon %s: %s", cn.addr, e.msg))
		default:
			t.fail(fmt.Errorf("tcpnet: unexpected %s from %s", frameName(typ), cn.addr))
			return
		}
	}
}
