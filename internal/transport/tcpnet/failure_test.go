package tcpnet_test

// Failure-path hardening for the TCP transport: disconnects mid-DEPLOY,
// half-open peers (accepted but silent — only the heartbeat can tell),
// and duplicate/forged ACK delivery against the termination
// certificate. Companion to the conformance matrix in matrix_test.go.

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/transport/tcpnet"
	"dgs/internal/wire"
)

// chokeListener hands out connections that die after reading budget
// bytes — the daemon side sees a mid-stream disconnect at a byte offset
// the test chooses.
type chokeListener struct {
	net.Listener
	budget int64
}

type chokeConn struct {
	net.Conn
	left *int64
}

func (c chokeConn) Read(p []byte) (int, error) {
	if atomic.LoadInt64(c.left) <= 0 {
		c.Conn.Close()
		return 0, io.ErrUnexpectedEOF
	}
	n, err := c.Conn.Read(p)
	if atomic.AddInt64(c.left, -int64(n)) <= 0 {
		c.Conn.Close()
	}
	return n, err
}

func (l *chokeListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	left := l.budget
	return chokeConn{Conn: c, left: &left}, nil
}

// A daemon that dies mid-DEPLOY (after the handshake, inside the
// fragment shipment) must fail Dial with an error — never hang the
// driver or leak the deployment half-built.
func TestMidDeployDisconnect(t *testing.T) {
	registerTestAlgos()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	// The HELLO frame is ~20 bytes; a 64-site DEPLOY is far bigger. A
	// 60-byte budget severs the daemon's read inside the DEPLOY body.
	srv := &tcpnet.Server{}
	go srv.Serve(&chokeListener{Listener: lis, budget: 60})

	done := make(chan error, 1)
	go func() {
		_, err := tcpnet.Dial(context.Background(), []string{lis.Addr().String()},
			trivialFragmentation(t, 64), tcpnet.Options{DialTimeout: 5 * time.Second})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Dial against a daemon that died mid-DEPLOY succeeded")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Dial hung on a mid-DEPLOY disconnect")
	}
}

// mutableProxy forwards bytes between the driver and a real daemon
// until Mute is called; after that both directions go silent while the
// sockets stay open — a half-open peer. Crucially the proxy's listener
// keeps accepting, so the driver's dial-back probe SUCCEEDS: detection
// must come from heartbeat silence, not from connection refusal.
type mutableProxy struct {
	lis   net.Listener
	muted atomic.Bool
	wg    sync.WaitGroup
}

func newMutableProxy(t *testing.T, backend string) *mutableProxy {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &mutableProxy{lis: lis}
	go func() {
		for {
			in, err := lis.Accept()
			if err != nil {
				return
			}
			out, err := net.Dial("tcp", backend)
			if err != nil {
				in.Close()
				continue
			}
			pipe := func(dst, src net.Conn) {
				defer p.wg.Done()
				buf := make([]byte, 1<<15)
				for {
					n, err := src.Read(buf)
					if n > 0 && !p.muted.Load() {
						if _, werr := dst.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}
			p.wg.Add(2)
			go pipe(out, in)
			go pipe(in, out)
		}
	}()
	t.Cleanup(func() { lis.Close() })
	return p
}

func (p *mutableProxy) addr() string { return p.lis.Addr().String() }

// A half-open peer — TCP accepted, deployment resident, then silence —
// must be detected by the heartbeat within the missed-beat budget and
// surface as cluster.ErrSiteLost, not hang forever.
func TestHalfOpenPeerDetectedByHeartbeat(t *testing.T) {
	registerTestAlgos()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &tcpnet.Server{}
	go srv.Serve(lis)
	t.Cleanup(func() { lis.Close() })
	proxy := newMutableProxy(t, lis.Addr().String())

	tr, err := tcpnet.Dial(context.Background(), []string{proxy.addr()},
		trivialFragmentation(t, 2), tcpnet.Options{
			HeartbeatInterval: 40 * time.Millisecond,
			HeartbeatMisses:   2,
		})
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.NewWithTransport(tr)
	defer c.Shutdown()

	// Healthy round trip first.
	s := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoEcho}, nil)
	s.Inject(0, &wire.Falsify{Pairs: []wire.VarRef{{U: 1, V: 4}}})
	if err := s.WaitQuiesce(bg); err != nil {
		t.Fatal(err)
	}
	s.Close()

	proxy.muted.Store(true) // the daemon goes silent but stays connected

	s2 := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoEcho}, nil)
	defer s2.Close()
	s2.Inject(0, &wire.Falsify{Pairs: []wire.VarRef{{U: 1, V: 1 << 30}}})
	ctx, cancel := context.WithTimeout(bg, 20*time.Second)
	defer cancel()
	if err := s2.WaitQuiesce(ctx); !errors.Is(err, cluster.ErrSiteLost) {
		t.Fatalf("WaitQuiesce against a half-open daemon = %v, want ErrSiteLost", err)
	}
}

// With heartbeats enabled, a healthy-but-idle deployment must NOT be
// declared lost: the daemon's PONGs are the liveness proof that spans
// idle periods far longer than the missed-beat budget.
func TestHeartbeatIdleNoFalsePositive(t *testing.T) {
	registerTestAlgos()
	tr := dialNet(t, 1, 2, tcpnet.Server{}, tcpnet.Options{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   2,
	})
	c := cluster.NewWithTransport(tr)
	defer c.Shutdown()
	time.Sleep(400 * time.Millisecond) // 10× the detection budget, fully idle
	if lost := tr.Lost(); len(lost) != 0 {
		t.Fatalf("idle healthy daemon declared lost: %v", lost)
	}
	s := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoEcho}, nil)
	defer s.Close()
	s.Inject(0, &wire.Falsify{Pairs: []wire.VarRef{{U: 1, V: 6}}})
	if err := s.WaitQuiesce(bg); err != nil {
		t.Fatalf("session after long idle: %v", err)
	}
}

// Duplicate and forged ACK deliveries must never falsely reach the
// termination certificate: the per-site outstanding ledger clamps every
// retirement to work actually routed there, so a later quiesce window
// still requires full completion. Runs on every backend — the clamp
// lives at the cluster seam the transports all feed.
func TestMatrixDuplicateAckNoFalseTermination(t *testing.T) {
	forEachBackend(t, 2, func(t *testing.T, c *cluster.Cluster) {
		s := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoEcho}, nil)
		defer s.Close()
		s.Inject(0, &wire.Falsify{Pairs: []wire.VarRef{{U: 1, V: 10}}})
		if err := s.WaitQuiesce(bg); err != nil {
			t.Fatal(err)
		}
		// The session is drained. Replay a retirement (a retransmitting
		// daemon), forge a huge batch, and claim work at a site that
		// does not exist; all three must clamp to zero.
		c.Retired(s.ID(), 0, 0, 0, 1)
		c.Retired(s.ID(), 1, 0, 0, 1000)
		c.Retired(s.ID(), 99, 0, 0, 5)
		// The next quiesce window must still require every hop: if any
		// forged done leaked, inflight would start negative and this
		// phase would certify before the ring finished (or instantly).
		s.Inject(0, &wire.Falsify{Pairs: []wire.VarRef{{U: 1, V: 10}}})
		if err := s.WaitQuiesce(bg); err != nil {
			t.Fatal(err)
		}
		if got := s.Stats().DataMsgs; got != 22 {
			t.Fatalf("DataMsgs = %d, want 22 — a forged ACK moved the termination certificate", got)
		}
	})
}
