package tcpnet

// Codec-level tests for the frame bodies and the chunk writer: buffer
// ownership of decoded values that outlive their frame, the v2 DEPLOY
// label table, ACKN aggregation, and the exact coalescing behavior of
// writeChunk at both protocol versions.

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"

	"dgs/internal/cluster"
	"dgs/internal/obs"
	"dgs/internal/wire"
)

// A decoded OPEN outlives its frame (the host retains the spec for the
// session), so Query and Config must be copies, not aliases of the
// frame buffer.
func TestDecodeOpenCopiesSpec(t *testing.T) {
	body := encodeOpen(openBody{
		qid:  7,
		kind: cluster.SessionQuery,
		spec: cluster.SessionSpec{Algo: "a", Query: []byte{1, 2, 3}, Config: []byte{9, 8}, Planner: "greedy", Plan: []byte{4, 5}}, //lint:allow regconsistent — codec round-trip probe, the spec never reaches a site
	}, ProtocolVersion)
	o, err := decodeOpen(body, ProtocolVersion)
	if err != nil {
		t.Fatal(err)
	}
	for i := range body {
		body[i] = 0xFF
	}
	if !bytes.Equal(o.spec.Query, []byte{1, 2, 3}) || !bytes.Equal(o.spec.Config, []byte{9, 8}) {
		t.Fatalf("decoded spec aliases the frame buffer: query=%v config=%v", o.spec.Query, o.spec.Config)
	}
	if o.spec.Planner != "greedy" || !bytes.Equal(o.spec.Plan, []byte{4, 5}) {
		t.Fatalf("decoded plan fields mangled: planner=%q plan=%v", o.spec.Planner, o.spec.Plan)
	}
}

// Pre-4 connections must get — and strict-decode — the plan-less OPEN
// body: the plan fields are dropped, not smuggled past an old decoder.
func TestEncodeOpenDropsPlanBelowV4(t *testing.T) {
	o := openBody{
		qid:  7,
		kind: cluster.SessionQuery,
		spec: cluster.SessionSpec{Algo: "a", Query: []byte{1}, Config: []byte{2}, Planner: "greedy", Plan: []byte{3, 3}}, //lint:allow regconsistent — codec round-trip probe, the spec never reaches a site
	}
	for _, v := range []uint16{1, 2, 3} {
		got, err := decodeOpen(encodeOpen(o, v), v)
		if err != nil {
			t.Fatalf("v%d: %v", v, err)
		}
		if got.spec.Planner != "" || got.spec.Plan != nil {
			t.Fatalf("v%d carried plan fields: %+v", v, got.spec)
		}
		if got.spec.Algo != "a" || !bytes.Equal(got.spec.Query, []byte{1}) {
			t.Fatalf("v%d mangled the base spec: %+v", v, got.spec)
		}
	}
	// A v4 body handed to a strict pre-4 decoder must be rejected, not
	// silently truncated — this is what forces the per-connection encode.
	if _, err := decodeOpen(encodeOpen(o, 4), 3); err == nil {
		t.Fatal("v3 decoder accepted a v4 body with trailing plan fields")
	}
}

func TestDeployLabelTable(t *testing.T) {
	d := deployBody{
		total:  4,
		hosted: []int{1, 3},
		assign: []int32{0, 1, 2, 3},
		labels: []string{"", "person", "movie"},
		frags:  []byte{0xAA, 0xBB},
	}
	got, err := decodeDeploy(encodeDeploy(d, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.labels, d.labels) {
		t.Fatalf("v2 labels = %q, want %q", got.labels, d.labels)
	}
	if !bytes.Equal(got.frags, d.frags) || got.total != d.total {
		t.Fatalf("v2 round trip mangled the body: %+v", got)
	}

	// A v1 encoding has no label table and must decode to labels == nil,
	// which is what disables the daemon-side dictionary validation.
	d1 := d
	d1.labels = nil
	got1, err := decodeDeploy(encodeDeploy(d1, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got1.labels != nil {
		t.Fatalf("v1 decode produced a label table: %q", got1.labels)
	}
	if !bytes.Equal(got1.frags, d.frags) {
		t.Fatalf("v1 round trip mangled fragments: %x", got1.frags)
	}
}

func TestAckNRoundTrip(t *testing.T) {
	a := ackNBody{qid: 3, site: 2, count: 17, busyNs: 123456, rounds: 9}
	got, err := decodeAckN(encodeAckN(a))
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("round trip: got %+v, want %+v", got, a)
	}
	bad := a
	bad.count = 0
	if _, err := decodeAckN(encodeAckN(bad)); err == nil {
		t.Fatal("zero-count ACKN decoded without error")
	}
}

// readChunkFrames writes entries through writeChunk at the given
// version and parses the produced byte stream back into frames.
func readChunkFrames(t *testing.T, entries []outEntry, version uint16) (types []byte, bodies [][]byte, metered int) {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	meter := func(qid uint64, n int) { metered += n }
	if err := writeChunk(bw, entries, version, meter); err != nil {
		t.Fatal(err)
	}
	if metered != buf.Len() {
		t.Fatalf("meter saw %d bytes, socket saw %d", metered, buf.Len())
	}
	br := bufio.NewReader(&buf)
	for {
		typ, body, err := wire.ReadFrame(br)
		if err != nil {
			return types, bodies, metered
		}
		types = append(types, typ)
		bodies = append(bodies, body)
	}
}

// The coalescer merges only consecutive same-key runs and never
// reorders: message runs split at qid changes and at interleaved acks,
// ack runs split at (qid, site) changes, and the v1 path emits one
// frame per entry.
func TestWriteChunkCoalescing(t *testing.T) {
	msg := func(qid uint64, to int, b byte) outEntry {
		return outEntry{kind: entryMsg, qid: qid, from: -1, to: to, data: []byte{byte(wire.KindControl), b}}
	}
	ack := func(qid uint64, site int, busy, rounds int64) outEntry {
		return outEntry{kind: entryAck, qid: qid, site: site, busyNs: busy, rounds: rounds}
	}
	entries := []outEntry{
		msg(1, 0, 10), msg(1, 1, 11), msg(1, 2, 12), // run → MSGB(3)
		msg(2, 0, 20),                    // qid change → lone MSG
		ack(1, 0, 5, 1), ack(1, 0, 7, 2), // run → ACKN(2)
		ack(1, 1, 3, 0), // site change → lone ACK
		msg(1, 3, 13),   // ack in between → new run, lone MSG
		{kind: entryFrame, qid: 0, frame: wire.AppendFrame(nil, frameBye, nil)},
	}

	types, bodies, _ := readChunkFrames(t, entries, 2)
	want := []byte{frameMsgB, frameMsg, frameAckN, frameAck, frameMsg, frameBye}
	if !bytes.Equal(types, want) {
		t.Fatalf("v2 frame sequence = %v, want %v", types, want)
	}
	qid, batch, err := decodeMsgB(bodies[0])
	if err != nil {
		t.Fatal(err)
	}
	if qid != 1 || len(batch.Msgs) != 3 {
		t.Fatalf("MSGB: qid=%d msgs=%d, want qid=1 msgs=3", qid, len(batch.Msgs))
	}
	for i, m := range batch.Msgs {
		if int(m.To) != i || m.Data[1] != byte(10+i) {
			t.Fatalf("MSGB sub-message %d out of order: to=%d data=%v", i, m.To, m.Data)
		}
	}
	an, err := decodeAckN(bodies[2])
	if err != nil {
		t.Fatal(err)
	}
	if an.count != 2 || an.busyNs != 12 || an.rounds != 3 || an.site != 0 {
		t.Fatalf("ACKN did not aggregate the run: %+v", an)
	}

	// Version 1: strictly one frame per entry, in order.
	types1, _, _ := readChunkFrames(t, entries, 1)
	want1 := []byte{frameMsg, frameMsg, frameMsg, frameMsg, frameAck, frameAck, frameAck, frameMsg, frameBye}
	if !bytes.Equal(types1, want1) {
		t.Fatalf("v1 frame sequence = %v, want %v", types1, want1)
	}
}

// A run bigger than batchByteCap splits rather than producing one
// oversized MSGB.
func TestWriteChunkRespectsByteCap(t *testing.T) {
	big := make([]byte, batchByteCap/2)
	big[0] = byte(wire.KindControl)
	entries := []outEntry{
		{kind: entryMsg, qid: 1, to: 0, data: big},
		{kind: entryMsg, qid: 1, to: 1, data: big},
		{kind: entryMsg, qid: 1, to: 2, data: big},
	}
	types, _, _ := readChunkFrames(t, entries, 2)
	if len(types) < 2 {
		t.Fatalf("an over-cap run coalesced into %d frame(s)", len(types))
	}
	for _, typ := range types {
		if typ != frameMsg && typ != frameMsgB {
			t.Fatalf("unexpected frame %s in split run", frameName(typ))
		}
	}
}

// Tracing off must leave the v5 OPEN body byte-identical to the v4 one
// — for a planned and for a planless spec — so an untraced deployment's
// wire traffic is indistinguishable from a pre-trace build's. This is
// the regression test behind the BENCH_TRANSPORT trace-off arm.
func TestEncodeOpenTraceOffByteIdenticalToV4(t *testing.T) {
	specs := map[string]cluster.SessionSpec{
		"planless": {Algo: "a", Query: []byte{1, 2}, Config: []byte{3}},                                           //lint:allow regconsistent — codec byte-identity probe, the spec never reaches a site
		"planned":  {Algo: "a", Query: []byte{1, 2}, Config: []byte{3}, Planner: "greedy", Plan: []byte{4, 5, 6}}, //lint:allow regconsistent — codec byte-identity probe, the spec never reaches a site
	}
	for name, spec := range specs {
		o := openBody{qid: 9, kind: cluster.SessionQuery, spec: spec}
		v4 := encodeOpen(o, 4)
		v5 := encodeOpen(o, 5)
		if !bytes.Equal(v4, v5) {
			t.Errorf("%s: untraced v5 OPEN differs from v4:\nv4 %x\nv5 %x", name, v4, v5)
		}
	}
}

// A traced planless OPEN emits the plan pair as two empty blobs ahead
// of the trace ID (the decoder tells the two trailing-optional
// extensions apart by remaining length), and round-trips at v5. The
// same body must be rejected — not silently truncated — by a strict v4
// decoder, which is what forces the per-connection encode.
func TestEncodeOpenTracedRoundTrip(t *testing.T) {
	for name, spec := range map[string]cluster.SessionSpec{
		"planless": {Algo: "a", Query: []byte{1}, Config: []byte{2}, TraceID: 0xBEEF},                                 //lint:allow regconsistent — codec round-trip probe, the spec never reaches a site
		"planned":  {Algo: "a", Query: []byte{1}, Config: []byte{2}, Planner: "greedy", Plan: []byte{7}, TraceID: 11}, //lint:allow regconsistent — codec round-trip probe, the spec never reaches a site
	} {
		o := openBody{qid: 3, kind: cluster.SessionQuery, spec: spec}
		got, err := decodeOpen(encodeOpen(o, 5), 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.spec.TraceID != spec.TraceID {
			t.Fatalf("%s: trace ID = %#x, want %#x", name, got.spec.TraceID, spec.TraceID)
		}
		if got.spec.Planner != spec.Planner || !bytes.Equal(got.spec.Plan, spec.Plan) {
			t.Fatalf("%s: plan fields mangled: %+v", name, got.spec)
		}
		if _, err := decodeOpen(encodeOpen(o, 5), 4); err == nil {
			t.Fatalf("%s: v4 decoder accepted a traced v5 body", name)
		}
		// A pre-5 encode drops the trace ID entirely: the daemon can
		// never learn a trace ID it would not know how to report.
		got4, err := decodeOpen(encodeOpen(o, 4), 4)
		if err != nil {
			t.Fatalf("%s: v4 round trip: %v", name, err)
		}
		if got4.spec.TraceID != 0 {
			t.Fatalf("%s: v4 body smuggled trace ID %#x", name, got4.spec.TraceID)
		}
	}
}

// The TRACE frame body round-trips multi-site span sets, including the
// coordinator pseudo-site and sites with no spans.
func TestTraceCodecRoundTrip(t *testing.T) {
	spans := []obs.SiteTrace{
		{Site: obs.CoordinatorSite, Spans: []obs.RoundSpan{{Round: 0, BusyNs: 12, MsgsIn: 3, MsgsOut: 1, BytesIn: 90, BytesOut: 14, Rounds: 2}}},
		{Site: 0, Spans: []obs.RoundSpan{{Round: 0, BusyNs: 7, MsgsIn: 1, BytesIn: 9}, {Round: 1, BusyNs: 5, MsgsOut: 2, BytesOut: 31, Rounds: 1}}},
		{Site: 2, Spans: []obs.RoundSpan{}},
	}
	qid, got, err := decodeTrace(encodeTrace(42, spans))
	if err != nil {
		t.Fatal(err)
	}
	if qid != 42 {
		t.Fatalf("qid = %d, want 42", qid)
	}
	if !reflect.DeepEqual(got, spans) {
		t.Fatalf("span set mangled:\nwant %+v\ngot  %+v", spans, got)
	}
	if _, _, err := decodeTrace([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated TRACE body decoded")
	}
}
