package tcpnet_test

// Distributed-tracing conformance: the traced-session behaviors every
// backend must share — a complete span tree whose totals reproduce the
// session's Stats, an empty-but-present trace for an idle session (the
// daemons owe one TRACE per traced session even when no message
// flowed), graceful degradation to a partial trace below protocol v5,
// and nil for untraced sessions.

import (
	"context"
	"testing"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/obs"
	"dgs/internal/transport/tcpnet"
	"dgs/internal/wire"
)

// traceCtx bounds span collection: a regression that stops TRACE
// frames from resolving the driver's wait must fail the test, not hang
// it for the full go-test timeout.
func traceCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// forEachV5Backend runs body on the backends that negotiate the full
// current protocol — the ones where a trace must come back complete.
// The version-pinned fallback rows are covered by
// TestTraceV4FallbackPartial instead.
func forEachV5Backend(t *testing.T, n int, body func(t *testing.T, c *cluster.Cluster)) {
	registerTestAlgos()
	for _, be := range []backend{
		{"inproc", func(t *testing.T, n int) *cluster.Cluster {
			return cluster.New(n, cluster.Network{})
		}},
		tcpBackend(1),
		tcpBackend(2),
	} {
		be := be
		t.Run(be.name, func(t *testing.T) {
			c := be.mk(t, n)
			defer c.Shutdown()
			body(t, c)
		})
	}
}

// A traced session yields a complete span tree on every backend:
// coordinator plus every worker site, with message totals equal to the
// session's own accounting (each message counted once at its receiver).
func TestMatrixTraceRoundTrip(t *testing.T) {
	const n = 4
	forEachV5Backend(t, n, func(t *testing.T, c *cluster.Cluster) {
		var replies int
		coord := cluster.HandlerFunc(func(*cluster.Ctx, int, wire.Payload) { replies++ })
		s := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoReply, TraceID: 77}, coord)
		s.Broadcast(&wire.Control{Op: 1})
		if err := s.WaitQuiesce(bg); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		s.Close()
		tr, err := s.Trace(traceCtx(t))
		if err != nil {
			t.Fatal(err)
		}
		if tr == nil || tr.TraceID != 77 {
			t.Fatalf("traced session returned trace %+v", tr)
		}
		if !tr.Complete {
			t.Fatalf("trace incomplete on an all-v%d deployment", tcpnet.ProtocolVersion)
		}
		seen := map[int]bool{}
		for _, site := range tr.Sites {
			seen[site.Site] = true
		}
		if !seen[obs.CoordinatorSite] {
			t.Fatalf("trace lacks coordinator spans: %+v", tr.Sites)
		}
		for i := 0; i < n; i++ {
			if !seen[i] {
				t.Fatalf("trace lacks site %d spans: %+v", i, tr.Sites)
			}
		}
		_, msgsIn, msgsOut, bytesIn, bytesOut, _ := tr.Totals()
		wantMsgs := st.ControlMsgs + st.DataMsgs + st.ResultMsgs
		wantBytes := st.ControlBytes + st.DataBytes + st.ResultBytes
		if msgsIn != wantMsgs || msgsOut != wantMsgs {
			t.Fatalf("span msgs in=%d out=%d, want %d (stats: %+v)", msgsIn, msgsOut, wantMsgs, st)
		}
		if bytesIn != wantBytes || bytesOut != wantBytes {
			t.Fatalf("span bytes in=%d out=%d, want %d", bytesIn, bytesOut, wantBytes)
		}
	})
}

// A traced session that closes without any traffic still resolves: the
// daemons ship their (empty) TRACE frames on the CLOSE, and the
// driver's wait must find them. This is the regression test for the
// driver dropping its trace wait before the frames arrive.
func TestMatrixTraceIdleSessionResolves(t *testing.T) {
	forEachV5Backend(t, 3, func(t *testing.T, c *cluster.Cluster) {
		s := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoNop, TraceID: 5}, nil)
		s.Close()
		tr, err := s.Trace(traceCtx(t))
		if err != nil {
			t.Fatal(err)
		}
		if tr == nil || !tr.Complete {
			t.Fatalf("idle traced session: trace = %+v", tr)
		}
	})
}

// An untraced session has no trace — on any backend, with no waiting.
func TestMatrixUntracedTraceNil(t *testing.T) {
	forEachBackend(t, 2, func(t *testing.T, c *cluster.Cluster) {
		s := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoNop}, nil)
		s.Broadcast(&wire.Control{Op: 1})
		if err := s.WaitQuiesce(bg); err != nil {
			t.Fatal(err)
		}
		s.Close()
		tr, err := s.Trace(traceCtx(t))
		if err != nil {
			t.Fatal(err)
		}
		if tr != nil {
			t.Fatalf("untraced session returned a trace: %+v", tr)
		}
	})
}

// Below protocol v5 the daemons never learn the trace ID: the session
// still runs (identical traffic), and the driver degrades to a partial
// trace carrying only its own coordinator spans.
func TestTraceV4FallbackPartial(t *testing.T) {
	registerTestAlgos()
	for name, mk := range map[string]func(t *testing.T) *tcpnet.Net{
		"v4driver": func(t *testing.T) *tcpnet.Net {
			return dialNet(t, 2, 3, tcpnet.Server{}, tcpnet.Options{MaxProtocol: 4})
		},
		"v4daemon": func(t *testing.T) *tcpnet.Net {
			return dialNet(t, 2, 3, tcpnet.Server{MaxVersion: 4}, tcpnet.Options{})
		},
	} {
		t.Run(name, func(t *testing.T) {
			c := cluster.NewWithTransport(mk(t))
			defer c.Shutdown()
			var replies int
			coord := cluster.HandlerFunc(func(*cluster.Ctx, int, wire.Payload) { replies++ })
			s := open(t, c, cluster.SessionQuery, cluster.SessionSpec{Algo: algoReply, TraceID: 9}, coord)
			s.Broadcast(&wire.Control{Op: 1})
			if err := s.WaitQuiesce(bg); err != nil {
				t.Fatal(err)
			}
			s.Close()
			if replies != 3 {
				t.Fatalf("v4 traced session lost traffic: %d replies", replies)
			}
			tr, err := s.Trace(traceCtx(t))
			if err != nil {
				t.Fatal(err)
			}
			if tr == nil {
				t.Fatal("traced session returned no trace")
			}
			if tr.Complete {
				t.Fatal("trace claims completeness on a v4 deployment")
			}
			for _, site := range tr.Sites {
				if site.Site != obs.CoordinatorSite {
					t.Fatalf("v4 deployment produced worker spans for site %d", site.Site)
				}
			}
		})
	}
}
