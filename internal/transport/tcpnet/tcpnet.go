// Package tcpnet is the TCP backend of the cluster Transport: the same
// sessions the in-process backend serves, but with the worker sites
// living in dgsd daemon processes and every message crossing a real
// socket as a length-prefixed internal/wire frame. docs/WIRE.md is the
// normative description of the protocol this package implements.
//
// Topology: the driver holds one long-lived connection per daemon and
// routes ALL traffic — even site-to-site messages between two sites of
// the same daemon pass through the driver. This hub routing is what
// preserves the runtime's termination guarantee across process
// boundaries: the driver increments its per-session in-flight counter
// when a message enters the network (a MSG frame arrives or is sent) and
// decrements it when the processing daemon's ACK arrives, and because a
// daemon writes a handler's output frames before the triggering
// message's ACK on the same FIFO connection, the counter can never hit
// zero while work is outstanding. It also makes the driver the natural
// metering point: Stats.WireBytes on this backend is the measured frame
// bytes (headers included) that crossed the driver's sockets for the
// session. The price is a driver hop on site-to-site messages; direct
// daemon-to-daemon links are future work and would need a distributed
// termination protocol.
//
// Connection lifecycle: dial (context-aware) → HELLO/HELLO-OK version
// handshake → DEPLOY fragment shipping → DEPLOYED → any number of
// sessions (OPEN/MSG/ACK/CLOSE) → BYE → TCP close. A daemon serves one
// deployment at a time and resets when the driver disconnects. Errors
// travel as ERR frames: qid-scoped ones kill a session, qid-0 ones kill
// the deployment. Writes never block protocol progress — each
// connection's frames pass through an unbounded outbox drained by a
// writer goroutine, which rules out the distributed write-deadlock of
// mutually full TCP buffers.
package tcpnet

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/obs"
	"dgs/internal/wire"
)

// ProtocolVersion is the newest protocol this build speaks; the HELLO
// handshake negotiates down to min(driver max, daemon max), and either
// side refuses below MinProtocolVersion. Version 2 adds message
// coalescing (MSGB/ACKN frames) and the DEPLOY label-name table;
// version 3 adds liveness and failover (PING/PONG heartbeats and the
// REDEPLOY frame that re-hosts a lost peer's sites on a survivor). A
// deployment negotiated below 3 simply runs without heartbeats — loss
// is then only detected through socket errors — so a new driver
// interoperates with older daemons unchanged. Version 4 extends the
// OPEN body with the evaluation plan (planner name + internal/plan
// blob); plans are advisory, so on connections negotiated below 4 the
// driver encodes the pre-plan OPEN body and the daemon evaluates in
// declaration order with identical results. Version 5 adds distributed
// query tracing: a trailing-optional trace ID on OPEN and the TRACE
// frame shipping per-round spans back on session close. Tracing is
// advisory like the plan — a connection below 5 never sees the trace
// ID and ships no spans (the trace comes back partial, results
// identical), and with tracing off the v5 OPEN body is byte-identical
// to v4.
const ProtocolVersion uint16 = 5

// MinProtocolVersion is the oldest protocol this build still speaks.
const MinProtocolVersion uint16 = 1

// helloMagic opens every HELLO body so that a stray connection to the
// wrong port fails fast and explicitly.
const helloMagic = "DGSN"

// Frame types (the byte after the length prefix; see docs/WIRE.md).
const (
	frameHello    = 0x01 // driver→daemon: magic, protocol version
	frameHelloOK  = 0x02 // daemon→driver: accepted version
	frameDeploy   = 0x03 // driver→daemon: assign directory + hosted fragments
	frameDeployed = 0x04 // daemon→driver: fragments resident
	frameOpen     = 0x05 // driver→daemon: open session qid from spec
	frameClose    = 0x06 // driver→daemon: discard session qid
	frameMsg      = 0x07 // both ways: one payload for (qid, from→to)
	frameAck      = 0x08 // daemon→driver: one message processed
	frameErr      = 0x09 // daemon→driver: session (qid) or deployment (0) error
	frameBye      = 0x0A // driver→daemon: graceful goodbye
	frameMsgB     = 0x0B // both ways, v2+: several payloads of one session in one frame
	frameAckN     = 0x0C // daemon→driver, v2+: count messages processed, aggregated busy/rounds
	framePing     = 0x0D // driver→daemon, v3+: liveness probe (u64 seq)
	framePong     = 0x0E // daemon→driver, v3+: echo of a PING's seq
	frameRedeploy = 0x0F // driver→daemon, v3+: host additional sites (deployBody); daemon replies DEPLOYED
	frameTrace    = 0x10 // daemon→driver, v5+: a closed traced session's per-round spans
)

func frameName(t byte) string {
	switch t {
	case frameHello:
		return "HELLO"
	case frameHelloOK:
		return "HELLO-OK"
	case frameDeploy:
		return "DEPLOY"
	case frameDeployed:
		return "DEPLOYED"
	case frameOpen:
		return "OPEN"
	case frameClose:
		return "CLOSE"
	case frameMsg:
		return "MSG"
	case frameAck:
		return "ACK"
	case frameErr:
		return "ERR"
	case frameBye:
		return "BYE"
	case frameMsgB:
		return "MSGB"
	case frameAckN:
		return "ACKN"
	case framePing:
		return "PING"
	case framePong:
		return "PONG"
	case frameRedeploy:
		return "REDEPLOY"
	case frameTrace:
		return "TRACE"
	default:
		return fmt.Sprintf("frame(%#x)", t)
	}
}

// --- frame body codecs ---
//
// All integers little-endian, on wire's shared append/ByteReader
// primitives. Site IDs are int32 on the wire so the coordinator's -1
// survives; strings and blobs are u32-length-prefixed.

func appendU16(dst []byte, x uint16) []byte { return wire.AppendUint16(dst, x) }
func appendU32(dst []byte, x uint32) []byte { return wire.AppendUint32(dst, x) }
func appendU64(dst []byte, x uint64) []byte { return wire.AppendUint64(dst, x) }
func appendI32(dst []byte, x int) []byte    { return wire.AppendUint32(dst, uint32(int32(x))) }
func appendBlob(dst []byte, b []byte) []byte {
	dst = appendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

func readI32(r *wire.ByteReader) (int, error) {
	x, err := r.U32()
	return int(int32(x)), err
}

// readBlob returns a blob aliasing the frame buffer — for data consumed
// while the frame is live.
func readBlob(r *wire.ByteReader) ([]byte, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	return r.Take(int(n))
}

// readBlobCopy returns a fresh copy — for decoded values that outlive
// the frame.
func readBlobCopy(r *wire.ByteReader) ([]byte, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	return r.TakeCopy(int(n))
}

// openBody is the OPEN frame payload.
type openBody struct {
	qid  uint64
	kind cluster.SessionKind
	spec cluster.SessionSpec
}

// encodeOpen renders the OPEN body for a connection that negotiated
// version. Pre-4 peers decode the body strictly, so the plan fields are
// emitted only at ≥4; dropping them is safe because plans are advisory
// (the unplanned site evaluates in declaration order, same results).
// At ≥4 the pair is trailing-optional — a planless session's OPEN is
// byte-identical to the pre-plan body, so disabling the planner keeps
// the wire identical across protocol versions. At ≥5 the trace ID is a
// second trailing-optional extension: emitted only when nonzero, and
// then the plan pair is emitted too (even when empty) so the decoder
// can tell the two extensions apart by remaining length. Tracing off
// therefore leaves the OPEN body byte-identical to v4 — the property
// the BENCH_TRANSPORT arms (and a regression test) rely on.
func encodeOpen(o openBody, version uint16) []byte {
	dst := appendU64(nil, o.qid)
	dst = append(dst, byte(o.kind))
	dst = appendBlob(dst, []byte(o.spec.Algo))
	dst = appendBlob(dst, o.spec.Query)
	dst = appendBlob(dst, o.spec.Config)
	traced := version >= 5 && o.spec.TraceID != 0
	if traced || (version >= 4 && (o.spec.Planner != "" || len(o.spec.Plan) > 0)) {
		dst = appendBlob(dst, []byte(o.spec.Planner))
		dst = appendBlob(dst, o.spec.Plan)
	}
	if traced {
		dst = appendU64(dst, o.spec.TraceID)
	}
	return dst
}

func decodeOpen(b []byte, version uint16) (openBody, error) {
	r := wire.NewByteReader(b)
	var o openBody
	var err error
	if o.qid, err = r.U64(); err != nil {
		return o, err
	}
	k, err := r.Byte()
	if err != nil {
		return o, err
	}
	o.kind = cluster.SessionKind(k)
	algo, err := readBlob(r)
	if err != nil {
		return o, err
	}
	o.spec.Algo = string(algo)
	// The spec escapes the frame: the host retains it for the session's
	// lifetime, long after this frame buffer is gone, so Query and
	// Config must be copies, not aliases (see the ownership convention
	// in wire.ByteReader).
	if o.spec.Query, err = readBlobCopy(r); err != nil {
		return o, err
	}
	if o.spec.Config, err = readBlobCopy(r); err != nil {
		return o, err
	}
	if version >= 4 && r.Remaining() > 0 {
		planner, err := readBlob(r)
		if err != nil {
			return o, err
		}
		o.spec.Planner = string(planner)
		if o.spec.Plan, err = readBlobCopy(r); err != nil {
			return o, err
		}
	}
	if version >= 5 && r.Remaining() > 0 {
		if o.spec.TraceID, err = r.U64(); err != nil {
			return o, err
		}
	}
	return o, r.Done()
}

// msgBody is the MSG frame payload. data is the wire-encoded payload
// message, unchanged from what Session accounting sees.
type msgBody struct {
	qid      uint64
	from, to int
	data     []byte
}

func encodeMsg(m msgBody) []byte {
	dst := make([]byte, 0, 16+len(m.data))
	dst = appendU64(dst, m.qid)
	dst = appendI32(dst, m.from)
	dst = appendI32(dst, m.to)
	return append(dst, m.data...)
}

func decodeMsg(b []byte) (msgBody, error) {
	r := wire.NewByteReader(b)
	var m msgBody
	var err error
	if m.qid, err = r.U64(); err != nil {
		return m, err
	}
	if m.from, err = readI32(r); err != nil {
		return m, err
	}
	if m.to, err = readI32(r); err != nil {
		return m, err
	}
	m.data = r.Rest()
	if len(m.data) == 0 {
		return m, fmt.Errorf("tcpnet: MSG with empty payload")
	}
	return m, nil
}

// ackBody is the ACK frame payload: one processed message at `site`,
// with the handler's busy time and recorded rounds piggybacked so the
// driver's Stats stay meaningful across the process boundary.
type ackBody struct {
	qid    uint64
	site   int
	busyNs int64
	rounds int64
}

func encodeAck(a ackBody) []byte {
	dst := make([]byte, 0, 28)
	dst = appendU64(dst, a.qid)
	dst = appendI32(dst, a.site)
	dst = appendU64(dst, uint64(a.busyNs))
	return appendU64(dst, uint64(a.rounds))
}

func decodeAck(b []byte) (ackBody, error) {
	r := wire.NewByteReader(b)
	var a ackBody
	var err error
	if a.qid, err = r.U64(); err != nil {
		return a, err
	}
	if a.site, err = readI32(r); err != nil {
		return a, err
	}
	bn, err := r.U64()
	if err != nil {
		return a, err
	}
	a.busyNs = int64(bn)
	rn, err := r.U64()
	if err != nil {
		return a, err
	}
	a.rounds = int64(rn)
	return a, r.Done()
}

// ackNBody is the ACKN frame payload (v2+): count messages of one
// session processed at `site`, with busy time and rounds summed over
// them. Retiring it is equivalent to count single ACKs — the driver
// drops its in-flight counter by exactly count — so the quiescence
// certificate is preserved bit-for-bit.
type ackNBody struct {
	qid    uint64
	site   int
	count  uint32
	busyNs int64
	rounds int64
}

func encodeAckN(a ackNBody) []byte {
	dst := make([]byte, 0, 32)
	dst = appendU64(dst, a.qid)
	dst = appendI32(dst, a.site)
	dst = appendU32(dst, a.count)
	dst = appendU64(dst, uint64(a.busyNs))
	return appendU64(dst, uint64(a.rounds))
}

func decodeAckN(b []byte) (ackNBody, error) {
	r := wire.NewByteReader(b)
	var a ackNBody
	var err error
	if a.qid, err = r.U64(); err != nil {
		return a, err
	}
	if a.site, err = readI32(r); err != nil {
		return a, err
	}
	if a.count, err = r.U32(); err != nil {
		return a, err
	}
	if a.count == 0 {
		return a, fmt.Errorf("tcpnet: ACKN with zero count")
	}
	bn, err := r.U64()
	if err != nil {
		return a, err
	}
	a.busyNs = int64(bn)
	rn, err := r.U64()
	if err != nil {
		return a, err
	}
	a.rounds = int64(rn)
	return a, r.Done()
}

// MSGB frame body (v2+): u64 qid, then one wire.Batch payload carrying
// the coalesced sub-messages. appendMsgBatch encodes straight from an
// outbox run; decodeMsgB goes through wire.Decode so the batch codec
// (and its fuzz coverage) is the single source of truth.
func appendMsgBatch(dst []byte, qid uint64, run []outEntry) []byte {
	dst = appendU64(dst, qid)
	dst = append(dst, byte(wire.KindBatch))
	dst = appendU32(dst, uint32(len(run)))
	for i := range run {
		dst = appendI32(dst, run[i].from)
		dst = appendI32(dst, run[i].to)
		dst = appendBlob(dst, run[i].data)
	}
	return dst
}

func decodeMsgB(b []byte) (uint64, *wire.Batch, error) {
	r := wire.NewByteReader(b)
	qid, err := r.U64()
	if err != nil {
		return 0, nil, err
	}
	p, err := wire.Decode(r.Rest())
	if err != nil {
		return 0, nil, err
	}
	batch, ok := p.(*wire.Batch)
	if !ok {
		return 0, nil, fmt.Errorf("tcpnet: MSGB carries %s, not a batch", p.Kind())
	}
	return qid, batch, nil
}

// PING and PONG bodies (v3+) are a bare u64 sequence number; the daemon
// echoes a PING's seq back in its PONG. Any inbound frame proves
// liveness to the driver's failure detector, so the seq is diagnostic
// rather than load-bearing.
func encodePingPong(seq uint64) []byte { return appendU64(nil, seq) }

func decodePingPong(b []byte) (uint64, error) {
	r := wire.NewByteReader(b)
	seq, err := r.U64()
	if err != nil {
		return 0, err
	}
	return seq, r.Done()
}

// TRACE frame body (v5+): u64 qid, then the internal/obs span codec —
// the per-round spans this daemon's sites recorded for a traced
// session, shipped once when the daemon processes the session's CLOSE.
func encodeTrace(qid uint64, spans []obs.SiteTrace) []byte {
	dst := appendU64(nil, qid)
	return obs.AppendSpans(dst, spans)
}

func decodeTrace(b []byte) (uint64, []obs.SiteTrace, error) {
	r := wire.NewByteReader(b)
	qid, err := r.U64()
	if err != nil {
		return 0, nil, err
	}
	spans, err := obs.DecodeSpans(r.Rest())
	return qid, spans, err
}

// errBody is the ERR frame payload; qid 0 addresses the deployment.
type errBody struct {
	qid uint64
	msg string
}

func encodeErr(e errBody) []byte {
	dst := appendU64(nil, e.qid)
	return appendBlob(dst, []byte(e.msg))
}

func decodeErr(b []byte) (errBody, error) {
	r := wire.NewByteReader(b)
	var e errBody
	var err error
	if e.qid, err = r.U64(); err != nil {
		return e, err
	}
	m, err := readBlob(r)
	if err != nil {
		return e, err
	}
	e.msg = string(m)
	return e, r.Done()
}

// deployBody is the DEPLOY frame payload: the deployment's shape, the
// global owner directory, in protocol v2+ the driver-owned label
// dictionary (names indexed by the dense u16 label ids the fragments
// and payloads carry — only here do label strings ever cross the
// wire), and the wire encodings of exactly the fragments this daemon
// hosts (in hosted-ID order).
type deployBody struct {
	total  int   // sites in the whole deployment
	hosted []int // site IDs this daemon hosts
	assign []int32
	labels []string // dict names by Label id; v2+ only
	frags  []byte   // partition.AppendFragment encodings, concatenated
}

func encodeDeploy(d deployBody, version uint16) []byte {
	dst := make([]byte, 0, 16+4*len(d.hosted)+4*len(d.assign)+len(d.frags))
	dst = appendU32(dst, uint32(d.total))
	dst = appendU32(dst, uint32(len(d.hosted)))
	for _, id := range d.hosted {
		dst = appendU32(dst, uint32(id))
	}
	dst = appendU32(dst, uint32(len(d.assign)))
	for _, a := range d.assign {
		dst = appendU32(dst, uint32(a))
	}
	if version >= 2 {
		dst = appendU32(dst, uint32(len(d.labels)))
		for _, name := range d.labels {
			dst = appendBlob(dst, []byte(name))
		}
	}
	return append(dst, d.frags...)
}

func decodeDeploy(b []byte, version uint16) (deployBody, error) {
	r := wire.NewByteReader(b)
	var d deployBody
	total, err := r.U32()
	if err != nil {
		return d, err
	}
	d.total = int(total)
	nh, err := r.U32()
	if err != nil {
		return d, err
	}
	if uint64(nh)*4 > uint64(r.Remaining()) {
		return d, fmt.Errorf("tcpnet: hosted count %d exceeds frame", nh)
	}
	d.hosted = make([]int, nh)
	for i := range d.hosted {
		x, err := r.U32()
		if err != nil {
			return d, err
		}
		d.hosted[i] = int(x)
	}
	na, err := r.U32()
	if err != nil {
		return d, err
	}
	if uint64(na)*4 > uint64(r.Remaining()) {
		return d, fmt.Errorf("tcpnet: assign length %d exceeds frame", na)
	}
	d.assign = make([]int32, na)
	for i := range d.assign {
		x, err := r.U32()
		if err != nil {
			return d, err
		}
		d.assign[i] = int32(x)
	}
	if version >= 2 {
		nl, err := r.U32()
		if err != nil {
			return d, err
		}
		if uint64(nl) > 1<<16 || uint64(nl)*4 > uint64(r.Remaining()) {
			return d, fmt.Errorf("tcpnet: label table length %d exceeds frame", nl)
		}
		d.labels = make([]string, nl)
		for i := range d.labels {
			// string() copies: the names outlive the frame.
			name, err := readBlob(r)
			if err != nil {
				return d, err
			}
			d.labels[i] = string(name)
		}
	}
	d.frags = r.Rest()
	return d, nil
}

// --- direct writes ---

// writeFrame is the one checked path for synchronous (non-outbox)
// frame writes: handshake traffic and refusals. It arms the write
// deadline, writes the whole frame, and surfaces short writes as
// errors, so callers can meter exactly what reached the socket.
func writeFrame(c net.Conn, timeout time.Duration, typ byte, body []byte) (int, error) {
	frame := wire.AppendFrame(nil, typ, body)
	if timeout > 0 {
		if err := c.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return 0, err
		}
	}
	n, err := c.Write(frame)
	if err == nil && n != len(frame) {
		err = io.ErrShortWrite
	}
	return n, err
}

// --- outbox ---

// Outbox entry kinds. Control traffic is pre-framed; messages and acks
// stay as typed entries so the writer can coalesce consecutive runs at
// flush time.
const (
	entryFrame = iota // pre-encoded frame, written as-is
	entryMsg          // one session message; same-qid runs merge into MSGB
	entryAck          // one processed-message ack; same-(qid,site) runs merge into ACKN
)

type outEntry struct {
	kind byte
	qid  uint64
	// entryFrame:
	frame []byte
	// entryMsg:
	from, to int
	data     []byte
	// entryAck:
	site   int
	busyNs int64
	rounds int64
}

// outbox is an unbounded FIFO of outbound entries with a dedicated
// writer goroutine per connection. Senders never block on the socket,
// which rules out the circular write-deadlock of hub routing under
// all-to-all bursts (driver reader blocked writing to daemon B, daemon
// B blocked writing to the driver, ...). close drains what was queued
// first. The writer takes the whole queue per wakeup (drain), which is
// where coalescing batches form: under load many entries accumulate
// while the previous chunk is on the socket, while an idle connection
// flushes single messages with no added latency.
type outbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []outEntry
	closed bool
}

func newOutbox() *outbox {
	o := &outbox{}
	o.cond = sync.NewCond(&o.mu)
	return o
}

func (o *outbox) put(e outEntry) bool {
	o.mu.Lock()
	ok := !o.closed
	if ok {
		o.queue = append(o.queue, e)
	}
	o.mu.Unlock()
	o.cond.Signal()
	return ok
}

// drain blocks for the next chunk and returns the entire queue;
// ok=false after close and drain.
func (o *outbox) drain() ([]outEntry, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for len(o.queue) == 0 && !o.closed {
		o.cond.Wait()
	}
	q := o.queue
	o.queue = nil
	return q, len(q) > 0
}

func (o *outbox) close() {
	o.mu.Lock()
	o.closed = true
	o.mu.Unlock()
	o.cond.Broadcast()
}

// len reports the entries currently queued (not yet drained by the
// writer) — the backlog the outbox-depth gauge samples.
func (o *outbox) len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.queue)
}

// batchByteCap bounds one MSGB frame's coalesced payload bytes: a run
// larger than this splits into several batches, keeping frames well
// under wire.MaxFrame and bounding the receiver's per-frame work.
const batchByteCap = 1 << 24

// writeChunk encodes one drained outbox chunk onto bw and flushes once,
// so an entire chunk shares syscalls. At version ≥ 2, consecutive
// entryMsg runs with one qid become a single MSGB frame and consecutive
// entryAck runs with one (qid, site) become a single ACKN frame; runs
// never extend across a differing entry, so per-connection FIFO order —
// a daemon's handler-output MSGs stay ahead of the triggering message's
// ACK — is exactly preserved. At version 1 every entry is its own
// frame: the per-message fallback.
//
// meter (nil ok) observes each frame's (qid, length) only after the
// flush succeeds: metered bytes never drift ahead of what actually hit
// the socket.
func writeChunk(bw *bufio.Writer, entries []outEntry, version uint16, meter func(qid uint64, n int)) error {
	type frameMeter struct {
		qid uint64
		n   int
	}
	var pending []frameMeter
	emit := func(qid uint64, frame []byte) error {
		if _, err := bw.Write(frame); err != nil {
			return err
		}
		if meter != nil {
			pending = append(pending, frameMeter{qid, len(frame)})
		}
		return nil
	}
	for i := 0; i < len(entries); {
		e := entries[i]
		j := i + 1
		switch e.kind {
		case entryFrame:
			if err := emit(e.qid, e.frame); err != nil {
				return err
			}
		case entryMsg:
			if version >= 2 {
				sz := 12 + len(e.data)
				for j < len(entries) && entries[j].kind == entryMsg && entries[j].qid == e.qid {
					nsz := sz + 12 + len(entries[j].data)
					if nsz > batchByteCap {
						break
					}
					sz = nsz
					j++
				}
			}
			var frame []byte
			if j == i+1 {
				frame = wire.AppendFrame(nil, frameMsg, encodeMsg(msgBody{qid: e.qid, from: e.from, to: e.to, data: e.data}))
			} else {
				frame = wire.AppendFrame(nil, frameMsgB, appendMsgBatch(nil, e.qid, entries[i:j]))
			}
			if err := emit(e.qid, frame); err != nil {
				return err
			}
		case entryAck:
			if version >= 2 {
				for j < len(entries) && entries[j].kind == entryAck && entries[j].qid == e.qid && entries[j].site == e.site {
					j++
				}
			}
			var frame []byte
			if j == i+1 {
				frame = wire.AppendFrame(nil, frameAck, encodeAck(ackBody{
					qid: e.qid, site: e.site, busyNs: e.busyNs, rounds: e.rounds,
				}))
			} else {
				var busy, rounds int64
				for _, a := range entries[i:j] {
					busy += a.busyNs
					rounds += a.rounds
				}
				frame = wire.AppendFrame(nil, frameAckN, encodeAckN(ackNBody{
					qid: e.qid, site: e.site, count: uint32(j - i), busyNs: busy, rounds: rounds,
				}))
			}
			if err := emit(e.qid, frame); err != nil {
				return err
			}
		}
		i = j
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if meter != nil {
		for _, m := range pending {
			meter(m.qid, m.n)
		}
	}
	return nil
}

// HostedRange computes the contiguous block of site IDs daemon j of k
// hosts in an n-site deployment: sites [j·n/k, (j+1)·n/k). Both Dial and
// the DEPLOY frame use it, so it is the one place the placement policy
// lives.
func HostedRange(n, k, j int) (lo, hi int) {
	return j * n / k, (j + 1) * n / k
}
