// Package tcpnet is the TCP backend of the cluster Transport: the same
// sessions the in-process backend serves, but with the worker sites
// living in dgsd daemon processes and every message crossing a real
// socket as a length-prefixed internal/wire frame. docs/WIRE.md is the
// normative description of the protocol this package implements.
//
// Topology: the driver holds one long-lived connection per daemon and
// routes ALL traffic — even site-to-site messages between two sites of
// the same daemon pass through the driver. This hub routing is what
// preserves the runtime's termination guarantee across process
// boundaries: the driver increments its per-session in-flight counter
// when a message enters the network (a MSG frame arrives or is sent) and
// decrements it when the processing daemon's ACK arrives, and because a
// daemon writes a handler's output frames before the triggering
// message's ACK on the same FIFO connection, the counter can never hit
// zero while work is outstanding. It also makes the driver the natural
// metering point: Stats.WireBytes on this backend is the measured frame
// bytes (headers included) that crossed the driver's sockets for the
// session. The price is a driver hop on site-to-site messages; direct
// daemon-to-daemon links are future work and would need a distributed
// termination protocol.
//
// Connection lifecycle: dial (context-aware) → HELLO/HELLO-OK version
// handshake → DEPLOY fragment shipping → DEPLOYED → any number of
// sessions (OPEN/MSG/ACK/CLOSE) → BYE → TCP close. A daemon serves one
// deployment at a time and resets when the driver disconnects. Errors
// travel as ERR frames: qid-scoped ones kill a session, qid-0 ones kill
// the deployment. Writes never block protocol progress — each
// connection's frames pass through an unbounded outbox drained by a
// writer goroutine, which rules out the distributed write-deadlock of
// mutually full TCP buffers.
package tcpnet

import (
	"fmt"
	"sync"

	"dgs/internal/cluster"
	"dgs/internal/wire"
)

// ProtocolVersion is negotiated in the HELLO handshake. A daemon that
// sees a different major version refuses the deployment with an ERR
// frame instead of guessing at frame semantics.
const ProtocolVersion uint16 = 1

// helloMagic opens every HELLO body so that a stray connection to the
// wrong port fails fast and explicitly.
const helloMagic = "DGSN"

// Frame types (the byte after the length prefix; see docs/WIRE.md).
const (
	frameHello    = 0x01 // driver→daemon: magic, protocol version
	frameHelloOK  = 0x02 // daemon→driver: accepted version
	frameDeploy   = 0x03 // driver→daemon: assign directory + hosted fragments
	frameDeployed = 0x04 // daemon→driver: fragments resident
	frameOpen     = 0x05 // driver→daemon: open session qid from spec
	frameClose    = 0x06 // driver→daemon: discard session qid
	frameMsg      = 0x07 // both ways: one payload for (qid, from→to)
	frameAck      = 0x08 // daemon→driver: one message processed
	frameErr      = 0x09 // daemon→driver: session (qid) or deployment (0) error
	frameBye      = 0x0A // driver→daemon: graceful goodbye
)

func frameName(t byte) string {
	switch t {
	case frameHello:
		return "HELLO"
	case frameHelloOK:
		return "HELLO-OK"
	case frameDeploy:
		return "DEPLOY"
	case frameDeployed:
		return "DEPLOYED"
	case frameOpen:
		return "OPEN"
	case frameClose:
		return "CLOSE"
	case frameMsg:
		return "MSG"
	case frameAck:
		return "ACK"
	case frameErr:
		return "ERR"
	case frameBye:
		return "BYE"
	default:
		return fmt.Sprintf("frame(%#x)", t)
	}
}

// --- frame body codecs ---
//
// All integers little-endian, on wire's shared append/ByteReader
// primitives. Site IDs are int32 on the wire so the coordinator's -1
// survives; strings and blobs are u32-length-prefixed.

func appendU16(dst []byte, x uint16) []byte { return wire.AppendUint16(dst, x) }
func appendU32(dst []byte, x uint32) []byte { return wire.AppendUint32(dst, x) }
func appendU64(dst []byte, x uint64) []byte { return wire.AppendUint64(dst, x) }
func appendI32(dst []byte, x int) []byte    { return wire.AppendUint32(dst, uint32(int32(x))) }
func appendBlob(dst []byte, b []byte) []byte {
	dst = appendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

func readI32(r *wire.ByteReader) (int, error) {
	x, err := r.U32()
	return int(int32(x)), err
}

func readBlob(r *wire.ByteReader) ([]byte, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	return r.Take(int(n))
}

// openBody is the OPEN frame payload.
type openBody struct {
	qid  uint64
	kind cluster.SessionKind
	spec cluster.SessionSpec
}

func encodeOpen(o openBody) []byte {
	dst := appendU64(nil, o.qid)
	dst = append(dst, byte(o.kind))
	dst = appendBlob(dst, []byte(o.spec.Algo))
	dst = appendBlob(dst, o.spec.Query)
	return appendBlob(dst, o.spec.Config)
}

func decodeOpen(b []byte) (openBody, error) {
	r := wire.NewByteReader(b)
	var o openBody
	var err error
	if o.qid, err = r.U64(); err != nil {
		return o, err
	}
	k, err := r.Byte()
	if err != nil {
		return o, err
	}
	o.kind = cluster.SessionKind(k)
	algo, err := readBlob(r)
	if err != nil {
		return o, err
	}
	o.spec.Algo = string(algo)
	if o.spec.Query, err = readBlob(r); err != nil {
		return o, err
	}
	if o.spec.Config, err = readBlob(r); err != nil {
		return o, err
	}
	return o, r.Done()
}

// msgBody is the MSG frame payload. data is the wire-encoded payload
// message, unchanged from what Session accounting sees.
type msgBody struct {
	qid      uint64
	from, to int
	data     []byte
}

func encodeMsg(m msgBody) []byte {
	dst := make([]byte, 0, 16+len(m.data))
	dst = appendU64(dst, m.qid)
	dst = appendI32(dst, m.from)
	dst = appendI32(dst, m.to)
	return append(dst, m.data...)
}

func decodeMsg(b []byte) (msgBody, error) {
	r := wire.NewByteReader(b)
	var m msgBody
	var err error
	if m.qid, err = r.U64(); err != nil {
		return m, err
	}
	if m.from, err = readI32(r); err != nil {
		return m, err
	}
	if m.to, err = readI32(r); err != nil {
		return m, err
	}
	m.data = r.Rest()
	if len(m.data) == 0 {
		return m, fmt.Errorf("tcpnet: MSG with empty payload")
	}
	return m, nil
}

// ackBody is the ACK frame payload: one processed message at `site`,
// with the handler's busy time and recorded rounds piggybacked so the
// driver's Stats stay meaningful across the process boundary.
type ackBody struct {
	qid    uint64
	site   int
	busyNs int64
	rounds int64
}

func encodeAck(a ackBody) []byte {
	dst := make([]byte, 0, 28)
	dst = appendU64(dst, a.qid)
	dst = appendI32(dst, a.site)
	dst = appendU64(dst, uint64(a.busyNs))
	return appendU64(dst, uint64(a.rounds))
}

func decodeAck(b []byte) (ackBody, error) {
	r := wire.NewByteReader(b)
	var a ackBody
	var err error
	if a.qid, err = r.U64(); err != nil {
		return a, err
	}
	if a.site, err = readI32(r); err != nil {
		return a, err
	}
	bn, err := r.U64()
	if err != nil {
		return a, err
	}
	a.busyNs = int64(bn)
	rn, err := r.U64()
	if err != nil {
		return a, err
	}
	a.rounds = int64(rn)
	return a, r.Done()
}

// errBody is the ERR frame payload; qid 0 addresses the deployment.
type errBody struct {
	qid uint64
	msg string
}

func encodeErr(e errBody) []byte {
	dst := appendU64(nil, e.qid)
	return appendBlob(dst, []byte(e.msg))
}

func decodeErr(b []byte) (errBody, error) {
	r := wire.NewByteReader(b)
	var e errBody
	var err error
	if e.qid, err = r.U64(); err != nil {
		return e, err
	}
	m, err := readBlob(r)
	if err != nil {
		return e, err
	}
	e.msg = string(m)
	return e, r.Done()
}

// deployBody is the DEPLOY frame payload: the deployment's shape, the
// global owner directory, and the wire encodings of exactly the
// fragments this daemon hosts (in hosted-ID order).
type deployBody struct {
	total  int   // sites in the whole deployment
	hosted []int // site IDs this daemon hosts
	assign []int32
	frags  []byte // partition.AppendFragment encodings, concatenated
}

func encodeDeploy(d deployBody) []byte {
	dst := make([]byte, 0, 16+4*len(d.hosted)+4*len(d.assign)+len(d.frags))
	dst = appendU32(dst, uint32(d.total))
	dst = appendU32(dst, uint32(len(d.hosted)))
	for _, id := range d.hosted {
		dst = appendU32(dst, uint32(id))
	}
	dst = appendU32(dst, uint32(len(d.assign)))
	for _, a := range d.assign {
		dst = appendU32(dst, uint32(a))
	}
	return append(dst, d.frags...)
}

func decodeDeploy(b []byte) (deployBody, error) {
	r := wire.NewByteReader(b)
	var d deployBody
	total, err := r.U32()
	if err != nil {
		return d, err
	}
	d.total = int(total)
	nh, err := r.U32()
	if err != nil {
		return d, err
	}
	if uint64(nh)*4 > uint64(r.Remaining()) {
		return d, fmt.Errorf("tcpnet: hosted count %d exceeds frame", nh)
	}
	d.hosted = make([]int, nh)
	for i := range d.hosted {
		x, err := r.U32()
		if err != nil {
			return d, err
		}
		d.hosted[i] = int(x)
	}
	na, err := r.U32()
	if err != nil {
		return d, err
	}
	if uint64(na)*4 > uint64(r.Remaining()) {
		return d, fmt.Errorf("tcpnet: assign length %d exceeds frame", na)
	}
	d.assign = make([]int32, na)
	for i := range d.assign {
		x, err := r.U32()
		if err != nil {
			return d, err
		}
		d.assign[i] = int32(x)
	}
	d.frags = r.Rest()
	return d, nil
}

// --- outbox ---

// outbox is an unbounded FIFO of encoded frames with a dedicated writer
// goroutine per connection. Senders never block on the socket, which
// rules out the circular write-deadlock of hub routing under all-to-all
// bursts (driver reader blocked writing to daemon B, daemon B blocked
// writing to the driver, ...). close drains what was queued first.
type outbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	closed bool
}

func newOutbox() *outbox {
	o := &outbox{}
	o.cond = sync.NewCond(&o.mu)
	return o
}

func (o *outbox) put(frame []byte) bool {
	o.mu.Lock()
	ok := !o.closed
	if ok {
		o.queue = append(o.queue, frame)
	}
	o.mu.Unlock()
	o.cond.Signal()
	return ok
}

// get blocks for the next frame; ok=false after close and drain.
func (o *outbox) get() ([]byte, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for len(o.queue) == 0 && !o.closed {
		o.cond.Wait()
	}
	if len(o.queue) == 0 {
		return nil, false
	}
	f := o.queue[0]
	o.queue = o.queue[1:]
	return f, true
}

func (o *outbox) close() {
	o.mu.Lock()
	o.closed = true
	o.mu.Unlock()
	o.cond.Broadcast()
}

// HostedRange computes the contiguous block of site IDs daemon j of k
// hosts in an n-site deployment: sites [j·n/k, (j+1)·n/k). Both Dial and
// the DEPLOY frame use it, so it is the one place the placement policy
// lives.
func HostedRange(n, k, j int) (lo, hi int) {
	return j * n / k, (j + 1) * n / k
}
