package faultnet_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/transport/faultnet"
	"dgs/internal/wire"
)

var bg = context.Background()

// echoSite forwards each falsify message to the next site, decrementing
// a hop budget carried in the first pair's V field — traffic that keeps
// a session busy for as long as the budget lasts.
type echoSite struct{}

func (echoSite) Recv(ctx *cluster.Ctx, from int, p wire.Payload) {
	f, ok := p.(*wire.Falsify)
	if !ok || len(f.Pairs) == 0 || f.Pairs[0].V == 0 {
		return
	}
	next := (ctx.Self() + 1) % ctx.NumSites()
	ctx.Send(next, &wire.Falsify{Pairs: []wire.VarRef{{U: f.Pairs[0].U, V: f.Pairs[0].V - 1}}})
}

type nopHandler struct{}

func (nopHandler) Recv(*cluster.Ctx, int, wire.Payload) {}

func ringSites(n int) []cluster.Handler {
	sites := make([]cluster.Handler, n)
	for i := range sites {
		sites[i] = echoSite{}
	}
	return sites
}

func newChaosCluster(t *testing.T, n int, opts faultnet.Options) (*faultnet.Net, *cluster.Cluster) {
	t.Helper()
	fn := faultnet.Wrap(cluster.NewInProc(n, nil, cluster.Network{}), opts)
	c := cluster.NewWithTransport(fn)
	t.Cleanup(c.Shutdown)
	return fn, c
}

func hops(n int) *wire.Falsify {
	return &wire.Falsify{Pairs: []wire.VarRef{{U: 1, V: uint32(n)}}}
}

// Kill must fail live sessions with an error wrapping
// cluster.ErrSiteLost, report the loss synchronously to the OnSiteLoss
// callback, and leave the cluster suspended rather than dead.
func TestKillFailsSessionWithSiteLost(t *testing.T) {
	fn, c := newChaosCluster(t, 4, faultnet.Options{Seed: 7})
	var loss error
	fn.OnSiteLoss(func(err error) { loss = err })
	s := c.NewSession(ringSites(4), nopHandler{})
	defer s.Close()
	s.Inject(0, hops(1<<30)) // effectively endless
	fn.Kill(2)
	if err := s.WaitQuiesce(bg); !errors.Is(err, cluster.ErrSiteLost) {
		t.Fatalf("WaitQuiesce after kill = %v, want ErrSiteLost", err)
	}
	if !errors.Is(loss, cluster.ErrSiteLost) {
		t.Fatalf("loss callback got %v, want ErrSiteLost", loss)
	}
	if got := fn.Lost(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Lost() = %v, want [2]", got)
	}
	if susp, err := c.Suspended(); !susp || !errors.Is(err, cluster.ErrSiteLost) {
		t.Fatalf("Suspended() = %v, %v — kill must suspend, not poison", susp, err)
	}
}

// A suspended cluster fails new sessions with the loss cause; after the
// site is revived and the cluster resumed, sessions work again.
func TestResumeAfterRevive(t *testing.T) {
	fn, c := newChaosCluster(t, 3, faultnet.Options{Seed: 1})
	fn.Kill(1)
	s := c.NewSession(ringSites(3), nopHandler{})
	if err := s.WaitQuiesce(bg); !errors.Is(err, cluster.ErrSiteLost) {
		t.Fatalf("session on suspended cluster = %v, want ErrSiteLost", err)
	}
	s.Close()
	fn.Revive(1)
	c.Resume()
	if susp, _ := c.Suspended(); susp {
		t.Fatal("cluster still suspended after Resume")
	}
	s2 := c.NewSession(ringSites(3), nopHandler{})
	defer s2.Close()
	s2.Inject(0, hops(10))
	if err := s2.WaitQuiesce(bg); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.DataMsgs != 11 {
		t.Fatalf("DataMsgs = %d, want 11", st.DataMsgs)
	}
}

// A half-open site hangs its sessions silently — exactly the failure a
// heartbeat exists to catch — until DetectSilent plays the timeout.
func TestHalfOpenSilentUntilDetected(t *testing.T) {
	fn, c := newChaosCluster(t, 3, faultnet.Options{Seed: 3})
	fn.HalfOpen(1)
	s := c.NewSession(ringSites(3), nopHandler{})
	defer s.Close()
	s.Inject(0, hops(50)) // the ring stalls at the silent site
	ctx, cancel := context.WithTimeout(bg, 300*time.Millisecond)
	defer cancel()
	if err := s.WaitQuiesce(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("half-open site should hang the session, got %v", err)
	}
	if ids := fn.DetectSilent(); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("DetectSilent = %v, want [1]", ids)
	}
	if err := s.WaitQuiesce(bg); !errors.Is(err, cluster.ErrSiteLost) {
		t.Fatalf("after detection WaitQuiesce = %v, want ErrSiteLost", err)
	}
}

// With every retirement duplicated, the driver's per-site outstanding
// clamp must absorb the echoes: the session terminates exactly when the
// real work drains, having routed every hop.
func TestDuplicateRetirementsClamped(t *testing.T) {
	_, c := newChaosCluster(t, 4, faultnet.Options{Seed: 11, DupRetire: 1})
	s := c.NewSession(ringSites(4), nopHandler{})
	defer s.Close()
	s.Inject(0, hops(100))
	if err := s.WaitQuiesce(bg); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.DataMsgs != 101 {
		t.Fatalf("DataMsgs = %d, want 101 — a duplicate retirement leaked past the clamp", st.DataMsgs)
	}
}

// Recover refuses while a site is still marked dead (the in-process
// model of "no spare site"), wrapping ErrSiteLost so callers can tell a
// retryable condition from a poisoned deployment.
func TestRecoverRefusesWhileSiteDown(t *testing.T) {
	fn, _ := newChaosCluster(t, 2, faultnet.Options{Seed: 5})
	fn.Kill(0)
	if err := fn.Recover(bg, nil, false); !errors.Is(err, cluster.ErrSiteLost) {
		t.Fatalf("Recover with a dead site = %v, want ErrSiteLost", err)
	}
}
