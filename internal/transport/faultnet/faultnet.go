// Package faultnet is a seeded, scriptable fault-injection decorator
// for cluster transports: it wraps any inner Transport (typically the
// in-process backend) and injects site kills, half-open connections,
// delivery delays, message drops and duplicate retirement delivery at
// scripted points — deterministically per seed, so every chaos failure
// is replayable.
//
// Failure model. Kill marks a site dead and reports the loss
// synchronously through Events.Fail with an error wrapping
// cluster.ErrSiteLost — the decorator IS the failure detector for the
// in-process backend, playing the role the TCP heartbeat plays for
// dgsd daemons. HalfOpen marks a site silently dead: its traffic is
// dropped but no loss is reported until DetectSilent runs (the
// in-process analogue of the heartbeat timeout firing). In both states
// every message to or from the site is dropped — the drop injection —
// and its retirements are suppressed. Revive clears the mark, modelling
// replacement capacity coming up; Recover then re-hosts the failed
// sites' fragments from the driver's fragmentation, codec-cloned so the
// replacement state is the driver's committed one, not the stale or
// diverged site object.
//
// The decorator deliberately does not forward the FragmentSharer
// extension: even over an in-process inner transport, a deployment
// behind faultnet behaves like a remote one (the driver replays update
// batches on its own fragmentation), which is exactly the state
// separation recovery needs.
package faultnet

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/partition"
)

// Options configure the injected faults. The zero value injects
// nothing until Kill/HalfOpen are called.
type Options struct {
	// Seed feeds the decorator's private RNG; runs with equal seeds and
	// equal call sequences draw identical jitter and duplication
	// decisions.
	Seed int64
	// MaxDelay, when positive, delays each delivered message by a
	// seeded jitter in [0, MaxDelay), charged synchronously on the
	// sending goroutine so per-sender ordering is preserved.
	MaxDelay time.Duration
	// DupRetire, when positive, is the probability (0..1) that a
	// retirement upcall is delivered twice — the duplicate-ACK
	// injection the driver's per-site outstanding clamp must absorb.
	DupRetire float64
}

type siteMode uint8

const (
	modeLive     siteMode = iota
	modeKilled            // dead and reported lost
	modeHalfOpen          // dead and silent: reported only by DetectSilent
)

// Net is the fault-injecting cluster.Transport decorator.
type Net struct {
	inner cluster.Transport
	opts  Options

	mu         sync.Mutex
	rng        *rand.Rand
	state      []siteMode
	needRehost map[int]bool // sites whose fragments must be re-shipped
	onLoss     func(error)
	ev         cluster.Events
}

var _ cluster.Transport = (*Net)(nil)
var _ cluster.Recoverer = (*Net)(nil)
var _ cluster.LossNotifier = (*Net)(nil)
var _ cluster.HandlerOpener = (*Net)(nil)

// rehoster is what the inner transport must provide for Recover;
// cluster.InProc implements it.
type rehoster interface {
	Rehost(frags map[int]*partition.Fragment)
}

// Wrap decorates inner. The inner transport must be unbound (Wrap
// interposes on Bind).
func Wrap(inner cluster.Transport, opts Options) *Net {
	return &Net{
		inner:      inner,
		opts:       opts,
		rng:        rand.New(rand.NewSource(opts.Seed)),
		state:      make([]siteMode, inner.NumSites()),
		needRehost: make(map[int]bool),
	}
}

// NumSites implements cluster.Transport.
func (t *Net) NumSites() int { return t.inner.NumSites() }

// Bind implements cluster.Transport, interposing the fault-injecting
// event filter between the inner transport and the cluster.
func (t *Net) Bind(ev cluster.Events) {
	t.mu.Lock()
	t.ev = ev
	t.mu.Unlock()
	t.inner.Bind((*filteredEvents)(t))
}

// Open implements cluster.Transport. Sessions open on dead sites too —
// their handlers are simply unreachable, like a daemon that stopped
// reading.
func (t *Net) Open(qid uint64, kind cluster.SessionKind, spec cluster.SessionSpec) error {
	return t.inner.Open(qid, kind, spec)
}

// Close implements cluster.Transport.
func (t *Net) Close(qid uint64) { t.inner.Close(qid) }

// OpenHandlers forwards cluster.HandlerOpener when the inner transport
// supports it, so driver-built handler sessions work under fault
// injection too.
func (t *Net) OpenHandlers(qid uint64, sites []cluster.Handler) error {
	ho, ok := t.inner.(cluster.HandlerOpener)
	if !ok {
		return fmt.Errorf("faultnet: inner transport %T cannot open handler sessions", t.inner)
	}
	return ho.OpenHandlers(qid, sites)
}

// Send implements cluster.Transport: messages to a dead site are
// dropped, others are forwarded after the seeded delay jitter.
func (t *Net) Send(qid uint64, from, to int, data []byte) {
	if t.dead(to) {
		return
	}
	t.jitter()
	t.inner.Send(qid, from, to, data)
}

// Shutdown implements cluster.Transport.
func (t *Net) Shutdown() { t.inner.Shutdown() }

// WireBytes implements cluster.Transport.
func (t *Net) WireBytes(qid uint64) int64 { return t.inner.WireBytes(qid) }

func (t *Net) dead(site int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return site >= 0 && site < len(t.state) && t.state[site] != modeLive
}

// jitter sleeps a seeded duration in [0, MaxDelay) on the calling
// goroutine; no-op when MaxDelay is 0.
func (t *Net) jitter() {
	if t.opts.MaxDelay <= 0 {
		return
	}
	t.mu.Lock()
	d := time.Duration(t.rng.Int63n(int64(t.opts.MaxDelay)))
	t.mu.Unlock()
	time.Sleep(d)
}

// Kill marks a site dead and reports the loss synchronously: by the
// time Kill returns, in-flight sessions have been failed with an error
// wrapping cluster.ErrSiteLost and the loss callback (if any) has run.
// Idempotent per site while it stays dead.
func (t *Net) Kill(site int) {
	t.failSite(site, modeKilled, true)
}

// HalfOpen marks a site silently dead: its traffic is dropped and its
// retirements suppressed, but no loss is reported — the hang a
// heartbeat exists to detect. DetectSilent reports it.
func (t *Net) HalfOpen(site int) {
	t.failSite(site, modeHalfOpen, false)
}

// DetectSilent reports every half-open site as lost — the in-process
// analogue of the heartbeat timeout firing — and returns their IDs.
func (t *Net) DetectSilent() []int {
	t.mu.Lock()
	var ids []int
	for site, m := range t.state {
		if m == modeHalfOpen {
			t.state[site] = modeKilled
			ids = append(ids, site)
		}
	}
	t.mu.Unlock()
	for _, site := range ids {
		t.report(site)
	}
	return ids
}

func (t *Net) failSite(site int, mode siteMode, report bool) {
	t.mu.Lock()
	if site < 0 || site >= len(t.state) || t.state[site] != modeLive {
		t.mu.Unlock()
		return
	}
	t.state[site] = mode
	t.needRehost[site] = true
	t.mu.Unlock()
	if report {
		t.report(site)
	}
}

func (t *Net) report(site int) {
	t.mu.Lock()
	ev, fn := t.ev, t.onLoss
	t.mu.Unlock()
	err := fmt.Errorf("faultnet: site %d lost: %w", site, cluster.ErrSiteLost)
	if ev != nil {
		ev.Fail(0, err)
	}
	if fn != nil {
		fn(err)
	}
}

// Revive clears a site's failure mark — replacement capacity is up —
// without re-hosting its state; Recover does that.
func (t *Net) Revive(site int) {
	t.mu.Lock()
	if site >= 0 && site < len(t.state) {
		t.state[site] = modeLive
	}
	t.mu.Unlock()
}

// OnSiteLoss implements cluster.LossNotifier. The callback runs
// synchronously inside Kill/DetectSilent, which is what keeps scripted
// chaos schedules deterministic; it must not call back into Kill.
func (t *Net) OnSiteLoss(fn func(err error)) {
	t.mu.Lock()
	t.onLoss = fn
	t.mu.Unlock()
}

// Lost implements cluster.Recoverer: the sites currently dead,
// ascending.
func (t *Net) Lost() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var ids []int
	for site, m := range t.state {
		if m != modeLive {
			ids = append(ids, site)
		}
	}
	return ids
}

// Recover implements cluster.Recoverer: re-host the failed sites'
// fragments (every site's, with full set) from the driver's
// fragmentation, codec-cloned so driver and site state stay distinct
// objects. It fails while any site is still marked dead — the
// in-process model of "no spare site available" — so chaos scripts
// Revive first.
func (t *Net) Recover(ctx context.Context, fr *partition.Fragmentation, full bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t.mu.Lock()
	for site, m := range t.state {
		if m != modeLive {
			t.mu.Unlock()
			return fmt.Errorf("faultnet: site %d still down, no spare site: %w", site, cluster.ErrSiteLost)
		}
	}
	need := make([]int, 0, len(t.needRehost))
	for site := range t.needRehost {
		need = append(need, site)
	}
	t.mu.Unlock()
	rh, ok := t.inner.(rehoster)
	if !ok {
		return fmt.Errorf("faultnet: inner transport %T cannot re-host fragments", t.inner)
	}
	frags := make(map[int]*partition.Fragment)
	if full {
		for i, f := range fr.Frags {
			frags[i] = partition.CloneFragment(f)
		}
	} else {
		for _, site := range need {
			frags[site] = partition.CloneFragment(fr.Frags[site])
		}
	}
	rh.Rehost(frags)
	t.mu.Lock()
	t.needRehost = make(map[int]bool)
	t.mu.Unlock()
	return nil
}

// filteredEvents is the Events decorator faultnet interposes: a dead
// site's output and retirements are suppressed (silence), and live
// retirements are duplicated with probability DupRetire to exercise the
// driver's termination-certificate clamp.
type filteredEvents Net

func (f *filteredEvents) net() *Net { return (*Net)(f) }

func (f *filteredEvents) SiteSent(qid uint64, from, to int, data []byte) {
	// Only the sender's death suppresses here: a message TO a dead site
	// must still be routed and counted in flight — it is dropped at
	// Send, after accounting — so the session visibly hangs instead of
	// quiescing with work missing, exactly like a real silent peer.
	t := f.net()
	if t.dead(from) {
		return
	}
	t.mu.Lock()
	ev := t.ev
	t.mu.Unlock()
	ev.SiteSent(qid, from, to, data)
}

func (f *filteredEvents) Deliver(qid uint64, from int, data []byte) {
	t := f.net()
	if t.dead(from) {
		return
	}
	t.mu.Lock()
	ev := t.ev
	t.mu.Unlock()
	ev.Deliver(qid, from, data)
}

func (f *filteredEvents) Retired(qid uint64, site int, busy time.Duration, rounds int64, n int) {
	t := f.net()
	if t.dead(site) {
		return
	}
	dup := false
	t.mu.Lock()
	ev := t.ev
	if t.opts.DupRetire > 0 && t.rng.Float64() < t.opts.DupRetire {
		dup = true
	}
	t.mu.Unlock()
	ev.Retired(qid, site, busy, rounds, n)
	if dup {
		ev.Retired(qid, site, busy, rounds, n)
	}
}

func (f *filteredEvents) Fail(qid uint64, err error) {
	t := f.net()
	t.mu.Lock()
	ev := t.ev
	t.mu.Unlock()
	ev.Fail(qid, err)
}
