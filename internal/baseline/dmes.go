package baseline

// dMes — the message-based vertex-centric algorithm simulating the Pregel
// model [14, 26], as described in §6: upon receiving Q, each site acts as
// a worker and, per superstep, (1) ingests the candidate vectors received
// for its virtual nodes, (2) re-evaluates all its local vertices, and
// (3) ships the candidate vectors of changed boundary vertices to the
// sites that hold them as virtual nodes, then votes. The coordinator runs
// the barrier: a new superstep starts while any site reported a change.
//
// Matching the paper's setup, only cross-site vertex messages are charged
// ("for a fair comparison, we do not assume message passing for local
// evaluation"). Full candidate vectors per boundary vertex per changed
// superstep are what make dMes ship ~2 orders of magnitude more than
// dGPM's one-shot falsifications.

import (
	"context"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/graph"
	"dgs/internal/obs"
	"dgs/internal/partition"
	"dgs/internal/pattern"
	"dgs/internal/simulation"
	"dgs/internal/wire"
)

type bitset []byte

func newBitset(n int) bitset { return make(bitset, (n+7)/8) }

func (b bitset) get(i int) bool { return b[i/8]&(1<<(i%8)) != 0 }
func (b bitset) set(i int)      { b[i/8] |= 1 << (i % 8) }
func (b bitset) clear(i int)    { b[i/8] &^= 1 << (i % 8) }
func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}
func (b bitset) clone() bitset { return append(bitset(nil), b...) }

// dmesSite is one Pregel worker.
type dmesSite struct {
	q    *pattern.Pattern
	frag *partition.Fragment

	nq    int
	state map[graph.NodeID]bitset // local vertices' candidate sets
	known map[graph.NodeID]bitset // last-known vectors of virtual nodes

	inbox []*wire.Vectors // vectors buffered for the next superstep
}

func newDmesSite(q *pattern.Pattern, frag *partition.Fragment) *dmesSite {
	s := &dmesSite{q: q, frag: frag, nq: q.NumNodes()}
	s.state = make(map[graph.NodeID]bitset, len(frag.Local))
	for _, v := range frag.Local {
		bs := newBitset(s.nq)
		for u := 0; u < s.nq; u++ {
			if q.Label(pattern.QNode(u)) == frag.Labels[v] {
				bs.set(u)
			}
		}
		s.state[v] = bs
	}
	s.known = make(map[graph.NodeID]bitset, len(frag.Virtual))
	for _, v := range frag.Virtual {
		bs := newBitset(s.nq)
		for u := 0; u < s.nq; u++ {
			if q.Label(pattern.QNode(u)) == frag.Labels[v] {
				bs.set(u)
			}
		}
		s.known[v] = bs
	}
	return s
}

func (s *dmesSite) Recv(ctx *cluster.Ctx, from int, p wire.Payload) {
	switch m := p.(type) {
	case *wire.Vectors:
		s.inbox = append(s.inbox, m)
	case *wire.Control:
		switch m.Op {
		case opSuper:
			s.superstep(ctx, m.Arg)
		case opReport:
			var pairs []wire.VarRef
			for _, v := range s.frag.Local {
				bs := s.state[v]
				for u := 0; u < s.nq; u++ {
					if bs.get(u) {
						pairs = append(pairs, wire.VarRef{U: uint16(u), V: uint32(v)})
					}
				}
			}
			ctx.Send(cluster.Coordinator, &wire.Matches{Frag: uint16(s.frag.ID), Pairs: pairs})
		}
	}
}

// vecOf reads the current vector of any fragment-visible node.
func (s *dmesSite) vecOf(v graph.NodeID) bitset {
	if bs, ok := s.state[v]; ok {
		return bs
	}
	return s.known[v]
}

func (s *dmesSite) superstep(ctx *cluster.Ctx, step uint32) {
	// (1) ingest buffered vectors for virtual nodes.
	for _, m := range s.inbox {
		for i, nv := range m.Nodes {
			v := graph.NodeID(nv)
			if _, ok := s.known[v]; ok {
				s.known[v] = bitset(m.Bitsets[i]).clone()
			}
		}
	}
	s.inbox = nil

	// (2) vertex-centric recompute of every local vertex — deliberately
	// from scratch, per the unoptimized vertex program of [14].
	changed := make(map[graph.NodeID]bool)
	for _, v := range s.frag.Local {
		bs := s.state[v]
		next := bs.clone()
		for u := 0; u < s.nq; u++ {
			if !bs.get(u) {
				continue
			}
			ok := true
			for _, uc := range s.q.Succ(pattern.QNode(u)) {
				found := false
				for _, w := range s.frag.Succ[v] {
					if s.vecOf(w).get(int(uc)) {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			if !ok {
				next.clear(u)
			}
		}
		if !next.equal(bs) {
			s.state[v] = next
			changed[v] = true
		}
	}

	// (3) ship boundary vectors — one message per boundary vertex per
	// watching site, every superstep. This is the vertex-centric model's
	// redundant message passing the paper calls out (§6: "dMes incurs
	// redundant message passing"): a vertex program pushes its state to
	// cross-site in-neighbors each superstep whether or not it changed
	// (no combiner), which is why dMes ships orders of magnitude more
	// than dGPM's once-per-variable falsifications.
	for _, v := range s.frag.InNodes {
		for _, w := range s.frag.InWatchers[v] {
			ctx.Send(w, &wire.Vectors{
				NumQ:    uint16(s.nq),
				Nodes:   []uint32{uint32(v)},
				Bitsets: [][]byte{s.state[v].clone()},
			})
		}
	}
	// (4) vote.
	ctx.Send(cluster.Coordinator, &wire.Control{Op: opVote, Arg: step, Flag: len(changed) > 0 || step == 0})
}

// dmesCoord runs the superstep barrier and collects final matches.
type dmesCoord struct {
	n       int
	nq      int
	votes   int
	changed bool
	pairs   []wire.VarRef
}

func (c *dmesCoord) Recv(ctx *cluster.Ctx, from int, p wire.Payload) {
	switch m := p.(type) {
	case *wire.Control:
		if m.Op != opVote {
			return
		}
		c.votes++
		c.changed = c.changed || m.Flag
		if c.votes == c.n {
			step := m.Arg
			c.votes = 0
			again := c.changed
			c.changed = false
			if again {
				ctx.AddRounds(1)
				ctx.Broadcast(&wire.Control{Op: opSuper, Arg: step + 1})
			}
		}
	case *wire.Matches:
		c.pairs = append(c.pairs, m.Pairs...)
	}
}

// EvalDMes evaluates Q with the superstep vertex-centric algorithm as
// one session on a live cluster.
func EvalDMes(ctx context.Context, c *cluster.Cluster, q *pattern.Pattern, fr *partition.Fragmentation) (*simulation.Match, cluster.Stats, error) {
	m, st, _, err := EvalDMesTraced(ctx, c, q, fr, 0)
	return m, st, err
}

// EvalDMesTraced is EvalDMes with distributed tracing (traceID 0
// disables it; the trace return is then nil).
func EvalDMesTraced(ctx context.Context, c *cluster.Cluster, q *pattern.Pattern, fr *partition.Fragmentation, traceID uint64) (*simulation.Match, cluster.Stats, *obs.QueryTrace, error) {
	coord := &dmesCoord{n: c.NumSites(), nq: q.NumNodes()}
	spec := cluster.SessionSpec{Algo: AlgoDMes, Query: pattern.EncodeBinary(q), TraceID: traceID}
	sess, err := c.OpenSession(cluster.SessionQuery, spec, coord)
	if err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	defer sess.Close()
	start := time.Now()
	sess.Broadcast(&wire.Control{Op: opSuper, Arg: 0})
	if err := sess.WaitQuiesce(ctx); err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	sess.Broadcast(&wire.Control{Op: opReport})
	if err := sess.WaitQuiesce(ctx); err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	wall := time.Since(start)

	m := simulation.NewMatch(q.NumNodes())
	for _, r := range coord.pairs {
		m.Sets[r.U] = append(m.Sets[r.U], graph.NodeID(r.V))
	}
	m.Sort()
	stats := sess.Stats()
	stats.Wall = wall
	match := m.Canonical()
	sess.Close()
	trace, err := sess.Trace(ctx)
	if err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	return match, stats, trace, nil
}

// RunDMes evaluates one query on a throwaway single-query cluster.
func RunDMes(q *pattern.Pattern, fr *partition.Fragmentation) (*simulation.Match, cluster.Stats) {
	c := cluster.NewLocal(fr, cluster.Network{})
	defer c.Shutdown()
	m, st, err := EvalDMes(context.Background(), c, q, fr)
	if err != nil {
		panic(err) // background context, private cluster: unreachable
	}
	return m, st
}
