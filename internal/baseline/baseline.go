// Package baseline implements the three comparison algorithms of the
// paper's evaluation (§6):
//
//   - Match: the naive algorithm of §3.1 — ship every fragment to a
//     single site and run centralized simulation there. DS ≈ |G|.
//   - disHHK: the algorithm of Ma et al. [25] — each site refines local
//     candidates, ships the candidate-induced subgraph to the
//     coordinator, which assembles a directly query-able graph and runs
//     centralized simulation. DS is a function of |G| in the worst case.
//   - dMes: the vertex-centric Pregel-style algorithm of [14,26] — each
//     vertex keeps its candidate set and, superstep by superstep, sends
//     its candidate vector to cross-site in-neighbors until no vertex
//     changes. Per the paper's setup, message passing is only charged
//     for cross-site traffic ("we do not assume message passing for
//     local evaluation").
package baseline

import (
	"context"
	"fmt"
	"sort"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/graph"
	"dgs/internal/obs"
	"dgs/internal/partition"
	"dgs/internal/pattern"
	"dgs/internal/simulation"
	"dgs/internal/wire"
)

// Control opcodes.
const (
	opShip   = 10 // Match: ship the whole fragment
	opCands  = 11 // disHHK: refine and ship the candidate subgraph
	opSuper  = 12 // dMes: run superstep Arg
	opVote   = 13 // dMes: site -> coordinator, Flag = changed
	opReport = 14 // dMes: ship local matches
)

// merger is the coordinator side of Match and disHHK: it accumulates
// shipped subgraphs keyed by global node ID.
type merger struct {
	labels map[uint32]uint16
	edges  [][2]uint32
}

func newMerger() *merger { return &merger{labels: make(map[uint32]uint16)} }

func (m *merger) Recv(ctx *cluster.Ctx, from int, p wire.Payload) {
	sg, ok := p.(*wire.Subgraph)
	if !ok {
		return
	}
	for i, v := range sg.Nodes {
		m.labels[v] = sg.Labels[i]
	}
	m.edges = append(m.edges, sg.Edges...)
}

// assemble builds the merged graph; merged node i corresponds to the
// i-th smallest global ID in the returned slice.
func (m *merger) assemble(dict *graph.Dict) (*graph.Graph, []uint32, error) {
	ids := make([]uint32, 0, len(m.labels))
	for v := range m.labels {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	remap := make(map[uint32]graph.NodeID, len(ids))
	b := graph.NewBuilderDict(dict)
	for _, v := range ids {
		remap[v] = b.AddNodeLabel(graph.Label(m.labels[v]))
	}
	for _, e := range m.edges {
		s, ok1 := remap[e[0]]
		d, ok2 := remap[e[1]]
		if !ok1 || !ok2 {
			// disHHK: an edge to a pruned candidate — skip (the endpoint
			// matches nothing). Match never produces this.
			continue
		}
		b.AddEdge(s, d)
	}
	g, err := b.Build()
	return g, ids, err
}

// toGlobal maps a merged-graph match relation back to global node IDs.
func toGlobal(m *simulation.Match, ids []uint32) *simulation.Match {
	out := simulation.NewMatch(len(m.Sets))
	for u := range m.Sets {
		for _, v := range m.Sets[u] {
			out.Sets[u] = append(out.Sets[u], graph.NodeID(ids[v]))
		}
	}
	out.Sort()
	return out
}

// fragmentSubgraph serializes an entire fragment: its local nodes with
// labels and all its edges (including crossing edges).
func fragmentSubgraph(f *partition.Fragment) *wire.Subgraph {
	sg := &wire.Subgraph{}
	for _, v := range f.Local {
		sg.Nodes = append(sg.Nodes, uint32(v))
		sg.Labels = append(sg.Labels, uint16(f.Labels[v]))
	}
	for _, v := range f.Local {
		for _, w := range f.Succ[v] {
			sg.Edges = append(sg.Edges, [2]uint32{uint32(v), uint32(w)})
		}
	}
	return sg
}

// shipSite answers opShip with the whole fragment (Match).
type shipSite struct {
	frag *partition.Fragment
}

func (s *shipSite) Recv(ctx *cluster.Ctx, from int, p wire.Payload) {
	if c, ok := p.(*wire.Control); ok && c.Op == opShip {
		ctx.Send(cluster.Coordinator, fragmentSubgraph(s.frag))
	}
}

// Registered algorithm names of the three baseline sites.
const (
	AlgoMatch  = "match"
	AlgoDisHHK = "dishhk"
	AlgoDMes   = "dmes"
)

func init() {
	cluster.RegisterAlgorithm(AlgoMatch, func(spec cluster.SessionSpec, frag *partition.Fragment, assign []int32) (cluster.Handler, error) {
		return &shipSite{frag: frag}, nil
	})
	cluster.RegisterAlgorithm(AlgoDisHHK, func(spec cluster.SessionSpec, frag *partition.Fragment, assign []int32) (cluster.Handler, error) {
		q, err := pattern.DecodeBinary(spec.Query)
		if err != nil {
			return nil, err
		}
		return &candSite{q: q, frag: frag}, nil
	})
	cluster.RegisterAlgorithm(AlgoDMes, func(spec cluster.SessionSpec, frag *partition.Fragment, assign []int32) (cluster.Handler, error) {
		q, err := pattern.DecodeBinary(spec.Query)
		if err != nil {
			return nil, err
		}
		return newDmesSite(q, frag), nil
	})
}

// EvalMatch evaluates Q with the naive ship-everything algorithm (§3.1)
// as one session on a live cluster.
func EvalMatch(ctx context.Context, c *cluster.Cluster, q *pattern.Pattern, fr *partition.Fragmentation) (*simulation.Match, cluster.Stats, error) {
	m, st, _, err := EvalMatchTraced(ctx, c, q, fr, 0)
	return m, st, err
}

// EvalMatchTraced is EvalMatch with distributed tracing (traceID 0
// disables it; the trace return is then nil).
func EvalMatchTraced(ctx context.Context, c *cluster.Cluster, q *pattern.Pattern, fr *partition.Fragmentation, traceID uint64) (*simulation.Match, cluster.Stats, *obs.QueryTrace, error) {
	coord := newMerger()
	sess, err := c.OpenSession(cluster.SessionQuery, cluster.SessionSpec{Algo: AlgoMatch, TraceID: traceID}, coord)
	if err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	defer sess.Close()
	start := time.Now()
	sess.Broadcast(&wire.Control{Op: opShip})
	if err := sess.WaitQuiesce(ctx); err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	// Centralized evaluation at the coordinator site.
	g, ids, err := coord.assemble(q.Dict())
	if err != nil {
		panic(fmt.Sprintf("baseline: Match assembly: %v", err))
	}
	m := simulation.HHK(q, g)
	res := toGlobal(m, ids)
	stats := sess.Stats()
	stats.Wall = time.Since(start)
	stats.Rounds = 1
	sess.Close()
	trace, err := sess.Trace(ctx)
	if err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	return res.Canonical(), stats, trace, nil
}

// RunMatch evaluates one query on a throwaway single-query cluster.
func RunMatch(q *pattern.Pattern, fr *partition.Fragmentation) (*simulation.Match, cluster.Stats) {
	c := cluster.NewLocal(fr, cluster.Network{})
	defer c.Shutdown()
	m, st, err := EvalMatch(context.Background(), c, q, fr)
	if err != nil {
		panic(err) // background context, private cluster: unreachable
	}
	return m, st
}
