package baseline

// disHHK — the distributed simulation algorithm of Ma et al., "Distributed
// graph pattern matching", WWW 2012 [25], as characterized by the paper:
// each site's partial answer is "the subgraph of Fi induced from all the
// candidate nodes, assuming that they are all matches" (§4.1), and those
// subgraphs "are collected to a single site to form a directly query-able
// graph, where matches can be determined". Candidates are the
// label-consistent nodes — no cross-site refinement happens before the
// shipment, which is why disHHK's data shipment is a function of |G|
// (Table 1: DS = O(|G| + 4|Vf| + |F||Q|)) and why dGPM ships 3 orders of
// magnitude less in Exp-1.

import (
	"context"
	"fmt"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/graph"
	"dgs/internal/obs"
	"dgs/internal/partition"
	"dgs/internal/pattern"
	"dgs/internal/simulation"
	"dgs/internal/wire"
)

// candSite ships the candidate-induced subgraph of its fragment.
type candSite struct {
	q    *pattern.Pattern
	frag *partition.Fragment
}

// isCandidate reports whether v's label matches any query node.
func isCandidate(q *pattern.Pattern, l graph.Label) bool {
	for u := 0; u < q.NumNodes(); u++ {
		if q.Label(pattern.QNode(u)) == l {
			return true
		}
	}
	return false
}

func (s *candSite) Recv(ctx *cluster.Ctx, from int, p wire.Payload) {
	c, ok := p.(*wire.Control)
	if !ok || c.Op != opCands {
		return
	}
	sg := &wire.Subgraph{}
	cand := make(map[uint32]bool, len(s.frag.Local))
	for _, v := range s.frag.Local {
		if isCandidate(s.q, s.frag.Labels[v]) {
			cand[uint32(v)] = true
			sg.Nodes = append(sg.Nodes, uint32(v))
			sg.Labels = append(sg.Labels, uint16(s.frag.Labels[v]))
		}
	}
	// Keep every edge between candidates; edges to candidate virtual
	// nodes ride along (their owner ships the node entry).
	for _, v := range s.frag.Local {
		if !cand[uint32(v)] {
			continue
		}
		for _, w := range s.frag.Succ[v] {
			if cand[uint32(w)] || (s.frag.IsVirtual(w) && isCandidate(s.q, s.frag.Labels[w])) {
				sg.Edges = append(sg.Edges, [2]uint32{uint32(v), uint32(w)})
			}
		}
	}
	ctx.Send(cluster.Coordinator, sg)
}

// EvalDisHHK evaluates Q with the candidate-shipping algorithm of [25]
// as one session on a live cluster.
func EvalDisHHK(ctx context.Context, c *cluster.Cluster, q *pattern.Pattern, fr *partition.Fragmentation) (*simulation.Match, cluster.Stats, error) {
	m, st, _, err := EvalDisHHKTraced(ctx, c, q, fr, 0)
	return m, st, err
}

// EvalDisHHKTraced is EvalDisHHK with distributed tracing (traceID 0
// disables it; the trace return is then nil).
func EvalDisHHKTraced(ctx context.Context, c *cluster.Cluster, q *pattern.Pattern, fr *partition.Fragmentation, traceID uint64) (*simulation.Match, cluster.Stats, *obs.QueryTrace, error) {
	coord := newMerger()
	spec := cluster.SessionSpec{Algo: AlgoDisHHK, Query: pattern.EncodeBinary(q), TraceID: traceID}
	sess, err := c.OpenSession(cluster.SessionQuery, spec, coord)
	if err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	defer sess.Close()
	start := time.Now()
	sess.Broadcast(&wire.Control{Op: opCands})
	if err := sess.WaitQuiesce(ctx); err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	g, ids, err := coord.assemble(q.Dict())
	if err != nil {
		panic(fmt.Sprintf("baseline: disHHK assembly: %v", err))
	}
	m := simulation.HHK(q, g)
	res := toGlobal(m, ids)
	stats := sess.Stats()
	stats.Wall = time.Since(start)
	stats.Rounds = 1
	sess.Close()
	trace, err := sess.Trace(ctx)
	if err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	return res.Canonical(), stats, trace, nil
}

// RunDisHHK evaluates one query on a throwaway single-query cluster.
func RunDisHHK(q *pattern.Pattern, fr *partition.Fragmentation) (*simulation.Match, cluster.Stats) {
	c := cluster.NewLocal(fr, cluster.Network{})
	defer c.Shutdown()
	m, st, err := EvalDisHHK(context.Background(), c, q, fr)
	if err != nil {
		panic(err) // background context, private cluster: unreachable
	}
	return m, st
}
