package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dgs/internal/dgpm"
	"dgs/internal/graph"
	"dgs/internal/partition"
	"dgs/internal/pattern"
	"dgs/internal/simulation"
)

func randomCase(r *rand.Rand) (*pattern.Pattern, *graph.Graph, *partition.Fragmentation) {
	d := graph.NewDict()
	labels := []string{"A", "B", "C"}
	nq := 1 + r.Intn(5)
	q := pattern.New(d)
	for i := 0; i < nq; i++ {
		q.AddNode(labels[r.Intn(len(labels))], "")
	}
	for i := 0; i < nq*2; i++ {
		q.MustAddEdge(pattern.QNode(r.Intn(nq)), pattern.QNode(r.Intn(nq)))
	}
	b := graph.NewBuilderDict(d)
	nv := 2 + r.Intn(40)
	for i := 0; i < nv; i++ {
		b.AddNode(labels[r.Intn(len(labels))])
	}
	for i := r.Intn(4 * nv); i > 0; i-- {
		b.AddEdge(graph.NodeID(r.Intn(nv)), graph.NodeID(r.Intn(nv)))
	}
	g := b.MustBuild()
	nf := 1 + r.Intn(5)
	assign := make([]int32, nv)
	for i := range assign {
		assign[i] = int32(r.Intn(nf))
	}
	fr, err := partition.Build(g, assign, nf)
	if err != nil {
		panic(err)
	}
	return q, g, fr
}

// All three baselines must agree with centralized simulation.
func TestQuickBaselinesEqualCentralized(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, g, fr := randomCase(r)
		want := simulation.HHK(q, g)
		for name, run := range map[string]func(*pattern.Pattern, *partition.Fragmentation) (*simulation.Match, interface{ TotalMsgs() int64 }){} {
			_ = name
			_ = run
		}
		if got, _ := RunMatch(q, fr); !want.Equal(got) {
			t.Logf("seed %d: Match got %v want %v", seed, got, want)
			return false
		}
		if got, _ := RunDisHHK(q, fr); !want.Equal(got) {
			t.Logf("seed %d: disHHK got %v want %v", seed, got, want)
			return false
		}
		if got, _ := RunDMes(q, fr); !want.Equal(got) {
			t.Logf("seed %d: dMes got %v want %v", seed, got, want)
			return false
		}
		return true
	}
	n := 50
	if testing.Short() {
		n = 12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

// The headline data-shipment ordering of Exp-1: dGPM ships (far) less
// than dMes, which ships less than the subgraph shippers, on a graph
// where falsifications exist but most candidates survive.
func TestShipmentOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	d := graph.NewDict()
	q := pattern.MustParse(d, `
node a A
node b B
node c C
edge a b
edge b c
edge c a
`)
	b := graph.NewBuilderDict(d)
	labels := []string{"A", "B", "C"}
	nv := 600
	for i := 0; i < nv; i++ {
		b.AddNode(labels[r.Intn(3)])
	}
	for i := 0; i < 3*nv; i++ {
		b.AddEdge(graph.NodeID(r.Intn(nv)), graph.NodeID(r.Intn(nv)))
	}
	g := b.MustBuild()
	assign := make([]int32, nv)
	for i := range assign {
		assign[i] = int32(r.Intn(6))
	}
	fr, err := partition.Build(g, assign, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := simulation.HHK(q, g)

	gotG, stG := dgpm.Run(q, fr, dgpm.Config{Incremental: true})
	gotM, stM := RunMatch(q, fr)
	gotH, stH := RunDisHHK(q, fr)
	gotV, stV := RunDMes(q, fr)
	for name, got := range map[string]*simulation.Match{"dGPM": gotG, "Match": gotM, "disHHK": gotH, "dMes": gotV} {
		if !want.Equal(got) {
			t.Fatalf("%s: wrong result", name)
		}
	}
	// Universally valid orderings: dGPM ships (far) less than either
	// baseline, and disHHK never ships more than Match. (dMes vs disHHK
	// depends on candidate density and superstep count; the benchmark
	// workloads reproduce the paper's ordering, see internal/bench.)
	if stG.DataBytes >= stV.DataBytes || stG.DataBytes >= stH.DataBytes || stH.DataBytes > stM.DataBytes {
		t.Fatalf("shipment ordering violated: dGPM=%d dMes=%d disHHK=%d Match=%d",
			stG.DataBytes, stV.DataBytes, stH.DataBytes, stM.DataBytes)
	}
	// Match ships essentially the whole graph: every node entry is 6B and
	// every edge 8B.
	if stM.DataBytes < int64(6*nv) {
		t.Fatalf("Match shipped suspiciously little: %d", stM.DataBytes)
	}
}

func TestDisHHKPrunesNonCandidates(t *testing.T) {
	// Labels absent from the query must not be shipped by disHHK.
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A\nnode b B\nedge a b")
	b := graph.NewBuilderDict(d)
	va := b.AddNode("A")
	vb := b.AddNode("B")
	b.AddEdge(va, vb)
	for i := 0; i < 50; i++ {
		z := b.AddNode("Z") // irrelevant
		b.AddEdge(z, va)
	}
	g := b.MustBuild()
	assign := make([]int32, g.NumNodes())
	for i := range assign {
		assign[i] = int32(i % 2)
	}
	fr, err := partition.Build(g, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, stH := RunDisHHK(q, fr)
	_, stM := RunMatch(q, fr)
	if stH.DataBytes >= stM.DataBytes {
		t.Fatalf("disHHK (%dB) should ship less than Match (%dB) when most nodes are non-candidates",
			stH.DataBytes, stM.DataBytes)
	}
}

func TestDMesSuperstepsBounded(t *testing.T) {
	// A falsification chain of length k needs ~k supersteps — rounds grow
	// with the chain, which is the empirical face of the impossibility
	// theorem for vertex-centric systems (§3.1 Remarks).
	d := graph.NewDict()
	q := pattern.MustParse(d, "node A A\nnode B B\nedge A B\nedge B A")
	prevRounds := int64(0)
	for _, n := range []int{4, 8, 16} {
		b := graph.NewBuilderDict(d)
		assign := make([]int32, 0, 2*n)
		for i := 0; i < n; i++ {
			b.AddNode("A")
			b.AddNode("B")
			assign = append(assign, int32(i), int32(i))
		}
		for i := 0; i < n; i++ {
			b.AddEdge(graph.NodeID(2*i), graph.NodeID(2*i+1))
			if i < n-1 {
				b.AddEdge(graph.NodeID(2*i+1), graph.NodeID(2*i+2))
			}
		}
		g := b.MustBuild()
		fr, err := partition.Build(g, assign, n)
		if err != nil {
			t.Fatal(err)
		}
		got, st := RunDMes(q, fr)
		if got.NumPairs() != 0 {
			t.Fatalf("n=%d: broken chain must not match", n)
		}
		if st.Rounds <= prevRounds {
			t.Fatalf("n=%d: rounds %d did not grow (prev %d)", n, st.Rounds, prevRounds)
		}
		prevRounds = st.Rounds
	}
}

func TestMatchSingleFragment(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	q, g, _ := randomCase(r)
	assign := make([]int32, g.NumNodes())
	fr, err := partition.Build(g, assign, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := simulation.HHK(q, g)
	got, _ := RunMatch(q, fr)
	if !want.Equal(got) {
		t.Fatal("single-fragment Match wrong")
	}
}
