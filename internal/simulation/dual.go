package simulation

// Dual simulation — the symmetric refinement of graph simulation used by
// strong simulation [24] (Ma et al., PVLDB 2011), which the paper's
// conclusion names as the next target for parallel-scalability analysis.
// A dual simulation additionally requires parent witnesses: for every
// (u,v) in R and every query edge (u',u), some edge (v',v) of G has
// (u',v') in R. Dual simulation tightens plain simulation (R_dual ⊆
// R_sim) and still admits a unique maximum relation computable by
// counter refinement in O((|Vq|+|V|)(|Eq|+|E|)).

import (
	"dgs/internal/graph"
	"dgs/internal/pattern"
)

// DualNaive computes the maximum dual simulation by repeated full scans —
// the oracle for DualHHK.
func DualNaive(q *pattern.Pattern, g *graph.Graph) *Match {
	g.EnsureReverse()
	nq := q.NumNodes()
	nv := g.NumNodes()
	sim := make([][]bool, nq)
	for u := 0; u < nq; u++ {
		sim[u] = make([]bool, nv)
		for v := 0; v < nv; v++ {
			sim[u][v] = q.Label(pattern.QNode(u)) == g.Label(graph.NodeID(v))
		}
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < nq; u++ {
			for v := 0; v < nv; v++ {
				if !sim[u][v] {
					continue
				}
				ok := true
				for _, uc := range q.Succ(pattern.QNode(u)) {
					found := false
					for _, vc := range g.Succ(graph.NodeID(v)) {
						if sim[uc][vc] {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if ok {
					for _, up := range q.Pred(pattern.QNode(u)) {
						found := false
						for _, vp := range g.Pred(graph.NodeID(v)) {
							if sim[up][vp] {
								found = true
								break
							}
						}
						if !found {
							ok = false
							break
						}
					}
				}
				if !ok {
					sim[u][v] = false
					changed = true
				}
			}
		}
	}
	m := NewMatch(nq)
	for u := 0; u < nq; u++ {
		for v := 0; v < nv; v++ {
			if sim[u][v] {
				m.Sets[u] = append(m.Sets[u], graph.NodeID(v))
			}
		}
	}
	return m.Canonical()
}

// DualHHK computes the maximum dual simulation with counter refinement:
// the forward counters of HHK plus symmetric backward counters over
// reverse adjacency.
func DualHHK(q *pattern.Pattern, g *graph.Graph) *Match {
	g.EnsureReverse()
	nq := q.NumNodes()
	nv := g.NumNodes()

	type dEdge struct{ parent, child pattern.QNode }
	var qedges []dEdge
	eOut := make([][]int, nq) // edges where u is parent (forward condition)
	eIn := make([][]int, nq)  // edges where u is child (backward condition)
	for u := 0; u < nq; u++ {
		for _, uc := range q.Succ(pattern.QNode(u)) {
			idx := len(qedges)
			qedges = append(qedges, dEdge{pattern.QNode(u), uc})
			eOut[u] = append(eOut[u], idx)
			eIn[uc] = append(eIn[uc], idx)
		}
	}

	alive := make([][]bool, nq)
	for u := 0; u < nq; u++ {
		alive[u] = make([]bool, nv)
		for v := 0; v < nv; v++ {
			alive[u][v] = q.Label(pattern.QNode(u)) == g.Label(graph.NodeID(v))
		}
	}
	// fwd[e][v] = #alive successors of v matching e.child.
	// bwd[e][v] = #alive predecessors of v matching e.parent.
	fwd := make([][]int32, len(qedges))
	bwd := make([][]int32, len(qedges))
	for e := range qedges {
		fwd[e] = make([]int32, nv)
		bwd[e] = make([]int32, nv)
	}
	for v := 0; v < nv; v++ {
		for _, vc := range g.Succ(graph.NodeID(v)) {
			for e, qe := range qedges {
				if alive[qe.child][vc] {
					fwd[e][v]++
				}
			}
		}
		for _, vp := range g.Pred(graph.NodeID(v)) {
			for e, qe := range qedges {
				if alive[qe.parent][vp] {
					bwd[e][v]++
				}
			}
		}
	}

	var queue []pair
	kill := func(u pattern.QNode, v graph.NodeID) {
		if alive[u][v] {
			alive[u][v] = false
			queue = append(queue, pair{u, v})
		}
	}
	for u := 0; u < nq; u++ {
		for v := 0; v < nv; v++ {
			if !alive[u][v] {
				continue
			}
			dead := false
			for _, e := range eOut[u] {
				if fwd[e][v] == 0 {
					dead = true
					break
				}
			}
			if !dead {
				for _, e := range eIn[u] {
					if bwd[e][v] == 0 {
						dead = true
						break
					}
				}
			}
			if dead {
				kill(pattern.QNode(u), graph.NodeID(v))
			}
		}
	}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		// Forward condition of predecessors: (up, vp) loses a child
		// witness for each query edge (up, p.u).
		for _, e := range eIn[p.u] {
			up := qedges[e].parent
			for _, vp := range g.Pred(p.v) {
				fwd[e][vp]--
				if fwd[e][vp] == 0 && alive[up][vp] {
					kill(up, vp)
				}
			}
		}
		// Backward condition of successors: (uc, vc) loses a parent
		// witness for each query edge (p.u, uc).
		for _, e := range eOut[p.u] {
			uc := qedges[e].child
			for _, vc := range g.Succ(p.v) {
				bwd[e][vc]--
				if bwd[e][vc] == 0 && alive[uc][vc] {
					kill(uc, vc)
				}
			}
		}
	}

	m := NewMatch(nq)
	for u := 0; u < nq; u++ {
		for v := 0; v < nv; v++ {
			if alive[u][v] {
				m.Sets[u] = append(m.Sets[u], graph.NodeID(v))
			}
		}
	}
	return m.Canonical()
}

// VerifyDual checks that m is a dual simulation (soundness witness).
func VerifyDual(q *pattern.Pattern, g *graph.Graph, m *Match) error {
	if err := Verify(q, g, m); err != nil {
		return err
	}
	g.EnsureReverse()
	for u := range m.Sets {
		for _, v := range m.Sets[u] {
			for _, up := range q.Pred(pattern.QNode(u)) {
				ok := false
				for _, vp := range g.Pred(v) {
					if m.Contains(up, vp) {
						ok = true
						break
					}
				}
				if !ok {
					return errParent(u, v, int(up))
				}
			}
		}
	}
	return nil
}

type dualErr struct{ u, v, up int }

func errParent(u int, v graph.NodeID, up int) error {
	return &dualErr{u, int(v), up}
}

func (e *dualErr) Error() string {
	return "pair (u" + itoa(e.u) + "," + itoa(e.v) + ") lacks parent witness for query edge from u" + itoa(e.up)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
