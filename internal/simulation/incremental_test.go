package simulation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dgs/internal/graph"
	"dgs/internal/pattern"
)

func TestIncrementalSingleDeletion(t *testing.T) {
	// A -> B; deleting the edge kills the match of a.
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A\nnode b B\nedge a b")
	b := graph.NewBuilderDict(d)
	va := b.AddNode("A")
	vb := b.AddNode("B")
	b.AddEdge(va, vb)
	g := b.MustBuild()
	inc := NewIncremental(q, g)
	if !inc.Current().Ok() {
		t.Fatal("initial state must match")
	}
	if err := inc.DeleteEdge(va, vb); err != nil {
		t.Fatal(err)
	}
	if inc.Current().Ok() {
		t.Fatal("deleting the only witness must empty the relation")
	}
	if inc.Affected() == 0 {
		t.Fatal("AFF must be positive")
	}
}

func TestIncrementalErrors(t *testing.T) {
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A")
	b := graph.NewBuilderDict(d)
	v0 := b.AddNode("A")
	v1 := b.AddNode("A")
	b.AddEdge(v0, v1)
	g := b.MustBuild()
	inc := NewIncremental(q, g)
	if err := inc.DeleteEdge(v1, v0); err == nil {
		t.Fatal("deleting a non-edge must error")
	}
	if err := inc.DeleteEdge(v0, v1); err != nil {
		t.Fatal(err)
	}
	if err := inc.DeleteEdge(v0, v1); err == nil {
		t.Fatal("double deletion must error")
	}
}

// The central property: after any random deletion sequence, the
// incrementally maintained relation equals a from-scratch recomputation.
func TestQuickIncrementalEqualsRecompute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, g := randomCase(r)
		if g.NumEdges() == 0 {
			return true
		}
		inc := NewIncremental(q, g)
		// Collect the edge list and delete a random subset one by one.
		var edges [][2]graph.NodeID
		g.Edges(func(v, w graph.NodeID) bool {
			edges = append(edges, [2]graph.NodeID{v, w})
			return true
		})
		r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		for _, e := range edges[:r.Intn(len(edges)+1)] {
			if err := inc.DeleteEdge(e[0], e[1]); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if !inc.Current().Equal(inc.Resimulate()) {
				t.Logf("seed %d: incremental diverged after deleting (%d,%d)", seed, e[0], e[1])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Regression for the incrementally maintained dead counter: Affected()
// must equal the full-scan count of falsified variables beyond the
// initial refinement, after every deletion of a random sequence. (The
// old countDead rescanned the whole relation per deletion — O(|V|·|Vq|)
// despite its "O(1) bookkeeping" comment; the count now lives in
// state.kill and this test pins it to the scan.)
func TestAffectedMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, g := randomCase(r)
		if g.NumEdges() == 0 {
			return true
		}
		inc := NewIncremental(q, g)
		initialDead := inc.scanDead()
		if inc.Affected() != 0 {
			t.Logf("seed %d: AFF nonzero before any deletion", seed)
			return false
		}
		var edges [][2]graph.NodeID
		g.Edges(func(v, w graph.NodeID) bool {
			edges = append(edges, [2]graph.NodeID{v, w})
			return true
		})
		r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		for _, e := range edges[:r.Intn(len(edges)+1)] {
			if err := inc.DeleteEdge(e[0], e[1]); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if want := inc.scanDead() - initialDead; inc.Affected() != want {
				t.Logf("seed %d: Affected()=%d, scan says %d", seed, inc.Affected(), want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalMonotone(t *testing.T) {
	// The relation only ever shrinks under deletions.
	r := rand.New(rand.NewSource(31))
	q, g := randomCase(r)
	inc := NewIncremental(q, g)
	prev := inc.Current().NumPairs()
	var edges [][2]graph.NodeID
	g.Edges(func(v, w graph.NodeID) bool {
		edges = append(edges, [2]graph.NodeID{v, w})
		return true
	})
	for _, e := range edges {
		if err := inc.DeleteEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
		cur := inc.Current().NumPairs()
		if cur > prev {
			t.Fatalf("relation grew after a deletion: %d -> %d", prev, cur)
		}
		prev = cur
	}
	// All edges gone: only constant (leaf-query-node) matches survive.
	final := inc.Current()
	for u := 0; u < q.NumNodes(); u++ {
		if len(q.Succ(pattern.QNode(u))) > 0 && len(final.Sets[u]) > 0 && final.Ok() {
			t.Fatalf("non-leaf query node u%d still matched in an edgeless graph: %v", u, final)
		}
	}
}
