//dgsvet:deterministic

// Package simulation implements centralized graph simulation [18]
// (Henzinger, Henzinger, Kopke, FOCS'95) as used by the paper:
// given pattern Q and data graph G, compute the unique maximum relation
// R ⊆ Vq×V such that for every (u,v) ∈ R, fv(u) = L(v) and for every query
// edge (u,u') some edge (v,v') of G has (u',v') ∈ R (§2.1).
//
// Two algorithms are provided: an obviously-correct naive fixpoint used as
// the test oracle, and the counter-based refinement with the
// O((|Vq|+|V|)(|Eq|+|E|)) bound cited by the paper [11,18]. The counting
// engine is also the kernel that internal/dgpm reuses per fragment.
package simulation

import (
	"fmt"
	"sort"
	"strings"

	"dgs/internal/graph"
	"dgs/internal/pattern"
)

// Match is the result of a simulation query: for each query node u, the
// sorted list of data nodes that match u. If any query node has an empty
// list, the graph does not match and the relation is empty by definition
// (§2.1: every query node must have a match).
type Match struct {
	Sets [][]graph.NodeID // indexed by query node
}

// NewMatch allocates an empty match for nq query nodes.
func NewMatch(nq int) *Match { return &Match{Sets: make([][]graph.NodeID, nq)} }

// Ok reports whether G matches Q, i.e. every query node has ≥1 match.
func (m *Match) Ok() bool {
	for _, s := range m.Sets {
		if len(s) == 0 {
			return false
		}
	}
	return len(m.Sets) > 0
}

// Canonical returns m if Ok, else the empty relation with the same arity —
// the paper's convention that Q(G)=∅ when G does not match Q.
func (m *Match) Canonical() *Match {
	if m.Ok() {
		return m
	}
	return NewMatch(len(m.Sets))
}

// NumPairs counts the total number of (u,v) pairs in the relation.
func (m *Match) NumPairs() int {
	n := 0
	for _, s := range m.Sets {
		n += len(s)
	}
	return n
}

// Contains reports whether (u,v) is in the relation.
func (m *Match) Contains(u pattern.QNode, v graph.NodeID) bool {
	s := m.Sets[u]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// Sort puts every per-node list in ascending order (idempotent).
func (m *Match) Sort() {
	for _, s := range m.Sets {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
}

// Equal reports whether two relations are identical (after Sort).
func (m *Match) Equal(o *Match) bool {
	if len(m.Sets) != len(o.Sets) {
		return false
	}
	for u := range m.Sets {
		if len(m.Sets[u]) != len(o.Sets[u]) {
			return false
		}
		for i := range m.Sets[u] {
			if m.Sets[u][i] != o.Sets[u][i] {
				return false
			}
		}
	}
	return true
}

// String renders the relation compactly for debugging.
func (m *Match) String() string {
	var sb strings.Builder
	for u, s := range m.Sets {
		fmt.Fprintf(&sb, "u%d:%v ", u, s)
	}
	return strings.TrimSpace(sb.String())
}

// NaiveFixpoint computes the maximum simulation by repeated full scans:
// start from label-consistent candidates and delete any pair violating the
// child condition until stable. O(|Vq||V| · (|Eq||E|)) worst case but
// transparently correct — this is the oracle all other engines are tested
// against.
func NaiveFixpoint(q *pattern.Pattern, g *graph.Graph) *Match {
	nq := q.NumNodes()
	nv := g.NumNodes()
	sim := make([][]bool, nq)
	for u := 0; u < nq; u++ {
		sim[u] = make([]bool, nv)
		for v := 0; v < nv; v++ {
			sim[u][v] = q.Label(pattern.QNode(u)) == g.Label(graph.NodeID(v))
		}
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < nq; u++ {
			for v := 0; v < nv; v++ {
				if !sim[u][v] {
					continue
				}
				ok := true
				for _, uc := range q.Succ(pattern.QNode(u)) {
					found := false
					for _, vc := range g.Succ(graph.NodeID(v)) {
						if sim[uc][vc] {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if !ok {
					sim[u][v] = false
					changed = true
				}
			}
		}
	}
	m := NewMatch(nq)
	for u := 0; u < nq; u++ {
		for v := 0; v < nv; v++ {
			if sim[u][v] {
				m.Sets[u] = append(m.Sets[u], graph.NodeID(v))
			}
		}
	}
	return m.Canonical()
}

// HHK computes the maximum simulation with the standard counter-based
// refinement in O((|Vq|+|V|)(|Eq|+|E|)) time: for every candidate pair
// (u,v) and query edge e=(u,u'), maintain cnt[e][v] = |{v' ∈ succ(v) :
// (u',v') alive}|; when a count reaches zero, (u,v) dies and the removal
// propagates to predecessors. Requires g's reverse adjacency.
func HHK(q *pattern.Pattern, g *graph.Graph) *Match {
	g.EnsureReverse()
	st := newState(q, g)
	st.refineAll()
	return st.result().Canonical()
}

// qEdge enumerates query edges with dense indices.
type qEdge struct {
	parent, child pattern.QNode
}

type state struct {
	q *pattern.Pattern
	g *graph.Graph

	qedges []qEdge
	eOut   [][]int // query node -> indices of edges it is parent of
	eIn    [][]int // query node -> indices of edges it is child of
	alive  [][]bool
	cnt    [][]int32 // [edgeIdx][v]
	queue  []pair
	// dead counts falsified variables, maintained by kill — O(1)
	// bookkeeping so |AFF| reporting never rescans the relation.
	dead int

	// deleted marks graph edges removed by incremental maintenance
	// (packed v<<32|w); nil for plain one-shot evaluation. Propagation
	// must not walk deleted edges, or counters would be decremented for
	// witnesses that were already discounted at deletion time.
	deleted map[uint64]bool
}

type pair struct {
	u pattern.QNode
	v graph.NodeID
}

func newState(q *pattern.Pattern, g *graph.Graph) *state {
	st := &state{q: q, g: g}
	nq := q.NumNodes()
	st.eOut = make([][]int, nq)
	st.eIn = make([][]int, nq)
	for u := 0; u < nq; u++ {
		for _, uc := range q.Succ(pattern.QNode(u)) {
			idx := len(st.qedges)
			st.qedges = append(st.qedges, qEdge{pattern.QNode(u), uc})
			st.eOut[u] = append(st.eOut[u], idx)
			st.eIn[uc] = append(st.eIn[uc], idx)
		}
	}
	nv := g.NumNodes()
	st.alive = make([][]bool, nq)
	for u := 0; u < nq; u++ {
		st.alive[u] = make([]bool, nv)
		for v := 0; v < nv; v++ {
			st.alive[u][v] = q.Label(pattern.QNode(u)) == g.Label(graph.NodeID(v))
		}
	}
	st.cnt = make([][]int32, len(st.qedges))
	for e := range st.qedges {
		st.cnt[e] = make([]int32, nv)
	}
	// Initialize counters: cnt[e=(u,u')][v] = #{v' in succ(v): alive[u'][v']}.
	for v := 0; v < nv; v++ {
		for _, vc := range g.Succ(graph.NodeID(v)) {
			for e, qe := range st.qedges {
				if st.alive[qe.child][vc] {
					st.cnt[e][v]++
				}
			}
		}
	}
	// Seed removals: alive pairs whose some out-edge counter is already 0.
	for u := 0; u < nq; u++ {
		for v := 0; v < nv; v++ {
			if !st.alive[u][v] {
				continue
			}
			for _, e := range st.eOut[u] {
				if st.cnt[e][v] == 0 {
					st.kill(pattern.QNode(u), graph.NodeID(v))
					break
				}
			}
		}
	}
	return st
}

func (st *state) kill(u pattern.QNode, v graph.NodeID) {
	if !st.alive[u][v] {
		return
	}
	st.alive[u][v] = false
	st.dead++
	st.queue = append(st.queue, pair{u, v})
}

// refineAll drains the removal queue to the fixpoint.
func (st *state) refineAll() {
	for len(st.queue) > 0 {
		p := st.queue[len(st.queue)-1]
		st.queue = st.queue[:len(st.queue)-1]
		// (p.u, p.v) died: every predecessor vp of p.v loses one witness
		// for every query edge e = (up, p.u).
		for _, e := range st.eIn[p.u] {
			up := st.qedges[e].parent
			for _, vp := range st.g.Pred(p.v) {
				if st.deleted != nil && st.deleted[uint64(vp)<<32|uint64(p.v)] {
					continue
				}
				st.cnt[e][vp]--
				if st.cnt[e][vp] == 0 && st.alive[up][vp] {
					st.kill(up, vp)
				}
			}
		}
	}
}

func (st *state) result() *Match {
	m := NewMatch(st.q.NumNodes())
	for u := range st.alive {
		for v, a := range st.alive[u] {
			if a {
				m.Sets[u] = append(m.Sets[u], graph.NodeID(v))
			}
		}
	}
	return m
}

// Verify checks that m is a simulation relation contained in the
// label-consistent candidates (soundness witness; used in property tests).
// It does NOT check maximality.
func Verify(q *pattern.Pattern, g *graph.Graph, m *Match) error {
	for u := range m.Sets {
		for _, v := range m.Sets[u] {
			if q.Label(pattern.QNode(u)) != g.Label(v) {
				return fmt.Errorf("pair (u%d,%d) label mismatch", u, v)
			}
			for _, uc := range q.Succ(pattern.QNode(u)) {
				ok := false
				for _, vc := range g.Succ(v) {
					if m.Contains(uc, vc) {
						ok = true
						break
					}
				}
				if !ok {
					return fmt.Errorf("pair (u%d,%d) lacks witness for query edge to u%d", u, v, uc)
				}
			}
		}
	}
	return nil
}
