package simulation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dgs/internal/graph"
	"dgs/internal/pattern"
)

// fig1 builds the data graph and query of Fig. 1 of the paper.
// Expected maximum match (Example 2): yb2,yb3 match YB; f2,f3,f4 match F;
// all yf match YF; all sp match SP; f1 and yb1 do not match.
func fig1(t testing.TB) (*pattern.Pattern, *graph.Graph, map[string]graph.NodeID) {
	t.Helper()
	d := graph.NewDict()
	q := pattern.MustParse(d, `
node YB YB
node YF YF
node F  F
node SP SP
edge YB YF
edge YB F
edge SP YF
edge YF F
edge F  SP
`)
	b := graph.NewBuilderDict(d)
	ids := map[string]graph.NodeID{}
	add := func(name, label string) {
		ids[name] = b.AddNode(label)
	}
	// Fragment F1 (site S1): yb1, yf1, sp1, f1; F2 (S2): f3, yb2, sp2, yf3,
	// f2, sp3... we place all nodes in one graph here; partitioning is
	// exercised elsewhere. Edges follow Example 6/7's equations.
	add("yb1", "YB")
	add("yf1", "YF")
	add("sp1", "SP")
	add("f1", "F")
	add("f2", "F")
	add("f3", "F")
	add("f4", "F")
	add("yb2", "YB")
	add("sp2", "SP")
	add("yf2", "YF")
	add("yf3", "YF")
	add("sp3", "SP")
	add("yb3", "YB")
	e := func(a, bn string) { b.AddEdge(ids[a], ids[bn]) }
	// Derived from the example's Boolean equations and the described cycle
	// f3,sp2,yf3,f4,sp3,yf1,f2,sp1,yf2(,f2):
	e("yf1", "f2")  // X(YF,yf1) = X(F,f2)
	e("sp1", "yf2") // X(SP,sp1) = X(YF,yf2) ∨ X(F,f2): edge (SP,YF)... sp1→yf2
	e("sp1", "f2")  // crossing edge (sp1,f2) listed in Example 4
	e("f2", "sp1")  // X(F,f2) = X(SP,sp1)
	e("yf2", "f2")  // cycle closure: yf2→f2 (YF→F query edge)
	e("f3", "sp2")  // f3's witness: sp2 trusts f3
	e("sp2", "yf3") // cycle
	e("yf3", "f4")  // cycle
	e("f4", "sp3")  // cycle
	e("sp3", "yf1") // cycle
	e("yb2", "yf3") // YB→YF witness for yb2
	e("yb2", "f3")  // YB→F witness for yb2
	e("yb3", "yf1") // YB→YF witness for yb3
	e("yb3", "f4")  // YB→F witness for yb3
	e("yb1", "f1")  // yb1 points at f1 only: f1 has no sp child
	e("f1", "f4")   // f1→f4 (crossing edge in Example 4) — F children don't help F
	g := b.MustBuild()
	return q, g, ids
}

func TestFig1NaiveMatchesPaper(t *testing.T) {
	q, g, ids := fig1(t)
	m := NaiveFixpoint(q, g)
	if !m.Ok() {
		t.Fatal("Fig-1 graph must match the query")
	}
	// YB = query node 0, YF = 1, F = 2, SP = 3.
	wantF := []string{"f2", "f3", "f4"}
	for _, n := range wantF {
		if !m.Contains(2, ids[n]) {
			t.Fatalf("%s should match F; relation: %v", n, m)
		}
	}
	if m.Contains(2, ids["f1"]) {
		t.Fatal("f1 must not match F (no SP child)")
	}
	if m.Contains(0, ids["yb1"]) {
		t.Fatal("yb1 must not match YB")
	}
	for _, n := range []string{"yb2", "yb3"} {
		if !m.Contains(0, ids[n]) {
			t.Fatalf("%s should match YB", n)
		}
	}
	for _, n := range []string{"yf1", "yf2", "yf3"} {
		if !m.Contains(1, ids[n]) {
			t.Fatalf("%s should match YF", n)
		}
	}
	for _, n := range []string{"sp1", "sp2", "sp3"} {
		if !m.Contains(3, ids[n]) {
			t.Fatalf("%s should match SP", n)
		}
	}
}

func TestHHKAgreesOnFig1(t *testing.T) {
	q, g, _ := fig1(t)
	a := NaiveFixpoint(q, g)
	b := HHK(q, g)
	if !a.Equal(b) {
		t.Fatalf("naive=%v hhk=%v", a, b)
	}
	if err := Verify(q, g, b); err != nil {
		t.Fatal(err)
	}
}

// Fig. 2 of the paper: Q0 = A→B, B→A (2-cycle); G0 = cycle
// A1→B1→A2→B2→...→An→A1... Actually G0: Ai→Bi and Bi→Ai+1 cyclically.
// As a Boolean query Q0(G0) = true and every node matches.
func TestFig2CycleMatches(t *testing.T) {
	d := graph.NewDict()
	q := pattern.MustParse(d, "node A A\nnode B B\nedge A B\nedge B A")
	for _, n := range []int{1, 2, 5, 17} {
		b := graph.NewBuilderDict(d)
		as := make([]graph.NodeID, n)
		bs := make([]graph.NodeID, n)
		for i := 0; i < n; i++ {
			as[i] = b.AddNode("A")
			bs[i] = b.AddNode("B")
		}
		for i := 0; i < n; i++ {
			b.AddEdge(as[i], bs[i])
			b.AddEdge(bs[i], as[(i+1)%n])
		}
		g := b.MustBuild()
		m := HHK(q, g)
		if !m.Ok() {
			t.Fatalf("n=%d: cycle should match", n)
		}
		if m.NumPairs() != 2*n {
			t.Fatalf("n=%d: want all %d pairs, got %d", n, 2*n, m.NumPairs())
		}
		if !m.Equal(NaiveFixpoint(q, g)) {
			t.Fatalf("n=%d: naive/HHK disagree", n)
		}
	}
}

// Broken chain (no cycle closure): with Q0 = A⇄B, a finite chain cannot
// match — the last node has no successor matching the other query node.
func TestFig2BrokenChainEmpty(t *testing.T) {
	d := graph.NewDict()
	q := pattern.MustParse(d, "node A A\nnode B B\nedge A B\nedge B A")
	b := graph.NewBuilderDict(d)
	n := 9
	var prev graph.NodeID
	for i := 0; i < n; i++ {
		a := b.AddNode("A")
		bb := b.AddNode("B")
		if i > 0 {
			b.AddEdge(prev, a)
		}
		b.AddEdge(a, bb)
		prev = bb
	}
	g := b.MustBuild()
	m := HHK(q, g)
	if m.Ok() || m.NumPairs() != 0 {
		t.Fatalf("broken chain should have empty result, got %v", m)
	}
}

func TestNoCandidates(t *testing.T) {
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a Z")
	b := graph.NewBuilderDict(d)
	b.AddNode("A")
	g := b.MustBuild()
	if m := HHK(q, g); m.Ok() {
		t.Fatal("no Z nodes; must not match")
	}
}

func TestSingleNodePatternNoEdges(t *testing.T) {
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A")
	b := graph.NewBuilderDict(d)
	b.AddNode("A")
	b.AddNode("B")
	b.AddNode("A")
	g := b.MustBuild()
	m := HHK(q, g)
	if !m.Ok() || len(m.Sets[0]) != 2 {
		t.Fatalf("want the two A nodes, got %v", m)
	}
}

func TestSelfLoopPattern(t *testing.T) {
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A\nedge a a")
	b := graph.NewBuilderDict(d)
	v0 := b.AddNode("A") // self loop: matches
	b.AddEdge(v0, v0)
	v1 := b.AddNode("A") // chain into the loop: matches
	b.AddEdge(v1, v0)
	b.AddNode("A") // isolated: no
	g := b.MustBuild()
	m := HHK(q, g)
	if !m.Contains(0, v0) || !m.Contains(0, v1) || m.Contains(0, 2) {
		t.Fatalf("self-loop result wrong: %v", m)
	}
	if !m.Equal(NaiveFixpoint(q, g)) {
		t.Fatal("naive/HHK disagree")
	}
}

func randomCase(r *rand.Rand) (*pattern.Pattern, *graph.Graph) {
	d := graph.NewDict()
	labels := []string{"A", "B", "C"}
	nq := 1 + r.Intn(5)
	q := pattern.New(d)
	for i := 0; i < nq; i++ {
		q.AddNode(labels[r.Intn(len(labels))], "")
	}
	for i := 0; i < nq*2; i++ {
		q.MustAddEdge(pattern.QNode(r.Intn(nq)), pattern.QNode(r.Intn(nq)))
	}
	b := graph.NewBuilderDict(d)
	nv := 1 + r.Intn(30)
	for i := 0; i < nv; i++ {
		b.AddNode(labels[r.Intn(len(labels))])
	}
	ne := r.Intn(4 * nv)
	for i := 0; i < ne; i++ {
		b.AddEdge(graph.NodeID(r.Intn(nv)), graph.NodeID(r.Intn(nv)))
	}
	return q, b.MustBuild()
}

// The central property test: HHK == naive fixpoint on random cases, and
// the result is a valid simulation relation.
func TestQuickHHKEqualsNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, g := randomCase(r)
		a := NaiveFixpoint(q, g)
		b := HHK(q, g)
		if !a.Equal(b) {
			t.Logf("seed %d: naive=%v hhk=%v", seed, a, b)
			return false
		}
		return Verify(q, g, b) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Maximality: adding any label-consistent pair to the result must break
// the simulation condition (otherwise the result wasn't maximum).
func TestQuickMaximality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, g := randomCase(r)
		m := HHK(q, g)
		if !m.Ok() {
			return true // empty canonical result; maximality vacuous here
		}
		for u := 0; u < q.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				if q.Label(pattern.QNode(u)) != g.Label(graph.NodeID(v)) || m.Contains(pattern.QNode(u), graph.NodeID(v)) {
					continue
				}
				// Try to extend: (u,v) must violate some child condition.
				ok := true
				for _, uc := range q.Succ(pattern.QNode(u)) {
					found := false
					for _, vc := range g.Succ(graph.NodeID(v)) {
						if m.Contains(uc, vc) || (uc == pattern.QNode(u) && vc == graph.NodeID(v)) {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if ok {
					t.Logf("seed %d: pair (u%d,%d) could be added", seed, u, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchHelpers(t *testing.T) {
	m := NewMatch(2)
	m.Sets[0] = []graph.NodeID{3, 1}
	m.Sort()
	if m.Sets[0][0] != 1 {
		t.Fatal("Sort failed")
	}
	if m.Ok() {
		t.Fatal("query node 1 empty; Ok must be false")
	}
	c := m.Canonical()
	if c.NumPairs() != 0 {
		t.Fatal("Canonical of non-match must be empty")
	}
	m.Sets[1] = []graph.NodeID{0}
	if !m.Ok() || m.NumPairs() != 3 {
		t.Fatal("Ok/NumPairs wrong")
	}
	if m.String() == "" {
		t.Fatal("String empty")
	}
	o := NewMatch(2)
	if m.Equal(o) {
		t.Fatal("Equal wrong")
	}
}

func BenchmarkHHKMedium(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	d := graph.NewDict()
	labels := []string{"A", "B", "C", "D", "E"}
	q := pattern.New(d)
	for i := 0; i < 5; i++ {
		q.AddNode(labels[i%len(labels)], "")
	}
	for i := 0; i < 10; i++ {
		q.MustAddEdge(pattern.QNode(r.Intn(5)), pattern.QNode(r.Intn(5)))
	}
	gb := graph.NewBuilderDict(d)
	n := 20000
	for i := 0; i < n; i++ {
		gb.AddNode(labels[r.Intn(len(labels))])
	}
	for i := 0; i < 4*n; i++ {
		gb.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)))
	}
	g := gb.MustBuild()
	g.EnsureReverse()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HHK(q, g)
	}
}
