package simulation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dgs/internal/graph"
	"dgs/internal/pattern"
)

func TestDualTightensSimulation(t *testing.T) {
	// Chain graph A->B, plus an isolated B. Query A->B.
	// Plain simulation: isolated B matches b (no child condition on b).
	// Dual simulation: it does not (b needs an A parent).
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A\nnode b B\nedge a b")
	b := graph.NewBuilderDict(d)
	va := b.AddNode("A")
	vb := b.AddNode("B")
	iso := b.AddNode("B")
	b.AddEdge(va, vb)
	g := b.MustBuild()

	plain := HHK(q, g)
	if !plain.Contains(1, iso) {
		t.Fatal("plain simulation should keep the isolated B")
	}
	dual := DualHHK(q, g)
	if dual.Contains(1, iso) {
		t.Fatal("dual simulation must drop the parentless B")
	}
	if !dual.Contains(0, va) || !dual.Contains(1, vb) {
		t.Fatalf("dual lost the real match: %v", dual)
	}
	if err := VerifyDual(q, g, dual); err != nil {
		t.Fatal(err)
	}
}

func TestDualContainedInPlain(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for iter := 0; iter < 40; iter++ {
		q, g := randomCase(r)
		plain := HHK(q, g)
		dual := DualHHK(q, g)
		for u := range dual.Sets {
			for _, v := range dual.Sets[u] {
				if !plain.Contains(pattern.QNode(u), v) {
					t.Fatalf("iter %d: dual pair (u%d,%d) missing from plain simulation", iter, u, v)
				}
			}
		}
	}
}

func TestQuickDualHHKEqualsNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, g := randomCase(r)
		a := DualNaive(q, g)
		b := DualHHK(q, g)
		if !a.Equal(b) {
			t.Logf("seed %d: naive=%v hhk=%v", seed, a, b)
			return false
		}
		if a.Ok() {
			return VerifyDual(q, g, b) == nil
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDualOnCycle(t *testing.T) {
	// Q0 = A⇄B on a closed chain: dual simulation keeps everything, like
	// plain simulation (every node has both witnesses).
	d := graph.NewDict()
	q := pattern.MustParse(d, "node A A\nnode B B\nedge A B\nedge B A")
	b := graph.NewBuilderDict(d)
	n := 6
	for i := 0; i < n; i++ {
		b.AddNode("A")
		b.AddNode("B")
	}
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(2*i), graph.NodeID(2*i+1))
		b.AddEdge(graph.NodeID(2*i+1), graph.NodeID((2*i+2)%(2*n)))
	}
	g := b.MustBuild()
	dual := DualHHK(q, g)
	if !dual.Ok() || dual.NumPairs() != 2*n {
		t.Fatalf("dual on cycle: %v", dual)
	}
}

func BenchmarkDualHHKMedium(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	d := graph.NewDict()
	labels := []string{"A", "B", "C", "D", "E"}
	q := pattern.New(d)
	for i := 0; i < 5; i++ {
		q.AddNode(labels[i%len(labels)], "")
	}
	for i := 0; i < 10; i++ {
		q.MustAddEdge(pattern.QNode(r.Intn(5)), pattern.QNode(r.Intn(5)))
	}
	gb := graph.NewBuilderDict(d)
	n := 20000
	for i := 0; i < n; i++ {
		gb.AddNode(labels[r.Intn(len(labels))])
	}
	for i := 0; i < 4*n; i++ {
		gb.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)))
	}
	g := gb.MustBuild()
	g.EnsureReverse()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DualHHK(q, g)
	}
}
