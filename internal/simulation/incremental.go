package simulation

// Incremental maintenance of Q(G) under edge deletions — the centralized
// counterpart of dGPM's incremental lEval, following the paper's basis
// [13] (Fan, Wang, Wu: "Incremental graph pattern matching", TODS 2013).
//
// Graph simulation shrinks monotonically as edges are deleted, so the
// counter state of the HHK refinement supports deletions in O(|AFF|):
// deleting (v,w) decrements the witness counters of v for every query
// edge whose child w still matches, and the usual propagation handles
// the rest. Edge insertions can only grow the relation, which a
// removal-only engine cannot express; Resimulate runs the fresh fixpoint
// for them — the same deletion-incremental/insertion-fallback split the
// deployment's distributed maintenance uses (Deployment.Apply/Watch,
// DESIGN.md "The update lifecycle").

import (
	"fmt"

	"dgs/internal/graph"
	"dgs/internal/pattern"
)

// Incremental holds a maintained simulation state over a mutable edge
// set. The underlying graph object is not modified; deletions are
// recorded in an overlay.
type Incremental struct {
	q  *pattern.Pattern
	g  *graph.Graph
	st *state
	// deleted marks removed edges (packed v<<32|w).
	deleted map[uint64]bool
	// affected counts variables falsified by deletions so far (the
	// |AFF| measure of [13]).
	affected int
}

// NewIncremental computes the initial Q(G) state.
func NewIncremental(q *pattern.Pattern, g *graph.Graph) *Incremental {
	g.EnsureReverse()
	st := newState(q, g)
	st.refineAll()
	inc := &Incremental{q: q, g: g, st: st, deleted: make(map[uint64]bool)}
	st.deleted = inc.deleted
	return inc
}

func edgeKey(v, w graph.NodeID) uint64 { return uint64(v)<<32 | uint64(w) }

// DeleteEdge removes (v, w) and incrementally refines the relation.
// Deleting an absent (or already deleted) edge is an error.
func (inc *Incremental) DeleteEdge(v, w graph.NodeID) error {
	k := edgeKey(v, w)
	if inc.deleted[k] {
		return fmt.Errorf("simulation: edge (%d,%d) already deleted", v, w)
	}
	if !inc.g.HasEdge(v, w) {
		return fmt.Errorf("simulation: edge (%d,%d) does not exist", v, w)
	}
	pre := inc.st.dead
	inc.deleted[k] = true
	st := inc.st
	// v loses the witness w for every query edge whose child w matches.
	// Snapshot w's liveness first: a kill fired by an earlier iteration
	// may falsify (u',w) mid-loop (w can even be v itself, via a
	// self-loop), and the propagation skips the now-deleted edge — so
	// deciding from the live array would lose this edge's decrement for
	// the remaining query edges, leaving their counters permanently
	// inflated.
	wasAlive := make([]bool, len(st.qedges))
	for e, qe := range st.qedges {
		wasAlive[e] = st.alive[qe.child][w]
	}
	for e, qe := range st.qedges {
		if !wasAlive[e] {
			continue
		}
		st.cnt[e][v]--
		if st.cnt[e][v] == 0 && st.alive[qe.parent][v] {
			st.kill(qe.parent, v)
		}
	}
	st.refineAll()
	inc.affected += st.dead - pre
	return nil
}

// scanDead recounts falsified variables with a full O(|V|·|Vq|) scan of
// the relation — the regression oracle for the incrementally maintained
// state.dead counter. DeleteEdge itself never rescans: it reads the
// counter before and after refinement.
func (inc *Incremental) scanDead() int {
	n := 0
	for u := range inc.st.alive {
		for _, a := range inc.st.alive[u] {
			if !a {
				n++
			}
		}
	}
	return n
}

// Affected reports the cumulative number of variables falsified by
// deletions — the |AFF| area of [13] that incremental evaluation visits.
func (inc *Incremental) Affected() int { return inc.affected }

// Current returns the maintained relation (canonicalized).
func (inc *Incremental) Current() *Match {
	return inc.st.result().Canonical()
}

// Resimulate recomputes from scratch against the current edge overlay —
// the oracle incremental maintenance is tested against, and the fallback
// path for insertions.
func (inc *Incremental) Resimulate() *Match {
	b := graph.NewBuilderDict(inc.g.Dict())
	for v := 0; v < inc.g.NumNodes(); v++ {
		b.AddNodeLabel(inc.g.Label(graph.NodeID(v)))
	}
	inc.g.Edges(func(v, w graph.NodeID) bool {
		if !inc.deleted[edgeKey(v, w)] {
			b.AddEdge(v, w)
		}
		return true
	})
	g2 := b.MustBuild()
	return HHK(inc.q, g2)
}
