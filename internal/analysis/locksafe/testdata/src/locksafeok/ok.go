// Package locksafeok is clean under locksafe: locks are taken in leaf
// sections, branch-local unlocks are understood, goroutines and
// closures don't count as running under the caller's lock, and the
// atomic field is only touched through its methods.
package locksafeok

import (
	"sync"
	"sync/atomic"
)

// Dep mimics the Deployment locking layout.
type Dep struct {
	mu      sync.Mutex
	state   sync.RWMutex
	version atomic.Uint64
	closed  bool
	n       int
}

func (d *Dep) close() bool {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return false
	}
	d.closed = true
	d.mu.Unlock()
	return true
}

func (d *Dep) sequential() {
	d.mu.Lock()
	d.n++
	d.mu.Unlock()
	// Released above: taking it again is not re-entrant.
	d.mu.Lock()
	d.n--
	d.mu.Unlock()
}

func (d *Dep) bump() uint64 { return d.version.Add(1) }

func (d *Dep) underReadLock() int {
	d.state.RLock()
	defer d.state.RUnlock()
	return d.n
}

func (d *Dep) spawn() {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Runs after the caller releases; not a held-lock call.
	go d.sequential()
}

func (d *Dep) distinctLocks() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.state.RLock()
	defer d.state.RUnlock()
}
