// Package locksafebad violates the locksafe invariants: re-entrant
// acquisition, locking calls made under the lock, and reassignment of
// an atomic field.
package locksafebad

import (
	"sync"
	"sync/atomic"
)

// Dep mimics the Deployment locking layout.
type Dep struct {
	mu      sync.Mutex
	state   sync.RWMutex
	version atomic.Uint64
	closed  bool
}

func (d *Dep) directReentry() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mu.Lock() // want "re-entrant acquisition of mu"
}

func (d *Dep) rlockReentry() {
	d.state.RLock()
	d.state.RLock() // want "re-entrant acquisition of state"
	d.state.RUnlock()
	d.state.RUnlock()
}

func (d *Dep) isClosed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}

func (d *Dep) callUnderLock() {
	d.mu.Lock()
	defer d.mu.Unlock()
	_ = d.isClosed() // want "call to isClosed acquires mu"
}

func (d *Dep) indirect() { d.helper() }

func (d *Dep) helper() {
	d.mu.Lock()
	d.mu.Unlock()
}

func (d *Dep) transitive() {
	d.mu.Lock()
	d.indirect() // want "call to indirect acquires mu"
	d.mu.Unlock()
}

func (d *Dep) resetVersion() {
	d.version = atomic.Uint64{} // want "sync/atomic field version reassigned"
}
