package locksafe_test

import (
	"testing"

	"dgs/internal/analysis/analysistest"
	"dgs/internal/analysis/locksafe"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, "testdata", locksafe.Analyzer, "locksafebad", "locksafeok")
}
