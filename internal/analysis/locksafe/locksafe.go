// Package locksafe flags re-entrant mutex acquisition — taking a
// sync.Mutex/RWMutex that the current call path already holds, either
// directly or by calling a same-package function whose (transitive)
// body acquires it — and reassignment of sync/atomic-typed fields,
// which must only be touched through their Load/Store/Add methods.
//
// This is the static form of the Deployment locking contract in
// DESIGN.md: d.mu, d.state and d.watchMu are acquired in leaf sections
// that never call back into locking methods, and d.version is an
// atomic.Uint64 so Version() stays wait-free during Apply. Go mutexes
// are not re-entrant, so every violation is a real deadlock waiting for
// the right interleaving.
//
// The held-set tracking is intentionally conservative: acquisitions
// inside a branch do not leak out of it, closure bodies are analyzed as
// separate functions, and lock identity is the mutex variable or field
// object — two different struct instances sharing a field object can
// produce a false positive, which an explicit //lint:allow locksafe
// annotation silences with a reason.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"dgs/internal/analysis"
)

// Analyzer implements the locksafe check.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "flags re-entrant mutex acquisition (direct or via same-package calls) and reassignment of sync/atomic fields",
	Run:  run,
}

// lockOp classifies one mutex method call.
type lockOp int

const (
	opNone lockOp = iota
	opLock        // Lock, RLock
	opUnlock      // Unlock, RUnlock
)

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info

	// Pass 1: per-function acquire sets (locks a body takes anywhere,
	// closures excluded) and the package-local call graph.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	acquires := map[*types.Func]map[types.Object]bool{}
	calls := map[*types.Func][]*types.Func{}
	for fn, fd := range decls {
		acq := map[types.Object]bool{}
		var callees []*types.Func
		inspectSkippingFuncLits(fd.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if obj, op := lockTarget(info, call); obj != nil && op == opLock {
				acq[obj] = true
			}
			if callee := calleeFunc(info, call); callee != nil {
				if _, local := decls[callee]; local {
					callees = append(callees, callee)
				}
			}
		})
		acquires[fn] = acq
		calls[fn] = callees
	}
	// Transitive closure: a function "acquires" what its callees acquire.
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			for _, callee := range callees {
				for obj := range acquires[callee] {
					if !acquires[fn][obj] {
						acquires[fn][obj] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 2: walk each body tracking the held set along the straight
	// line, branching with copies.
	w := &walker{pass: pass, info: info, decls: decls, acquires: acquires}
	for _, fd := range decls {
		w.block(fd.Body.List, map[types.Object]token.Pos{})
	}

	// Pass 3: atomic field hygiene.
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range assign.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj := info.Uses[sel.Sel]; obj != nil && isAtomicType(obj.Type()) {
					pass.Reportf(assign.Pos(), "sync/atomic field %s reassigned; use its Store method", obj.Name())
				}
			}
			return true
		})
	}
	return nil
}

// walker tracks held locks through a statement list.
type walker struct {
	pass     *analysis.Pass
	info     *types.Info
	decls    map[*types.Func]*ast.FuncDecl
	acquires map[*types.Func]map[types.Object]bool
}

// block processes stmts sequentially, mutating held; nested control-flow
// bodies get copies so branch-local unlocks/acquisitions don't leak.
func (w *walker) block(stmts []ast.Stmt, held map[types.Object]token.Pos) {
	for _, s := range stmts {
		w.stmt(s, held)
	}
}

func copyHeld(held map[types.Object]token.Pos) map[types.Object]token.Pos {
	c := make(map[types.Object]token.Pos, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func (w *walker) stmt(s ast.Stmt, held map[types.Object]token.Pos) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		w.block(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		w.exprCalls(st.Cond, held, false)
		w.stmt(st.Body, copyHeld(held))
		if st.Else != nil {
			w.stmt(st.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		if st.Cond != nil {
			w.exprCalls(st.Cond, held, false)
		}
		body := copyHeld(held)
		w.stmt(st.Body, body)
		if st.Post != nil {
			w.stmt(st.Post, body)
		}
	case *ast.RangeStmt:
		w.exprCalls(st.X, held, false)
		w.stmt(st.Body, copyHeld(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		if st.Tag != nil {
			w.exprCalls(st.Tag, held, false)
		}
		for _, c := range st.Body.List {
			w.stmt(c, copyHeld(held))
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		for _, c := range st.Body.List {
			w.stmt(c, copyHeld(held))
		}
	case *ast.CaseClause:
		for _, e := range st.List {
			w.exprCalls(e, held, false)
		}
		w.block(st.Body, held)
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			w.stmt(c, copyHeld(held))
		}
	case *ast.CommClause:
		if st.Comm != nil {
			w.stmt(st.Comm, held)
		}
		w.block(st.Body, held)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, held)
	case *ast.GoStmt:
		// A goroutine does not run while the caller holds the lock; its
		// body is analyzed as an independent function.
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held to function end; a
		// deferred call that acquires a held lock is registered while
		// held and may run before the unlock, so it is still reported.
		if obj, op := lockTarget(w.info, st.Call); obj != nil {
			if op == opUnlock {
				return // held until the end of the function: keep it set
			}
			w.checkAcquire(st.Call, obj, held)
			return
		}
		w.exprCalls(st.Call, held, true)
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				w.stmt(n.Body, map[types.Object]token.Pos{})
				return false
			case *ast.CallExpr:
				w.call(n, held)
			}
			return true
		})
	}
}

// exprCalls processes the calls inside a bare expression.
func (w *walker) exprCalls(e ast.Expr, held map[types.Object]token.Pos, includeSelf bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmt(n.Body, map[types.Object]token.Pos{})
			return false
		case *ast.CallExpr:
			if n == e && !includeSelf {
				return true
			}
			w.call(n, held)
		}
		return true
	})
}

// call handles one call expression against the current held set.
func (w *walker) call(call *ast.CallExpr, held map[types.Object]token.Pos) {
	if obj, op := lockTarget(w.info, call); obj != nil {
		switch op {
		case opLock:
			w.checkAcquire(call, obj, held)
			held[obj] = call.Pos()
		case opUnlock:
			delete(held, obj)
		}
		return
	}
	if len(held) == 0 {
		return
	}
	callee := calleeFunc(w.info, call)
	if callee == nil {
		return
	}
	if _, local := w.decls[callee]; !local {
		return
	}
	for obj := range w.acquires[callee] {
		if pos, ok := held[obj]; ok {
			w.pass.Reportf(call.Pos(), "call to %s acquires %s, already held since %s (re-entrant locking deadlocks)",
				callee.Name(), obj.Name(), w.pass.Fset.Position(pos))
		}
	}
}

func (w *walker) checkAcquire(call *ast.CallExpr, obj types.Object, held map[types.Object]token.Pos) {
	if pos, ok := held[obj]; ok {
		w.pass.Reportf(call.Pos(), "re-entrant acquisition of %s, already held since %s (Go mutexes do not nest)",
			obj.Name(), w.pass.Fset.Position(pos))
	}
}

// inspectSkippingFuncLits visits every node except closure bodies.
func inspectSkippingFuncLits(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// lockTarget resolves call to (mutex identity, op) when it invokes a
// sync.Mutex/RWMutex lock method; identity is the mutex field or
// variable object.
func lockTarget(info *types.Info, call *ast.CallExpr) (types.Object, lockOp) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, opNone
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return nil, opNone
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, opNone
	}
	// d.mu.Lock(): identity is the mu field; mu.Lock(): the mu variable;
	// embedded mutex d.Lock(): the embedded field, resolved through the
	// method selection's index path.
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		if s := info.Selections[x]; s != nil {
			return s.Obj(), op
		}
		if obj := info.Uses[x.Sel]; obj != nil {
			return obj, op // package-qualified or field var
		}
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			return nil, opNone
		}
		if isMutexType(obj.Type()) {
			return obj, op
		}
		// Embedded: resolve the field the promoted method travels through.
		if s := info.Selections[sel]; s != nil {
			if f := embeddedLockField(s); f != nil {
				return f, op
			}
		}
	}
	return nil, opNone
}

// embeddedLockField digs the mutex field out of a promoted method
// selection (receiver.Lock() with an embedded sync.Mutex).
func embeddedLockField(s *types.Selection) types.Object {
	t := s.Recv()
	idx := s.Index()
	for _, i := range idx[:len(idx)-1] {
		st, ok := deref(t).Underlying().(*types.Struct)
		if !ok {
			return nil
		}
		f := st.Field(i)
		if isMutexType(f.Type()) {
			return f
		}
		t = f.Type()
	}
	return nil
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	id := analysis.CalleeIdent(call)
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

func isMutexType(t types.Type) bool {
	n, ok := deref(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" && (n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

func isAtomicType(t types.Type) bool {
	n, ok := deref(t).(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
