package metricnames_test

import (
	"testing"

	"dgs/internal/analysis/analysistest"
	"dgs/internal/analysis/metricnames"
)

func TestMetricNames(t *testing.T) {
	analysistest.Run(t, "testdata", metricnames.Analyzer, "metricnamesbad", "metricnamesok")
}
