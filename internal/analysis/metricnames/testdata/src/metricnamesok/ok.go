// Package metricnamesok registers a clean catalog: constant
// snake_case names, each unique. Methods of the same names on
// non-Registry receivers are out of scope.
package metricnamesok

type Registry struct{}

func (r *Registry) Counter(name, help string) int                      { return 0 }
func (r *Registry) Gauge(name, help string) int                        { return 0 }
func (r *Registry) Histogram(name, help string, buckets []float64) int { return 0 }
func (r *Registry) CounterFunc(name, help string, fn func() float64)   {}
func (r *Registry) GaugeFunc(name, help string, fn func() float64)     {}

// notARegistry has a Counter method too; its names are not metrics.
type notARegistry struct{}

func (notARegistry) Counter(name, help string) int { return 0 }

func register(r *Registry) {
	r.Counter("dgs_ok_queries_total", "x")
	r.Gauge("dgs_ok_queue_depth", "x")
	r.Histogram("dgs_ok_seconds", "x", []float64{1})
	r.CounterFunc("dgs_ok_frames_total", "x", nil)
	r.GaugeFunc("dgs_ok_entries", "x", nil)
	var n notARegistry
	n.Counter("Definitely Not Snake", "ignored: wrong receiver type")
}
