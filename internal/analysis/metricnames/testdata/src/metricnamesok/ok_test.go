package metricnamesok

// Test files are exempt: registering an already-taken name (or a
// computed one) on a throwaway registry is normal test practice.

func registerAgain(r *Registry, dynamic string) {
	r.Counter("dgs_ok_queries_total", "duplicate, but in a test file")
	r.Gauge(dynamic, "computed, but in a test file")
}
