// Package metricnamesbad violates the metric-name invariants: the
// Registry stub mirrors the obs API by name, which is all the analyzer
// matches on.
package metricnamesbad

type Registry struct{}

func (r *Registry) Counter(name, help string) int                      { return 0 }
func (r *Registry) Gauge(name, help string) int                        { return 0 }
func (r *Registry) Histogram(name, help string, buckets []float64) int { return 0 }
func (r *Registry) CounterFunc(name, help string, fn func() float64)   {}
func (r *Registry) GaugeFunc(name, help string, fn func() float64)     {}

const constName = "dgs_bad_shared_total"

func register(r *Registry, dynamic string) {
	r.Counter("dgs_CamelCase_total", "x") // want "not snake_case"
	r.Gauge("1leading_digit", "x")        // want "not snake_case"
	r.Counter("dgs_bad_dup_total", "x")
	r.Counter("dgs_bad_dup_total", "x") // want "already registered"
	r.CounterFunc(constName, "x", nil)
	r.GaugeFunc(constName, "x", nil) // want "already registered"
	r.Histogram(dynamic, "x", nil)   // want "must be a constant string"
}
