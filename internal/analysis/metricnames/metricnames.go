// Package metricnames checks the observability metric catalog
// statically: every metric registered on an obs.Registry — through
// Counter, Gauge, Histogram, CounterFunc or GaugeFunc — must carry a
// constant snake_case name that is unique across the whole module.
//
// The registry enforces both properties at runtime by panicking, but a
// duplicate between two components (say the driver and the gateway)
// only fires when one process registers both — exactly the merged
// /metrics exposition case, i.e. in production, not in the component's
// own tests. Checking the call sites at build time turns that panic
// into a dgsvet finding.
//
// It is a module analyzer: the registration sites live in different
// packages (deploy.go, transport, daemon, serve) and the uniqueness
// invariant spans all of them. Test files are exempt — tests register
// throwaway names on throwaway registries, often deliberately
// colliding to exercise the dup panic.
package metricnames

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"dgs/internal/analysis"
)

// Analyzer implements the metricnames check.
var Analyzer = &analysis.Analyzer{
	Name:      "metricnames",
	Doc:       "checks that metrics registered on an obs.Registry have constant, snake_case, module-unique names",
	RunModule: run,
}

// registerMethods are the Registry methods whose first argument is a
// metric name.
var registerMethods = map[string]bool{
	"Counter":     true,
	"Gauge":       true,
	"Histogram":   true,
	"CounterFunc": true,
	"GaugeFunc":   true,
}

// registration is one matched call site.
type registration struct {
	pos  token.Pos
	name string // "" when the argument is not a constant string
}

func run(pass *analysis.ModulePass) error {
	var regs []registration
	for _, pkg := range pass.Module.Pkgs {
		for _, file := range pkg.Files {
			if strings.HasSuffix(pass.Fset.File(file.Pos()).Name(), "_test.go") {
				continue
			}
			info := pkg.Info
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				if !isRegistryRegister(info, call) {
					return true
				}
				r := registration{pos: call.Args[0].Pos()}
				if tv, ok := info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
					r.name = constant.StringVal(tv.Value)
				}
				regs = append(regs, r)
				return true
			})
		}
	}

	// Position order makes the "first registered here" attribution of a
	// duplicate stable no matter how the loader ordered the packages.
	sort.Slice(regs, func(i, j int) bool {
		a, b := pass.Fset.Position(regs[i].pos), pass.Fset.Position(regs[j].pos)
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})

	first := make(map[string]token.Pos)
	for _, r := range regs {
		if r.name == "" {
			pass.Reportf(r.pos, "metric name must be a constant string so the catalog is statically known")
			continue
		}
		if !snakeCase(r.name) {
			pass.Reportf(r.pos, "metric name %q is not snake_case ([a-z][a-z0-9_]*)", r.name)
			continue
		}
		if prev, dup := first[r.name]; dup {
			pass.Reportf(r.pos, "metric %q already registered at %s; names must be unique module-wide (one merged /metrics page)",
				r.name, pass.Fset.Position(prev))
			continue
		}
		first[r.name] = r.pos
	}
	return nil
}

// isRegistryRegister reports whether call invokes one of the
// registering methods on a Registry-named receiver type. Matching the
// bare type name (not the obs import path) keeps the fixtures
// self-contained and catches forks of the registry API too.
func isRegistryRegister(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registerMethods[sel.Sel.Name] {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// snakeCase mirrors obs.ValidMetricName: lowercase letters, digits and
// underscores, starting with a letter.
func snakeCase(name string) bool {
	if name == "" || name[0] < 'a' || name[0] > 'z' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}
