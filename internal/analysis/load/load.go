// Package load type-checks the repository's packages for the dgsvet
// analyzers without golang.org/x/tools: packages are discovered by
// walking the module tree, parsed with go/parser, and type-checked in
// dependency order with go/types, resolving standard-library imports
// through the stdlib source importer. The loader runs fully offline —
// it needs GOROOT source, not a module cache or export data — which is
// what lets dgsvet run in the build gate on network-less machines.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func init() {
	// The stdlib source importer selects files with the build context.
	// Without cgo it picks the pure-Go fallbacks (net, os/user), which
	// type-check from source on any machine; with cgo it would try to
	// run the cgo preprocessor.
	build.Default.CgoEnabled = false
}

// Package is one type-checked package of the module.
type Package struct {
	// Path is the package's import path ("dgs/internal/wire"). External
	// test packages get the pseudo-path "<base> [test]".
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Files holds the parsed files: the package's own sources plus, when
	// the loader ran with Tests, its in-package _test.go files.
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info
	// Imports maps import paths to the module-local packages this one
	// depends on (stdlib imports are not recorded).
	Imports map[string]*Package
}

// Module is a fully loaded module: every package type-checked, in
// dependency order (imports precede importers).
type Module struct {
	Fset *token.FileSet
	// Path is the module path ("" for GOPATH-style roots such as
	// analyzer test fixtures, where import paths are directory-relative).
	Path string
	Dir  string
	// Pkgs lists the packages in topological order.
	Pkgs []*Package
	byPath map[string]*Package
}

// ByPath returns the loaded package with the given import path, or nil.
func (m *Module) ByPath(path string) *Package { return m.byPath[path] }

// Config controls a Load.
type Config struct {
	// Dir is the root directory to walk.
	Dir string
	// ModulePath prefixes import paths; read from Dir/go.mod when empty
	// and a go.mod exists, else paths are Dir-relative (fixture mode).
	ModulePath string
	// Tests includes _test.go files: in-package test files join their
	// package, external ones ("package foo_test") form their own.
	Tests bool
}

// rawPkg is a parsed-but-unchecked package.
type rawPkg struct {
	path    string
	dir     string
	files   []*ast.File
	imports []string
	extTest bool // external test package ("package foo_test")
}

// Load discovers, parses and type-checks every package under cfg.Dir.
// Parse or type errors fail the load: analyzers require well-typed
// input, and the build gate runs `go build` beside dgsvet anyway.
func Load(cfg Config) (*Module, error) {
	dir, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	modPath := cfg.ModulePath
	if modPath == "" {
		modPath = readModulePath(filepath.Join(dir, "go.mod"))
	}
	fset := token.NewFileSet()
	raws, err := parseTree(fset, dir, modPath, cfg.Tests)
	if err != nil {
		return nil, err
	}

	mod := &Module{Fset: fset, Path: modPath, Dir: dir, byPath: make(map[string]*Package)}
	srcImp := importer.ForCompiler(fset, "source", nil)
	lookup := func(path string) (*types.Package, error) {
		if p := mod.byPath[path]; p != nil {
			return p.Types, nil
		}
		return srcImp.Import(path)
	}

	order, err := topoSort(raws)
	if err != nil {
		return nil, err
	}
	for _, r := range order {
		pkg := &Package{Path: r.path, Dir: r.dir, Files: r.files, Imports: make(map[string]*Package)}
		var typeErrs []error
		conf := types.Config{
			Importer: importerFunc(lookup),
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		tpkg, err := conf.Check(r.path, fset, r.files, pkg.Info)
		if err != nil {
			return nil, fmt.Errorf("load: type-checking %s: %w (first of %d errors)", r.path, typeErrs[0], len(typeErrs))
		}
		pkg.Types = tpkg
		for _, imp := range r.imports {
			if p := mod.byPath[imp]; p != nil {
				pkg.Imports[imp] = p
			}
		}
		// External test packages shadow nobody: their pseudo-path cannot
		// be imported.
		mod.byPath[r.path] = pkg
		mod.Pkgs = append(mod.Pkgs, pkg)
	}
	return mod, nil
}

// parseTree walks dir and parses every candidate package.
func parseTree(fset *token.FileSet, dir, modPath string, tests bool) ([]*rawPkg, error) {
	byPath := make(map[string]*rawPkg)
	walkErr := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			n := d.Name()
			if p != dir && (n == "testdata" || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") || n == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") {
			return nil
		}
		isTest := strings.HasSuffix(p, "_test.go")
		if isTest && !tests {
			return nil
		}
		rel, err := filepath.Rel(dir, filepath.Dir(p))
		if err != nil {
			return err
		}
		ipath := modPath
		if rel != "." {
			if ipath == "" {
				ipath = filepath.ToSlash(rel)
			} else {
				ipath = ipath + "/" + filepath.ToSlash(rel)
			}
		}
		if ipath == "" {
			return nil // GOPATH-style root dir itself holds no package
		}
		af, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("load: %w", err)
		}
		key := ipath
		ext := isTest && strings.HasSuffix(af.Name.Name, "_test")
		if ext {
			key = ipath + " [test]"
		}
		r := byPath[key]
		if r == nil {
			r = &rawPkg{path: key, dir: filepath.Dir(p), extTest: ext}
			byPath[key] = r
		}
		r.files = append(r.files, af)
		for _, im := range af.Imports {
			r.imports = append(r.imports, strings.Trim(im.Path.Value, `"`))
		}
		return nil
	})
	if walkErr != nil {
		return nil, walkErr
	}
	out := make([]*rawPkg, 0, len(byPath))
	for _, r := range byPath {
		// Deterministic file order regardless of walk order.
		sort.Slice(r.files, func(i, j int) bool {
			return fset.File(r.files[i].Pos()).Name() < fset.File(r.files[j].Pos()).Name()
		})
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out, nil
}

// topoSort orders packages so imports precede importers; external test
// packages come after their base package.
func topoSort(raws []*rawPkg) ([]*rawPkg, error) {
	byPath := make(map[string]*rawPkg, len(raws))
	for _, r := range raws {
		byPath[r.path] = r
	}
	var order []*rawPkg
	state := make(map[string]int) // 0 new, 1 visiting, 2 done
	var visit func(r *rawPkg) error
	visit = func(r *rawPkg) error {
		switch state[r.path] {
		case 1:
			return fmt.Errorf("load: import cycle through %s", r.path)
		case 2:
			return nil
		}
		state[r.path] = 1
		for _, imp := range r.imports {
			if dep := byPath[imp]; dep != nil {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		// An external test package depends on its base package too.
		if r.extTest {
			if base := byPath[strings.TrimSuffix(r.path, " [test]")]; base != nil {
				if err := visit(base); err != nil {
					return err
				}
			}
		}
		state[r.path] = 2
		order = append(order, r)
		return nil
	}
	for _, r := range raws {
		if err := visit(r); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// readModulePath extracts the module path from a go.mod, "" if absent.
func readModulePath(gomod string) string {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
