// Package analysistest runs a dgsvet analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract: fixtures live
// under <dir>/src/<pkg> with directory-relative import paths, and every
// line expecting a diagnostic carries `// want "regexp"` (several
// regexps for several diagnostics). A diagnostic without a matching
// want, or a want without a diagnostic, fails the test — so each
// analyzer's testdata must hold both a violating and a clean fixture.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"dgs/internal/analysis"
	"dgs/internal/analysis/load"
)

// wantRe captures each quoted regexp of a // want comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads dir/src as a fixture tree, applies a to the named packages
// (import paths relative to dir/src) and compares diagnostics with the
// fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	mod, err := load.Load(load.Config{Dir: filepath.Join(dir, "src"), Tests: true})
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	want := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		want[p] = true
	}
	keep := func(pkg *load.Package) bool { return want[pkg.Path] }
	for _, p := range pkgs {
		if mod.ByPath(p) == nil {
			t.Fatalf("fixture package %q not found under %s/src", p, dir)
		}
	}
	findings, err := analysis.Run(mod, []*analysis.Analyzer{a}, keep)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	expects := collectWants(t, mod, keep)

	for _, f := range findings {
		if !matchExpectation(expects, f) {
			t.Errorf("unexpected diagnostic:\n  %s", f)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// collectWants scans the kept fixtures' comments for want expectations.
func collectWants(t *testing.T, mod *load.Module, keep func(*load.Package) bool) []*expectation {
	t.Helper()
	var out []*expectation
	for _, pkg := range mod.Pkgs {
		if !keep(pkg) {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					args := wantArgRe.FindAllStringSubmatch(m[1], -1)
					if len(args) == 0 {
						t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					}
					for _, arg := range args {
						re, err := regexp.Compile(unquote(arg[1]))
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
						}
						out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return out
}

func matchExpectation(expects []*expectation, f analysis.Finding) bool {
	for _, e := range expects {
		if !e.matched && e.file == f.Pos.Filename && e.line == f.Pos.Line && e.re.MatchString(f.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// unquote undoes the minimal escaping the want syntax needs (\" and \\).
func unquote(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) && (s[i+1] == '"' || s[i+1] == '\\') {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// Pos is a tiny convenience for fixtures that need a token.Position in
// error messages (kept exported for symmetry with x/tools).
func Pos(fset *token.FileSet, p token.Pos) string {
	return fmt.Sprintf("%v", fset.Position(p))
}
