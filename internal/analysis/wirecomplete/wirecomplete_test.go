package wirecomplete_test

import (
	"testing"

	"dgs/internal/analysis/analysistest"
	"dgs/internal/analysis/wirecomplete"
)

func TestWirecomplete(t *testing.T) {
	analysistest.Run(t, "testdata", wirecomplete.Analyzer, "wirecompletebad", "wirecompleteok", "wirecompletenoex")
}
