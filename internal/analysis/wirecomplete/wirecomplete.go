// Package wirecomplete checks the wire protocol's four parallel
// surfaces stay in sync: in any package that declares a `type Kind` with
// constants and a package-level Decode function, every Kind constant
// must (1) be returned by some payload's Kind() method (the encode
// side), (2) have a case in the Decode switch, (3) have a case in
// Kind.String, and (4) appear as a key in the exemplars() map that
// seeds the round-trip fuzz corpus.
//
// History motivates the check: adding a message (KindDelta, PR 2) means
// touching four places in two files, and missing one compiles cleanly —
// the receiver then drops the frame as unknown (a silent protocol hole)
// or the fuzzer simply never exercises the codec. This analyzer turns
// each forgotten surface into a build-gate diagnostic anchored at the
// Kind constant's declaration.
package wirecomplete

import (
	"go/ast"
	"go/token"
	"go/types"

	"dgs/internal/analysis"
)

// Analyzer implements the wirecomplete check.
var Analyzer = &analysis.Analyzer{
	Name: "wirecomplete",
	Doc:  "every wire Kind constant must have an encode Kind() method, a Decode case, a String case, and an exemplars() round-trip entry",
	Run:  run,
}

// surface is one of the per-Kind registration points.
type surface struct {
	name string // diagnostic phrasing
	got  map[types.Object]bool
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	kindType, consts := kindConstants(pass)
	if kindType == nil || len(consts) == 0 || !hasDecode(pass.Pkg.Files) {
		return nil // not a wire-protocol package
	}

	encode := &surface{name: "no payload Kind() method returns it (encode side unregistered)", got: map[types.Object]bool{}}
	decode := &surface{name: "no case in Decode (receivers drop the frame as unknown)", got: map[types.Object]bool{}}
	str := &surface{name: "no case in Kind.String (logs and metrics print a numeric kind)", got: map[types.Object]bool{}}
	exemplar := &surface{name: "no exemplars() entry (round-trip fuzz corpus never exercises it)", got: map[types.Object]bool{}}

	sawExemplars := false
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			switch {
			case fd.Recv == nil && fd.Name.Name == "Decode":
				collectCaseIdents(info, fd.Body, decode.got)
			case fd.Recv != nil && fd.Name.Name == "String" && recvIs(info, fd, kindType):
				collectCaseIdents(info, fd.Body, str.got)
			case fd.Recv != nil && fd.Name.Name == "Kind":
				collectReturnIdents(info, fd.Body, encode.got)
			case fd.Recv == nil && fd.Name.Name == "exemplars":
				sawExemplars = true
				collectMapKeys(info, fd.Body, exemplar.got)
			}
		}
	}

	surfaces := []*surface{encode, decode, str}
	if sawExemplars {
		surfaces = append(surfaces, exemplar)
	} else {
		pass.Reportf(kindType.Obj().Pos(), "package has Kind/Decode but no exemplars() fixture map; the round-trip fuzz corpus cannot cover the protocol")
	}
	for _, c := range consts {
		for _, s := range surfaces {
			if !s.got[c.obj] {
				pass.Reportf(c.pos, "%s: %s", c.obj.Name(), s.name)
			}
		}
	}
	return nil
}

type kindConst struct {
	obj types.Object
	pos token.Pos
}

// kindConstants finds the package's `type Kind` and its constants, in
// declaration order (diagnostics anchor at each constant's ValueSpec).
func kindConstants(pass *analysis.Pass) (*types.Named, []kindConst) {
	obj := pass.Pkg.Types.Scope().Lookup("Kind")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil, nil
	}
	var out []kindConst
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for _, name := range vs.Names {
					c, ok := pass.Pkg.Info.Defs[name].(*types.Const)
					if ok && types.Identical(c.Type(), named) {
						out = append(out, kindConst{obj: c, pos: name.Pos()})
					}
				}
			}
		}
	}
	return named, out
}

func hasDecode(files []*ast.File) bool {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == "Decode" {
				return true
			}
		}
	}
	return false
}

func recvIs(info *types.Info, fd *ast.FuncDecl, named *types.Named) bool {
	if len(fd.Recv.List) != 1 {
		return false
	}
	tv, ok := info.Types[fd.Recv.List[0].Type]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.Identical(t, named)
}

// collectCaseIdents records which objects appear in switch case
// expressions within body.
func collectCaseIdents(info *types.Info, body *ast.BlockStmt, got map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			if id, ok := e.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					got[obj] = true
				}
			}
		}
		return true
	})
}

// collectReturnIdents records objects returned from body.
func collectReturnIdents(info *types.Info, body *ast.BlockStmt, got map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, e := range ret.Results {
			if id, ok := e.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					got[obj] = true
				}
			}
		}
		return true
	})
}

// collectMapKeys records objects used as composite-literal keys in body.
func collectMapKeys(info *types.Info, body *ast.BlockStmt, got map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		kv, ok := n.(*ast.KeyValueExpr)
		if !ok {
			return true
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				got[obj] = true
			}
		}
		return true
	})
}
