// Package wirecompletebad declares a wire protocol with holes: KindB
// and KindC are missing one or more of the four registration surfaces.
package wirecompletebad

type Kind uint8

const (
	KindA Kind = iota + 1
	KindB // want "KindB: no case in Kind.String" "KindB: no exemplars\\(\\) entry"
	KindC // want "KindC: no payload Kind\\(\\) method" "KindC: no case in Decode" "KindC: no case in Kind.String" "KindC: no exemplars\\(\\) entry"
)

type Payload interface {
	Kind() Kind
}

type A struct{}

func (*A) Kind() Kind { return KindA }

type B struct{}

func (*B) Kind() Kind { return KindB }

func Decode(b []byte) (Payload, error) {
	switch Kind(b[0]) {
	case KindA:
		return &A{}, nil
	case KindB:
		return &B{}, nil
	}
	return nil, nil
}

func (k Kind) String() string {
	switch k {
	case KindA:
		return "a"
	}
	return "?"
}

func exemplars() map[Kind]Payload {
	return map[Kind]Payload{
		KindA: &A{},
	}
}

var _ = exemplars
