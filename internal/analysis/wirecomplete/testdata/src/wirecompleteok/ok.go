// Package wirecompleteok keeps all four wire surfaces in sync for every
// Kind constant; wirecomplete must stay silent here.
package wirecompleteok

type Kind uint8

const (
	KindA Kind = iota + 1
	KindB
)

type Payload interface {
	Kind() Kind
}

type A struct{}

func (*A) Kind() Kind { return KindA }

type B struct{}

func (*B) Kind() Kind { return KindB }

func Decode(b []byte) (Payload, error) {
	switch Kind(b[0]) {
	case KindA:
		return &A{}, nil
	case KindB:
		return &B{}, nil
	}
	return nil, nil
}

func (k Kind) String() string {
	switch k {
	case KindA:
		return "a"
	case KindB:
		return "b"
	}
	return "?"
}

func exemplars() map[Kind]Payload {
	return map[Kind]Payload{
		KindA: &A{},
		KindB: &B{},
	}
}

var _ = exemplars
