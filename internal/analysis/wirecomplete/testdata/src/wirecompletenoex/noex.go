// Package wirecompletenoex has a Kind/Decode pair but never defines the
// exemplars() fixture map, so the fuzz corpus cannot cover the protocol.
package wirecompletenoex

type Kind uint8 // want "no exemplars\\(\\) fixture map"

const KindX Kind = 1 // want "KindX: no payload Kind\\(\\) method" "KindX: no case in Decode" "KindX: no case in Kind.String"

func Decode(b []byte) (any, error) { return nil, nil }

func (k Kind) String() string { return "" }
