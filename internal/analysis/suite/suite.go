// Package suite aggregates the dgsvet analyzers. It exists as its own
// package (rather than a registry in internal/analysis) so each
// analyzer can import the framework without a cycle.
package suite

import (
	"dgs/internal/analysis"
	"dgs/internal/analysis/ctxblock"
	"dgs/internal/analysis/detrand"
	"dgs/internal/analysis/locksafe"
	"dgs/internal/analysis/metricnames"
	"dgs/internal/analysis/regconsistent"
	"dgs/internal/analysis/senterr"
	"dgs/internal/analysis/wirecomplete"
)

// All returns every dgsvet analyzer, in the order they run and are
// listed by dgsvet -list.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxblock.Analyzer,
		detrand.Analyzer,
		locksafe.Analyzer,
		metricnames.Analyzer,
		regconsistent.Analyzer,
		senterr.Analyzer,
		wirecomplete.Analyzer,
	}
}
