// Package analysis is the repository's static-analysis framework: a
// stdlib-only reimplementation of the golang.org/x/tools/go/analysis
// shape (Analyzer, Pass, Diagnostic) driven by the offline loader in
// internal/analysis/load. The concrete analyzers under
// internal/analysis/* machine-check invariants that otherwise live only
// in DESIGN.md prose — lock ordering, wire-kind exhaustiveness,
// registry consistency, context-guarded blocking, determinism of the
// partitioning paths, sentinel-error comparison — and cmd/dgsvet runs
// them as part of the build gate. docs/ANALYSIS.md documents each
// analyzer and the //lint:allow escape hatch.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"

	"dgs/internal/analysis/load"
)

// An Analyzer checks one invariant. Exactly one of Run (per-package)
// and RunModule (whole-module, for cross-package registries) is set.
type Analyzer struct {
	// Name is the analyzer's identifier: diagnostics are prefixed with
	// it and //lint:allow annotations name it.
	Name string
	// Doc is the one-paragraph invariant description (docs lint checks
	// docs/ANALYSIS.md has a matching section).
	Doc string
	// Run checks one package.
	Run func(*Pass) error
	// RunModule checks the whole module at once.
	RunModule func(*ModulePass) error
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *load.Package
	Module   *load.Module
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ModulePass carries the whole module through a module analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Module   *load.Module
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a resolved diagnostic: position, owning analyzer, message.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// allowRe matches the suppression annotation: //lint:allow name1,name2
// optionally followed by a free-form reason. The annotation on the
// diagnostic's line — or the line directly above it — suppresses the
// named analyzers' findings there.
var allowRe = regexp.MustCompile(`//\s*lint:allow\s+([A-Za-z0-9_,-]+)`)

// allowIndex records, per file line, which analyzers are allowed.
type allowIndex map[string]map[int]map[string]bool

func buildAllowIndex(fset *token.FileSet, pkgs []*load.Package) allowIndex {
	idx := make(allowIndex)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := allowRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					byLine := idx[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						idx[pos.Filename] = byLine
					}
					names := byLine[pos.Line]
					if names == nil {
						names = make(map[string]bool)
						byLine[pos.Line] = names
					}
					for _, n := range strings.Split(m[1], ",") {
						names[strings.TrimSpace(n)] = true
					}
				}
			}
		}
	}
	return idx
}

func (idx allowIndex) allows(analyzer string, pos token.Position) bool {
	byLine := idx[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if names := byLine[line]; names != nil && (names[analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

// Run applies the analyzers to the module and returns the surviving
// findings sorted by position. keep filters which packages the
// per-package analyzers visit (nil visits all); module analyzers always
// see the full module so cross-package registries stay complete, but
// their findings are filtered to kept packages' files.
func Run(mod *load.Module, analyzers []*Analyzer, keep func(pkg *load.Package) bool) ([]Finding, error) {
	if keep == nil {
		keep = func(*load.Package) bool { return true }
	}
	allow := buildAllowIndex(mod.Fset, mod.Pkgs)
	keptFiles := make(map[string]bool)
	for _, pkg := range mod.Pkgs {
		if keep(pkg) {
			for _, f := range pkg.Files {
				keptFiles[mod.Fset.File(f.Pos()).Name()] = true
			}
		}
	}

	var findings []Finding
	record := func(a *Analyzer, d Diagnostic) {
		pos := mod.Fset.Position(d.Pos)
		if !keptFiles[pos.Filename] || allow.allows(a.Name, pos) {
			return
		}
		findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
	}
	for _, a := range analyzers {
		switch {
		case a.RunModule != nil:
			mp := &ModulePass{Analyzer: a, Fset: mod.Fset, Module: mod}
			mp.report = func(d Diagnostic) { record(a, d) }
			if err := a.RunModule(mp); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		case a.Run != nil:
			for _, pkg := range mod.Pkgs {
				if !keep(pkg) {
					continue
				}
				p := &Pass{Analyzer: a, Fset: mod.Fset, Pkg: pkg, Module: mod}
				p.report = func(d Diagnostic) { record(a, d) }
				if err := a.Run(p); err != nil {
					return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
				}
			}
		default:
			return nil, fmt.Errorf("%s: analyzer has no Run function", a.Name)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// --- shared type/AST helpers for the analyzers ---

// IsPkgType reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func IsPkgType(t interface{ String() string }, pkgPath, name string) bool {
	s := t.String()
	return s == pkgPath+"."+name || s == "*"+pkgPath+"."+name
}

// CalleeIdent returns the identifier a call expression invokes — the
// rightmost name of f() / x.f() — or nil.
func CalleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn
	case *ast.SelectorExpr:
		return fn.Sel
	}
	return nil
}
