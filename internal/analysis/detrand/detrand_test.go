package detrand_test

import (
	"testing"

	"dgs/internal/analysis/analysistest"
	"dgs/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "detrandbad", "detrandok")
}
