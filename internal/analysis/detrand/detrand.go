// Package detrand guards the deterministic paths — packages that opt in
// with a //dgsvet:deterministic comment near their package clause
// (internal/partition, internal/simulation, internal/graph): the seeded
// partitioners promise "runs with equal seeds produce identical
// assignments" (WithPartitionSeed), and the Simulate oracle must be
// bit-stable for the property harness to diff algorithm outputs against
// it.
//
// Three things break that promise silently:
//
//   - the global math/rand functions (process-wide state; another
//     goroutine's draw changes this run) — a seeded *rand.Rand must be
//     threaded instead;
//   - time.Now used for anything but duration measurement (build-time
//     stamping is fine, decisions keyed on wall time are not);
//   - iterating a map while appending to a slice that is never sorted —
//     Go randomizes map iteration order per run, so the slice's order
//     (and everything derived from it) differs run to run.
//
// A site that is genuinely order-insensitive can carry
// //lint:allow detrand with a reason.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dgs/internal/analysis"
)

// Marker is the opt-in comment a deterministic package carries.
const Marker = "//dgsvet:deterministic"

// Analyzer implements the detrand check.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "flags global math/rand, non-timing time.Now, and unsorted map-iteration results in //dgsvet:deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !optedIn(pass.Pkg.Files) {
		return nil
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// Test files exercise the deterministic contract but may use
		// the global rand for workload setup; scope to library files.
		name := pass.Fset.File(file.Pos()).Name()
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		checkGlobalRand(pass, info, file)
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkTimeNow(pass, info, fd)
				checkMapOrder(pass, info, fd)
			}
		}
	}
	return nil
}

// optedIn reports whether any file carries the deterministic marker.
func optedIn(files []*ast.File) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, Marker) {
					return true
				}
			}
		}
	}
	return false
}

// checkGlobalRand flags package-level math/rand and math/rand/v2
// function calls (methods on a seeded *rand.Rand are the sanctioned
// source of randomness).
func checkGlobalRand(pass *analysis.Pass, info *types.Info, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return true
		}
		// Methods have receivers (a *rand.Rand the caller seeded);
		// package-level functions draw from the global source.
		if fn.Type().(*types.Signature).Recv() != nil {
			return true
		}
		// Constructors build the sanctioned source.
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return true
		}
		pass.Reportf(sel.Pos(), "global %s.%s draws from process-wide state; use a seeded *rand.Rand", path, fn.Name())
		return true
	})
}

// span is a source region [pos, end).
type span struct{ pos, end token.Pos }

func (s span) contains(p token.Pos) bool { return s.pos <= p && p < s.end }

// timingSpans collects the regions of fd occupied by time.Since(...) or
// time.Time .Sub(...) calls — the only sanctioned uses of a wall-clock
// reading on a deterministic path.
func timingSpans(info *types.Info, fd *ast.FuncDecl) []span {
	var spans []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return true
		}
		if fn.Name() == "Since" || (fn.Name() == "Sub" && fn.Type().(*types.Signature).Recv() != nil) {
			spans = append(spans, span{call.Pos(), call.End()})
		}
		return true
	})
	return spans
}

func inSpans(spans []span, p token.Pos) bool {
	for _, s := range spans {
		if s.contains(p) {
			return true
		}
	}
	return false
}

// checkTimeNow flags time.Now readings used beyond duration
// measurement: a call is clean when it sits inside a timing expression,
// or when it is assigned to a variable whose every use sits inside one.
func checkTimeNow(pass *analysis.Pass, info *types.Info, fd *ast.FuncDecl) {
	spans := timingSpans(info, fd)

	// Variables assigned directly from time.Now().
	nowVars := map[types.Object]bool{}
	assignedCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isTimeNowCall(info, call) || i >= len(assign.Lhs) {
				continue
			}
			id, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				nowVars[obj] = true
				assignedCalls[call] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isTimeNowCall(info, n) && !assignedCalls[n] && !inSpans(spans, n.Pos()) {
				pass.Reportf(n.Pos(), "time.Now on a deterministic path; only duration measurement (time.Since/.Sub) is allowed")
			}
		case *ast.Ident:
			obj := info.Uses[n]
			if obj != nil && nowVars[obj] && !inSpans(spans, n.Pos()) {
				pass.Reportf(n.Pos(), "time.Now value %s used beyond duration measurement on a deterministic path", n.Name)
			}
		}
		return true
	})
}

func isTimeNowCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Now" {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "time"
}

// checkMapOrder flags map-range loops that append to a slice which the
// function never sorts afterwards: the append order is the randomized
// iteration order.
func checkMapOrder(pass *analysis.Pass, info *types.Info, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		// Slices appended to inside the loop body.
		appended := map[types.Object]*ast.CallExpr{}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			assign, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range assign.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(assign.Lhs) {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || info.Uses[id] != types.Universe.Lookup("append") {
					continue
				}
				if id, ok := assign.Lhs[i].(*ast.Ident); ok {
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj != nil {
						appended[obj] = call
					}
				}
			}
			return true
		})
		for obj, call := range appended {
			if !sortedAfter(info, fd, obj, rng.End()) {
				pass.Reportf(call.Pos(), "append to %s under map iteration: order is randomized per run; sort %s afterwards or iterate sorted keys",
					obj.Name(), obj.Name())
			}
		}
		return true
	})
}

// sortedAfter reports whether obj is passed to a sorting call —
// sort.*, slices.Sort*, or any helper whose name mentions "sort"
// (e.g. graph.sortEdgeList) — positioned after pos in fd.
func sortedAfter(info *types.Info, fd *ast.FuncDecl, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		name := ""
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			name = fn.Name
		case *ast.SelectorExpr:
			if x, ok := fn.X.(*ast.Ident); ok {
				name = x.Name + "."
			}
			name += fn.Sel.Name
		}
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		for _, arg := range call.Args {
			used := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && info.Uses[id] == obj {
					used = true
				}
				return !used
			})
			if used {
				found = true
			}
		}
		return !found
	})
	return found
}
