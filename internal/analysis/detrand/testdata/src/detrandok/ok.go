//dgsvet:deterministic

// Package detrandok is clean under detrand: seeded *rand.Rand, timing
// only, sorted map-iteration output.
package detrandok

import (
	"math/rand"
	"sort"
	"time"
)

func seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

func timed() (elapsed time.Duration) {
	start := time.Now()
	work()
	return time.Since(start)
}

func timedSub() time.Duration {
	start := time.Now()
	end := time.Now()
	return end.Sub(start)
}

func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func work() {}
