//dgsvet:deterministic

// Package detrandbad violates the determinism invariant three ways:
// global math/rand, wall-clock decisions, and map-iteration-order
// dependence.
package detrandbad

import (
	"math/rand"
	"time"
)

func globalRand(n int) int {
	return rand.Intn(n) // want "global math/rand.Intn draws from process-wide state"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle"
}

func wallClockDecision() int64 {
	now := time.Now()
	return now.UnixNano() // want "time.Now value now used beyond duration measurement"
}

func inlineNow() int64 {
	return time.Now().Unix() // want "time.Now on a deterministic path"
}

func mapOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys under map iteration"
	}
	return keys
}
