package senterr_test

import (
	"testing"

	"dgs/internal/analysis/analysistest"
	"dgs/internal/analysis/senterr"
)

func TestSenterr(t *testing.T) {
	analysistest.Run(t, "testdata", senterr.Analyzer, "senterrbad", "senterrok")
}
