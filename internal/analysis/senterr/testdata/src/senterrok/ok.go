// Package senterrok is clean under senterr: comparisons go through
// errors.Is, nil checks stay direct, and the one intentional identity
// comparison carries an allow annotation.
package senterrok

import (
	"errors"
	"fmt"
)

// ErrClosed is a sentinel; call sites wrap it.
var ErrClosed = errors.New("closed")

func open() error { return fmt.Errorf("open: %w", ErrClosed) }

func checkIs() bool {
	err := open()
	return errors.Is(err, ErrClosed)
}

func checkNil() bool {
	err := open()
	return err == nil // nil comparison is not a sentinel comparison
}

func identity(err error) bool {
	//lint:allow senterr this API documents exact identity
	return err == ErrClosed
}

func nonError(a, b int) bool { return a == b }
