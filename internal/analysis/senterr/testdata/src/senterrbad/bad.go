// Package senterrbad violates the senterr invariant: sentinel errors
// compared with == / != instead of errors.Is.
package senterrbad

import (
	"errors"
	"fmt"
	"io"
)

// ErrClosed is a sentinel; call sites wrap it.
var ErrClosed = errors.New("closed")

var errInternal = errors.New("internal")

func open() error { return fmt.Errorf("open: %w", ErrClosed) }

func checkEq() bool {
	err := open()
	return err == ErrClosed // want "error == ErrClosed: sentinel may be wrapped, use errors.Is"
}

func checkNeq() bool {
	err := open()
	return err != errInternal // want "error != errInternal: sentinel may be wrapped, use errors.Is"
}

func checkStdlib(err error) bool {
	return err == io.ErrUnexpectedEOF // want "error == ErrUnexpectedEOF: sentinel may be wrapped, use errors.Is"
}

func reversed(err error) bool {
	return ErrClosed == err // want "error == ErrClosed: sentinel may be wrapped, use errors.Is"
}
