// Package senterr flags == / != comparisons of an error value against a
// package-level sentinel (a variable named Err… of type error), which
// break as soon as a call site wraps the sentinel with fmt.Errorf("…%w").
// dgs.ErrClosed is documented as "returned wrapped; test with
// errors.Is", so a direct comparison is a latent bug even when it
// happens to pass today. Use errors.Is(err, pkg.ErrX) instead; a
// comparison that really must be identity (rare) can carry
// //lint:allow senterr with a reason.
package senterr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dgs/internal/analysis"
)

// Analyzer implements the senterr check.
var Analyzer = &analysis.Analyzer{
	Name: "senterr",
	Doc:  "flags ==/!= comparisons against Err… sentinel variables; wrapped sentinels make them silently false — use errors.Is",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			var sentinel types.Object
			var other ast.Expr
			if obj := sentinelObj(info, bin.X); obj != nil {
				sentinel, other = obj, bin.Y
			} else if obj := sentinelObj(info, bin.Y); obj != nil {
				sentinel, other = obj, bin.X
			}
			if sentinel == nil {
				return true
			}
			// Comparing a sentinel against nil (or another sentinel) is
			// an identity check by construction, not a wrapping hazard.
			if isNil(info, other) || sentinelObj(info, other) != nil {
				return true
			}
			op := "=="
			if bin.Op == token.NEQ {
				op = "!="
			}
			pass.Reportf(bin.OpPos, "error %s %s: sentinel may be wrapped, use errors.Is", op, sentinel.Name())
			return true
		})
	}
	return nil
}

// sentinelObj resolves e to a package-level error variable named Err…
// (or errSomething), in any package.
func sentinelObj(info *types.Info, e ast.Expr) types.Object {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	obj := info.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() == nil || v.Parent().Parent() != types.Universe {
		return nil // not package-level
	}
	name := v.Name()
	if !strings.HasPrefix(name, "Err") && !strings.HasPrefix(name, "err") {
		return nil
	}
	if !types.Implements(v.Type(), errorIface()) && v.Type().String() != "error" {
		return nil
	}
	return v
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

var errIface *types.Interface

func errorIface() *types.Interface {
	if errIface == nil {
		errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	}
	return errIface
}
