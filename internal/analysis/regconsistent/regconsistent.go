// Package regconsistent is the module-wide registry checker: the repo
// wires algorithms and partitioners together through strings and an
// enum, and the compiler verifies none of it.
//
// Enum surfaces (for any package declaring `type Algorithm` with
// constants): every switch over the type in non-test files, every
// package-level map[string]Algorithm literal, and every composite
// literal whose declaration carries //dgsvet:exhaustive (the
// conformance matrix) must mention every constant — adding AlgoX and
// forgetting one site otherwise surfaces as "unknown algorithm" at
// query time, or worse, as a conformance matrix that silently stops
// covering the new algorithm.
//
// String surfaces: names passed to RegisterAlgorithm and
// RegisterPlanner must be unique; every constant SessionSpec{Algo: ...}
// value must match a registered algorithm name (a typo opens a session
// no site can build) and every non-empty constant
// SessionSpec{Planner: ...} a registered planner name (sites reject
// plans they cannot attribute); every constant strategy name passed to
// PartitionBy/PartitionWith must match a registered partitioner.
// Deliberate negatives (tests probing the unknown-name error path)
// carry //lint:allow regconsistent.
package regconsistent

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"dgs/internal/analysis"
	"dgs/internal/analysis/load"
)

// ExhaustiveMarker annotates a composite literal's declaration that
// must cover every Algorithm constant.
const ExhaustiveMarker = "//dgsvet:exhaustive"

// Analyzer implements the regconsistent check.
var Analyzer = &analysis.Analyzer{
	Name:      "regconsistent",
	Doc:       "Algorithm switches/maps/marked literals must be exhaustive; RegisterAlgorithm/RegisterPlanner names unique; SessionSpec.Algo, SessionSpec.Planner and partition strategy strings must be registered",
	RunModule: runModule,
}

func runModule(pass *analysis.ModulePass) error {
	mod := pass.Module

	// Enum surfaces, one sweep per Algorithm type found.
	for _, enum := range findEnums(mod) {
		checkEnum(pass, mod, enum)
	}

	// String surfaces.
	algos := map[string]token.Pos{}    // registered algorithm name -> first site
	planners := map[string]token.Pos{} // registered planner name -> first site
	parts := map[string]bool{}         // registered partitioner names
	var specUses, planUses, stratUses []strUse // to vet after collection
	for _, pkg := range mod.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					switch calleeName(n) {
					case "RegisterAlgorithm":
						if len(n.Args) >= 1 {
							if name, ok := constString(info, n.Args[0]); ok {
								if first, dup := algos[name]; dup {
									pass.Reportf(n.Args[0].Pos(), "algorithm %q registered more than once (first at %s)",
										name, mod.Fset.Position(first))
								} else {
									algos[name] = n.Args[0].Pos()
								}
							}
						}
					case "RegisterPlanner":
						if len(n.Args) >= 1 {
							if name, ok := constString(info, n.Args[0]); ok {
								if first, dup := planners[name]; dup {
									pass.Reportf(n.Args[0].Pos(), "planner %q registered more than once (first at %s)",
										name, mod.Fset.Position(first))
								} else {
									planners[name] = n.Args[0].Pos()
								}
							}
						}
					case "RegisterPartitioner":
						for _, arg := range n.Args {
							if name, ok := firstString(info, arg); ok {
								parts[name] = true
							}
						}
					case "PartitionBy", "PartitionWith":
						if len(n.Args) >= 2 {
							if name, ok := constString(info, n.Args[1]); ok {
								stratUses = append(stratUses, strUse{name, n.Args[1].Pos()})
							}
						}
					}
				case *ast.CompositeLit:
					if !isNamed(info, n, "SessionSpec") {
						return true
					}
					for _, el := range n.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						id, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						switch id.Name {
						case "Algo":
							if name, ok := constString(info, kv.Value); ok {
								specUses = append(specUses, strUse{name, kv.Value.Pos()})
							}
						case "Planner":
							// "" is the legitimate no-plan spec; only
							// non-empty constants must round-trip against
							// the planner registry.
							if name, ok := constString(info, kv.Value); ok && name != "" {
								planUses = append(planUses, strUse{name, kv.Value.Pos()})
							}
						}
					}
				}
				return true
			})
		}
	}
	for _, u := range specUses {
		if _, ok := algos[u.name]; !ok {
			pass.Reportf(u.pos, "SessionSpec.Algo %q matches no RegisterAlgorithm call; no site can build this session", u.name)
		}
	}
	for _, u := range planUses {
		if _, ok := planners[u.name]; !ok {
			pass.Reportf(u.pos, "SessionSpec.Planner %q matches no RegisterPlanner call; sites reject plans they cannot attribute", u.name)
		}
	}
	for _, u := range stratUses {
		if !parts[u.name] {
			pass.Reportf(u.pos, "partition strategy %q matches no registered partitioner", u.name)
		}
	}
	return nil
}

type strUse struct {
	name string
	pos  token.Pos
}

// enum is a discovered Algorithm type with its constants.
type enum struct {
	typ    *types.Named
	consts []*types.Const // declaration order not guaranteed; sorted by name for messages
}

// findEnums locates every named type `Algorithm` with at least one
// package-level constant of that type.
func findEnums(mod *load.Module) []enum {
	var out []enum
	for _, pkg := range mod.Pkgs {
		obj, ok := pkg.Types.Scope().Lookup("Algorithm").(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		var consts []*types.Const
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
				consts = append(consts, c)
			}
		}
		if len(consts) > 0 {
			out = append(out, enum{typ: named, consts: consts})
		}
	}
	return out
}

// checkEnum vets the three exhaustiveness surfaces of one enum.
func checkEnum(pass *analysis.ModulePass, mod *load.Module, e enum) {
	for _, pkg := range mod.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			isTest := strings.HasSuffix(mod.Fset.File(file.Pos()).Name(), "_test.go")
			for _, d := range file.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					if d.Body == nil || isTest {
						continue
					}
					ast.Inspect(d.Body, func(n ast.Node) bool {
						sw, ok := n.(*ast.SwitchStmt)
						if !ok || sw.Tag == nil {
							return true
						}
						tv, ok := info.Types[sw.Tag]
						if !ok || !types.Identical(tv.Type, e.typ) {
							return true
						}
						got := map[types.Object]bool{}
						for _, c := range sw.Body.List {
							for _, expr := range c.(*ast.CaseClause).List {
								if id, ok := expr.(*ast.Ident); ok {
									got[info.Uses[id]] = true
								} else if sel, ok := expr.(*ast.SelectorExpr); ok {
									got[info.Uses[sel.Sel]] = true
								}
							}
						}
						if missing := missingNames(e.consts, got); missing != "" {
							pass.Reportf(sw.Pos(), "switch over %s misses %s", e.typ.Obj().Name(), missing)
						}
						return true
					})
				case *ast.GenDecl:
					if d.Tok != token.VAR {
						continue
					}
					marked := hasMarker(d.Doc)
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, v := range vs.Values {
							cl, ok := v.(*ast.CompositeLit)
							if !ok {
								continue
							}
							tv, ok := info.Types[cl]
							if !ok {
								continue
							}
							switch t := tv.Type.Underlying().(type) {
							case *types.Map:
								// Only maps valued in the enum, outside tests.
								if isTest || !types.Identical(t.Elem(), e.typ) {
									continue
								}
								checkLitValues(pass, info, cl, e, "map")
							case *types.Slice:
								// Only literals the author marked exhaustive.
								if !marked || !types.Identical(t.Elem(), e.typ) {
									continue
								}
								checkLitValues(pass, info, cl, e, ExhaustiveMarker+" literal")
							}
						}
					}
				}
			}
		}
	}
}

// checkLitValues reports enum constants absent from the literal's
// values (map literals) or elements (slice literals).
func checkLitValues(pass *analysis.ModulePass, info *types.Info, cl *ast.CompositeLit, e enum, what string) {
	got := map[types.Object]bool{}
	for _, el := range cl.Elts {
		v := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		if id, ok := v.(*ast.Ident); ok {
			got[info.Uses[id]] = true
		} else if sel, ok := v.(*ast.SelectorExpr); ok {
			got[info.Uses[sel.Sel]] = true
		}
	}
	if missing := missingNames(e.consts, got); missing != "" {
		pass.Reportf(cl.Pos(), "%s over %s misses %s", what, e.typ.Obj().Name(), missing)
	}
}

func missingNames(consts []*types.Const, got map[types.Object]bool) string {
	var missing []string
	for _, c := range consts {
		if !got[c] {
			missing = append(missing, c.Name())
		}
	}
	sort.Strings(missing)
	return strings.Join(missing, ", ")
}

func hasMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, ExhaustiveMarker) {
			return true
		}
	}
	return false
}

// isNamed reports whether the composite literal's type (after pointer
// indirection) is a named type with the given name, any package.
func isNamed(info *types.Info, cl *ast.CompositeLit, name string) bool {
	tv, ok := info.Types[cl]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == name
}

func calleeName(call *ast.CallExpr) string {
	if id := analysis.CalleeIdent(call); id != nil {
		return id.Name
	}
	return ""
}

// constString evaluates e to a constant string value.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// firstString returns the first constant string found in e's subtree —
// for RegisterPartitioner(funcPartitioner{"name", ...}) shapes where
// the name is the literal's leading field.
func firstString(info *types.Info, e ast.Expr) (string, bool) {
	var name string
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if s, ok := constString(info, expr); ok {
			// Skip the composite literal itself (not constant) and dig
			// until an actual constant expression.
			name, found = s, true
			return false
		}
		return true
	})
	return name, found
}
