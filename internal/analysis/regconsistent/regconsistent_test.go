package regconsistent_test

import (
	"testing"

	"dgs/internal/analysis/analysistest"
	"dgs/internal/analysis/regconsistent"
)

func TestRegconsistent(t *testing.T) {
	analysistest.Run(t, "testdata", regconsistent.Analyzer, "regbad", "regok")
}
