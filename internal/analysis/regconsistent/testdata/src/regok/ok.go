// Package regok keeps every registry surface consistent; regconsistent
// must stay silent here.
package regok

type Algorithm int

const (
	AlgoX Algorithm = iota
	AlgoY
)

func name(a Algorithm) string {
	switch a {
	case AlgoX:
		return "x"
	case AlgoY:
		return "y"
	}
	return "?"
}

var byName = map[string]Algorithm{
	"x": AlgoX,
	"y": AlgoY,
}

//dgsvet:exhaustive
var matrix = []Algorithm{AlgoX, AlgoY}

// partial is fine: only marked literals must be exhaustive.
var partial = []Algorithm{AlgoX}

type SessionSpec struct{ Algo, Planner string }

func RegisterAlgorithm(name string, f func()) {}

func RegisterPlanner(name string, f func()) {}

type part struct {
	name string
	fn   func()
}

func RegisterPartitioner(p part) {}

func PartitionWith(g any, name string, n int) {}

func init() {
	RegisterAlgorithm("gamma", nil)
	RegisterPlanner("greedy", nil)
	RegisterPartitioner(part{"ldg", func() {}})
}

func use() {
	_ = SessionSpec{Algo: "gamma"}
	_ = SessionSpec{Algo: "gamma", Planner: "greedy"}
	// An empty planner is the legitimate no-plan spec.
	_ = SessionSpec{Algo: "gamma", Planner: ""}
	PartitionWith(nil, "ldg", 4)
	//lint:allow regconsistent — probing the unknown-name error path
	_ = SessionSpec{Algo: "deliberately-unknown"}
}
