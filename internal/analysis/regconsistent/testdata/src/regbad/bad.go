// Package regbad violates every regconsistent surface: a non-exhaustive
// Algorithm switch, an incomplete name map, an incomplete marked
// matrix, a duplicate registration, an unknown session algorithm, and
// an unknown partition strategy.
package regbad

type Algorithm int

const (
	AlgoA Algorithm = iota
	AlgoB
	AlgoC
)

func pick(a Algorithm) string {
	switch a { // want "switch over Algorithm misses AlgoC"
	case AlgoA:
		return "a"
	case AlgoB:
		return "b"
	default:
		return "?"
	}
}

var byName = map[string]Algorithm{ // want "map over Algorithm misses AlgoB, AlgoC"
	"a": AlgoA,
}

//dgsvet:exhaustive
var matrix = []Algorithm{AlgoA, AlgoB} // want "exhaustive literal over Algorithm misses AlgoC"

type SessionSpec struct{ Algo, Planner string }

func RegisterAlgorithm(name string, f func()) {}

func RegisterPlanner(name string, f func()) {}

func init() {
	RegisterAlgorithm("alpha", nil)
	RegisterAlgorithm("alpha", nil) // want "algorithm \"alpha\" registered more than once"
	RegisterPlanner("eagerish", nil)
	RegisterPlanner("eagerish", nil) // want "planner \"eagerish\" registered more than once"
}

func open() SessionSpec {
	return SessionSpec{Algo: "beta"} // want "SessionSpec.Algo \"beta\" matches no RegisterAlgorithm call"
}

func openPlanned() SessionSpec {
	return SessionSpec{Algo: "alpha", Planner: "eager"} // want "SessionSpec.Planner \"eager\" matches no RegisterPlanner call"
}

type part struct {
	name string
	fn   func()
}

func RegisterPartitioner(p part) {}

func PartitionBy(g any, name string, n int) {}

func init() {
	RegisterPartitioner(part{"random", func() {}})
	PartitionBy(nil, "random", 2)
	PartitionBy(nil, "nope", 4) // want "partition strategy \"nope\" matches no registered partitioner"
}
