package ctxblock_test

import (
	"testing"

	"dgs/internal/analysis/analysistest"
	"dgs/internal/analysis/ctxblock"
)

func TestCtxblock(t *testing.T) {
	analysistest.Run(t, "testdata", ctxblock.Analyzer, "ctxblockbad", "ctxblockok")
}
