// Package ctxblockok is clean under ctxblock: every blocking operation
// on a context path is select-guarded by ctx.Done() or a default case,
// aliased done channels are understood, and functions without a ctx
// parameter are out of scope.
package ctxblockok

import (
	"context"
	"sync"
)

func guardedSend(ctx context.Context, ch chan int) error {
	select {
	case ch <- 1:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func guardedRecv(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func aliasedDone(ctx context.Context, ch chan int) (int, error) {
	done := ctx.Done()
	select {
	case v := <-ch:
		return v, nil
	case <-done:
		return 0, ctx.Err()
	}
}

func nonBlocking(ctx context.Context, ch chan int) bool {
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

// noCtx has no context parameter: its blocking ops are out of scope.
func noCtx(ch chan int, wg *sync.WaitGroup) int {
	wg.Wait()
	ch <- 5
	return <-ch
}

func spawned(ctx context.Context, ch chan int) {
	// The closure runs on its own goroutine's terms; out of scope.
	go func() { ch <- 1 }()
}
