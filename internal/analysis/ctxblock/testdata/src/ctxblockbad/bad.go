// Package ctxblockbad violates the ctxblock invariant: blocking
// operations on context-carrying paths without a ctx.Done() guard.
package ctxblockbad

import (
	"context"
	"sync"
)

func rawSend(ctx context.Context, ch chan int) {
	ch <- 1 // want "unguarded channel send"
}

func rawRecv(ctx context.Context, ch chan int) int {
	return <-ch // want "unguarded channel receive"
}

func unguardedSelect(ctx context.Context, a, b chan int) int {
	select { // want "select without ctx.Done\\(\\) or default case"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func rangeChan(ctx context.Context, ch chan int) (sum int) {
	for v := range ch { // want "range over channel cannot observe ctx.Done"
		sum += v
	}
	return sum
}

func wgWait(ctx context.Context, wg *sync.WaitGroup) {
	wg.Wait() // want "sync.WaitGroup.Wait cannot be abandoned"
}
