// Package ctxblock flags unguarded blocking operations on
// context-carrying paths: inside a function that takes a
// context.Context, channel sends/receives must sit in a select with a
// ctx.Done() (or default) case, range-over-channel is forbidden, and
// sync.WaitGroup.Wait / sync.Cond.Wait must not be called at all —
// neither can be abandoned when the context is cancelled.
//
// This is the cancellation contract of the session runtime: Query,
// Apply and the algorithm drivers promise prompt abandonment on ctx
// cancellation (DESIGN.md "Cancellation"), which one raw channel
// operation on the path silently breaks — the paper's protocols
// quiesce, but a dead site or a dropped session would park the
// goroutine forever. Closure bodies are exempt (they run on their own
// goroutines' terms); a deliberate block can carry
// //lint:allow ctxblock with a reason.
package ctxblock

import (
	"go/ast"
	"go/types"

	"dgs/internal/analysis"
)

// Analyzer implements the ctxblock check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxblock",
	Doc:  "flags blocking channel ops and Wait calls not select-guarded by ctx.Done() in functions that take a context.Context",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasCtxParam(info, fd) {
				continue
			}
			check(pass, info, fd)
		}
	}
	return nil
}

// hasCtxParam reports whether fd takes a context.Context parameter.
func hasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, f := range fd.Type.Params.List {
		if tv, ok := info.Types[f.Type]; ok && tv.Type.String() == "context.Context" {
			return true
		}
	}
	return false
}

// check walks fd's body (closures excluded), flagging unguarded
// blocking operations.
func check(pass *analysis.Pass, info *types.Info, fd *ast.FuncDecl) {
	// Comm-clause operations are legal iff their select is guarded.
	inComm := map[ast.Node]bool{}
	doneChans := doneAliases(info, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			guarded := false
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					guarded = true // default case: non-blocking select
					continue
				}
				markComm(inComm, cc.Comm)
				if commReceivesDone(info, cc.Comm, doneChans) {
					guarded = true
				}
			}
			if !guarded {
				pass.Reportf(n.Pos(), "select without ctx.Done() or default case blocks past cancellation")
			}
		case *ast.SendStmt:
			if !inComm[n] {
				pass.Reportf(n.Pos(), "unguarded channel send; use select with ctx.Done()")
			}
		case *ast.UnaryExpr:
			if isReceive(info, n) && !inComm[n] {
				pass.Reportf(n.Pos(), "unguarded channel receive; use select with ctx.Done()")
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					pass.Reportf(n.Pos(), "range over channel cannot observe ctx.Done(); receive in a guarded select loop")
				}
			}
		case *ast.CallExpr:
			if fn := waitCall(info, n); fn != "" {
				pass.Reportf(n.Pos(), "%s cannot be abandoned on ctx cancellation; restructure with a guarded channel", fn)
			}
		}
		return true
	})
}

// markComm records the comm statement's channel operation nodes.
func markComm(inComm map[ast.Node]bool, comm ast.Stmt) {
	switch c := comm.(type) {
	case *ast.SendStmt:
		inComm[c] = true
	case *ast.ExprStmt:
		inComm[c.X] = true
	case *ast.AssignStmt:
		for _, r := range c.Rhs {
			inComm[r] = true
		}
	}
}

// doneAliases collects local variables assigned from ctx.Done().
func doneAliases(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if !isDoneCall(info, rhs) {
				continue
			}
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					out[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// commReceivesDone reports whether the comm clause receives from
// ctx.Done() (directly or through a recorded alias).
func commReceivesDone(info *types.Info, comm ast.Stmt, doneChans map[types.Object]bool) bool {
	var recv ast.Expr
	switch c := comm.(type) {
	case *ast.ExprStmt:
		recv = c.X
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			recv = c.Rhs[0]
		}
	}
	u, ok := recv.(*ast.UnaryExpr)
	if !ok || !isReceive(info, u) {
		return false
	}
	if isDoneCall(info, u.X) {
		return true
	}
	if id, ok := u.X.(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil && doneChans[obj] {
			return true
		}
	}
	return false
}

// isDoneCall matches x.Done() where x is a context.Context.
func isDoneCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && tv.Type.String() == "context.Context"
}

func isReceive(info *types.Info, u *ast.UnaryExpr) bool {
	if u.Op.String() != "<-" {
		return false
	}
	tv, ok := info.Types[u.X]
	if !ok {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// waitCall resolves a call to sync.WaitGroup.Wait or sync.Cond.Wait.
func waitCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	return "sync." + recvTypeName(recv.Type()) + ".Wait"
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
