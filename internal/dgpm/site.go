package dgpm

// The per-site protocol logic of dGPM (Fig. 3/4): phase 1 partial
// evaluation on the start signal, phase 2 asynchronous exchange of
// falsified variables along the local dependency graph (procedure lMsg),
// plus the push operation, and phase 3 reporting local matches Q(Fi) to
// the coordinator.

import (
	"sort"

	"dgs/internal/cluster"
	"dgs/internal/graph"
	"dgs/internal/partition"
	"dgs/internal/pattern"
	"dgs/internal/plan"
	"dgs/internal/wire"
)

// Control opcodes shared by the drivers in this module.
const (
	OpStart  = 1 // run initial partial evaluation
	OpReport = 2 // ship local matches to the coordinator
)

// Config selects the dGPM variant.
type Config struct {
	// Incremental enables the incremental local evaluation of §4.2.
	// Disabled, every received batch triggers re-evaluation from scratch
	// (the dGPMNOpt baseline).
	Incremental bool
	// Push enables the push operation of §4.2.
	Push bool
	// Theta is the push benefit threshold θ (the paper fixes 0.2).
	Theta float64
}

// DefaultConfig is full dGPM: both optimizations on, θ = 0.2 (§6).
func DefaultConfig() Config { return Config{Incremental: true, Push: true, Theta: 0.2} }

// NOptConfig is dGPMNOpt: no incremental evaluation, no push.
func NOptConfig() Config { return Config{} }

type site struct {
	q      *pattern.Pattern
	frag   *partition.Fragment
	assign []int32 // owner directory (IRI/hashing stand-in, §2.2)
	cfg    Config
	// pl is the session's advisory evaluation plan (nil: declaration
	// order). Rebuild paths reuse it — the plan depends only on the
	// query and the deployment's immutable label statistics.
	pl *plan.Plan

	eng *Engine

	// extraWatch extends InWatchers with reroute destinations (§4.2
	// dependency-graph rewiring after a push).
	extraWatch map[graph.NodeID][]int
	// pushedTo records parents already sent a push.
	pushedTo map[int]bool
	// pushDecided is set once the benefit test has been evaluated with a
	// real extraction; a site outsources its equations at most once.
	pushDecided bool

	// dGPMNOpt state: everything external learned so far, and the in-node
	// falsifications already reported, so rebuilds do not resend.
	extFalse []wire.VarRef
	reported map[wire.VarRef]bool

	// pending buffers messages that raced ahead of the start signal: a
	// fast neighbor may evaluate and ship falsifications before the
	// coordinator's broadcast reaches this site.
	pending []wire.Payload
}

func newSite(q *pattern.Pattern, frag *partition.Fragment, assign []int32, cfg Config, pl *plan.Plan) *site {
	return &site{
		q:          q,
		frag:       frag,
		assign:     assign,
		cfg:        cfg,
		pl:         pl,
		extraWatch: make(map[graph.NodeID][]int),
		pushedTo:   make(map[int]bool),
		reported:   make(map[wire.VarRef]bool),
	}
}

func (s *site) Recv(ctx *cluster.Ctx, from int, p wire.Payload) {
	if s.eng == nil {
		// Not started yet: only OpStart may be processed now.
		if c, ok := p.(*wire.Control); !ok || c.Op != OpStart {
			s.pending = append(s.pending, p)
			return
		}
	}
	switch m := p.(type) {
	case *wire.Control:
		switch m.Op {
		case OpStart:
			s.eng = NewEnginePlanned(s.q, s.frag, s.pl)
			if !s.cfg.Incremental {
				// Seed the reported set from the initial evaluation so a
				// later rebuild does not resend these.
				s.flushTracked(ctx, s.eng.Drain())
			} else {
				s.flush(ctx, s.eng.Drain())
			}
			s.maybePush(ctx)
			for _, buf := range s.pending {
				s.Recv(ctx, from, buf)
			}
			s.pending = nil
		case OpReport:
			ctx.Send(cluster.Coordinator, &wire.Matches{
				Frag:  uint16(s.frag.ID),
				Pairs: s.eng.LocalMatches(),
			})
		}
	case *wire.Falsify:
		ctx.AddRounds(1)
		if s.cfg.Incremental {
			s.eng.ApplyFalsifications(m.Pairs)
			s.flush(ctx, s.eng.Drain())
		} else {
			// dGPMNOpt: full re-evaluation from scratch on every message.
			s.extFalse = append(s.extFalse, m.Pairs...)
			s.eng = NewEnginePlanned(s.q, s.frag, s.pl)
			s.eng.ApplyFalsifications(s.extFalse)
			s.flushTracked(ctx, s.eng.Drain())
		}
		s.maybePush(ctx)
	case *wire.Push:
		ctx.AddRounds(1)
		s.eng.InstallEquations(m.Eqs)
		s.flush(ctx, s.eng.Drain())
	case *wire.Delta:
		// Maintenance sessions only (query sessions never receive deltas):
		// refine the standing engine under the batch's edge deletions and
		// ship the resulting falsifications along the usual lMsg paths.
		ctx.AddRounds(1)
		dels := make([][2]graph.NodeID, len(m.Dels))
		for i, d := range m.Dels {
			dels[i] = [2]graph.NodeID{graph.NodeID(d[0]), graph.NodeID(d[1])}
		}
		s.eng.ApplyEdgeDeletions(dels)
		s.flush(ctx, s.eng.Drain())
	case *wire.Reroute:
		dest := int(m.Dest)
		var backfill []wire.VarRef
		for _, nv := range m.Nodes {
			v := graph.NodeID(nv)
			s.extraWatch[v] = append(s.extraWatch[v], dest)
			// The new watcher missed falsifications that predate the
			// reroute; resend them (falsifications are idempotent).
			if s.eng != nil {
				backfill = append(backfill, s.eng.DeadLocalVars(v)...)
			}
		}
		if len(backfill) > 0 {
			ctx.Send(dest, &wire.Falsify{Pairs: backfill})
		}
	}
}

// flush routes freshly falsified in-node variables to every site that
// watches them (procedure lMsg, Fig. 4): the sites holding the in-node as
// a virtual node, plus any rerouted push parents.
func (s *site) flush(ctx *cluster.Ctx, pairs []wire.VarRef) {
	if len(pairs) == 0 {
		return
	}
	perDest := make(map[int][]wire.VarRef)
	for _, r := range pairs {
		v := graph.NodeID(r.V)
		for _, w := range s.frag.InWatchers[v] {
			perDest[w] = append(perDest[w], r)
		}
		for _, w := range s.extraWatch[v] {
			perDest[w] = append(perDest[w], r)
		}
	}
	dests := make([]int, 0, len(perDest))
	for d := range perDest {
		dests = append(dests, d)
	}
	sort.Ints(dests)
	for _, d := range dests {
		ctx.Send(d, &wire.Falsify{Pairs: dedupe(perDest[d])})
	}
}

// flushTracked is flush with resend suppression for the rebuild-from-
// scratch variant: a rebuild re-derives earlier falsifications, which must
// not be shipped again.
func (s *site) flushTracked(ctx *cluster.Ctx, pairs []wire.VarRef) {
	fresh := pairs[:0]
	for _, r := range pairs {
		if !s.reported[r] {
			s.reported[r] = true
			fresh = append(fresh, r)
		}
	}
	s.flush(ctx, fresh)
}

func dedupe(pairs []wire.VarRef) []wire.VarRef {
	if len(pairs) < 2 {
		return pairs
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].V != pairs[j].V {
			return pairs[i].V < pairs[j].V
		}
		return pairs[i].U < pairs[j].U
	})
	out := pairs[:1]
	for _, r := range pairs[1:] {
		if r != out[len(out)-1] {
			out = append(out, r)
		}
	}
	return out
}

// maybePush evaluates the benefit function B(Si) = |Fi.O'| / (m·|Fi.I'|)
// (§4.2) and, when it clears θ, ships the equation subsystem to each
// not-yet-pushed parent site, with reroute requests to the leaf owners.
func (s *site) maybePush(ctx *cluster.Ctx) {
	if !s.cfg.Push || s.eng == nil || s.pushDecided {
		return
	}
	inV, virtV := s.eng.UnevaluatedCounts()
	if inV == 0 || virtV == 0 {
		return
	}
	// Cheap upper bound on B(Si): every shipped equation costs at least 8
	// bytes, so m ≥ 8 and B ≤ virtV/(8·inV). Below θ no extraction can
	// clear the bar — skip the fragment-sized extraction work outright.
	if float64(virtV)/(8*float64(inV)) < s.cfg.Theta {
		s.pushDecided = true
		return
	}
	// Extraction below is fragment-sized work; a site evaluates the
	// benefit test once, at its first opportunity with unevaluated
	// variables on both sides, and either pushes or never does.
	s.pushDecided = true
	// Parents and the in-nodes each watches.
	parents := make(map[int][]graph.NodeID)
	for _, v := range s.frag.InNodes {
		for _, w := range s.frag.InWatchers[v] {
			if !s.pushedTo[w] {
				parents[w] = append(parents[w], v)
			}
		}
	}
	if len(parents) == 0 {
		return
	}
	// m: total size of the equations to be sent, in bytes — the paper
	// uses m "to suppress the overhead of shipment" (§4.2), so with
	// θ=0.2 a push happens only when the unevaluated-variable ratio
	// dwarfs the bytes it costs (small, high-leverage subsystems).
	// Shipping large systems wholesale would inflate DS well past the
	// no-push protocol, defeating Theorem 2's bound in practice.
	type planned struct {
		dest   int
		eqs    []wire.Equation
		leaves []graph.NodeID
	}
	var plans []planned
	totalBytes := 0
	dests := make([]int, 0, len(parents))
	for d := range parents {
		dests = append(dests, d)
	}
	sort.Ints(dests)
	for _, d := range dests {
		eqs, leaves := s.eng.ExtractSubsystem(parents[d])
		if len(eqs) == 0 {
			continue
		}
		for i := range eqs {
			totalBytes += eqs[i].EncodedSize()
		}
		plans = append(plans, planned{dest: d, eqs: eqs, leaves: leaves})
	}
	if len(plans) == 0 {
		return
	}
	m := float64(totalBytes)
	if m == 0 {
		m = 1
	}
	benefit := float64(virtV) / (m * float64(inV))
	if benefit < s.cfg.Theta {
		return
	}
	for _, pl := range plans {
		s.pushedTo[pl.dest] = true
		ctx.Send(pl.dest, &wire.Push{Origin: uint16(s.frag.ID), Eqs: pl.eqs})
		// Ask each leaf owner to also feed the parent.
		perOwner := make(map[int][]uint32)
		for _, leaf := range pl.leaves {
			owner := int(s.assign[leaf])
			if owner == pl.dest {
				continue // the parent owns this leaf; it resolves locally
			}
			perOwner[owner] = append(perOwner[owner], uint32(leaf))
		}
		owners := make([]int, 0, len(perOwner))
		for o := range perOwner {
			owners = append(owners, o)
		}
		sort.Ints(owners)
		for _, o := range owners {
			ctx.Send(o, &wire.Reroute{Dest: uint16(pl.dest), Nodes: perOwner[o]})
		}
	}
}
