package dgpm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dgs/internal/graph"
	"dgs/internal/pattern"
	"dgs/internal/simulation"
	"dgs/internal/wire"
)

// Fault injection: duplicated falsification deliveries must not change
// the result — the protocol's idempotence is what makes the push
// operation's redundant routing safe (§4.2).
func TestQuickDuplicateDeliveryHarmless(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, g, fr := randomCase(r)
		want := simulation.HHK(q, g)

		// Engine-level: apply the same external falsifications twice, in
		// shuffled order, to one fragment's engine; alive state must
		// match a single ordered application.
		if fr.NumFragments() > 1 {
			frag := fr.Frags[0]
			var ext []wire.VarRef
			for _, v := range frag.Virtual {
				for u := 0; u < q.NumNodes(); u++ {
					if q.Label(pattern.QNode(u)) == frag.Labels[v] && r.Intn(2) == 0 {
						ext = append(ext, wire.VarRef{U: uint16(u), V: uint32(v)})
					}
				}
			}
			e1 := NewEngine(q, frag)
			e1.ApplyFalsifications(ext)
			e2 := NewEngine(q, frag)
			perm := r.Perm(len(ext))
			for _, i := range perm {
				e2.ApplyFalsifications([]wire.VarRef{ext[i]})
			}
			e2.ApplyFalsifications(ext) // full duplicate batch
			m1, m2 := e1.LocalMatches(), e2.LocalMatches()
			if len(m1) != len(m2) {
				t.Logf("seed %d: duplicate delivery changed match count %d vs %d", seed, len(m1), len(m2))
				return false
			}
		}

		// System-level: the full protocol still agrees with centralized.
		got, _ := Run(q, fr, DefaultConfig())
		return want.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The incremental unevaluated-variable counters must agree with a brute
// force recount at every point of a random falsification sequence.
func TestQuickUnevaluatedCountersConsistent(t *testing.T) {
	recount := func(e *Engine, q *pattern.Pattern) (int, int) {
		inV, virtV := 0, 0
		for li := int32(0); li < e.nl; li++ {
			if !e.isIn[li] {
				continue
			}
			for u := 0; u < q.NumNodes(); u++ {
				if e.alive[u][li] && !e.constTrue[u] {
					inV++
				}
			}
		}
		for vi := e.nl; vi < int32(len(e.vis)); vi++ {
			for u := 0; u < q.NumNodes(); u++ {
				if e.alive[u][vi] && !e.constTrue[u] {
					virtV++
				}
			}
		}
		return inV, virtV
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, _, fr := randomCase(r)
		for _, frag := range fr.Frags {
			e := NewEngine(q, frag)
			for round := 0; round < 4; round++ {
				gi, gv := e.UnevaluatedCounts()
				wi, wv := recount(e, q)
				if gi != wi || gv != wv {
					t.Logf("seed %d frag %d round %d: counters (%d,%d) vs recount (%d,%d)",
						seed, frag.ID, round, gi, gv, wi, wv)
					return false
				}
				// Random external falsification.
				if len(frag.Virtual) == 0 {
					break
				}
				v := frag.Virtual[r.Intn(len(frag.Virtual))]
				u := pattern.QNode(r.Intn(q.NumNodes()))
				e.ApplyFalsifications([]wire.VarRef{{U: uint16(u), V: uint32(v)}})
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Rounds statistics must reflect actual message processing.
func TestRoundsAccounting(t *testing.T) {
	q, g, _, assign := fig1()
	_ = g
	fr := mustPartition(t, g, assign)
	_, stats := Run(q, fr, DefaultConfig())
	if stats.Rounds < 0 {
		t.Fatal("negative rounds")
	}
	// On Fig-1 with the cycle intact everything matches, so at most a few
	// initial falsifications flow.
	if stats.DataMsgs > int64(fr.Ef()*q.NumNodes()) {
		t.Fatalf("message count %d exceeds |Ef||Vq| = %d", stats.DataMsgs, fr.Ef()*q.NumNodes())
	}
}

// Boolean evaluation must agree with the data-selecting result on random
// inputs (§4.1 "Boolean queries").
func TestQuickBooleanAgreesWithSelecting(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, g, fr := randomCase(r)
		want := simulation.HHK(q, g)
		ok, _ := RunBoolean(q, fr, DefaultConfig())
		return ok == want.Ok()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// A pattern label absent from the whole graph must yield ∅ with zero
// data shipment when the emptiness is locally decidable everywhere.
func TestAbsentLabelShipsAlmostNothing(t *testing.T) {
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A\nnode z ZZZ\nedge a z")
	b := graph.NewBuilderDict(d)
	for i := 0; i < 40; i++ {
		b.AddNode("A")
	}
	for i := 0; i < 39; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g := b.MustBuild()
	assign := make([]int32, 40)
	for i := range assign {
		assign[i] = int32(i % 4)
	}
	fr := mustPartition(t, g, assign)
	got, stats := Run(q, fr, DefaultConfig())
	if got.NumPairs() != 0 {
		t.Fatal("must be empty")
	}
	// Every X(a,·) is falsifiable locally (no ZZZ anywhere), but in-node
	// falsifications are still announced to watchers; the total is
	// bounded by the analytic limit.
	if stats.DataBytes > int64(fr.Ef()*q.NumNodes()*6+int(stats.DataMsgs)*5) {
		t.Fatalf("shipped too much: %d bytes", stats.DataBytes)
	}
}
