package dgpm

// Session-spec plumbing: the algorithm names and config encoding that
// let a site — in this process or in a remote dgsd daemon — instantiate
// dGPM's per-site handlers from a cluster.SessionSpec. The registry
// entries live here so that importing the package (as the driver and
// cmd/dgsd both do) is all it takes to serve the algorithm.

import (
	"encoding/binary"
	"fmt"
	"math"

	"dgs/internal/cluster"
	"dgs/internal/partition"
	"dgs/internal/pattern"
	"dgs/internal/plan"
)

const (
	// Algo is the registered name of the dGPM query/maintenance site
	// (spec.Config carries an EncodeConfig blob).
	Algo = "dgpm"
	// AlgoUpdate is the registered name of the fragment-update site
	// (query-less; Delta payloads carry the batch).
	AlgoUpdate = "update"
)

const (
	cfgIncremental = 1 << 0
	cfgPush        = 1 << 1
)

// EncodeConfig renders cfg for SessionSpec.Config: one flag byte plus
// the IEEE-754 bits of θ.
func EncodeConfig(cfg Config) []byte {
	out := make([]byte, 9)
	if cfg.Incremental {
		out[0] |= cfgIncremental
	}
	if cfg.Push {
		out[0] |= cfgPush
	}
	binary.LittleEndian.PutUint64(out[1:], math.Float64bits(cfg.Theta))
	return out
}

// DecodeConfig parses an EncodeConfig blob.
func DecodeConfig(b []byte) (Config, error) {
	if len(b) != 9 {
		return Config{}, fmt.Errorf("dgpm: config must be 9 bytes, got %d", len(b))
	}
	if b[0] &^ (cfgIncremental | cfgPush) != 0 {
		return Config{}, fmt.Errorf("dgpm: unknown config flags %#x", b[0])
	}
	return Config{
		Incremental: b[0]&cfgIncremental != 0,
		Push:        b[0]&cfgPush != 0,
		Theta:       math.Float64frombits(binary.LittleEndian.Uint64(b[1:])),
	}, nil
}

func init() {
	cluster.RegisterAlgorithm(Algo, func(spec cluster.SessionSpec, frag *partition.Fragment, assign []int32) (cluster.Handler, error) {
		q, err := pattern.DecodeBinary(spec.Query)
		if err != nil {
			return nil, err
		}
		cfg, err := DecodeConfig(spec.Config)
		if err != nil {
			return nil, err
		}
		pl, err := decodeSpecPlan(spec, q)
		if err != nil {
			return nil, err
		}
		return newSite(q, frag, assign, cfg, pl), nil
	})
	cluster.RegisterAlgorithm(AlgoUpdate, func(spec cluster.SessionSpec, frag *partition.Fragment, assign []int32) (cluster.Handler, error) {
		return &updSite{frag: frag, assign: assign}, nil
	})
}

// decodeSpecPlan extracts and validates the optional evaluation plan of
// a session spec: the planner name must be registered (a daemon should
// reject a plan it cannot attribute, same as an unknown algorithm) and
// the orders must fit the decoded pattern. Specs without a plan — from
// planner-off drivers or pre-plan transports — yield nil.
func decodeSpecPlan(spec cluster.SessionSpec, q *pattern.Pattern) (*plan.Plan, error) {
	if spec.Planner == "" && len(spec.Plan) == 0 {
		return nil, nil
	}
	if _, ok := plan.PlannerByName(spec.Planner); !ok {
		return nil, fmt.Errorf("dgpm: unknown planner %q", spec.Planner)
	}
	pl, err := plan.Decode(spec.Plan)
	if err != nil {
		return nil, err
	}
	if err := pl.Fits(q); err != nil {
		return nil, err
	}
	pl.Planner = spec.Planner
	return pl, nil
}
