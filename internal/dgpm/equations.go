package dgpm

// Equation extraction and installation — the machinery behind the push
// operation of §4.2. A push ships, to a parent site, the closed subsystem
// of still-unevaluated Boolean equations reachable from the in-node
// variables the parent watches, so the parent can evaluate them itself
// and bypass the extra message hop.

import (
	"sort"

	"dgs/internal/graph"
	"dgs/internal/pattern"
	"dgs/internal/wire"
)

// killVar falsifies any variable, routing to the dense path for visible
// nodes (so fragment counters fire) and to the ext path otherwise.
func (e *Engine) killVar(k varKey) {
	if vi, ok := e.visIdx[k.v()]; ok {
		e.killVis(k.u(), vi)
		return
	}
	e.killExt(k)
}

// depSet is the result of the assumption-dependence analysis.
type depSet struct {
	e   *Engine
	vis [][]bool // [u][vi]
	ext map[varKey]bool
}

func (d *depSet) has(k varKey) bool {
	if vi, ok := d.e.visIdx[k.v()]; ok {
		return d.vis[k.u()][vi]
	}
	return d.ext[k]
}

// assumptionDependent computes the set of alive variables that
// transitively reference at least one alive assumption variable. Every
// other alive variable is settled: its defining subsystem is closed under
// local knowledge, so the local greatest fixpoint equals the global one.
// The set is computed by reverse reachability from the assumptions —
// through the fragment adjacency for local variables and through equation
// watch lists for installed equations.
func (e *Engine) assumptionDependent() *depSet {
	nq := e.q.NumNodes()
	d := &depSet{e: e, ext: make(map[varKey]bool)}
	d.vis = make([][]bool, nq)
	for u := range d.vis {
		d.vis[u] = make([]bool, len(e.vis))
	}
	var queue []varKey
	markVis := func(u pattern.QNode, vi int32) {
		if !d.vis[u][vi] {
			d.vis[u][vi] = true
			queue = append(queue, key(u, e.vis[vi]))
		}
	}
	mark := func(k varKey) {
		if vi, ok := e.visIdx[k.v()]; ok {
			markVis(k.u(), vi)
			return
		}
		if !d.ext[k] {
			d.ext[k] = true
			queue = append(queue, k)
		}
	}
	// Seeds: alive, non-constant assumption variables — virtual nodes
	// without an installed equation, plus pushed leaves.
	nvis := int32(len(e.vis))
	for u := 0; u < nq; u++ {
		if e.constTrue[u] {
			continue
		}
		for vi := e.nl; vi < nvis; vi++ {
			if !e.alive[u][vi] {
				continue
			}
			if x, ok := e.ext[key(pattern.QNode(u), e.vis[vi])]; ok && x.hasEq {
				continue // derived, not an assumption
			}
			markVis(pattern.QNode(u), vi)
		}
	}
	for k, x := range e.ext {
		if _, visible := e.visIdx[k.v()]; visible {
			continue
		}
		if x.alive && !x.hasEq {
			mark(k)
		}
	}
	for len(queue) > 0 {
		k := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		uc := k.u()
		if vi, ok := e.visIdx[k.v()]; ok {
			for _, ei := range e.eIn[uc] {
				up := e.qedges[ei].parent
				if e.constTrue[up] {
					continue
				}
				arow := e.alive[up]
				for _, lp := range e.pred[vi] {
					if arow[lp] {
						markVis(up, lp)
					}
				}
			}
		}
		for _, w := range e.eqWatch[k] {
			if e.isAlive(w.target) {
				mark(w.target)
			}
		}
	}
	return d
}

// ExtractSubsystem computes the equations defining every alive,
// assumption-dependent variable X(u,v) for the requested in-nodes, closed
// under local dependencies: referenced local (and previously installed
// equation) variables contribute their own equations; pure assumption
// variables stay as leaves. It returns the equations plus the leaf node
// IDs (whose owners must be asked to reroute falsifications).
//
// Alive variables with no transitive dependence on an assumption are
// settled true at the local fixpoint (their subsystem is closed, so local
// truth is global truth); they satisfy their OR groups like constants and
// are never shipped. On trees this prunes extraction down to the
// root→virtual paths, giving Corollary 4's O(|Q||F|) shipment.
func (e *Engine) ExtractSubsystem(requested []graph.NodeID) ([]wire.Equation, []graph.NodeID) {
	dep := e.assumptionDependent()
	visited := make(map[varKey]bool)
	leafNodes := make(map[graph.NodeID]bool)
	var eqs []wire.Equation
	var stack []varKey

	push := func(k varKey) {
		if visited[k] {
			return
		}
		visited[k] = true
		stack = append(stack, k)
	}

	for _, v := range requested {
		for u := 0; u < e.q.NumNodes(); u++ {
			k := key(pattern.QNode(u), v)
			if e.isAlive(k) && !e.isConst(k) && dep.has(k) {
				push(k)
			}
		}
	}

	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		groups, isLeaf := e.groupsOf(k)
		if isLeaf {
			leafNodes[k.v()] = true
			continue
		}
		eq := wire.Equation{Target: k.ref()}
		for _, g := range groups {
			refs := make([]wire.VarRef, 0, len(g))
			satisfied := false
			for _, rk := range g {
				if !dep.has(rk) {
					// Settled-true reference satisfies the OR group.
					satisfied = true
					break
				}
				refs = append(refs, rk.ref())
			}
			if satisfied {
				continue
			}
			for _, rk := range g {
				push(rk)
			}
			eq.Groups = append(eq.Groups, refs)
		}
		eqs = append(eqs, eq)
	}
	leaves := make([]graph.NodeID, 0, len(leafNodes))
	for v := range leafNodes {
		leaves = append(leaves, v)
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
	// Deterministic order helps tests and keeps message bytes stable.
	sort.Slice(eqs, func(i, j int) bool {
		a, b := eqs[i].Target, eqs[j].Target
		if a.V != b.V {
			return a.V < b.V
		}
		return a.U < b.U
	})
	return eqs, leaves
}

// groupsOf returns the current unsatisfied OR groups of an alive
// variable, or isLeaf=true when k is a pure assumption. Dead references
// are pruned; groups containing a constant-true reference are dropped as
// satisfied.
func (e *Engine) groupsOf(k varKey) (groups [][]varKey, isLeaf bool) {
	vi, visible := e.visIdx[k.v()]
	if visible && vi < e.nl {
		// Local variable: groups come from the fragment adjacency.
		for _, ei := range e.eOut[k.u()] {
			uc := e.qedges[ei].child
			if e.constTrue[uc] {
				// Any alive successor is a constant-true witness; the var
				// is alive, so its counter is positive: group satisfied.
				continue
			}
			var g []varKey
			arow := e.alive[uc]
			for _, wi := range e.succ[vi] {
				if arow[wi] {
					g = append(g, key(uc, e.vis[wi]))
				}
			}
			groups = append(groups, g)
		}
		return groups, false
	}
	if x, ok := e.ext[k]; ok && x.hasEq {
		// Prune references that died since installation: a dead reference
		// contributes false to its OR and must not leak into a shipped
		// subsystem (the receiver may have no way to learn of its death).
		for _, g := range x.groups {
			var live []varKey
			for _, rk := range g {
				if e.isAlive(rk) {
					live = append(live, rk)
				}
			}
			groups = append(groups, live)
		}
		return groups, false
	}
	return nil, true
}

// InstallEquations adds a pushed subsystem to the engine. Targets are
// created (or upgraded from assumptions) as equation variables; already
// falsified targets stay dead. References resolve against the engine's
// current knowledge: dead references are pruned, constant-true references
// satisfy their group. Installation is two-phase (create all targets,
// then wire references) so mutually recursive equations — cross-fragment
// cycles — install correctly.
func (e *Engine) InstallEquations(eqs []wire.Equation) {
	// Phase 1: admit targets.
	installed := make(map[varKey]bool, len(eqs))
	for _, eq := range eqs {
		k := refKey(eq.Target)
		if vi, ok := e.visIdx[k.v()]; ok && vi < e.nl {
			// A pushed equation never targets our own node; if a routing
			// anomaly delivers one, our local derivation is authoritative.
			continue
		}
		if !e.isAlive(k) {
			continue // already resolved
		}
		x, ok := e.ext[k]
		if !ok {
			x = &extVar{alive: true}
			e.ext[k] = x
		}
		if x.hasEq {
			continue // duplicate push
		}
		installed[k] = true
	}
	// Phase 2: wire groups.
	for _, eq := range eqs {
		k := refKey(eq.Target)
		if !installed[k] {
			continue
		}
		x := e.ext[k]
		x.hasEq = true
		dead := false
		for _, g := range eq.Groups {
			var refs []varKey
			satisfied := false
			for _, r := range g {
				rk := refKey(r)
				if e.isConst(rk) {
					satisfied = true
					break
				}
				if !e.isAlive(rk) {
					continue
				}
				refs = append(refs, rk)
			}
			if satisfied {
				continue
			}
			if len(refs) == 0 {
				dead = true
				break
			}
			gi := int32(len(x.groups))
			x.groups = append(x.groups, refs)
			x.groupCnt = append(x.groupCnt, int32(len(refs)))
			for _, rk := range refs {
				e.eqWatch[rk] = append(e.eqWatch[rk], eqWatcher{target: k, group: gi})
			}
		}
		if dead {
			e.killVar(k)
		}
	}
	e.propagate()
	e.Evals++
}
