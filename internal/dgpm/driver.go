package dgpm

// The dGPM driver: wires one site handler per fragment plus a collecting
// coordinator onto the cluster runtime and runs the three phases of
// Fig. 3 — (1) partial evaluation, (2) asynchronous message passing to
// the fixpoint, (3) assembly of Q(G) at the coordinator Sc.

import (
	"time"

	"dgs/internal/cluster"
	"dgs/internal/graph"
	"dgs/internal/partition"
	"dgs/internal/pattern"
	"dgs/internal/simulation"
	"dgs/internal/wire"
)

// collector is the coordinator handler: it accumulates per-site matches.
// Recv is serial per actor, so no locking is needed.
type collector struct {
	nq    int
	pairs []wire.VarRef
}

func (c *collector) Recv(ctx *cluster.Ctx, from int, p wire.Payload) {
	if m, ok := p.(*wire.Matches); ok {
		c.pairs = append(c.pairs, m.Pairs...)
	}
}

// assemble turns collected pairs into the canonical match relation: the
// union of partial matches, or ∅ if some query node has no match (§4.1
// phase 3).
func (c *collector) assemble() *simulation.Match {
	m := simulation.NewMatch(c.nq)
	for _, r := range c.pairs {
		m.Sets[r.U] = append(m.Sets[r.U], graph.NodeID(r.V))
	}
	m.Sort()
	return m.Canonical()
}

// Run evaluates the data-selecting pattern query Q over the fragmentation
// with the configured dGPM variant and returns the maximum match plus the
// run's network statistics.
func Run(q *pattern.Pattern, fr *partition.Fragmentation, cfg Config) (*simulation.Match, cluster.Stats) {
	n := fr.NumFragments()
	c := cluster.New(n)
	sites := make([]cluster.Handler, n)
	for i := 0; i < n; i++ {
		sites[i] = newSite(q, fr.Frags[i], fr.Assign, cfg)
	}
	coord := &collector{nq: q.NumNodes()}
	c.Start(sites, coord)

	start := time.Now()
	// Phase 1+2: partial evaluation and message passing to the fixpoint.
	c.Broadcast(&wire.Control{Op: OpStart})
	c.WaitQuiesce()
	// Phase 3: assemble Q(G) at the coordinator.
	c.Broadcast(&wire.Control{Op: OpReport})
	c.WaitQuiesce()
	wall := time.Since(start)
	c.Shutdown()

	stats := c.Stats()
	stats.Wall = wall
	return coord.assemble(), stats
}

// RunBoolean evaluates Q as a Boolean pattern: true iff G matches Q.
// Protocol phases are identical to the data-selecting case; only the
// coordinator's final check differs (§4.1 "Boolean queries").
func RunBoolean(q *pattern.Pattern, fr *partition.Fragmentation, cfg Config) (bool, cluster.Stats) {
	m, stats := Run(q, fr, cfg)
	return m.Ok(), stats
}
