package dgpm

// The dGPM driver: wires one site handler per fragment plus a collecting
// coordinator onto a cluster session and runs the three phases of
// Fig. 3 — (1) partial evaluation, (2) asynchronous message passing to
// the fixpoint, (3) assembly of Q(G) at the coordinator Sc.
//
// The handlers install onto a live, persistent cluster (Eval): the same
// substrate serves many queries, each as its own session with isolated
// stats. Run remains as a convenience that evaluates one query on a
// throwaway cluster.

import (
	"context"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/graph"
	"dgs/internal/obs"
	"dgs/internal/partition"
	"dgs/internal/pattern"
	"dgs/internal/plan"
	"dgs/internal/simulation"
	"dgs/internal/wire"
)

// collector is the coordinator handler: it accumulates per-site matches.
// Recv is serial per actor, so no locking is needed.
type collector struct {
	nq    int
	pairs []wire.VarRef
}

func (c *collector) Recv(ctx *cluster.Ctx, from int, p wire.Payload) {
	if m, ok := p.(*wire.Matches); ok {
		c.pairs = append(c.pairs, m.Pairs...)
	}
}

// assemble turns collected pairs into the canonical match relation: the
// union of partial matches, or ∅ if some query node has no match (§4.1
// phase 3).
func (c *collector) assemble() *simulation.Match {
	m := simulation.NewMatch(c.nq)
	for _, r := range c.pairs {
		m.Sets[r.U] = append(m.Sets[r.U], graph.NodeID(r.V))
	}
	m.Sort()
	return m.Canonical()
}

// Eval evaluates the data-selecting pattern query Q over the
// fragmentation resident on cluster c, with the configured dGPM variant.
// It opens a fresh per-query spec session — the sites, wherever they
// live, instantiate their handlers from the resident fragments — runs
// the protocol to completion (or ctx cancellation), and returns the
// maximum match plus the session's isolated network statistics. The
// cluster stays up; concurrent Eval calls on the same cluster are safe.
// fr must be the fragmentation resident on c (it sizes and documents the
// deployment; the sites evaluate against their own resident copies).
func Eval(ctx context.Context, c *cluster.Cluster, q *pattern.Pattern, fr *partition.Fragmentation, cfg Config) (*simulation.Match, cluster.Stats, error) {
	return EvalPlanned(ctx, c, q, fr, cfg, nil)
}

// EvalPlanned is Eval with an advisory evaluation plan for q (nil runs
// unplanned). The plan ships in the session spec; sites that never see
// it — pre-plan daemons — fall back to declaration order, with results
// identical by the fixpoint's confluence.
func EvalPlanned(ctx context.Context, c *cluster.Cluster, q *pattern.Pattern, fr *partition.Fragmentation, cfg Config, pl *plan.Plan) (*simulation.Match, cluster.Stats, error) {
	m, st, _, err := EvalPlannedTraced(ctx, c, q, fr, cfg, pl, 0)
	return m, st, err
}

// EvalPlannedTraced is EvalPlanned with distributed tracing: a nonzero
// traceID asks every site to record per-round spans, collected after
// the session closes into a QueryTrace. traceID 0 disables tracing (the
// trace return is then nil) and leaves the session's wire traffic
// byte-identical to an untraced run.
func EvalPlannedTraced(ctx context.Context, c *cluster.Cluster, q *pattern.Pattern, fr *partition.Fragmentation, cfg Config, pl *plan.Plan, traceID uint64) (*simulation.Match, cluster.Stats, *obs.QueryTrace, error) {
	coord := &collector{nq: q.NumNodes()}
	spec := cluster.SessionSpec{Algo: Algo, Query: pattern.EncodeBinary(q), Config: EncodeConfig(cfg), TraceID: traceID}
	if pl != nil {
		spec.Planner, spec.Plan = pl.Planner, pl.Encode()
	}
	sess, err := c.OpenSession(cluster.SessionQuery, spec, coord)
	if err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	defer sess.Close()

	start := time.Now()
	// Phase 1+2: partial evaluation and message passing to the fixpoint.
	sess.Broadcast(&wire.Control{Op: OpStart})
	if err := sess.WaitQuiesce(ctx); err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	// Phase 3: assemble Q(G) at the coordinator.
	sess.Broadcast(&wire.Control{Op: OpReport})
	if err := sess.WaitQuiesce(ctx); err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	stats := sess.Stats()
	stats.Wall = time.Since(start)
	match := coord.assemble()
	// Span collection happens after the close: remote hosts ship their
	// spans when they process the CLOSE frame.
	sess.Close()
	trace, err := sess.Trace(ctx)
	if err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	return match, stats, trace, nil
}

// Run evaluates one query on a throwaway single-query cluster with a
// free network — the fragment-once/serve-many path is Eval.
func Run(q *pattern.Pattern, fr *partition.Fragmentation, cfg Config) (*simulation.Match, cluster.Stats) {
	c := cluster.NewLocal(fr, cluster.Network{})
	defer c.Shutdown()
	m, st, err := Eval(context.Background(), c, q, fr, cfg)
	if err != nil {
		// Background context and a private cluster: unreachable.
		panic(err)
	}
	return m, st
}

// RunBoolean evaluates Q as a Boolean pattern: true iff G matches Q.
// Protocol phases are identical to the data-selecting case; only the
// coordinator's final check differs (§4.1 "Boolean queries").
func RunBoolean(q *pattern.Pattern, fr *partition.Fragmentation, cfg Config) (bool, cluster.Stats) {
	m, stats := Run(q, fr, cfg)
	return m.Ok(), stats
}
