package dgpm

// Live-update maintenance (the deployment's mutable mode). Two kinds of
// long-lived maintenance sessions run multiplexed alongside query
// sessions on the same cluster:
//
//   - ApplyUpdates distributes one validated update batch: each edge op
//     is routed to the site owning its source node, which mutates its
//     resident fragment in place and notifies the target's owner when
//     the fragment starts/stops holding the target as virtual — the
//     distributed upkeep of the §2.2 boundary structure.
//
//   - Maintainer holds a standing query: per-site engines stay alive
//     after the initial fixpoint, and each deletion batch is absorbed
//     incrementally — deletion deltas at the owning sites trigger
//     counter decrements whose falsifications travel the ordinary lMsg
//     paths in O(|AFF|), following the deletion case of [13] (Fan,
//     Wang, Wu, TODS 2013). Insertions can grow the relation, which the
//     removal-only engines cannot express; the deployment then calls
//     Reevaluate, which rebuilds the session against the mutated
//     fragments (the insertion fallback).
//
// Maintenance engines run with push disabled: a pushed equation is a
// frozen snapshot of a remote subsystem, which deletions would
// invalidate. Incremental evaluation — the optimization maintenance is
// about — stays on.

import (
	"context"
	"sort"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/graph"
	"dgs/internal/partition"
	"dgs/internal/pattern"
	"dgs/internal/plan"
	"dgs/internal/simulation"
	"dgs/internal/wire"
)

// MaintConfig is the engine configuration of standing-query sessions:
// incremental local evaluation on, push off.
func MaintConfig() Config { return Config{Incremental: true} }

// updSite applies one fragment's share of an update batch and maintains
// the boundary bookkeeping with its peers.
type updSite struct {
	frag   *partition.Fragment
	assign []int32
}

func (s *updSite) Recv(ctx *cluster.Ctx, from int, p wire.Payload) {
	m, ok := p.(*wire.Delta)
	if !ok {
		return
	}
	// Watch/unwatch notices from peer sites about our local in-nodes.
	for _, v := range m.Watch {
		s.frag.AddWatcher(graph.NodeID(v), from)
	}
	for _, v := range m.Unwatch {
		s.frag.RemoveWatcher(graph.NodeID(v), from)
	}
	// Edge ops routed to us as the source's owner. The driver validated
	// existence/absence against the overlay, so fragment errors here are
	// protocol bugs, not user errors. Watch/unwatch notices carry the NET
	// virtual-status change per target node: a batch may drop the last
	// crossing edge to w and add a new one, and per-op notices would
	// leave the owner's annotations out of sync.
	wasVirtual := make(map[graph.NodeID]bool)
	recordTarget := func(w graph.NodeID) {
		if !s.frag.IsLocal(w) {
			if _, seen := wasVirtual[w]; !seen {
				wasVirtual[w] = s.frag.IsVirtual(w)
			}
		}
	}
	for _, d := range m.Dels {
		v, w := graph.NodeID(d[0]), graph.NodeID(d[1])
		recordTarget(w)
		if _, err := s.frag.DeleteEdge(v, w); err != nil {
			panic("dgpm: update session: " + err.Error())
		}
	}
	for i, e := range m.Ins {
		v, w := graph.NodeID(e[0]), graph.NodeID(e[1])
		recordTarget(w)
		if _, err := s.frag.InsertEdge(v, w, graph.Label(m.InsLabels[i]), int(s.assign[w])); err != nil {
			panic("dgpm: update session: " + err.Error())
		}
	}
	watch := make(map[int][]uint32)
	unwatch := make(map[int][]uint32)
	for w, was := range wasVirtual {
		now := s.frag.IsVirtual(w)
		owner := int(s.assign[w])
		switch {
		case now && !was:
			watch[owner] = append(watch[owner], uint32(w))
		case was && !now:
			unwatch[owner] = append(unwatch[owner], uint32(w))
		}
	}
	dests := make(map[int]bool, len(watch)+len(unwatch))
	for d := range watch {
		dests[d] = true
	}
	for d := range unwatch {
		dests[d] = true
	}
	order := make([]int, 0, len(dests))
	for d := range dests {
		order = append(order, d)
	}
	sort.Ints(order)
	for _, dest := range order {
		wl, ul := watch[dest], unwatch[dest]
		sort.Slice(wl, func(i, j int) bool { return wl[i] < wl[j] })
		sort.Slice(ul, func(i, j int) bool { return ul[i] < ul[j] })
		ctx.Send(dest, &wire.Delta{Watch: wl, Unwatch: ul})
	}
}

// nopHandler ignores all traffic (the update session's coordinator).
type nopHandler struct{}

func (nopHandler) Recv(*cluster.Ctx, int, wire.Payload) {}

// ApplyUpdates distributes one validated update batch to the owning
// sites over a maintenance session and waits for the fragment mutations
// (and their watch/unwatch follow-ups) to quiesce. Messages are
// reliable in-process, so an error means the session was torn down
// mid-batch — the deployment closed, or a site was lost (the error
// wraps cluster.ErrSiteLost) — and fragments may be left half-updated:
// some sites absorbed their delta, others did not. The caller must then
// treat the site state as inconsistent until a full re-deployment from
// its own retained fragments (dgs marks the deployment for exactly
// that). The caller recounts driver-side boundary statistics (the sites
// own the fragments).
func ApplyUpdates(c *cluster.Cluster, fr *partition.Fragmentation, dels, ins [][2]graph.NodeID) (cluster.Stats, error) {
	sess, err := c.OpenSession(cluster.SessionMaintenance, cluster.SessionSpec{Algo: AlgoUpdate}, nopHandler{})
	if err != nil {
		return cluster.Stats{}, err
	}
	defer sess.Close()

	perSite := make(map[int]*wire.Delta)
	at := func(i int) *wire.Delta {
		d := perSite[i]
		if d == nil {
			d = &wire.Delta{}
			perSite[i] = d
		}
		return d
	}
	g := fr.G
	for _, e := range dels {
		d := at(int(fr.Assign[e[0]]))
		d.Dels = append(d.Dels, [2]uint32{uint32(e[0]), uint32(e[1])})
	}
	for _, e := range ins {
		d := at(int(fr.Assign[e[0]]))
		d.Ins = append(d.Ins, [2]uint32{uint32(e[0]), uint32(e[1])})
		d.InsLabels = append(d.InsLabels, g.Label(e[1]))
	}
	start := time.Now()
	order := make([]int, 0, len(perSite))
	for i := range perSite {
		order = append(order, i)
	}
	sort.Ints(order)
	for _, i := range order {
		sess.Inject(i, perSite[i])
	}
	// The batch is one-hop plus at most one notification hop — it always
	// terminates; Background keeps a caller's cancellation from tearing
	// fragments mid-batch.
	if err := sess.WaitQuiesce(context.Background()); err != nil {
		return cluster.Stats{}, err
	}
	st := sess.Stats()
	st.Wall = time.Since(start)
	return st, nil
}

// Standing is a set of standing queries fed by ONE long-lived
// maintenance session: the member patterns are stacked into a disjoint
// union (pattern.Union), the union evaluates as a single dGPM fixpoint,
// and each member's relation is read back from its block slice. Because
// no query edge crosses blocks, the union relation restricted to a
// block is exactly that pattern's own relation — but the session-level
// costs (session setup, report round-trips, per-site engine scans, the
// deletion deltas themselves) are paid once for all members instead of
// once per member. That is the planner's multi-query sharing: K
// overlapping Watches cost one session, not K.
//
// Per-site engines survive between batches, refined incrementally under
// deletions and rebuilt under insertions, exactly as a single-query
// Maintainer.
type Standing struct {
	c  *cluster.Cluster
	fr *partition.Fragmentation
	qs []*pattern.Pattern

	union *pattern.Pattern
	offs  []int
	pl    *plan.Plan // advisory plan for the union; may be nil

	sess  *cluster.Session
	coord *collector

	cur  []*simulation.Match // per block
	last cluster.Stats       // the last window's isolated stats
}

// NewStanding evaluates the patterns as standing queries over one
// session. planFor, when non-nil, is consulted once with the union
// pattern and may return an advisory evaluation plan (or nil). The
// session stays registered until Close (or cluster shutdown).
func NewStanding(ctx context.Context, c *cluster.Cluster, fr *partition.Fragmentation, qs []*pattern.Pattern, planFor func(*pattern.Pattern) *plan.Plan) (*Standing, error) {
	union, offs, err := pattern.Union(qs)
	if err != nil {
		return nil, err
	}
	s := &Standing{c: c, fr: fr, qs: qs, union: union, offs: offs}
	if planFor != nil {
		s.pl = planFor(union)
	}
	if err := s.Reevaluate(ctx); err != nil {
		return nil, err
	}
	return s, nil
}

// NumBlocks reports the number of member patterns.
func (s *Standing) NumBlocks() int { return len(s.qs) }

// Pattern returns member k's pattern.
func (s *Standing) Pattern(k int) *pattern.Pattern { return s.qs[k] }

// Current returns member k's maintained match relation as of the last
// successfully applied window.
func (s *Standing) Current(k int) *simulation.Match { return s.cur[k] }

// LastStats reports the isolated traffic/time of the last window
// (initial evaluation, deletion refinement, or re-evaluation) — shared
// by all members, since the session is.
func (s *Standing) LastStats() cluster.Stats { return s.last }

// Reevaluate rebuilds the session from the (mutated) fragments and runs
// the standing union's fixpoint from scratch — the initial evaluation
// and the insertion fallback share this path. A fresh session is used
// because restart-in-place would race the old session's in-flight
// falsifications against the new engines.
func (s *Standing) Reevaluate(ctx context.Context) error {
	coord := &collector{nq: s.union.NumNodes()}
	spec := cluster.SessionSpec{Algo: Algo, Query: pattern.EncodeBinary(s.union), Config: EncodeConfig(MaintConfig())}
	if s.pl != nil {
		spec.Planner, spec.Plan = s.pl.Planner, s.pl.Encode()
	}
	sess, err := s.c.OpenSession(cluster.SessionMaintenance, spec, coord)
	if err != nil {
		return err
	}
	start := time.Now()
	sess.Broadcast(&wire.Control{Op: OpStart})
	if err := sess.WaitQuiesce(ctx); err != nil {
		sess.Close()
		return err
	}
	cur, err := s.collect(ctx, sess, coord)
	if err != nil {
		sess.Close()
		return err
	}
	if s.sess != nil {
		s.sess.Close()
	}
	s.sess, s.coord = sess, coord
	s.cur = cur
	s.last = sess.Stats()
	s.last.Wall = time.Since(start)
	return nil
}

// ApplyDeletions refines the standing relations under the batch's edge
// deletions: deltas are injected at the owning sites once — all members
// share the propagation — and the per-block relations are reassembled.
func (s *Standing) ApplyDeletions(ctx context.Context, dels [][2]graph.NodeID) error {
	perSite := make(map[int][][2]uint32)
	for _, e := range dels {
		i := int(s.fr.Assign[e[0]])
		perSite[i] = append(perSite[i], [2]uint32{uint32(e[0]), uint32(e[1])})
	}
	start := time.Now()
	before := s.sess.Stats()
	sites := make([]int, 0, len(perSite))
	for i := range perSite {
		sites = append(sites, i)
	}
	sort.Ints(sites)
	for _, i := range sites {
		s.sess.Inject(i, &wire.Delta{Dels: perSite[i]})
	}
	if err := s.sess.WaitQuiesce(ctx); err != nil {
		return err
	}
	cur, err := s.collect(ctx, s.sess, s.coord)
	if err != nil {
		return err
	}
	s.cur = cur
	s.last = s.sess.Stats().Minus(before)
	s.last.Wall = time.Since(start)
	return nil
}

// collect re-assembles the standing relations: the coordinator's pair
// buffer is reset (safe: the session is quiescent, so no handler runs),
// every site re-ships its local matches, and the union pairs are split
// into per-block relations. Canonicalization (the ∅-if-any-node-empty
// rule of §4.1 phase 3) is applied PER BLOCK: one unmatched member must
// empty its own relation only, not its session-mates'.
func (s *Standing) collect(ctx context.Context, sess *cluster.Session, coord *collector) ([]*simulation.Match, error) {
	coord.pairs = coord.pairs[:0]
	sess.Broadcast(&wire.Control{Op: OpReport})
	if err := sess.WaitQuiesce(ctx); err != nil {
		return nil, err
	}
	per := make([]*simulation.Match, len(s.qs))
	for k, q := range s.qs {
		per[k] = simulation.NewMatch(q.NumNodes())
	}
	for _, r := range coord.pairs {
		u := int(r.U)
		// Block k owns [offs[k], offs[k+1]).
		k := sort.SearchInts(s.offs, u+1) - 1
		per[k].Sets[u-s.offs[k]] = append(per[k].Sets[u-s.offs[k]], graph.NodeID(r.V))
	}
	for k := range per {
		per[k].Sort()
		per[k] = per[k].Canonical()
	}
	return per, nil
}

// Close unregisters the standing session. The last relations remain
// readable via Current.
func (s *Standing) Close() {
	if s.sess != nil {
		s.sess.Close()
	}
}

// Maintainer is a single standing query: a one-block Standing, kept as
// the simple facade for callers without sharing.
type Maintainer struct {
	s *Standing
}

// NewMaintainer evaluates q as a standing query on the cluster and
// returns the maintenance handle. The session stays registered until
// Close (or cluster shutdown).
func NewMaintainer(ctx context.Context, c *cluster.Cluster, q *pattern.Pattern, fr *partition.Fragmentation) (*Maintainer, error) {
	s, err := NewStanding(ctx, c, fr, []*pattern.Pattern{q}, nil)
	if err != nil {
		return nil, err
	}
	return &Maintainer{s: s}, nil
}

// Current returns the maintained match relation as of the last
// successfully applied window.
func (m *Maintainer) Current() *simulation.Match { return m.s.Current(0) }

// LastStats reports the isolated traffic/time of the last window.
func (m *Maintainer) LastStats() cluster.Stats { return m.s.LastStats() }

// Reevaluate rebuilds the session from the (mutated) fragments; see
// Standing.Reevaluate.
func (m *Maintainer) Reevaluate(ctx context.Context) error { return m.s.Reevaluate(ctx) }

// ApplyDeletions refines the standing relation under the batch's edge
// deletions; see Standing.ApplyDeletions.
func (m *Maintainer) ApplyDeletions(ctx context.Context, dels [][2]graph.NodeID) error {
	return m.s.ApplyDeletions(ctx, dels)
}

// Close unregisters the standing session. The last relation remains
// readable via Current.
func (m *Maintainer) Close() { m.s.Close() }
