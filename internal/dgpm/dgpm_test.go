package dgpm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dgs/internal/graph"
	"dgs/internal/partition"
	"dgs/internal/pattern"
	"dgs/internal/simulation"
	"dgs/internal/wire"
)

// --- fixtures ---

func fig1() (*pattern.Pattern, *graph.Graph, map[string]graph.NodeID, []int32) {
	d := graph.NewDict()
	q := pattern.MustParse(d, `
node YB YB
node YF YF
node F  F
node SP SP
edge YB YF
edge YB F
edge SP YF
edge YF F
edge F  SP
`)
	b := graph.NewBuilderDict(d)
	ids := map[string]graph.NodeID{}
	add := func(name, label string) { ids[name] = b.AddNode(label) }
	// Site S1: yb1, yf1, sp1, f1; S2: f2, f3, yb2, sp2, yf2, yf3; S3: f4, sp3, yb3.
	add("yb1", "YB")
	add("yf1", "YF")
	add("sp1", "SP")
	add("f1", "F")
	add("f2", "F")
	add("f3", "F")
	add("yb2", "YB")
	add("sp2", "SP")
	add("yf2", "YF")
	add("yf3", "YF")
	add("f4", "F")
	add("sp3", "SP")
	add("yb3", "YB")
	e := func(a, bn string) { b.AddEdge(ids[a], ids[bn]) }
	e("yf1", "f2")
	e("sp1", "yf2")
	e("sp1", "f2")
	e("f2", "sp1")
	e("yf2", "f2")
	e("f3", "sp2")
	e("sp2", "yf3")
	e("yf3", "f4")
	e("f4", "sp3")
	e("sp3", "yf1")
	e("yb2", "yf3")
	e("yb2", "f3")
	e("yb3", "yf1")
	e("yb3", "f4")
	e("yb1", "f1")
	e("f1", "f4")
	g := b.MustBuild()
	assign := make([]int32, g.NumNodes())
	site := map[string]int32{
		"yb1": 0, "yf1": 0, "sp1": 0, "f1": 0,
		"f2": 1, "f3": 1, "yb2": 1, "sp2": 1, "yf2": 1, "yf3": 1,
		"f4": 2, "sp3": 2, "yb3": 2,
	}
	for name, id := range ids {
		assign[id] = site[name]
	}
	return q, g, ids, assign
}

func mustPartition(t testing.TB, g *graph.Graph, assign []int32) *partition.Fragmentation {
	t.Helper()
	fr, err := partition.FromAssign(g, assign)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Validate(); err != nil {
		t.Fatal(err)
	}
	return fr
}

// --- engine unit tests ---

func TestEngineSingleFragmentEqualsCentralized(t *testing.T) {
	q, g, _, _ := fig1()
	fr := mustPartition(t, g, make([]int32, g.NumNodes()))
	eng := NewEngine(q, fr.Frags[0])
	want := simulation.HHK(q, g)
	got := simulation.NewMatch(q.NumNodes())
	for _, r := range eng.LocalMatches() {
		got.Sets[r.U] = append(got.Sets[r.U], graph.NodeID(r.V))
	}
	got.Sort()
	if !want.Equal(got.Canonical()) {
		t.Fatalf("engine=%v centralized=%v", got, want)
	}
	if len(eng.Drain()) != 0 {
		t.Fatal("single fragment has no in-nodes; nothing to ship")
	}
}

func TestEngineOptimismKeepsCrossFragmentCandidates(t *testing.T) {
	// Chain 0->1 split between two fragments; query A->B.
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A\nnode b B\nedge a b")
	b := graph.NewBuilderDict(d)
	v0 := b.AddNode("A")
	v1 := b.AddNode("B")
	b.AddEdge(v0, v1)
	g := b.MustBuild()
	fr := mustPartition(t, g, []int32{0, 1})
	// Fragment 0 sees virtual node v1 and must keep X(a,v0) alive.
	eng := NewEngine(q, fr.Frags[0])
	if !eng.AliveLocalVar(0, v0) {
		t.Fatal("optimistic evaluation must keep X(a,0) alive")
	}
	// Now the owner reports X(b,1) false: X(a,0) must die.
	eng.ApplyFalsifications([]wire.VarRef{{U: 1, V: uint32(v1)}})
	if eng.AliveLocalVar(0, v0) {
		t.Fatal("X(a,0) must die after its only witness is falsified")
	}
}

func TestEngineDrainReportsInNodeDeaths(t *testing.T) {
	// 0:A -> 1:B in frag 0, with 2:C -> 0 crossing from frag 1, so node 0
	// is an in-node of frag 0. Query: a:A -> b:Z (no Z nodes anywhere).
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A\nnode b Z\nedge a b")
	b := graph.NewBuilderDict(d)
	v0 := b.AddNode("A")
	v1 := b.AddNode("B")
	v2 := b.AddNode("C")
	b.AddEdge(v0, v1)
	b.AddEdge(v2, v0)
	g := b.MustBuild()
	fr := mustPartition(t, g, []int32{0, 0, 1})
	eng := NewEngine(q, fr.Frags[0])
	out := eng.Drain()
	if len(out) != 1 || out[0] != (wire.VarRef{U: 0, V: uint32(v0)}) {
		t.Fatalf("Drain = %v, want the X(a,0) falsification", out)
	}
}

func TestEngineEvalsCounter(t *testing.T) {
	q, g, _, assign := fig1()
	fr := mustPartition(t, g, assign)
	eng := NewEngine(q, fr.Frags[0])
	if eng.Evals != 1 {
		t.Fatalf("Evals = %d after init", eng.Evals)
	}
	eng.ApplyFalsifications(nil)
	if eng.Evals != 2 {
		t.Fatalf("Evals = %d after batch", eng.Evals)
	}
}

// --- distributed correctness ---

func runVariants(t *testing.T, q *pattern.Pattern, g *graph.Graph, fr *partition.Fragmentation) {
	t.Helper()
	want := simulation.HHK(q, g)
	for name, cfg := range map[string]Config{
		"dGPM":        DefaultConfig(),
		"dGPM-nopush": {Incremental: true},
		"dGPMNOpt":    NOptConfig(),
		"push-only":   {Push: true, Theta: 0.2},
		"eager-push":  {Incremental: true, Push: true, Theta: 0},
	} {
		got, _ := Run(q, fr, cfg)
		if !want.Equal(got) {
			t.Fatalf("%s: got %v, want %v", name, got, want)
		}
	}
}

func TestDGPMFig1AllVariants(t *testing.T) {
	q, g, ids, assign := fig1()
	fr := mustPartition(t, g, assign)
	runVariants(t, q, g, fr)
	got, stats := Run(q, fr, DefaultConfig())
	if !got.Ok() {
		t.Fatal("Fig-1 graph must match")
	}
	// Example 2: f1 not a match of F (query node 2), yb1 not of YB (0).
	if got.Contains(2, ids["f1"]) || got.Contains(0, ids["yb1"]) {
		t.Fatalf("relation wrong: %v", got)
	}
	if stats.DataBytes == 0 && fr.Ef() > 0 {
		t.Log("note: no data shipped (all matches true everywhere)")
	}
}

func TestDGPMFig1EdgeRemoved(t *testing.T) {
	// Example 8: removing (f2,sp1) breaks the cycle; nothing matches
	// F/SP/YF/YB any more except via the other cycle… in fact the whole
	// cycle collapses and the query has no match at all.
	q, g0, ids, assign := fig1()
	b := graph.NewBuilderDict(g0.Dict())
	for v := 0; v < g0.NumNodes(); v++ {
		b.AddNodeLabel(g0.Label(graph.NodeID(v)))
	}
	g0.Edges(func(v, w graph.NodeID) bool {
		if !(v == ids["f2"] && w == ids["sp1"]) {
			b.AddEdge(v, w)
		}
		return true
	})
	g := b.MustBuild()
	fr := mustPartition(t, g, assign)
	want := simulation.HHK(q, g)
	got, stats := Run(q, fr, DefaultConfig())
	if !want.Equal(got) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if stats.DataBytes == 0 {
		t.Fatal("falsifications must propagate across sites here")
	}
}

func TestDGPMFig2CycleAcrossAllSites(t *testing.T) {
	// The impossibility construction: 2n nodes in a cycle, one (A,B) pair
	// per fragment, Vf = all nodes have crossing edges. dGPM must still
	// compute the full match.
	d := graph.NewDict()
	q := pattern.MustParse(d, "node A A\nnode B B\nedge A B\nedge B A")
	for _, n := range []int{2, 5, 9} {
		b := graph.NewBuilderDict(d)
		assign := make([]int32, 0, 2*n)
		for i := 0; i < n; i++ {
			b.AddNode("A")
			b.AddNode("B")
			assign = append(assign, int32(i), int32(i))
		}
		for i := 0; i < n; i++ {
			b.AddEdge(graph.NodeID(2*i), graph.NodeID(2*i+1))
			b.AddEdge(graph.NodeID(2*i+1), graph.NodeID((2*i+2)%(2*n)))
		}
		g := b.MustBuild()
		fr := mustPartition(t, g, assign)
		want := simulation.HHK(q, g)
		got, _ := Run(q, fr, DefaultConfig())
		if !want.Equal(got) {
			t.Fatalf("n=%d: got %v, want %v", n, got, want)
		}
		if !got.Ok() || got.NumPairs() != 2*n {
			t.Fatalf("n=%d: cycle must fully match, got %v", n, got)
		}
	}
}

func TestDGPMFig2BrokenChain(t *testing.T) {
	// Break the cycle: falsification must cascade backwards through every
	// site (this is the Theorem-1 witness: information crosses m sites).
	d := graph.NewDict()
	q := pattern.MustParse(d, "node A A\nnode B B\nedge A B\nedge B A")
	n := 8
	b := graph.NewBuilderDict(d)
	assign := make([]int32, 0, 2*n)
	for i := 0; i < n; i++ {
		b.AddNode("A")
		b.AddNode("B")
		assign = append(assign, int32(i), int32(i))
	}
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(2*i), graph.NodeID(2*i+1))
		if i < n-1 {
			b.AddEdge(graph.NodeID(2*i+1), graph.NodeID(2*i+2))
		}
	}
	g := b.MustBuild()
	fr := mustPartition(t, g, assign)
	got, stats := Run(q, fr, DefaultConfig())
	if got.NumPairs() != 0 {
		t.Fatalf("broken chain must be empty, got %v", got)
	}
	// The falsification chain visits every fragment boundary: at least
	// n-1 data messages.
	if stats.DataMsgs < int64(n-1) {
		t.Fatalf("expected ≥%d falsification messages, got %d", n-1, stats.DataMsgs)
	}
}

func randomCase(r *rand.Rand) (*pattern.Pattern, *graph.Graph, *partition.Fragmentation) {
	d := graph.NewDict()
	labels := []string{"A", "B", "C"}
	nq := 1 + r.Intn(5)
	q := pattern.New(d)
	for i := 0; i < nq; i++ {
		q.AddNode(labels[r.Intn(len(labels))], "")
	}
	for i := 0; i < nq*2; i++ {
		q.MustAddEdge(pattern.QNode(r.Intn(nq)), pattern.QNode(r.Intn(nq)))
	}
	b := graph.NewBuilderDict(d)
	nv := 2 + r.Intn(40)
	for i := 0; i < nv; i++ {
		b.AddNode(labels[r.Intn(len(labels))])
	}
	for i := r.Intn(4 * nv); i > 0; i-- {
		b.AddEdge(graph.NodeID(r.Intn(nv)), graph.NodeID(r.Intn(nv)))
	}
	g := b.MustBuild()
	nf := 1 + r.Intn(5)
	assign := make([]int32, nv)
	for i := range assign {
		assign[i] = int32(r.Intn(nf))
	}
	fr, err := partition.Build(g, assign, nf)
	if err != nil {
		panic(err)
	}
	return q, g, fr
}

// The central distributed property test: every dGPM variant equals the
// centralized maximum simulation on random (graph, pattern, partition)
// triples.
func TestQuickDGPMEqualsCentralized(t *testing.T) {
	cfgs := []Config{DefaultConfig(), NOptConfig(), {Incremental: true}, {Incremental: true, Push: true, Theta: 0}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, g, fr := randomCase(r)
		want := simulation.HHK(q, g)
		for ci, cfg := range cfgs {
			got, _ := Run(q, fr, cfg)
			if !want.Equal(got) {
				t.Logf("seed %d cfg %d: got %v want %v", seed, ci, got, want)
				return false
			}
		}
		return true
	}
	n := 60
	if testing.Short() {
		n = 15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

// Data-shipment bound (Theorem 2): dGPM ships at most O(|Ef||Vq|)
// falsification entries. Each crossing edge can carry each query-node
// variable at most once, plus the 5-byte batch headers.
func TestQuickDataShipmentBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, _, fr := randomCase(r)
		_, stats := Run(q, fr, Config{Incremental: true}) // pure dGPM protocol, no push
		boundEntries := int64(fr.Ef()*q.NumNodes() + 1)
		// 6 bytes per entry + ≤5 bytes header per message; messages ≤ entries.
		boundBytes := boundEntries*6 + stats.DataMsgs*5
		if stats.DataBytes > boundBytes {
			t.Logf("seed %d: DS=%d bytes > bound %d (Ef=%d, Vq=%d, msgs=%d)",
				seed, stats.DataBytes, boundBytes, fr.Ef(), q.NumNodes(), stats.DataMsgs)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Monotonicity/idempotence: applying the same falsification twice is a
// no-op.
func TestFalsificationIdempotent(t *testing.T) {
	q, g, _, assign := fig1()
	fr := mustPartition(t, g, assign)
	eng := NewEngine(q, fr.Frags[0])
	pairs := []wire.VarRef{{U: 2, V: uint32(fr.Frags[0].Virtual[0])}}
	eng.ApplyFalsifications(pairs)
	snap := eng.LocalMatches()
	eng.ApplyFalsifications(pairs)
	again := eng.LocalMatches()
	if len(snap) != len(again) {
		t.Fatal("re-applying a falsification changed the state")
	}
	_ = g
}

// --- push machinery ---

func TestExtractInstallRoundTrip(t *testing.T) {
	// Chain across three fragments: 0:A(f0) -> 1:B(f1) -> 2:C(f2) -> 3:D(f2).
	// Fragment f1's in-node is 1; extracting its subsystem must produce
	// X(b,1) = X(c,2) with leaf node 2 (query node c is not a leaf, so
	// X(c,2) is a genuine assumption, not a constant).
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A\nnode b B\nnode c C\nnode dd D\nedge a b\nedge b c\nedge c dd")
	b := graph.NewBuilderDict(d)
	b.AddNode("A")
	b.AddNode("B")
	b.AddNode("C")
	b.AddNode("D")
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	fr := mustPartition(t, g, []int32{0, 1, 2, 2})
	eng1 := NewEngine(q, fr.Frags[1])
	eqs, leaves := eng1.ExtractSubsystem([]graph.NodeID{1})
	if len(eqs) != 1 {
		t.Fatalf("eqs = %+v", eqs)
	}
	if eqs[0].Target != (wire.VarRef{U: 1, V: 1}) {
		t.Fatalf("target = %+v", eqs[0].Target)
	}
	if len(eqs[0].Groups) != 1 || len(eqs[0].Groups[0]) != 1 || eqs[0].Groups[0][0] != (wire.VarRef{U: 2, V: 2}) {
		t.Fatalf("groups = %+v", eqs[0].Groups)
	}
	if len(leaves) != 1 || leaves[0] != 2 {
		t.Fatalf("leaves = %v", leaves)
	}
	// Install at fragment 0 and falsify the leaf: the installed equation
	// must fire and kill X(a,0) through the local counters.
	eng0 := NewEngine(q, fr.Frags[0])
	eng0.InstallEquations(eqs)
	if !eng0.AliveLocalVar(0, 0) {
		t.Fatal("X(a,0) should still be alive")
	}
	eng0.ApplyFalsifications([]wire.VarRef{{U: 2, V: 2}})
	if eng0.AliveLocalVar(0, 0) {
		t.Fatal("falsifying the pushed equation's leaf must cascade to X(a,0)")
	}
}

func TestExtractSkipsConstantTrue(t *testing.T) {
	// X(b,1) where query node b is a leaf: constant true, not extracted.
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A\nnode b B\nedge a b")
	b := graph.NewBuilderDict(d)
	b.AddNode("A")
	b.AddNode("B")
	b.AddNode("A") // third node to create crossing edge into node 1
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	g := b.MustBuild()
	fr := mustPartition(t, g, []int32{0, 1, 0})
	eng := NewEngine(q, fr.Frags[1])
	eqs, leaves := eng.ExtractSubsystem([]graph.NodeID{1})
	if len(eqs) != 0 || len(leaves) != 0 {
		t.Fatalf("constant-true vars must not be extracted: eqs=%v leaves=%v", eqs, leaves)
	}
}

func TestUnevaluatedCounts(t *testing.T) {
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A\nnode b B\nedge a b")
	b := graph.NewBuilderDict(d)
	b.AddNode("A") // 0, frag 0, in-node? no.
	b.AddNode("A") // 1, frag 1: has crossing edge to 2; 1 is in-node via 0->1
	b.AddNode("B") // 2, frag 0: virtual at frag 1
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	fr := mustPartition(t, g, []int32{0, 1, 0})
	eng := NewEngine(q, fr.Frags[1])
	inV, virtV := eng.UnevaluatedCounts()
	// In-node 1: X(a,1) alive non-const -> 1. Virtual 2: X(b,2) is
	// const-true (b is a leaf) -> 0.
	if inV != 1 || virtV != 0 {
		t.Fatalf("inV=%d virtV=%d", inV, virtV)
	}
}

func TestDeadLocalVars(t *testing.T) {
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A\nnode b Z\nedge a b")
	b := graph.NewBuilderDict(d)
	b.AddNode("A")
	b.AddNode("A")
	b.AddEdge(1, 0)
	g := b.MustBuild()
	fr := mustPartition(t, g, []int32{0, 1})
	eng := NewEngine(q, fr.Frags[0])
	dead := eng.DeadLocalVars(0)
	// X(a,0) died (no Z successor); node 0's label A matches only query a.
	if len(dead) != 1 || dead[0] != (wire.VarRef{U: 0, V: 0}) {
		t.Fatalf("dead = %v", dead)
	}
	if eng.DeadLocalVars(99) != nil {
		t.Fatal("non-local node must return nil")
	}
}
