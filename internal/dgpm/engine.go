// Package dgpm implements the paper's core contribution (§4): the
// partition-bounded distributed graph simulation algorithm dGPM, its
// unoptimized variant dGPMNOpt, and the two optimization strategies of
// §4.2 (incremental local evaluation and the push operation).
//
// Each site runs an Engine over its fragment. The engine maintains the
// Boolean variables X(u,v) of §4.1 with counter-based propagation:
//
//	X(u,v) = ∧ over query children u' of u ( ∨ over fragment successors
//	          v' of v with matching label  X(u',v') )
//
// Variables of virtual nodes are *assumptions*: optimistically true and
// frozen locally — only a falsification shipped by their owner site kills
// them ("it always assumes the unevaluated virtual nodes as match
// candidates", §4.1). Truth values are monotone (true→false once), which
// is what bounds data shipment by O(|Ef||Vq|).
//
// The counter representation makes re-evaluation after a message
// inherently incremental: processing a falsification touches exactly the
// affected cone (the paper's O(|AFF|) bound for incremental lEval).
//
// Hot state is dense: fragment-visible nodes (locals followed by
// virtuals) are indexed 0..nVis-1 and alive flags/counters live in flat
// arrays; maps appear only on cold paths (pushed equations, message
// boundaries).
package dgpm

import (
	"fmt"

	"dgs/internal/graph"
	"dgs/internal/partition"
	"dgs/internal/pattern"
	"dgs/internal/plan"
	"dgs/internal/wire"
)

// varKey packs a variable X(u,v) into one comparable word (v is the
// global node ID).
type varKey uint64

func key(u pattern.QNode, v graph.NodeID) varKey {
	return varKey(u)<<32 | varKey(v)
}

func (k varKey) u() pattern.QNode { return pattern.QNode(k >> 32) }
func (k varKey) v() graph.NodeID  { return graph.NodeID(k & 0xffffffff) }

func (k varKey) ref() wire.VarRef { return wire.VarRef{U: uint16(k.u()), V: uint32(k.v())} }

func refKey(r wire.VarRef) varKey { return key(pattern.QNode(r.U), graph.NodeID(r.V)) }

// extVar is a variable for a node outside the fragment's view: either a
// pure assumption (a pushed equation's leaf) or an equation variable
// installed by a push. Virtual-node assumptions are NOT stored here —
// they live in the dense alive arrays.
type extVar struct {
	alive bool
	hasEq bool
	// groups holds the references of each unsatisfied OR group;
	// groupCnt counts the still-alive references per group.
	groups   [][]varKey
	groupCnt []int32
}

type qEdge struct {
	parent, child pattern.QNode
}

// Engine is the per-site evaluation state.
type Engine struct {
	q    *pattern.Pattern
	frag *partition.Fragment

	qedges []qEdge
	eOut   [][]int32 // query node -> out edge indices
	eIn    [][]int32 // query node -> in edge indices (by child)
	// constTrue[u] marks leaf query nodes: X(u,v) with matching label is
	// constant true.
	constTrue []bool

	// Dense node universe: vis[0:nl] are local nodes, vis[nl:] virtual.
	vis    []graph.NodeID
	visIdx map[graph.NodeID]int32
	nl     int32 // number of locals

	// succ[li] lists vis indices of local node li's successors.
	succ [][]int32
	// pred[vi] lists local indices with an edge to vis node vi.
	pred [][]int32
	// topoShared marks succ/pred as borrowed read-only from the
	// fragment's cached topology index (planned engines); the first
	// edge deletion deep-copies them into private rows.
	topoShared bool

	// alive[u][vi] — dense variable state for visible nodes.
	alive [][]bool
	// cnt[eIdx][li] — alive-successor counters for local variables.
	cnt [][]int32

	// ext variables (pushed equations and their leaves), keyed by (u,v).
	ext map[varKey]*extVar

	// eqWatch maps a variable to the equation groups referencing it.
	eqWatch map[varKey][]eqWatcher

	// isIn[li] marks local in-nodes.
	isIn []bool

	// kill queue: packed (u, vi) pairs pending propagation.
	queue []visVar
	// extQueue: pending ext kills.
	extQueue []varKey

	// out accumulates in-node variables falsified since the last Drain.
	out []wire.VarRef

	// unevalIn / unevalVirt track |Fi.I'| and |Fi.O'| of the benefit
	// function incrementally (decremented on kills).
	unevalIn   int
	unevalVirt int

	// Evals counts evaluation passes (initial + per incoming batch),
	// the "rounds of (incremental) partial evaluation" of §5.1.
	Evals int
}

type visVar struct {
	u  pattern.QNode
	vi int32
}

type eqWatcher struct {
	target varKey
	group  int32
}

// NewEngine builds the initial state and runs the first partial
// evaluation (procedure lEval of Fig. 4, lines 1–9): label-consistent
// variables are created, counters initialized, and locally-refutable
// variables falsified under the optimistic virtual-node assumption.
// Evaluation runs in declaration order (the unplanned fallback).
func NewEngine(q *pattern.Pattern, frag *partition.Fragment) *Engine {
	return NewEnginePlanned(q, frag, nil)
}

// NewEnginePlanned is NewEngine under an evaluation plan. The plan is
// advisory — the counter fixpoint is confluent, so the relation, the
// shipped falsification set, and the termination certificate are
// independent of evaluation order — but it changes the work profile:
//
//   - the fragment's dense topology (vis numbering, adjacency rows,
//     label buckets) comes from the fragment's cached Index, built once
//     per fragment version and shared by every planned engine — instead
//     of being rebuilt from the Succ/Labels maps on each query;
//   - construction is label-bucketed: the alive rows, successor
//     counters, benefit tallies and seed scan are all driven off the
//     index's per-label candidate buckets — touching only
//     label-consistent candidates instead of scanning all |Vq|·|vis|
//     cells and all |Eq| edges per adjacency entry. Exact, because
//     initial alive state is label consistency;
//   - per-node edge lists follow the plan's ascending-selectivity
//     order, so exhaustion checks hit the emptiest counters first;
//   - the seed scan visits query nodes rarest label first, so the
//     cheapest falsifications propagate — and ship — earliest.
//
// A nil (or ill-fitting) plan falls back to declaration order.
func NewEnginePlanned(q *pattern.Pattern, frag *partition.Fragment, pl *plan.Plan) *Engine {
	nq := q.NumNodes()
	nl := len(frag.Local)
	nvis := nl + len(frag.Virtual)
	e := &Engine{
		q:       q,
		frag:    frag,
		ext:     make(map[varKey]*extVar),
		eqWatch: make(map[varKey][]eqWatcher),
		nl:      int32(nl),
	}
	e.eOut = make([][]int32, nq)
	e.eIn = make([][]int32, nq)
	e.constTrue = make([]bool, nq)
	for u := 0; u < nq; u++ {
		for _, uc := range q.Succ(pattern.QNode(u)) {
			idx := int32(len(e.qedges))
			e.qedges = append(e.qedges, qEdge{pattern.QNode(u), uc})
			e.eOut[u] = append(e.eOut[u], idx)
			e.eIn[uc] = append(e.eIn[uc], idx)
		}
		e.constTrue[u] = len(q.Succ(pattern.QNode(u))) == 0
	}
	if pl != nil && pl.Fits(q) != nil {
		pl = nil // ill-fitting plan: declaration-order fallback
	}
	if pl != nil {
		// Re-thread the per-node edge lists in plan order. Edge indices —
		// and therefore counter rows and wire encodings — are untouched;
		// only the iteration order over a node's edges changes.
		for u := range e.eOut {
			e.eOut[u] = e.eOut[u][:0]
			e.eIn[u] = e.eIn[u][:0]
		}
		for _, ei := range pl.Edges {
			qe := e.qedges[ei]
			e.eOut[qe.parent] = append(e.eOut[qe.parent], int32(ei))
			e.eIn[qe.child] = append(e.eIn[qe.child], int32(ei))
		}
	}

	// Candidate buckets for the planned construction path (nil when
	// unplanned). Ascending, and locals precede virtuals in vis, so a
	// bucket's local prefix ends at the first index ≥ nl.
	var byLabel map[graph.Label][]int32

	e.alive = make([][]bool, nq)
	e.cnt = make([][]int32, len(e.qedges))
	for i := range e.cnt {
		e.cnt[i] = make([]int32, nl)
	}

	if pl == nil {
		// Declaration-order construction: the dense topology and scans
		// of Fig. 4, rebuilt from the fragment maps per query.
		e.visIdx = make(map[graph.NodeID]int32, nvis)
		e.vis = make([]graph.NodeID, 0, nvis)
		e.vis = append(e.vis, frag.Local...)
		e.vis = append(e.vis, frag.Virtual...)
		for i, v := range e.vis {
			e.visIdx[v] = int32(i)
		}
		e.isIn = make([]bool, nl)
		for _, v := range frag.InNodes {
			e.isIn[e.visIdx[v]] = true
		}
		e.succ = make([][]int32, nl)
		e.pred = make([][]int32, nvis)
		for li := 0; li < nl; li++ {
			ws := frag.Succ[frag.Local[li]]
			if len(ws) == 0 {
				continue
			}
			row := make([]int32, len(ws))
			for i, w := range ws {
				wi := e.visIdx[w]
				row[i] = wi
				e.pred[wi] = append(e.pred[wi], int32(li))
			}
			e.succ[li] = row
		}
		// Alive state: label consistency, locals and virtuals uniformly.
		labels := make([]graph.Label, nvis)
		for i, v := range e.vis {
			labels[i] = frag.Labels[v]
		}
		for u := 0; u < nq; u++ {
			row := make([]bool, nvis)
			ql := q.Label(pattern.QNode(u))
			for i := range row {
				row[i] = ql == labels[i]
			}
			e.alive[u] = row
		}
		// Counters: cnt[e=(u,u')][li] = #alive successors matching u'.
		for li := 0; li < nl; li++ {
			for _, wi := range e.succ[li] {
				for ei := range e.qedges {
					if e.alive[e.qedges[ei].child][wi] {
						e.cnt[ei][li]++
					}
				}
			}
		}
		// Unevaluated-variable tallies for the benefit function: alive,
		// non-constant variables on in-nodes and virtual nodes.
		for u := 0; u < nq; u++ {
			if e.constTrue[u] {
				continue
			}
			row := e.alive[u]
			for li := 0; li < nl; li++ {
				if row[li] && e.isIn[li] {
					e.unevalIn++
				}
			}
			for vi := int32(nl); vi < int32(nvis); vi++ {
				if row[vi] {
					e.unevalVirt++
				}
			}
		}
	} else {
		// Planned construction: borrow the fragment's cached topology
		// index (read-only — the first edge deletion copies succ/pred)
		// and drive every scan off its per-label candidate buckets.
		// Initial alive state is exactly label consistency, so walking a
		// node label's bucket replaces each dense scan.
		ix := frag.Index()
		e.vis = ix.Vis
		e.visIdx = ix.VisIdx
		e.isIn = ix.IsIn
		e.succ = ix.Succ
		e.pred = ix.Pred
		e.topoShared = true
		byLabel = ix.ByLabel
		for u := 0; u < nq; u++ {
			row := make([]bool, nvis)
			ql := q.Label(pattern.QNode(u))
			for _, i := range byLabel[ql] {
				row[i] = true
			}
			e.alive[u] = row
			if !e.constTrue[u] {
				e.unevalIn += ix.InOf[ql]
				e.unevalVirt += ix.VirtOf[ql]
			}
		}
		// Counters: an adjacency entry (li, wi) contributes to precisely
		// the edges whose child label is labels[wi]. The dispatch is a
		// linear match over the pattern's few distinct child labels —
		// integer compares, no alive-row loads.
		type childGroup struct {
			label graph.Label
			edges []int32
		}
		var groups []childGroup
		for ei, qe := range e.qedges {
			l := q.Label(qe.child)
			found := false
			for gi := range groups {
				if groups[gi].label == l {
					groups[gi].edges = append(groups[gi].edges, int32(ei))
					found = true
					break
				}
			}
			if !found {
				groups = append(groups, childGroup{l, []int32{int32(ei)}})
			}
		}
		labels := ix.Labels
		for li := 0; li < nl; li++ {
			for _, wi := range e.succ[li] {
				l := labels[wi]
				for gi := range groups {
					if groups[gi].label == l {
						for _, ei := range groups[gi].edges {
							e.cnt[ei][li]++
						}
						break
					}
				}
			}
		}
	}

	// Seed: alive local vars with an exhausted out-edge counter die.
	// Under a plan the scan runs rarest label first over each label's
	// candidate bucket only (and each node's edges in ascending
	// selectivity), so the cheapest falsifications enter the queue —
	// and the first Drain — earliest.
	if pl == nil {
		for u := 0; u < nq; u++ {
			if e.constTrue[u] {
				continue
			}
			row := e.alive[u]
			for li := 0; li < nl; li++ {
				if !row[li] {
					continue
				}
				for _, ei := range e.eOut[u] {
					if e.cnt[ei][li] == 0 {
						e.killVis(pattern.QNode(u), int32(li))
						break
					}
				}
			}
		}
	} else {
		for _, pu := range pl.Nodes {
			u := pattern.QNode(pu)
			if e.constTrue[u] {
				continue
			}
			row := e.alive[u]
			for _, li := range byLabel[q.Label(u)] {
				if li >= int32(nl) {
					break // virtual suffix of the bucket
				}
				if !row[li] { // killed by an earlier seed's direct hit
					continue
				}
				for _, ei := range e.eOut[u] {
					if e.cnt[ei][li] == 0 {
						e.killVis(u, li)
						break
					}
				}
			}
		}
	}
	e.propagate()
	e.Evals++
	return e
}

// isAlive reports the current status of any variable the engine can see.
// Unknown external variables default to alive.
func (e *Engine) isAlive(k varKey) bool {
	if vi, ok := e.visIdx[k.v()]; ok {
		return e.alive[k.u()][vi]
	}
	if x, ok := e.ext[k]; ok {
		return x.alive
	}
	return true
}

// isConst reports whether k is constant true: leaf query node with a
// matching label on a visible node.
func (e *Engine) isConst(k varKey) bool {
	if !e.constTrue[k.u()] {
		return false
	}
	if vi, ok := e.visIdx[k.v()]; ok {
		// Initial alive == label consistency; leaves are never killed.
		return e.alive[k.u()][vi]
	}
	return false
}

// killVis falsifies a visible variable. Local in-node deaths are recorded
// for shipping.
func (e *Engine) killVis(u pattern.QNode, vi int32) {
	if !e.alive[u][vi] {
		return
	}
	e.alive[u][vi] = false
	if vi < e.nl {
		if e.isIn[vi] {
			e.out = append(e.out, wire.VarRef{U: uint16(u), V: uint32(e.vis[vi])})
			if !e.constTrue[u] {
				e.unevalIn--
			}
		}
	} else if !e.constTrue[u] {
		e.unevalVirt--
	}
	e.queue = append(e.queue, visVar{u, vi})
}

func (e *Engine) killExt(k varKey) {
	x, ok := e.ext[k]
	if !ok {
		x = &extVar{alive: true}
		e.ext[k] = x
	}
	if !x.alive {
		return
	}
	x.alive = false
	x.groups, x.groupCnt = nil, nil
	e.extQueue = append(e.extQueue, k)
}

// propagate drains the kill queues: each death decrements successor
// counters of local predecessors (the fragment-level HHK step) and the
// group counters of watching equations.
func (e *Engine) propagate() {
	for len(e.queue) > 0 || len(e.extQueue) > 0 {
		if n := len(e.queue); n > 0 {
			kv := e.queue[n-1]
			e.queue = e.queue[:n-1]
			// Local predecessors lose a witness for each edge into kv.u.
			for _, ei := range e.eIn[kv.u] {
				up := e.qedges[ei].parent
				cnt := e.cnt[ei]
				arow := e.alive[up]
				for _, lp := range e.pred[kv.vi] {
					cnt[lp]--
					if cnt[lp] == 0 && arow[lp] {
						e.killVis(up, lp)
					}
				}
			}
			e.fireWatchers(key(kv.u, e.vis[kv.vi]))
			continue
		}
		n := len(e.extQueue)
		k := e.extQueue[n-1]
		e.extQueue = e.extQueue[:n-1]
		e.fireWatchers(k)
	}
}

// fireWatchers notifies installed equations that k died.
func (e *Engine) fireWatchers(k varKey) {
	ws, ok := e.eqWatch[k]
	if !ok {
		return
	}
	delete(e.eqWatch, k)
	for _, w := range ws {
		x, ok := e.ext[w.target]
		if !ok || !e.isAlive(w.target) || int(w.group) >= len(x.groupCnt) {
			continue
		}
		x.groupCnt[w.group]--
		if x.groupCnt[w.group] == 0 {
			e.killVar(w.target)
		}
	}
}

// ApplyFalsifications processes a received falsification batch
// (incremental lEval, §4.2): each listed variable is killed and the
// effect propagated. Unknown or already-dead variables are ignored —
// falsifications are idempotent.
func (e *Engine) ApplyFalsifications(pairs []wire.VarRef) {
	for _, r := range pairs {
		k := refKey(r)
		if vi, ok := e.visIdx[k.v()]; ok {
			if e.alive[k.u()][vi] {
				e.killVis(k.u(), vi)
			}
			continue
		}
		e.killExt(k)
	}
	e.propagate()
	e.Evals++
}

// ApplyEdgeDeletions removes the listed fragment edges (source local,
// target visible) from the engine's adjacency and incrementally refines
// the relation — the distributed counterpart of the deletion case of
// [13]: simulation shrinks monotonically under deletions, so the counter
// state absorbs each removal in O(|AFF|). Falsified in-node variables
// accumulate for Drain as usual. Edges unknown to the engine are
// ignored (the site layer validates existence upstream).
func (e *Engine) ApplyEdgeDeletions(dels [][2]graph.NodeID) {
	if e.topoShared && len(dels) > 0 {
		// The adjacency rows are borrowed from the fragment's shared
		// topology index; take private copies before the first unlink.
		// One O(|Ei|) copy per standing session, amortized over its
		// lifetime — per-deletion refinement stays O(|AFF|).
		e.succ = copyRows(e.succ)
		e.pred = copyRows(e.pred)
		e.topoShared = false
	}
	for _, d := range dels {
		v, w := d[0], d[1]
		li, ok := e.visIdx[v]
		if !ok || li >= e.nl {
			continue
		}
		wi, ok := e.visIdx[w]
		if !ok {
			continue
		}
		// Unlink first: kills propagated below must not walk the deleted
		// edge, or counters would be decremented for a witness already
		// discounted here.
		if !unlink(&e.succ[li], wi) {
			continue // edge not present (already deleted)
		}
		unlink(&e.pred[wi], li)
		// v loses witness w for every query edge whose child w matches.
		// Snapshot w's liveness first: a kill fired mid-loop (w can be v
		// itself via a self-loop) would otherwise lose this edge's
		// decrement for the remaining query edges.
		wasAlive := make([]bool, len(e.qedges))
		for ei := range e.qedges {
			wasAlive[ei] = e.alive[e.qedges[ei].child][wi]
		}
		for ei, qe := range e.qedges {
			if !wasAlive[ei] {
				continue
			}
			e.cnt[ei][li]--
			if e.cnt[ei][li] == 0 && e.alive[qe.parent][li] {
				e.killVis(qe.parent, li)
			}
		}
		// Drain the queue per deletion so the next deletion starts from a
		// settled counter state (the invariant the decrement test needs).
		e.propagate()
	}
	e.Evals++
}

// copyRows deep-copies a dense adjacency table so unlink can edit rows
// in place without touching the shared original.
func copyRows(rows [][]int32) [][]int32 {
	out := make([][]int32, len(rows))
	for i, r := range rows {
		if len(r) == 0 {
			continue
		}
		out[i] = append([]int32(nil), r...)
	}
	return out
}

// unlink removes one occurrence of x from *s, reporting whether it was
// present. Order is preserved (succ rows feed no further sorting, but
// deterministic iteration keeps message order reproducible).
func unlink(s *[]int32, x int32) bool {
	row := *s
	for i, y := range row {
		if y == x {
			*s = append(row[:i], row[i+1:]...)
			return true
		}
	}
	return false
}

// Drain returns and clears the in-node variables falsified since the last
// call. The site layer routes them to watcher sites (procedure lMsg).
func (e *Engine) Drain() []wire.VarRef {
	out := e.out
	e.out = nil
	return out
}

// AliveLocalVar reports the status of a local variable; it panics if v is
// not local (programming error in the caller).
func (e *Engine) AliveLocalVar(u pattern.QNode, v graph.NodeID) bool {
	vi, ok := e.visIdx[v]
	if !ok || vi >= e.nl {
		panic(fmt.Sprintf("dgpm: node %d is not local to fragment %d", v, e.frag.ID))
	}
	return e.alive[u][vi]
}

// LocalMatches lists all alive local variables — the site's partial
// answer Q(Fi) shipped to the coordinator in phase 3.
func (e *Engine) LocalMatches() []wire.VarRef {
	var out []wire.VarRef
	for u := range e.alive {
		row := e.alive[u]
		for li := int32(0); li < e.nl; li++ {
			if row[li] {
				out = append(out, wire.VarRef{U: uint16(u), V: uint32(e.vis[li])})
			}
		}
	}
	return out
}

// DeadLocalVars lists the falsified non-constant variables of a local
// node — used to backfill a rerouted watcher that joined after those
// variables died.
func (e *Engine) DeadLocalVars(v graph.NodeID) []wire.VarRef {
	vi, ok := e.visIdx[v]
	if !ok || vi >= e.nl {
		return nil
	}
	var out []wire.VarRef
	lbl := e.frag.Labels[v]
	for u := 0; u < e.q.NumNodes(); u++ {
		if e.q.Label(pattern.QNode(u)) == lbl && !e.alive[u][vi] {
			out = append(out, wire.VarRef{U: uint16(u), V: uint32(v)})
		}
	}
	return out
}

// UnevaluatedCounts reports |Fi.I'| and |Fi.O'| of the benefit function
// B(Si) (§4.2): in-node and virtual-node variables whose truth value is
// still unknown (alive and not constant). Maintained incrementally.
func (e *Engine) UnevaluatedCounts() (inVars, virtVars int) {
	return e.unevalIn, e.unevalVirt
}
