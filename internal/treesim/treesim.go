// Package treesim implements dGPMt (§5.2): distributed graph simulation
// over tree data graphs whose fragments are connected subtrees, with two
// rounds of site↔coordinator communication and data shipment O(|Q||F|) —
// the parallel-scalable-in-data-shipment case of Corollary 4, extending
// the XPath partial-evaluation bounds of [10] to graph simulation.
//
// Protocol:
//
//  1. Every site runs lEval on its subtree and ships the Boolean
//     equations of its root (in-node) variables — reduced to the virtual
//     variables of its child fragments' roots — plus the variables it
//     already falsified, to the coordinator.
//  2. The coordinator unifies the equations into one system and solves it
//     bottom-up over the fragment tree (greatest-fixpoint propagation,
//     linear here because the system is acyclic), then ships each site
//     the solved values of exactly the virtual variables it depends on.
//  3. Sites finalize their local matches; assembly proceeds as in dGPM.
//
// Because each fragment is a connected subtree, it has at most one
// in-node (its root), so each round-1 upload is a single vector of
// O(|Q|)-reduced equations and each round-2 download is one value list —
// 2|F| messages, O(|Q||F|) bytes in total.
package treesim

import (
	"context"
	"fmt"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/dgpm"
	"dgs/internal/graph"
	"dgs/internal/obs"
	"dgs/internal/partition"
	"dgs/internal/pattern"
	"dgs/internal/simulation"
	"dgs/internal/wire"
)

type treeSite struct {
	q    *pattern.Pattern
	frag *partition.Fragment

	eng     *dgpm.Engine
	pending []wire.Payload
}

func (s *treeSite) Recv(ctx *cluster.Ctx, from int, p wire.Payload) {
	if s.eng == nil {
		if c, ok := p.(*wire.Control); !ok || c.Op != dgpm.OpStart {
			s.pending = append(s.pending, p)
			return
		}
	}
	switch m := p.(type) {
	case *wire.Control:
		switch m.Op {
		case dgpm.OpStart:
			s.eng = dgpm.NewEngine(s.q, s.frag)
			eqs, _ := s.eng.ExtractSubsystem(s.frag.InNodes)
			ctx.Send(cluster.Coordinator, &wire.EqSystem{
				Frag:      uint16(s.frag.ID),
				Eqs:       eqs,
				FalseVars: s.eng.Drain(),
			})
			for _, buf := range s.pending {
				s.Recv(ctx, from, buf)
			}
			s.pending = nil
		case dgpm.OpReport:
			ctx.Send(cluster.Coordinator, &wire.Matches{
				Frag:  uint16(s.frag.ID),
				Pairs: s.eng.LocalMatches(),
			})
		}
	case *wire.Values:
		// Round 2: instantiated virtual-variable values (listed = false).
		s.eng.ApplyFalsifications(m.False)
		s.eng.Drain() // deaths of our own in-node are already known upstream
	}
}

// solver is the coordinator's Boolean equation system (§5.2 step 2):
// greatest-fixpoint propagation with group counters, the same discipline
// as the per-site engine. For tree fragmentations the system is acyclic
// and each variable is processed once, giving the O(|Q||F|) solve time.
type solver struct {
	alive    map[wire.VarRef]bool // known variables; absent = true (settled)
	groups   map[wire.VarRef][][]wire.VarRef
	watchers map[wire.VarRef][]watch
	queue    []wire.VarRef
	grpCnt   map[wire.VarRef][]int
}

type watch struct {
	target wire.VarRef
	group  int
}

func newSolver() *solver {
	return &solver{
		alive:    make(map[wire.VarRef]bool),
		groups:   make(map[wire.VarRef][][]wire.VarRef),
		watchers: make(map[wire.VarRef][]watch),
		grpCnt:   make(map[wire.VarRef][]int),
	}
}

func (s *solver) addSystem(m *wire.EqSystem) {
	for _, eq := range m.Eqs {
		if _, ok := s.groups[eq.Target]; ok {
			continue
		}
		s.groups[eq.Target] = eq.Groups
		if _, known := s.alive[eq.Target]; !known {
			s.alive[eq.Target] = true
		}
	}
	for _, r := range m.FalseVars {
		s.markFalse(r)
	}
}

func (s *solver) markFalse(r wire.VarRef) {
	if a, ok := s.alive[r]; ok && !a {
		return
	}
	s.alive[r] = false
	s.queue = append(s.queue, r)
}

// solve wires the group counters and propagates falseness to fixpoint.
func (s *solver) solve() {
	for target, gs := range s.groups {
		if !s.alive[target] {
			continue
		}
		cnts := make([]int, len(gs))
		dead := false
		for gi, g := range gs {
			n := 0
			for _, r := range g {
				if a, known := s.alive[r]; known && !a {
					continue // already false
				}
				n++
				s.watchers[r] = append(s.watchers[r], watch{target, gi})
			}
			cnts[gi] = n
			if n == 0 {
				dead = true
			}
		}
		s.grpCnt[target] = cnts
		if dead {
			s.markFalse(target)
		}
	}
	for len(s.queue) > 0 {
		r := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		for _, w := range s.watchers[r] {
			if !s.alive[w.target] {
				continue
			}
			c := s.grpCnt[w.target]
			c[w.group]--
			if c[w.group] == 0 {
				s.markFalse(w.target)
			}
		}
		delete(s.watchers, r)
	}
}

// falseFor reports the solved-false variables among the given nodes'
// variables — the round-2 payload for one site.
func (s *solver) falseFor(nodes []graph.NodeID, nq int) []wire.VarRef {
	var out []wire.VarRef
	for _, v := range nodes {
		for u := 0; u < nq; u++ {
			r := wire.VarRef{U: uint16(u), V: uint32(v)}
			if a, known := s.alive[r]; known && !a {
				out = append(out, r)
			}
		}
	}
	return out
}

// treeCoord collects round-1 equation systems and final matches.
type treeCoord struct {
	n       int
	nq      int
	systems []*wire.EqSystem
	pairs   []wire.VarRef
}

func (c *treeCoord) Recv(ctx *cluster.Ctx, from int, p wire.Payload) {
	switch m := p.(type) {
	case *wire.EqSystem:
		c.systems = append(c.systems, m)
	case *wire.Matches:
		c.pairs = append(c.pairs, m.Pairs...)
	}
}

// Eval evaluates Q over a tree fragmentation resident on cluster c with
// dGPMt, as one session. Preconditions (Corollary 4): G is a tree (or
// forest) and every fragment is connected, i.e. has at most one in-node.
// Violations are reported as errors before any distributed work.
func Eval(ctx context.Context, c *cluster.Cluster, q *pattern.Pattern, fr *partition.Fragmentation) (*simulation.Match, cluster.Stats, error) {
	m, st, _, err := EvalTraced(ctx, c, q, fr, 0)
	return m, st, err
}

// EvalTraced is Eval with distributed tracing: a nonzero traceID makes
// every site record per-round spans, collected after the session
// closes. traceID 0 disables tracing (nil trace) with wire traffic
// byte-identical to Eval.
func EvalTraced(ctx context.Context, c *cluster.Cluster, q *pattern.Pattern, fr *partition.Fragmentation, traceID uint64) (*simulation.Match, cluster.Stats, *obs.QueryTrace, error) {
	if _, ok := graph.IsTree(fr.CurrentGraph()); !ok {
		return nil, cluster.Stats{}, nil, fmt.Errorf("treesim: dGPMt requires a tree (or forest) data graph")
	}
	for _, f := range fr.Frags {
		if len(f.InNodes) > 1 {
			return nil, cluster.Stats{}, nil, fmt.Errorf("treesim: fragment %d has %d in-nodes; fragments must be connected subtrees", f.ID, len(f.InNodes))
		}
	}

	n := fr.NumFragments()
	coord := &treeCoord{n: n, nq: q.NumNodes()}
	spec := cluster.SessionSpec{Algo: Algo, Query: pattern.EncodeBinary(q), TraceID: traceID}
	sess, err := c.OpenSession(cluster.SessionQuery, spec, coord)
	if err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	defer sess.Close()

	start := time.Now()
	// Round 1: partial evaluation, equations to the coordinator.
	sess.Broadcast(&wire.Control{Op: dgpm.OpStart})
	if err := sess.WaitQuiesce(ctx); err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	sess.AddRounds(1)

	// Solve the unified system at Sc.
	sv := newSolver()
	for _, m := range coord.systems {
		sv.addSystem(m)
	}
	sv.solve()

	// Round 2: per-site values of its virtual variables. The coordinator
	// organized the fragmentation, so it knows each site's virtual nodes;
	// only falsified values need shipping.
	for i := 0; i < n; i++ {
		falsev := sv.falseFor(fr.Frags[i].Virtual, q.NumNodes())
		sess.Inject(i, &wire.Values{False: falsev})
	}
	if err := sess.WaitQuiesce(ctx); err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	sess.AddRounds(1)

	// Assembly.
	sess.Broadcast(&wire.Control{Op: dgpm.OpReport})
	if err := sess.WaitQuiesce(ctx); err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	wall := time.Since(start)

	m := simulation.NewMatch(q.NumNodes())
	for _, r := range coord.pairs {
		m.Sets[r.U] = append(m.Sets[r.U], graph.NodeID(r.V))
	}
	m.Sort()
	stats := sess.Stats()
	stats.Wall = wall
	match := m.Canonical()
	sess.Close()
	trace, err := sess.Trace(ctx)
	if err != nil {
		return nil, cluster.Stats{}, nil, err
	}
	return match, stats, trace, nil
}

// Run evaluates one query on a throwaway single-query cluster.
func Run(q *pattern.Pattern, fr *partition.Fragmentation) (*simulation.Match, cluster.Stats, error) {
	c := cluster.NewLocal(fr, cluster.Network{})
	defer c.Shutdown()
	return Eval(context.Background(), c, q, fr)
}

// Algo is the registered name of the dGPMt site.
const Algo = "dgpmt"

func init() {
	cluster.RegisterAlgorithm(Algo, func(spec cluster.SessionSpec, frag *partition.Fragment, assign []int32) (cluster.Handler, error) {
		q, err := pattern.DecodeBinary(spec.Query)
		if err != nil {
			return nil, err
		}
		return &treeSite{q: q, frag: frag}, nil
	})
}
