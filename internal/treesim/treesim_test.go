package treesim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dgs/internal/dgpm"
	"dgs/internal/graph"
	"dgs/internal/partition"
	"dgs/internal/pattern"
	"dgs/internal/simulation"
)

// randomTree builds a rooted labeled tree with n nodes; parent of node i
// is a random node < i, so IDs are topologically ordered.
func randomTree(r *rand.Rand, d *graph.Dict, n int, labels []string) *graph.Graph {
	b := graph.NewBuilderDict(d)
	for i := 0; i < n; i++ {
		b.AddNode(labels[r.Intn(len(labels))])
	}
	for i := 1; i < n; i++ {
		b.AddEdge(graph.NodeID(r.Intn(i)), graph.NodeID(i))
	}
	return b.MustBuild()
}

func randomTreeCase(r *rand.Rand) (*pattern.Pattern, *graph.Graph, *partition.Fragmentation) {
	d := graph.NewDict()
	labels := []string{"A", "B", "C"}
	nq := 1 + r.Intn(5)
	q := pattern.New(d)
	for i := 0; i < nq; i++ {
		q.AddNode(labels[r.Intn(len(labels))], "")
	}
	for i := 0; i < nq*2; i++ {
		a, b := r.Intn(nq), r.Intn(nq)
		if a == b {
			continue
		}
		q.MustAddEdge(pattern.QNode(min(a, b)), pattern.QNode(max(a, b)))
	}
	g := randomTree(r, d, 2+r.Intn(60), labels)
	nf := 1 + r.Intn(6)
	fr, err := partition.ConnectedTree(g, nf)
	if err != nil {
		panic(err)
	}
	return q, g, fr
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestTreeChainAcrossFragments(t *testing.T) {
	// Path A->B->C->D split into 4 single-node fragments; query A->B->C->D.
	d := graph.NewDict()
	q := pattern.MustParse(d, `
node a A
node b B
node c C
node dd D
edge a b
edge b c
edge c dd
`)
	b := graph.NewBuilderDict(d)
	b.AddNode("A")
	b.AddNode("B")
	b.AddNode("C")
	b.AddNode("D")
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	fr, err := partition.FromAssign(g, []int32{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := simulation.HHK(q, g)
	got, stats, err := Run(q, fr)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if !got.Ok() {
		t.Fatal("path must match")
	}
	if stats.Rounds != 2 {
		t.Fatalf("dGPMt uses exactly 2 rounds, got %d", stats.Rounds)
	}
}

func TestTreeNoMatchPropagates(t *testing.T) {
	// Path A->B->C, but query wants A->B->Z: everything dies.
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A\nnode b B\nnode z Z\nedge a b\nedge b z")
	b := graph.NewBuilderDict(d)
	b.AddNode("A")
	b.AddNode("B")
	b.AddNode("C")
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	fr, err := partition.FromAssign(g, []int32{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Run(q, fr)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPairs() != 0 {
		t.Fatalf("must be empty, got %v", got)
	}
}

func TestRejectsNonTree(t *testing.T) {
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A")
	b := graph.NewBuilderDict(d)
	b.AddNode("A")
	b.AddNode("A")
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g := b.MustBuild()
	fr, err := partition.FromAssign(g, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(q, fr); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestRejectsDisconnectedFragment(t *testing.T) {
	// Tree 0->1, 0->2 with fragment {1,2}: two in-nodes in one fragment.
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A")
	b := graph.NewBuilderDict(d)
	b.AddNode("A")
	b.AddNode("A")
	b.AddNode("A")
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	g := b.MustBuild()
	fr, err := partition.FromAssign(g, []int32{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(q, fr); err == nil {
		t.Fatal("disconnected fragment accepted")
	}
}

// Central property: dGPMt equals centralized simulation and dGPM on
// random tree cases.
func TestQuickTreeEqualsCentralized(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, g, fr := randomTreeCase(r)
		want := simulation.HHK(q, g)
		got, _, err := Run(q, fr)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !want.Equal(got) {
			t.Logf("seed %d: got %v want %v (frags=%d)", seed, got, want, fr.NumFragments())
			return false
		}
		got2, _ := dgpm.Run(q, fr, dgpm.DefaultConfig())
		return want.Equal(got2)
	}
	n := 60
	if testing.Short() {
		n = 15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

// Corollary 4's shipment bound: dGPMt ships O(|Q||F|) bytes. We verify
// with a generous constant: per fragment, equations plus values must fit
// in c·|Q|² entries (the reduced root vector has ≤|Vq| equations over
// ≤|Vq| virtual variables per child fragment; children counted once
// globally).
func TestQuickTreeShipmentBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, _, fr := randomTreeCase(r)
		_, stats, err := Run(q, fr)
		if err != nil {
			return false
		}
		qsz := int64(q.Size())
		bound := (qsz*qsz + 64) * int64(fr.NumFragments()) * 8
		if stats.DataBytes > bound {
			t.Logf("seed %d: DS=%d > bound %d (|Q|=%d |F|=%d)", seed, stats.DataBytes, bound, qsz, fr.NumFragments())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The tree shipment must not scale with fragment size — only with |F|
// (parallel scalability in data shipment). Double the tree size with the
// same |F| and the shipped bytes should stay in the same ballpark.
func TestTreeShipmentIndependentOfGraphSize(t *testing.T) {
	d := graph.NewDict()
	q := pattern.MustParse(d, "node a A\nnode b B\nedge a b")
	ship := func(n int) int64 {
		r := rand.New(rand.NewSource(5))
		g := randomTree(r, d, n, []string{"A", "B"})
		fr, err := partition.ConnectedTree(g, 8)
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := Run(q, fr)
		if err != nil {
			t.Fatal(err)
		}
		return stats.DataBytes
	}
	small := ship(500)
	large := ship(4000)
	if large > 8*small+512 {
		t.Fatalf("shipment grew with |G|: %d -> %d bytes", small, large)
	}
}
