package dagcheck

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dgs/internal/graph"
	"dgs/internal/partition"
)

func fragmentify(t testing.TB, g *graph.Graph, nf int, seed int64) *partition.Fragmentation {
	t.Helper()
	fr, err := partition.Random(g, nf, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

func TestLocalCycleDetected(t *testing.T) {
	b := graph.NewBuilder()
	b.AddNode("A")
	b.AddNode("A")
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g := b.MustBuild()
	fr, err := partition.Build(g, []int32{0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := IsDAG(fr)
	if ok {
		t.Fatal("local 2-cycle missed")
	}
}

func TestCrossFragmentCycleDetected(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 with every node on its own site: the cycle is
	// invisible locally and must be caught on the boundary graph.
	b := graph.NewBuilder()
	for i := 0; i < 3; i++ {
		b.AddNode("A")
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	g := b.MustBuild()
	fr, err := partition.Build(g, []int32{0, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ok, stats := IsDAG(fr)
	if ok {
		t.Fatal("cross-fragment cycle missed")
	}
	if stats.DataMsgs == 0 {
		t.Fatal("summaries must have been shipped")
	}
}

func TestChainIsDAG(t *testing.T) {
	b := graph.NewBuilder()
	for i := 0; i < 6; i++ {
		b.AddNode("A")
	}
	for i := 0; i < 5; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g := b.MustBuild()
	fr, err := partition.Build(g, []int32{0, 1, 2, 0, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := IsDAG(fr); !ok {
		t.Fatal("chain wrongly reported cyclic")
	}
}

func TestSummarizePairs(t *testing.T) {
	// Fragment 0 = {0,1}, fragment 1 = {2}; edges 2->0, 1->2: node 0 is
	// an in-node of frag 0 reaching virtual node 2 via 0->1->2.
	b := graph.NewBuilder()
	b.AddNode("A")
	b.AddNode("A")
	b.AddNode("A")
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	g := b.MustBuild()
	fr, err := partition.Build(g, []int32{0, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cyclic, pairs := Summarize(fr.Frags[0])
	if cyclic {
		t.Fatal("fragment 0 has no local cycle")
	}
	if len(pairs) != 1 || pairs[0] != [2]uint32{0, 2} {
		t.Fatalf("pairs = %v", pairs)
	}
}

// Property: the distributed verdict equals the centralized one on random
// graphs and partitions.
func TestQuickAgreesWithCentralized(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		nv := 2 + int(n8)%40
		b := graph.NewBuilder()
		for i := 0; i < nv; i++ {
			b.AddNode("A")
		}
		// Sparse graphs so both verdicts occur.
		for i := r.Intn(nv + nv/2); i > 0; i-- {
			v, w := r.Intn(nv), r.Intn(nv)
			if v != w || r.Intn(4) == 0 {
				b.AddEdge(graph.NodeID(v), graph.NodeID(w))
			}
		}
		g := b.MustBuild()
		want := graph.IsDAG(g)
		fr := fragmentify(t, g, 1+r.Intn(5), seed)
		got, _ := IsDAG(fr)
		if got != want {
			t.Logf("seed %d: distributed=%v centralized=%v", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Data shipment is bounded by the boundary sizes, not |G|.
func TestShipmentBoundedByBoundary(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	b := graph.NewBuilder()
	nv := 3000
	for i := 0; i < nv; i++ {
		b.AddNode("A")
	}
	for i := 1; i < nv; i++ {
		b.AddEdge(graph.NodeID(r.Intn(i)), graph.NodeID(i)) // DAG
	}
	g := b.MustBuild()
	fr := fragmentify(t, g, 4, 5)
	_, stats := IsDAG(fr)
	bound := int64(0)
	for _, f := range fr.Frags {
		bound += int64(len(f.InNodes) * len(f.Virtual))
	}
	// 8 bytes per pair plus per-message framing.
	if stats.DataBytes > bound*8+1024 {
		t.Fatalf("shipment %d exceeds boundary bound %d", stats.DataBytes, bound*8+1024)
	}
}
