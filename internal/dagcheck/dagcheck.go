// Package dagcheck decides whether a fragmented, distributed data graph
// is acyclic — the precondition of dGPMd's "DAG G" case (§5.1) — without
// assembling the graph anywhere.
//
// The protocol is partition bounded in the paper's sense. Each site, in
// one round:
//
//  1. checks its local subgraph (edges among its own nodes) for cycles
//     with Tarjan's algorithm, and
//  2. computes its boundary summary: for every in-node i, the set of its
//     virtual nodes o reachable from i through local nodes.
//
// Sites ship only the summary — at most |Fi.I|·|Fi.O| pairs — to the
// coordinator, which checks the condensed boundary graph for cycles.
// A global cycle either lies inside one fragment (caught locally) or
// crosses fragments; any crossing cycle decomposes into in-node → virtual
// segments, so it appears as a cycle of the boundary graph, and
// conversely every boundary cycle lifts to a real cycle. Data shipment is
// O(Σ|Fi.I|·|Fi.O|) ≤ O(|Vf|²), independent of |G|.
package dagcheck

import (
	"context"
	"time"

	"dgs/internal/cluster"
	"dgs/internal/graph"
	"dgs/internal/partition"
	"dgs/internal/wire"
)

const opCheck = 20

// checkSite computes and ships the boundary summary.
type checkSite struct {
	frag *partition.Fragment
}

func (s *checkSite) Recv(ctx *cluster.Ctx, from int, p wire.Payload) {
	c, ok := p.(*wire.Control)
	if !ok || c.Op != opCheck {
		return
	}
	cyclic, pairs := Summarize(s.frag)
	sg := &wire.Subgraph{Edges: pairs}
	ctx.Send(cluster.Coordinator, sg)
	ctx.Send(cluster.Coordinator, &wire.Control{Op: opCheck, Flag: cyclic})
}

// Summarize performs the local half of the protocol: a local cycle check
// plus in-node → virtual reachability pairs.
func Summarize(f *partition.Fragment) (localCyclic bool, pairs [][2]uint32) {
	// Dense local indexing (locals then virtuals), mirroring the engine.
	idx := make(map[graph.NodeID]int32, len(f.Local)+len(f.Virtual))
	for i, v := range f.Local {
		idx[v] = int32(i)
	}
	nl := len(f.Local)
	for i, v := range f.Virtual {
		idx[v] = int32(nl + i)
	}
	// Local-only adjacency for the cycle check; full adjacency for
	// reachability (virtual nodes are sinks).
	succ := make([][]int32, nl)
	for li, v := range f.Local {
		for _, w := range f.Succ[v] {
			succ[li] = append(succ[li], idx[w])
		}
	}

	// Tarjan-free cycle check: Kahn's algorithm over local nodes.
	indeg := make([]int32, nl)
	for li := 0; li < nl; li++ {
		for _, w := range succ[li] {
			if w < int32(nl) {
				indeg[w]++
			}
		}
	}
	queue := make([]int32, 0, nl)
	for li := 0; li < nl; li++ {
		if indeg[li] == 0 {
			queue = append(queue, int32(li))
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, w := range succ[v] {
			if w < int32(nl) {
				indeg[w]--
				if indeg[w] == 0 {
					queue = append(queue, w)
				}
			}
		}
	}
	if seen != nl {
		return true, nil
	}

	// Reachability from every in-node to virtual nodes (BFS per in-node).
	mark := make([]int32, nl)
	for i := range mark {
		mark[i] = -1
	}
	for ii, in := range f.InNodes {
		start := idx[in]
		stack := []int32{start}
		mark[start] = int32(ii)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range succ[v] {
				if w >= int32(nl) {
					pairs = append(pairs, [2]uint32{uint32(in), uint32(f.Virtual[w-int32(nl)])})
					continue
				}
				if mark[w] != int32(ii) {
					mark[w] = int32(ii)
					stack = append(stack, w)
				}
			}
		}
	}
	return false, dedupePairs(pairs)
}

func dedupePairs(pairs [][2]uint32) [][2]uint32 {
	if len(pairs) < 2 {
		return pairs
	}
	seen := make(map[[2]uint32]bool, len(pairs))
	out := pairs[:0]
	for _, p := range pairs {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// checkCoord accumulates summaries.
type checkCoord struct {
	cyclic bool
	pairs  [][2]uint32
}

func (c *checkCoord) Recv(ctx *cluster.Ctx, from int, p wire.Payload) {
	switch m := p.(type) {
	case *wire.Subgraph:
		c.pairs = append(c.pairs, m.Edges...)
	case *wire.Control:
		if m.Flag {
			c.cyclic = true
		}
	}
}

// Algo is the registered name of the acyclicity-check site (query-less).
const Algo = "dagcheck"

func init() {
	cluster.RegisterAlgorithm(Algo, func(spec cluster.SessionSpec, frag *partition.Fragment, assign []int32) (cluster.Handler, error) {
		return &checkSite{frag: frag}, nil
	})
}

// Eval runs the distributed acyclicity protocol as a session on a live
// cluster whose sites hold the fragmentation.
func Eval(ctx context.Context, c *cluster.Cluster, fr *partition.Fragmentation) (bool, cluster.Stats, error) {
	coord := &checkCoord{}
	sess, err := c.OpenSession(cluster.SessionQuery, cluster.SessionSpec{Algo: Algo}, coord)
	if err != nil {
		return false, cluster.Stats{}, err
	}
	defer sess.Close()
	start := time.Now()
	sess.Broadcast(&wire.Control{Op: opCheck})
	if err := sess.WaitQuiesce(ctx); err != nil {
		return false, cluster.Stats{}, err
	}
	stats := sess.Stats()
	stats.Wall = time.Since(start)
	stats.Rounds = 1
	if coord.cyclic {
		return false, stats, nil
	}
	return boundaryAcyclic(coord.pairs), stats, nil
}

// IsDAG runs the protocol on a throwaway single-query cluster.
func IsDAG(fr *partition.Fragmentation) (bool, cluster.Stats) {
	c := cluster.NewLocal(fr, cluster.Network{})
	defer c.Shutdown()
	ok, st, err := Eval(context.Background(), c, fr)
	if err != nil {
		panic(err) // background context, private cluster: unreachable
	}
	return ok, st
}

// boundaryAcyclic checks the condensed boundary graph with Kahn's
// algorithm over the in-node ID universe.
func boundaryAcyclic(pairs [][2]uint32) bool {
	succ := make(map[uint32][]uint32, len(pairs))
	indeg := make(map[uint32]int, len(pairs))
	nodes := make(map[uint32]bool, len(pairs))
	for _, p := range pairs {
		succ[p[0]] = append(succ[p[0]], p[1])
		indeg[p[1]]++
		nodes[p[0]] = true
		nodes[p[1]] = true
	}
	queue := make([]uint32, 0, len(nodes))
	for v := range nodes {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, w := range succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return seen == len(nodes)
}
