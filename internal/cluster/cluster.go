// Package cluster is the distributed-runtime substrate: a driver-side
// coordinator plus n worker sites reached through a pluggable Transport.
// With the in-process backend it simulates the paper's EC2 deployment
// (§6) — one goroutine per site, every message really serialized through
// internal/wire, exact per-kind byte accounting — and with the TCP
// backend (internal/transport/tcpnet) the same sessions span OS
// processes, the sites living in dgsd daemons. Sites are reactive actors
// — they only act on received messages — which matches the asynchronous
// message passing model of dGPM (Fig. 3) as well as the superstep
// coordination dMes needs.
//
// The substrate is persistent: a Cluster is created once (the fragments
// become resident at its sites) and then serves any number of queries,
// sequentially or concurrently. Each query runs as a Session — per-site
// handlers registered under a fresh query ID, instantiated from a
// SessionSpec by the site-factory registry so that a remote site can
// build them from its resident fragment. Every envelope carries its
// session's query ID, so one site serves all in-flight queries,
// processing their messages serially per site (one machine, one event
// loop) while different sites run concurrently. Stats, quiescence
// detection and round counting are all per-session, which is what gives
// concurrent queries isolated accounting.
//
// Termination: the paper's dGPM detects a fixpoint via changed-flags at
// the coordinator. The runtime provides the equivalent guarantee with a
// per-session in-flight message counter — the count is positive while
// any of the session's messages is undelivered or being processed, so
// reaching zero certifies that query's global quiescence (sites are
// reactive, so no new message can appear out of thin air). On the TCP
// backend every message is routed through the driver and acknowledged
// after processing, which preserves the same invariant across process
// boundaries. Algorithms still exchange their protocol's control
// traffic, which is accounted separately from data shipment.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dgs/internal/obs"
	"dgs/internal/wire"
)

// Coordinator is the pseudo-site ID of the coordinator Sc.
const Coordinator = -1

// ErrClosed is returned by Session.WaitQuiesce when the session (or the
// whole cluster) was closed while waiting.
var ErrClosed = errors.New("cluster: session closed")

// ErrSiteLost is the typed cause of a site-loss failure: the transport
// lost contact with one or more worker sites but the deployment itself
// may be recoverable. Sessions in flight at the time fail with an error
// wrapping it, and the cluster suspends — new sessions are born failed
// with the same cause — until Resume is called after the lost fragments
// have been re-hosted. Check with errors.Is.
var ErrSiteLost = errors.New("cluster: site lost")

// Network models link cost for the in-process backend. Propagation
// latency pipelines — a message becomes deliverable Latency after it was
// sent, regardless of how many others are in flight — while receive
// bandwidth serializes: each receiving site drains one message at a time
// at Bandwidth bytes/sec (one NIC per site, shared by all sessions). The
// zero Network delivers instantly — the right setting for unit tests.
// Benchmarks use EC2Network to reproduce the paper's cluster economics;
// the TCP backend ignores the model because a real network charges real
// time.
type Network struct {
	Latency   time.Duration // per-message propagation delay (pipelined)
	Bandwidth int64         // bytes per second per receiver; 0 = infinite
	PerMsg    time.Duration // serialized per-message receive overhead
}

// EC2Network approximates the paper's Amazon EC2 General Purpose setup
// (§6): sub-millisecond intra-region latency, ~0.5 Gbit/s effective
// per-instance throughput, and a per-message receive overhead (framing,
// syscalls) that penalizes fine-grained messaging — the cost vertex-
// centric systems pay and batch-oriented partial evaluation avoids.
func EC2Network() Network {
	return Network{Latency: 300 * time.Microsecond, Bandwidth: 64 << 20, PerMsg: 15 * time.Microsecond}
}

// xferTime is the serialized receive cost of one message.
func (n Network) xferTime(size int) time.Duration {
	d := n.PerMsg
	if n.Bandwidth > 0 {
		d += time.Duration(int64(size) * int64(time.Second) / n.Bandwidth)
	}
	return d
}

// Handler is the per-site (or coordinator) algorithm logic. Recv is
// invoked serially per site; different sites run concurrently.
type Handler interface {
	Recv(ctx *Ctx, from int, p wire.Payload)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ctx *Ctx, from int, p wire.Payload)

// Recv implements Handler.
func (f HandlerFunc) Recv(ctx *Ctx, from int, p wire.Payload) { f(ctx, from, p) }

// Stats aggregates network accounting for one session.
type Stats struct {
	DataBytes    int64 // payload kinds with Kind.IsData()
	ControlBytes int64
	ResultBytes  int64 // KindMatches traffic
	DataMsgs     int64
	ControlMsgs  int64
	ResultMsgs   int64
	Wall         time.Duration // set by the driver
	MaxSiteBusy  time.Duration // longest per-site cumulative Recv time
	Rounds       int64         // algorithm-defined (communication rounds)
	// WireBytes is the measured transport-level traffic of the session —
	// real socket bytes including frame headers on the TCP backend, 0 on
	// the in-process backend (nothing touches a wire there). Payload
	// byte counts above are exact on both backends.
	WireBytes int64
}

// TotalMsgs reports all messages exchanged.
func (s *Stats) TotalMsgs() int64 { return s.DataMsgs + s.ControlMsgs + s.ResultMsgs }

// Minus returns the counter-wise difference s - o: the traffic of one
// window of a long-lived session (snapshot before, snapshot after,
// subtract). Wall and MaxSiteBusy are copied from s, not subtracted —
// the caller times its own window.
func (s Stats) Minus(o Stats) Stats {
	return Stats{
		DataBytes:    s.DataBytes - o.DataBytes,
		ControlBytes: s.ControlBytes - o.ControlBytes,
		ResultBytes:  s.ResultBytes - o.ResultBytes,
		DataMsgs:     s.DataMsgs - o.DataMsgs,
		ControlMsgs:  s.ControlMsgs - o.ControlMsgs,
		ResultMsgs:   s.ResultMsgs - o.ResultMsgs,
		Rounds:       s.Rounds - o.Rounds,
		WireBytes:    s.WireBytes - o.WireBytes,
		Wall:         s.Wall,
		MaxSiteBusy:  s.MaxSiteBusy,
	}
}

func (s *Stats) String() string {
	return fmt.Sprintf("Stats(data=%dB/%dmsg, ctrl=%dB, result=%dB, rounds=%d, wall=%v)",
		s.DataBytes, s.DataMsgs, s.ControlBytes, s.ResultBytes, s.Rounds, s.Wall)
}

type envelope struct {
	qid  uint64
	from int
	data []byte
	sent time.Time // zero when the network model is off
}

// mailbox is an unbounded FIFO queue; senders never block, which rules
// out the send-deadlock of bounded channels under all-to-all bursts.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []envelope
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(e envelope) bool {
	m.mu.Lock()
	ok := !m.closed
	if ok {
		m.queue = append(m.queue, e)
	}
	m.mu.Unlock()
	m.cond.Signal()
	return ok
}

// get blocks for the next envelope; ok=false after close and drain.
func (m *mailbox) get() (envelope, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return envelope{}, false
	}
	e := m.queue[0]
	m.queue = m.queue[1:]
	return e, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Cluster is the driver side of a deployment: it runs the coordinator
// actor, tracks sessions, and reaches the n worker sites through its
// Transport. Create it once per deployment, run queries as Sessions, and
// Shutdown when done.
type Cluster struct {
	n        int
	tr       Transport
	net      Network // link emulation, when the transport models one
	coordBox *mailbox
	wg       sync.WaitGroup

	mu       sync.RWMutex
	sessions map[uint64]*Session
	nextQID  uint64
	closed   bool
	// dead is set when the transport reports a deployment-fatal failure
	// (Fail(0)): new sessions are born closed — their waiters observe
	// deadErr — instead of hanging on a transport that drops every send.
	dead    bool
	deadErr error
	// suspended is the recoverable sibling of dead: a Fail(0) whose cause
	// wraps ErrSiteLost fails the in-flight sessions but leaves the
	// cluster resumable — new sessions are born failed with suspendErr
	// until Resume, which the deployment calls after re-hosting the lost
	// fragments.
	suspended  bool
	suspendErr error
}

// NewWithTransport wires a Cluster onto an unbound Transport and starts
// the coordinator actor. The transport's site count fixes n.
func NewWithTransport(tr Transport) *Cluster {
	c := &Cluster{
		n:        tr.NumSites(),
		tr:       tr,
		sessions: make(map[uint64]*Session),
		coordBox: newMailbox(),
	}
	if lm, ok := tr.(interface{ LinkModel() Network }); ok {
		c.net = lm.LinkModel()
	}
	c.wg.Add(1)
	go c.coordLoop()
	tr.Bind(c)
	return c
}

// New creates a cluster of n in-process sites with the given link model
// and no resident fragments — the handler-session substrate tests and
// custom protocols use. Deployments with fragments use NewLocal.
func New(n int, net Network) *Cluster {
	return NewWithTransport(NewInProc(n, nil, net))
}

// NumSites reports the number of worker sites (excluding the coordinator).
func (c *Cluster) NumSites() int { return c.n }

// Transport returns the cluster's transport backend.
func (c *Cluster) Transport() Transport { return c.tr }

// ActiveSessions counts the registered sessions of the given kind —
// introspection for tests and operators (e.g. how many standing queries
// a deployment maintains alongside its query traffic).
func (c *Cluster) ActiveSessions(kind SessionKind) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, s := range c.sessions {
		if s.kind == kind {
			n++
		}
	}
	return n
}

// Network reports the emulated link model (zero when the transport is a
// real network).
func (c *Cluster) Network() Network { return c.net }

// SessionKind labels what a session multiplexed on the cluster is for.
// Query sessions are one-shot protocol runs; maintenance sessions are
// long-lived — standing-query refinement and fragment-update
// distribution reuse one session across many quiesce windows.
type SessionKind uint8

const (
	// SessionQuery is a one-query protocol session (the default).
	SessionQuery SessionKind = iota
	// SessionMaintenance is a long-lived update/standing-query session.
	SessionMaintenance
)

func (k SessionKind) String() string {
	if k == SessionMaintenance {
		return "maintenance"
	}
	return "query"
}

// newSession allocates and registers a session shell. ok=false on a
// shut-down cluster: the returned session is already closed — sends are
// dropped and WaitQuiesce reports ErrClosed.
func (c *Cluster) newSession(kind SessionKind, coord Handler) (*Session, bool) {
	s := &Session{
		c:           c,
		kind:        kind,
		coord:       coord,
		quiesce:     make(chan struct{}, 1),
		abort:       make(chan struct{}),
		perKind:     make(map[wire.Kind]int64),
		busy:        make([]time.Duration, c.n+1),
		outstanding: make([]int64, c.n),
	}
	s.coordCtx = &Ctx{
		self: Coordinator,
		n:    c.n,
		send: func(to int, p wire.Payload) { s.send(Coordinator, to, p) },
		// Rounds the coordinator handler records during a Recv are
		// scratch-buffered so the trace attributes them (and the Recv's
		// busy time) to the coordinator's current round — the exact
		// analogue of the site path in SiteHost. Only the coordinator
		// actor goroutine invokes this.
		addRounds: func(n int64) {
			s.statMu.Lock()
			s.stats.Rounds += n
			s.statMu.Unlock()
			s.coordRounds += n
		},
	}
	c.mu.Lock()
	if c.closed || c.dead || c.suspended {
		err := c.deadErr
		if err == nil {
			err = c.suspendErr
		}
		c.mu.Unlock()
		if err != nil {
			s.fail(err)
		} else {
			s.drop()
		}
		return s, false
	}
	c.nextQID++
	s.qid = c.nextQID
	c.sessions[s.qid] = s
	c.mu.Unlock()
	return s, true
}

// OpenSession registers a session whose site handlers are instantiated
// from spec — by the in-process registry or by remote daemons, depending
// on the backend. Handlers are installed (or their installation frames
// are ordered ahead on every connection) before the session's first
// message can be sent, so no delivery races registration. A synchronous
// resolution failure returns an error; remote failures surface through
// WaitQuiesce. On a shut-down cluster the returned session is already
// closed: sends are dropped and WaitQuiesce reports ErrClosed.
func (c *Cluster) OpenSession(kind SessionKind, spec SessionSpec, coord Handler) (*Session, error) {
	s, ok := c.newSession(kind, coord)
	if !ok {
		return s, nil
	}
	if spec.TraceID != 0 {
		// Installed before Open: no message can flow until Open returns,
		// so every route/Recv observes the recorder.
		s.traceRec = obs.NewSpanRecorder(spec.TraceID)
	}
	if err := c.tr.Open(s.qid, kind, spec); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// NewSession registers a query-kind direct-handler session; see
// NewSessionKind.
func (c *Cluster) NewSession(sites []Handler, coord Handler) *Session {
	return c.NewSessionKind(SessionQuery, sites, coord)
}

// NewSessionKind registers one caller-built handler per site plus the
// coordinator handler under a fresh query ID and returns the session.
// Direct handler installation requires an in-process transport
// (HandlerOpener); networked deployments open sessions from a
// SessionSpec instead. On a shut-down cluster the returned session is
// already closed: sends are dropped and WaitQuiesce reports ErrClosed.
func (c *Cluster) NewSessionKind(kind SessionKind, sites []Handler, coord Handler) *Session {
	if len(sites) != c.n {
		panic(fmt.Sprintf("cluster: %d handlers for %d sites", len(sites), c.n))
	}
	ho, ok := c.tr.(HandlerOpener)
	if !ok {
		panic("cluster: direct handler sessions require an in-process transport; open a SessionSpec session instead")
	}
	s, live := c.newSession(kind, coord)
	if !live {
		return s
	}
	if err := ho.OpenHandlers(s.qid, sites); err != nil {
		panic(err) // in-process installation cannot fail on a live host
	}
	return s
}

// coordLoop is the coordinator actor: it serially processes every
// session's coordinator-addressed messages, mirroring a worker site's
// event loop (one machine, one event loop).
func (c *Cluster) coordLoop() {
	defer c.wg.Done()
	for {
		env, ok := c.coordBox.get()
		if !ok {
			return
		}
		c.mu.RLock()
		s := c.sessions[env.qid]
		c.mu.RUnlock()
		if s == nil {
			continue
		}
		if s.dropped.Load() {
			s.done()
			continue
		}
		if !env.sent.IsZero() {
			if wait := time.Until(env.sent.Add(c.net.Latency)); wait > 0 {
				time.Sleep(wait)
			}
			if x := c.net.xferTime(len(env.data)); x > 0 {
				time.Sleep(x)
			}
		}
		p, err := wire.Decode(env.data)
		if err != nil {
			panic(fmt.Sprintf("cluster: coordinator received undecodable message from %d: %v", env.from, err))
		}
		s.coordRounds = 0
		start := time.Now()
		s.coord.Recv(s.coordCtx, env.from, p)
		el := time.Since(start)
		s.statMu.Lock()
		s.busy[c.n] += el
		s.statMu.Unlock()
		if s.traceRec != nil {
			s.traceRec.RecordIn(obs.CoordinatorSite, len(env.data), el, s.coordRounds)
		}
		s.done()
	}
}

// --- Events (transport upcalls) ---

// SiteSent implements Events: account a site-originated message and
// route it — to the coordinator actor or back out through the transport.
func (c *Cluster) SiteSent(qid uint64, from, to int, data []byte) {
	c.mu.RLock()
	s := c.sessions[qid]
	c.mu.RUnlock()
	if s == nil || s.dropped.Load() {
		return // abandoned session: suppress, exactly like Session.send
	}
	s.route(from, to, data)
}

// Deliver implements Events: enqueue a coordinator-addressed message
// whose accounting already happened.
func (c *Cluster) Deliver(qid uint64, from int, data []byte) {
	env := envelope{qid: qid, from: from, data: data}
	if c.net.Latency > 0 || c.net.Bandwidth > 0 || c.net.PerMsg > 0 {
		env.sent = time.Now()
	}
	c.coordBox.put(env)
}

// Retired implements Events: retire n processed messages and fold in
// the handlers' summed busy time and recorded rounds. The retirement is
// clamped to the site's outstanding count — messages routed to it and
// not yet retired — so a duplicated or forged ACK can never drive the
// in-flight counter below the true count and falsely certify
// termination.
func (c *Cluster) Retired(qid uint64, site int, busy time.Duration, rounds int64, n int) {
	c.mu.RLock()
	s := c.sessions[qid]
	c.mu.RUnlock()
	if s == nil || n <= 0 {
		return
	}
	s.statMu.Lock()
	if site >= 0 && site < len(s.busy) {
		s.busy[site] += busy
	}
	s.stats.Rounds += rounds
	if site >= 0 && site < len(s.outstanding) {
		if out := s.outstanding[site]; int64(n) > out {
			n = int(out)
		}
		s.outstanding[site] -= int64(n)
	} else {
		n = 0 // not a worker site: nothing was routed there
	}
	s.statMu.Unlock()
	if n > 0 {
		s.doneN(n)
	}
}

// Fail implements Events: abort one session (or, with qid 0, all of
// them) with err; WaitQuiesce observes err. A deployment-fatal failure
// also poisons the cluster — the transport is gone, so sessions opened
// afterwards fail immediately instead of waiting on dropped sends — with
// one exception: a cause wrapping ErrSiteLost only suspends the cluster,
// leaving it resumable once the lost sites have been re-hosted.
func (c *Cluster) Fail(qid uint64, err error) {
	var failed []*Session
	if qid == 0 {
		c.mu.Lock()
		if errors.Is(err, ErrSiteLost) {
			if !c.dead && !c.suspended {
				c.suspended = true
				c.suspendErr = err
			}
		} else if !c.dead {
			c.dead = true
			c.deadErr = err
		}
		for _, s := range c.sessions {
			failed = append(failed, s)
		}
		c.mu.Unlock()
	} else {
		c.mu.RLock()
		if s := c.sessions[qid]; s != nil {
			failed = append(failed, s)
		}
		c.mu.RUnlock()
	}
	for _, s := range failed {
		s.fail(err)
	}
}

// Resume clears a site-loss suspension: new sessions may be opened
// again. The deployment calls it after the transport re-hosted the lost
// fragments (Recoverer.Recover). Sessions failed by the loss stay failed
// — their owners retry. A permanent (non-site-lost) failure is not
// resumable; Resume on a dead or closed cluster is a no-op in effect
// because newSession checks those flags first.
func (c *Cluster) Resume() {
	c.mu.Lock()
	c.suspended = false
	c.suspendErr = nil
	c.mu.Unlock()
}

// Suspended reports whether the cluster is in the site-loss suspended
// state (failed over but not yet resumed), along with the cause.
func (c *Cluster) Suspended() (bool, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.suspended, c.suspendErr
}

// Shutdown closes every active session, tears the transport down and
// stops the coordinator actor. Idempotent.
func (c *Cluster) Shutdown() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return
	}
	c.closed = true
	active := make([]*Session, 0, len(c.sessions))
	for _, s := range c.sessions {
		active = append(active, s)
	}
	c.mu.Unlock()
	for _, s := range active {
		s.Close()
	}
	c.tr.Shutdown()
	c.coordBox.close()
	c.wg.Wait()
}

// Session is one query's view of the cluster: its coordinator handler,
// its stats, and its quiescence state. Sessions are created by
// Cluster.OpenSession (spec-based, any backend) or Cluster.NewSession
// (direct handlers, in-process only) and must be Closed when the query
// completes or is abandoned; Close unregisters the handlers and discards
// the session's remaining traffic.
type Session struct {
	c        *Cluster
	qid      uint64
	kind     SessionKind
	coord    Handler
	coordCtx *Ctx

	inflight  atomic.Int64
	quiesce   chan struct{} // receives a token each time inflight hits 0
	abort     chan struct{} // closed when the session is dropped
	dropped   atomic.Bool
	failErr   error // set (at most once) before dropped, read after
	closeOnce sync.Once

	statMu  sync.Mutex
	stats   Stats
	busy    []time.Duration
	perKind map[wire.Kind]int64
	// outstanding[i] counts messages routed to worker site i and not yet
	// retired — the per-site ledger Retired clamps against so duplicated
	// ACK delivery cannot falsely certify termination.
	outstanding []int64

	// traceRec records the driver-side (coordinator) spans of a traced
	// session; nil means tracing off. Set once in OpenSession before any
	// message flows. coordRounds is the coordinator actor's per-Recv
	// rounds scratch, touched only by coordLoop.
	traceRec    *obs.SpanRecorder
	coordRounds int64
}

// send encodes, accounts, and routes a driver-originated message.
func (s *Session) send(from, to int, p wire.Payload) {
	if s.dropped.Load() {
		return
	}
	s.route(from, to, wire.Encode(p))
}

// route accounts one encoded message and hands it to the coordinator
// actor or the transport. Shared by driver sends and site upcalls.
func (s *Session) route(from, to int, data []byte) {
	if to != Coordinator && (to < 0 || to >= s.c.n) {
		panic(fmt.Sprintf("cluster: invalid site id %d", to))
	}
	k := wire.Kind(data[0])
	s.statMu.Lock()
	s.perKind[k] += int64(len(data))
	switch {
	case k == wire.KindMatches:
		s.stats.ResultBytes += int64(len(data))
		s.stats.ResultMsgs++
	case k.IsData():
		s.stats.DataBytes += int64(len(data))
		s.stats.DataMsgs++
	default:
		s.stats.ControlBytes += int64(len(data))
		s.stats.ControlMsgs++
	}
	if to != Coordinator {
		s.outstanding[to]++
	}
	s.statMu.Unlock()
	// Driver-originated sends are the coordinator's outbound spans;
	// site-originated sends were already attributed at their site.
	if s.traceRec != nil && from == Coordinator {
		s.traceRec.RecordOut(obs.CoordinatorSite, len(data))
	}
	s.inflight.Add(1)
	if to == Coordinator {
		s.c.Deliver(s.qid, from, data)
		return
	}
	s.c.tr.Send(s.qid, from, to, data)
}

// done retires one in-flight message and signals quiescence at zero.
func (s *Session) done() { s.doneN(1) }

// doneN retires n in-flight messages at once (a coalesced ACK) and
// signals quiescence at zero. A single Add(-n) reaches zero exactly
// when n individual decrements would have, so the termination
// certificate is unchanged.
func (s *Session) doneN(n int) {
	if s.inflight.Add(-int64(n)) == 0 {
		select {
		case s.quiesce <- struct{}{}:
		default:
		}
	}
}

// Inject sends p to site id on behalf of the driver (appears to come from
// the coordinator).
func (s *Session) Inject(id int, p wire.Payload) { s.send(Coordinator, id, p) }

// Broadcast injects p to every worker site.
func (s *Session) Broadcast(p wire.Payload) {
	for i := 0; i < s.c.n; i++ {
		s.send(Coordinator, i, p)
	}
}

// WaitQuiesce blocks until every one of the session's messages has been
// delivered and processed and none of its handlers is running, the
// context is done, or the session is closed (ErrClosed, or the
// transport failure that killed it). Other sessions' traffic does not
// affect the wait.
func (s *Session) WaitQuiesce(ctx context.Context) error {
	for {
		if s.dropped.Load() {
			if s.failErr != nil {
				return s.failErr
			}
			return ErrClosed
		}
		// Context before quiescence: a cancelled query must fail
		// deterministically even when the protocol already finished.
		if err := ctx.Err(); err != nil {
			return err
		}
		if s.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.abort:
			if s.failErr != nil {
				return s.failErr
			}
			return ErrClosed
		case <-s.quiesce:
		}
	}
}

// Kind reports the session's kind.
func (s *Session) Kind() SessionKind { return s.kind }

// ID reports the session's cluster-wide id (the qid of its wire
// frames) — what transport-level tests and logs correlate on.
func (s *Session) ID() uint64 { return s.qid }

// AddRounds lets algorithms record communication rounds.
func (s *Session) AddRounds(n int64) {
	s.statMu.Lock()
	s.stats.Rounds += n
	s.statMu.Unlock()
	if s.traceRec != nil {
		s.traceRec.AddRounds(obs.CoordinatorSite, n)
	}
}

// Trace assembles a traced session's span tree: the spans every site
// host recorded plus the driver's own coordinator spans. Call after
// Close — remote hosts ship their spans when they process the close.
// Returns nil for untraced sessions. Complete is false when a host's
// spans could not be collected (pre-trace protocol connection, or a
// connection lost before its spans arrived).
func (s *Session) Trace(ctx context.Context) (*obs.QueryTrace, error) {
	if s.traceRec == nil {
		return nil, nil
	}
	qt := &obs.QueryTrace{TraceID: s.traceRec.ID(), Complete: true}
	if tt, ok := s.c.tr.(Tracer); ok {
		spans, complete, err := tt.Trace(ctx, s.qid)
		if err != nil {
			return nil, err
		}
		qt.Sites = append(qt.Sites, spans...)
		qt.Complete = complete
	} else {
		qt.Complete = false
	}
	qt.Sites = append(qt.Sites, s.traceRec.Snapshot()...)
	sort.Slice(qt.Sites, func(i, j int) bool { return qt.Sites[i].Site < qt.Sites[j].Site })
	return qt, nil
}

// Stats snapshots the session's accounting, including the measured
// transport bytes. Call at quiescence.
func (s *Session) Stats() Stats {
	wb := s.c.tr.WireBytes(s.qid)
	s.statMu.Lock()
	defer s.statMu.Unlock()
	st := s.stats
	st.WireBytes = wb
	for _, b := range s.busy {
		if b > st.MaxSiteBusy {
			st.MaxSiteBusy = b
		}
	}
	return st
}

// BytesByKind snapshots the session's per-kind byte counters.
func (s *Session) BytesByKind() map[wire.Kind]int64 {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	out := make(map[wire.Kind]int64, len(s.perKind))
	for k, v := range s.perKind {
		out[k] = v
	}
	return out
}

// drop marks the session abandoned: subsequent sends are suppressed,
// queued messages are discarded undelivered, and waiters are released.
func (s *Session) drop() {
	s.closeOnce.Do(func() {
		s.dropped.Store(true)
		close(s.abort)
	})
}

// fail is drop with a cause: WaitQuiesce reports err instead of
// ErrClosed. The error write is ordered before dropped.Store, so any
// reader observing the flag sees the cause.
func (s *Session) fail(err error) {
	s.closeOnce.Do(func() {
		s.failErr = err
		s.dropped.Store(true)
		close(s.abort)
	})
}

// Close unregisters the session from the cluster and its transport.
// Remaining in-flight messages are discarded without being delivered; a
// handler currently mid-Recv finishes but its sends are suppressed.
// Idempotent.
func (s *Session) Close() {
	s.drop()
	s.c.mu.Lock()
	_, live := s.c.sessions[s.qid]
	delete(s.c.sessions, s.qid)
	s.c.mu.Unlock()
	// Only the call that actually unregistered the session closes it on
	// the transport: a traced Eval closes explicitly (span shipment rides
	// the CLOSE) and again via defer, and the duplicate must not cost a
	// second round of CLOSE frames.
	if live {
		s.c.tr.Close(s.qid)
	}
}

// Ctx is the per-site sending API passed to handlers. All traffic stays
// within the handler's session.
type Ctx struct {
	self      int
	n         int
	send      func(to int, p wire.Payload)
	addRounds func(n int64)
}

// Self reports the handler's site ID (Coordinator for the coordinator).
func (x *Ctx) Self() int { return x.self }

// NumSites reports the number of worker sites.
func (x *Ctx) NumSites() int { return x.n }

// Send delivers p to site `to` (use Coordinator for Sc).
func (x *Ctx) Send(to int, p wire.Payload) { x.send(to, p) }

// Broadcast sends p to every worker site (coordinator use).
func (x *Ctx) Broadcast(p wire.Payload) {
	for i := 0; i < x.n; i++ {
		x.send(i, p)
	}
}

// AddRounds records algorithm-defined communication rounds.
func (x *Ctx) AddRounds(n int64) { x.addRounds(n) }
