// Package cluster is the distributed-runtime substrate: it simulates the
// paper's EC2 deployment (§6) with one goroutine per site, an in-process
// network that really serializes every message through internal/wire, and
// exact per-kind byte accounting. Sites are reactive actors — they only
// act on received messages — which matches the asynchronous message
// passing model of dGPM (Fig. 3) as well as the superstep coordination
// dMes needs.
//
// The substrate is persistent: a Cluster is created once (the fragments
// become resident at its sites) and then serves any number of queries,
// sequentially or concurrently. Each query runs as a Session — a set of
// per-site handlers registered under a fresh query ID. Every envelope
// carries its session's query ID, so one site goroutine serves all
// in-flight queries, processing their messages serially per site (one
// machine, one event loop) while different sites run concurrently.
// Stats, quiescence detection and round counting are all per-session,
// which is what gives concurrent queries isolated accounting.
//
// Termination: the paper's dGPM detects a fixpoint via changed-flags at
// the coordinator. The runtime provides the equivalent guarantee with a
// per-session in-flight message counter — the count is positive while any
// of the session's messages is undelivered or being processed, so
// reaching zero certifies that query's global quiescence (sites are
// reactive, so no new message can appear out of thin air). Algorithms
// still exchange their protocol's control traffic, which is accounted
// separately from data shipment.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dgs/internal/wire"
)

// Coordinator is the pseudo-site ID of the coordinator Sc.
const Coordinator = -1

// ErrClosed is returned by Session.WaitQuiesce when the session (or the
// whole cluster) was closed while waiting.
var ErrClosed = errors.New("cluster: session closed")

// Network models link cost. Propagation latency pipelines — a message
// becomes deliverable Latency after it was sent, regardless of how many
// others are in flight — while receive bandwidth serializes: each
// receiving site drains one message at a time at Bandwidth bytes/sec
// (one NIC per site, shared by all sessions). The zero Network delivers
// instantly — the right setting for unit tests. Benchmarks use EC2Network
// to reproduce the paper's cluster economics, where shipping a fragment
// costs real time while a falsification batch is nearly free.
type Network struct {
	Latency   time.Duration // per-message propagation delay (pipelined)
	Bandwidth int64         // bytes per second per receiver; 0 = infinite
	PerMsg    time.Duration // serialized per-message receive overhead
}

// EC2Network approximates the paper's Amazon EC2 General Purpose setup
// (§6): sub-millisecond intra-region latency, ~0.5 Gbit/s effective
// per-instance throughput, and a per-message receive overhead (framing,
// syscalls) that penalizes fine-grained messaging — the cost vertex-
// centric systems pay and batch-oriented partial evaluation avoids.
func EC2Network() Network {
	return Network{Latency: 300 * time.Microsecond, Bandwidth: 64 << 20, PerMsg: 15 * time.Microsecond}
}

// xferTime is the serialized receive cost of one message.
func (n Network) xferTime(size int) time.Duration {
	d := n.PerMsg
	if n.Bandwidth > 0 {
		d += time.Duration(int64(size) * int64(time.Second) / n.Bandwidth)
	}
	return d
}

// Handler is the per-site (or coordinator) algorithm logic. Recv is
// invoked serially per site; different sites run concurrently.
type Handler interface {
	Recv(ctx *Ctx, from int, p wire.Payload)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ctx *Ctx, from int, p wire.Payload)

// Recv implements Handler.
func (f HandlerFunc) Recv(ctx *Ctx, from int, p wire.Payload) { f(ctx, from, p) }

// Stats aggregates network accounting for one session.
type Stats struct {
	DataBytes    int64 // payload kinds with Kind.IsData()
	ControlBytes int64
	ResultBytes  int64 // KindMatches traffic
	DataMsgs     int64
	ControlMsgs  int64
	ResultMsgs   int64
	Wall         time.Duration // set by the driver
	MaxSiteBusy  time.Duration // longest per-site cumulative Recv time
	Rounds       int64         // algorithm-defined (communication rounds)
}

// TotalMsgs reports all messages exchanged.
func (s *Stats) TotalMsgs() int64 { return s.DataMsgs + s.ControlMsgs + s.ResultMsgs }

// Minus returns the counter-wise difference s - o: the traffic of one
// window of a long-lived session (snapshot before, snapshot after,
// subtract). Wall and MaxSiteBusy are copied from s, not subtracted —
// the caller times its own window.
func (s Stats) Minus(o Stats) Stats {
	return Stats{
		DataBytes:    s.DataBytes - o.DataBytes,
		ControlBytes: s.ControlBytes - o.ControlBytes,
		ResultBytes:  s.ResultBytes - o.ResultBytes,
		DataMsgs:     s.DataMsgs - o.DataMsgs,
		ControlMsgs:  s.ControlMsgs - o.ControlMsgs,
		ResultMsgs:   s.ResultMsgs - o.ResultMsgs,
		Rounds:       s.Rounds - o.Rounds,
		Wall:         s.Wall,
		MaxSiteBusy:  s.MaxSiteBusy,
	}
}

func (s *Stats) String() string {
	return fmt.Sprintf("Stats(data=%dB/%dmsg, ctrl=%dB, result=%dB, rounds=%d, wall=%v)",
		s.DataBytes, s.DataMsgs, s.ControlBytes, s.ResultBytes, s.Rounds, s.Wall)
}

type envelope struct {
	qid  uint64
	from int
	data []byte
	sent time.Time // zero when the network model is off
}

// mailbox is an unbounded FIFO queue; senders never block, which rules
// out the send-deadlock of bounded channels under all-to-all bursts.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []envelope
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(e envelope) bool {
	m.mu.Lock()
	ok := !m.closed
	if ok {
		m.queue = append(m.queue, e)
	}
	m.mu.Unlock()
	m.cond.Signal()
	return ok
}

// get blocks for the next envelope; ok=false after close and drain.
func (m *mailbox) get() (envelope, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return envelope{}, false
	}
	e := m.queue[0]
	m.queue = m.queue[1:]
	return e, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Cluster wires n sites plus a coordinator together and keeps their
// goroutines alive across queries. Create it once per deployment with
// New, run queries as Sessions, and Shutdown when done.
type Cluster struct {
	n     int
	net   Network
	boxes []*mailbox // index n is the coordinator
	wg    sync.WaitGroup

	mu       sync.RWMutex
	sessions map[uint64]*Session
	nextQID  uint64
	closed   bool
}

// New creates a cluster of n sites with the given link model and spawns
// the long-lived site goroutines. The network is a per-cluster property —
// there is deliberately no process-global default.
func New(n int, net Network) *Cluster {
	c := &Cluster{
		n:        n,
		net:      net,
		sessions: make(map[uint64]*Session),
	}
	c.boxes = make([]*mailbox, n+1)
	for i := range c.boxes {
		c.boxes[i] = newMailbox()
	}
	for i := 0; i <= n; i++ {
		c.wg.Add(1)
		go c.siteLoop(i)
	}
	return c
}

// NumSites reports the number of worker sites (excluding the coordinator).
func (c *Cluster) NumSites() int { return c.n }

// ActiveSessions counts the registered sessions of the given kind —
// introspection for tests and operators (e.g. how many standing queries
// a deployment maintains alongside its query traffic).
func (c *Cluster) ActiveSessions(kind SessionKind) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, s := range c.sessions {
		if s.kind == kind {
			n++
		}
	}
	return n
}

// Network reports the cluster's link model.
func (c *Cluster) Network() Network { return c.net }

// SessionKind labels what a session multiplexed on the cluster is for.
// Query sessions are one-shot protocol runs; maintenance sessions are
// long-lived — standing-query refinement and fragment-update
// distribution reuse one session across many quiesce windows.
type SessionKind uint8

const (
	// SessionQuery is a one-query protocol session (the default).
	SessionQuery SessionKind = iota
	// SessionMaintenance is a long-lived update/standing-query session.
	SessionMaintenance
)

func (k SessionKind) String() string {
	if k == SessionMaintenance {
		return "maintenance"
	}
	return "query"
}

// NewSession registers a query-kind session; see NewSessionKind.
func (c *Cluster) NewSession(sites []Handler, coord Handler) *Session {
	return c.NewSessionKind(SessionQuery, sites, coord)
}

// NewSessionKind registers one handler per site plus the coordinator
// handler under a fresh query ID and returns the session. Handlers are
// installed before the session's first message can be sent, so no
// delivery races registration. Sessions of different kinds multiplex
// over the same site goroutines; the kind is introspection metadata
// (ActiveSessions) plus documentation of the session's lifetime. On a
// shut-down cluster the returned session is already closed: sends are
// dropped and WaitQuiesce reports ErrClosed.
func (c *Cluster) NewSessionKind(kind SessionKind, sites []Handler, coord Handler) *Session {
	if len(sites) != c.n {
		panic(fmt.Sprintf("cluster: %d handlers for %d sites", len(sites), c.n))
	}
	s := &Session{
		c:        c,
		kind:     kind,
		handlers: append(append([]Handler(nil), sites...), coord),
		quiesce:  make(chan struct{}, 1),
		abort:    make(chan struct{}),
		perKind:  make(map[wire.Kind]int64),
		busy:     make([]time.Duration, c.n+1),
	}
	s.ctxs = make([]Ctx, c.n+1)
	for i := range s.ctxs {
		s.ctxs[i] = Ctx{s: s, self: c.externalID(i)}
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		s.drop()
		return s
	}
	c.nextQID++
	s.qid = c.nextQID
	c.sessions[s.qid] = s
	c.mu.Unlock()
	return s
}

func (c *Cluster) siteLoop(idx int) {
	defer c.wg.Done()
	for {
		env, ok := c.boxes[idx].get()
		if !ok {
			return
		}
		c.mu.RLock()
		s := c.sessions[env.qid]
		c.mu.RUnlock()
		if s == nil {
			// Session already unregistered (query abandoned): discard.
			continue
		}
		if s.dropped.Load() {
			s.done()
			continue
		}
		if !env.sent.IsZero() {
			// Pipelined propagation latency, then serialized NIC drain.
			if wait := time.Until(env.sent.Add(c.net.Latency)); wait > 0 {
				time.Sleep(wait)
			}
			if x := c.net.xferTime(len(env.data)); x > 0 {
				time.Sleep(x)
			}
		}
		p, err := wire.Decode(env.data)
		if err != nil {
			panic(fmt.Sprintf("cluster: site %d received undecodable message from %d: %v", c.externalID(idx), env.from, err))
		}
		start := time.Now()
		s.handlers[idx].Recv(&s.ctxs[idx], env.from, p)
		el := time.Since(start)
		s.statMu.Lock()
		s.busy[idx] += el
		s.statMu.Unlock()
		s.done()
	}
}

func (c *Cluster) externalID(idx int) int {
	if idx == c.n {
		return Coordinator
	}
	return idx
}

func (c *Cluster) internalIdx(id int) int {
	if id == Coordinator {
		return c.n
	}
	if id < 0 || id >= c.n {
		panic(fmt.Sprintf("cluster: invalid site id %d", id))
	}
	return id
}

// Shutdown closes every active session, stops all site goroutines and
// waits for them. Idempotent.
func (c *Cluster) Shutdown() {
	c.mu.Lock()
	c.closed = true
	active := make([]*Session, 0, len(c.sessions))
	for _, s := range c.sessions {
		active = append(active, s)
	}
	c.mu.Unlock()
	for _, s := range active {
		s.Close()
	}
	for _, b := range c.boxes {
		b.close()
	}
	c.wg.Wait()
}

// Session is one query's view of the cluster: its handlers, its stats,
// and its quiescence state. Sessions are created by Cluster.NewSession
// and must be Closed when the query completes or is abandoned; Close
// unregisters the handlers and discards the session's remaining traffic.
type Session struct {
	c        *Cluster
	qid      uint64
	kind     SessionKind
	handlers []Handler // n sites, then the coordinator

	// ctxs are the per-site sending contexts, built once per session so
	// the per-message hot path does not allocate.
	ctxs []Ctx

	inflight  atomic.Int64
	quiesce   chan struct{} // receives a token each time inflight hits 0
	abort     chan struct{} // closed when the session is dropped
	dropped   atomic.Bool
	closeOnce sync.Once

	statMu  sync.Mutex
	stats   Stats
	busy    []time.Duration
	perKind map[wire.Kind]int64
}

// send encodes, accounts, and enqueues within this session.
func (s *Session) send(from, to int, p wire.Payload) {
	if s.dropped.Load() {
		return
	}
	data := wire.Encode(p)
	k := p.Kind()
	s.statMu.Lock()
	s.perKind[k] += int64(len(data))
	switch {
	case k == wire.KindMatches:
		s.stats.ResultBytes += int64(len(data))
		s.stats.ResultMsgs++
	case k.IsData():
		s.stats.DataBytes += int64(len(data))
		s.stats.DataMsgs++
	default:
		s.stats.ControlBytes += int64(len(data))
		s.stats.ControlMsgs++
	}
	s.statMu.Unlock()
	s.inflight.Add(1)
	env := envelope{qid: s.qid, from: from, data: data}
	net := s.c.net
	if net.Latency > 0 || net.Bandwidth > 0 || net.PerMsg > 0 {
		env.sent = time.Now()
	}
	if !s.c.boxes[s.c.internalIdx(to)].put(env) {
		// Cluster shut down under us: the message will never be
		// delivered; undo the in-flight accounting.
		s.done()
	}
}

// done retires one in-flight message and signals quiescence at zero.
func (s *Session) done() {
	if s.inflight.Add(-1) == 0 {
		select {
		case s.quiesce <- struct{}{}:
		default:
		}
	}
}

// Inject sends p to site id on behalf of the driver (appears to come from
// the coordinator).
func (s *Session) Inject(id int, p wire.Payload) { s.send(Coordinator, id, p) }

// Broadcast injects p to every worker site.
func (s *Session) Broadcast(p wire.Payload) {
	for i := 0; i < s.c.n; i++ {
		s.send(Coordinator, i, p)
	}
}

// WaitQuiesce blocks until every one of the session's messages has been
// delivered and processed and none of its handlers is running, the
// context is done, or the session is closed. Other sessions' traffic
// does not affect the wait.
func (s *Session) WaitQuiesce(ctx context.Context) error {
	for {
		if s.dropped.Load() {
			return ErrClosed
		}
		// Context before quiescence: a cancelled query must fail
		// deterministically even when the protocol already finished.
		if err := ctx.Err(); err != nil {
			return err
		}
		if s.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.abort:
			return ErrClosed
		case <-s.quiesce:
		}
	}
}

// Kind reports the session's kind.
func (s *Session) Kind() SessionKind { return s.kind }

// AddRounds lets algorithms record communication rounds.
func (s *Session) AddRounds(n int64) {
	s.statMu.Lock()
	s.stats.Rounds += n
	s.statMu.Unlock()
}

// Stats snapshots the session's accounting. Call at quiescence.
func (s *Session) Stats() Stats {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	st := s.stats
	for _, b := range s.busy {
		if b > st.MaxSiteBusy {
			st.MaxSiteBusy = b
		}
	}
	return st
}

// BytesByKind snapshots the session's per-kind byte counters.
func (s *Session) BytesByKind() map[wire.Kind]int64 {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	out := make(map[wire.Kind]int64, len(s.perKind))
	for k, v := range s.perKind {
		out[k] = v
	}
	return out
}

// drop marks the session abandoned: subsequent sends are suppressed,
// queued messages are discarded undelivered, and waiters are released.
func (s *Session) drop() {
	s.closeOnce.Do(func() {
		s.dropped.Store(true)
		close(s.abort)
	})
}

// Close unregisters the session from the cluster. Remaining in-flight
// messages are discarded without being delivered; a handler currently
// mid-Recv finishes but its sends are suppressed. Idempotent.
func (s *Session) Close() {
	s.drop()
	s.c.mu.Lock()
	delete(s.c.sessions, s.qid)
	s.c.mu.Unlock()
}

// Ctx is the per-site sending API passed to handlers. All traffic stays
// within the handler's session.
type Ctx struct {
	s    *Session
	self int
}

// Self reports the handler's site ID (Coordinator for the coordinator).
func (x *Ctx) Self() int { return x.self }

// NumSites reports the number of worker sites.
func (x *Ctx) NumSites() int { return x.s.c.n }

// Send delivers p to site `to` (use Coordinator for Sc).
func (x *Ctx) Send(to int, p wire.Payload) { x.s.send(x.self, to, p) }

// Broadcast sends p to every worker site (coordinator use).
func (x *Ctx) Broadcast(p wire.Payload) {
	for i := 0; i < x.s.c.n; i++ {
		x.s.send(x.self, i, p)
	}
}

// AddRounds records algorithm-defined communication rounds.
func (x *Ctx) AddRounds(n int64) { x.s.AddRounds(n) }
