// Package cluster is the distributed-runtime substrate: it simulates the
// paper's EC2 deployment (§6) with one goroutine per site, an in-process
// network that really serializes every message through internal/wire, and
// exact per-kind byte accounting. Sites are reactive actors — they only
// act on received messages — which matches the asynchronous message
// passing model of dGPM (Fig. 3) as well as the superstep coordination
// dMes needs.
//
// Termination: the paper's dGPM detects a fixpoint via changed-flags at
// the coordinator. The runtime provides the equivalent guarantee with an
// in-flight message counter — the count is positive while any message is
// undelivered or being processed, so reaching zero certifies global
// quiescence (sites are reactive, so no new message can appear out of
// thin air). Algorithms still exchange their protocol's control traffic,
// which is accounted separately from data shipment.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dgs/internal/wire"
)

// Coordinator is the pseudo-site ID of the coordinator Sc.
const Coordinator = -1

// Network models link cost. Propagation latency pipelines — a message
// becomes deliverable Latency after it was sent, regardless of how many
// others are in flight — while receive bandwidth serializes: each
// receiving site drains one message at a time at Bandwidth bytes/sec
// (one NIC per site). The zero Network delivers instantly — the right
// setting for unit tests. Benchmarks use EC2Network to reproduce the
// paper's cluster economics, where shipping a fragment costs real time
// while a falsification batch is nearly free.
type Network struct {
	Latency   time.Duration // per-message propagation delay (pipelined)
	Bandwidth int64         // bytes per second per receiver; 0 = infinite
	PerMsg    time.Duration // serialized per-message receive overhead
}

// EC2Network approximates the paper's Amazon EC2 General Purpose setup
// (§6): sub-millisecond intra-region latency, ~0.5 Gbit/s effective
// per-instance throughput, and a per-message receive overhead (framing,
// syscalls) that penalizes fine-grained messaging — the cost vertex-
// centric systems pay and batch-oriented partial evaluation avoids.
func EC2Network() Network {
	return Network{Latency: 300 * time.Microsecond, Bandwidth: 64 << 20, PerMsg: 15 * time.Microsecond}
}

// xferTime is the serialized receive cost of one message.
func (n Network) xferTime(size int) time.Duration {
	d := n.PerMsg
	if n.Bandwidth > 0 {
		d += time.Duration(int64(size) * int64(time.Second) / n.Bandwidth)
	}
	return d
}

// defaultNetwork applies to clusters created with New. Benchmarks set it
// once (sequentially) via SetDefaultNetwork; tests leave it zero.
var defaultNetwork Network

// SetDefaultNetwork installs the link model used by subsequently created
// clusters and returns the previous model. Not safe to race with New.
func SetDefaultNetwork(n Network) Network {
	old := defaultNetwork
	defaultNetwork = n
	return old
}

// Handler is the per-site (or coordinator) algorithm logic. Recv is
// invoked serially per site; different sites run concurrently.
type Handler interface {
	Recv(ctx *Ctx, from int, p wire.Payload)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ctx *Ctx, from int, p wire.Payload)

// Recv implements Handler.
func (f HandlerFunc) Recv(ctx *Ctx, from int, p wire.Payload) { f(ctx, from, p) }

// Stats aggregates network accounting for one run.
type Stats struct {
	DataBytes    int64 // payload kinds with Kind.IsData()
	ControlBytes int64
	ResultBytes  int64 // KindMatches traffic
	DataMsgs     int64
	ControlMsgs  int64
	ResultMsgs   int64
	Wall         time.Duration // set by the driver
	MaxSiteBusy  time.Duration // longest per-site cumulative Recv time
	Rounds       int64         // algorithm-defined (communication rounds)
}

// TotalMsgs reports all messages exchanged.
func (s *Stats) TotalMsgs() int64 { return s.DataMsgs + s.ControlMsgs + s.ResultMsgs }

func (s *Stats) String() string {
	return fmt.Sprintf("Stats(data=%dB/%dmsg, ctrl=%dB, result=%dB, rounds=%d, wall=%v)",
		s.DataBytes, s.DataMsgs, s.ControlBytes, s.ResultBytes, s.Rounds, s.Wall)
}

type envelope struct {
	from int
	data []byte
	sent time.Time // zero when the network model is off
}

// mailbox is an unbounded FIFO queue; senders never block, which rules
// out the send-deadlock of bounded channels under all-to-all bursts.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []envelope
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(e envelope) {
	m.mu.Lock()
	if !m.closed {
		m.queue = append(m.queue, e)
	}
	m.mu.Unlock()
	m.cond.Signal()
}

// get blocks for the next envelope; ok=false after close and drain.
func (m *mailbox) get() (envelope, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return envelope{}, false
	}
	e := m.queue[0]
	m.queue = m.queue[1:]
	return e, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Cluster wires n sites plus a coordinator together.
type Cluster struct {
	n        int
	net      Network
	boxes    []*mailbox // index n is the coordinator
	handlers []Handler
	wg       sync.WaitGroup

	inflight atomic.Int64
	quiesce  chan struct{} // receives a token each time inflight hits 0
	started  bool

	statMu    sync.Mutex
	stats     Stats
	busy      []time.Duration
	perKind   map[wire.Kind]int64
	collected bool
}

// New creates a cluster of n sites with the default network model.
// Handlers are attached with Start.
func New(n int) *Cluster {
	c := &Cluster{
		n:       n,
		net:     defaultNetwork,
		quiesce: make(chan struct{}, 1),
		perKind: make(map[wire.Kind]int64),
		busy:    make([]time.Duration, n+1),
	}
	c.boxes = make([]*mailbox, n+1)
	for i := range c.boxes {
		c.boxes[i] = newMailbox()
	}
	return c
}

// NumSites reports the number of worker sites (excluding the coordinator).
func (c *Cluster) NumSites() int { return c.n }

// Start attaches one handler per site plus the coordinator handler and
// spawns the actor goroutines. It must be called exactly once.
func (c *Cluster) Start(sites []Handler, coord Handler) {
	if c.started {
		panic("cluster: Start called twice")
	}
	if len(sites) != c.n {
		panic(fmt.Sprintf("cluster: %d handlers for %d sites", len(sites), c.n))
	}
	c.started = true
	c.handlers = append(append([]Handler(nil), sites...), coord)
	for i := 0; i <= c.n; i++ {
		c.wg.Add(1)
		go c.siteLoop(i)
	}
}

func (c *Cluster) siteLoop(idx int) {
	defer c.wg.Done()
	h := c.handlers[idx]
	ctx := &Ctx{c: c, self: c.externalID(idx)}
	for {
		env, ok := c.boxes[idx].get()
		if !ok {
			return
		}
		if !env.sent.IsZero() {
			// Pipelined propagation latency, then serialized NIC drain.
			if wait := time.Until(env.sent.Add(c.net.Latency)); wait > 0 {
				time.Sleep(wait)
			}
			if x := c.net.xferTime(len(env.data)); x > 0 {
				time.Sleep(x)
			}
		}
		p, err := wire.Decode(env.data)
		if err != nil {
			panic(fmt.Sprintf("cluster: site %d received undecodable message from %d: %v", c.externalID(idx), env.from, err))
		}
		start := time.Now()
		h.Recv(ctx, env.from, p)
		el := time.Since(start)
		c.statMu.Lock()
		c.busy[idx] += el
		c.statMu.Unlock()
		if c.inflight.Add(-1) == 0 {
			select {
			case c.quiesce <- struct{}{}:
			default:
			}
		}
	}
}

func (c *Cluster) externalID(idx int) int {
	if idx == c.n {
		return Coordinator
	}
	return idx
}

func (c *Cluster) internalIdx(id int) int {
	if id == Coordinator {
		return c.n
	}
	if id < 0 || id >= c.n {
		panic(fmt.Sprintf("cluster: invalid site id %d", id))
	}
	return id
}

// send encodes, accounts, and enqueues.
func (c *Cluster) send(from, to int, p wire.Payload) {
	data := wire.Encode(p)
	k := p.Kind()
	c.statMu.Lock()
	c.perKind[k] += int64(len(data))
	switch {
	case k == wire.KindMatches:
		c.stats.ResultBytes += int64(len(data))
		c.stats.ResultMsgs++
	case k.IsData():
		c.stats.DataBytes += int64(len(data))
		c.stats.DataMsgs++
	default:
		c.stats.ControlBytes += int64(len(data))
		c.stats.ControlMsgs++
	}
	c.statMu.Unlock()
	c.inflight.Add(1)
	env := envelope{from: from, data: data}
	if c.net.Latency > 0 || c.net.Bandwidth > 0 || c.net.PerMsg > 0 {
		env.sent = time.Now()
	}
	c.boxes[c.internalIdx(to)].put(env)
}

// Inject sends p to site id on behalf of the driver (appears to come from
// the coordinator).
func (c *Cluster) Inject(id int, p wire.Payload) { c.send(Coordinator, id, p) }

// Broadcast injects p to every worker site.
func (c *Cluster) Broadcast(p wire.Payload) {
	for i := 0; i < c.n; i++ {
		c.Inject(i, p)
	}
}

// WaitQuiesce blocks until every message has been delivered and processed
// and no handler is running. The caller must have injected at least one
// message since the last quiescence, otherwise it returns immediately if
// the system is already quiet.
func (c *Cluster) WaitQuiesce() {
	if c.inflight.Load() == 0 {
		return
	}
	for range c.quiesce {
		if c.inflight.Load() == 0 {
			return
		}
	}
}

// AddRounds lets algorithms record communication rounds.
func (c *Cluster) AddRounds(n int64) {
	c.statMu.Lock()
	c.stats.Rounds += n
	c.statMu.Unlock()
}

// Shutdown stops all actors and waits for them. Idempotent.
func (c *Cluster) Shutdown() {
	for _, b := range c.boxes {
		b.close()
	}
	c.wg.Wait()
}

// Stats snapshots the accounting. Call after Shutdown (or at quiescence).
func (c *Cluster) Stats() Stats {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	s := c.stats
	for _, b := range c.busy {
		if b > s.MaxSiteBusy {
			s.MaxSiteBusy = b
		}
	}
	return s
}

// BytesByKind snapshots the per-kind byte counters.
func (c *Cluster) BytesByKind() map[wire.Kind]int64 {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	out := make(map[wire.Kind]int64, len(c.perKind))
	for k, v := range c.perKind {
		out[k] = v
	}
	return out
}

// Ctx is the per-site sending API passed to handlers.
type Ctx struct {
	c    *Cluster
	self int
}

// Self reports the handler's site ID (Coordinator for the coordinator).
func (x *Ctx) Self() int { return x.self }

// NumSites reports the number of worker sites.
func (x *Ctx) NumSites() int { return x.c.n }

// Send delivers p to site `to` (use Coordinator for Sc).
func (x *Ctx) Send(to int, p wire.Payload) { x.c.send(x.self, to, p) }

// Broadcast sends p to every worker site (coordinator use).
func (x *Ctx) Broadcast(p wire.Payload) {
	for i := 0; i < x.c.n; i++ {
		x.c.send(x.self, i, p)
	}
}

// AddRounds records algorithm-defined communication rounds.
func (x *Ctx) AddRounds(n int64) { x.c.AddRounds(n) }
